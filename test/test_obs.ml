(* Tests for Rt_obs: counter arithmetic, span recording and nesting,
   trace/metrics JSON validity (parsed back by a small JSON reader), the
   convergence recorder against Optimize's own report, domain-safety of
   counters under real parallelism, and the guarantee that telemetry never
   changes optimisation results. *)

module Obs = Rt_obs
module Parallel = Rt_util.Parallel
module Optimize = Rt_optprob.Optimize
module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle
module Generators = Rt_circuit.Generators

let check = Alcotest.check

(* Scratch directories live under the system temp dir (never the repo
   root, where leftovers would show up as stray untracked files). *)
let scratch_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "optprob-obs-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (* A stale dir from a recycled pid would leak old artifacts into
       directory-level comparisons. *)
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end;
    dir

(* Every test starts from a clean, disabled sink; the suite is sequential
   so the global state is not contended between tests. *)
let with_obs f () =
  Obs.set_enabled true;
  Obs.clear ();
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.clear ())
    f

(* --- a minimal JSON reader (no JSON library in the test deps) -------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then s.[!pos] else '\x00' in
  let advance () = incr pos in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect ch =
    if peek () <> ch then fail (Printf.sprintf "expected %c, got %c" ch (peek ()));
    advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\x0c'
         | 'u' ->
           let hex = String.sub s (!pos + 1) 4 in
           let code = int_of_string ("0x" ^ hex) in
           (* control characters only, in our emitters *)
           Buffer.add_char buf (Char.chr (code land 0xff));
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        advance ();
        go ()
      | '\x00' -> fail "unterminated string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do
      advance ()
    done;
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | c -> fail (Printf.sprintf "expected , or } in object, got %c" c)
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | c -> fail (Printf.sprintf "expected , or ] in array, got %c" c)
        in
        elements []
      end
    | '"' -> Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> Alcotest.failf "missing JSON member %S" name)
  | _ -> Alcotest.failf "not a JSON object (looking up %S)" name

(* --- counters -------------------------------------------------------------- *)

let test_counter_arithmetic =
  with_obs @@ fun () ->
  let c = Obs.counter "test.alpha" in
  check Alcotest.int "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  check Alcotest.int "2 incr + add 40" 42 (Obs.value c);
  check Alcotest.bool "same name, same handle" true (Obs.counter "test.alpha" == c);
  let snapshot = Obs.counters_snapshot () in
  check Alcotest.int "snapshot sees it" 42 (List.assoc "test.alpha" snapshot);
  Obs.clear ();
  check Alcotest.int "clear zeroes, keeps registration" 0 (Obs.value c);
  let g = Obs.gauge "test.level" in
  Obs.gauge_set g 2.5;
  check (Alcotest.float 0.0) "gauge" 2.5 (Obs.gauge_value g);
  check (Alcotest.float 0.0) "gauge snapshot" 2.5
    (List.assoc "test.level" (Obs.gauges_snapshot ()))

let test_counter_disabled_drops () =
  Obs.set_enabled false;
  Obs.clear ();
  let c = Obs.counter "test.disabled" in
  Obs.incr c;
  Obs.add c 100;
  check Alcotest.int "increments dropped while disabled" 0 (Obs.value c)

(* Increments racing from real domains must all land.  run_chunks honours
   the requested job count with actual Domain.spawn, so this exercises
   cross-domain atomics even on a single-core host. *)
let test_counter_concurrent =
  with_obs @@ fun () ->
  let c = Obs.counter "test.race" in
  Parallel.run_chunks ~jobs:4 ~n:4000 (fun ~chunk:_ ~lo ~hi ->
      for _ = lo to hi - 1 do
        Obs.incr c
      done);
  check Alcotest.int "no lost increments across domains" 4000 (Obs.value c)

(* --- spans ----------------------------------------------------------------- *)

let test_span_nesting =
  with_obs @@ fun () ->
  let r =
    Obs.with_span ~cat:"t" "outer" (fun () ->
        Obs.with_span ~cat:"t" "inner" (fun () -> 7 * 6))
  in
  check Alcotest.int "thunk result" 42 r;
  match Obs.events () with
  | [ inner; outer ] ->
    (* inner ends (and so records) first *)
    check Alcotest.string "inner name" "inner" inner.Obs.name;
    check Alcotest.string "outer name" "outer" outer.Obs.name;
    check Alcotest.bool "inner starts after outer" true (inner.Obs.ts_us >= outer.Obs.ts_us);
    check Alcotest.bool "inner contained" true
      (inner.Obs.ts_us +. inner.Obs.dur_us <= outer.Obs.ts_us +. outer.Obs.dur_us +. 1.0);
    check Alcotest.int "same domain" outer.Obs.tid inner.Obs.tid
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_disabled () =
  Obs.set_enabled false;
  Obs.clear ();
  check (Alcotest.float 0.0) "span_begin sentinel" Float.neg_infinity (Obs.span_begin ());
  Obs.span_end "ghost" (Obs.span_begin ());
  ignore (Obs.with_span "ghost2" (fun () -> ()));
  check Alcotest.int "nothing recorded" 0 (List.length (Obs.events ()))

let test_span_records_on_raise =
  with_obs @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (List.length (Obs.events ()))

(* --- trace / metrics JSON -------------------------------------------------- *)

let test_trace_json_valid =
  with_obs @@ fun () ->
  (* Name with every character class our escaper must handle. *)
  let evil = "qu\"ote\\back\nnew\tline" in
  Obs.with_span ~cat:"phase" evil (fun () -> Obs.with_span ~cat:"phase" "child" ignore);
  let j = parse_json (Obs.trace_json ()) in
  (match member "displayTimeUnit" j with
   | Str "ms" -> ()
   | _ -> Alcotest.fail "displayTimeUnit");
  match member "traceEvents" j with
  | List evs ->
    check Alcotest.int "two events" 2 (List.length evs);
    let names =
      List.map (fun e -> match member "name" e with Str s -> s | _ -> Alcotest.fail "name") evs
    in
    check Alcotest.bool "evil name round-trips" true (List.mem evil names);
    List.iter
      (fun e ->
        (match member "ph" e with
         | Str "X" -> ()
         | _ -> Alcotest.fail "ph must be X (complete event)");
        (match member "ts" e with
         | Num ts -> check Alcotest.bool "ts positive" true (ts > 0.0)
         | _ -> Alcotest.fail "ts");
        (match member "dur" e with
         | Num d -> check Alcotest.bool "dur non-negative" true (d >= 0.0)
         | _ -> Alcotest.fail "dur");
        match (member "pid" e, member "tid" e) with
        | Num _, Num _ -> ()
        | _ -> Alcotest.fail "pid/tid")
      evs
  | _ -> Alcotest.fail "traceEvents not a list"

let test_metrics_json_valid =
  with_obs @@ fun () ->
  Obs.add (Obs.counter "test.metrics\"quoted") 3;
  Obs.gauge_set (Obs.gauge "test.g") 1.5;
  Obs.observe (Obs.histogram "test.h") 25.0;
  let j = parse_json (Obs.metrics_json ()) in
  (match member "schema" j with
   | Str "optprob-metrics/2" -> ()
   | _ -> Alcotest.fail "schema");
  (match member "test.metrics\"quoted" (member "counters" j) with
   | Num 3.0 -> ()
   | _ -> Alcotest.fail "counter value");
  (match member "test.g" (member "gauges" j) with
   | Num 1.5 -> ()
   | _ -> Alcotest.fail "gauge value");
  let h = member "test.h" (member "histograms" j) in
  (match member "count" h with
   | Num 1.0 -> ()
   | _ -> Alcotest.fail "histogram count");
  List.iter
    (fun q ->
      match member q h with
      | Num v -> check Alcotest.bool (q ^ " bounds the sample") true (v >= 25.0)
      | _ -> Alcotest.fail q)
    [ "p50"; "p90"; "p99"; "max" ]

(* --- histograms ------------------------------------------------------------- *)

(* Observations racing from real domains must all land (count, buckets,
   sum, min, max are all updated without a lock). *)
let hist_concurrent_qcheck =
  QCheck.Test.make ~name:"histogram: concurrent multi-domain observe loses nothing" ~count:5
    QCheck.(pair (int_range 2 4) (int_range 500 3000))
    (fun (jobs, n) ->
      Obs.set_enabled true;
      Obs.clear ();
      let h = Obs.histogram "test.hist.race" in
      Parallel.run_chunks ~jobs ~n (fun ~chunk:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            Obs.observe h (0.5 +. Float.of_int (i mod 64))
          done);
      let s = Obs.histogram_snapshot h in
      Obs.set_enabled false;
      Obs.clear ();
      s.Obs.count = n
      && Array.fold_left ( + ) 0 s.Obs.buckets = n
      && s.Obs.min = 0.5
      && s.Obs.max = 0.5 +. Float.of_int (min 63 (n - 1)))

let hsnap_eq a b =
  a.Obs.count = b.Obs.count
  && a.Obs.buckets = b.Obs.buckets
  && a.Obs.min = b.Obs.min
  && a.Obs.max = b.Obs.max
  && Float.abs (a.Obs.sum -. b.Obs.sum) <= 1e-9 *. Float.max 1.0 (Float.abs a.Obs.sum)

let samples_gen = QCheck.(list_of_size Gen.(int_range 0 200) (float_range 1e-6 1e6))

let hist_merge_qcheck =
  QCheck.Test.make ~name:"histogram merge: associative and commutative" ~count:50
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let s l = Obs.hsnap_of_samples (Array.of_list l) in
      let a = s xs and b = s ys and c = s zs in
      hsnap_eq (Obs.hsnap_merge a b) (Obs.hsnap_merge b a)
      && hsnap_eq
           (Obs.hsnap_merge (Obs.hsnap_merge a b) c)
           (Obs.hsnap_merge a (Obs.hsnap_merge b c))
      && hsnap_eq (Obs.hsnap_merge a Obs.hsnap_empty) a
      && hsnap_eq
           (Obs.hsnap_merge a b)
           (s (xs @ ys)))

(* The reported quantile is an upper bound of the true sample quantile and
   overshoots by at most one bucket ratio (and never beyond the exact max). *)
let hist_quantile_qcheck =
  QCheck.Test.make ~name:"histogram quantiles bound true sample quantiles" ~count:100
    QCheck.(
      pair (list_of_size Gen.(int_range 1 200) (float_range 1e-6 1e6)) (float_range 0.01 1.0))
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let s = Obs.hsnap_of_samples arr in
      let sorted = Array.copy arr in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let rank = max 1 (min n (int_of_float (Float.ceil (q *. Float.of_int n)))) in
      let true_q = sorted.(rank - 1) in
      let rep = Obs.hsnap_quantile s q in
      rep >= true_q && rep <= true_q *. Obs.bucket_ratio *. (1.0 +. 1e-12))

let test_with_span_h =
  with_obs @@ fun () ->
  let h = Obs.histogram "test.span_h" in
  let r = Obs.with_span_h ~cat:"t" "timed" h (fun () -> 21 * 2) in
  check Alcotest.int "thunk result" 42 r;
  check Alcotest.int "span recorded" 1 (List.length (Obs.events ()));
  let s = Obs.histogram_snapshot h in
  check Alcotest.int "duration observed" 1 s.Obs.count;
  let ev = List.hd (Obs.events ()) in
  check Alcotest.bool "observed value is the span duration (same clock reads)" true
    (s.Obs.max = ev.Obs.dur_us)

(* --- run artifacts ---------------------------------------------------------- *)

let test_manifest =
  Obs.Artifact.make_manifest ~engine:"cop" ~seed:7 ~jobs:2 ~circuit:"s1" ~patterns:64
    ~block_words:8 ~opt_passes:[ "fold"; "prune" ] ~opt_rounds:2 ~objective:"ndetect:2"
    ~argv:[| "optprob"; "optimize"; "s1" |]
    ~wall_s:0.25 ()

let jmember name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" name

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_artifact_roundtrip =
  with_obs @@ fun () ->
  let dir = scratch_dir "artifact" in
  Obs.with_span ~cat:"phase" "work" (fun () -> Obs.mark "checkpoint" ~fields:[ ("k", "v") ]);
  Obs.incr (Obs.counter "test.artifact.queries");
  Obs.observe (Obs.histogram "test.artifact.lat_us") 42.0;
  Obs.Artifact.write ~dir ~manifest:test_manifest ();
  (* manifest.json *)
  let m = Obs.Json.parse (read_file (Filename.concat dir "manifest.json")) in
  (match jmember "schema" m with
   | Obs.Json.Str "optprob-manifest/2" -> ()
   | _ -> Alcotest.fail "manifest schema");
  (match jmember "argv" m with
   | Obs.Json.Arr l -> check Alcotest.int "argv arity" 3 (List.length l)
   | _ -> Alcotest.fail "argv");
  (match jmember "engine" m with
   | Obs.Json.Str "cop" -> ()
   | _ -> Alcotest.fail "engine");
  (match jmember "seed" m with
   | Obs.Json.Num 7.0 -> ()
   | _ -> Alcotest.fail "seed");
  (* the v2 config slice parses back *)
  (match jmember "circuit" m with
   | Obs.Json.Str "s1" -> ()
   | _ -> Alcotest.fail "circuit");
  (match jmember "patterns" m with
   | Obs.Json.Num 64.0 -> ()
   | _ -> Alcotest.fail "patterns");
  (match jmember "block_words" m with
   | Obs.Json.Num 8.0 -> ()
   | _ -> Alcotest.fail "block_words");
  (match jmember "opt_passes" m with
   | Obs.Json.Arr [ Obs.Json.Str "fold"; Obs.Json.Str "prune" ] -> ()
   | _ -> Alcotest.fail "opt_passes");
  (match jmember "opt_rounds" m with
   | Obs.Json.Num 2.0 -> ()
   | _ -> Alcotest.fail "opt_rounds");
  (match jmember "objective" m with
   | Obs.Json.Str "ndetect:2" -> ()
   | _ -> Alcotest.fail "objective");
  (match jmember "host_cores" m with
   | Obs.Json.Num c -> check Alcotest.bool "host cores positive" true (c >= 1.0)
   | _ -> Alcotest.fail "host_cores");
  (match jmember "git_rev" m with
   | Obs.Json.Str _ -> ()
   | _ -> Alcotest.fail "git_rev");
  (* events.jsonl: every line is a self-describing JSON object *)
  let lines =
    String.split_on_char '\n' (read_file (Filename.concat dir "events.jsonl"))
    |> List.filter (fun l -> String.trim l <> "")
  in
  check Alcotest.bool "events.jsonl non-empty" true (List.length lines >= 2);
  List.iter
    (fun l ->
      match jmember "type" (Obs.Json.parse l) with
      | Obs.Json.Str ("span" | "mark") -> ()
      | _ -> Alcotest.fail "events.jsonl line type")
    lines;
  (* metrics.json parses and carries the histogram *)
  let mx = Obs.Json.parse (read_file (Filename.concat dir "metrics.json")) in
  (match jmember "test.artifact.lat_us" (jmember "histograms" mx) with
   | Obs.Json.Obj _ -> ()
   | _ -> Alcotest.fail "histogram in metrics.json");
  (* metrics.prom: OpenMetrics shape *)
  let prom = read_file (Filename.concat dir "metrics.prom") in
  let has needle =
    let nl = String.length needle and pl = String.length prom in
    let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "prom counter _total" true
    (has "optprob_test_artifact_queries_total 1");
  check Alcotest.bool "prom histogram buckets" true
    (has "optprob_test_artifact_lat_us_bucket{le=");
  check Alcotest.bool "prom +Inf bucket" true (has "_bucket{le=\"+Inf\"} 1");
  check Alcotest.bool "prom EOF terminator" true (has "# EOF");
  (* trace.json still parses with the mark as an instant event *)
  let t = Obs.Json.parse (read_file (Filename.concat dir "trace.json")) in
  match jmember "traceEvents" t with
  | Obs.Json.Arr evs ->
    check Alcotest.bool "span + instant mark" true
      (List.exists
         (fun e -> match Obs.Json.member "ph" e with Some (Obs.Json.Str "i") -> true | _ -> false)
         evs)
  | _ -> Alcotest.fail "traceEvents"

(* --- obs-diff ---------------------------------------------------------------

   Deterministic self-test: identical artifacts diff clean; an injected 2x
   slowdown (histogram samples and a hand-written span total) is flagged as
   a regression on exactly the affected series. *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let trace_with_dur dur =
  Printf.sprintf
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"optimize\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":1.0,\"dur\":%.1f,\"pid\":1,\"tid\":0}]}"
    dur

let test_obs_diff =
  with_obs @@ fun () ->
  let dir_a = scratch_dir "diff-a" and dir_b = scratch_dir "diff-b" in
  let samples = Array.init 200 (fun i -> 10.0 +. Float.of_int (i mod 50)) in
  let h = Obs.histogram "test.diff.lat_us" in
  Array.iter (Obs.observe h) samples;
  Obs.Artifact.write ~dir:dir_a ~manifest:test_manifest ();
  Obs.clear ();
  Array.iter (fun v -> Obs.observe h (2.0 *. v)) samples;
  Obs.Artifact.write ~dir:dir_b ~manifest:test_manifest ();
  (* same run vs itself: nothing to flag *)
  let same = Obs.Diff.compare_dirs dir_a dir_a in
  check Alcotest.int "identical dirs: zero regressions" 0
    (List.length (Obs.Diff.regressions same));
  (* 2x slower histogram: flagged by name *)
  let regs = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_b) in
  check Alcotest.bool "2x slowdown flagged on the affected histogram" true
    (List.exists
       (fun f -> f.Obs.Diff.kind = "histogram" && f.Obs.Diff.name = "test.diff.lat_us")
       regs);
  check Alcotest.bool "no span regressions invented" true
    (List.for_all (fun f -> f.Obs.Diff.kind <> "span") regs);
  (* inject a 2.4x span-tree slowdown above the noise floor *)
  write_file (Filename.concat dir_a "trace.json") (trace_with_dur 50_000.0);
  write_file (Filename.concat dir_b "trace.json") (trace_with_dur 120_000.0);
  let regs = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_b) in
  check Alcotest.bool "span slowdown flagged" true
    (List.exists (fun f -> f.Obs.Diff.kind = "span" && f.Obs.Diff.name = "optimize") regs);
  (* below the default 1 ms noise floor the same ratio stays quiet *)
  write_file (Filename.concat dir_a "trace.json") (trace_with_dur 100.0);
  write_file (Filename.concat dir_b "trace.json") (trace_with_dur 240.0);
  let regs = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_b) in
  check Alcotest.bool "sub-floor span noise ignored" true
    (List.for_all (fun f -> f.Obs.Diff.kind <> "span") regs)

(* --- Parallel.region policy ------------------------------------------------ *)

let test_region_seq_below =
  with_obs @@ fun () ->
  let spawns = Obs.counter "parallel.spawns" in
  let fallbacks = Obs.counter "parallel.seq_fallbacks" in
  let before_spawns = Obs.value spawns and before_fb = Obs.value fallbacks in
  let out = Array.make 100 0 in
  Parallel.region ~jobs:4 ~seq_below:1000 ~n:100 (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        out.(i) <- i * i
      done);
  check Alcotest.int "no domains spawned below threshold" before_spawns (Obs.value spawns);
  check Alcotest.bool "fallback counted" true (Obs.value fallbacks > before_fb);
  Array.iteri (fun i v -> check Alcotest.int "work done" (i * i) v) out;
  let seq = Parallel.map_region ~jobs:1 ~n:100 (fun ~lo ~hi -> Array.init (hi - lo) (fun k -> lo + k)) in
  let par = Parallel.map_region ~jobs:4 ~seq_below:0 ~n:100 (fun ~lo ~hi -> Array.init (hi - lo) (fun k -> lo + k)) in
  check Alcotest.int "map_region merge order" (Array.concat seq |> Array.length)
    (Array.concat par |> Array.length)

(* --- oracle protocol counters ---------------------------------------------- *)

let test_plan_cache_counters =
  with_obs @@ fun () ->
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let nf = Array.length faults in
  let o = Detect.make Detect.Cop c faults in
  let hit = Obs.counter "detect.plan.hit" in
  let miss = Obs.counter "detect.plan.miss" in
  let hit0 = Obs.value hit and miss0 = Obs.value miss in
  let x = Array.make 8 0.5 in
  let s1 = Array.init (min 6 nf) Fun.id in
  let s2 = Array.init (min 6 nf) (fun i -> nf - 1 - i) in
  (* Alternating keys: the keyed cache must hold both (the old
     single-entry cache missed every call here). *)
  ignore (Detect.probs_subset o s1 x);
  ignore (Detect.probs_subset o s2 x);
  ignore (Detect.probs_subset o s1 x);
  ignore (Detect.probs_subset o s2 x);
  check Alcotest.int "two plan misses" (miss0 + 2) (Obs.value miss);
  check Alcotest.int "two plan hits" (hit0 + 2) (Obs.value hit)

let test_cofactor_counters =
  with_obs @@ fun () ->
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let incr_c = Obs.counter "oracle.cofactor.incremental" in
  let full_c = Obs.counter "oracle.cofactor.full" in
  let q_cop = Obs.counter "oracle.cofactor_queries.cop" in
  let x = Array.make 8 0.5 in
  let subset = Array.init (min 6 (Array.length faults)) Fun.id in
  (* COP registers a fused cofactor: queries land on the incremental
     counter. *)
  let o = Detect.make Detect.Cop c faults in
  let plan = Oracle.plan o subset in
  let i0 = Obs.value incr_c and f0 = Obs.value full_c and q0 = Obs.value q_cop in
  ignore (Oracle.cofactor_pair o plan ~input:0 ~x);
  ignore (Oracle.cofactor_pair o plan ~input:1 ~x);
  check Alcotest.int "fused queries counted incremental" (i0 + 2) (Obs.value incr_c);
  check Alcotest.int "no full fallback for cop" f0 (Obs.value full_c);
  check Alcotest.int "per-engine cofactor queries" (q0 + 2) (Obs.value q_cop);
  (* A sharded conditioned engine (with a nonempty conditioning set) has
     no fused path: the same query lands on the full-fallback counter. *)
  let cr = Generators.random_circuit ~inputs:7 ~gates:30 ~seed:1 in
  if Array.length (Rt_testability.Signal_prob.conditioning_set ~max_vars:2 cr) = 0 then
    Alcotest.fail "fixture circuit must have conditioning variables";
  let fr = Rt_fault.Collapse.collapsed_universe cr in
  let oc = Detect.make ~jobs:4 (Detect.Conditioned { max_vars = 2 }) cr fr in
  let planc = Oracle.plan oc (Array.init (min 6 (Array.length fr)) Fun.id) in
  let i1 = Obs.value incr_c and f1 = Obs.value full_c in
  ignore (Oracle.cofactor_pair oc planc ~input:0 ~x:(Array.make 7 0.5));
  check Alcotest.int "fallback counted full" (f1 + 1) (Obs.value full_c);
  check Alcotest.int "fallback not counted incremental" i1 (Obs.value incr_c)

(* --- convergence recorder vs the optimizer's report ------------------------ *)

let test_convergence_matches_report () =
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make Detect.Cop c faults in
  let recorder = Obs.Convergence.create () in
  let options = { Optimize.default_options with Optimize.max_sweeps = 4 } in
  let r = Optimize.run ~options ~recorder oracle in
  let rows = Obs.Convergence.rows recorder in
  (match rows with
   | first :: _ ->
     check Alcotest.string "first row is the start" "initial" first.Obs.Convergence.stage
   | [] -> Alcotest.fail "no rows recorded");
  let sweep_rows = List.filter (fun row -> row.Obs.Convergence.stage = "sweep") rows in
  (* history is oldest-first: it must line up 1:1 with the recorder's
     sweep rows, which are appended chronologically. *)
  check Alcotest.int "one row per sweep" (List.length r.Optimize.history) (List.length sweep_rows);
  List.iter2
    (fun n_hist row -> check (Alcotest.float 0.0) "history N matches" n_hist row.Obs.Convergence.n)
    r.Optimize.history sweep_rows;
  List.iter2
    (fun j_hist row -> check (Alcotest.float 0.0) "j_history matches" j_hist row.Obs.Convergence.j)
    r.Optimize.j_history sweep_rows;
  check Alcotest.bool "sweep numbers increase" true
    (List.for_all2 (fun i row -> row.Obs.Convergence.sweep = i)
       (List.init (List.length sweep_rows) (fun i -> i + 1))
       sweep_rows);
  match List.rev rows with
  | last :: _ ->
    check Alcotest.string "last row is final" "final" last.Obs.Convergence.stage;
    check (Alcotest.float 0.0) "final N equals report" r.Optimize.n_final last.Obs.Convergence.n;
    check Alcotest.bool "final weights equal report" true (last.Obs.Convergence.y = r.Optimize.weights);
    (* The CSV must round-trip the final N exactly. *)
    let csv = Obs.Convergence.to_csv recorder in
    let last_line =
      String.split_on_char '\n' (String.trim csv) |> List.rev |> List.hd
    in
    (match String.split_on_char ',' last_line with
     | _stage :: objective :: _sweep :: _j :: n :: _ ->
       check Alcotest.string "CSV rows carry the objective key" "single" objective;
       check (Alcotest.float 0.0) "CSV final N round-trips" r.Optimize.n_final (float_of_string n)
     | _ -> Alcotest.fail "CSV shape");
    let cj = parse_json (Obs.Convergence.to_json recorder) in
    (match member "rows" cj with
     | List l -> check Alcotest.int "JSON rows" (List.length rows) (List.length l)
     | _ -> Alcotest.fail "convergence JSON rows")
  | [] -> Alcotest.fail "no rows"

(* --- track names and span args --------------------------------------------- *)

let test_track_names_and_args =
  with_obs @@ fun () ->
  Obs.set_track_name "test-main-track";
  let t0 = Obs.span_begin () in
  Obs.span_end ~cat:"pool" ~args:[ ("queue", "d2"); ("stolen", "true") ] "work.slice" t0;
  let j = parse_json (Obs.trace_json ()) in
  match member "traceEvents" j with
  | List evs ->
    check Alcotest.bool "thread_name metadata event present" true
      (List.exists
         (fun e ->
           match (member "name" e, member "ph" e) with
           | Str "thread_name", Str "M" ->
             (match member "name" (member "args" e) with
              | Str "test-main-track" -> true
              | _ -> false)
           | _ -> false)
         evs);
    let slice =
      List.find
        (fun e -> match member "name" e with Str "work.slice" -> true | _ -> false)
        evs
    in
    (match member "args" slice with
     | Obj kvs ->
       check Alcotest.bool "steal args round-trip" true
         (List.assoc_opt "queue" kvs = Some (Str "d2")
          && List.assoc_opt "stolen" kvs = Some (Str "true"))
     | _ -> Alcotest.fail "slice span carries no args object")
  | _ -> Alcotest.fail "traceEvents"

(* --- OpenMetrics lint -------------------------------------------------------

   The real exposition must parse back clean, and each way of corrupting
   it must be caught by at least one lint error. *)

let test_prom_lint =
  with_obs @@ fun () ->
  Obs.add (Obs.counter "test.lint.requests") 3;
  Obs.gauge_set (Obs.gauge "test.lint.level") 0.5;
  Obs.observe (Obs.histogram "test.lint.lat_us") 42.0;
  let prom = Obs.metrics_prom () in
  (match Obs.prom_lint prom with
   | [] -> ()
   | errs -> Alcotest.failf "clean exposition flagged: %s" (String.concat "; " errs));
  let corrupt name f =
    match Obs.prom_lint (f prom) with
    | [] -> Alcotest.failf "corruption %S not caught" name
    | _ -> ()
  in
  (* truncate the # EOF terminator *)
  corrupt "missing EOF" (fun s -> String.sub s 0 (String.length s - 6));
  (* counter sample without the _total suffix *)
  corrupt "counter without _total" (fun s ->
      s ^ "# TYPE optprob_bad counter\noptprob_bad 1\n# EOF\n");
  Obs.prom_lint (String.concat "\n"
    [ "# TYPE optprob_dup counter"; "optprob_dup_total 1";
      "# TYPE optprob_dup counter"; "optprob_dup_total 2"; "# EOF"; "" ])
  |> fun errs ->
  check Alcotest.bool "duplicate family caught" true (errs <> []);
  (* histogram whose +Inf bucket disagrees with _count *)
  Obs.prom_lint (String.concat "\n"
    [ "# TYPE optprob_h histogram";
      "optprob_h_bucket{le=\"1\"} 1";
      "optprob_h_bucket{le=\"+Inf\"} 2";
      "optprob_h_count 3"; "optprob_h_sum 4"; "# EOF"; "" ])
  |> fun errs ->
  check Alcotest.bool "+Inf/count mismatch caught" true (errs <> [])

(* --- atomic artifact writes ------------------------------------------------- *)

let test_artifact_atomic =
  with_obs @@ fun () ->
  let dir = scratch_dir "atomic" in
  Obs.incr (Obs.counter "test.atomic.c");
  Obs.Artifact.write ~dir ~manifest:test_manifest ();
  Obs.Artifact.write_live ~dir;
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           let rec has_sub i =
             i + 4 <= String.length f && (String.sub f i 4 = ".tmp" || has_sub (i + 1))
           in
           has_sub 0)
  in
  check (Alcotest.list Alcotest.string) "no .tmp leftovers after atomic writes" [] leftovers

(* --- timeline ring buffer --------------------------------------------------- *)

let mk_sample ts =
  { Obs.Timeline.s_ts_us = ts; s_counters = [ ("c", int_of_float ts) ]; s_gauges = [] }

let ring_qcheck =
  QCheck.Test.make ~name:"timeline ring: bounded, monotone, lossless below capacity"
    ~count:200
    QCheck.(pair (int_range 1 64) (list_of_size Gen.(int_range 0 200) (float_range 0.0 1e6)))
    (fun (cap, stamps) ->
      let r = Obs.Timeline.ring_create cap in
      List.iter (fun ts -> Obs.Timeline.ring_push r (mk_sample ts)) stamps;
      let samples, dropped = Obs.Timeline.ring_flush r in
      let n = List.length stamps in
      let retained = List.length samples in
      let ts = List.map (fun s -> s.Obs.Timeline.s_ts_us) samples in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a < b && monotone rest
        | _ -> true
      in
      retained <= cap
      && retained = min n cap
      && dropped = n - retained
      && monotone ts
      && (* below capacity nothing is lost: the pushed counters survive in
            order *)
      (n > cap
       || List.map (fun s -> List.assoc "c" s.Obs.Timeline.s_counters) samples
          = List.map int_of_float stamps))

let test_ring_capacity_validation () =
  (try
     ignore (Obs.Timeline.ring_create 0);
     Alcotest.fail "ring_create 0 must raise"
   with Invalid_argument _ -> ());
  let r = Obs.Timeline.ring_create 3 in
  (* identical timestamps are clamped strictly monotone *)
  List.iter (fun _ -> Obs.Timeline.ring_push r (mk_sample 5.0)) [ (); (); () ];
  let samples, _ = Obs.Timeline.ring_flush r in
  let ts = List.map (fun s -> s.Obs.Timeline.s_ts_us) samples in
  check Alcotest.bool "equal stamps forced strictly monotone" true
    (match ts with [ a; b; c ] -> a < b && b < c | _ -> false)

(* The sampler runs concurrently with a real multi-domain pool workload:
   the flushed timeline must be non-empty, strictly monotone, and must
   have seen the pool gauges that the workload's sample hook refreshes. *)
let test_sampler_during_pool_run =
  with_obs @@ fun () ->
  let s = Obs.Timeline.start ~period_ms:2 () in
  let pool = Rt_util.Pool.default () in
  let spin = Atomic.make 0 in
  for _ = 1 to 20 do
    Rt_util.Pool.run pool ~label:"test.sampler" ~grain:4 ~participants:4 ~n:512
      (fun _worker lo hi ->
        for _ = lo to hi - 1 do
          (* enough work per item for the sampler to interleave *)
          for _ = 1 to 200 do
            Atomic.incr spin
          done
        done)
  done;
  let samples, dropped = Obs.Timeline.stop s in
  check Alcotest.bool "samples collected" true (List.length samples > 0);
  check Alcotest.bool "nothing dropped in a short run" true (dropped = 0);
  let ts = List.map (fun x -> x.Obs.Timeline.s_ts_us) samples in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  check Alcotest.bool "timestamps strictly monotone" true (monotone ts);
  let last = List.nth samples (List.length samples - 1) in
  check Alcotest.bool "pool.utilization gauge sampled" true
    (List.mem_assoc "pool.utilization" last.Obs.Timeline.s_gauges);
  check Alcotest.bool "final sample sees executed pool tasks" true
    (match List.assoc_opt "pool.tasks" last.Obs.Timeline.s_counters with
     | Some v -> v > 0
     | None -> false)

(* --- timeline diff ----------------------------------------------------------- *)

let timeline_samples util =
  List.init 20 (fun i ->
      { Obs.Timeline.s_ts_us = Float.of_int (1000 * (i + 1));
        s_counters = [];
        s_gauges = [ ("pool.utilization", util); ("heap.live_mb", 10.0) ] })

let test_timeline_diff =
  with_obs @@ fun () ->
  let dir_a = scratch_dir "tdiff-a" and dir_b = scratch_dir "tdiff-b" in
  Obs.incr (Obs.counter "test.tdiff.c");
  Obs.Artifact.write ~dir:dir_a ~manifest:test_manifest ();
  Obs.Artifact.write ~dir:dir_b ~manifest:test_manifest ();
  Obs.Timeline.write (Filename.concat dir_a "timeline.json") ~period_ms:10 ~dropped:0
    (timeline_samples 0.8);
  Obs.Timeline.write (Filename.concat dir_b "timeline.json") ~period_ms:10 ~dropped:0
    (timeline_samples 0.8);
  let same = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_a) in
  check Alcotest.int "timeline self-diff clean" 0 (List.length same);
  let same_ab = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_b) in
  check Alcotest.int "identical timelines diff clean" 0 (List.length same_ab);
  (* halved utilization on a scheduler series is a regression *)
  Obs.Timeline.write (Filename.concat dir_b "timeline.json") ~period_ms:10 ~dropped:0
    (timeline_samples 0.4);
  let regs = Obs.Diff.regressions (Obs.Diff.compare_dirs dir_a dir_b) in
  check Alcotest.bool "2x utilization drop flagged as timeline regression" true
    (List.exists
       (fun f ->
         f.Obs.Diff.kind = "timeline"
         && String.length f.Obs.Diff.name >= 16
         && String.sub f.Obs.Diff.name 0 16 = "pool.utilization")
       regs)

(* --- HTTP exposition ---------------------------------------------------------

   A raw Unix-socket client (the test deps have no HTTP library either):
   one request per connection, exactly like the server's model. *)

let http_get port ?(meth = "GET") path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\n\r\n" meth path in
  let _ = Unix.write_substring fd req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  let raw = Buffer.contents buf in
  let code =
    try Scanf.sscanf raw "HTTP/1.1 %d" Fun.id
    with Scanf.Scan_failure _ | End_of_file -> -1
  in
  let body =
    let rec find i =
      if i + 4 > String.length raw then String.length raw
      else if String.sub raw i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    let b = find 0 in
    String.sub raw b (String.length raw - b)
  in
  (code, body)

let test_http_smoke =
  with_obs @@ fun () ->
  Obs.add (Obs.counter "test.http.hits") 7;
  let srv = Rt_obs_http.start ~port:0 () in
  Fun.protect ~finally:(fun () -> Rt_obs_http.stop srv)
  @@ fun () ->
  let port = Rt_obs_http.port srv in
  check Alcotest.bool "ephemeral port bound" true (port > 0);
  (* keep the sink moving from another domain while we scrape, like a real
     in-flight run *)
  let stop = Atomic.make false in
  let mutator =
    Domain.spawn (fun () ->
        let c = Obs.counter "test.http.background" in
        while not (Atomic.get stop) do
          Obs.incr c;
          Domain.cpu_relax ()
        done)
  in
  Fun.protect ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join mutator)
  @@ fun () ->
  let code, body = http_get port "/healthz" in
  check Alcotest.int "healthz 200" 200 code;
  check Alcotest.string "healthz body" "ok\n" body;
  let code, prom = http_get port "/metrics" in
  check Alcotest.int "metrics 200" 200 code;
  (match Obs.prom_lint prom with
   | [] -> ()
   | errs -> Alcotest.failf "live /metrics fails lint: %s" (String.concat "; " errs));
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "metrics carries the counter" true
    (has "optprob_test_http_hits_total 7" prom);
  check Alcotest.bool "metrics refreshed pool gauges via hooks" true
    (has "optprob_pool_utilization" prom);
  let code, snap = http_get port "/snapshot" in
  check Alcotest.int "snapshot 200" 200 code;
  (match Obs.Json.member "schema" (Obs.Json.parse snap) with
   | Some (Obs.Json.Str "optprob-metrics/2") -> ()
   | _ -> Alcotest.fail "snapshot schema");
  let code, _ = http_get port "/nope" in
  check Alcotest.int "unknown path 404" 404 code;
  let code, _ = http_get port ~meth:"POST" "/metrics" in
  check Alcotest.int "non-GET 405" 405 code

(* --- telemetry must never change results ----------------------------------- *)

let telemetry_invariance_qcheck =
  QCheck.Test.make ~name:"telemetry on/off: bit-identical optimize results" ~count:4
    QCheck.(pair (int_range 1 3) (int_range 6 9))
    (fun (sweeps, width) ->
      let c = Generators.wide_and width in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let options = { Optimize.default_options with Optimize.max_sweeps = sweeps } in
      let run_with obs =
        Obs.set_enabled obs;
        Obs.clear ();
        let oracle = Detect.make Detect.Cop c faults in
        let recorder = if obs then Some (Obs.Convergence.create ()) else None in
        let r = Optimize.run ~options ?recorder oracle in
        Obs.set_enabled false;
        Obs.clear ();
        r
      in
      let off = run_with false in
      let on = run_with true in
      off.Optimize.weights = on.Optimize.weights
      && off.Optimize.n_final = on.Optimize.n_final
      && off.Optimize.history = on.Optimize.history
      && off.Optimize.j_history = on.Optimize.j_history)

(* Parallel fault simulation with telemetry on from several domains must
   also be invariant (and counters coherent). *)
let test_fault_sim_invariant_under_telemetry () =
  let c = Generators.wide_and 10 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let run obs jobs =
    Obs.set_enabled obs;
    Obs.clear ();
    let rng = Rt_util.Rng.create 11 in
    let source = Rt_sim.Pattern.equiprobable rng ~n_inputs:10 in
    let stats = Rt_sim.Fault_sim.simulate ~jobs ~drop:true c faults ~source ~n_patterns:512 in
    let cov = Rt_sim.Fault_sim.coverage stats in
    Obs.set_enabled false;
    Obs.clear ();
    cov
  in
  let base = run false 1 in
  check (Alcotest.float 0.0) "telemetry off/on, jobs=1" base (run true 1);
  check (Alcotest.float 0.0) "telemetry on, jobs=4" base (run true 4)

let () =
  Alcotest.run "rt_obs"
    [ ( "counters",
        [ Alcotest.test_case "arithmetic and snapshots" `Quick test_counter_arithmetic;
          Alcotest.test_case "disabled drops increments" `Quick test_counter_disabled_drops;
          Alcotest.test_case "concurrent domains" `Quick test_counter_concurrent ] );
      ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled records nothing" `Quick test_span_disabled;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise ] );
      ( "json",
        [ Alcotest.test_case "trace_event output parses" `Quick test_trace_json_valid;
          Alcotest.test_case "metrics output parses" `Quick test_metrics_json_valid ] );
      ( "histograms",
        [ QCheck_alcotest.to_alcotest hist_concurrent_qcheck;
          QCheck_alcotest.to_alcotest hist_merge_qcheck;
          QCheck_alcotest.to_alcotest hist_quantile_qcheck;
          Alcotest.test_case "with_span_h observes the span duration" `Quick test_with_span_h ] );
      ( "artifact",
        [ Alcotest.test_case "manifest/events/prom round-trip" `Quick test_artifact_roundtrip ] );
      ( "diff",
        [ Alcotest.test_case "obs-diff self-test" `Quick test_obs_diff;
          Alcotest.test_case "timeline series gating" `Quick test_timeline_diff ] );
      ( "tracks",
        [ Alcotest.test_case "thread_name metadata and span args" `Quick
            test_track_names_and_args ] );
      ( "prom",
        [ Alcotest.test_case "lint: clean exposition and corruptions" `Quick test_prom_lint ] );
      ( "atomic",
        [ Alcotest.test_case "no tmp leftovers" `Quick test_artifact_atomic ] );
      ( "timeline",
        [ QCheck_alcotest.to_alcotest ring_qcheck;
          Alcotest.test_case "ring capacity and monotone clamp" `Quick
            test_ring_capacity_validation;
          Alcotest.test_case "sampler during pool run" `Quick test_sampler_during_pool_run ] );
      ( "http",
        [ Alcotest.test_case "live endpoints smoke" `Quick test_http_smoke ] );
      ( "parallel",
        [ Alcotest.test_case "region seq_below fallback" `Quick test_region_seq_below ] );
      ( "oracle",
        [ Alcotest.test_case "keyed plan cache counters" `Quick test_plan_cache_counters;
          Alcotest.test_case "cofactor path counters" `Quick test_cofactor_counters ] );
      ( "convergence",
        [ Alcotest.test_case "recorder matches report" `Quick test_convergence_matches_report ] );
      ( "invariance",
        [ QCheck_alcotest.to_alcotest telemetry_invariance_qcheck;
          Alcotest.test_case "fault sim under telemetry" `Quick
            test_fault_sim_invariant_under_telemetry ] ) ]
