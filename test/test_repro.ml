(* Tests for Rt_repro: weight file I/O and the experiment registry (the
   fast experiments run for real; the heavyweight tables are covered by the
   bench harness). *)

module Weights_io = Rt_optprob.Weights_io
module Experiments = Rt_repro.Experiments
module Generators = Rt_circuit.Generators

let check = Alcotest.check

let test_weights_roundtrip () =
  let c = Generators.c432ish () in
  let n = Array.length (Rt_circuit.Netlist.inputs c) in
  let w = Array.init n (fun i -> 0.05 +. (0.9 *. Float.of_int i /. Float.of_int n)) in
  let path = Filename.temp_file "weights" ".txt" in
  Weights_io.save path c w;
  let w' = Weights_io.load path c in
  Sys.remove path;
  Array.iteri
    (fun i v ->
      if Float.abs (v -. w'.(i)) > 1e-6 then Alcotest.failf "weight %d corrupted" i)
    w

let test_weights_load_defaults () =
  let c = Generators.c432ish () in
  let path = Filename.temp_file "weights" ".txt" in
  let oc = open_out path in
  output_string oc "# only one entry\nch0_r0 0.9\n";
  close_out oc;
  let w = Weights_io.load path c in
  Sys.remove path;
  check (Alcotest.float 1e-9) "named input set" 0.9 w.(0);
  check (Alcotest.float 1e-9) "others default" 0.5 w.(1)

let test_weights_load_unknown_name () =
  let c = Generators.c432ish () in
  let path = Filename.temp_file "weights" ".txt" in
  let oc = open_out path in
  output_string oc "does_not_exist 0.9\n";
  close_out oc;
  (match Weights_io.load path c with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected failure");
  Sys.remove path

let test_weights_pp_groups_runs () =
  let c = Generators.wide_and 6 in
  let txt = Format.asprintf "%a" (Weights_io.pp c) [| 0.9; 0.9; 0.9; 0.1; 0.1; 0.5 |] in
  let has_group = ref false in
  String.split_on_char '\n' txt
  |> List.iter (fun line ->
         if String.length line >= 6 && String.sub line 0 6 = "x0..x2" then has_group := true);
  check Alcotest.bool "run x0..x2 present" true !has_group

let test_by_id () =
  List.iter
    (fun id ->
      if Experiments.by_id id = None then Alcotest.failf "experiment %s missing" id)
    [ "t1"; "t2"; "t3"; "t4"; "t5"; "f1"; "f2"; "a1"; "x2"; "x3" ];
  check Alcotest.bool "unknown rejected" true (Experiments.by_id "t9" = None)

let test_f1_runs () =
  let t = Experiments.f1_s1_structure () in
  check Alcotest.string "id" "F1" t.Experiments.id;
  check Alcotest.bool "has rows" true (List.length t.Experiments.rows > 0);
  (* printable *)
  let txt = Format.asprintf "%a" Experiments.print_table t in
  check Alcotest.bool "prints" true (String.length txt > 50)

let test_x3_convexity_holds () =
  let t = Experiments.x3_convexity_scan () in
  let convex_row =
    List.exists (fun row -> row = [ "convex?"; "true" ]) t.Experiments.rows
  in
  check Alcotest.bool "scan confirms convexity" true convex_row

let test_x2_partitioning_wins () =
  let t = Experiments.x2_partitioning () in
  (* The gain row must report a factor greater than 1. *)
  let gain =
    List.find_map
      (fun row -> match row with [ "gain"; g ] -> Some g | _ -> None)
      t.Experiments.rows
  in
  match gain with
  | Some g ->
    let factor = float_of_string (String.sub g 1 (String.length g - 1)) in
    check Alcotest.bool "partitioning gains" true (factor > 1.0)
  | None -> Alcotest.fail "no gain row"

let () =
  Alcotest.run "rt_repro"
    [ ( "weights-io",
        [ Alcotest.test_case "roundtrip" `Quick test_weights_roundtrip;
          Alcotest.test_case "defaults" `Quick test_weights_load_defaults;
          Alcotest.test_case "unknown name" `Quick test_weights_load_unknown_name;
          Alcotest.test_case "pp groups runs" `Quick test_weights_pp_groups_runs ] );
      ( "experiments",
        [ Alcotest.test_case "by_id" `Quick test_by_id;
          Alcotest.test_case "f1 runs" `Quick test_f1_runs;
          Alcotest.test_case "x3 convexity" `Slow test_x3_convexity_holds;
          Alcotest.test_case "x2 partitioning" `Slow test_x2_partitioning_wins ] ) ]
