(* Property and unit tests for Rt_circuit.Passes: per-pass semantics
   preservation on randomly generated redundant netlists, fixpoint
   idempotence of the driver, fault map-back equivalence under the
   (jobs, block_words) grid, and the .bench parser tolerances the
   optimization demo files rely on. *)

open Rt_circuit
module Passes = Rt_circuit.Passes

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Random redundant netlists: Builder with folding and pruning off,
   seeded with constants, buffer chains, double negations, single-fanin
   n-ary gates and a guaranteed dead cone — raw material for every
   pass. *)

let redundant_circuit ?(n_gates = 30) ~n_inputs seed =
  let rng = Rt_util.Rng.create seed in
  let b = Builder.create ~fold:false ~prune:false () in
  let ins = Builder.inputs b "x" n_inputs in
  let c0 = Builder.const b false and c1 = Builder.const b true in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let p = Array.of_list !pool in
    p.(Rt_util.Rng.int rng (Array.length p))
  in
  let nary = [| Gate.And; Gate.Or; Gate.Xor; Gate.Nand; Gate.Nor; Gate.Xnor |] in
  for _ = 1 to n_gates do
    let g =
      match Rt_util.Rng.int rng 10 with
      | 0 -> Builder.buf b (pick ())
      | 1 -> Builder.not_ b (Builder.not_ b (pick ()))
      | 2 ->
        (* constant fanin: neutral or controlling depending on kind *)
        let k = nary.(Rt_util.Rng.int rng 6) in
        let c = if Rt_util.Rng.bool rng then c0 else c1 in
        Builder.gate b k [ pick (); c ]
      | 3 ->
        (* degenerate single-fanin n-ary gate *)
        Builder.gate b nary.(Rt_util.Rng.int rng 6) [ pick () ]
      | _ ->
        let k = nary.(Rt_util.Rng.int rng 6) in
        let arity = 1 + Rt_util.Rng.int rng 3 in
        Builder.gate b k (List.init arity (fun _ -> pick ()))
    in
    pool := g :: !pool
  done;
  (* Outputs from the middle of the pool, so later gates form dead cones;
     gates only (no inputs/constants) and deduplicated. *)
  let gates =
    List.filter
      (fun n -> not (Array.exists (( = ) n) ins || n = c0 || n = c1))
      !pool
  in
  let gates = Array.of_list gates in
  let n_out = 1 + Rt_util.Rng.int rng 3 in
  let chosen = ref [] in
  for _ = 1 to n_out do
    let g = gates.(Rt_util.Rng.int rng (Array.length gates)) in
    if not (List.mem g !chosen) then chosen := g :: !chosen
  done;
  List.iter (fun g -> Builder.output b g) !chosen;
  Builder.finalize b

let exhaustive_inputs n =
  List.init (1 lsl n) (fun v -> Array.init n (fun i -> (v lsr i) land 1 = 1))

let same_outputs c c' =
  let n = Array.length (Netlist.inputs c) in
  List.for_all (fun inp -> Netlist.eval_outputs c inp = Netlist.eval_outputs c' inp)
    (exhaustive_inputs n)

(* ------------------------------------------------------------------ *)
(* Per-pass contract: eval_outputs preserved exactly, inputs and outputs
   pinned, remap internally consistent. *)

let pass_contract_ok pass c =
  match Passes.apply pass c with
  | None -> true
  | Some (c', r) ->
    let ins = Netlist.inputs c and ins' = Netlist.inputs c' in
    let outs = Netlist.outputs c and outs' = Netlist.outputs c' in
    Passes.Remap.size_before r = Netlist.size c
    && Passes.Remap.size_after r = Netlist.size c'
    && Array.length ins = Array.length ins'
    && Array.for_all2 (fun o n -> Netlist.name c o = Netlist.name c' n) ins ins'
    && Array.for_all2 (fun i i' -> Passes.Remap.forward r i = Some i') ins ins'
    && Array.length outs = Array.length outs'
    && Array.for_all2 (fun o n -> Netlist.name c o = Netlist.name c' n) outs outs'
    && (let ok = ref true in
        for ni = 0 to Netlist.size c' - 1 do
          let oi = Passes.Remap.back r ni in
          if Passes.Remap.forward r oi <> Some ni then ok := false;
          if Netlist.name c oi <> Netlist.name c' ni then ok := false
        done;
        !ok)
    && same_outputs c c'

let pass_preservation_qcheck =
  QCheck.Test.make ~name:"every pass preserves eval_outputs and the pin contract"
    ~count:80
    QCheck.(pair (int_range 0 100_000) (int_range 2 5))
    (fun (seed, n_inputs) ->
      let c = redundant_circuit ~n_inputs seed in
      List.for_all (fun p -> pass_contract_ok p c) Passes.all)

let driver_preservation_qcheck =
  QCheck.Test.make ~name:"fixpoint driver preserves eval_outputs" ~count:80
    QCheck.(pair (int_range 0 100_000) (int_range 2 5))
    (fun (seed, n_inputs) ->
      let c = redundant_circuit ~n_inputs seed in
      let c', r, stats = Passes.run c in
      Netlist.size c' <= Netlist.size c
      && stats.Passes.rounds >= 1
      && Passes.Remap.size_before r = Netlist.size c
      && Passes.Remap.size_after r = Netlist.size c'
      && same_outputs c c')

let driver_idempotence_qcheck =
  QCheck.Test.make ~name:"fixpoint driver is idempotent" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 2 5))
    (fun (seed, n_inputs) ->
      let c = redundant_circuit ~n_inputs seed in
      let c1, _, _ = Passes.run c in
      let c2, r2, _ = Passes.run c1 in
      Passes.Remap.is_identity r2
      && Bench_format.to_string c1 = Bench_format.to_string c2)

let empty_pass_list_is_identity () =
  let c = redundant_circuit ~n_inputs:3 7 in
  let c', r, stats = Passes.run ~passes:[] c in
  check Alcotest.bool "same netlist" true (c == c');
  check Alcotest.bool "identity remap" true (Passes.Remap.is_identity r);
  check Alcotest.int "zero rounds" 0 stats.Passes.rounds

(* ------------------------------------------------------------------ *)
(* Fault map-back: the collapsed universe generated on the optimized
   netlist, mapped to original names, detects exactly like the same
   faults simulated on the original netlist — across the (jobs, W)
   grid. *)

let test_map_back_detection () =
  List.iter
    (fun seed ->
      let c = redundant_circuit ~n_inputs:4 ~n_gates:24 seed in
      let opt, remap, _ = Passes.run c in
      let pairs = Rt_fault.Collapse.collapsed_universe_back ~remap ~original:c ~optimized:opt in
      let opt_faults = Array.map fst pairs in
      let orig_faults =
        Array.map
          (fun (f, back) ->
            match back with
            | Some f' -> f'
            | None ->
              Alcotest.failf "map_back returned None for %s"
                (Rt_fault.Fault.to_string opt f))
          pairs
      in
      List.iter
        (fun (jobs, block_words) ->
          let simulate c faults =
            Rt_sim.Fault_sim.simulate ~jobs ~block_words ~drop:false c faults
              ~source:(Rt_sim.Pattern.equiprobable (Rt_util.Rng.create 4242)
                         ~n_inputs:(Array.length (Netlist.inputs c)))
              ~n_patterns:192
          in
          let s_opt = simulate opt opt_faults in
          let s_orig = simulate c orig_faults in
          let tag = Printf.sprintf "seed=%d jobs=%d W=%d" seed jobs block_words in
          check Alcotest.(array int)
            (tag ^ " detect_count")
            s_orig.Rt_sim.Fault_sim.detect_count s_opt.Rt_sim.Fault_sim.detect_count;
          check Alcotest.(array int)
            (tag ^ " first_detect")
            s_orig.Rt_sim.Fault_sim.first_detect s_opt.Rt_sim.Fault_sim.first_detect)
        [ (1, 1); (1, 8); (4, 1); (4, 8) ])
    [ 11; 5077; 90210 ]

(* ------------------------------------------------------------------ *)
(* Bench format tolerances: BUFF alias, CRLF line endings, trailing
   whitespace — the forms ISCAS distributions actually ship in. *)

let bench_text =
  "# tolerance fixture\n\
   INPUT(a)\n\
   INPUT(b)\n\
   OUTPUT(y)\n\
   OUTPUT(z)\n\
   w = BUFF(a)\n\
   y = AND(w, b)\n\
   z = BUFF(y)\n"

let test_bench_buff_alias () =
  let c = Bench_format.parse bench_text in
  let node name = match Netlist.find c name with Some n -> n | None -> Alcotest.failf "no %s" name in
  check Alcotest.bool "BUFF parses as Buf" true (Netlist.kind c (node "w") = Gate.Buf);
  check Alcotest.bool "z is Buf" true (Netlist.kind c (node "z") = Gate.Buf);
  (* print spells Buf back as BUFF, so the text roundtrips *)
  let c2 = Bench_format.parse (Bench_format.to_string c) in
  check Alcotest.string "roundtrip" (Bench_format.to_string c) (Bench_format.to_string c2)

let test_bench_crlf_and_whitespace () =
  (* Same netlist, but with CRLF endings, trailing blanks and padded
     argument lists. *)
  let dirty =
    String.concat "\r\n"
      [ "# tolerance fixture ";
        "INPUT( a )\t";
        "INPUT(b)  ";
        "OUTPUT(y)";
        "OUTPUT(z)\t ";
        "w = BUFF( a ) ";
        "y = AND( w , b )";
        "z = BUFF(y)";
        "" ]
  in
  let clean = Bench_format.parse bench_text in
  let parsed = Bench_format.parse dirty in
  check Alcotest.string "CRLF + whitespace tolerated" (Bench_format.to_string clean)
    (Bench_format.to_string parsed)

(* `dune runtest` runs tests from the test directory; `dune exec` from
   wherever it was invoked — accept both. *)
let example file =
  let candidates =
    [ Filename.concat "../examples" file;
      Filename.concat "examples" file;
      Filename.concat "_build/default/examples" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "example %s not found" file

let test_c17_loads_and_is_fixpoint () =
  let c = Bench_format.load (example "c17.bench") in
  check Alcotest.int "inputs" 5 (Array.length (Netlist.inputs c));
  check Alcotest.int "outputs" 2 (Array.length (Netlist.outputs c));
  check Alcotest.int "gates" 6 (Netlist.gate_count c);
  let c', _, _ = Passes.run c in
  check Alcotest.int "no nodes removed" (Netlist.size c) (Netlist.size c');
  check Alcotest.bool "semantics preserved" true (same_outputs c c')

let test_opt_demo_shape () =
  let c = Bench_format.load (example "opt_demo.bench") in
  check Alcotest.int "raw size" 16 (Netlist.size c);
  let c', remap, _ = Passes.run c in
  check Alcotest.int "optimized size" 5 (Netlist.size c');
  check Alcotest.bool "semantics preserved" true (same_outputs c c');
  check Alcotest.bool "remap not identity" false (Passes.Remap.is_identity remap);
  let node name =
    match Netlist.find c' name with Some n -> n | None -> Alcotest.failf "no %s" name
  in
  let y = node "y" and z = node "z" in
  check Alcotest.bool "y is AND" true (Netlist.kind c' y = Gate.And);
  check
    Alcotest.(list string)
    "y fanin" [ "a"; "b"; "c" ]
    (Netlist.fanin c' y |> Array.to_list |> List.map (Netlist.name c') |> List.sort compare);
  check Alcotest.bool "z is BUFF(y)" true
    (Netlist.kind c' z = Gate.Buf && (Netlist.fanin c' z).(0) = y)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_passes"
    [ ( "properties",
        [ q pass_preservation_qcheck;
          q driver_preservation_qcheck;
          q driver_idempotence_qcheck;
          Alcotest.test_case "empty pass list is the identity" `Quick
            empty_pass_list_is_identity ] );
      ( "fault-map-back",
        [ Alcotest.test_case "collapsed universe maps back, detection identical (jobs x W)"
            `Slow test_map_back_detection ] );
      ( "bench-format",
        [ Alcotest.test_case "BUFF alias" `Quick test_bench_buff_alias;
          Alcotest.test_case "CRLF and trailing whitespace" `Quick
            test_bench_crlf_and_whitespace;
          Alcotest.test_case "c17.bench loads; already a fixpoint" `Quick
            test_c17_loads_and_is_fixpoint;
          Alcotest.test_case "opt_demo.bench optimizes 16 -> 5" `Quick
            test_opt_demo_shape ] ) ]
