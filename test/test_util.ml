(* Unit and property tests for Rt_util: Rng, Bitvec, Prob, Stats, Int_heap,
   Bits, and the Parallel/Pool multicore layer. *)

module Rng = Rt_util.Rng
module Bitvec = Rt_util.Bitvec
module Prob = Rt_util.Prob
module Stats = Rt_util.Stats
module Int_heap = Rt_util.Int_heap
module Parallel = Rt_util.Parallel
module Pool = Rt_util.Pool
module Bits = Rt_util.Bits

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_rng_copy_independent () =
  (* A copy replays the same stream, and draws from one side do not
     advance the other. *)
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let a1 = Rng.bits64 a in
  let a2 = Rng.bits64 a in
  let b1 = Rng.bits64 b in
  let b2 = Rng.bits64 b in
  check Alcotest.int64 "first draw equal" a1 b1;
  check Alcotest.int64 "second draw equal" a2 b2

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of range"
  done

let test_rng_int_uniform () =
  let r = Rng.create 11 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.int r 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let p = Float.of_int c /. Float.of_int n in
      if Float.abs (p -. 0.1) > 0.01 then Alcotest.failf "bucket prob %.3f far from 0.1" p)
    counts

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_biased_word_statistics () =
  let r = Rng.create 9 in
  List.iter
    (fun p ->
      let ones = ref 0 in
      let words = 4000 in
      for _ = 1 to words do
        let w = Rng.biased_word r p in
        let rec pop x acc = if Int64.equal x 0L then acc else pop (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
        ones := !ones + pop w 0
      done;
      let measured = Float.of_int !ones /. Float.of_int (64 * words) in
      if Float.abs (measured -. p) > 0.01 then
        Alcotest.failf "biased_word(%.2f) measured %.4f" p measured)
    [ 0.05; 0.25; 0.5; 0.75; 0.9375 ]

let test_biased_word_extremes () =
  let r = Rng.create 1 in
  check Alcotest.int64 "p=0" 0L (Rng.biased_word r 0.0);
  check Alcotest.int64 "p=1" (-1L) (Rng.biased_word r 1.0)

let test_shuffle_permutation () =
  let r = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

(* --- Bitvec ----------------------------------------------------------------- *)

let test_bitvec_get_set () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0 true;
  Bitvec.set v 64 true;
  Bitvec.set v 129 true;
  check Alcotest.bool "bit 0" true (Bitvec.get v 0);
  check Alcotest.bool "bit 1" false (Bitvec.get v 1);
  check Alcotest.bool "bit 64" true (Bitvec.get v 64);
  check Alcotest.bool "bit 129" true (Bitvec.get v 129);
  check Alcotest.int "popcount" 3 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Bitvec.get") (fun () ->
      ignore (Bitvec.get v 10));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Bitvec.set") (fun () ->
      Bitvec.set v (-1) true)

let bitvec_qcheck =
  [ QCheck.Test.make ~name:"bitvec to/of_string roundtrip" ~count:200
      QCheck.(list_of_size Gen.(1 -- 200) bool)
      (fun bits ->
        let s = String.concat "" (List.map (fun b -> if b then "1" else "0") bits) in
        Bitvec.to_string (Bitvec.of_string s) = s);
    QCheck.Test.make ~name:"bitvec popcount matches naive" ~count:200
      QCheck.(list_of_size Gen.(1 -- 200) bool)
      (fun bits ->
        let v = Bitvec.create (List.length bits) in
        List.iteri (fun i b -> Bitvec.set v i b) bits;
        Bitvec.popcount v = List.length (List.filter Fun.id bits));
    QCheck.Test.make ~name:"bitvec iter_ones visits exactly the ones" ~count:200
      QCheck.(list_of_size Gen.(1 -- 200) bool)
      (fun bits ->
        let v = Bitvec.create (List.length bits) in
        List.iteri (fun i b -> Bitvec.set v i b) bits;
        let seen = ref [] in
        Bitvec.iter_ones v (fun i -> seen := i :: !seen);
        let expect = List.filteri (fun i _ -> List.nth bits i) (List.mapi (fun i _ -> i) bits) in
        List.rev !seen = expect);
    QCheck.Test.make ~name:"bitvec fill_random(1.0) sets exactly width bits" ~count:50
      QCheck.(pair (int_range 1 150) (int_range 0 1000))
      (fun (n, seed) ->
        let v = Bitvec.create n in
        Bitvec.fill_random (Rng.create seed) 1.0 v;
        Bitvec.popcount v = n) ]

(* --- Prob ------------------------------------------------------------------- *)

let test_clamp () =
  checkf "below" 0.0 (Prob.clamp (-0.5));
  checkf "above" 1.0 (Prob.clamp 1.5);
  checkf "inside" 0.3 (Prob.clamp 0.3);
  checkf "interior" 0.05 (Prob.interior 0.05 0.0)

let test_quantize () =
  checkf "grid 0.05" 0.35 (Prob.quantize ~grid:0.05 0.37);
  checkf "grid floor" 0.05 (Prob.quantize ~grid:0.05 0.0);
  checkf "grid ceil" 0.95 (Prob.quantize ~grid:0.05 1.0);
  checkf "dyadic" 0.25 (Prob.quantize_dyadic ~bits:4 0.26);
  checkf "dyadic floor" (1.0 /. 16.0) (Prob.quantize_dyadic ~bits:4 0.0)

let test_complement_product () =
  checkf "single" 0.3 (Prob.complement_product [| 0.3 |]);
  checkf "two independent" 0.75 (Prob.complement_product [| 0.5; 0.5 |]);
  checkf "with zero" 0.5 (Prob.complement_product [| 0.5; 0.0 |])

let test_detection_confidence () =
  (* One fault with p = 0.5 and n = 1: confidence 0.5. *)
  checkf "simple" 0.5 (Prob.detection_confidence ~n:1.0 [| 0.5 |]);
  (* Undetectable fault: confidence 0. *)
  checkf "undetectable" 0.0 (Prob.detection_confidence ~n:1e9 [| 0.0; 0.5 |]);
  (* Large n: confidence approaches 1. *)
  let c = Prob.detection_confidence ~n:1e6 [| 0.01; 0.02 |] in
  check Alcotest.bool "large n near 1" true (c > 0.999999)

let prob_qcheck =
  [ QCheck.Test.make ~name:"confidence is within [0,1] and monotone in n" ~count:300
      QCheck.(pair (list_of_size Gen.(1 -- 10) (float_range 0.0001 1.0)) (float_range 1.0 1e5))
      (fun (ps, n) ->
        let ps = Array.of_list ps in
        let c1 = Prob.detection_confidence ~n ps in
        let c2 = Prob.detection_confidence ~n:(2.0 *. n) ps in
        c1 >= 0.0 && c1 <= 1.0 && c2 >= c1 -. 1e-12);
    QCheck.Test.make ~name:"quantize lands on grid" ~count:300
      QCheck.(float_range 0.0 1.0)
      (fun x ->
        let q = Prob.quantize ~grid:0.05 x in
        let k = q /. 0.05 in
        Float.abs (k -. Float.round k) < 1e-9) ]

(* --- Stats / Int_heap --------------------------------------------------------- *)

let test_stats_mean_var () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "variance" 1.0 (Stats.variance [| 1.0; 2.0; 3.0 |]);
  checkf "empty mean" 0.0 (Stats.mean [||])

let test_stats_quantile () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median" 3.0 (Stats.quantile 0.5 a);
  checkf "min" 1.0 (Stats.quantile 0.0 a);
  checkf "max" 5.0 (Stats.quantile 1.0 a)

let test_geometric_steps () =
  let steps = Stats.geometric_steps ~lo:10 ~hi:1000 ~per_decade:2 in
  check Alcotest.int "first" 10 (List.hd steps);
  check Alcotest.int "last" 1000 (List.nth steps (List.length steps - 1));
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "strictly increasing" true (increasing steps)

let heap_qcheck =
  [ QCheck.Test.make ~name:"int heap pops in sorted order" ~count:300
      QCheck.(list (int_range 0 10_000))
      (fun xs ->
        let h = Int_heap.create () in
        List.iter (Int_heap.push h) xs;
        let out = ref [] in
        while not (Int_heap.is_empty h) do
          out := Int_heap.pop h :: !out
        done;
        List.rev !out = List.sort compare xs) ]

(* --- Bits ------------------------------------------------------------------ *)

let popcount_ref w =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical w i) 1L <> 0L then incr c
  done;
  !c

let ctz_ref w =
  let rec go i = if i = 64 || Int64.logand (Int64.shift_right_logical w i) 1L <> 0L then i else go (i + 1) in
  go 0

let test_bits_edge_cases () =
  check Alcotest.int "popcount 0" 0 (Bits.popcount 0L);
  check Alcotest.int "popcount -1" 64 (Bits.popcount (-1L));
  check Alcotest.int "popcount 1" 1 (Bits.popcount 1L);
  check Alcotest.int "popcount msb" 1 (Bits.popcount Int64.min_int);
  (* The helper this replaced looped forever on zero. *)
  check Alcotest.int "ctz 0 is total" 64 (Bits.ctz 0L);
  check Alcotest.int "ctz 1" 0 (Bits.ctz 1L);
  check Alcotest.int "ctz msb" 63 (Bits.ctz Int64.min_int);
  check Alcotest.int64 "lowest_bit 0" 0L (Bits.lowest_bit 0L);
  check Alcotest.int64 "lowest_bit 12" 4L (Bits.lowest_bit 12L)

let bits_qcheck =
  let word =
    QCheck.(
      map
        (fun (a, b) -> Int64.logxor (Int64.shift_left (Int64.of_int a) 32) (Int64.of_int b))
        (pair int int))
  in
  [ QCheck.Test.make ~name:"popcount matches bit loop" ~count:500 word
      (fun w -> Bits.popcount w = popcount_ref w);
    QCheck.Test.make ~name:"ctz matches bit loop" ~count:500 word
      (fun w -> Bits.ctz w = ctz_ref w);
    QCheck.Test.make ~name:"lowest_bit isolates ctz" ~count:500 word
      (fun w ->
        if Int64.equal w 0L then Bits.lowest_bit w = 0L
        else Bits.lowest_bit w = Int64.shift_left 1L (Bits.ctz w)) ]

(* --- Parallel ------------------------------------------------------------------ *)

let test_parallel_chunk_bounds () =
  List.iter
    (fun (jobs, n) ->
      let prev = ref 0 in
      for k = 0 to jobs - 1 do
        let lo, hi = Parallel.chunk_bounds ~jobs ~n k in
        check Alcotest.int "contiguous" !prev lo;
        let sz = hi - lo in
        check Alcotest.bool "balanced" true (sz >= n / jobs && sz <= (n / jobs) + 1);
        prev := hi
      done;
      check Alcotest.int "tiles the range" n !prev)
    [ (1, 10); (3, 10); (4, 3); (7, 100); (5, 0) ]

let test_parallel_covers_once () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Parallel.run_chunks ~jobs:4 ~n (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri (fun i h -> if h <> 1 then Alcotest.failf "index %d visited %d times" i h) hits

let test_parallel_worker_exception () =
  (* An exception in a spawned chunk must surface on the caller. *)
  match
    Parallel.run_chunks ~jobs:4 ~n:64 (fun ~chunk ~lo:_ ~hi:_ ->
        if chunk = 3 then failwith "boom")
  with
  | () -> Alcotest.fail "expected the worker's exception"
  | exception Failure msg -> check Alcotest.string "message" "boom" msg

let test_parallel_resolve () =
  check Alcotest.int "explicit wins" 5 (Parallel.resolve_jobs (Some 5));
  check Alcotest.int "nonsense clamps to serial" 1 (Parallel.resolve_jobs (Some 0));
  check Alcotest.int "cap" Parallel.max_jobs (Parallel.resolve_jobs (Some 10_000))

(* --- Pool ------------------------------------------------------------------ *)

(* Pool.run honours [participants] exactly (the hardware clamp lives in
   Parallel's region policy), so these tests exercise real cross-domain
   scheduling even on a single-core host. *)

let test_pool_covers_once () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let n = 10_000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run p ~grain:7 ~participants:4 ~n (fun _worker lo hi ->
          for i = lo to hi - 1 do
            Atomic.incr hits.(i)
          done);
      Array.iteri
        (fun i h -> if Atomic.get h <> 1 then Alcotest.failf "index %d visited %d times" i (Atomic.get h))
        hits;
      check Alcotest.int "grew exactly participants - 1 domains" 3 (Pool.size p))

let test_pool_reuse_and_growth () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let total = Atomic.make 0 in
      Pool.run p ~participants:2 ~n:100 (fun _ lo hi -> ignore (Atomic.fetch_and_add total (hi - lo)));
      check Alcotest.int "one worker after 2-way region" 1 (Pool.size p);
      (* Regions reuse parked domains; a wider region grows the pool. *)
      for _ = 1 to 20 do
        Pool.run p ~participants:4 ~n:50 (fun _ lo hi -> ignore (Atomic.fetch_and_add total (hi - lo)))
      done;
      check Alcotest.int "grown once to 3 workers" 3 (Pool.size p);
      check Alcotest.int "all items ran" (100 + (20 * 50)) (Atomic.get total))

let test_pool_exception_propagates () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (match Pool.run p ~grain:1 ~participants:4 ~n:64 (fun _ lo _ -> if lo = 40 then failwith "boom") with
       | () -> Alcotest.fail "expected the worker's exception"
       | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* The pool survives a failed region. *)
      let total = Atomic.make 0 in
      Pool.run p ~participants:4 ~n:64 (fun _ lo hi -> ignore (Atomic.fetch_and_add total (hi - lo)));
      check Alcotest.int "next region runs everything" 64 (Atomic.get total))

let test_pool_nested_runs_inline () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let inner_total = Atomic.make 0 in
      let saw_worker_flag = Atomic.make true in
      Pool.run p ~grain:1 ~participants:3 ~n:12 (fun _ _ _ ->
          if not (Pool.in_worker ()) then Atomic.set saw_worker_flag false;
          (* A nested submission must not deadlock on the submit lock; it
             runs the body inline. *)
          Pool.run p ~participants:3 ~n:5 (fun w lo hi ->
              if w <> 0 || lo <> 0 || hi <> 5 then Atomic.set saw_worker_flag false;
              ignore (Atomic.fetch_and_add inner_total (hi - lo))));
      check Alcotest.bool "in_worker set and nested runs inline" true (Atomic.get saw_worker_flag);
      check Alcotest.int "nested regions all ran" (12 * 5) (Atomic.get inner_total));
  check Alcotest.bool "in_worker cleared outside regions" false (Pool.in_worker ())

let test_pool_create_teardown_no_leak () =
  (* Repeated create/run/shutdown must terminate (join all domains) and a
     shut-down pool must refuse further parallel work. *)
  for _ = 1 to 10 do
    let p = Pool.create () in
    let total = Atomic.make 0 in
    Pool.run p ~participants:4 ~n:256 (fun _ lo hi -> ignore (Atomic.fetch_and_add total (hi - lo)));
    Pool.shutdown p;
    check Alcotest.int "covered before shutdown" 256 (Atomic.get total);
    check Alcotest.int "no domains after shutdown" 0 (Pool.size p)
  done;
  let p = Pool.create () in
  Pool.shutdown p;
  Pool.shutdown p;  (* idempotent *)
  (match Pool.run p ~participants:2 ~n:8 (fun _ _ _ -> ()) with
   | () -> Alcotest.fail "expected Invalid_argument after shutdown"
   | exception Invalid_argument _ -> ());
  (* Serial and empty regions never need domains, even shut down. *)
  Pool.run p ~participants:1 ~n:8 (fun _ _ _ -> ());
  Pool.run p ~participants:4 ~n:0 (fun _ _ _ -> ())

(* Per-lane scheduler counters must stay coherent with the global ones:
   every executed slice is attributed to exactly one lane, and every
   steal has both a thief (lane steals) and a victim (stolen_from). *)
let test_pool_lane_counters () =
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  Fun.protect ~finally:(fun () ->
      Rt_obs.set_enabled false;
      Rt_obs.clear ())
  @@ fun () ->
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p)
  @@ fun () ->
  let spin = Atomic.make 0 in
  for _ = 1 to 5 do
    Pool.run p ~grain:4 ~participants:4 ~n:1024 (fun _worker lo hi ->
        for _ = lo to hi - 1 do
          for _ = 1 to 50 do
            Atomic.incr spin
          done
        done)
  done;
  let snap = Rt_obs.counters_snapshot () in
  let v name = Option.value ~default:0 (List.assoc_opt name snap) in
  let lane_sum field =
    List.init 8 (fun k -> v (Printf.sprintf "pool.d%d.%s" k field))
    |> List.fold_left ( + ) 0
  in
  check Alcotest.bool "slices were executed" true (v "pool.tasks" > 0);
  check Alcotest.int "lane tasks sum to pool.tasks" (v "pool.tasks") (lane_sum "tasks");
  check Alcotest.int "lane steals sum to parallel.steals" (v "parallel.steals")
    (lane_sum "steals");
  check Alcotest.int "every steal has a victim queue" (lane_sum "steals")
    (lane_sum "stolen_from")

let test_parallel_sweep_covers_once () =
  let n = 5000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Parallel.sweep ~grain:13 ~jobs:4 ~n (fun ~worker:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        Atomic.incr hits.(i)
      done);
  Array.iteri
    (fun i h -> if Atomic.get h <> 1 then Alcotest.failf "index %d visited %d times" i (Atomic.get h))
    hits

let parallel_map_chunks_qcheck =
  QCheck.Test.make ~name:"map_chunks sums match serial" ~count:50
    QCheck.(pair (int_range 0 500) (int_range 1 8))
    (fun (n, jobs) ->
      let partials =
        Parallel.map_chunks ~jobs ~n (fun ~lo ~hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
      in
      List.fold_left ( + ) 0 partials = n * (n - 1) / 2)

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests) in
  Alcotest.run "rt_util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "biased word statistics" `Quick test_biased_word_statistics;
          Alcotest.test_case "biased word extremes" `Quick test_biased_word_extremes;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation ] );
      ( "bitvec",
        [ Alcotest.test_case "get/set/popcount" `Quick test_bitvec_get_set;
          Alcotest.test_case "bounds checks" `Quick test_bitvec_bounds ] );
      qsuite "bitvec-properties" bitvec_qcheck;
      ( "prob",
        [ Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "quantize" `Quick test_quantize;
          Alcotest.test_case "complement product" `Quick test_complement_product;
          Alcotest.test_case "detection confidence" `Quick test_detection_confidence ] );
      qsuite "prob-properties" prob_qcheck;
      ( "stats",
        [ Alcotest.test_case "mean/variance" `Quick test_stats_mean_var;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "geometric steps" `Quick test_geometric_steps ] );
      qsuite "heap-properties" heap_qcheck;
      ( "bits",
        Alcotest.test_case "edge cases" `Quick test_bits_edge_cases
        :: List.map (QCheck_alcotest.to_alcotest ~long:false) bits_qcheck );
      ( "parallel",
        [ Alcotest.test_case "chunk bounds" `Quick test_parallel_chunk_bounds;
          Alcotest.test_case "covers every index once" `Quick test_parallel_covers_once;
          Alcotest.test_case "worker exception propagates" `Quick test_parallel_worker_exception;
          Alcotest.test_case "resolve_jobs policy" `Quick test_parallel_resolve;
          Alcotest.test_case "sweep covers every index once" `Quick test_parallel_sweep_covers_once;
          QCheck_alcotest.to_alcotest ~long:false parallel_map_chunks_qcheck ] );
      ( "pool",
        [ Alcotest.test_case "covers every index once" `Quick test_pool_covers_once;
          Alcotest.test_case "reuses and grows domains" `Quick test_pool_reuse_and_growth;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "nested regions run inline" `Quick test_pool_nested_runs_inline;
          Alcotest.test_case "lane counters coherent" `Quick test_pool_lane_counters;
          Alcotest.test_case "create/teardown leaks nothing" `Quick
            test_pool_create_teardown_no_leak ] ) ]
