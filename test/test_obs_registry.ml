(* Tests for Rt_obs_registry: ingest/load parse-back, index durability
   (concurrent writers, corrupt records, lost index), gc retention
   invariants (qcheck), the step-change detector and sparkline, record
   materialization through the obs-diff engine, and the /runs + /trend
   HTTP endpoints (prom-linted live). *)

module Obs = Rt_obs
module Reg = Rt_obs_registry

let check = Alcotest.check

(* Scratch directories under the system temp dir, same convention as
   test_obs: registry-writing tests never touch the repo root. *)
let scratch_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "optprob-reg-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    let rec nuke d =
      if Sys.file_exists d then begin
        Array.iter
          (fun f ->
            let p = Filename.concat d f in
            if Sys.is_directory p then nuke p else Sys.remove p)
          (Sys.readdir d);
        Sys.rmdir d
      end
    in
    nuke dir;
    dir

let with_obs f () =
  Obs.set_enabled true;
  Obs.clear ();
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.clear ())
    f

(* Write one artifact directory carrying a histogram, a counter, a gauge
   and a span — every record shape the derived-metric map handles. *)
let write_artifact ?(queries = 5) ?(p50 = 100.0) dir =
  Obs.clear ();
  (* busy-wait so the span duration cannot round down to 0 us, which
     would drop it (and pipeline.total_us) from the derived map *)
  Obs.with_span ~cat:"phase" "pipeline.analyze" (fun () ->
      let t = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t < 1e-3 do
        ignore (Sys.opaque_identity 1)
      done);
  Obs.add (Obs.counter "reg.test.queries") queries;
  Obs.gauge_set (Obs.gauge "reg.test.level") 0.5;
  let h = Obs.histogram "reg.test.lat_us" in
  List.iter (Obs.observe h) [ p50 -. 1.0; p50; p50 +. 1.0 ];
  Obs.Artifact.write ~dir
    ~manifest:
      (Obs.Artifact.make_manifest ~engine:"cop" ~seed:7 ~jobs:2 ~circuit:"s1"
         ~patterns:64 ~block_words:8 ~opt_passes:[ "fold" ] ~opt_rounds:1
         ~objective:"ndetect:2"
         ~argv:[| "test"; "registry" |]
         ~wall_s:0.25 ())
    ();
  Obs.clear ()

let ingest_exn ?id ~registry dir =
  match Reg.ingest ?id ~registry ~obs_dir:dir () with
  | Ok id -> id
  | Error e -> Alcotest.failf "ingest failed: %s" e

(* --- ingest / load parse-back ----------------------------------------------- *)

let test_roundtrip =
  with_obs @@ fun () ->
  let registry = scratch_dir "rt" in
  let art = scratch_dir "rt-art" in
  write_artifact art;
  let id = ingest_exn ~registry art in
  (match Reg.list ~registry () with
   | [ s ] ->
     check Alcotest.string "listed id" id s.Reg.id;
     check (Alcotest.option Alcotest.string) "circuit" (Some "s1") s.Reg.circuit;
     check (Alcotest.option Alcotest.string) "engine" (Some "cop") s.Reg.engine;
     check Alcotest.bool "git rev non-empty" true (s.Reg.git_rev <> "");
     check (Alcotest.float 1e-9) "wall_s" 0.25 s.Reg.wall_s;
     List.iter
       (fun (k, v) ->
         check (Alcotest.option Alcotest.string) ("config " ^ k) (Some v)
           (List.assoc_opt k s.Reg.config))
       [ ("engine", "cop"); ("circuit", "s1"); ("seed", "7"); ("jobs", "2");
         ("patterns", "64"); ("block_words", "8"); ("opt_passes", "fold");
         ("opt_rounds", "1"); ("objective", "ndetect:2") ]
   | l -> Alcotest.failf "expected 1 record, got %d" (List.length l));
  let r =
    match Reg.load ~registry id with
    | Ok r -> r
    | Error e -> Alcotest.failf "load failed: %s" e
  in
  check (Alcotest.option (Alcotest.float 1e-9)) "counter metric" (Some 5.0)
    (Reg.metric r "reg.test.queries");
  check (Alcotest.option (Alcotest.float 1e-9)) "gauge metric" (Some 0.5)
    (Reg.metric r "reg.test.level");
  check (Alcotest.option (Alcotest.float 1e-9)) "histogram p50" (Some 100.0)
    (Reg.metric r "reg.test.lat_us.p50");
  check (Alcotest.option (Alcotest.float 1e-9)) "histogram count" (Some 3.0)
    (Reg.metric r "reg.test.lat_us.count");
  check Alcotest.bool "span total present" true
    (Reg.metric r "span.pipeline.analyze.us" <> None);
  check Alcotest.bool "pipeline.total_us derived" true
    (Reg.metric r "pipeline.total_us" <> None);
  check (Alcotest.option (Alcotest.float 1e-9)) "wall_s metric" (Some 0.25)
    (Reg.metric r "wall_s");
  check Alcotest.bool "metric_names sorted, non-trivial" true
    (let names = Reg.metric_names r in
     List.length names >= 8 && List.sort String.compare names = names)

(* --- filters ----------------------------------------------------------------- *)

let test_filters =
  with_obs @@ fun () ->
  let registry = scratch_dir "filt" in
  let art = scratch_dir "filt-art" in
  write_artifact art;
  let _ = ingest_exn ~id:"20260101T000000-aaaaaa" ~registry art in
  let _ = ingest_exn ~id:"20260101T000001-bbbbbb" ~registry art in
  let n f = List.length (Reg.list ~filter:f ~registry ()) in
  check Alcotest.int "no filter" 2 (n Reg.no_filter);
  check Alcotest.int "engine match" 2 (n { Reg.no_filter with Reg.f_engine = Some "cop" });
  check Alcotest.int "engine mismatch" 0 (n { Reg.no_filter with Reg.f_engine = Some "bdd" });
  check Alcotest.int "circuit match" 2 (n { Reg.no_filter with Reg.f_circuit = Some "s1" });
  check Alcotest.int "config K=V match" 2
    (n { Reg.no_filter with Reg.f_config = [ ("block_words", "8") ] });
  check Alcotest.int "config K=V mismatch" 0
    (n { Reg.no_filter with Reg.f_config = [ ("block_words", "1") ] });
  check Alcotest.int "config objective match" 2
    (n { Reg.no_filter with Reg.f_config = [ ("objective", "ndetect:2") ] });
  check Alcotest.int "config objective mismatch" 0
    (n { Reg.no_filter with Reg.f_config = [ ("objective", "single") ] });
  let all = Reg.list ~registry () in
  let prefix = String.sub (List.hd all).Reg.git_rev 0 6 in
  check Alcotest.int "git rev prefix match" 2
    (n { Reg.no_filter with Reg.f_git_rev = Some prefix })

(* --- durability -------------------------------------------------------------- *)

(* Two domains ingesting concurrently into one registry: no lost records,
   and the index converges to cover exactly the record files. *)
let test_concurrent_ingest =
  with_obs @@ fun () ->
  let registry = scratch_dir "conc" in
  let art_a = scratch_dir "conc-a" and art_b = scratch_dir "conc-b" in
  write_artifact art_a;
  write_artifact art_b;
  let per_domain = 8 in
  let ingest_many tag art =
    Array.init per_domain (fun i ->
        ingest_exn ~id:(Printf.sprintf "20260201T0000%02d-%s" i tag) ~registry art)
  in
  let d = Domain.spawn (fun () -> ingest_many "aaaaaa" art_a) in
  let ids_b = ingest_many "bbbbbb" art_b in
  let ids_a = Domain.join d in
  let listed = Reg.list ~registry () in
  check Alcotest.int "no lost records" (2 * per_domain) (List.length listed);
  Array.iter
    (fun id ->
      check Alcotest.bool ("listed " ^ id) true
        (List.exists (fun s -> s.Reg.id = id) listed))
    (Array.append ids_a ids_b);
  (* a second list must agree (index now consistent with the dir scan) *)
  check Alcotest.int "stable relisting" (2 * per_domain) (List.length (Reg.list ~registry ()))

(* Corrupt or truncated record files are skipped, never fatal — and losing
   index.json loses nothing. *)
let test_corrupt_records =
  with_obs @@ fun () ->
  let registry = scratch_dir "corrupt" in
  let art = scratch_dir "corrupt-art" in
  write_artifact art;
  let id = ingest_exn ~registry art in
  let records = Filename.concat registry "records" in
  let put name body =
    let oc = open_out_bin (Filename.concat records name) in
    output_string oc body;
    close_out oc
  in
  put "zzzz-garbage.json" "this is not json";
  put "zzzz-truncated.json" "{\"schema\": \"optprob-registry/1\", \"id\": \"zz";
  put "zzzz-wrong-schema.json" "{\"schema\": \"something-else/9\", \"id\": \"x\"}";
  let listed = Reg.list ~registry () in
  check Alcotest.int "good record survives corruption neighbours" 1 (List.length listed);
  check Alcotest.string "surviving id" id (List.hd listed).Reg.id;
  (match Reg.load ~registry "zzzz-garbage" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage record loaded");
  (* deleting the index forces a rebuild from the records *)
  Sys.remove (Filename.concat registry "index.json");
  let relisted = Reg.list ~registry () in
  check Alcotest.int "index rebuild from records" 1 (List.length relisted);
  check Alcotest.string "rebuilt id" id (List.hd relisted).Reg.id;
  (* ingest keeps working next to the junk *)
  let id2 = ingest_exn ~registry art in
  check Alcotest.bool "post-corruption ingest" true (id2 <> id);
  check Alcotest.int "both listed" 2 (List.length (Reg.list ~registry ()))

(* --- gc retention invariants (qcheck) ---------------------------------------- *)

(* For any record count, keep bound and promoted baseline: gc keeps
   exactly the newest [keep] plus the baseline, returns the number
   removed, and the survivors are the newest ones (age order preserved). *)
let test_gc_invariants =
  QCheck.Test.make ~count:15 ~name:"gc keeps newest K plus the baseline"
    QCheck.(triple (int_range 0 8) (int_range 0 10) (int_range 0 7))
    (fun (n, keep, base_i) ->
      Obs.set_enabled true;
      Obs.clear ();
      Fun.protect ~finally:(fun () ->
          Obs.set_enabled false;
          Obs.clear ())
      @@ fun () ->
      let registry = scratch_dir "gcq" in
      let art = scratch_dir "gcq-art" in
      write_artifact art;
      let ids =
        Array.init n (fun i ->
            ingest_exn ~id:(Printf.sprintf "20260301T0000%02d-cccccc" i) ~registry art)
      in
      let base = if n > 0 && base_i < n then Some ids.(base_i) else None in
      (match base with
       | Some b -> (
         match Reg.promote ~registry b with
         | Ok () -> ()
         | Error e -> Alcotest.failf "promote: %s" e)
       | None -> ());
      let before = Reg.list ~registry () in
      let removed = Reg.gc ~keep ~registry () in
      let after = Reg.list ~registry () in
      let expected_survivors =
        List.filteri
          (fun i s ->
            i >= List.length before - keep || Some s.Reg.id = base)
          before
      in
      List.length after = List.length expected_survivors
      && List.for_all2 (fun a b -> a.Reg.id = b.Reg.id) after expected_survivors
      && removed = List.length before - List.length after
      && (match base with
          | Some b -> List.exists (fun s -> s.Reg.id = b) after
          | None -> true))

(* --- trends ------------------------------------------------------------------ *)

let test_series_and_steps =
  with_obs @@ fun () ->
  let registry = scratch_dir "trend" in
  (* per-run p50 targets; the histogram buckets approximate them, so the
     expected series is read back from the records themselves *)
  let vals = [| 100.0; 101.0; 99.0; 100.0; 250.0 |] in
  let ids =
    Array.mapi
      (fun i v ->
        let art = scratch_dir (Printf.sprintf "trend-art%d" i) in
        write_artifact ~p50:v art;
        ingest_exn ~id:(Printf.sprintf "20260401T0000%02d-dddddd" i) ~registry art)
      vals
  in
  let expected =
    Array.map
      (fun id ->
        match Reg.load ~registry id with
        | Ok r -> Option.get (Reg.metric r "reg.test.lat_us.p50")
        | Error e -> Alcotest.failf "load %s: %s" id e)
      ids
  in
  let s = Reg.series ~registry "reg.test.lat_us.p50" in
  check Alcotest.int "five points" 5 (List.length s.Reg.s_points);
  let got = Array.of_list (List.map (fun p -> p.Reg.p_value) s.Reg.s_points) in
  Array.iteri
    (fun i _ ->
      check (Alcotest.float 1e-9) (Printf.sprintf "point %d" i) expected.(i) got.(i))
    got;
  let sorted = Array.copy expected in
  Array.sort Float.compare sorted;
  check (Alcotest.float 1e-9) "p50 of series (nearest rank)" sorted.(2) s.Reg.s_p50;
  (* last=2 trims from the front *)
  let s2 = Reg.series ~last:2 ~registry "reg.test.lat_us.p50" in
  check Alcotest.int "last=2" 2 (List.length s2.Reg.s_points);
  check (Alcotest.float 1e-9) "last=2 keeps the newest" expected.(4)
    (match List.rev s2.Reg.s_points with p :: _ -> p.Reg.p_value | [] -> Float.nan);
  (* the 2.5x jump at the end is a step up; the flat prefix is quiet *)
  (match Reg.step_changes got with
   | [ st ] ->
     check Alcotest.int "step index" 4 st.Reg.st_index;
     check Alcotest.bool "step direction up" true st.Reg.st_up;
     check Alcotest.bool "deviation over threshold" true (st.Reg.st_ratio >= 1.0)
   | l -> Alcotest.failf "expected exactly 1 step, got %d" (List.length l));
  check Alcotest.int "flat series has no steps" 0
    (List.length (Reg.step_changes [| 5.0; 5.0; 5.0; 5.0; 5.0; 5.0 |]));
  check Alcotest.int "too-short series has no steps" 0
    (List.length (Reg.step_changes [| 1.0; 100.0; 1.0 |]));
  (* missing metric: empty series, nan stats *)
  let none = Reg.series ~registry "no.such.metric" in
  check Alcotest.int "missing metric empty" 0 (List.length none.Reg.s_points);
  check Alcotest.bool "missing metric nan stats" true (Float.is_nan none.Reg.s_p50)

let test_sparkline =
  QCheck.Test.make ~count:50 ~name:"sparkline covers range ends"
    QCheck.(list_of_size (Gen.int_range 2 12) (float_range 0.0 1000.0))
    (fun vals ->
      let a = Array.of_list vals in
      let s = Reg.sparkline a in
      (* one 3-byte UTF-8 block per value *)
      String.length s = 3 * Array.length a)

let test_sparkline_ends =
  with_obs @@ fun () ->
  check Alcotest.string "empty" "" (Reg.sparkline [||]);
  let s = Reg.sparkline [| 0.0; 1.0 |] in
  check Alcotest.string "min then max" "\xe2\x96\x81\xe2\x96\x88" s

(* --- baseline + materialize -------------------------------------------------- *)

let test_baseline_and_materialize =
  with_obs @@ fun () ->
  let registry = scratch_dir "base" in
  let art = scratch_dir "base-art" in
  write_artifact art;
  let id = ingest_exn ~registry art in
  check (Alcotest.option Alcotest.string) "no baseline yet" None (Reg.promoted ~registry);
  (match Reg.promote ~registry "nonexistent" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "promoted a missing record");
  (match Reg.promote ~registry id with
   | Ok () -> ()
   | Error e -> Alcotest.failf "promote: %s" e);
  check (Alcotest.option Alcotest.string) "promoted" (Some id) (Reg.promoted ~registry);
  (* a materialized record diffs clean against the original artifact dir:
     counters and histogram quantiles identical, span totals aggregated
     but equal — the whole point of keeping records diffable *)
  let dir = scratch_dir "base-mat" in
  (match Reg.materialize ~registry ~dir id with
   | Ok () -> ()
   | Error e -> Alcotest.failf "materialize: %s" e);
  let d = Obs.Diff.compare_dirs art dir in
  check Alcotest.int "original vs materialized: no regressions" 0
    (List.length (Obs.Diff.regressions d));
  let self = Obs.Diff.compare_dirs dir dir in
  check Alcotest.int "materialized self-diff clean" 0
    (List.length (Obs.Diff.regressions self));
  Reg.clear_baseline ~registry;
  check (Alcotest.option Alcotest.string) "cleared" None (Reg.promoted ~registry)

(* --- HTTP /runs + /trend ------------------------------------------------------ *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path in
  let _ = Unix.write_substring fd req 0 (String.length req) in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  let raw = Buffer.contents buf in
  let code =
    try Scanf.sscanf raw "HTTP/1.1 %d" Fun.id
    with Scanf.Scan_failure _ | End_of_file -> -1
  in
  let body =
    let rec find i =
      if i + 4 > String.length raw then String.length raw
      else if String.sub raw i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    let b = find 0 in
    String.sub raw b (String.length raw - b)
  in
  (code, body)

let test_http_endpoints =
  with_obs @@ fun () ->
  let registry = scratch_dir "http" in
  let art = scratch_dir "http-art" in
  write_artifact art;
  let id = ingest_exn ~registry art in
  let srv = Rt_obs_http.start ~registry ~port:0 () in
  Fun.protect ~finally:(fun () -> Rt_obs_http.stop srv)
  @@ fun () ->
  let port = Rt_obs_http.port srv in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (* JSON bodies parse back and carry the record *)
  let code, body = http_get port "/runs" in
  check Alcotest.int "/runs 200" 200 code;
  let j = Obs.Json.parse body in
  (match Obs.Json.member "schema" j with
   | Some (Obs.Json.Str "optprob-runs/1") -> ()
   | _ -> Alcotest.fail "/runs schema");
  check Alcotest.bool "/runs lists the record" true (contains id body);
  let code, body = http_get port "/trend?metric=reg.test.lat_us.p50" in
  check Alcotest.int "/trend 200" 200 code;
  (match Obs.Json.member "schema" (Obs.Json.parse body) with
   | Some (Obs.Json.Str "optprob-trend/1") -> ()
   | _ -> Alcotest.fail "/trend schema");
  (* prom variants pass the same lint as /metrics, # EOF terminator and all *)
  let code, prom = http_get port "/runs?format=prom" in
  check Alcotest.int "/runs prom 200" 200 code;
  (match Obs.prom_lint prom with
   | [] -> ()
   | errs -> Alcotest.failf "/runs prom fails lint: %s" (String.concat "; " errs));
  check Alcotest.bool "/runs prom run_info" true (contains "optprob_run_info{" prom);
  let code, prom = http_get port "/trend?metric=reg.test.lat_us.p50&format=prom" in
  check Alcotest.int "/trend prom 200" 200 code;
  (match Obs.prom_lint prom with
   | [] -> ()
   | errs -> Alcotest.failf "/trend prom fails lint: %s" (String.concat "; " errs));
  check Alcotest.bool "/trend prom family" true (contains "optprob_trend{" prom);
  (* parameter validation *)
  let code, _ = http_get port "/trend" in
  check Alcotest.int "/trend without metric is 400" 400 code;
  (* a server without a registry 404s both endpoints *)
  let bare = Rt_obs_http.start ~port:0 () in
  Fun.protect ~finally:(fun () -> Rt_obs_http.stop bare)
  @@ fun () ->
  let bport = Rt_obs_http.port bare in
  let code, _ = http_get bport "/runs" in
  check Alcotest.int "/runs without registry is 404" 404 code;
  let code, _ = http_get bport "/trend?metric=x" in
  check Alcotest.int "/trend without registry is 404" 404 code

let () =
  Alcotest.run "rt_obs_registry"
    [ ( "record",
        [ Alcotest.test_case "ingest/load parse-back" `Quick test_roundtrip;
          Alcotest.test_case "list filters" `Quick test_filters ] );
      ( "durability",
        [ Alcotest.test_case "concurrent two-domain ingest" `Quick test_concurrent_ingest;
          Alcotest.test_case "corrupt records skipped, index rebuilt" `Quick
            test_corrupt_records;
          QCheck_alcotest.to_alcotest test_gc_invariants ] );
      ( "trend",
        [ Alcotest.test_case "series, last, step changes" `Quick test_series_and_steps;
          QCheck_alcotest.to_alcotest test_sparkline;
          Alcotest.test_case "sparkline range ends" `Quick test_sparkline_ends ] );
      ( "baseline",
        [ Alcotest.test_case "promote/materialize/diff/clear" `Quick
            test_baseline_and_materialize ] );
      ( "http",
        [ Alcotest.test_case "/runs and /trend, prom-linted" `Quick test_http_endpoints ] )
    ]
