(* Tests for Rt_testability: signal probability engines, the cutting
   algorithm's bounds, observability, STAFAN, the detection-probability
   oracles, and test-length computation. *)

module Signal_prob = Rt_testability.Signal_prob
module Cutting = Rt_testability.Cutting
module Observability = Rt_testability.Observability
module Stafan = Rt_testability.Stafan
module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle
module Test_length = Rt_testability.Test_length
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators
module Builder = Rt_circuit.Builder

let check = Alcotest.check

(* A fanout-free tree: independence propagation is exact there. *)
let tree_circuit () =
  let b = Builder.create () in
  let x = Builder.inputs b "x" 6 in
  let a1 = Builder.and2 b x.(0) x.(1) in
  let o1 = Builder.or2 b x.(2) x.(3) in
  let x1 = Builder.xor2 b x.(4) x.(5) in
  let top = Builder.orn b [ a1; o1 ] in
  Builder.output b ~name:"t" (Builder.and2 b top x1);
  Builder.finalize b

let test_independence_exact_on_trees () =
  let c = tree_circuit () in
  let x = [| 0.3; 0.7; 0.2; 0.9; 0.5; 0.4 |] in
  let est = Signal_prob.independence c x in
  match Signal_prob.exact c x with
  | None -> Alcotest.fail "tiny circuit must fit"
  | Some ex ->
    Array.iteri
      (fun i e ->
        if Float.abs (e -. est.(i)) > 1e-9 then
          Alcotest.failf "node %d: exact %.6f vs independence %.6f" i e est.(i))
      ex

let test_max_error_positive_on_reconvergent () =
  (* y = x AND x through two paths: independence gets 0.25, truth is 0.5. *)
  let b = Builder.create ~fold:false () in
  let x = Builder.input b "x" in
  let p1 = Builder.buf b x in
  let p2 = Builder.buf b x in
  Builder.output b ~name:"y" (Builder.and2 b p1 p2);
  let c = Builder.finalize b in
  match Signal_prob.max_error c [| 0.5 |] with
  | None -> Alcotest.fail "must fit"
  | Some err -> check (Alcotest.float 1e-9) "error is 0.25" 0.25 err

let test_cutting_xor_reconvergence () =
  (* Regression: XOR of two copies of the same signal is identically 0;
     naive interval-corner propagation claims [0.5, 0.5] at p = 0.5.  The
     support-aware Frechet rule must keep 0 inside the interval. *)
  let b = Builder.create ~fold:false () in
  let x = Builder.input b "x" in
  let p1 = Builder.buf b x in
  let p2 = Builder.buf b x in
  let g = Builder.xor2 b p1 p2 in
  Builder.output b ~name:"y" g;
  let c = Builder.finalize b in
  let iv = Cutting.bounds c [| 0.5 |] in
  let lo, hi = iv.(g) in
  check Alcotest.bool "zero inside" true (lo <= 1e-9 && hi >= 0.0);
  (* And the AND case: AND of complementary copies is identically 0. *)
  let b = Builder.create ~fold:false () in
  let x = Builder.input b "x" in
  let nx = Builder.not_ b x in
  let g = Builder.and2 b x nx in
  Builder.output b ~name:"y" g;
  let c = Builder.finalize b in
  let iv = Cutting.bounds c [| 0.5 |] in
  let lo, _hi = iv.(g) in
  check Alcotest.bool "and of complements contains 0" true (lo <= 1e-9)

let test_conditioned_exact_when_covering () =
  (* y = x AND x via two buffers: conditioning on x (its fanout is 2) makes
     the estimate exact where independence got 0.25. *)
  let b = Builder.create ~fold:false () in
  let x = Builder.input b "x" in
  let p1 = Builder.buf b x in
  let p2 = Builder.buf b x in
  let g = Builder.and2 b p1 p2 in
  Builder.output b ~name:"y" g;
  let c = Builder.finalize b in
  let est = Signal_prob.conditioned c [| 0.5 |] in
  check (Alcotest.float 1e-9) "exact after conditioning" 0.5 est.(g)

let conditioned_improves_qcheck =
  (* Across random circuits the conditioned estimator's mean absolute
     error against the exact probabilities must not exceed plain
     independence's. *)
  QCheck.Test.make ~name:"conditioning never hurts on average" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:35 ~seed in
      let x = Array.make 7 0.5 in
      match Signal_prob.exact c x with
      | None -> QCheck.assume_fail ()
      | Some ex ->
        let err est =
          let s = ref 0.0 in
          Array.iteri (fun i p -> s := !s +. Float.abs (p -. est.(i))) ex;
          !s
        in
        err (Signal_prob.conditioned c x) <= err (Signal_prob.independence c x) +. 1e-9)

let cutting_qcheck =
  QCheck.Test.make ~name:"cutting bounds contain exact probabilities" ~count:40
    QCheck.(pair (int_range 0 10_000) (float_range 0.1 0.9))
    (fun (seed, p) ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let x = Array.make 7 p in
      match Signal_prob.exact c x with
      | None -> QCheck.assume_fail ()
      | Some exact -> Cutting.contains (Cutting.bounds c x) exact)

let cutting_contains_independence_qcheck =
  QCheck.Test.make ~name:"cutting bounds contain the independence estimate" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let x = Array.make 7 0.5 in
      Cutting.contains (Cutting.bounds c x) (Signal_prob.independence c x))

let test_observability_range_and_outputs () =
  let c = Generators.c880ish () in
  let x = Array.make 22 0.5 in
  let sp = Signal_prob.independence c x in
  let obs = Observability.cop c ~node_probs:sp in
  Array.iter
    (fun o ->
      if o < -1e-12 || o > 1.0 +. 1e-12 then Alcotest.failf "observability %f out of range" o)
    obs;
  Array.iter
    (fun o -> if obs.(o) < 1.0 -. 1e-12 then Alcotest.fail "primary output must have obs 1")
    (Netlist.outputs c)

let test_pin_sensitization () =
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let g = Builder.and2 b x y in
  Builder.output b g;
  let c = Builder.finalize b in
  let sp = Signal_prob.independence c [| 0.3; 0.8 |] in
  (* Sensitisation of pin 0 (x) through the AND = P(y = 1) = 0.8. *)
  check (Alcotest.float 1e-9) "and pin sens" 0.8 (Observability.pin_sensitization c ~node_probs:sp g 0)

let test_cop_exact_on_single_and () =
  (* For z = AND(x, y), fault z s-a-0: COP predicts p(x=1)p(y=1). *)
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let g = Builder.and2 b x y in
  Builder.output b g;
  let c = Builder.finalize b in
  let f = [| { Rt_fault.Fault.site = Rt_fault.Fault.Stem g; stuck = false } |] in
  let o = Detect.make Detect.Cop c f in
  let pf = Detect.probs o [| 0.4; 0.7 |] in
  check (Alcotest.float 1e-9) "cop exact here" (0.4 *. 0.7) pf.(0)

let oracle_agreement_qcheck =
  (* All four engines agree within Monte-Carlo tolerance on small circuits
     (COP only roughly: factor ~4 or absolute 0.12 — it is an estimator). *)
  QCheck.Test.make ~name:"bdd oracle equals mc oracle within noise" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let bdd = Detect.make (Detect.Bdd_exact { node_limit = 500_000 }) c faults in
      let mc = Detect.make (Detect.Monte_carlo { n_patterns = 8_000; seed = 5 }) c faults in
      let x = Array.make 7 0.5 in
      let pb = Detect.probs bdd x in
      let pm = Detect.probs mc x in
      let exact = Detect.exact_mask bdd in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          if exact.(i) then begin
            let tol = (3.0 *. Rt_sim.Detect_mc.confidence_halfwidth ~p ~n:8_000) +. 0.01 in
            if Float.abs (p -. pm.(i)) > tol then ok := false
          end)
        pb;
      !ok)

let test_stafan_close_to_exact_on_tree () =
  let c = tree_circuit () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let stafan = Detect.make (Detect.Stafan { n_patterns = 20_000; seed = 3 }) c faults in
  let bdd = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let x = Array.make 6 0.5 in
  let ps = Detect.probs stafan x in
  let pb = Detect.probs bdd x in
  Array.iteri
    (fun i p ->
      (* trees have no reconvergence: STAFAN's independence assumptions are
         close to exact; activation x observability still ignores their
         correlation, so allow a loose band. *)
      if Float.abs (p -. pb.(i)) > 0.15 then
        Alcotest.failf "fault %d: stafan %.3f vs exact %.3f" i p pb.(i))
    ps

let subset_matches_gather_qcheck =
  (* The subset-aware PREPARE path must agree exactly with gathering from
     the full sweep on every engine: the cone-restricted sweeps compute the
     same arithmetic on the masked nodes, the BDD engine's per-root
     probabilities are memo-independent, and MC/STAFAN counting is
     per-fault independent. *)
  QCheck.Test.make ~name:"probs_subset equals gathered full probs on every engine" ~count:10
    QCheck.(pair (int_range 0 10_000) (int_range 0 1_000))
    (fun (seed, wseed) ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let nf = Array.length faults in
      if nf = 0 then QCheck.assume_fail ()
      else begin
        let rng = Rt_util.Rng.create wseed in
        let x = Array.init 7 (fun _ -> 0.05 +. (0.9 *. Rt_util.Rng.float rng)) in
        let subset =
          let l = List.filter (fun _ -> Rt_util.Rng.float rng < 0.4) (List.init nf Fun.id) in
          Array.of_list (match l with [] -> [ Rt_util.Rng.int rng nf ] | l -> l)
        in
        let engines =
          [ Detect.Cop;
            Detect.Conditioned { max_vars = 3 };
            Detect.Bdd_exact { node_limit = 200_000 };
            Detect.Stafan { n_patterns = 256; seed = 3 };
            Detect.Monte_carlo { n_patterns = 256; seed = 5 } ]
        in
        List.for_all
          (fun e ->
            let o = Detect.make e c faults in
            let full = Detect.probs o x in
            let sub = Detect.probs_subset o subset x in
            (* Query twice: the second call exercises the cached cone plan. *)
            let sub2 = Detect.probs_subset o subset x in
            let ok = ref (Array.length sub = Array.length subset) in
            Array.iteri
              (fun j fi ->
                if Float.abs (sub.(j) -. full.(fi)) > 1e-12 then ok := false;
                if sub2.(j) <> sub.(j) then ok := false)
              subset;
            !ok)
          engines
      end)

let jobs_oracle_agreement_qcheck =
  (* Sharded per-fault work must not change COP / Monte-Carlo results at
     all (disjoint writes of identical expressions); the conditioned
     engine's per-chunk accumulators may differ by summation order only. *)
  QCheck.Test.make ~name:"oracle with jobs=3 matches jobs=1" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      if Array.length faults = 0 then QCheck.assume_fail ()
      else begin
        let x = Array.make 7 0.4 in
        let agree ?(tol = 0.0) e =
          let p1 = Detect.probs (Detect.make ~jobs:1 e c faults) x in
          let p3 = Detect.probs (Detect.make ~jobs:3 e c faults) x in
          let ok = ref true in
          Array.iteri (fun i p -> if Float.abs (p -. p3.(i)) > tol then ok := false) p1;
          !ok
        in
        agree Detect.Cop
        && agree (Detect.Monte_carlo { n_patterns = 256; seed = 5 })
        && agree ~tol:1e-9 (Detect.Conditioned { max_vars = 3 })
      end)

let cofactor_matches_two_subsets_qcheck =
  (* The protocol's central contract: [Oracle.cofactor_pair] — fused
     incremental path or generic fallback, at any [jobs] — returns exactly
     what two independent [probs_subset] evaluations at x_i = 0 / 1
     return, bit for bit, and never mutates the caller's [x]. *)
  QCheck.Test.make ~name:"cofactor_pair bit-identical to two probs_subset on every engine"
    ~count:8
    QCheck.(pair (int_range 0 10_000) (int_range 0 1_000))
    (fun (seed, wseed) ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let nf = Array.length faults in
      if nf = 0 then QCheck.assume_fail ()
      else begin
        let rng = Rt_util.Rng.create wseed in
        let x = Array.init 7 (fun _ -> 0.05 +. (0.9 *. Rt_util.Rng.float rng)) in
        let subset =
          let l = List.filter (fun _ -> Rt_util.Rng.float rng < 0.4) (List.init nf Fun.id) in
          Array.of_list (match l with [] -> [ Rt_util.Rng.int rng nf ] | l -> l)
        in
        let engines =
          [ Detect.Cop;
            Detect.Conditioned { max_vars = 3 };
            Detect.Bdd_exact { node_limit = 200_000 };
            Detect.Stafan { n_patterns = 256; seed = 3 };
            Detect.Monte_carlo { n_patterns = 256; seed = 5 } ]
        in
        let check_engine ~jobs e =
          let o = Detect.make ~jobs e c faults in
          let plan = Oracle.plan o subset in
          let reference i v =
            let x' = Array.copy x in
            x'.(i) <- v;
            Detect.probs_subset o subset x'
          in
          let agree_at i =
            let x_before = Array.copy x in
            let pf0, pf1 = Oracle.cofactor_pair o plan ~input:i ~x in
            x = x_before && pf0 = reference i 0.0 && pf1 = reference i 1.0
          in
          (* Every input at a fixed base point (warm incremental caches on
             repeat queries), then move the base by one coordinate and
             query again — the optimizer's commit path. *)
          let ok = ref true in
          for i = 0 to 6 do
            if not (agree_at i) then ok := false
          done;
          x.(2) <- 0.05 +. (0.9 *. Rt_util.Rng.float rng);
          if not (agree_at 5) then ok := false;
          !ok
        in
        List.for_all (fun e -> check_engine ~jobs:1 e && check_engine ~jobs:4 e) engines
      end)

let cofactor_affinity_qcheck =
  (* Eq. 15's premise: an exact p_f(X) is multilinear, so along one
     coordinate it is the affine blend of its two cofactors.  Holds for
     the exact engine's exact faults (estimators are polynomial, not
     affine, in x_i under reconvergent fanout). *)
  QCheck.Test.make ~name:"exact p_f is affine between its cofactors" ~count:8
    QCheck.(pair (int_range 0 10_000) (int_range 0 6))
    (fun (seed, input) ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let nf = Array.length faults in
      if nf = 0 then QCheck.assume_fail ()
      else begin
        let o = Detect.make (Detect.Bdd_exact { node_limit = 500_000 }) c faults in
        let exact = Detect.exact_mask o in
        let subset = Array.init nf Fun.id in
        let x = Array.init 7 (fun i -> 0.2 +. (0.05 *. Float.of_int i)) in
        let plan = Oracle.plan o subset in
        let pf0, pf1 = Oracle.cofactor_pair o plan ~input ~x in
        List.for_all
          (fun y ->
            let x' = Array.copy x in
            x'.(input) <- y;
            let pf = Detect.probs_subset o subset x' in
            let ok = ref true in
            Array.iteri
              (fun f p ->
                if exact.(f) then begin
                  let blend = ((1.0 -. y) *. pf0.(f)) +. (y *. pf1.(f)) in
                  if Float.abs (p -. blend) > 1e-9 then ok := false
                end)
              pf;
            !ok)
          [ 0.0; 0.25; 0.5; 1.0 ]
      end)

let test_plan_cache_keyed () =
  (* Alternating between subsets must reuse both cached plans (the old
     single-slot cache thrashed here) and keep results bit-stable. *)
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let nf = Array.length faults in
  let o = Detect.make Detect.Cop c faults in
  let s1 = Array.init (min 10 nf) Fun.id in
  let s2 = Array.init (min 10 nf) (fun i -> nf - 1 - i) in
  let p1 = Oracle.plan o s1 in
  let p2 = Oracle.plan o s2 in
  check Alcotest.bool "s1 plan cached across alternation" true (Oracle.plan o s1 == p1);
  check Alcotest.bool "s2 plan cached across alternation" true (Oracle.plan o s2 == p2);
  let x = Array.make (Array.length (Netlist.inputs c)) 0.4 in
  let r1 = Detect.probs_subset o s1 x in
  let r2 = Detect.probs_subset o s2 x in
  check Alcotest.bool "alternating results stable" true
    (Detect.probs_subset o s1 x = r1
    && Detect.probs_subset o s2 x = r2
    && Detect.probs_subset o s1 x = r1)

let test_proven_redundant () =
  let b = Builder.create ~fold:false ~prune:false () in
  let x = Builder.input b "x" in
  let nx = Builder.not_ b x in
  let zero = Builder.and2 b x nx in
  Builder.output b ~name:"y" (Builder.or2 b zero x);
  let c = Builder.finalize b in
  let faults = Rt_fault.Fault.universe c in
  let o = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let red = Detect.proven_redundant o in
  let n_red = Array.fold_left (fun a b -> if b then a + 1 else a) 0 red in
  check Alcotest.bool "found redundancies" true (n_red > 0);
  (* A redundant fault's reported probability is 0 at any X. *)
  let pf = Detect.probs o [| 0.3 |] in
  Array.iteri (fun i r -> if r && pf.(i) <> 0.0 then Alcotest.fail "redundant with p > 0") red

(* --- Test_length ------------------------------------------------------------------ *)

let test_required_single_fault () =
  (* One fault with p: N = ln(1-c)/ln(1-p). *)
  let n = Test_length.required ~confidence:0.95 [| 0.01 |] in
  let expect = Float.log 0.05 /. Float.log 0.99 in
  if Float.abs (n -. expect) > 2.0 then Alcotest.failf "N = %.1f expected %.1f" n expect

let test_required_confidence_inverse () =
  let pfs = [| 0.001; 0.01; 0.3 |] in
  let n = Test_length.required ~confidence:0.9 pfs in
  let c_at = Test_length.confidence ~n pfs in
  check Alcotest.bool "confidence met at N" true (c_at >= 0.9);
  let c_before = Test_length.confidence ~n:(n -. 10.0) pfs in
  check Alcotest.bool "not met just before N" true (c_before < 0.9)

let test_required_infinite () =
  check Alcotest.bool "undetectable fault" true
    (Float.is_finite (Test_length.required [| 0.0; 0.5 |]) = false)

let test_savir_bardell_upper_bound () =
  let pfs = [| 0.001; 0.002; 0.5; 0.9 |] in
  let exact = Test_length.required ~confidence:0.95 pfs in
  let bound = Test_length.savir_bardell_bound ~confidence:0.95 pfs in
  check Alcotest.bool "bound dominates" true (bound >= exact -. 1.0)

let test_hardest () =
  let pfs = [| 0.5; 0.001; 0.3; 0.0001 |] in
  check Alcotest.(array int) "two hardest" [| 3; 1 |] (Test_length.hardest pfs ~k:2)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_testability"
    [ ( "signal-prob",
        [ Alcotest.test_case "independence exact on trees" `Quick test_independence_exact_on_trees;
          Alcotest.test_case "reconvergence error measured" `Quick
            test_max_error_positive_on_reconvergent;
          Alcotest.test_case "conditioning recovers exactness" `Quick
            test_conditioned_exact_when_covering;
          q conditioned_improves_qcheck ] );
      ( "cutting",
        [ Alcotest.test_case "xor reconvergence regression" `Quick
            test_cutting_xor_reconvergence;
          q cutting_qcheck;
          q cutting_contains_independence_qcheck ] );
      ( "observability",
        [ Alcotest.test_case "range and outputs" `Quick test_observability_range_and_outputs;
          Alcotest.test_case "pin sensitization" `Quick test_pin_sensitization ] );
      ( "detect-oracles",
        [ Alcotest.test_case "cop exact on single AND" `Quick test_cop_exact_on_single_and;
          q oracle_agreement_qcheck;
          q subset_matches_gather_qcheck;
          q jobs_oracle_agreement_qcheck;
          q cofactor_matches_two_subsets_qcheck;
          q cofactor_affinity_qcheck;
          Alcotest.test_case "keyed plan cache" `Quick test_plan_cache_keyed;
          Alcotest.test_case "stafan close on trees" `Quick test_stafan_close_to_exact_on_tree;
          Alcotest.test_case "proven redundant" `Quick test_proven_redundant ] );
      ( "test-length",
        [ Alcotest.test_case "single fault" `Quick test_required_single_fault;
          Alcotest.test_case "confidence inverse" `Quick test_required_confidence_inverse;
          Alcotest.test_case "infinite" `Quick test_required_infinite;
          Alcotest.test_case "savir-bardell bound" `Quick test_savir_bardell_upper_bound;
          Alcotest.test_case "hardest" `Quick test_hardest ] ) ]
