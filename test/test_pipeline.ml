(* Rt_pipeline: golden equivalence with the pre-refactor wiring, cache
   resume semantics (qcheck), stage invalidation, config validation. *)

module Pipeline = Rt_pipeline
module Config = Rt_pipeline.Config
module Store = Rt_pipeline.Store
module Detect = Rt_testability.Detect
module Optimize = Rt_optprob.Optimize

let check = Alcotest.check

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "optprob-pipe-%d-%d" (Unix.getpid ()) !n)
    in
    (* Stale stores from a previous test process would fake cache hits. *)
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end;
    dir

(* --- golden equivalence ------------------------------------------------------

   The pipeline's optimize path must produce bit-for-bit the weights of the
   wiring it replaced: load -> [Passes.run] -> collapse -> Detect.make ?jobs
   -> Optimize.run with the CLI's default options.  Checked for every engine
   family and for jobs 1 vs 4 (results must be jobs-independent), both with
   the default optimization passes and with --no-opt (which must reproduce
   the pre-refactor wiring exactly). *)

let golden_engines =
  [ "cop"; "cond:3"; "bdd:200000"; "stafan:2048"; "mc:2048" ]

let legacy_weights ~engine ~jobs ~opt circuit_name =
  let c =
    match Rt_circuit.Generators.by_name circuit_name with
    | Some g -> g ()
    | None -> Alcotest.failf "unknown golden circuit %s" circuit_name
  in
  let c = if opt then (fun (c, _, _) -> c) (Rt_circuit.Passes.run c) else c in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let engine_kind =
    match Config.engine_of_string engine with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let oracle = Detect.make ~jobs engine_kind c faults in
  let options =
    { Optimize.default_options with
      Optimize.confidence = 0.95;
      max_sweeps = 3;
      quantize = Optimize.Grid 0.05 }
  in
  (Optimize.run ~options oracle).Optimize.weights

let pipeline_weights ~engine ~jobs ~opt_passes circuit_name =
  (* The objective is pinned to "single": the reference path above uses
     Optimize.default_options, which never reads OPTPROB_OBJECTIVE, so the
     golden comparison must not either (CI runs a ndetect:2-env leg). *)
  let cfg =
    Config.exn
      (Config.make ~engine ~confidence:0.95 ~jobs ~sweeps:3
         ~quantize:(Optimize.Grid 0.05) ~opt_passes ~objective:"single"
         ~circuit:circuit_name ())
  in
  let ctx = Pipeline.create cfg in
  (Pipeline.optimized ctx).Pipeline.value.Pipeline.opt_report.Optimize.weights

let test_golden () =
  List.iter
    (fun engine ->
      let reference =
        legacy_weights ~engine ~jobs:1 ~opt:true "c432ish"
      in
      List.iter
        (fun jobs ->
          let got =
            pipeline_weights ~engine ~jobs
              ~opt_passes:Rt_circuit.Passes.default_names "c432ish"
          in
          check
            Alcotest.(array (float 0.0))
            (Printf.sprintf "weights identical (%s, jobs=%d)" engine jobs)
            reference got)
        [ 1; 4 ])
    golden_engines

let test_golden_noopt () =
  (* --no-opt reproduces the pre-refactor wiring bit-for-bit. *)
  List.iter
    (fun engine ->
      let reference = legacy_weights ~engine ~jobs:1 ~opt:false "c432ish" in
      let got = pipeline_weights ~engine ~jobs:1 ~opt_passes:[] "c432ish" in
      check
        Alcotest.(array (float 0.0))
        (Printf.sprintf "no-opt pipeline = legacy wiring (%s)" engine)
        reference got)
    golden_engines

let test_golden_legacy_jobs () =
  (* The legacy path itself is jobs-invariant; pin that too so the golden
     reference above is unambiguous. *)
  List.iter
    (fun engine ->
      check
        Alcotest.(array (float 0.0))
        (Printf.sprintf "legacy jobs-invariant (%s)" engine)
        (legacy_weights ~engine ~jobs:1 ~opt:false "c432ish")
        (legacy_weights ~engine ~jobs:4 ~opt:false "c432ish"))
    [ "cop"; "bdd:200000" ]

(* --- optimization-stage transparency -----------------------------------------

   The acceptance gate: on a netlist that is already a pass fixpoint, the
   opt_netlist stage is the identity (driver idempotence), so EVERY
   statistic — detection probabilities, optimizer weights and J-trajectory,
   ppsfp first-detect / detect-count, coverage — must be bit-identical
   between the optimized and unoptimized paths, for every engine and every
   (jobs, block_words) in {1,4} x {1,8}. *)

let bits64 = Alcotest.(array int64)
let fbits a = Array.map Int64.bits_of_float a
let lbits l = fbits (Array.of_list l)

let test_opt_transparency () =
  let base =
    match Rt_circuit.Generators.by_name "s1" with
    | Some g -> g ()
    | None -> Alcotest.fail "s1 generator missing"
  in
  let pre, _, _ = Rt_circuit.Passes.run base in
  let stats_of ~engine ~jobs ~block_words opt_passes =
    let cfg =
      Config.exn
        (Config.of_netlist ~engine ~jobs ~block_words ~sweeps:2 ~patterns:256 ~opt_passes
           ~objective:"single" ~name:"pre-optimized-s1" pre)
    in
    let t = Pipeline.create cfg in
    let a = (Pipeline.analysis t).Pipeline.value in
    let o = (Pipeline.optimized t).Pipeline.value.Pipeline.opt_report in
    let v = (Pipeline.validated t).Pipeline.value in
    (a, o, v)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun (jobs, block_words) ->
          let tag fmt =
            Printf.sprintf "%s (%s, jobs=%d, W=%d)" fmt engine jobs block_words
          in
          let a1, o1, v1 =
            stats_of ~engine ~jobs ~block_words Rt_circuit.Passes.default_names
          in
          let a0, o0, v0 = stats_of ~engine ~jobs ~block_words [] in
          check bits64 (tag "pf bit-identical") (fbits a0.Pipeline.pf) (fbits a1.Pipeline.pf);
          check bits64 (tag "weights bit-identical")
            (fbits o0.Optimize.weights) (fbits o1.Optimize.weights);
          check bits64 (tag "J-trajectory bit-identical")
            (lbits o0.Optimize.j_history) (lbits o1.Optimize.j_history);
          check bits64 (tag "N-trajectory bit-identical")
            (lbits o0.Optimize.history) (lbits o1.Optimize.history);
          check Alcotest.(array int) (tag "first_detect identical")
            v0.Pipeline.first_detect v1.Pipeline.first_detect;
          check Alcotest.(array int) (tag "detect_count identical")
            v0.Pipeline.detect_count v1.Pipeline.detect_count;
          check bits64 (tag "coverage bit-identical")
            (fbits [| v0.Pipeline.coverage |]) (fbits [| v1.Pipeline.coverage |]))
        [ (1, 1); (1, 8); (4, 1); (4, 8) ])
    [ "cop"; "cond:2"; "bdd:100000"; "stafan:512"; "mc:512" ]

(* --- cache resume (qcheck) ---------------------------------------------------

   For any config, a second run against the same work dir re-executes zero
   stages. *)

let config_gen =
  QCheck.Gen.(
    let* engine = oneofl [ "cop"; "cond:2"; "bdd:100000"; "stafan:512"; "mc:512" ] in
    let* confidence = oneofl [ 0.9; 0.95; 0.99 ] in
    let* sweeps = int_range 1 3 in
    let* seed = int_range 0 10_000 in
    let* patterns = oneofl [ 128; 256 ] in
    let* quantize =
      oneofl [ Optimize.Grid 0.05; Optimize.Dyadic 3; Optimize.No_quantization ]
    in
    return (engine, confidence, sweeps, seed, patterns, quantize))

let config_print (engine, confidence, sweeps, seed, patterns, _quantize) =
  Printf.sprintf "engine=%s confidence=%.2f sweeps=%d seed=%d patterns=%d" engine confidence
    sweeps seed patterns

let cache_hit_qcheck =
  QCheck.Test.make ~name:"second run with unchanged config is 100% cache hits" ~count:10
    (QCheck.make ~print:config_print config_gen)
    (fun (engine, confidence, sweeps, seed, patterns, quantize) ->
      let work_dir = fresh_dir () in
      let cfg () =
        Config.exn
          (Config.make ~engine ~confidence ~sweeps ~seed ~patterns ~quantize ~work_dir
             ~circuit:"wide_and-8" ())
      in
      let first = Pipeline.run (Pipeline.create (cfg ())) in
      let second = Pipeline.run (Pipeline.create (cfg ())) in
      List.for_all (fun (_, hit) -> not hit) first.Pipeline.o_stages
      && Pipeline.all_cached second
      && second.Pipeline.o_report.Pipeline.digest = first.Pipeline.o_report.Pipeline.digest)

(* --- stage invalidation ------------------------------------------------------ *)

let stage_flags outcome =
  List.map (fun (name, hit) -> (name, hit)) outcome.Pipeline.o_stages

let test_seed_invalidation () =
  let work_dir = fresh_dir () in
  let cfg seed =
    Config.exn
      (Config.make ~engine:"cop" ~seed ~patterns:256 ~sweeps:2 ~work_dir ~circuit:"s1" ())
  in
  ignore (Pipeline.run (Pipeline.create (cfg 1)));
  (* Bumping the seed must re-run exactly the seed-dependent stages:
     validated (the fault-sim RNG) and report (downstream of it). *)
  let second = Pipeline.run (Pipeline.create (cfg 2)) in
  check
    Alcotest.(list (pair string bool))
    "only validated+report re-run on a seed bump"
    [ ("loaded", true); ("opt_netlist", true); ("faults", true); ("analysis", true);
      ("normalized", true); ("optimized", true); ("validated", false); ("report", false) ]
    (stage_flags second);
  (* And returning to the first seed is a full cache hit again. *)
  let third = Pipeline.run (Pipeline.create (cfg 1)) in
  check Alcotest.bool "original seed fully cached" true (Pipeline.all_cached third)

let test_engine_invalidation () =
  let work_dir = fresh_dir () in
  let cfg engine =
    Config.exn
      (Config.make ~engine ~patterns:256 ~sweeps:2 ~work_dir ~circuit:"wide_and-8" ())
  in
  ignore (Pipeline.run (Pipeline.create (cfg "cop")));
  (* mc's sampled probabilities differ from cop's exact ones, so the whole
     downstream chain re-keys. *)
  let second = Pipeline.run (Pipeline.create (cfg "mc:512")) in
  check
    Alcotest.(list (pair string bool))
    "engine change re-runs analysis and everything downstream"
    [ ("loaded", true); ("opt_netlist", true); ("faults", true); ("analysis", false);
      ("normalized", false); ("optimized", false); ("validated", false); ("report", false) ]
    (stage_flags second)

let test_engine_early_cutoff () =
  (* cop and cond are both exact on a wide AND: the re-run analysis stage
     reproduces the same normalized artifact, so content addressing stops
     the invalidation there and optimized/validated stay cached. *)
  let work_dir = fresh_dir () in
  let cfg engine =
    Config.exn
      (Config.make ~engine ~patterns:256 ~sweeps:2 ~work_dir ~circuit:"wide_and-8" ())
  in
  ignore (Pipeline.run (Pipeline.create (cfg "cop")));
  let second = Pipeline.run (Pipeline.create (cfg "cond:2")) in
  check Alcotest.(list (pair string bool)) "equivalent engine cuts off at normalized"
    [ ("loaded", true); ("opt_netlist", true); ("faults", true); ("analysis", false);
      ("normalized", false); ("optimized", true); ("validated", true); ("report", false) ]
    (stage_flags second)

let test_objective_invalidation () =
  (* Objectives occupy distinct store keys: switching re-runs the analysis
     consumers (normalized onward) but never the circuit/fault/analysis
     stages, and switching back is a full cache hit — no cross-objective
     contamination in either direction. *)
  let work_dir = fresh_dir () in
  let cfg objective =
    Config.exn
      (Config.make ~engine:"cop" ~patterns:256 ~sweeps:2 ~objective ~work_dir
         ~circuit:"s1" ())
  in
  ignore (Pipeline.run (Pipeline.create (cfg "single")));
  let second = Pipeline.run (Pipeline.create (cfg "ndetect:2")) in
  check
    Alcotest.(list (pair string bool))
    "objective change re-runs normalized onward"
    [ ("loaded", true); ("opt_netlist", true); ("faults", true); ("analysis", true);
      ("normalized", false); ("optimized", false); ("validated", false); ("report", false) ]
    (stage_flags second);
  let third = Pipeline.run (Pipeline.create (cfg "single")) in
  check Alcotest.bool "original objective fully cached" true (Pipeline.all_cached third);
  let fourth = Pipeline.run (Pipeline.create (cfg "ndetect:2")) in
  check Alcotest.bool "n-detect run fully cached too" true (Pipeline.all_cached fourth)

let test_two_stage_pipeline () =
  (* The twostage objective flows through the pipeline: the optimized stage
     carries the adaptive report and the validated stage simulates the
     chosen design's weights. *)
  let cfg =
    Config.exn
      (Config.make ~engine:"cop" ~patterns:256 ~sweeps:2 ~objective:"twostage:64"
         ~circuit:"wide_and-8" ())
  in
  let t = Pipeline.create cfg in
  let o = (Pipeline.optimized t).Pipeline.value in
  (match o.Pipeline.opt_two_stage with
   | Some ts ->
     check Alcotest.int "pinned N1" 64 ts.Optimize.ts_n1;
     check Alcotest.int "weights width" 8 (Array.length ts.Optimize.ts_weights)
   | None -> Alcotest.fail "twostage objective must produce a two-stage report");
  let r = Pipeline.run t in
  check Alcotest.string "report records the objective" "twostage:64"
    r.Pipeline.o_report.Pipeline.value.Pipeline.r_objective;
  check Alcotest.bool "report carries the two-stage summary" true
    (r.Pipeline.o_report.Pipeline.value.Pipeline.r_two_stage <> None)

let test_cache_hit_counters () =
  (* The acceptance gate's counter contract: a resumed run shows
     pipeline.stage.<name>.cache_hit = 1 and .run = 0 for every stage. *)
  let work_dir = fresh_dir () in
  let cfg () =
    Config.exn (Config.make ~engine:"cop" ~patterns:128 ~sweeps:1 ~work_dir ~circuit:"wide_and-8" ())
  in
  ignore (Pipeline.run (Pipeline.create (cfg ())));
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  ignore (Pipeline.run (Pipeline.create (cfg ())));
  let counters = Rt_obs.counters_snapshot () in
  Rt_obs.set_enabled false;
  Rt_obs.clear ();
  let value name =
    match List.assoc_opt name counters with Some v -> v | None -> -1
  in
  List.iter
    (fun stage ->
      check Alcotest.int
        (Printf.sprintf "pipeline.stage.%s.cache_hit" stage)
        1
        (value (Printf.sprintf "pipeline.stage.%s.cache_hit" stage));
      check Alcotest.int
        (Printf.sprintf "pipeline.stage.%s.run" stage)
        0
        (value (Printf.sprintf "pipeline.stage.%s.run" stage)))
    Pipeline.stage_names

let test_corrupt_artifact_is_miss () =
  let dir = fresh_dir () in
  let store = Store.create dir in
  let key = Store.key ~stage:"loaded" ~parts:[ "x" ] in
  ignore (Store.save store ~stage:"loaded" ~key [| 1; 2; 3 |]);
  (match Store.load store ~stage:"loaded" ~key with
   | Some (v, _) -> check Alcotest.(array int) "roundtrip" [| 1; 2; 3 |] v
   | None -> Alcotest.fail "expected artifact hit");
  let oc = open_out_bin (Store.path store ~stage:"loaded" ~key) in
  output_string oc "garbage";
  close_out oc;
  check Alcotest.bool "corrupt artifact reads as a miss" true
    (Store.load store ~stage:"loaded" ~key = None)

(* --- config validation ------------------------------------------------------- *)

let error_of = function
  | Error m -> m
  | Ok _ -> Alcotest.fail "expected a validation error"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_did_you_mean_circuit () =
  let m = error_of (Config.circuit_of_string "s2x") in
  check Alcotest.bool "suggests s2" true (contains ~sub:{|did you mean "s2"|} m);
  check Alcotest.bool "lists valid names" true (contains ~sub:"c7552ish" m);
  let m = error_of (Config.circuit_of_string "antagonst") in
  check Alcotest.bool "suggests antagonist" true (contains ~sub:{|"antagonist"|} m)

let test_did_you_mean_engine () =
  let m = error_of (Config.engine_of_string "bddd") in
  check Alcotest.bool "suggests bdd" true (contains ~sub:{|did you mean "bdd"|} m);
  check Alcotest.bool "shows grammar" true (contains ~sub:"stafan:N" m);
  check Alcotest.bool "cond needs K" true
    (contains ~sub:"cond" (error_of (Config.engine_of_string "cond")));
  (match Config.engine_of_string "stafan:100" with
   | Ok (Detect.Stafan { n_patterns = 100; seed = 7 }) -> ()
   | Ok _ -> Alcotest.fail "wrong stafan parse"
   | Error m -> Alcotest.fail m)

let test_did_you_mean_opt_passes () =
  let m = error_of (Config.opt_passes_of_string "const-folt") in
  check Alcotest.bool "suggests const-fold" true
    (contains ~sub:{|did you mean "const-fold"|} m);
  check Alcotest.bool "lists valid passes" true (contains ~sub:"dead-cone" m);
  (* the bad name is rejected even in the middle of a list *)
  let m = error_of (Config.opt_passes_of_string "dead-cone,relevell") in
  check Alcotest.bool "suggests relevel" true (contains ~sub:{|"relevel"|} m);
  (* and through the config constructor *)
  let m =
    error_of (Config.make ~opt_passes:[ "identty" ] ~circuit:"s1" ())
  in
  check Alcotest.bool "constructor suggests identity" true
    (contains ~sub:{|did you mean "identity"|} m);
  (match Config.opt_passes_of_string "none" with
   | Ok [] -> ()
   | Ok _ | Error _ -> Alcotest.fail {|"none" parses to no passes|});
  match Config.opt_passes_of_string " const-fold , identity " with
  | Ok [ "const-fold"; "identity" ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "whitespace-tolerant pass list"

let test_did_you_mean_objective () =
  let m = error_of (Config.objective_of_string "singel") in
  check Alcotest.bool "suggests single" true (contains ~sub:{|did you mean "single"|} m);
  check Alcotest.bool "shows grammar" true (contains ~sub:"ndetect:K" m);
  let m = error_of (Config.objective_of_string "ndetct:2") in
  check Alcotest.bool "suggests ndetect" true (contains ~sub:{|"ndetect"|} m);
  check Alcotest.bool "K >= 1 enforced" true
    (contains ~sub:"K must be >= 1" (error_of (Config.objective_of_string "ndetect:0")));
  check Alcotest.bool "N1 >= 0 enforced" true
    (contains ~sub:"N1 must be >= 0" (error_of (Config.objective_of_string "twostage:-1")));
  (* and through the config constructor *)
  let m = error_of (Config.make ~objective:"twostge" ~circuit:"s1" ()) in
  check Alcotest.bool "constructor suggests twostage" true (contains ~sub:{|"twostage"|} m);
  (match Config.objective_of_string "single" with
   | Ok Config.Single -> ()
   | _ -> Alcotest.fail "single parses");
  (match Config.objective_of_string "ndetect:3" with
   | Ok (Config.N_detect 3) -> ()
   | _ -> Alcotest.fail "ndetect:3 parses");
  (match Config.objective_of_string "twostage" with
   | Ok (Config.Two_stage None) -> ()
   | _ -> Alcotest.fail "twostage parses");
  match Config.objective_of_string "twostage:100" with
  | Ok (Config.Two_stage (Some 100)) -> ()
  | _ -> Alcotest.fail "twostage:100 parses"

let test_edit_distance () =
  check Alcotest.int "identical" 0 (Config.edit_distance "cop" "cop");
  check Alcotest.int "one substitution" 1 (Config.edit_distance "bdd" "bdd:");
  check Alcotest.int "classic" 3 (Config.edit_distance "kitten" "sitting")

let test_valid_circuits_parse () =
  List.iter
    (fun name ->
      match Config.circuit_of_string name with
      | Ok src -> check Alcotest.string "name roundtrip" name (Config.circuit_name src)
      | Error m -> Alcotest.fail m)
    [ "s1"; "s2:20"; "c6288ish:4"; "wide_and-8"; "antagonist" ]

let () =
  Alcotest.run "rt_pipeline"
    [ ( "golden",
        [ Alcotest.test_case "pipeline = legacy wiring + passes, all engines, jobs 1/4" `Slow
            test_golden;
          Alcotest.test_case "no-opt pipeline = pre-refactor wiring, all engines" `Slow
            test_golden_noopt;
          Alcotest.test_case "legacy path jobs-invariant" `Slow test_golden_legacy_jobs ] );
      ( "opt-transparency",
        [ Alcotest.test_case
            "opt on/off bit-identical on a fixpoint netlist (engines x jobs x W)" `Slow
            test_opt_transparency ] );
      ( "cache",
        [ QCheck_alcotest.to_alcotest cache_hit_qcheck;
          Alcotest.test_case "cache-hit counters on resume" `Quick test_cache_hit_counters;
          Alcotest.test_case "corrupt artifact is a miss" `Quick test_corrupt_artifact_is_miss ] );
      ( "invalidation",
        [ Alcotest.test_case "seed bump re-runs exactly validated+report" `Quick
            test_seed_invalidation;
          Alcotest.test_case "engine change re-runs analysis onward" `Quick
            test_engine_invalidation;
          Alcotest.test_case "equivalent engine early-cuts-off after normalized" `Quick
            test_engine_early_cutoff;
          Alcotest.test_case "objective change re-keys, no cross-hits" `Quick
            test_objective_invalidation;
          Alcotest.test_case "twostage objective flows through the pipeline" `Quick
            test_two_stage_pipeline ] );
      ( "validation",
        [ Alcotest.test_case "circuit did-you-mean" `Quick test_did_you_mean_circuit;
          Alcotest.test_case "engine did-you-mean" `Quick test_did_you_mean_engine;
          Alcotest.test_case "opt-passes did-you-mean" `Quick test_did_you_mean_opt_passes;
          Alcotest.test_case "objective did-you-mean" `Quick test_did_you_mean_objective;
          Alcotest.test_case "edit distance" `Quick test_edit_distance;
          Alcotest.test_case "valid circuit specs parse" `Quick test_valid_circuits_parse ] ) ]
