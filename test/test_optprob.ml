(* Tests for the core optimizer: the objective and its derivatives,
   NORMALIZE's bounds, MINIMIZE's convex search, the OPTIMIZE loop, the
   section-5.3 partitioning, and the baselines. *)

module Objective = Rt_optprob.Objective
module Normalize = Rt_optprob.Normalize
module Minimize = Rt_optprob.Minimize
module Optimize = Rt_optprob.Optimize
module Partition = Rt_optprob.Partition
module Baselines = Rt_optprob.Baselines
module Detect = Rt_testability.Detect
module Generators = Rt_circuit.Generators

let check = Alcotest.check

(* --- Objective ---------------------------------------------------------------- *)

let test_objective_value () =
  (* J_N = sum exp(-N p). *)
  let j = Objective.value ~n:10.0 [| 0.1; 0.2 |] in
  let expect = Float.exp (-1.0) +. Float.exp (-2.0) in
  check (Alcotest.float 1e-12) "value" expect j

let test_objective_confidence_consistency () =
  (* exp(-J) approximates eq (1) well once every escape probability
     (1-p)^N is small — the regime NORMALIZE targets. *)
  let pfs = [| 0.001; 0.003 |] in
  let n = 5000.0 in
  let approx = Objective.confidence ~n pfs in
  let exact = Rt_util.Prob.detection_confidence ~n pfs in
  if Float.abs (approx -. exact) > 0.01 then
    Alcotest.failf "approx %.4f vs exact %.4f" approx exact

let derivatives_qcheck =
  QCheck.Test.make ~name:"analytic derivatives match finite differences" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 8) (pair (float_range 0.0 0.5) (float_range 0.0 0.5)))
        (float_range 10.0 1000.0) (float_range 0.1 0.9))
    (fun (pairs, n, y) ->
      QCheck.assume (pairs <> []);
      let p0 = Array.of_list (List.map fst pairs) in
      let p1 = Array.of_list (List.map snd pairs) in
      let h = 1e-5 in
      let j y = Objective.value_along ~n ~p0 ~p1 y in
      let d1, d2 = Objective.derivatives_along ~n ~p0 ~p1 y in
      let fd1 = (j (y +. h) -. j (y -. h)) /. (2.0 *. h) in
      let fd2 = (j (y +. h) +. j (y -. h) -. (2.0 *. j y)) /. (h *. h) in
      let close a b scale = Float.abs (a -. b) <= (1e-3 *. scale) +. 1e-6 in
      close d1 fd1 (1.0 +. Float.abs d1) && close d2 fd2 (1.0 +. Float.abs d2) && d2 >= 0.0)

(* --- Objective protocol: n-detection ------------------------------------------- *)

let test_poisson_tail_identities () =
  (* F_1(l) = e^-l; F_k(0) = 1; F_{k+1} - F_k = e^-l l^k / k!. *)
  let f k l = let v, _, _ = Objective.poisson_tail ~k l in v in
  List.iter
    (fun l ->
      check (Alcotest.float 1e-12) "F_1 = exp(-l)" (Float.exp (-.l)) (f 1 l);
      let rec fact n = if n <= 1 then 1.0 else Float.of_int n *. fact (n - 1) in
      List.iter
        (fun k ->
          check (Alcotest.float 1e-12) "F_k(0) = 1" 1.0 (f k 0.0);
          let step = Float.exp (-.l) *. Float.pow l (Float.of_int k) /. fact k in
          check (Alcotest.float 1e-12) "tail recurrence" step (f (k + 1) l -. f k l))
        [ 1; 2; 3; 5 ])
    [ 0.3; 1.0; 4.0; 9.5 ]

let test_ndetect_one_matches_single () =
  (* k = 1 collapses to the paper's objective.  Only analytically equal:
     the k-detect derivative code associates products differently, so
     compare with a tolerance, not for bit identity. *)
  let nd1 = Objective.n_detect ~k:1 in
  let s = Objective.single in
  let p0 = [| 0.01; 0.2; 0.0; 0.35 |] and p1 = [| 0.15; 0.05; 0.4; 0.3 |] in
  let n = 123.0 in
  List.iter
    (fun y ->
      let rel = Alcotest.float 1e-9 in
      check rel "value_along" (s.Objective.value_along ~n ~p0 ~p1 y)
        (nd1.Objective.value_along ~n ~p0 ~p1 y);
      let d1s, d2s = s.Objective.derivatives_along ~n ~p0 ~p1 y in
      let d1k, d2k = nd1.Objective.derivatives_along ~n ~p0 ~p1 y in
      check rel "d1" d1s d1k;
      check rel "d2" d2s d2k)
    [ 0.1; 0.5; 0.9 ];
  check (Alcotest.float 1e-9) "value" (s.Objective.value ~n p0) (nd1.Objective.value ~n p0);
  check (Alcotest.float 1e-9) "confidence" (s.Objective.confidence ~n p0)
    (nd1.Objective.confidence ~n p0)

let poisson_tail_convex_qcheck =
  QCheck.Test.make ~name:"poisson tail F_k'' >= 0 for lambda >= k-1 (the contract)"
    ~count:300
    QCheck.(pair (int_range 1 6) (float_range 0.0 50.0))
    (fun (k, excess) ->
      (* Sample lambda inside the documented convexity regime only. *)
      let lambda = Float.of_int (k - 1) +. excess in
      let _, _, d2 = Objective.poisson_tail ~k lambda in
      d2 >= -1e-12)

let ndetect_derivatives_qcheck =
  (* Same finite-difference cross-check as the single objective, restricted
     to the convex regime (n * min p >= k - 1 along the whole coordinate
     path) where J'' >= 0 is also part of the contract. *)
  QCheck.Test.make ~name:"n-detect derivatives match finite differences, J'' >= 0"
    ~count:200
    QCheck.(
      quad (int_range 2 4)
        (list_of_size Gen.(1 -- 8) (pair (float_range 0.05 0.4) (float_range 0.05 0.4)))
        (float_range 100.0 1000.0) (float_range 0.1 0.9))
    (fun (k, pairs, n, y) ->
      QCheck.assume (pairs <> []);
      let obj = Objective.n_detect ~k in
      let p0 = Array.of_list (List.map fst pairs) in
      let p1 = Array.of_list (List.map snd pairs) in
      (* n * 0.05 >= 5 > k-1 for k <= 4: in regime for every y. *)
      let h = 1e-5 in
      let j y = obj.Objective.value_along ~n ~p0 ~p1 y in
      let d1, d2 = obj.Objective.derivatives_along ~n ~p0 ~p1 y in
      let fd1 = (j (y +. h) -. j (y -. h)) /. (2.0 *. h) in
      let fd2 = (j (y +. h) +. j (y -. h) -. (2.0 *. j y)) /. (h *. h) in
      let close a b scale = Float.abs (a -. b) <= (1e-3 *. scale) +. 1e-6 in
      close d1 fd1 (1.0 +. Float.abs d1) && close d2 fd2 (1.0 +. Float.abs d2)
      && d2 >= -1e-12)

(* --- Normalize ------------------------------------------------------------------ *)

let test_normalize_matches_direct () =
  (* NORMALIZE's interval-section N equals the direct eq-(1)-style search
     on the objective. *)
  let pfs = [| 0.001; 0.01; 0.05; 0.3; 0.3; 0.4 |] in
  let norm = Normalize.run ~confidence:0.95 pfs in
  let q = -.Float.log 0.95 in
  let j n = Objective.value ~n pfs in
  check Alcotest.bool "J(N) <= Q" true (j norm.Normalize.n <= q +. 1e-9);
  check Alcotest.bool "J(N-2) > Q" true (j (norm.Normalize.n -. 2.0) > q)

let test_normalize_excludes_zeros () =
  let pfs = [| 0.0; 0.5; 0.0; 0.1 |] in
  let norm = Normalize.run pfs in
  check Alcotest.(array int) "undetectable" [| 0; 2 |] norm.Normalize.undetectable;
  check Alcotest.bool "finite over the rest" true (Float.is_finite norm.Normalize.n)

let test_normalize_all_zero () =
  let norm = Normalize.run [| 0.0; 0.0 |] in
  check Alcotest.bool "infinite" false (Float.is_finite norm.Normalize.n)

let test_normalize_hard_prefix () =
  (* The nf-prefix contains the smallest probabilities. *)
  let pfs = [| 0.5; 1e-6; 0.4; 2e-6; 0.3 |] in
  let norm = Normalize.run ~nf_min:2 pfs in
  let hard = Normalize.hard_indices norm in
  check Alcotest.bool "hardest first" true (hard.(0) = 1 && hard.(1) = 3)

let normalize_sorted_qcheck =
  QCheck.Test.make ~name:"normalize sorted_idx ascending in probability" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_range 1e-6 1.0))
    (fun ps ->
      let pfs = Array.of_list ps in
      let norm = Normalize.run pfs in
      let sorted = norm.Normalize.sorted_idx in
      let ok = ref true in
      for i = 0 to Array.length sorted - 2 do
        if pfs.(sorted.(i)) > pfs.(sorted.(i + 1)) then ok := false
      done;
      !ok)

(* --- Minimize ------------------------------------------------------------------- *)

let minimize_qcheck =
  QCheck.Test.make ~name:"newton finds the strictly convex minimum" ~count:150
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 6) (pair (float_range 0.0 0.3) (float_range 0.0 0.3)))
        (float_range 50.0 5000.0))
    (fun (pairs, n) ->
      QCheck.assume (pairs <> []);
      let p0 = Array.of_list (List.map fst pairs) in
      let p1 = Array.of_list (List.map snd pairs) in
      let r = Minimize.newton ~n ~p0 ~p1 0.5 in
      (* Compare with a fine grid scan. *)
      let best = ref Float.infinity and best_y = ref 0.5 in
      for k = 0 to 980 do
        let y = 0.01 +. (0.001 *. Float.of_int k) in
        let j = Objective.value_along ~n ~p0 ~p1 y in
        if j < !best then begin
          best := j;
          best_y := y
        end
      done;
      ignore !best_y;
      r.Minimize.objective <= !best +. (1e-6 *. (1.0 +. !best)))

let test_minimize_boundary () =
  (* A fault that only wants y high: optimum at the hi boundary. *)
  let r = Minimize.newton ~lo:0.05 ~hi:0.95 ~n:100.0 ~p0:[| 0.0 |] ~p1:[| 0.5 |] 0.5 in
  check (Alcotest.float 1e-9) "pegged at hi" 0.95 r.Minimize.y

(* --- Optimize / Partition / Baselines ---------------------------------------------- *)

let test_optimize_improves_wide_and () =
  let c = Generators.wide_and 12 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let r = Optimize.run oracle in
  check Alcotest.bool "improves by > 100x" true (Optimize.improvement r > 100.0);
  (* Theory: optimal weight for an n-input AND is about n/(n+1) ~ 0.92. *)
  Array.iter
    (fun w -> if w < 0.75 then Alcotest.failf "weight %.2f too low for wide AND" w)
    r.Optimize.weights

let test_optimize_s1_order_of_magnitude () =
  let c = Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 2_000_000 }) c faults in
  let r = Optimize.run oracle in
  (* Paper: 5.6e8 -> 3.5e4 (factor ~1.6e4).  Require at least 10^3. *)
  check Alcotest.bool "n_initial large" true (r.Optimize.n_initial > 1e7);
  check Alcotest.bool "n_final small" true (r.Optimize.n_final < 1e5);
  check Alcotest.bool "weights on 0.05 grid" true
    (Array.for_all
       (fun w ->
         let k = w /. 0.05 in
         Float.abs (k -. Float.round k) < 1e-9)
       r.Optimize.weights)

let test_optimize_respects_start () =
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make Detect.Cop c faults in
  let options = { Optimize.default_options with Optimize.start = Some (Array.make 8 0.3) } in
  let r = Optimize.run ~options oracle in
  check Alcotest.bool "still improves from a bad start" true (Optimize.improvement r > 10.0)

let test_optimize_rejects_bad_start () =
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make Detect.Cop c faults in
  let options = { Optimize.default_options with Optimize.start = Some [| 0.5 |] } in
  Alcotest.check_raises "width mismatch" (Invalid_argument "Optimize.run: start vector width")
    (fun () -> ignore (Optimize.run ~options oracle))

let test_optimize_uses_incremental_cofactors () =
  (* PREPARE goes through the oracle protocol's fused cofactor path: the
     incremental counter must account for every cofactor query of the
     run (2 sweeps x 8 inputs here) with zero generic fallbacks, and the
     commit path must keep the COP base point warm across the sweep. *)
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  Fun.protect
    ~finally:(fun () ->
      Rt_obs.set_enabled false;
      Rt_obs.clear ())
    (fun () ->
      let c = Generators.wide_and 8 in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let oracle = Detect.make Detect.Cop c faults in
      let incr_c = Rt_obs.counter "oracle.cofactor.incremental" in
      let full_c = Rt_obs.counter "oracle.cofactor.full" in
      let commits = Rt_obs.counter "cop.incremental.commits" in
      let options = { Optimize.default_options with Optimize.max_sweeps = 2 } in
      let r = Optimize.run ~options oracle in
      check Alcotest.bool "optimizer still improves" true (Optimize.improvement r > 1.0);
      check Alcotest.int "every PREPARE query served incrementally"
        (r.Optimize.sweeps_run * 8) (Rt_obs.value incr_c);
      check Alcotest.int "no generic fallback for cop" 0 (Rt_obs.value full_c);
      check Alcotest.bool "one-coordinate moves committed in place" true
        (Rt_obs.value commits > 0))

let test_optimize_ndetect_objective () =
  (* The protocol end to end: an n-detect sweep still converges, and the
     2-detect test length dominates the single-detect one (detecting every
     fault twice can never need fewer patterns). *)
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make Detect.Cop c faults in
  let run obj =
    Optimize.run
      ~options:{ Optimize.default_options with Optimize.objective = obj }
      oracle
  in
  let r1 = run Objective.single in
  let r2 = run (Objective.n_detect ~k:2) in
  check Alcotest.bool "n-detect sweep improves" true (Optimize.improvement r2 > 10.0);
  check Alcotest.bool "2-detect needs more patterns than 1-detect" true
    (r2.Optimize.n_final > r1.Optimize.n_final)

let two_stage_never_worse_qcheck =
  (* The adaptive design searches a split grid that always contains N1 = 0,
     whose candidate IS the single-stage design — so no fixed single-stage
     budget beats the chosen two-stage total (within float tolerance). *)
  QCheck.Test.make ~name:"two-stage total never exceeds the single-stage budget"
    ~count:4
    QCheck.(int_range 5 9)
    (fun width ->
      let c = Generators.wide_and width in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let oracle = Detect.make Detect.Cop c faults in
      let ts = Optimize.two_stage ~sim_cap:4096 oracle in
      let degenerate =
        List.exists
          (fun cand ->
            cand.Optimize.cand_n1 = 0
            && Float.abs (cand.Optimize.cand_total -. ts.Optimize.ts_single_n) < 1e-9)
          ts.Optimize.ts_candidates
      in
      degenerate && ts.Optimize.ts_total <= ts.Optimize.ts_single_n +. 1e-9)

let test_two_stage_pinned_split () =
  (* Pinning N1 skips the grid search and reports that split's design. *)
  let c = Generators.wide_and 8 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make Detect.Cop c faults in
  let ts = Optimize.two_stage ~n1:32 ~sim_cap:4096 oracle in
  check Alcotest.int "pinned split is the only candidate" 1
    (List.length ts.Optimize.ts_candidates);
  check Alcotest.int "chosen split is the pinned one" 32 ts.Optimize.ts_n1;
  check (Alcotest.float 1e-9) "total = N1 + N2" (32.0 +. ts.Optimize.ts_n2)
    ts.Optimize.ts_total;
  check Alcotest.int "stage-2 weights match input width" 8
    (Array.length ts.Optimize.ts_weights)

let test_partition_antagonist () =
  let c = Generators.antagonist ~k:10 () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let sp = Partition.split oracle in
  check Alcotest.int "two parts" 2 (Array.length sp.Partition.groups);
  check Alcotest.bool "partitioning wins big" true (sp.Partition.n_total *. 5.0 < sp.Partition.n_single);
  (* The two distributions must pull opposite ways. *)
  let w0 = sp.Partition.weights.(0).(0) and w1 = sp.Partition.weights.(1).(0) in
  check Alcotest.bool "opposite extremes" true ((w0 > 0.7 && w1 < 0.3) || (w0 < 0.3 && w1 > 0.7))

let test_cube_distance () =
  (* On the antagonist circuit, the AND-output s-a-0 needs all ones and
     the NOR-output s-a-0 needs all zeros: distance = k. *)
  let k = 8 in
  let c = Generators.antagonist ~k () in
  let faults = Rt_fault.Fault.universe c in
  let find name stuck =
    Array.to_list faults
    |> List.find (fun f ->
           match f.Rt_fault.Fault.site with
           | Rt_fault.Fault.Stem n ->
             Rt_circuit.Netlist.name c n = name && f.Rt_fault.Fault.stuck = stuck
           | Rt_fault.Fault.Branch _ -> false)
  in
  let f_and = find "all_ones" false in
  let f_nor = find "all_zeros" false in
  (match Partition.cube_distance c f_and f_nor with
   | Some d -> check Alcotest.int "maximal hamming distance" k d
   | None -> Alcotest.fail "both faults are testable");
  (* The pair search must single these two out among the hard faults. *)
  (match Partition.most_antagonistic_pair c [| f_and; f_nor |] with
   | Some (0, 1, d) -> check Alcotest.int "pair distance" k d
   | Some _ | None -> Alcotest.fail "expected the (0,1) pair")

let test_antagonism_measure () =
  let v = [| 1.0; -2.0; 0.5 |] in
  let neg = Array.map (fun x -> -.x) v in
  check (Alcotest.float 1e-9) "self" (-1.0) (Partition.antagonism v v);
  check (Alcotest.float 1e-9) "negated" 1.0 (Partition.antagonism v neg)

let test_baselines_ordering () =
  (* On the wide AND: lieberherr nearly matches full optimization, both
     beat equiprobable. *)
  let c = Generators.wide_and 10 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let n_eq = Baselines.equiprobable oracle ~confidence:0.95 in
  let _, n_lieb = Baselines.lieberherr oracle ~confidence:0.95 in
  check Alcotest.bool "lieberherr beats equiprobable here" true (n_lieb < n_eq /. 10.0);
  let w = Baselines.max_output_entropy c in
  check Alcotest.int "entropy weight width" 10 (Array.length w)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_optprob"
    [ ( "objective",
        [ Alcotest.test_case "value" `Quick test_objective_value;
          Alcotest.test_case "confidence consistency" `Quick test_objective_confidence_consistency;
          q derivatives_qcheck;
          Alcotest.test_case "poisson tail identities" `Quick test_poisson_tail_identities;
          Alcotest.test_case "ndetect:1 matches single" `Quick test_ndetect_one_matches_single;
          q poisson_tail_convex_qcheck;
          q ndetect_derivatives_qcheck ] );
      ( "normalize",
        [ Alcotest.test_case "matches direct search" `Quick test_normalize_matches_direct;
          Alcotest.test_case "excludes zeros" `Quick test_normalize_excludes_zeros;
          Alcotest.test_case "all zero" `Quick test_normalize_all_zero;
          Alcotest.test_case "hard prefix" `Quick test_normalize_hard_prefix;
          q normalize_sorted_qcheck ] );
      ( "minimize",
        [ q minimize_qcheck; Alcotest.test_case "boundary optimum" `Quick test_minimize_boundary ] );
      ( "optimize",
        [ Alcotest.test_case "wide AND" `Quick test_optimize_improves_wide_and;
          Alcotest.test_case "s1 order of magnitude" `Slow test_optimize_s1_order_of_magnitude;
          Alcotest.test_case "respects start" `Quick test_optimize_respects_start;
          Alcotest.test_case "rejects bad start" `Quick test_optimize_rejects_bad_start;
          Alcotest.test_case "incremental cofactors drive PREPARE" `Quick
            test_optimize_uses_incremental_cofactors;
          Alcotest.test_case "n-detect objective end to end" `Quick
            test_optimize_ndetect_objective ] );
      ( "two-stage",
        [ q two_stage_never_worse_qcheck;
          Alcotest.test_case "pinned split" `Quick test_two_stage_pinned_split ] );
      ( "partition",
        [ Alcotest.test_case "antagonist" `Quick test_partition_antagonist;
          Alcotest.test_case "antagonism measure" `Quick test_antagonism_measure;
          Alcotest.test_case "cube distance (paper's criterion)" `Quick test_cube_distance ] );
      ("baselines", [ Alcotest.test_case "ordering" `Quick test_baselines_ordering ]) ]
