(* Tests for Rt_sim: pattern batches/sources, the 64-way logic simulator,
   PPSFP fault simulation against the single-pattern reference, coverage
   accounting, and the response-difference stream used by signature
   analysis. *)

module Pattern = Rt_sim.Pattern
module Logic_sim = Rt_sim.Logic_sim
module Fault_sim = Rt_sim.Fault_sim
module Detect_mc = Rt_sim.Detect_mc
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

(* --- Pattern ------------------------------------------------------------------ *)

let test_of_vectors_roundtrip () =
  let vectors = Array.init 100 (fun i -> bits_of_int 9 (i * 37)) in
  let batches = Pattern.of_vectors vectors in
  check Alcotest.int "two batches" 2 (List.length batches);
  let flat =
    List.concat_map
      (fun b -> List.init b.Pattern.n_patterns (fun l -> Pattern.pattern b l))
      batches
  in
  List.iteri
    (fun i v ->
      if v <> vectors.(i) then Alcotest.failf "pattern %d corrupted by packing" i)
    flat

let test_lane_mask () =
  let b = List.hd (Pattern.of_vectors (Array.init 5 (fun i -> bits_of_int 3 i))) in
  check Alcotest.int64 "5 lanes" 0x1FL (Pattern.lane_mask b)

let test_take_exact () =
  let rng = Rt_util.Rng.create 3 in
  let src = Pattern.equiprobable rng ~n_inputs:4 in
  let batches = Pattern.take src 130 in
  let total = List.fold_left (fun acc b -> acc + b.Pattern.n_patterns) 0 batches in
  check Alcotest.int "exactly 130 patterns" 130 total

let test_weighted_statistics () =
  let weights = [| 0.1; 0.5; 0.9 |] in
  let rng = Rt_util.Rng.create 17 in
  let src = Pattern.weighted rng weights in
  let counts = Array.make 3 0 in
  let n_batches = 400 in
  for _ = 1 to n_batches do
    let b = src () in
    Array.iteri
      (fun i w ->
        let rec pop x acc = if Int64.equal x 0L then acc else pop (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
        counts.(i) <- counts.(i) + pop w 0)
      b.Pattern.bits
  done;
  Array.iteri
    (fun i c ->
      let measured = Float.of_int c /. Float.of_int (64 * n_batches) in
      if Float.abs (measured -. weights.(i)) > 0.015 then
        Alcotest.failf "weight %d measured %.3f wanted %.2f" i measured weights.(i))
    counts

let test_fill_block_truncates () =
  let rng = Rt_util.Rng.create 9 in
  let src = Pattern.equiprobable rng ~n_inputs:5 in
  let blk = Pattern.make_block ~n_inputs:5 ~words:4 in
  Pattern.fill_block src blk ~needed:150;
  check Alcotest.int "stops at needed" 3 blk.Pattern.filled;
  check (Alcotest.array Alcotest.int) "last word truncated" [| 64; 64; 22; 0 |] blk.Pattern.counts;
  check Alcotest.int "total" 150 blk.Pattern.total;
  (* Refill overwrites the previous contents entirely. *)
  Pattern.fill_block src blk ~needed:40;
  check Alcotest.int "one word refill" 1 blk.Pattern.filled;
  check (Alcotest.array Alcotest.int) "refill counts" [| 40; 0; 0; 0 |] blk.Pattern.counts

let test_block_resolve () =
  check Alcotest.int "explicit wins" 8 (Pattern.resolve_block_words (Some 8));
  check Alcotest.int "nonsense clamps to one word" 1 (Pattern.resolve_block_words (Some 0));
  check Alcotest.int "cap" Pattern.max_block_words (Pattern.resolve_block_words (Some 10_000))

(* --- Logic_sim ------------------------------------------------------------------ *)

let logic_sim_vs_eval_qcheck =
  QCheck.Test.make ~name:"word simulation equals scalar evaluation" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:50 ~seed in
      let sim = Logic_sim.create c in
      let vectors = Array.init 64 (fun i -> bits_of_int 8 ((i * 2654435761) land 255)) in
      let batch = List.hd (Pattern.of_vectors vectors) in
      Logic_sim.run sim batch;
      let ok = ref true in
      for lane = 0 to 63 do
        let vals = Netlist.eval c vectors.(lane) in
        for n = 0 to Netlist.size c - 1 do
          let got = Int64.logand (Int64.shift_right_logical (Logic_sim.value sim n) lane) 1L <> 0L in
          if got <> vals.(n) then ok := false
        done
      done;
      !ok)

let wide_sim_vs_narrow_qcheck =
  QCheck.Test.make ~name:"wide simulation equals narrow word by word" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:6 ~gates:40 ~seed in
      let rng = Rt_util.Rng.create seed in
      let src = Pattern.equiprobable rng ~n_inputs:6 in
      let batches = Array.init 3 (fun _ -> src ()) in
      let i = ref 0 in
      let replay () =
        let b = batches.(!i) in
        incr i;
        b
      in
      let blk = Pattern.make_block ~n_inputs:6 ~words:3 in
      Pattern.fill_block replay blk ~needed:192;
      let wide = Logic_sim.create_wide ~words:3 c in
      Logic_sim.run_wide wide blk;
      let narrow = Logic_sim.create c in
      let ok = ref true in
      for w = 0 to 2 do
        Logic_sim.run narrow batches.(w);
        for n = 0 to Netlist.size c - 1 do
          if not (Int64.equal (Logic_sim.value narrow n) (Logic_sim.wide_value wide n w)) then
            ok := false
        done
      done;
      !ok)

(* --- Fault_sim ------------------------------------------------------------------- *)

let ppsfp_vs_reference_qcheck =
  QCheck.Test.make ~name:"ppsfp equals single-pattern reference" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:40 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let rng = Rt_util.Rng.create (seed + 1) in
      let vectors = Array.init 100 (fun _ -> Array.init 8 (fun _ -> Rt_util.Rng.bool rng)) in
      let batches = ref (Pattern.of_vectors vectors) in
      let source () =
        match !batches with
        | [] -> Alcotest.fail "source exhausted"
        | b :: rest ->
          batches := rest;
          b
      in
      let stats = Fault_sim.simulate ~drop:false c faults ~source ~n_patterns:100 in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          let count =
            Array.fold_left (fun acc v -> if Fault_sim.detects c f v then acc + 1 else acc) 0 vectors
          in
          let first = ref (-1) in
          Array.iteri (fun i v -> if !first < 0 && Fault_sim.detects c f v then first := i) vectors;
          if count <> stats.Fault_sim.detect_count.(fi) then ok := false;
          if !first <> stats.Fault_sim.first_detect.(fi) then ok := false)
        faults;
      !ok)

let test_drop_consistency () =
  (* With dropping, first_detect must be identical to the no-drop run. *)
  let c = Generators.c432ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let run drop =
    let rng = Rt_util.Rng.create 5 in
    let source = Pattern.equiprobable rng ~n_inputs:36 in
    Fault_sim.simulate ~drop c faults ~source ~n_patterns:512
  in
  let a = run true and b = run false in
  check Alcotest.(array int) "first_detect equal" b.Fault_sim.first_detect a.Fault_sim.first_detect

let test_coverage_monotone () =
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let rng = Rt_util.Rng.create 5 in
  let source = Pattern.equiprobable rng ~n_inputs:22 in
  let stats = Fault_sim.simulate c faults ~source ~n_patterns:1024 in
  let curve = Fault_sim.coverage_curve stats ~points:[ 16; 64; 256; 1024 ] in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && mono rest
    | _ -> true
  in
  check Alcotest.bool "coverage non-decreasing" true (mono curve);
  check (Alcotest.float 1e-9) "coverage_at total equals coverage"
    (Fault_sim.coverage stats)
    (Fault_sim.coverage_at stats 1024);
  check Alcotest.int "undetected + detected = total" (Array.length faults)
    (Array.length (Fault_sim.undetected stats)
    + Array.fold_left (fun a fd -> if fd >= 0 then a + 1 else a) 0 stats.Fault_sim.first_detect)

let responses_qcheck =
  QCheck.Test.make ~name:"response stream consistent with detection" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let mk_source () =
        let rng = Rt_util.Rng.create 42 in
        Pattern.equiprobable rng ~n_inputs:7
      in
      let stats, responses =
        Fault_sim.simulate_with_responses c faults ~source:(mk_source ()) ~n_patterns:128
      in
      let plain = Fault_sim.simulate ~drop:false c faults ~source:(mk_source ()) ~n_patterns:128 in
      let ok = ref true in
      Array.iteri
        (fun fi diffs ->
          (* diff count equals detect count; every diff word nonzero;
             indices ascending; first index equals first_detect. *)
          if List.length diffs <> plain.Fault_sim.detect_count.(fi) then ok := false;
          if List.exists (fun (_, d) -> Int64.equal d 0L) diffs then ok := false;
          let idxs = List.map fst diffs in
          if List.sort compare idxs <> idxs then ok := false;
          (match idxs with
           | [] -> if stats.Fault_sim.first_detect.(fi) >= 0 then ok := false
           | first :: _ -> if first <> stats.Fault_sim.first_detect.(fi) then ok := false))
        responses;
      !ok)

(* --- Multicore sharding ------------------------------------------------------------ *)

let test_jobs_bit_identical () =
  (* Sharding faults across domains must not change a single stat: the
     per-fault detection words are independent and the bookkeeping replays
     serially, so jobs=4 is bit-identical to jobs=1 on the same seed. *)
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let mk () =
    let rng = Rt_util.Rng.create 11 in
    Pattern.equiprobable rng ~n_inputs
  in
  List.iter
    (fun drop ->
      let s1 = Fault_sim.simulate ~jobs:1 ~drop c faults ~source:(mk ()) ~n_patterns:512 in
      let s4 = Fault_sim.simulate ~jobs:4 ~drop c faults ~source:(mk ()) ~n_patterns:512 in
      let tag = if drop then "drop" else "no-drop" in
      check (Alcotest.array Alcotest.int) (tag ^ " first_detect") s1.Fault_sim.first_detect
        s4.Fault_sim.first_detect;
      check (Alcotest.array Alcotest.int) (tag ^ " detect_count") s1.Fault_sim.detect_count
        s4.Fault_sim.detect_count;
      check Alcotest.int (tag ^ " patterns_run") s1.Fault_sim.patterns_run
        s4.Fault_sim.patterns_run)
    [ true; false ]

let test_jobs_responses_identical () =
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let mk () =
    let rng = Rt_util.Rng.create 23 in
    Pattern.equiprobable rng ~n_inputs
  in
  let st1, r1 = Fault_sim.simulate_with_responses ~jobs:1 c faults ~source:(mk ()) ~n_patterns:128 in
  let st4, r4 = Fault_sim.simulate_with_responses ~jobs:4 c faults ~source:(mk ()) ~n_patterns:128 in
  check (Alcotest.array Alcotest.int) "first_detect" st1.Fault_sim.first_detect
    st4.Fault_sim.first_detect;
  check (Alcotest.array Alcotest.int) "detect_count" st1.Fault_sim.detect_count
    st4.Fault_sim.detect_count;
  if r1 <> r4 then Alcotest.fail "response-difference streams differ across jobs"

(* The acceptance property of the wide datapath: for every (jobs,
   block_words) combination the stats replay to the same bits as the
   one-word serial path — including patterns_run, whose early-exit
   accounting is the subtlest part of the word-serial replay. *)
let jobs_words_identity_qcheck =
  QCheck.Test.make ~name:"stats bit-identical across jobs x block-words" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:60 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let run ~jobs ~block_words ~drop =
        let rng = Rt_util.Rng.create (seed + 7) in
        let source = Pattern.equiprobable rng ~n_inputs:8 in
        Fault_sim.simulate ~jobs ~block_words ~drop c faults ~source ~n_patterns:300
      in
      List.for_all
        (fun drop ->
          let reference = run ~jobs:1 ~block_words:1 ~drop in
          List.for_all
            (fun jobs ->
              List.for_all
                (fun block_words ->
                  let s = run ~jobs ~block_words ~drop in
                  s.Fault_sim.first_detect = reference.Fault_sim.first_detect
                  && s.Fault_sim.detect_count = reference.Fault_sim.detect_count
                  && s.Fault_sim.patterns_run = reference.Fault_sim.patterns_run)
                [ 1; 4; 8 ])
            [ 1; 2; 4 ])
        [ true; false ])

let responses_jobs_words_identity_qcheck =
  QCheck.Test.make ~name:"responses bit-identical across jobs x block-words" ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:40 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let run ~jobs ~block_words ~drop =
        let rng = Rt_util.Rng.create (seed + 3) in
        let source = Pattern.equiprobable rng ~n_inputs:7 in
        Fault_sim.simulate_with_responses ~jobs ~block_words ~drop c faults ~source
          ~n_patterns:200
      in
      List.for_all
        (fun drop ->
          let ref_stats, ref_resp = run ~jobs:1 ~block_words:1 ~drop in
          List.for_all
            (fun jobs ->
              List.for_all
                (fun block_words ->
                  let s, r = run ~jobs ~block_words ~drop in
                  s.Fault_sim.first_detect = ref_stats.Fault_sim.first_detect
                  && s.Fault_sim.detect_count = ref_stats.Fault_sim.detect_count
                  && s.Fault_sim.patterns_run = ref_stats.Fault_sim.patterns_run
                  && r = ref_resp)
                [ 1; 4; 8 ])
            [ 1; 2; 4 ])
        [ false; true ])

let test_responses_drop_matches_simulate () =
  (* The flag-gated live-set handling: with ~drop:true the response run's
     stats must equal simulate ~drop:true bit for bit, and each response
     stream must be the prefix of the full stream ending with its first
     detecting word. *)
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let mk seed () =
    let rng = Rt_util.Rng.create seed in
    Pattern.equiprobable rng ~n_inputs
  in
  let st_drop, resp_drop =
    Fault_sim.simulate_with_responses ~drop:true c faults ~source:(mk 31 ()) ~n_patterns:256
  in
  let plain = Fault_sim.simulate ~drop:true c faults ~source:(mk 31 ()) ~n_patterns:256 in
  check (Alcotest.array Alcotest.int) "first_detect vs simulate" plain.Fault_sim.first_detect
    st_drop.Fault_sim.first_detect;
  check (Alcotest.array Alcotest.int) "detect_count vs simulate" plain.Fault_sim.detect_count
    st_drop.Fault_sim.detect_count;
  check Alcotest.int "patterns_run vs simulate" plain.Fault_sim.patterns_run
    st_drop.Fault_sim.patterns_run;
  let _, resp_full =
    Fault_sim.simulate_with_responses ~drop:false c faults ~source:(mk 31 ())
      ~n_patterns:256
  in
  Array.iteri
    (fun fi stream ->
      let full = resp_full.(fi) in
      (* Prefix of the full stream... *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      if not (is_prefix stream full) then Alcotest.failf "fault %d: not a prefix" fi;
      (* ...covering exactly the detections of the first detecting word. *)
      match stream with
      | [] -> if st_drop.Fault_sim.first_detect.(fi) >= 0 then Alcotest.failf "fault %d: empty" fi
      | (first, _) :: _ ->
        let word = first / 64 in
        if first <> st_drop.Fault_sim.first_detect.(fi) then Alcotest.failf "fault %d: first" fi;
        if List.exists (fun (i, _) -> i / 64 <> word) stream then
          Alcotest.failf "fault %d: stream crosses its detecting word" fi;
        let in_word = List.filter (fun (i, _) -> i / 64 = word) full in
        if List.length stream <> List.length in_word then
          Alcotest.failf "fault %d: missing detections in word" fi)
    resp_drop

(* --- Detect_mc --------------------------------------------------------------------- *)

let test_mc_estimates () =
  (* On a 2-input AND, output s-a-0 is detected by the single pattern 11:
     p = 0.25 under equiprobable patterns. *)
  let b = Rt_circuit.Builder.create () in
  let x = Rt_circuit.Builder.input b "x" in
  let y = Rt_circuit.Builder.input b "y" in
  let g = Rt_circuit.Builder.and2 b x y in
  Rt_circuit.Builder.output b ~name:"z" g;
  let c = Rt_circuit.Builder.finalize b in
  let f = [| { Rt_fault.Fault.site = Rt_fault.Fault.Stem g; stuck = false } |] in
  let est = Detect_mc.detection_probs c f ~weights:[| 0.5; 0.5 |] ~n_patterns:20_000 ~seed:3 in
  if Float.abs (est.(0) -. 0.25) > 0.02 then Alcotest.failf "mc estimate %.3f far from 0.25" est.(0)

let test_confidence_halfwidth () =
  let hw = Detect_mc.confidence_halfwidth ~p:0.5 ~n:10_000 in
  check Alcotest.bool "halfwidth sane" true (hw > 0.009 && hw < 0.011)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_sim"
    [ ( "pattern",
        [ Alcotest.test_case "of_vectors roundtrip" `Quick test_of_vectors_roundtrip;
          Alcotest.test_case "lane mask" `Quick test_lane_mask;
          Alcotest.test_case "take exact" `Quick test_take_exact;
          Alcotest.test_case "weighted statistics" `Quick test_weighted_statistics;
          Alcotest.test_case "fill_block truncation" `Quick test_fill_block_truncates;
          Alcotest.test_case "resolve_block_words policy" `Quick test_block_resolve ] );
      ("logic-sim", [ q logic_sim_vs_eval_qcheck; q wide_sim_vs_narrow_qcheck ]);
      ( "fault-sim",
        [ q ppsfp_vs_reference_qcheck;
          Alcotest.test_case "drop keeps first_detect" `Quick test_drop_consistency;
          Alcotest.test_case "coverage accounting" `Quick test_coverage_monotone;
          q responses_qcheck;
          Alcotest.test_case "responses drop matches simulate" `Quick
            test_responses_drop_matches_simulate ] );
      ( "multicore",
        [ Alcotest.test_case "jobs=4 stats bit-identical" `Quick test_jobs_bit_identical;
          Alcotest.test_case "jobs=4 responses bit-identical" `Quick
            test_jobs_responses_identical;
          q jobs_words_identity_qcheck;
          q responses_jobs_words_identity_qcheck ] );
      ( "monte-carlo",
        [ Alcotest.test_case "estimates p" `Quick test_mc_estimates;
          Alcotest.test_case "confidence halfwidth" `Quick test_confidence_halfwidth ] ) ]
