(* Tests for Rt_sim: pattern batches/sources, the 64-way logic simulator,
   PPSFP fault simulation against the single-pattern reference, coverage
   accounting, and the response-difference stream used by signature
   analysis. *)

module Pattern = Rt_sim.Pattern
module Logic_sim = Rt_sim.Logic_sim
module Fault_sim = Rt_sim.Fault_sim
module Detect_mc = Rt_sim.Detect_mc
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

(* --- Pattern ------------------------------------------------------------------ *)

let test_of_vectors_roundtrip () =
  let vectors = Array.init 100 (fun i -> bits_of_int 9 (i * 37)) in
  let batches = Pattern.of_vectors vectors in
  check Alcotest.int "two batches" 2 (List.length batches);
  let flat =
    List.concat_map
      (fun b -> List.init b.Pattern.n_patterns (fun l -> Pattern.pattern b l))
      batches
  in
  List.iteri
    (fun i v ->
      if v <> vectors.(i) then Alcotest.failf "pattern %d corrupted by packing" i)
    flat

let test_lane_mask () =
  let b = List.hd (Pattern.of_vectors (Array.init 5 (fun i -> bits_of_int 3 i))) in
  check Alcotest.int64 "5 lanes" 0x1FL (Pattern.lane_mask b)

let test_take_exact () =
  let rng = Rt_util.Rng.create 3 in
  let src = Pattern.equiprobable rng ~n_inputs:4 in
  let batches = Pattern.take src 130 in
  let total = List.fold_left (fun acc b -> acc + b.Pattern.n_patterns) 0 batches in
  check Alcotest.int "exactly 130 patterns" 130 total

let test_weighted_statistics () =
  let weights = [| 0.1; 0.5; 0.9 |] in
  let rng = Rt_util.Rng.create 17 in
  let src = Pattern.weighted rng weights in
  let counts = Array.make 3 0 in
  let n_batches = 400 in
  for _ = 1 to n_batches do
    let b = src () in
    Array.iteri
      (fun i w ->
        let rec pop x acc = if Int64.equal x 0L then acc else pop (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
        counts.(i) <- counts.(i) + pop w 0)
      b.Pattern.bits
  done;
  Array.iteri
    (fun i c ->
      let measured = Float.of_int c /. Float.of_int (64 * n_batches) in
      if Float.abs (measured -. weights.(i)) > 0.015 then
        Alcotest.failf "weight %d measured %.3f wanted %.2f" i measured weights.(i))
    counts

(* --- Logic_sim ------------------------------------------------------------------ *)

let logic_sim_vs_eval_qcheck =
  QCheck.Test.make ~name:"word simulation equals scalar evaluation" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:50 ~seed in
      let sim = Logic_sim.create c in
      let vectors = Array.init 64 (fun i -> bits_of_int 8 ((i * 2654435761) land 255)) in
      let batch = List.hd (Pattern.of_vectors vectors) in
      Logic_sim.run sim batch;
      let ok = ref true in
      for lane = 0 to 63 do
        let vals = Netlist.eval c vectors.(lane) in
        for n = 0 to Netlist.size c - 1 do
          let got = Int64.logand (Int64.shift_right_logical (Logic_sim.value sim n) lane) 1L <> 0L in
          if got <> vals.(n) then ok := false
        done
      done;
      !ok)

(* --- Fault_sim ------------------------------------------------------------------- *)

let ppsfp_vs_reference_qcheck =
  QCheck.Test.make ~name:"ppsfp equals single-pattern reference" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:40 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let rng = Rt_util.Rng.create (seed + 1) in
      let vectors = Array.init 100 (fun _ -> Array.init 8 (fun _ -> Rt_util.Rng.bool rng)) in
      let batches = ref (Pattern.of_vectors vectors) in
      let source () =
        match !batches with
        | [] -> Alcotest.fail "source exhausted"
        | b :: rest ->
          batches := rest;
          b
      in
      let stats = Fault_sim.simulate ~drop:false c faults ~source ~n_patterns:100 in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          let count =
            Array.fold_left (fun acc v -> if Fault_sim.detects c f v then acc + 1 else acc) 0 vectors
          in
          let first = ref (-1) in
          Array.iteri (fun i v -> if !first < 0 && Fault_sim.detects c f v then first := i) vectors;
          if count <> stats.Fault_sim.detect_count.(fi) then ok := false;
          if !first <> stats.Fault_sim.first_detect.(fi) then ok := false)
        faults;
      !ok)

let test_drop_consistency () =
  (* With dropping, first_detect must be identical to the no-drop run. *)
  let c = Generators.c432ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let run drop =
    let rng = Rt_util.Rng.create 5 in
    let source = Pattern.equiprobable rng ~n_inputs:36 in
    Fault_sim.simulate ~drop c faults ~source ~n_patterns:512
  in
  let a = run true and b = run false in
  check Alcotest.(array int) "first_detect equal" b.Fault_sim.first_detect a.Fault_sim.first_detect

let test_coverage_monotone () =
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let rng = Rt_util.Rng.create 5 in
  let source = Pattern.equiprobable rng ~n_inputs:22 in
  let stats = Fault_sim.simulate c faults ~source ~n_patterns:1024 in
  let curve = Fault_sim.coverage_curve stats ~points:[ 16; 64; 256; 1024 ] in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && mono rest
    | _ -> true
  in
  check Alcotest.bool "coverage non-decreasing" true (mono curve);
  check (Alcotest.float 1e-9) "coverage_at total equals coverage"
    (Fault_sim.coverage stats)
    (Fault_sim.coverage_at stats 1024);
  check Alcotest.int "undetected + detected = total" (Array.length faults)
    (Array.length (Fault_sim.undetected stats)
    + Array.fold_left (fun a fd -> if fd >= 0 then a + 1 else a) 0 stats.Fault_sim.first_detect)

let responses_qcheck =
  QCheck.Test.make ~name:"response stream consistent with detection" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let mk_source () =
        let rng = Rt_util.Rng.create 42 in
        Pattern.equiprobable rng ~n_inputs:7
      in
      let stats, responses =
        Fault_sim.simulate_with_responses c faults ~source:(mk_source ()) ~n_patterns:128
      in
      let plain = Fault_sim.simulate ~drop:false c faults ~source:(mk_source ()) ~n_patterns:128 in
      let ok = ref true in
      Array.iteri
        (fun fi diffs ->
          (* diff count equals detect count; every diff word nonzero;
             indices ascending; first index equals first_detect. *)
          if List.length diffs <> plain.Fault_sim.detect_count.(fi) then ok := false;
          if List.exists (fun (_, d) -> Int64.equal d 0L) diffs then ok := false;
          let idxs = List.map fst diffs in
          if List.sort compare idxs <> idxs then ok := false;
          (match idxs with
           | [] -> if stats.Fault_sim.first_detect.(fi) >= 0 then ok := false
           | first :: _ -> if first <> stats.Fault_sim.first_detect.(fi) then ok := false))
        responses;
      !ok)

(* --- Multicore sharding ------------------------------------------------------------ *)

let test_jobs_bit_identical () =
  (* Sharding faults across domains must not change a single stat: the
     per-fault detection words are independent and the bookkeeping replays
     serially, so jobs=4 is bit-identical to jobs=1 on the same seed. *)
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let mk () =
    let rng = Rt_util.Rng.create 11 in
    Pattern.equiprobable rng ~n_inputs
  in
  List.iter
    (fun drop ->
      let s1 = Fault_sim.simulate ~jobs:1 ~drop c faults ~source:(mk ()) ~n_patterns:512 in
      let s4 = Fault_sim.simulate ~jobs:4 ~drop c faults ~source:(mk ()) ~n_patterns:512 in
      let tag = if drop then "drop" else "no-drop" in
      check (Alcotest.array Alcotest.int) (tag ^ " first_detect") s1.Fault_sim.first_detect
        s4.Fault_sim.first_detect;
      check (Alcotest.array Alcotest.int) (tag ^ " detect_count") s1.Fault_sim.detect_count
        s4.Fault_sim.detect_count;
      check Alcotest.int (tag ^ " patterns_run") s1.Fault_sim.patterns_run
        s4.Fault_sim.patterns_run)
    [ true; false ]

let test_jobs_responses_identical () =
  let c = Generators.c880ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let mk () =
    let rng = Rt_util.Rng.create 23 in
    Pattern.equiprobable rng ~n_inputs
  in
  let st1, r1 = Fault_sim.simulate_with_responses ~jobs:1 c faults ~source:(mk ()) ~n_patterns:128 in
  let st4, r4 = Fault_sim.simulate_with_responses ~jobs:4 c faults ~source:(mk ()) ~n_patterns:128 in
  check (Alcotest.array Alcotest.int) "first_detect" st1.Fault_sim.first_detect
    st4.Fault_sim.first_detect;
  check (Alcotest.array Alcotest.int) "detect_count" st1.Fault_sim.detect_count
    st4.Fault_sim.detect_count;
  if r1 <> r4 then Alcotest.fail "response-difference streams differ across jobs"

(* --- Detect_mc --------------------------------------------------------------------- *)

let test_mc_estimates () =
  (* On a 2-input AND, output s-a-0 is detected by the single pattern 11:
     p = 0.25 under equiprobable patterns. *)
  let b = Rt_circuit.Builder.create () in
  let x = Rt_circuit.Builder.input b "x" in
  let y = Rt_circuit.Builder.input b "y" in
  let g = Rt_circuit.Builder.and2 b x y in
  Rt_circuit.Builder.output b ~name:"z" g;
  let c = Rt_circuit.Builder.finalize b in
  let f = [| { Rt_fault.Fault.site = Rt_fault.Fault.Stem g; stuck = false } |] in
  let est = Detect_mc.detection_probs c f ~weights:[| 0.5; 0.5 |] ~n_patterns:20_000 ~seed:3 in
  if Float.abs (est.(0) -. 0.25) > 0.02 then Alcotest.failf "mc estimate %.3f far from 0.25" est.(0)

let test_confidence_halfwidth () =
  let hw = Detect_mc.confidence_halfwidth ~p:0.5 ~n:10_000 in
  check Alcotest.bool "halfwidth sane" true (hw > 0.009 && hw < 0.011)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_sim"
    [ ( "pattern",
        [ Alcotest.test_case "of_vectors roundtrip" `Quick test_of_vectors_roundtrip;
          Alcotest.test_case "lane mask" `Quick test_lane_mask;
          Alcotest.test_case "take exact" `Quick test_take_exact;
          Alcotest.test_case "weighted statistics" `Quick test_weighted_statistics ] );
      ("logic-sim", [ q logic_sim_vs_eval_qcheck ]);
      ( "fault-sim",
        [ q ppsfp_vs_reference_qcheck;
          Alcotest.test_case "drop keeps first_detect" `Quick test_drop_consistency;
          Alcotest.test_case "coverage accounting" `Quick test_coverage_monotone;
          q responses_qcheck ] );
      ( "multicore",
        [ Alcotest.test_case "jobs=4 stats bit-identical" `Quick test_jobs_bit_identical;
          Alcotest.test_case "jobs=4 responses bit-identical" `Quick
            test_jobs_responses_identical ] );
      ( "monte-carlo",
        [ Alcotest.test_case "estimates p" `Quick test_mc_estimates;
          Alcotest.test_case "confidence halfwidth" `Quick test_confidence_halfwidth ] ) ]
