# Convenience targets; `make check` is the pre-commit gate.

.PHONY: all check test bench bench-json bench-smoke trace-demo clean

all:
	dune build

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json

# Fast perf/correctness gate for the fused cofactor path: bit-identical to
# two subset queries and no slower than 1.5x of them (it should be faster).
bench-smoke:
	dune exec bench/smoke.exe

# Sanity-check the observability surface end to end: run one optimize with
# tracing on and make sure the trace is non-empty, valid JSON.
trace-demo:
	dune exec bin/main.exe -- optimize s1 --engine cond:8 --sweeps 2 \
	  --trace /tmp/optprob-s1-trace.json -v
	@test -s /tmp/optprob-s1-trace.json
	@if command -v python3 >/dev/null 2>&1; then \
	  python3 -m json.tool /tmp/optprob-s1-trace.json >/dev/null; \
	else \
	  grep -q '"traceEvents"' /tmp/optprob-s1-trace.json; \
	fi
	@echo "trace-demo: /tmp/optprob-s1-trace.json ok"

clean:
	dune clean
