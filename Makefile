# Convenience targets; `make check` is the pre-commit gate.

.PHONY: all check test bench bench-json bench-smoke trace-demo obs-demo obs-live-demo obs-history-demo pipeline-demo opt-demo objective-demo clean

all:
	dune build

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json

# Fast perf/correctness gate for the fused cofactor path: bit-identical to
# two subset queries, and obs-diff (1.5x quantile gate) must not flag the
# fused side against the two-query baseline.  Artifacts land under
# _obs/smoke/{baseline,fused} for upload or manual `optprob obs-diff`.
# The finished run is also ingested into the run registry (second arg) and
# gated against the promoted baseline record there — the first run ever
# bootstrap-promotes itself.
bench-smoke:
	dune exec bench/smoke.exe -- _obs/smoke _obs/registry

# Sanity-check the observability surface end to end: run one optimize with
# tracing on and make sure the trace is non-empty, valid JSON.
trace-demo:
	dune exec bin/main.exe -- optimize s1 --engine cond:8 --sweeps 2 \
	  --trace /tmp/optprob-s1-trace.json -v
	@test -s /tmp/optprob-s1-trace.json
	@if command -v python3 >/dev/null 2>&1; then \
	  python3 -m json.tool /tmp/optprob-s1-trace.json >/dev/null; \
	else \
	  grep -q '"traceEvents"' /tmp/optprob-s1-trace.json; \
	fi
	@echo "trace-demo: /tmp/optprob-s1-trace.json ok"

# End-to-end artifact demo: two identical optimize runs under --obs-dir,
# then obs-diff between them.  Thresholds are deliberately loose (10x) —
# the demo proves the plumbing (manifest, metrics, histograms, diff), not
# machine speed, so CI timer noise cannot flake it.
obs-demo:
	dune exec bin/main.exe -- optimize s1 --engine cond:8 --sweeps 2 \
	  --obs-dir _obs/demo/a
	dune exec bin/main.exe -- optimize s1 --engine cond:8 --sweeps 2 \
	  --obs-dir _obs/demo/b
	@test -s _obs/demo/a/manifest.json
	@test -s _obs/demo/a/metrics.prom
	@grep -q '"optprob-metrics/2"' _obs/demo/a/metrics.json
	dune exec bin/main.exe -- obs-diff _obs/demo/a _obs/demo/b \
	  --max-span-ratio 10 --max-quantile-ratio 10 --max-counter-ratio 10
	@echo "obs-demo: _obs/demo/{a,b} ok"

# Live-telemetry demo: one run with the background sampler, per-domain
# scheduler tracks (OPTPROB_JOBS_OVERCOMMIT lifts the core clamp so real
# worker domains exist even on 1-core CI) and the HTTP endpoint, scraped
# mid-run with curl.  OPTPROB_OBS_LINGER_MS keeps /metrics answering
# briefly after the run ends so the scrapes cannot race a fast finish.
obs-live-demo:
	rm -rf _obs/live
	mkdir -p _obs/live
	OPTPROB_JOBS_OVERCOMMIT=1 OPTPROB_OBS_LINGER_MS=6000 \
	  dune exec bin/main.exe -- run c6288ish --patterns 20000 --jobs 4 \
	  --obs-sample-ms 25 --obs-dir _obs/live --obs-listen 8377 \
	  2> _obs/live/run.err & \
	pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
	  if curl -fsS http://127.0.0.1:8377/healthz 2>/dev/null | grep -q ok; then up=1; break; fi; \
	  sleep 0.2; \
	done; \
	test $$up -eq 1 || { echo "obs-live-demo FAIL: /healthz never came up"; cat _obs/live/run.err; exit 1; }; \
	curl -fsS http://127.0.0.1:8377/metrics > _obs/live/metrics.live.prom || exit 1; \
	grep -q '^optprob_' _obs/live/metrics.live.prom || { echo "obs-live-demo FAIL: /metrics empty"; exit 1; }; \
	curl -fsS http://127.0.0.1:8377/snapshot | grep -q 'optprob-metrics/2' || { echo "obs-live-demo FAIL: /snapshot"; exit 1; }; \
	wait $$pid || { echo "obs-live-demo FAIL: run exited nonzero"; cat _obs/live/run.err; exit 1; }
	@test -s _obs/live/timeline.json
	@grep -q '"optprob-timeline/1"' _obs/live/timeline.json
	@grep -q '"samples"' _obs/live/timeline.json
	@grep -q 'pool.d1' _obs/live/trace.json || { echo "obs-live-demo FAIL: no per-domain tracks"; exit 1; }
	dune exec bin/main.exe -- obs-diff _obs/live _obs/live -q
	@echo "obs-live-demo: live /metrics + /healthz + /snapshot, timeline and per-domain tracks ok"

# Longitudinal-history demo and acceptance gate for the run registry:
# three identical pipeline runs auto-ingest into a fresh registry, which
# must then list exactly 3 records, render a 3-point pipeline.total_us
# trend with a sparkline, and baseline-diff the newest run against the
# promoted first one through the registry.  Thresholds are deliberately
# loose (10x) — the demo proves the plumbing, not machine speed.
obs-history-demo:
	rm -rf _obs/history-demo
	for i in 1 2 3; do \
	  dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	    --obs-dir _obs/history-demo/run$$i \
	    --obs-registry _obs/history-demo/registry || exit 1; \
	done
	@n=$$(dune exec bin/main.exe -- obs list --ids \
	  --obs-registry _obs/history-demo/registry | wc -l); \
	  test "$$n" -eq 3 || { echo "obs-history-demo FAIL: expected 3 records, got $$n"; exit 1; }
	dune exec bin/main.exe -- obs trend pipeline.total_us \
	  --obs-registry _obs/history-demo/registry | tee /tmp/optprob-history-trend.out
	@grep -q '3 point(s)' /tmp/optprob-history-trend.out || \
	  { echo "obs-history-demo FAIL: trend is not a 3-point series"; exit 1; }
	@grep -q 'spark:' /tmp/optprob-history-trend.out || \
	  { echo "obs-history-demo FAIL: no sparkline"; exit 1; }
	first=$$(dune exec bin/main.exe -- obs list --ids \
	  --obs-registry _obs/history-demo/registry | head -n 1); \
	  dune exec bin/main.exe -- obs baseline promote $$first \
	    --obs-registry _obs/history-demo/registry
	dune exec bin/main.exe -- obs diff --baseline \
	  --obs-registry _obs/history-demo/registry \
	  --max-span-ratio 10 --max-quantile-ratio 10 --max-counter-ratio 10
	@echo "obs-history-demo: 3 ingested runs, 3-point trend, baseline diff ok"

# Resumable-pipeline gate: the same `optprob run` twice against one
# --work-dir.  The second run must execute zero stages — verified from its
# metrics artifact: every pipeline.stage.*.cache_hit is 1 and every
# pipeline.stage.*.run is 0.
pipeline-demo:
	rm -rf _obs/pipeline-demo
	dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	  --work-dir _obs/pipeline-demo/work --obs-dir _obs/pipeline-demo/a
	dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	  --work-dir _obs/pipeline-demo/work --obs-dir _obs/pipeline-demo/b
	@for s in loaded opt_netlist faults analysis normalized optimized validated report; do \
	  grep -q "\"pipeline.stage.$$s.cache_hit\": 1" _obs/pipeline-demo/b/metrics.json || \
	    { echo "pipeline-demo FAIL: stage $$s not served from cache"; exit 1; }; \
	  grep -q "\"pipeline.stage.$$s.run\": 0" _obs/pipeline-demo/b/metrics.json || \
	    { echo "pipeline-demo FAIL: stage $$s re-executed"; exit 1; }; \
	done
	@echo "pipeline-demo: second run resumed 8/8 stages from cache"

# Objective cache-separation gate: the same circuit and work dir under
# --objective single, then ndetect:2.  The n-detect run must reuse the
# circuit/fault/analysis stages but re-run everything the objective keys
# (normalized onward); a repeat ndetect:2 run is then a full cache hit —
# distinct objectives occupy distinct store keys with no cross-hits in
# either direction.
objective-demo:
	rm -rf _obs/objective-demo
	dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	  --objective single --work-dir _obs/objective-demo/work \
	  --obs-dir _obs/objective-demo/single
	dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	  --objective ndetect:2 --work-dir _obs/objective-demo/work \
	  --obs-dir _obs/objective-demo/nd
	@for s in loaded opt_netlist faults analysis; do \
	  grep -q "\"pipeline.stage.$$s.cache_hit\": 1" _obs/objective-demo/nd/metrics.json || \
	    { echo "objective-demo FAIL: stage $$s not shared across objectives"; exit 1; }; \
	done
	@for s in normalized optimized validated report; do \
	  grep -q "\"pipeline.stage.$$s.run\": 1" _obs/objective-demo/nd/metrics.json || \
	    { echo "objective-demo FAIL: stage $$s cross-hit between objectives"; exit 1; }; \
	done
	dune exec bin/main.exe -- run s1 --engine cond:8 --sweeps 2 -q \
	  --objective ndetect:2 --work-dir _obs/objective-demo/work \
	  --obs-dir _obs/objective-demo/nd2
	@for s in loaded opt_netlist faults analysis normalized optimized validated report; do \
	  grep -q "\"pipeline.stage.$$s.cache_hit\": 1" _obs/objective-demo/nd2/metrics.json || \
	    { echo "objective-demo FAIL: repeat n-detect run not fully cached"; exit 1; }; \
	done
	@grep -q '"objective": "ndetect:2"' _obs/objective-demo/nd/manifest.json || \
	  { echo "objective-demo FAIL: manifest missing the objective"; exit 1; }
	@grep -q '"objective.ndetect_2.runs"' _obs/objective-demo/nd/metrics.json || \
	  { echo "objective-demo FAIL: per-objective run counter missing"; exit 1; }
	@echo "objective-demo: objectives share upstream stages, separate downstream keys"

# Netlist-optimization demo: simplify the deliberately redundant example
# netlist and show the per-pass removal stats; then prove the generated
# circuits are already fixpoints (relevel only, nothing removed).
opt-demo:
	dune exec bin/main.exe -- simplify examples/opt_demo.bench | tee /tmp/optprob-opt-demo.out
	@grep -q 'pass const-fold' /tmp/optprob-opt-demo.out || { echo "opt-demo FAIL: no per-pass stats"; exit 1; }
	@grep -q 'nodes removed: 11' /tmp/optprob-opt-demo.out || { echo "opt-demo FAIL: expected 11 nodes removed"; exit 1; }
	dune exec bin/main.exe -- simplify s1 | grep 'nodes removed'
	@echo "opt-demo: ok"

clean:
	dune clean
