# Convenience targets; `make check` is the pre-commit gate.

.PHONY: all check test bench bench-json clean

all:
	dune build

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
