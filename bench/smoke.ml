(* CI smoke benchmark for the oracle protocol's fused cofactor path and
   the wide-word ppsfp fault simulator.

   Asserts, on the s1 comparator with the COP engine:
   1. [Oracle.cofactor_pair] is bit-identical to the two independent
      subset queries it replaces;
   2. the fused (incremental damage-cone) path is not slower than 1.5x
      the two-query baseline.  The gate is the [obs-diff] engine itself:
      both sides' per-sweep latencies are written as --obs-dir style run
      artifacts and diffed with the default 1.5x quantile threshold, so
      the bench exercises the same regression analyzer CI relies on;
   3. enabling telemetry does not slow the fused sweep beyond a lenient
      1.5x band (the disabled path is a single atomic load).

   And, on the 8x8 multiplier:
   4. [Fault_sim.simulate] stats are bit-identical across
      (jobs, block-words) combinations, including the defaults;
   5. on the no-drop workload (every fault stays live, the hard-fault
      regime the paper's optimization targets) the wide datapath (W=8)
      beats the narrow one (W=1) by enough that obs-diff, run with the
      narrow side as candidate against the wide baseline, flags the
      narrow path as a regression.  Inverting the roles turns the
      analyzer into a speedup lock: losing the width win makes the gate
      fail.  The width axis is chosen because it does not depend on host
      core count, unlike the jobs axis;
   6. a second jobs=4 run spawns no additional domains
      ([parallel.spawns] flat), i.e. the domain pool persists;
   7. the background timeline sampler is free at the workload level: the
      fused sweep's raw-sample p50 with telemetry+sampler(25 ms) stays
      within 1.25x of telemetry-only, the p50s read back from the two run
      artifacts' metrics.json land within one log bucket of each other —
      and the sampler side's timeline.json self-diffs clean through
      obs-diff.

   Finally the whole smoke run is ingested into the persistent run
   registry (argv.(2), default the OPTPROB_OBS_REGISTRY/_obs/registry
   convention; pass "-" to skip):
   8. the first ever run bootstrap-promotes itself as the baseline;
      every later run is diffed against the promoted baseline record and
      fails on histogram (3x, cross-runner noise allowance) or counter
      (1.5x, counters are deterministic) regressions, and the
      smoke.sweep_us.p50 trend over the registry history is printed with
      its step-change verdict.

   The timed sections run with recording OFF so the numbers measure the
   oracle/simulator, not the telemetry.  Artifacts land under an optional
   argv root (default _obs/smoke) as <root>/{baseline,fused},
   <root>/{ppsfp-wide,ppsfp-narrow} and <root>/run (the ingested one),
   ready for CI upload or a manual `optprob obs-diff`.

   Exits nonzero on any violation.  Run with: make bench-smoke *)

module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle
module Pipeline = Rt_pipeline
module Pconfig = Rt_pipeline.Config

let rounds = 3
let iters = 20

(* Time [f] repeatedly; returns the best-of-rounds total and the per-call
   durations (microseconds) of every call across all rounds. *)
let time_collect f =
  let best = ref Float.infinity in
  let samples = ref [] in
  for _ = 1 to rounds do
    let t0 = Rt_util.Stats.timer_start () in
    for _ = 1 to iters do
      let t = Rt_util.Stats.timer_start () in
      f ();
      samples := Rt_util.Stats.timer_elapsed t *. 1e6 :: !samples
    done;
    let dt = Rt_util.Stats.timer_elapsed t0 in
    if dt < !best then best := dt
  done;
  (!best, Array.of_list (List.rev !samples))

let () =
  let out_root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "_obs/smoke" in
  let t_run = Rt_util.Stats.timer_start () in
  (* The pipeline supplies the workload: a COP analysis of s1 at a skewed
     weight vector, and the hard-fault prefix certified by NORMALIZE. *)
  let n_inputs =
    Array.length
      (Rt_circuit.Netlist.inputs
         (Pconfig.load_circuit (Pconfig.Builtin "s1")))
  in
  let x = Array.init n_inputs (fun i -> 0.3 +. (0.4 *. Float.of_int (i mod 2))) in
  let ctx =
    Pipeline.create
      (Pconfig.exn
         (Pconfig.make ~engine:"cop" ~weights:(Pconfig.Weights_vector x) ~circuit:"s1" ()))
  in
  let oracle = Pipeline.oracle ctx in
  let hard = (Pipeline.normalized ctx).Pipeline.value.Pipeline.hard in
  let plan = Oracle.plan oracle hard in
  let fused input = Oracle.cofactor_pair oracle plan ~input ~x in
  let baseline input =
    let x' = Array.copy x in
    x'.(input) <- 0.0;
    let pf0 = Detect.probs_subset oracle hard x' in
    x'.(input) <- 1.0;
    let pf1 = Detect.probs_subset oracle hard x' in
    (pf0, pf1)
  in
  (* Correctness first: every input's fused pair must equal the baseline
     bit for bit. *)
  let mismatches = ref 0 in
  for i = 0 to n_inputs - 1 do
    let f0, f1 = fused i in
    let b0, b1 = baseline i in
    if not (f0 = b0 && f1 = b1) then incr mismatches
  done;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-smoke FAIL: %d/%d inputs with non-identical cofactors\n" !mismatches
      n_inputs;
    exit 1
  end;
  (* Timing: sweep all inputs per iteration, like one PREPARE pass.
     Recording stays OFF here — these numbers are the oracle alone. *)
  let sweep f () =
    for i = 0 to n_inputs - 1 do
      ignore (Sys.opaque_identity (f i))
    done
  in
  ignore (Sys.opaque_identity (sweep fused ()));
  ignore (Sys.opaque_identity (sweep baseline ()));
  let t_fused, s_fused = time_collect (sweep fused) in
  let t_base, s_base = time_collect (sweep baseline) in
  (* Telemetry-on overhead of the same fused sweep.  The band is lenient
     (1.5x) because the absolute times are tiny and CI timers are noisy;
     the point is to catch the disabled/enabled paths swapping cost. *)
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let t_fused_obs, _ = time_collect (sweep fused) in
  Rt_obs.clear ();
  let obs_ratio = t_fused_obs /. t_fused in
  (* Write both sides as run artifacts and let obs-diff judge the perf
     gate: baseline dir = 2x subset queries, candidate dir = fused. *)
  let manifest side =
    Rt_obs.Artifact.make_manifest ~engine:"cop"
      ~argv:[| "bench-smoke"; side |]
      ~wall_s:(Rt_util.Stats.timer_elapsed t_run)
      ()
  in
  let write side samples =
    let h = Rt_obs.histogram "smoke.sweep_us" in
    Array.iter (Rt_obs.observe h) samples;
    let dir = Filename.concat out_root side in
    Rt_obs.Artifact.write ~dir ~manifest:(manifest side) ();
    Rt_obs.clear ();
    dir
  in
  let dir_base = write "baseline" s_base in
  let dir_fused = write "fused" s_fused in
  Rt_obs.set_enabled false;
  let diff = Rt_obs.Diff.compare_dirs dir_base dir_fused in
  let regressions = Rt_obs.Diff.regressions diff in
  let ratio = t_fused /. t_base in
  Printf.printf "bench-smoke (s1, cop, %d hard faults, %d inputs):\n" (Array.length hard) n_inputs;
  Printf.printf "  fused cofactor_pair sweep:  %8.3f ms\n" (t_fused *. 1000.0 /. Float.of_int iters);
  Printf.printf "  2x probs_subset sweep:      %8.3f ms\n" (t_base *. 1000.0 /. Float.of_int iters);
  Printf.printf "  ratio (fused / baseline):   %8.3f\n" ratio;
  Printf.printf "  telemetry-on overhead:      %8.3f x\n" obs_ratio;
  Printf.printf "  artifacts:                  %s {baseline,fused}\n" out_root;
  Rt_obs.Diff.pp_report Format.std_formatter diff;
  if regressions <> [] then begin
    Printf.eprintf "bench-smoke FAIL: obs-diff flags the fused path as a regression\n";
    exit 1
  end;
  if obs_ratio > 1.5 then begin
    Printf.eprintf "bench-smoke FAIL: telemetry overhead %.3fx > 1.5x\n" obs_ratio;
    exit 1
  end;
  (* --- wide-word ppsfp ----------------------------------------------------- *)
  let mctx = Pipeline.create (Pconfig.exn (Pconfig.make ~engine:"cop" ~circuit:"c6288ish:8" ())) in
  let mult = Pipeline.circuit mctx in
  let mfaults = Pipeline.fault_list mctx in
  let m_inputs = Array.length (Rt_circuit.Netlist.inputs mult) in
  let sim ~jobs ~block_words ~drop () =
    let rng = Rt_util.Rng.create 7 in
    let source = Rt_sim.Pattern.equiprobable rng ~n_inputs:m_inputs in
    Rt_sim.Fault_sim.simulate ~jobs ~block_words ~drop mult mfaults ~source ~n_patterns:512
  in
  (* Identity first: every (jobs, W) must reproduce the (1, 1) stats bit
     for bit — same invariant the qcheck suite enforces, re-checked here
     on the bench workload the timing gate runs on. *)
  List.iter
    (fun drop ->
      let reference = sim ~jobs:1 ~block_words:1 ~drop () in
      List.iter
        (fun (jobs, block_words) ->
          let s = sim ~jobs ~block_words ~drop () in
          if
            s.Rt_sim.Fault_sim.first_detect <> reference.Rt_sim.Fault_sim.first_detect
            || s.Rt_sim.Fault_sim.detect_count <> reference.Rt_sim.Fault_sim.detect_count
            || s.Rt_sim.Fault_sim.patterns_run <> reference.Rt_sim.Fault_sim.patterns_run
          then begin
            Printf.eprintf "bench-smoke FAIL: ppsfp stats differ at jobs=%d W=%d drop=%b\n"
              jobs block_words drop;
            exit 1
          end)
        [ (1, 4); (4, 1); (4, 4); (4, 8) ])
    [ true; false ];
  (* Timing on the no-drop workload: with drop on, a detected fault
     leaves the live set between words, so narrow blocks shed work
     faster and the comparison would measure drop luck, not the
     datapath.  No-drop keeps the per-pattern work identical on both
     sides — and is exactly the hard-fault regime (detection
     probabilities near zero) the optimized input probabilities are
     computed for. *)
  let t_narrow, s_narrow =
    time_collect (fun () -> ignore (sim ~jobs:1 ~block_words:1 ~drop:false ()))
  in
  let t_wide, s_wide =
    time_collect (fun () -> ignore (sim ~jobs:1 ~block_words:8 ~drop:false ()))
  in
  (* One extra (untimed) recorded run per side puts the kernel counters —
     ppsfp.batches, parallel.* — next to the latency histogram in each
     artifact, so obs-diff also sees the 8x good-machine-pass blowup of
     the narrow side. *)
  let write_ppsfp side samples ~block_words =
    let h = Rt_obs.histogram "smoke.ppsfp_us" in
    Array.iter (Rt_obs.observe h) samples;
    ignore (sim ~jobs:1 ~block_words ~drop:false ());
    let dir = Filename.concat out_root side in
    Rt_obs.Artifact.write ~dir ~manifest:(manifest side) ();
    Rt_obs.clear ();
    dir
  in
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let dir_wide = write_ppsfp "ppsfp-wide" s_wide ~block_words:8 in
  let dir_narrow = write_ppsfp "ppsfp-narrow" s_narrow ~block_words:1 in
  Rt_obs.set_enabled false;
  (* Roles inverted on purpose: wide is the baseline, narrow the
     candidate, and the gate requires obs-diff to FLAG a latency
     regression — i.e. W=1 must be at least [quantile_ratio] slower than
     W=8.  If a change erodes the width win below that bar, no histogram
     finding is emitted and the gate fails. *)
  let ppsfp_thresholds = { Rt_obs.Diff.default with quantile_ratio = 1.25 } in
  let ppsfp_diff = Rt_obs.Diff.compare_dirs ~thresholds:ppsfp_thresholds dir_wide dir_narrow in
  let ppsfp_regressions =
    List.filter
      (fun f -> f.Rt_obs.Diff.kind = "histogram")
      (Rt_obs.Diff.regressions ppsfp_diff)
  in
  let width_ratio = t_narrow /. t_wide in
  (* Pool persistence: after a first jobs=4 run has warmed the pool, a
     second run must not spawn any further domains. *)
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let spawns () = Rt_obs.value (Rt_obs.counter "parallel.spawns") in
  ignore (sim ~jobs:4 ~block_words:4 ~drop:true ());
  let spawns_warm = spawns () in
  ignore (sim ~jobs:4 ~block_words:4 ~drop:true ());
  let spawns_after = spawns () in
  Rt_obs.clear ();
  Rt_obs.set_enabled false;
  Printf.printf "ppsfp (c6288ish:8, %d faults, 512 patterns, no-drop):\n" (Array.length mfaults);
  Printf.printf "  narrow W=1 run:             %8.3f ms\n" (t_narrow *. 1000.0 /. Float.of_int iters);
  Printf.printf "  wide   W=8 run:             %8.3f ms\n" (t_wide *. 1000.0 /. Float.of_int iters);
  Printf.printf "  width speedup (W1 / W8):    %8.3f x\n" width_ratio;
  Printf.printf "  domain spawns warm/after:   %d / %d\n" spawns_warm spawns_after;
  Printf.printf "  artifacts:                  %s {ppsfp-wide,ppsfp-narrow}\n" out_root;
  Rt_obs.Diff.pp_report Format.std_formatter ppsfp_diff;
  if ppsfp_regressions = [] then begin
    Printf.eprintf
      "bench-smoke FAIL: obs-diff does not flag W=1 as a regression vs W=8 \
       (width speedup %.3fx below the 1.25x gate)\n"
      width_ratio;
    exit 1
  end;
  if spawns_after > spawns_warm then begin
    Printf.eprintf "bench-smoke FAIL: second jobs=4 run spawned %d extra domains\n"
      (spawns_after - spawns_warm);
    exit 1
  end;
  (* --- sampler overhead ------------------------------------------------------
     Telemetry-only vs telemetry + 25 ms timeline sampler, same fused
     sweep.  Both runs are recorded; the gate compares the p50 each
     artifact's metrics.json reports, so it measures exactly what a
     sampled production run would. *)
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let _, s_tel_only = time_collect (sweep fused) in
  let dir_tel = write "sampler-off" s_tel_only in
  let sampler = Rt_obs.Timeline.start ~period_ms:25 () in
  let _, s_sampled = time_collect (sweep fused) in
  let tl_samples, tl_dropped = Rt_obs.Timeline.stop sampler in
  let dir_samp = write "sampler-on" s_sampled in
  Rt_obs.Timeline.write
    (Filename.concat dir_samp "timeline.json")
    ~period_ms:25 ~dropped:tl_dropped tl_samples;
  Rt_obs.set_enabled false;
  let p50_of dir =
    let path = Filename.concat dir "metrics.json" in
    let ic = open_in_bin path in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let j = Rt_obs.Json.parse doc in
    match
      Option.bind (Rt_obs.Json.member "histograms" j) (fun h ->
          Option.bind (Rt_obs.Json.member "smoke.sweep_us" h) (fun s ->
              Option.bind (Rt_obs.Json.member "p50" s) Rt_obs.Json.to_float))
    with
    | Some v -> v
    | None -> Printf.eprintf "bench-smoke FAIL: no smoke.sweep_us p50 in %s\n" path; exit 1
  in
  let p50_tel = p50_of dir_tel and p50_samp = p50_of dir_samp in
  (* The artifact p50s are quantized by the histogram's log buckets
     (adjacent boundaries ~1.78x apart), so a tight band on them flips a
     coin whenever the sweep straddles a bucket edge.  The numeric gate
     therefore runs on the exact medians of the raw per-call samples
     (1.25x, room for scheduler noise at the ~1 ms scale); the artifact
     read-back keeps its own guard — the two p50s must land within one
     bucket of each other — so the recorded story cannot drift from the
     measured one. *)
  let raw_median a =
    let s = Array.copy a in
    Array.sort Float.compare s;
    s.(Array.length s / 2)
  in
  let sampler_ratio = raw_median s_sampled /. raw_median s_tel_only in
  let artifact_ratio = p50_samp /. p50_tel in
  let sampler_thresholds = { Rt_obs.Diff.default with quantile_ratio = 1.8 } in
  let sampler_diff =
    Rt_obs.Diff.compare_dirs ~thresholds:sampler_thresholds dir_tel dir_samp
  in
  let tl_self = Rt_obs.Diff.regressions (Rt_obs.Diff.compare_dirs dir_samp dir_samp) in
  Printf.printf "sampler overhead (fused sweep, 25 ms period):\n";
  Printf.printf "  telemetry-only p50:         %8.3f us (artifact %8.3f)\n"
    (raw_median s_tel_only) p50_tel;
  Printf.printf "  telemetry+sampler p50:      %8.3f us (artifact %8.3f)\n"
    (raw_median s_sampled) p50_samp;
  Printf.printf "  ratio (sampled / plain):    %8.3f (artifact %8.3f)\n"
    sampler_ratio artifact_ratio;
  Printf.printf "  timeline samples/dropped:   %d / %d\n" (List.length tl_samples) tl_dropped;
  Printf.printf "  artifacts:                  %s {sampler-off,sampler-on}\n" out_root;
  Rt_obs.Diff.pp_report Format.std_formatter sampler_diff;
  if sampler_ratio > 1.25 then begin
    Printf.eprintf "bench-smoke FAIL: sampler overhead %.3fx > 1.25x on raw p50\n" sampler_ratio;
    exit 1
  end;
  if artifact_ratio > 1.8 then begin
    Printf.eprintf
      "bench-smoke FAIL: artifact p50s more than one bucket apart (%.3fx)\n" artifact_ratio;
    exit 1
  end;
  if tl_self <> [] then begin
    Printf.eprintf "bench-smoke FAIL: sampler-side timeline does not self-diff clean\n";
    exit 1
  end;
  (* --- run registry ----------------------------------------------------------
     Ingest the whole smoke run into the persistent registry and gate
     against the promoted baseline record.  The first run ever seen
     bootstrap-promotes itself; after that, histograms get a lenient 3x
     band (cross-runner latency noise) while counters — deterministic for
     a fixed workload — keep the default 1.5x. *)
  let module Reg = Rt_obs_registry in
  let registry =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else Reg.default_dir ()
  in
  if registry <> "-" then begin
    Rt_obs.set_enabled true;
    Rt_obs.clear ();
    let h_sweep = Rt_obs.histogram "smoke.sweep_us" in
    Array.iter (Rt_obs.observe h_sweep) s_fused;
    let h_ppsfp = Rt_obs.histogram "smoke.ppsfp_us" in
    Array.iter (Rt_obs.observe h_ppsfp) s_wide;
    (* One recorded pass per kernel puts the deterministic counters
       (oracle.*, ppsfp.batches) next to the latency histograms. *)
    sweep fused ();
    ignore (sim ~jobs:1 ~block_words:8 ~drop:false ());
    let dir_run = Filename.concat out_root "run" in
    Rt_obs.Artifact.write ~dir:dir_run
      ~manifest:
        (Rt_obs.Artifact.make_manifest ~engine:"cop" ~circuit:"s1" ~block_words:8
           ~argv:Sys.argv
           ~wall_s:(Rt_util.Stats.timer_elapsed t_run)
           ())
      ();
    Rt_obs.clear ();
    Rt_obs.set_enabled false;
    let id =
      match Reg.ingest ~registry ~obs_dir:dir_run () with
      | Ok id -> id
      | Error e ->
        Printf.eprintf "bench-smoke FAIL: registry ingest: %s\n" e;
        exit 1
    in
    Printf.printf "registry (%s):\n" registry;
    Printf.printf "  ingested:                   %s\n" id;
    (match Reg.promoted ~registry with
     | None -> (
       match Reg.promote ~registry id with
       | Ok () -> Printf.printf "  baseline:                   %s (bootstrap promote)\n" id
       | Error e ->
         Printf.eprintf "bench-smoke FAIL: baseline promote: %s\n" e;
         exit 1)
     | Some base when base = id -> ()
     | Some base ->
       let tmp = Filename.concat registry (Printf.sprintf "tmp-smoke.%d" (Unix.getpid ())) in
       let cleanup () =
         (try
            Array.iter
              (fun f -> try Sys.remove (Filename.concat tmp f) with Sys_error _ -> ())
              (Sys.readdir tmp)
          with Sys_error _ -> ());
         try Unix.rmdir tmp with Unix.Unix_error _ -> ()
       in
       (match Reg.materialize ~registry ~dir:tmp base with
        | Ok () -> ()
        | Error e ->
          cleanup ();
          Printf.eprintf "bench-smoke FAIL: baseline materialize: %s\n" e;
          exit 1);
       let thresholds = { Rt_obs.Diff.default with quantile_ratio = 3.0; span_ratio = 3.0 } in
       let base_diff = Rt_obs.Diff.compare_dirs ~thresholds tmp dir_run in
       cleanup ();
       Printf.printf "  baseline:                   %s\n" base;
       Rt_obs.Diff.pp_report Format.std_formatter base_diff;
       (* Gate on what is stable across runners: work counters (exact for a
          fixed workload, 1.5x default band) and the two aggregate smoke.*
          latency histograms at 3x.  Kernel-internal micro-latency
          histograms (p99 buckets of a few us) and span wall-clocks stay
          report-only — they swing more than any honest band under CI
          noise. *)
       let is_smoke name =
         String.length name >= 6 && String.sub name 0 6 = "smoke."
       in
       let gated =
         List.filter
           (fun f ->
             f.Rt_obs.Diff.kind = "counter"
             || (f.Rt_obs.Diff.kind = "histogram" && is_smoke f.Rt_obs.Diff.name))
           (Rt_obs.Diff.regressions base_diff)
       in
       if gated <> [] then begin
         Printf.eprintf
           "bench-smoke FAIL: %d regression(s) vs promoted baseline %s\n"
           (List.length gated) base;
         exit 1
       end);
    let series = Reg.series ~registry "smoke.sweep_us.p50" in
    let vals = Array.of_list (List.map (fun p -> p.Reg.p_value) series.Reg.s_points) in
    Printf.printf "  smoke.sweep_us.p50 trend:   %s  (%d run(s), p50 %.1f us)\n"
      (Reg.sparkline vals) (Array.length vals) series.Reg.s_p50;
    match Reg.step_changes vals with
    | [] -> ()
    | steps ->
      List.iter
        (fun s ->
          Printf.printf "  step change:                run %d/%d %s to %.1f us (median %.1f)\n"
            (s.Reg.st_index + 1) (Array.length vals)
            (if s.Reg.st_up then "up" else "down")
            s.Reg.st_value s.Reg.st_median)
        steps
  end;
  Printf.printf "bench-smoke OK\n"
