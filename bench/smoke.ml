(* CI smoke benchmark for the oracle protocol's fused cofactor path.

   Asserts two things on the s1 comparator with the COP engine:
   1. [Oracle.cofactor_pair] is bit-identical to the two independent
      subset queries it replaces;
   2. the fused (incremental damage-cone) path is not slower than 1.5x
      the two-query baseline (best-of-3 medians; in practice it wins
      outright, the 1.5x band only absorbs CI timer noise).

   Exits nonzero on any violation.  Run with: make bench-smoke *)

module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle
module Normalize = Rt_optprob.Normalize

let time_best_of ~rounds ~iters f =
  let best = ref Float.infinity in
  for _ = 1 to rounds do
    let t0 = Rt_util.Stats.timer_start () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Rt_util.Stats.timer_elapsed t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  let c = Rt_circuit.Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs c) in
  let x = Array.init n_inputs (fun i -> 0.3 +. (0.4 *. Float.of_int (i mod 2))) in
  let oracle = Detect.make Detect.Cop c faults in
  let norm = Normalize.run ~confidence:0.95 (Detect.probs oracle x) in
  let hard = Normalize.hard_indices norm in
  let plan = Oracle.plan oracle hard in
  let fused input = Oracle.cofactor_pair oracle plan ~input ~x in
  let baseline input =
    let x' = Array.copy x in
    x'.(input) <- 0.0;
    let pf0 = Detect.probs_subset oracle hard x' in
    x'.(input) <- 1.0;
    let pf1 = Detect.probs_subset oracle hard x' in
    (pf0, pf1)
  in
  (* Correctness first: every input's fused pair must equal the baseline
     bit for bit. *)
  let mismatches = ref 0 in
  for i = 0 to n_inputs - 1 do
    let f0, f1 = fused i in
    let b0, b1 = baseline i in
    if not (f0 = b0 && f1 = b1) then incr mismatches
  done;
  if !mismatches > 0 then begin
    Printf.eprintf "bench-smoke FAIL: %d/%d inputs with non-identical cofactors\n" !mismatches
      n_inputs;
    exit 1
  end;
  (* Timing: sweep all inputs per iteration, like one PREPARE pass. *)
  let sweep f () =
    for i = 0 to n_inputs - 1 do
      ignore (Sys.opaque_identity (f i))
    done
  in
  ignore (Sys.opaque_identity (sweep fused ()));
  ignore (Sys.opaque_identity (sweep baseline ()));
  let t_fused = time_best_of ~rounds:3 ~iters:20 (sweep fused) in
  let t_base = time_best_of ~rounds:3 ~iters:20 (sweep baseline) in
  let ratio = t_fused /. t_base in
  Printf.printf "bench-smoke (s1, cop, %d hard faults, %d inputs):\n" (Array.length hard) n_inputs;
  Printf.printf "  fused cofactor_pair sweep:  %8.3f ms\n" (t_fused *. 1000.0 /. 20.0);
  Printf.printf "  2x probs_subset sweep:      %8.3f ms\n" (t_base *. 1000.0 /. 20.0);
  Printf.printf "  ratio (fused / baseline):   %8.3f\n" ratio;
  if ratio > 1.5 then begin
    Printf.eprintf "bench-smoke FAIL: fused path slower than 1.5x baseline (ratio %.3f)\n" ratio;
    exit 1
  end;
  Printf.printf "bench-smoke OK\n"
