(* Benchmark harness: reproduces every table and figure of the paper
   (Tables 1-5, Fig. 1-2, the appendix weight listings, and the §3/§5.3
   extension experiments), then measures the library's computational
   kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 quick reproduction + kernels
     dune exec bench/main.exe -- --full       paper-scale reproduction
     dune exec bench/main.exe -- --only t3,f2 selected experiments
     dune exec bench/main.exe -- --no-perf    skip the Bechamel section
     dune exec bench/main.exe -- --json       also write BENCH_optprob.json
                                              (kernel ns/run + per-experiment
                                              wall-clock, machine readable)
     dune exec bench/main.exe -- --registry D also ingest this bench run into
                                              the run registry at D (bare
                                              --registry uses the default
                                              _obs/registry convention) *)

let parse_args () =
  let full = ref (Sys.getenv_opt "OPTPROB_BENCH_FULL" = Some "1") in
  let only = ref None in
  let perf = ref true in
  let json = ref false in
  let registry = ref None in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      go rest
    | "--no-perf" :: rest ->
      perf := false;
      go rest
    | "--json" :: rest ->
      json := true;
      go rest
    | "--only" :: ids :: rest ->
      only := Some (String.split_on_char ',' ids);
      go rest
    | "--registry" :: dir :: rest
      when not (String.length dir >= 2 && String.sub dir 0 2 = "--") ->
      registry := Some dir;
      go rest
    | "--registry" :: rest ->
      registry := Some (Rt_obs_registry.default_dir ());
      go rest
    | _ :: rest -> go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (!full, !only, !perf, !json, !registry)

(* Runs each experiment individually (so its wall-clock is attributable),
   prints its table, and returns [(id, title, seconds, counters)] in run
   order.  Rt_obs counters are cleared before and snapshotted after each
   experiment, so the JSON records how much work (oracle queries, Newton
   iterations, ppsfp batches, ...) each table cost — not just how long. *)
let run_experiments ~full ~only =
  let ids =
    match only with
    | None -> Rt_repro.Experiments.ids
    | Some ids -> ids
  in
  Rt_obs.set_enabled true;
  let rows =
    List.filter_map
      (fun id ->
        match Rt_repro.Experiments.by_id id with
        | None ->
          Format.eprintf "unknown experiment id: %s@." id;
          None
        | Some f ->
          Rt_obs.clear ();
          let t0 = Rt_util.Stats.timer_start () in
          let table = f ~full () in
          let seconds = Rt_util.Stats.timer_elapsed t0 in
          let counters =
            List.filter (fun (_, v) -> v <> 0) (Rt_obs.counters_snapshot ())
          in
          Rt_repro.Experiments.print_table Format.std_formatter table;
          Some (table.Rt_repro.Experiments.id, table.Rt_repro.Experiments.title, seconds, counters))
      ids
  in
  (* Kernels below measure the disabled path; don't leak telemetry state. *)
  Rt_obs.set_enabled false;
  Rt_obs.clear ();
  rows

(* --- Bechamel kernels ----------------------------------------------------- *)

open Bechamel
open Toolkit

(* s1's comparator cascade rebuilt with Builder folding and pruning off:
   the (0,1,0) constant cascade assignment of slice 0 and the logic it
   implies stay in the netlist — the redundancy the paper notes was
   removed from the real circuits.  [Passes.run] recovers the folded
   form; the PREPARE-sweep kernel pair below prices that recovery. *)
let s1_redundant () =
  let open Rt_circuit in
  let b = Builder.create ~fold:false ~prune:false () in
  let a_bits = Builder.inputs b "a" 24 in
  let b_bits = Builder.inputs b "b" 24 in
  let slice j (lt, eq, gt) =
    let sub arr = Array.sub arr (4 * j) 4 in
    Generators.comparator_slice_7485 b ~a:(sub a_bits) ~b:(sub b_bits) ~lt_in:lt ~eq_in:eq
      ~gt_in:gt
  in
  let rec cascade j acc =
    if j = 6 then acc
    else begin
      let lt, eq, gt = acc in
      cascade (j + 1) (slice j (lt, eq, gt) |> fun (l, e, g) -> (Some l, Some e, Some g))
    end
  in
  let lt, eq, gt = cascade 0 (None, None, None) in
  let get = function Some n -> n | None -> assert false in
  Builder.output b ~name:"a_lt_b" (get lt);
  Builder.output b ~name:"a_eq_b" (get eq);
  Builder.output b ~name:"a_gt_b" (get gt);
  Builder.finalize b

(* Gate-count delta the optimization stage achieves on the redundant s1,
   reported in the JSON next to the kernel timings. *)
type opt_measurement = {
  om_raw_nodes : int;
  om_raw_gates : int;
  om_opt_nodes : int;
  om_opt_gates : int;
}

let measure_opt () =
  let raw = s1_redundant () in
  let opt, _, _ = Rt_circuit.Passes.run raw in
  { om_raw_nodes = Rt_circuit.Netlist.size raw;
    om_raw_gates = Rt_circuit.Netlist.gate_count raw;
    om_opt_nodes = Rt_circuit.Netlist.size opt;
    om_opt_gates = Rt_circuit.Netlist.gate_count opt }

let kernel_tests () =
  (* All kernel inputs (circuits, fault lists, oracles, hard prefixes)
     come out of pipeline stages; the kernels themselves then hammer the
     oracle/simulator APIs directly. *)
  let pctx ?(engine = "cop") circuit =
    Rt_pipeline.create
      (Rt_pipeline.Config.exn (Rt_pipeline.Config.make ~engine ~circuit ()))
  in
  let s1 = pctx "s1" in
  let c = Rt_pipeline.circuit s1 in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs c) in
  let x = Array.make n_inputs 0.5 in
  let cop = Rt_pipeline.oracle s1 in
  let bdd = Rt_pipeline.oracle (pctx ~engine:"bdd:500000" "s1") in
  let sim = Rt_sim.Logic_sim.create c in
  let rng = Rt_util.Rng.create 1 in
  let source = Rt_sim.Pattern.equiprobable rng ~n_inputs in
  let lfsr = Rt_bist.Lfsr.create ~width:32 1L in
  let mult_ctx = pctx "c6288ish:8" in
  let mult = Rt_pipeline.circuit mult_ctx in
  let mult_faults = Rt_pipeline.fault_list mult_ctx in
  let mult_rng = Rt_util.Rng.create 2 in
  let mult_source =
    Rt_sim.Pattern.equiprobable mult_rng ~n_inputs:(Array.length (Rt_circuit.Netlist.inputs mult))
  in
  (* The PREPARE workload of one optimizer coordinate step: the two
     cofactor queries at x_0, restricted to the hard-fault prefix that the
     NORMALIZE bound search certifies (the paper's z; ~32 of s1's 534
     faults) — full-universe query + gather vs the subset-aware oracle. *)
  let cond_ctx = pctx ~engine:"cond:4" "s1" in
  let cond = Rt_pipeline.oracle cond_ctx in
  let hard = (Rt_pipeline.normalized cond_ctx).Rt_pipeline.value.Rt_pipeline.hard in
  let sweep_full () =
    let gather pf = Array.map (fun i -> pf.(i)) hard in
    x.(0) <- 0.0;
    let pf0 = gather (Rt_testability.Detect.probs cond x) in
    x.(0) <- 1.0;
    let pf1 = gather (Rt_testability.Detect.probs cond x) in
    x.(0) <- 0.5;
    ignore (Sys.opaque_identity (pf0, pf1))
  in
  let sweep_subset () =
    x.(0) <- 0.0;
    let pf0 = Rt_testability.Detect.probs_subset cond hard x in
    x.(0) <- 1.0;
    let pf1 = Rt_testability.Detect.probs_subset cond hard x in
    x.(0) <- 0.5;
    ignore (Sys.opaque_identity (pf0, pf1))
  in
  (* Same workload with Rt_obs recording on: the gap between this and the
     plain subset-query kernel bounds the telemetry overhead; the gap
     between the plain kernel and the pre-instrumentation baseline bounds
     the disabled-path cost (budget: <2%). *)
  let sweep_subset_telemetry () =
    Rt_obs.set_enabled true;
    sweep_subset ();
    Rt_obs.set_enabled false;
    Rt_obs.clear ()
  in
  (* One full PREPARE pass through the oracle protocol: a fused
     [cofactor_pair] per input (incremental damage-cone re-evaluation from
     a cached base point) vs the two independent subset sweeps per input
     it replaces.  Sweeping every input is the honest unit — a single
     input's damage cone can approach the whole masked region (s1's LSB
     feeds all six slices), but the optimizer always visits all of them,
     and the win comes from the average cone being small. *)
  let cop_plan = Rt_testability.Oracle.plan cop hard in
  let cond_plan = Rt_testability.Oracle.plan cond hard in
  let cofactor_sweep oracle plan xv () =
    for i = 0 to Array.length xv - 1 do
      ignore (Sys.opaque_identity (Rt_testability.Oracle.cofactor_pair oracle plan ~input:i ~x:xv))
    done
  in
  let two_subset_sweep oracle subset xv () =
    for i = 0 to Array.length xv - 1 do
      let x' = Array.copy xv in
      x'.(i) <- 0.0;
      let pf0 = Rt_testability.Detect.probs_subset oracle subset x' in
      x'.(i) <- 1.0;
      let pf1 = Rt_testability.Detect.probs_subset oracle subset x' in
      ignore (Sys.opaque_identity (pf0, pf1))
    done
  in
  let cofactor_pair_cond = cofactor_sweep cond cond_plan x in
  let cofactor_pair_cop = cofactor_sweep cop cop_plan x in
  let two_subsets_cop = two_subset_sweep cop hard x in
  let big_ctx = pctx "c2670ish" in
  let big = Rt_pipeline.circuit big_ctx in
  let big_x = Array.make (Array.length (Rt_circuit.Netlist.inputs big)) 0.5 in
  let big_cop = Rt_pipeline.oracle big_ctx in
  let big_hard = (Rt_pipeline.normalized big_ctx).Rt_pipeline.value.Rt_pipeline.hard in
  let big_plan = Rt_testability.Oracle.plan big_cop big_hard in
  let cofactor_pair_big = cofactor_sweep big_cop big_plan big_x in
  let two_subsets_big = two_subset_sweep big_cop big_hard big_x in
  (* Optimized-vs-raw PREPARE sweep: the same redundant s1 netlist
     analysed with the optimization stage off and on.  Each side uses its
     own hard prefix — the point is the end-to-end cost of one optimizer
     coordinate sweep on what the pipeline actually hands the engine. *)
  let redundant = s1_redundant () in
  let rctx opt_passes name =
    Rt_pipeline.create
      (Rt_pipeline.Config.exn
         (Rt_pipeline.Config.of_netlist ~engine:"cop" ~opt_passes ~name redundant))
  in
  let raw_ctx = rctx [] "s1-redundant-raw" in
  let opt_ctx = rctx Rt_circuit.Passes.default_names "s1-redundant-opt" in
  let prep_sweep ctx =
    let oracle = Rt_pipeline.oracle ctx in
    let hard = (Rt_pipeline.normalized ctx).Rt_pipeline.value.Rt_pipeline.hard in
    let xv =
      Array.make (Array.length (Rt_circuit.Netlist.inputs (Rt_pipeline.circuit ctx))) 0.5
    in
    two_subset_sweep oracle hard xv
  in
  let prep_raw = prep_sweep raw_ctx in
  let prep_opt = prep_sweep opt_ctx in
  (* n-detection objective cost: one full PREPARE+MINIMIZE coordinate
     sweep — two subset queries plus a Newton solve per input — under the
     paper's single-detect objective vs the 2-detect Poisson tail.  Same
     circuit, engine and hard prefix on both sides, so the gap is the
     per-term objective evaluation inside MINIMIZE alone. *)
  let s1_norm = (Rt_pipeline.normalized s1).Rt_pipeline.value in
  let objective_sweep objective () =
    for i = 0 to n_inputs - 1 do
      let x' = Array.copy x in
      x'.(i) <- 0.0;
      let p0 = Rt_testability.Detect.probs_subset cop s1_norm.Rt_pipeline.hard x' in
      x'.(i) <- 1.0;
      let p1 = Rt_testability.Detect.probs_subset cop s1_norm.Rt_pipeline.hard x' in
      ignore
        (Sys.opaque_identity
           (Rt_optprob.Minimize.newton ~objective ~n:s1_norm.Rt_pipeline.n_required ~p0 ~p1 0.5))
    done
  in
  let prep_single = objective_sweep Rt_optprob.Objective.single in
  let prep_ndetect = objective_sweep (Rt_optprob.Objective.n_detect ~k:2) in
  [ Test.make ~name:"cop analysis (s1, 534 faults)"
      (Staged.stage (fun () -> ignore (Rt_testability.Detect.probs cop x)));
    Test.make ~name:"exact bdd analysis (s1, 534 faults)"
      (Staged.stage (fun () -> ignore (Rt_testability.Detect.probs bdd x)));
    Test.make ~name:"optimize sweep (conditioned, s1) full-query"
      (Staged.stage sweep_full);
    Test.make ~name:"optimize sweep (conditioned, s1) subset-query"
      (Staged.stage sweep_subset);
    Test.make ~name:"optimize sweep (conditioned, s1) subset-query telemetry=on"
      (Staged.stage sweep_subset_telemetry);
    Test.make ~name:"cofactor sweep (cop, s1) fused" (Staged.stage cofactor_pair_cop);
    Test.make ~name:"cofactor sweep (cop, s1) 2x subset-query" (Staged.stage two_subsets_cop);
    Test.make ~name:"cofactor sweep (conditioned, s1) fused" (Staged.stage cofactor_pair_cond);
    Test.make ~name:"cofactor sweep (cop, c2670ish) fused" (Staged.stage cofactor_pair_big);
    Test.make ~name:"cofactor sweep (cop, c2670ish) 2x subset-query"
      (Staged.stage two_subsets_big);
    Test.make ~name:"prepare sweep (cop, s1-redundant) raw" (Staged.stage prep_raw);
    Test.make ~name:"prepare sweep (cop, s1-redundant) optimized" (Staged.stage prep_opt);
    Test.make ~name:"prepare+minimize sweep (cop, s1) objective=single"
      (Staged.stage prep_single);
    Test.make ~name:"prepare+minimize sweep (cop, s1) objective=ndetect:2"
      (Staged.stage prep_ndetect);
    Test.make ~name:"logic sim 64 patterns (s1)"
      (Staged.stage (fun () -> Rt_sim.Logic_sim.run sim (source ())));
    Test.make ~name:"ppsfp 256 patterns (8x8 multiplier) jobs=1"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~jobs:1 ~drop:true mult mult_faults ~source:mult_source
                ~n_patterns:256)));
    Test.make ~name:"ppsfp 256 patterns (8x8 multiplier) jobs=4"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~jobs:4 ~drop:true mult mult_faults ~source:mult_source
                ~n_patterns:256)));
    (* Width sweep: the same 1024-pattern no-drop workload at one, four
       and eight words per block.  No-drop keeps every fault live, so the
       ratio isolates the wide datapath (good-machine amortisation +
       per-fault traversal over W words) from drop-rate luck. *)
    Test.make ~name:"ppsfp width sweep (8x8 multiplier) W=1 jobs=1"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~jobs:1 ~block_words:1 ~drop:false mult mult_faults
                ~source:mult_source ~n_patterns:1024)));
    Test.make ~name:"ppsfp width sweep (8x8 multiplier) W=4 jobs=1"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~jobs:1 ~block_words:4 ~drop:false mult mult_faults
                ~source:mult_source ~n_patterns:1024)));
    Test.make ~name:"ppsfp width sweep (8x8 multiplier) W=8 jobs=1"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~jobs:1 ~block_words:8 ~drop:false mult mult_faults
                ~source:mult_source ~n_patterns:1024)));
    (* Dispatch cost of one 64-task parallel region: persistent pool vs
       spawn-per-region.  The body is trivial on purpose — the gap is the
       Domain.spawn/join price the pool removes from every ppsfp batch. *)
    Test.make ~name:"parallel dispatch 64 tasks pool jobs=4"
      (Staged.stage (fun () ->
           Rt_util.Pool.run (Rt_util.Pool.default ()) ~grain:1 ~participants:4 ~n:64
             (fun _ lo hi -> ignore (Sys.opaque_identity (hi - lo)))));
    Test.make ~name:"parallel dispatch 64 tasks spawn jobs=4"
      (Staged.stage (fun () ->
           Rt_util.Parallel.run_chunks ~jobs:4 ~n:64 (fun ~chunk:_ ~lo ~hi ->
               ignore (Sys.opaque_identity (hi - lo)))));
    Test.make ~name:"lfsr 64-bit word"
      (Staged.stage (fun () -> ignore (Rt_bist.Lfsr.step_word lfsr 64))) ]

(* Runs the Bechamel section, prints it, and returns [(name, ns/run)]
   sorted by name. *)
let run_perf () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (kernel_tests ()) in
  let raw_results = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Format.printf "@.== PERF: kernel timings (Bechamel, ns/run) ==@.";
  let collected = ref [] in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) tbl [] in
      List.iter
        (fun (test_name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.printf "%-55s %12.0f ns/run@." test_name est;
            collected := (test_name, est) :: !collected
          | Some _ | None -> Format.printf "%-55s (no estimate)@." test_name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !collected

(* --- pool telemetry measurement --------------------------------------------

   One sampled jobs=4 ppsfp run through the persistent pool, with the
   hardware clamp lifted so the measurement exercises real worker domains
   even on a single-core host.  Records per-lane scheduler counters and
   the utilization profile the timeline sampler saw — the jobs axis of
   the JSON is ready for multi-core hosts where the clamp never binds. *)

type pool_measurement = {
  pm_jobs : int;
  pm_period_ms : int;
  pm_samples : int;
  pm_util_peak : float;
  pm_util_mean : float;
  pm_lanes : (int * int * int * int * int) list;
      (* lane, tasks, steals, stolen_from, parked_us *)
}

let measure_pool () =
  let jobs = 4 and period_ms = 5 in
  let saved = Sys.getenv_opt "OPTPROB_JOBS_OVERCOMMIT" in
  Unix.putenv "OPTPROB_JOBS_OVERCOMMIT" "1";
  Fun.protect ~finally:(fun () ->
      Unix.putenv "OPTPROB_JOBS_OVERCOMMIT" (Option.value ~default:"" saved))
  @@ fun () ->
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let ctx =
    Rt_pipeline.create
      (Rt_pipeline.Config.exn (Rt_pipeline.Config.make ~engine:"cop" ~circuit:"c6288ish:8" ()))
  in
  let mult = Rt_pipeline.circuit ctx in
  let mfaults = Rt_pipeline.fault_list ctx in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs mult) in
  let sampler = Rt_obs.Timeline.start ~period_ms () in
  for seed = 1 to 3 do
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.equiprobable rng ~n_inputs in
    ignore
      (Rt_sim.Fault_sim.simulate ~jobs ~drop:false mult mfaults ~source ~n_patterns:1024)
  done;
  let samples, _dropped = Rt_obs.Timeline.stop sampler in
  let snap = Rt_obs.counters_snapshot () in
  let v name = Option.value ~default:0 (List.assoc_opt name snap) in
  let lanes =
    List.init jobs (fun k ->
        let f field = v (Printf.sprintf "pool.d%d.%s" k field) in
        (k, f "tasks", f "steals", f "stolen_from", f "parked_us"))
  in
  let utils =
    List.filter_map
      (fun s -> List.assoc_opt "pool.utilization" s.Rt_obs.Timeline.s_gauges)
      samples
  in
  let peak = List.fold_left Float.max 0.0 utils in
  let mean =
    match utils with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 utils /. Float.of_int (List.length utils)
  in
  Rt_obs.set_enabled false;
  Rt_obs.clear ();
  { pm_jobs = jobs;
    pm_period_ms = period_ms;
    pm_samples = List.length samples;
    pm_util_peak = peak;
    pm_util_mean = mean;
    pm_lanes = lanes }

(* --- JSON output ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~path ~mode ~experiments ~kernels ~pool ~opt ~total_seconds =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"optprob-bench/3\",\n";
  p "  \"mode\": \"%s\",\n" (json_escape mode);
  p "  \"jobs_env\": %d,\n" (Rt_util.Parallel.default_jobs ());
  p "  \"block_words_env\": %d,\n" (Rt_sim.Pattern.default_block_words ());
  p "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"total_seconds\": %.3f,\n" total_seconds;
  p "  \"pool\": {\n";
  p "    \"jobs\": %d,\n" pool.pm_jobs;
  p "    \"sample_period_ms\": %d,\n" pool.pm_period_ms;
  p "    \"timeline_samples\": %d,\n" pool.pm_samples;
  p "    \"utilization\": {\"peak\": %.4f, \"mean\": %.4f},\n" pool.pm_util_peak
    pool.pm_util_mean;
  p "    \"domains\": [\n";
  List.iteri
    (fun i (lane, tasks, steals, stolen_from, parked_us) ->
      p "      {\"lane\": %d, \"tasks\": %d, \"steals\": %d, \"stolen_from\": %d, \
         \"parked_us\": %d}%s\n"
        lane tasks steals stolen_from parked_us
        (if i = List.length pool.pm_lanes - 1 then "" else ","))
    pool.pm_lanes;
  p "    ]\n";
  p "  },\n";
  p "  \"opt\": {\n";
  p "    \"circuit\": \"s1-redundant\",\n";
  p "    \"passes\": \"%s\"," (json_escape (String.concat "," Rt_circuit.Passes.default_names));
  p "\n    \"raw\": {\"nodes\": %d, \"gates\": %d},\n" opt.om_raw_nodes opt.om_raw_gates;
  p "    \"optimized\": {\"nodes\": %d, \"gates\": %d},\n" opt.om_opt_nodes opt.om_opt_gates;
  p "    \"nodes_removed\": %d\n" (opt.om_raw_nodes - opt.om_opt_nodes);
  p "  },\n";
  p "  \"experiments\": [\n";
  List.iteri
    (fun i (id, title, seconds, counters) ->
      p "    {\"id\": \"%s\", \"title\": \"%s\", \"seconds\": %.3f, \"counters\": {"
        (json_escape id) (json_escape title) seconds;
      List.iteri
        (fun j (name, v) ->
          p "%s\"%s\": %d" (if j = 0 then "" else ", ") (json_escape name) v)
        counters;
      p "}}%s\n" (if i = List.length experiments - 1 then "" else ","))
    experiments;
  p "  ],\n";
  p "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n" (json_escape name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ]\n";
  p "}\n";
  close_out oc

(* Record the finished bench run — per-experiment wall-clock as a latency
   histogram, the work counters each experiment burned, kernel ns/run as
   gauges — as a transient artifact and ingest it into the run registry,
   so `optprob obs trend bench.experiment_us.p50` works across bench
   invocations without any separate tooling. *)
let ingest_run ~registry ~experiments ~kernels ~total_seconds =
  let sanitize name =
    String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                          || (c >= '0' && c <= '9') || c = '.' then c else '_')
      name
  in
  Rt_obs.set_enabled true;
  Rt_obs.clear ();
  let h = Rt_obs.histogram "bench.experiment_us" in
  List.iter
    (fun (id, _title, seconds, counters) ->
      Rt_obs.observe h (seconds *. 1e6);
      Rt_obs.gauge_set (Rt_obs.gauge (Printf.sprintf "bench.%s.s" (sanitize id))) seconds;
      List.iter (fun (name, v) -> Rt_obs.add (Rt_obs.counter name) v) counters)
    experiments;
  List.iter
    (fun (name, ns) ->
      Rt_obs.gauge_set (Rt_obs.gauge ("bench.kernel." ^ sanitize name ^ ".ns")) ns)
    kernels;
  let dir = Filename.concat registry (Printf.sprintf "tmp-bench.%d" (Unix.getpid ())) in
  Rt_obs.Artifact.write ~dir
    ~manifest:(Rt_obs.Artifact.make_manifest ~argv:Sys.argv ~wall_s:total_seconds ())
    ();
  Rt_obs.clear ();
  Rt_obs.set_enabled false;
  let r = Rt_obs_registry.ingest ~registry ~obs_dir:dir () in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  match r with
  | Ok id -> Format.printf "@.registry: ingested %s into %s@." id registry
  | Error e -> Format.eprintf "@.registry: ingest failed: %s@." e

let () =
  let full, only, perf, json, registry = parse_args () in
  Format.printf "optprob reproduction harness (%s mode)@."
    (if full then "full paper-scale" else "quick");
  let t0 = Rt_util.Stats.timer_start () in
  let experiments = run_experiments ~full ~only in
  Format.printf "@.experiments completed in %.1fs@." (Rt_util.Stats.timer_elapsed t0);
  let kernels = if perf then run_perf () else [] in
  if json then begin
    let path = "BENCH_optprob.json" in
    let pool = measure_pool () in
    let opt = measure_opt () in
    Format.printf "@.pool (sampled jobs=%d ppsfp): utilization peak %.2f mean %.2f over %d samples@."
      pool.pm_jobs pool.pm_util_peak pool.pm_util_mean pool.pm_samples;
    Format.printf "opt (s1-redundant): %d -> %d nodes (%d removed)@."
      opt.om_raw_nodes opt.om_opt_nodes (opt.om_raw_nodes - opt.om_opt_nodes);
    write_json ~path
      ~mode:(if full then "full" else "quick")
      ~experiments ~kernels ~pool ~opt
      ~total_seconds:(Rt_util.Stats.timer_elapsed t0);
    Format.printf "@.wrote %s@." path
  end;
  match registry with
  | None -> ()
  | Some reg ->
    ingest_run ~registry:reg ~experiments ~kernels
      ~total_seconds:(Rt_util.Stats.timer_elapsed t0)
