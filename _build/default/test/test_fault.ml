(* Tests for Rt_fault: the stuck-at universe and equivalence collapsing.
   The central property: every fault in a collapse class has exactly the
   same set of detecting patterns (checked exhaustively on small
   circuits). *)

module Fault = Rt_fault.Fault
module Collapse = Rt_fault.Collapse
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators
module Builder = Rt_circuit.Builder

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

let test_universe_counts () =
  (* Single AND gate, fanout-free: 2 faults per node (2 inputs + gate +
     output alias), no branch faults. *)
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  Builder.output b ~name:"z" (Builder.and2 b x y);
  let c = Builder.finalize b in
  let u = Fault.universe c in
  check Alcotest.int "stem faults only" (2 * Netlist.size c) (Array.length u)

let test_universe_has_branch_faults () =
  (* x fans out to two gates: branch faults must appear. *)
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  Builder.output b ~name:"a" (Builder.and2 b x y);
  Builder.output b ~name:"o" (Builder.or2 b x y);
  let c = Builder.finalize b in
  let u = Fault.universe c in
  let branches =
    Array.to_list u |> List.filter (fun f -> match f.Fault.site with Fault.Branch _ -> true | Fault.Stem _ -> false)
  in
  (* x and y each feed 2 gates -> 4 branch sites x 2 polarities. *)
  check Alcotest.int "branch fault count" 8 (List.length branches)

let test_input_faults () =
  let c = Generators.s1_comparator () in
  let inf = Fault.input_faults c in
  check Alcotest.int "two per input" (2 * 48) (Array.length inf);
  (* All input stuck-at faults must be inside the universe (the paper's
     requirement on the fault model F). *)
  let u = Fault.universe c in
  Array.iter
    (fun f ->
      if not (Array.exists (fun g -> Fault.equal f g) u) then
        Alcotest.fail "input fault missing from universe")
    inf

let test_collapse_shrinks () =
  List.iter
    (fun (name, gen) ->
      let c = gen () in
      let u = Fault.universe c in
      let r = Collapse.representatives c u in
      if Array.length r >= Array.length u then Alcotest.failf "%s: no shrink" name;
      if Float.of_int (Array.length r) /. Float.of_int (Array.length u) < 0.2 then
        Alcotest.failf "%s: collapse suspiciously aggressive" name)
    [ ("s1", Generators.s1_comparator); ("c432ish", Generators.c432ish) ]

let detection_set c f =
  let n = Array.length (Netlist.inputs c) in
  let set = ref [] in
  for v = 0 to (1 lsl n) - 1 do
    if Rt_sim.Fault_sim.detects c f (bits_of_int n v) then set := v :: !set
  done;
  !set

let collapse_equivalence_qcheck =
  QCheck.Test.make ~name:"collapse classes are true equivalences" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:6 ~gates:20 ~seed in
      let classes = Collapse.classes c (Fault.universe c) in
      Array.for_all
        (fun cls ->
          match Array.to_list cls with
          | [] -> false
          | first :: rest ->
            let ref_set = detection_set c first in
            List.for_all (fun f -> detection_set c f = ref_set) rest)
        classes)

let collapse_covers_universe_qcheck =
  QCheck.Test.make ~name:"collapse classes partition the universe" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:6 ~gates:20 ~seed in
      let u = Fault.universe c in
      let classes = Collapse.classes c u in
      let total = Array.fold_left (fun acc cls -> acc + Array.length cls) 0 classes in
      total = Array.length u)

let test_source_and_pp () =
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let g = Builder.and2 b x y in
  Builder.output b g;
  Builder.output b (Builder.or2 b x g);
  let c = Builder.finalize b in
  let f = { Fault.site = Fault.Stem x; stuck = true } in
  check Alcotest.int "stem source" x (Fault.source f c);
  check Alcotest.string "pp stem" "x s-a-1" (Fault.to_string c f)

let test_ratio () =
  let r = Collapse.ratio (Generators.c432ish ()) in
  check Alcotest.bool "ratio in (0,1)" true (r > 0.0 && r < 1.0)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_fault"
    [ ( "universe",
        [ Alcotest.test_case "counts" `Quick test_universe_counts;
          Alcotest.test_case "branch faults" `Quick test_universe_has_branch_faults;
          Alcotest.test_case "input faults" `Quick test_input_faults;
          Alcotest.test_case "source / pp" `Quick test_source_and_pp ] );
      ( "collapse",
        [ Alcotest.test_case "shrinks" `Quick test_collapse_shrinks;
          Alcotest.test_case "ratio" `Quick test_ratio;
          q collapse_equivalence_qcheck;
          q collapse_covers_universe_qcheck ] ) ]
