(* Tests for Rt_scan: the sequential netlist model, cycle simulation, the
   scan-chain/combinational-core equivalence, and the sequential
   generators' functional correctness. *)

module Seq = Rt_scan.Seq_netlist
module Scan = Rt_scan.Scan_chain
module Gen = Rt_scan.Seq_generators
module Netlist = Rt_circuit.Netlist

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)
let int_of_bits bs =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bs;
  !v

let test_builder_requires_connected_flops () =
  let sb = Seq.builder () in
  let _x = Seq.input sb "x" in
  let _q = Seq.flop sb "q" in
  match Seq.finalize sb with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unconnected flop must be rejected"

let test_toggle_flop () =
  (* q' = not q: a divide-by-two toggle. *)
  let sb = Seq.builder () in
  let q = Seq.flop sb "q" in
  let nq = Seq.gate sb Rt_circuit.Gate.Not [ q ] in
  Seq.connect sb q ~d:nq;
  Seq.output sb ~name:"out" q;
  let s = Seq.finalize sb in
  check Alcotest.int "no real inputs" 0 (Seq.n_inputs s);
  check Alcotest.int "one flop" 1 (Seq.n_flops s);
  let st = Seq.initial_state s in
  let o1, st = Seq.step s st [||] in
  let o2, st = Seq.step s st [||] in
  let o3, _ = Seq.step s st [||] in
  check Alcotest.(array bool) "cycle 1" [| false |] o1;
  check Alcotest.(array bool) "cycle 2" [| true |] o2;
  check Alcotest.(array bool) "cycle 3" [| false |] o3

let test_core_input_order () =
  (* Core inputs must be real PIs then flop Qs, regardless of declaration
     interleaving. *)
  let sb = Seq.builder () in
  let q0 = Seq.flop sb "q0" in
  let x = Seq.input sb "x" in
  let q1 = Seq.flop sb "q1" in
  let y = Seq.input sb "y" in
  Seq.connect sb q0 ~d:(Seq.gate sb Rt_circuit.Gate.And [ x; y ]);
  Seq.connect sb q1 ~d:(Seq.gate sb Rt_circuit.Gate.Or [ q0; x ]);
  Seq.output sb ~name:"o" (Seq.gate sb Rt_circuit.Gate.Xor [ q0; q1 ]);
  let s = Seq.finalize sb in
  let core = Seq.core s in
  let names = Array.map (Netlist.name core) (Netlist.inputs core) in
  check Alcotest.(array string) "pi first, flops after" [| "x"; "y"; "q0"; "q1" |] names;
  (* Output order: real outputs then flop Ds. *)
  let onames = Array.map (Netlist.name core) (Netlist.outputs core) in
  check Alcotest.(array string) "outputs then Ds" [| "o"; "q0_D"; "q1_D" |] onames

let test_mac_accumulates () =
  let width = 4 in
  let m = Gen.mac ~width () in
  let st = ref (Seq.initial_state m) in
  let expect = ref 0 in
  let rng = Rt_util.Rng.create 11 in
  for _ = 1 to 50 do
    let a = Rt_util.Rng.int rng (1 lsl width) in
    let b = Rt_util.Rng.int rng (1 lsl width) in
    let outs, st' = Seq.step m !st (Array.append (bits_of_int width a) (bits_of_int width b)) in
    (* outputs show the PREVIOUS accumulator value *)
    let shown = int_of_bits (Array.sub outs 0 (2 * width)) in
    check Alcotest.int "acc visible" (!expect land ((1 lsl (2 * width)) - 1)) shown;
    expect := !expect + (a * b);
    st := st'
  done

let test_decade_counter () =
  let c = Gen.decade_counter () in
  let st = ref (Seq.initial_state c) in
  (* count with enable=1, clear=0 for 25 cycles: value cycles mod 10. *)
  for cycle = 0 to 24 do
    let outs, st' = Seq.step c !st [| true; false |] in
    let v = int_of_bits (Array.sub outs 0 4) in
    check Alcotest.int (Printf.sprintf "cycle %d" cycle) (cycle mod 10) v;
    let carry = outs.(4) in
    check Alcotest.bool "carry at 9" (cycle mod 10 = 9) carry;
    st := st'
  done;
  (* clear dominates *)
  let outs, st' = Seq.step c !st [| true; true |] in
  ignore outs;
  let outs2, _ = Seq.step c st' [| false; false |] in
  check Alcotest.int "cleared" 0 (int_of_bits (Array.sub outs2 0 4))

let test_scan_session_beats_unweighted () =
  (* The paper's deployment story end-to-end: sequential MAC, full scan,
     weights optimized over the core input vector (scan bits included),
     test-per-scan BIST. *)
  let m = Gen.mac ~width:4 () in
  let chain = Scan.insert m in
  let core = Seq.core m in
  let faults = Rt_fault.Collapse.collapsed_universe core in
  let oracle =
    Rt_testability.Detect.make
      (Rt_testability.Detect.Bdd_exact { node_limit = 400_000 })
      core faults
  in
  let options =
    { Rt_optprob.Optimize.default_options with
      Rt_optprob.Optimize.quantize = Rt_optprob.Optimize.Dyadic 4;
      max_sweeps = 6 }
  in
  let report = Rt_optprob.Optimize.run ~options oracle in
  let n_core_inputs = Array.length (Netlist.inputs core) in
  let session weights =
    let cfg = { (Scan.default_config chain ~weights) with Scan.n_tests = 1024 } in
    (Scan.run chain faults cfg).Scan.coverage
  in
  let unweighted = session (Array.make n_core_inputs 0.5) in
  let weighted = session report.Rt_optprob.Optimize.weights in
  check Alcotest.bool "weighted scan BIST at least as good" true (weighted >= unweighted -. 0.01);
  check Alcotest.bool "weighted scan BIST strong" true (weighted > 0.95)

let test_scan_chain_order () =
  let m = Gen.mac ~width:3 () in
  let chain = Scan.insert m in
  check Alcotest.int "chain covers all flops" (Seq.n_flops m) (Scan.chain_length chain);
  (* core_weights routes scan weights through the chain order. *)
  let rev = Array.init (Seq.n_flops m) (fun i -> Seq.n_flops m - 1 - i) in
  let chain_rev = Scan.insert ~order:rev m in
  let scan_w = Array.init (Seq.n_flops m) (fun i -> Float.of_int i /. 100.0) in
  let pi_w = Array.make (Seq.n_inputs m) 0.5 in
  let w = Scan.core_weights chain_rev ~pi:pi_w ~scan:scan_w in
  (* chain position 0 loads flop (n-1): its weight is scan_w.(0). *)
  check (Alcotest.float 1e-9) "routed" scan_w.(0)
    w.(Seq.n_inputs m + Seq.n_flops m - 1)

let test_scan_mode_equivalence () =
  (* The physical scan view must agree with the abstract model: shift a
     state in serially, capture one functional clock, shift the result
     out — and compare against Seq_netlist.step on the original. *)
  let m = Gen.mac ~width:3 () in
  let chain = Scan.insert m in
  let sm = Scan.scan_mode chain in
  let n_pi = Seq.n_inputs m in
  let n_flops = Seq.n_flops m in
  check Alcotest.int "scan view adds two inputs" (n_pi + 2) (Seq.n_inputs sm);
  check Alcotest.int "scan view adds one output" (Seq.n_outputs m + 1) (Seq.n_outputs sm);
  let rng = Rt_util.Rng.create 21 in
  for _ = 1 to 20 do
    let target = Array.init n_flops (fun _ -> Rt_util.Rng.bool rng) in
    let pis = Array.init n_pi (fun _ -> Rt_util.Rng.bool rng) in
    let expect_out, expect_next = Seq.step m target pis in
    (* Shift the target state in: the bit for the last chain position goes
       first.  Chain order here is the default identity permutation. *)
    let st = ref (Seq.initial_state sm) in
    for t = 0 to n_flops - 1 do
      let bit = target.(n_flops - 1 - t) in
      let inputs = Array.concat [ pis; [| true; bit |] ] in
      let _, st' = Seq.step sm !st inputs in
      st := st'
    done;
    check Alcotest.(array bool) "state loaded" target !st;
    (* One functional capture. *)
    let out, st' = Seq.step sm !st (Array.concat [ pis; [| false; false |] ]) in
    check Alcotest.(array bool) "captured state" expect_next st';
    check Alcotest.(array bool) "primary outputs"
      expect_out
      (Array.sub out 0 (Seq.n_outputs m));
    (* Shift out and observe the captured state on scan_out (last output). *)
    st := st';
    for t = 0 to n_flops - 1 do
      let out, st2 = Seq.step sm !st (Array.concat [ pis; [| true; false |] ]) in
      let scan_out = out.(Seq.n_outputs m) in
      check Alcotest.bool (Printf.sprintf "scan_out bit %d" t)
        expect_next.(n_flops - 1 - t) scan_out;
      st := st2
    done
  done

let test_golden_deterministic () =
  let m = Gen.decade_counter () in
  let chain = Scan.insert m in
  let n = Array.length (Netlist.inputs (Seq.core m)) in
  let cfg = { (Scan.default_config chain ~weights:(Array.make n 0.5)) with Scan.n_tests = 128 } in
  check Alcotest.int64 "reproducible" (Scan.golden_signature chain cfg)
    (Scan.golden_signature chain cfg)

let () =
  Alcotest.run "rt_scan"
    [ ( "seq-netlist",
        [ Alcotest.test_case "unconnected flop rejected" `Quick
            test_builder_requires_connected_flops;
          Alcotest.test_case "toggle flop" `Quick test_toggle_flop;
          Alcotest.test_case "core input order" `Quick test_core_input_order ] );
      ( "generators",
        [ Alcotest.test_case "mac accumulates" `Quick test_mac_accumulates;
          Alcotest.test_case "decade counter" `Quick test_decade_counter ] );
      ( "scan-chain",
        [ Alcotest.test_case "chain order" `Quick test_scan_chain_order;
          Alcotest.test_case "scan-mode netlist equivalence" `Quick test_scan_mode_equivalence;
          Alcotest.test_case "golden deterministic" `Quick test_golden_deterministic;
          Alcotest.test_case "weighted session" `Slow test_scan_session_beats_unweighted ] ) ]
