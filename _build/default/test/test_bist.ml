(* Tests for Rt_bist: LFSR maximal periods, weighting network statistics
   and quantisation, MISR linearity (the property the self-test engine
   relies on), and full self-test sessions cross-checked against fault
   simulation. *)

module Lfsr = Rt_bist.Lfsr
module Weighting = Rt_bist.Weighting
module Misr = Rt_bist.Misr
module Selftest = Rt_bist.Selftest
module Generators = Rt_circuit.Generators

let check = Alcotest.check

let test_lfsr_maximal_periods () =
  List.iter
    (fun w ->
      let l = Lfsr.create ~width:w 1L in
      match Lfsr.period l with
      | Some p -> check Alcotest.int (Printf.sprintf "width %d" w) ((1 lsl w) - 1) p
      | None -> Alcotest.failf "width %d: period beyond limit" w)
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18 ]

let test_lfsr_zero_seed_fixed () =
  let l = Lfsr.create ~width:8 0L in
  check Alcotest.bool "nonzero state" true (not (Int64.equal (Lfsr.state l) 0L))

let test_lfsr_step_word () =
  let a = Lfsr.create ~width:16 0xBEEFL in
  let b = Lfsr.create ~width:16 0xBEEFL in
  let w = Lfsr.step_word a 64 in
  let bits = List.init 64 (fun _ -> Lfsr.step b) in
  List.iteri
    (fun i bit ->
      let got = Int64.logand (Int64.shift_right_logical w i) 1L <> 0L in
      if got <> bit then Alcotest.failf "bit %d differs" i)
    bits

let test_lfsr_balanced () =
  (* Over a full period the output bit is 1 exactly 2^(w-1) times. *)
  let l = Lfsr.create ~width:10 1L in
  let ones = ref 0 in
  for _ = 1 to 1023 do
    if Lfsr.step l then incr ones
  done;
  check Alcotest.int "ones in full period" 512 !ones

let test_lfsr_bad_args () =
  Alcotest.check_raises "width 1" (Invalid_argument "Lfsr.create: width must be in 2..64")
    (fun () -> ignore (Lfsr.create ~width:1 1L));
  Alcotest.check_raises "bad tap" (Invalid_argument "Lfsr.create: bad tap") (fun () ->
      ignore (Lfsr.create ~taps:[ 99 ] ~width:8 1L))

(* --- Weighting ------------------------------------------------------------------ *)

let test_weighting_design () =
  let net = Weighting.design ~bits:4 [| 0.5; 0.23; 0.95; 0.02 |] in
  check Alcotest.(array (float 1e-9)) "realised on 1/16 grid"
    [| 0.5; 0.25; 0.9375; 0.0625 |]
    net.Weighting.realised;
  check Alcotest.bool "quantisation error bounded" true
    (Weighting.quantisation_error net <= 0.0625);
  (* 0.5 needs one bit; 0.25 two; 15/16 four. *)
  check Alcotest.(array int) "levels" [| 1; 2; 4; 4 |] net.Weighting.levels

let test_weighting_statistics () =
  let lfsr = Lfsr.create ~width:24 7L in
  let net = Weighting.design ~bits:4 [| 0.0625; 0.25; 0.5; 0.875 |] in
  let n = 30_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let p = Weighting.generate_pattern net lfsr in
    Array.iteri (fun i b -> if b then counts.(i) <- counts.(i) + 1) p
  done;
  Array.iteri
    (fun i c ->
      let measured = Float.of_int c /. Float.of_int n in
      let wanted = net.Weighting.realised.(i) in
      if Float.abs (measured -. wanted) > 0.01 then
        Alcotest.failf "weight %d: measured %.4f wanted %.4f" i measured wanted)
    counts

let test_weighting_source_batches () =
  let lfsr = Lfsr.create ~width:24 7L in
  let net = Weighting.design ~bits:4 [| 0.5; 0.5 |] in
  let src = Weighting.source net lfsr in
  let b = src () in
  check Alcotest.int "64 lanes" 64 b.Rt_sim.Pattern.n_patterns;
  check Alcotest.int "2 inputs" 2 b.Rt_sim.Pattern.n_inputs

(* --- MISR ----------------------------------------------------------------------- *)

let test_misr_distinguishes () =
  let run stream =
    let m = Misr.create ~width:16 0L in
    List.iter (Misr.absorb m) stream;
    Misr.signature m
  in
  let a = run [ 1L; 2L; 3L; 4L ] in
  let b = run [ 1L; 2L; 7L; 4L ] in
  check Alcotest.bool "different streams, different signatures" false (Int64.equal a b)

let misr_linearity_qcheck =
  (* The self-test engine depends on: sig(a XOR b, seed 0) =
     sig(a,0) XOR sig(b,0). *)
  QCheck.Test.make ~name:"misr is linear over GF(2)" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) int64) (list_of_size Gen.(1 -- 30) int64))
    (fun (a, b) ->
      let len = max (List.length a) (List.length b) in
      let pad l = Array.init len (fun i -> try List.nth l i with _ -> 0L) in
      let a = pad a and b = pad b in
      let run stream =
        let m = Misr.create ~width:32 0L in
        Array.iter (Misr.absorb m) stream;
        Misr.signature m
      in
      let x = Array.init len (fun i -> Int64.logxor a.(i) b.(i)) in
      Int64.equal (run x) (Int64.logxor (run a) (run b)))

let test_aliasing_probability () =
  check (Alcotest.float 1e-15) "2^-16" (1.0 /. 65536.0) (Misr.aliasing_probability ~width:16)

(* --- Selftest ---------------------------------------------------------------------- *)

let test_selftest_vs_fault_sim () =
  (* Signature-based coverage must equal fault-sim coverage on the same
     stream minus aliasing events. *)
  let c = Generators.c432ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let weights = Array.make 36 0.5 in
  let cfg = { (Selftest.default_config c ~weights) with Selftest.n_patterns = 1024 } in
  let oc = Selftest.run c faults cfg in
  let lfsr = Lfsr.create ~width:cfg.Selftest.lfsr_width cfg.Selftest.lfsr_seed in
  let net = Weighting.design ~bits:cfg.Selftest.weight_bits weights in
  let stats =
    Rt_sim.Fault_sim.simulate ~drop:true c faults ~source:(Weighting.source net lfsr)
      ~n_patterns:1024
  in
  let sim_detected =
    Array.fold_left (fun a fd -> if fd >= 0 then a + 1 else a) 0 stats.Rt_sim.Fault_sim.first_detect
  in
  let sig_detected =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 oc.Selftest.detected
  in
  check Alcotest.int "signature = sim - aliased" (sim_detected - oc.Selftest.aliased) sig_detected

let test_selftest_golden_reproducible () =
  let c = Generators.c432ish () in
  let weights = Array.make 36 0.5 in
  let cfg = { (Selftest.default_config c ~weights) with Selftest.n_patterns = 256 } in
  let g1 = Selftest.golden_signature c cfg in
  let g2 = Selftest.golden_signature c cfg in
  check Alcotest.int64 "deterministic" g1 g2;
  let cfg2 = { cfg with Selftest.lfsr_seed = 99L } in
  check Alcotest.bool "seed changes signature" false
    (Int64.equal g1 (Selftest.golden_signature c cfg2))

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_bist"
    [ ( "lfsr",
        [ Alcotest.test_case "maximal periods" `Quick test_lfsr_maximal_periods;
          Alcotest.test_case "zero seed" `Quick test_lfsr_zero_seed_fixed;
          Alcotest.test_case "step_word" `Quick test_lfsr_step_word;
          Alcotest.test_case "balanced output" `Quick test_lfsr_balanced;
          Alcotest.test_case "bad args" `Quick test_lfsr_bad_args ] );
      ( "weighting",
        [ Alcotest.test_case "design" `Quick test_weighting_design;
          Alcotest.test_case "statistics" `Quick test_weighting_statistics;
          Alcotest.test_case "source batches" `Quick test_weighting_source_batches ] );
      ( "misr",
        [ Alcotest.test_case "distinguishes" `Quick test_misr_distinguishes;
          q misr_linearity_qcheck;
          Alcotest.test_case "aliasing probability" `Quick test_aliasing_probability ] );
      ( "selftest",
        [ Alcotest.test_case "vs fault sim" `Quick test_selftest_vs_fault_sim;
          Alcotest.test_case "golden reproducible" `Quick test_selftest_golden_reproducible ] ) ]
