(* Tests for Rt_circuit: gate semantics, netlist invariants, the builder's
   constant folding, the .bench format, cones, and every generator's
   functional correctness. *)

module Gate = Rt_circuit.Gate
module Netlist = Rt_circuit.Netlist
module Builder = Rt_circuit.Builder
module Generators = Rt_circuit.Generators
module Bench = Rt_circuit.Bench_format
module Cone = Rt_circuit.Cone

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

let output_value c out name =
  let rec find k =
    if k >= Array.length (Netlist.outputs c) then Alcotest.failf "no output %s" name
    else if Netlist.name c (Netlist.outputs c).(k) = name then out.(k)
    else find (k + 1)
  in
  find 0

(* Decode outputs named <prefix><index> as a little-endian integer. *)
let decode_int c out prefix =
  let v = ref 0 in
  Array.iteri
    (fun k o ->
      let name = Netlist.name c o in
      let pl = String.length prefix in
      if String.length name > pl && String.sub name 0 pl = prefix then begin
        match int_of_string_opt (String.sub name pl (String.length name - pl)) with
        | Some idx -> if out.(k) then v := !v lor (1 lsl idx)
        | None -> ()
      end)
    (Netlist.outputs c);
  !v

(* --- Gate semantics --------------------------------------------------------- *)

let all_gate_kinds = [ Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_gate_eval_words_consistent () =
  (* Word evaluation applied laneswise must equal the boolean evaluation. *)
  List.iter
    (fun k ->
      let arity = match k with Gate.Buf | Gate.Not -> 1 | _ -> 3 in
      for assignment = 0 to (1 lsl arity) - 1 do
        let bools = Array.init arity (fun i -> (assignment lsr i) land 1 = 1) in
        let words = Array.map (fun b -> if b then -1L else 0L) bools in
        let expect = Gate.eval k bools in
        let got = Int64.logand (Gate.eval_words k words) 1L <> 0L in
        if expect <> got then
          Alcotest.failf "gate %s mismatch at %d" (Gate.to_string k) assignment
      done)
    all_gate_kinds

let test_gate_prob_matches_enumeration () =
  (* With independent inputs the arithmetic embedding is exact: compare
     against explicit enumeration for a non-uniform distribution. *)
  let ps = [| 0.3; 0.7; 0.5 |] in
  List.iter
    (fun k ->
      let arity = match k with Gate.Buf | Gate.Not -> 1 | _ -> 3 in
      let ps = Array.sub ps 0 arity in
      let total = ref 0.0 in
      for assignment = 0 to (1 lsl arity) - 1 do
        let bools = Array.init arity (fun i -> (assignment lsr i) land 1 = 1) in
        let weight =
          Array.to_list (Array.mapi (fun i b -> if b then ps.(i) else 1.0 -. ps.(i)) bools)
          |> List.fold_left ( *. ) 1.0
        in
        if Gate.eval k bools then total := !total +. weight
      done;
      let got = Gate.prob k ps in
      if Float.abs (!total -. got) > 1e-9 then
        Alcotest.failf "gate %s prob: enum %.6f vs formula %.6f" (Gate.to_string k) !total got)
    all_gate_kinds

let test_gate_of_string () =
  check Alcotest.bool "nand" true (Gate.of_string "nand" = Some Gate.Nand);
  check Alcotest.bool "BUFF" true (Gate.of_string "BUFF" = Some Gate.Buf);
  check Alcotest.bool "dff rejected" true (Gate.of_string "DFF" = None)

let test_controlling_values () =
  check Alcotest.bool "and" true (Gate.controlling_value Gate.And = Some false);
  check Alcotest.bool "nor" true (Gate.controlling_value Gate.Nor = Some true);
  check Alcotest.bool "xor" true (Gate.controlling_value Gate.Xor = None)

(* --- Netlist / Builder -------------------------------------------------------- *)

let test_netlist_rejects_cycles () =
  Alcotest.check_raises "non-topological fanin"
    (Invalid_argument "Netlist.make: node 0 has non-topological fanin 0") (fun () ->
      ignore
        (Netlist.make ~kinds:[| Gate.Buf |] ~fanins:[| [| 0 |] |] ~names:[| "a" |]
           ~output_list:[ 0 ]))

let test_netlist_rejects_duplicate_names () =
  Alcotest.check_raises "duplicate name" (Invalid_argument "Netlist.make: duplicate name a")
    (fun () ->
      ignore
        (Netlist.make
           ~kinds:[| Gate.Input; Gate.Input |]
           ~fanins:[| [||]; [||] |] ~names:[| "a"; "a" |] ~output_list:[]))

let test_builder_basic () =
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  Builder.output b ~name:"z" (Builder.and2 b x y);
  let c = Builder.finalize b in
  check Alcotest.int "inputs" 2 (Array.length (Netlist.inputs c));
  check Alcotest.int "outputs" 1 (Array.length (Netlist.outputs c));
  check Alcotest.(array bool) "and truth" [| true |] (Netlist.eval_outputs c [| true; true |]);
  check Alcotest.(array bool) "and truth 2" [| false |] (Netlist.eval_outputs c [| true; false |])

let test_builder_constant_folding () =
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let zero = Builder.const b false in
  let one = Builder.const b true in
  (* AND with 0 folds to 0; OR with 0 folds to wire; XOR with 1 folds to
     inverter. *)
  let a = Builder.and2 b x zero in
  let o = Builder.or2 b x zero in
  let n = Builder.xor2 b x one in
  Builder.output b ~name:"a" a;
  Builder.output b ~name:"o" o;
  Builder.output b ~name:"n" n;
  let c = Builder.finalize b in
  List.iter
    (fun v ->
      let out = Netlist.eval_outputs c [| v |] in
      check Alcotest.bool "and0" false (output_value c out "a");
      check Alcotest.bool "or0" v (output_value c out "o");
      check Alcotest.bool "xor1" (not v) (output_value c out "n"))
    [ true; false ];
  (* No And/Or/Xor gate should survive folding. *)
  Netlist.iter_gates c (fun g ->
      match Netlist.kind c g with
      | Gate.And | Gate.Or | Gate.Xor -> Alcotest.fail "gate survived constant folding"
      | _ -> ())

let test_builder_prune () =
  let b = Builder.create () in
  let x = Builder.input b "x" in
  let _dead = Builder.not_ b (Builder.not_ b x) in
  Builder.output b ~name:"y" (Builder.buf b x) |> ignore;
  let c = Builder.finalize b in
  (* The two dead inverters must be pruned: input, kept buf, output alias. *)
  check Alcotest.int "pruned size" 3 (Netlist.size c)

let fold_equivalence_qcheck =
  (* Folding must never change circuit semantics: build the same random
     expression with folding on and off and compare on all inputs. *)
  QCheck.Test.make ~name:"constant folding preserves semantics" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n_inputs) ->
      let build fold =
        let rng = Rt_util.Rng.create seed in
        let b = Builder.create ~fold ~prune:false () in
        let ins = Builder.inputs b "x" n_inputs in
        let nodes = ref (Array.to_list ins) in
        (* inject constants into the pool *)
        nodes := Builder.const b false :: Builder.const b true :: !nodes;
        for _ = 1 to 25 do
          let pool = Array.of_list !nodes in
          let pick () = pool.(Rt_util.Rng.int rng (Array.length pool)) in
          let kinds = [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not |] in
          let k = kinds.(Rt_util.Rng.int rng 7) in
          let arity = if k = Gate.Not then 1 else 2 in
          let g = Builder.gate b k (List.init arity (fun _ -> pick ())) in
          nodes := g :: !nodes
        done;
        (match !nodes with last :: _ -> Builder.output b ~name:"out" last | [] -> ());
        Builder.finalize b
      in
      let cf = build true and cn = build false in
      let ok = ref true in
      for v = 0 to (1 lsl n_inputs) - 1 do
        let inp = bits_of_int n_inputs v in
        if Netlist.eval_outputs cf inp <> Netlist.eval_outputs cn inp then ok := false
      done;
      !ok)

(* --- Bench format ------------------------------------------------------------ *)

let test_bench_roundtrip_semantics () =
  List.iter
    (fun (_, gen) ->
      let c = gen () in
      let c2 = Bench.parse (Bench.to_string c) in
      let n = Array.length (Netlist.inputs c) in
      check Alcotest.int "same inputs" n (Array.length (Netlist.inputs c2));
      let rng = Rt_util.Rng.create 5 in
      for _ = 1 to 20 do
        let inp = Array.init n (fun _ -> Rt_util.Rng.bool rng) in
        if Netlist.eval_outputs c inp <> Netlist.eval_outputs c2 inp then
          Alcotest.fail "bench roundtrip changed semantics"
      done)
    [ ("s1", Generators.s1_comparator); ("c432ish", Generators.c432ish);
      ("c880ish", Generators.c880ish) ]

let test_bench_parse_errors () =
  let expect_error text =
    match Bench.parse text with
    | exception Bench.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  expect_error "g = FROB(a)\nINPUT(a)\n";
  expect_error "INPUT(a)\ng = AND(a, undeclared)\nOUTPUT(g)\n";
  expect_error "INPUT(a)\na = AND(a, a)\n";
  expect_error "g = AND(h)\nh = AND(g)\n"

let test_bench_out_of_order () =
  (* Declarations in any order must parse. *)
  let c = Bench.parse "OUTPUT(z)\nz = AND(x, y)\nINPUT(y)\nINPUT(x)\n" in
  check Alcotest.(array bool) "works" [| true |] (Netlist.eval_outputs c [| true; true |])

let test_bench_comments_and_blanks () =
  let c = Bench.parse "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(b)\nb = NOT(a) # trailing\n" in
  check Alcotest.(array bool) "not gate" [| false |] (Netlist.eval_outputs c [| true |])

(* --- Cones -------------------------------------------------------------------- *)

let test_cone_support () =
  let c = Generators.s1_comparator () in
  (* Every output of the full comparator depends on all 48 inputs. *)
  Array.iter
    (fun o -> check Alcotest.int "full support" 48 (Cone.support_size c o))
    (Netlist.outputs c);
  let sizes = Cone.all_support_sizes c in
  Array.iter
    (fun o -> check Alcotest.int "sweep agrees with DFS" (Cone.support_size c o) sizes.(o))
    (Netlist.outputs c)

let test_cone_extract () =
  let c = Generators.c432ish () in
  let o = (Netlist.outputs c).(0) in
  let sub, mapping = Cone.extract c [ o ] in
  check Alcotest.int "one output" 1 (Array.length (Netlist.outputs sub));
  (* The extracted cone computes the same function. *)
  let rng = Rt_util.Rng.create 9 in
  for _ = 1 to 50 do
    let inp = Array.init (Array.length (Netlist.inputs c)) (fun _ -> Rt_util.Rng.bool rng) in
    let full = Netlist.eval c inp in
    let sub_in = Array.map (fun i -> full.(mapping.(i))) (Netlist.inputs sub) in
    let sub_out = Netlist.eval_outputs sub sub_in in
    if sub_out.(0) <> full.(o) then Alcotest.fail "extracted cone differs"
  done

let test_transitive_fanout () =
  let c = Generators.c432ish () in
  let i0 = (Netlist.inputs c).(0) in
  let mask = Cone.transitive_fanout c i0 in
  check Alcotest.bool "contains itself" true mask.(i0);
  check Alcotest.bool "reaches an output" true (Cone.reaches_output c i0)

(* --- Generators functional correctness ------------------------------------------ *)

let test_multiplier_exhaustive () =
  let m = Generators.c6288ish ~width:4 () in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let out = Netlist.eval_outputs m (Array.append (bits_of_int 4 a) (bits_of_int 4 b)) in
      check Alcotest.int (Printf.sprintf "%d*%d" a b) (a * b) (decode_int m out "p")
    done
  done

let test_divider_exhaustive () =
  let d = Generators.s2_divider ~width:4 () in
  for dd = 0 to 15 do
    for v = 1 to 15 do
      let out = Netlist.eval_outputs d (Array.append (bits_of_int 4 dd) (bits_of_int 4 v)) in
      check Alcotest.int (Printf.sprintf "%d/%d q" dd v) (dd / v) (decode_int d out "q");
      check Alcotest.int (Printf.sprintf "%d/%d r" dd v) (dd mod v) (decode_int d out "r");
      check Alcotest.bool "div0 flag" false (output_value d out "div0");
      check Alcotest.bool "q_one flag" (dd = v) (output_value d out "q_one");
      check Alcotest.bool "q_max flag" (dd / v = 15) (output_value d out "q_max")
    done;
    (* divide by zero flag *)
    let out = Netlist.eval_outputs d (Array.append (bits_of_int 4 dd) (bits_of_int 4 0)) in
    check Alcotest.bool "div0 raised" true (output_value d out "div0")
  done

let s1_lazy = lazy (Generators.s1_comparator ())

let comparator_qcheck =
  QCheck.Test.make ~name:"s1 comparator matches integer comparison" ~count:500
    QCheck.(pair (int_bound ((1 lsl 24) - 1)) (int_bound ((1 lsl 24) - 1)))
    (fun (a, b) ->
      let c = Lazy.force s1_lazy in
      let out = Netlist.eval_outputs c (Array.append (bits_of_int 24 a) (bits_of_int 24 b)) in
      output_value c out "a_lt_b" = (a < b)
      && output_value c out "a_eq_b" = (a = b)
      && output_value c out "a_gt_b" = (a > b))

let c7552_lazy = lazy (Generators.c7552ish ())

let adder_qcheck =
  QCheck.Test.make ~name:"c7552ish adder sums correctly" ~count:300
    QCheck.(triple (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) bool)
    (fun (a, b, cin) ->
      let c = Lazy.force c7552_lazy in
      let inp = Array.concat [ bits_of_int 32 a; bits_of_int 32 b; [| cin |] ] in
      let out = Netlist.eval_outputs c inp in
      let s = decode_int c out "s" in
      let cout = output_value c out "cout" in
      let expect = a + b + if cin then 1 else 0 in
      s = expect land 0xFFFFFFFF && cout = (expect > 0xFFFFFFFF))

let test_alu_operations () =
  let b = Builder.create () in
  let op = Builder.inputs b "op" 3 in
  let a = Builder.inputs b "a" 4 in
  let bb = Builder.inputs b "b" 4 in
  let cin = Builder.input b "cin" in
  let result, cout, zero = Generators.alu b ~op ~a ~b:bb ~cin in
  Array.iteri (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" i) r) result;
  Builder.output b ~name:"cout" cout;
  Builder.output b ~name:"zero" zero;
  let c = Builder.finalize b in
  let run opc av bv cinv =
    let inp = Array.concat [ bits_of_int 3 opc; bits_of_int 4 av; bits_of_int 4 bv; [| cinv |] ] in
    let out = Netlist.eval_outputs c inp in
    (decode_int c out "f", output_value c out "zero")
  in
  for av = 0 to 15 do
    for bv = 0 to 15 do
      let add, _ = run 0 av bv false in
      check Alcotest.int "add" ((av + bv) land 15) add;
      let sub, _ = run 1 av bv false in
      check Alcotest.int "sub" ((av - bv) land 15) sub;
      let anded, z = run 2 av bv false in
      check Alcotest.int "and" (av land bv) anded;
      check Alcotest.bool "zero flag" (av land bv = 0) z;
      let ored, _ = run 3 av bv false in
      check Alcotest.int "or" (av lor bv) ored;
      let xored, _ = run 4 av bv false in
      check Alcotest.int "xor" (av lxor bv) xored
    done
  done

let test_sec_corrects_single_errors () =
  (* c499ish: flipping any single data bit must be corrected. *)
  let c = Generators.c499ish () in
  let rng = Rt_util.Rng.create 31 in
  for _ = 1 to 20 do
    let data = Array.init 32 (fun _ -> Rt_util.Rng.bool rng) in
    (* Check bits that zero the syndrome: check_k = parity of the data
       bits whose signature has bit k set (the generator's code). *)
    let syndrome_of input =
      let sig_of i = ((i * 7) mod 255) + 1 in
      Array.init 8 (fun k ->
          let p = ref false in
          Array.iteri (fun i d -> if d && (sig_of i lsr k) land 1 = 1 then p := not !p) input;
          !p)
    in
    let check_bits = syndrome_of data in
    let good = Netlist.eval_outputs c (Array.append data check_bits) in
    Array.iteri
      (fun k o ->
        let name = Netlist.name c o in
        if name.[0] = 'o' then begin
          let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
          if good.(k) <> data.(idx) then Alcotest.fail "clean word not echoed"
        end)
      (Netlist.outputs c);
    (* now flip one data bit: the output must still equal the original data *)
    let flip = Rt_util.Rng.int rng 32 in
    let corrupted = Array.copy data in
    corrupted.(flip) <- not corrupted.(flip);
    let fixed = Netlist.eval_outputs c (Array.append corrupted check_bits) in
    Array.iteri
      (fun k o ->
        let name = Netlist.name c o in
        if name.[0] = 'o' then begin
          let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
          if fixed.(k) <> data.(idx) then Alcotest.failf "bit %d not corrected" idx
        end)
      (Netlist.outputs c)
  done

let test_c1355_matches_c499 () =
  (* Same function, different gate realisation. *)
  let a = Generators.c499ish () in
  let b = Generators.c1355ish () in
  let rng = Rt_util.Rng.create 77 in
  for _ = 1 to 100 do
    let inp = Array.init 40 (fun _ -> Rt_util.Rng.bool rng) in
    if Netlist.eval_outputs a inp <> Netlist.eval_outputs b inp then
      Alcotest.fail "c1355ish differs from c499ish"
  done

let test_paper_suite_wellformed () =
  List.iter
    (fun (name, gen) ->
      let c = gen () in
      if Array.length (Netlist.inputs c) = 0 then Alcotest.failf "%s has no inputs" name;
      if Array.length (Netlist.outputs c) = 0 then Alcotest.failf "%s has no outputs" name;
      (* Every input reaches an output (no undetectable input faults by
         construction). *)
      Array.iter
        (fun i ->
          if not (Cone.reaches_output c i) then
            Alcotest.failf "%s: input %s reaches no output" name (Netlist.name c i))
        (Netlist.inputs c))
    Generators.paper_suite

let test_registry () =
  check Alcotest.bool "s1 known" true (Generators.by_name "s1" <> None);
  check Alcotest.bool "antagonist known" true (Generators.by_name "antagonist" <> None);
  check Alcotest.bool "wide_and-8 known" true (Generators.by_name "wide_and-8" <> None);
  check Alcotest.bool "nonsense unknown" true (Generators.by_name "frobnicate" = None)

let random_circuit_qcheck =
  QCheck.Test.make ~name:"random circuits are valid and deterministic" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c1 = Generators.random_circuit ~inputs:6 ~gates:30 ~seed in
      let c2 = Generators.random_circuit ~inputs:6 ~gates:30 ~seed in
      Netlist.size c1 = Netlist.size c2
      && Array.length (Netlist.outputs c1) > 0
      &&
      let inp = Array.make 6 true in
      Netlist.eval_outputs c1 inp = Netlist.eval_outputs c2 inp)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_circuit"
    [ ( "gate",
        [ Alcotest.test_case "eval_words consistent" `Quick test_gate_eval_words_consistent;
          Alcotest.test_case "prob matches enumeration" `Quick test_gate_prob_matches_enumeration;
          Alcotest.test_case "of_string" `Quick test_gate_of_string;
          Alcotest.test_case "controlling values" `Quick test_controlling_values ] );
      ( "netlist",
        [ Alcotest.test_case "rejects cycles" `Quick test_netlist_rejects_cycles;
          Alcotest.test_case "rejects duplicate names" `Quick test_netlist_rejects_duplicate_names ] );
      ( "builder",
        [ Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "constant folding" `Quick test_builder_constant_folding;
          Alcotest.test_case "pruning" `Quick test_builder_prune;
          q fold_equivalence_qcheck ] );
      ( "bench-format",
        [ Alcotest.test_case "roundtrip semantics" `Quick test_bench_roundtrip_semantics;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
          Alcotest.test_case "out of order decls" `Quick test_bench_out_of_order;
          Alcotest.test_case "comments and blanks" `Quick test_bench_comments_and_blanks ] );
      ( "cone",
        [ Alcotest.test_case "support" `Quick test_cone_support;
          Alcotest.test_case "extract" `Quick test_cone_extract;
          Alcotest.test_case "transitive fanout" `Quick test_transitive_fanout ] );
      ( "generators",
        [ Alcotest.test_case "multiplier exhaustive 4x4" `Quick test_multiplier_exhaustive;
          Alcotest.test_case "divider exhaustive 4-bit" `Quick test_divider_exhaustive;
          q comparator_qcheck;
          q adder_qcheck;
          Alcotest.test_case "alu operations" `Quick test_alu_operations;
          Alcotest.test_case "sec corrects single errors" `Quick test_sec_corrects_single_errors;
          Alcotest.test_case "c1355 matches c499" `Quick test_c1355_matches_c499;
          Alcotest.test_case "paper suite wellformed" `Quick test_paper_suite_wellformed;
          Alcotest.test_case "registry" `Quick test_registry;
          q random_circuit_qcheck ] ) ]
