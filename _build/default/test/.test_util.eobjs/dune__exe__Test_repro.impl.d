test/test_repro.ml: Alcotest Array Filename Float Format List Rt_circuit Rt_repro String Sys
