test/test_fault.ml: Alcotest Array Float List QCheck QCheck_alcotest Rt_circuit Rt_fault Rt_sim
