test/test_scan.ml: Alcotest Array Float Printf Rt_circuit Rt_fault Rt_optprob Rt_scan Rt_testability Rt_util
