test/test_sim.ml: Alcotest Array Float Int64 List QCheck QCheck_alcotest Rt_circuit Rt_fault Rt_sim Rt_util
