test/test_circuit.ml: Alcotest Array Float Int64 Lazy List Printf QCheck QCheck_alcotest Rt_circuit Rt_util String
