test/test_optprob.mli:
