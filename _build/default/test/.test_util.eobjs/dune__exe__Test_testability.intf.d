test/test_testability.mli:
