test/test_optprob.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rt_circuit Rt_fault Rt_optprob Rt_testability Rt_util
