test/test_bist.ml: Alcotest Array Float Gen Int64 List Printf QCheck QCheck_alcotest Rt_bist Rt_circuit Rt_fault Rt_sim
