test/test_testability.ml: Alcotest Array Float QCheck QCheck_alcotest Rt_circuit Rt_fault Rt_sim Rt_testability
