test/test_integration.ml: Alcotest Array Filename Float List Rt_atpg Rt_bist Rt_circuit Rt_fault Rt_optprob Rt_sim Rt_testability Rt_util Sys
