test/test_util.ml: Alcotest Array Float Fun Gen Int64 List QCheck QCheck_alcotest Rt_util String
