test/test_atpg.ml: Alcotest Array List Option QCheck QCheck_alcotest Rt_atpg Rt_bdd Rt_circuit Rt_fault Rt_sim Rt_testability
