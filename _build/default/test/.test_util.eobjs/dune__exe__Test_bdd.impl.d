test/test_bdd.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Rt_bdd Rt_circuit Rt_fault Rt_sim Rt_testability
