test/test_repro.mli:
