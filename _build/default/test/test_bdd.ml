(* Tests for Rt_bdd: canonical ROBDD operations, exact signal probability
   (Parker-McCluskey), fault detection functions, and the node limit. *)

module Bdd = Rt_bdd.Bdd
module Bdd_circuit = Rt_bdd.Bdd_circuit
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators

let check = Alcotest.check

let bits_of_int w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

let test_terminal_identities () =
  let m = Bdd.manager ~nvars:4 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  check Alcotest.bool "x & 1 = x" true (Bdd.equal (Bdd.and_ m x (Bdd.one m)) x);
  check Alcotest.bool "x & 0 = 0" true (Bdd.is_zero (Bdd.and_ m x (Bdd.zero m)));
  check Alcotest.bool "x | 0 = x" true (Bdd.equal (Bdd.or_ m x (Bdd.zero m)) x);
  check Alcotest.bool "x ^ x = 0" true (Bdd.is_zero (Bdd.xor_ m x x));
  check Alcotest.bool "x ^ ~x = 1" true (Bdd.is_one (Bdd.xor_ m x (Bdd.not_ m x)));
  check Alcotest.bool "~~x = x" true (Bdd.equal (Bdd.not_ m (Bdd.not_ m x)) x);
  check Alcotest.bool "x & y = y & x" true (Bdd.equal (Bdd.and_ m x y) (Bdd.and_ m y x))

let test_canonicity () =
  (* Two syntactically different constructions of the same function share
     one node. *)
  let m = Bdd.manager ~nvars:3 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f1 = Bdd.not_ m (Bdd.and_ m x y) in
  let f2 = Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y) in
  check Alcotest.bool "de morgan canonical" true (Bdd.equal f1 f2)

let test_ite () =
  let m = Bdd.manager ~nvars:3 () in
  let c = Bdd.var m 0 and t = Bdd.var m 1 and e = Bdd.var m 2 in
  let f = Bdd.ite m c t e in
  List.iter
    (fun v ->
      let assign i = (v lsr i) land 1 = 1 in
      let expect = if assign 0 then assign 1 else assign 2 in
      if Bdd.eval m f assign <> expect then Alcotest.failf "ite wrong at %d" v)
    (List.init 8 Fun.id)

let test_restrict () =
  let m = Bdd.manager ~nvars:2 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.xor_ m x y in
  check Alcotest.bool "f|x=0 is y" true (Bdd.equal (Bdd.restrict m f 0 false) y);
  check Alcotest.bool "f|x=1 is ~y" true (Bdd.equal (Bdd.restrict m f 0 true) (Bdd.not_ m y))

let test_node_limit () =
  let m = Bdd.manager ~node_limit:8 ~nvars:16 () in
  Alcotest.check_raises "limit" Bdd.Limit_exceeded (fun () ->
      let acc = ref (Bdd.one m) in
      for i = 0 to 15 do
        acc := Bdd.and_ m !acc (Bdd.var m i)
      done)

let test_sat_fraction_parity () =
  (* Parity of n variables is satisfied by exactly half the assignments. *)
  let m = Bdd.manager ~nvars:8 () in
  let f = ref (Bdd.zero m) in
  for i = 0 to 7 do
    f := Bdd.xor_ m !f (Bdd.var m i)
  done;
  check (Alcotest.float 1e-12) "parity fraction" 0.5 (Bdd.sat_fraction m !f)

let test_any_sat () =
  let m = Bdd.manager ~nvars:4 () in
  let f =
    Bdd.and_ m (Bdd.var m 0) (Bdd.and_ m (Bdd.not_ m (Bdd.var m 2)) (Bdd.var m 3))
  in
  (match Bdd.any_sat m f with
   | None -> Alcotest.fail "satisfiable function"
   | Some assign ->
     let value = Bdd.eval m f (fun i -> List.assoc_opt i assign = Some true) in
     check Alcotest.bool "assignment satisfies" true value);
  check Alcotest.bool "zero unsat" true (Bdd.any_sat m (Bdd.zero m) = None)

(* Random circuit: BDD evaluation must equal direct netlist evaluation, and
   BDD probability must equal exhaustive enumeration. *)
let bdd_vs_netlist_qcheck =
  QCheck.Test.make ~name:"bdd build agrees with netlist eval" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:40 ~seed in
      match Bdd_circuit.build c with
      | None -> QCheck.assume_fail ()
      | Some (m, bdds, order) ->
        let ok = ref true in
        for v = 0 to 127 do
          let inp = bits_of_int 7 v in
          let vals = Netlist.eval c inp in
          (* BDD variable = order.(input position) *)
          let assign var =
            let rec find i = if order.(i) = var then inp.(i) else find (i + 1) in
            find 0
          in
          for n = 0 to Netlist.size c - 1 do
            if Bdd.eval m bdds.(n) assign <> vals.(n) then ok := false
          done
        done;
        !ok)

let prob_vs_enumeration_qcheck =
  QCheck.Test.make ~name:"exact signal probs equal enumeration" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:6 ~gates:30 ~seed in
      let x = Array.init 6 (fun i -> 0.1 +. (0.13 *. Float.of_int i)) in
      match Bdd_circuit.signal_probs c x with
      | None -> QCheck.assume_fail ()
      | Some probs ->
        (* enumerate *)
        let n = Netlist.size c in
        let acc = Array.make n 0.0 in
        for v = 0 to 63 do
          let inp = bits_of_int 6 v in
          let weight =
            Array.to_list (Array.mapi (fun i b -> if b then x.(i) else 1.0 -. x.(i)) inp)
            |> List.fold_left ( *. ) 1.0
          in
          let vals = Netlist.eval c inp in
          Array.iteri (fun j b -> if b then acc.(j) <- acc.(j) +. weight) vals
        done;
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) acc probs)

let detection_prob_vs_bruteforce_qcheck =
  QCheck.Test.make ~name:"detection prob equals brute-force fraction" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:6 ~gates:25 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let x = Array.make 6 0.5 in
      let ok = ref true in
      Array.iteri
        (fun fi f ->
          if fi mod 7 = 0 then begin
            (* sample a few faults per circuit to bound the cost *)
            let inj = Rt_testability.Detect.injection f in
            match Bdd_circuit.detection_prob c inj x with
            | None -> ()
            | Some p ->
              let count = ref 0 in
              for v = 0 to 63 do
                if Rt_sim.Fault_sim.detects c f (bits_of_int 6 v) then incr count
              done;
              let brute = Float.of_int !count /. 64.0 in
              if Float.abs (p -. brute) > 1e-9 then ok := false
          end)
        faults;
      !ok)

let test_dfs_order_comparator () =
  (* The declaration order (all a's then all b's) blows comparators up
     exponentially; the DFS order must keep S1 comfortably under the
     limit. *)
  let c = Generators.s1_comparator () in
  match Bdd_circuit.build ~node_limit:200_000 c with
  | None -> Alcotest.fail "s1 did not fit with DFS order"
  | Some (m, _, _) ->
    check Alcotest.bool "small" true (Bdd.node_count m < 100_000)

let test_detection_function_redundant () =
  (* A constant-0-fed AND behind folding-off construction: stuck-at-0 on
     its output is undetectable. *)
  let b = Rt_circuit.Builder.create ~fold:false ~prune:false () in
  let x = Rt_circuit.Builder.input b "x" in
  let nx = Rt_circuit.Builder.not_ b x in
  let zero = Rt_circuit.Builder.and2 b x nx in
  (* always 0 *)
  Rt_circuit.Builder.output b ~name:"y" (Rt_circuit.Builder.or2 b zero x);
  let c = Rt_circuit.Builder.finalize b in
  (match Netlist.find c (Netlist.name c zero) with
   | None -> Alcotest.fail "node lost"
   | Some node ->
     (match Bdd_circuit.detection_function c (Bdd_circuit.Stem (node, false)) with
      | None -> Alcotest.fail "tiny circuit must fit"
      | Some (_, detect, _) ->
        check Alcotest.bool "s-a-0 on constant-0 node is redundant" true (Bdd.is_zero detect)))

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_bdd"
    [ ( "core",
        [ Alcotest.test_case "terminal identities" `Quick test_terminal_identities;
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "sat fraction parity" `Quick test_sat_fraction_parity;
          Alcotest.test_case "any_sat" `Quick test_any_sat ] );
      ( "circuit",
        [ q bdd_vs_netlist_qcheck;
          q prob_vs_enumeration_qcheck;
          q detection_prob_vs_bruteforce_qcheck;
          Alcotest.test_case "dfs order tames comparator" `Quick test_dfs_order_comparator;
          Alcotest.test_case "redundant fault detection function" `Quick
            test_detection_function_redundant ] ) ]
