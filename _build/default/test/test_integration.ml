(* End-to-end integration tests: the full pipeline
   generate -> collapse -> analyse -> optimize -> simulate -> selftest,
   on circuits small enough to run in seconds, with the central claims of
   the paper asserted quantitatively. *)

module Generators = Rt_circuit.Generators
module Netlist = Rt_circuit.Netlist
module Detect = Rt_testability.Detect
module Optimize = Rt_optprob.Optimize

let check = Alcotest.check

(* The quickstart circuit: a guarded equality detector. *)
let hard_circuit () =
  let b = Rt_circuit.Builder.create () in
  let xs = Rt_circuit.Builder.inputs b "x" 12 in
  let ys = Rt_circuit.Builder.inputs b "y" 12 in
  let en = Rt_circuit.Builder.inputs b "en" 2 in
  let eq = Generators.equality_comparator b xs ys in
  let armed = Rt_circuit.Builder.and2 b en.(0) en.(1) in
  Rt_circuit.Builder.output b ~name:"match" (Rt_circuit.Builder.and2 b eq armed);
  Rt_circuit.Builder.output b ~name:"parity" (Generators.parity b xs);
  Rt_circuit.Builder.finalize b

let coverage c faults weights ~n_patterns ~seed =
  let rng = Rt_util.Rng.create seed in
  let source = Rt_sim.Pattern.weighted rng weights in
  let stats = Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns in
  Rt_sim.Fault_sim.coverage stats

let test_pipeline_improves_coverage () =
  let c = hard_circuit () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 500_000 }) c faults in
  let report = Optimize.run oracle in
  (* The paper's central claim, end-to-end: orders of magnitude shorter
     tests and near-complete coverage at a pattern count where the
     conventional test fails badly. *)
  check Alcotest.bool "test length shrinks >= 100x" true (Optimize.improvement report > 100.0);
  let n_inputs = Array.length (Netlist.inputs c) in
  let conv = coverage c faults (Array.make n_inputs 0.5) ~n_patterns:2000 ~seed:11 in
  let opt = coverage c faults report.Optimize.weights ~n_patterns:2000 ~seed:11 in
  check Alcotest.bool "conventional below 90%" true (conv < 0.90);
  check Alcotest.bool "optimized above 99%" true (opt > 0.99)

let test_every_engine_drives_optimizer () =
  let c = Generators.wide_and 10 in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  List.iter
    (fun (label, engine) ->
      let oracle = Detect.make engine c faults in
      let report = Optimize.run oracle in
      if Optimize.improvement report < 10.0 then
        Alcotest.failf "engine %s failed to optimize the wide AND (gain %.1f)" label
          (Optimize.improvement report))
    [ ("cop", Detect.Cop);
      ("bdd", Detect.Bdd_exact { node_limit = 100_000 });
      ("stafan", Detect.Stafan { n_patterns = 4_096; seed = 3 });
      ("monte-carlo", Detect.Monte_carlo { n_patterns = 4_096; seed = 3 }) ]

let test_bench_roundtrip_then_optimize () =
  (* The .bench file written by one tool run must feed the next one. *)
  let c = Generators.c432ish () in
  let path = Filename.temp_file "c432ish" ".bench" in
  Rt_circuit.Bench_format.save path c;
  let c2 = Rt_circuit.Bench_format.load path in
  Sys.remove path;
  let faults = Rt_fault.Collapse.collapsed_universe c2 in
  let oracle = Detect.make Detect.Cop c2 faults in
  let report = Optimize.run ~options:{ Optimize.default_options with Optimize.max_sweeps = 3 } oracle in
  check Alcotest.bool "finite result" true (Float.is_finite report.Optimize.n_final)

let test_weighted_selftest_end_to_end () =
  (* optimize -> quantise to hardware grid -> LFSR + weighting + MISR run
     beats the unweighted session. *)
  let c = hard_circuit () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 500_000 }) c faults in
  let options =
    { Optimize.default_options with Optimize.quantize = Optimize.Dyadic 4 }
  in
  let report = Optimize.run ~options oracle in
  let session weights =
    let cfg =
      { (Rt_bist.Selftest.default_config c ~weights) with Rt_bist.Selftest.n_patterns = 2048 }
    in
    (Rt_bist.Selftest.run c faults cfg).Rt_bist.Selftest.coverage
  in
  let conv = session (Array.make 26 0.5) in
  let opt = session report.Optimize.weights in
  check Alcotest.bool "weighted BIST wins" true (opt > conv +. 0.05);
  check Alcotest.bool "weighted BIST near complete" true (opt > 0.98)

let test_atpg_agrees_with_optimized_random () =
  (* Deterministic TPG and a long optimized random test must reach the
     same coverage (100% of detectable faults) on S1. *)
  let c = Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let tpg = Rt_atpg.Tpg.generate c faults in
  check Alcotest.int "tpg covers everything" (Array.length faults) tpg.Rt_atpg.Tpg.detected;
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 2_000_000 }) c faults in
  let report = Optimize.run oracle in
  let cov = coverage c faults report.Optimize.weights ~n_patterns:12_000 ~seed:5 in
  check Alcotest.bool "optimized random reaches >= 99.5%" true (cov >= 0.995)

let test_partitioned_beats_single_on_antagonist () =
  let c = Generators.antagonist ~k:10 () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle = Detect.make (Detect.Bdd_exact { node_limit = 100_000 }) c faults in
  let sp = Rt_optprob.Partition.split oracle in
  (* Simulate the actual partitioned session: half the patterns from each
     distribution; compare against the single-distribution optimum at the
     same total budget. *)
  let budget = 2048 in
  let single = Optimize.run oracle in
  let cov_single = coverage c faults single.Optimize.weights ~n_patterns:budget ~seed:3 in
  let detected = Array.make (Array.length faults) false in
  Array.iteri
    (fun gi w ->
      ignore gi;
      let rng = Rt_util.Rng.create (300 + gi) in
      let source = Rt_sim.Pattern.weighted rng w in
      let stats =
        Rt_sim.Fault_sim.simulate ~drop:true c faults ~source
          ~n_patterns:(budget / Array.length sp.Rt_optprob.Partition.weights)
      in
      Array.iteri
        (fun i fd -> if fd >= 0 then detected.(i) <- true)
        stats.Rt_sim.Fault_sim.first_detect)
    sp.Rt_optprob.Partition.weights;
  let cov_parts =
    Float.of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 detected)
    /. Float.of_int (Array.length faults)
  in
  check Alcotest.bool "partitioned session at least as good" true (cov_parts >= cov_single);
  check (Alcotest.float 1e-9) "partitioned session complete" 1.0 cov_parts

let () =
  Alcotest.run "integration"
    [ ( "pipeline",
        [ Alcotest.test_case "coverage improves" `Quick test_pipeline_improves_coverage;
          Alcotest.test_case "all engines drive optimizer" `Slow test_every_engine_drives_optimizer;
          Alcotest.test_case "bench roundtrip then optimize" `Quick
            test_bench_roundtrip_then_optimize;
          Alcotest.test_case "weighted selftest end to end" `Quick
            test_weighted_selftest_end_to_end;
          Alcotest.test_case "atpg agrees with optimized random" `Slow
            test_atpg_agrees_with_optimized_random;
          Alcotest.test_case "partitioned beats single" `Quick
            test_partitioned_beats_single_on_antagonist ] ) ]
