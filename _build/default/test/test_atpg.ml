(* Tests for Rt_atpg: three-valued logic, PODEM soundness (every test
   detects its fault), completeness of redundancy proofs against the exact
   BDD oracle, and the full TPG flow. *)

module T = Rt_atpg.Tristate
module Podem = Rt_atpg.Podem
module Tpg = Rt_atpg.Tpg
module Gate = Rt_circuit.Gate
module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators

let check = Alcotest.check

(* --- Tristate ------------------------------------------------------------------ *)

let test_tristate_refines_bool () =
  (* On fully known values, 3-valued evaluation equals boolean. *)
  List.iter
    (fun k ->
      let arity = match k with Gate.Buf | Gate.Not -> 1 | _ -> 3 in
      for v = 0 to (1 lsl arity) - 1 do
        let bools = Array.init arity (fun i -> (v lsr i) land 1 = 1) in
        let tri = Array.map T.of_bool bools in
        if T.eval k tri <> T.of_bool (Gate.eval k bools) then
          Alcotest.failf "%s at %d" (Gate.to_string k) v
      done)
    [ Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_tristate_controlling_through_x () =
  check Alcotest.bool "0 and X = 0" true (T.eval Gate.And [| T.F; T.X |] = T.F);
  check Alcotest.bool "1 or X = 1" true (T.eval Gate.Or [| T.T; T.X |] = T.T);
  check Alcotest.bool "1 and X = X" true (T.eval Gate.And [| T.T; T.X |] = T.X);
  check Alcotest.bool "X xor 1 = X" true (T.eval Gate.Xor [| T.X; T.T |] = T.X)

let test_tristate_monotone () =
  (* Refining an X input never flips a known output (monotonicity of
     3-valued logic) — checked exhaustively for 2-input gates. *)
  let values = [ T.F; T.T; T.X ] in
  List.iter
    (fun k ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let out = T.eval k [| a; b |] in
              if T.is_known out then begin
                let refine v = if v = T.X then [ T.F; T.T ] else [ v ] in
                List.iter
                  (fun a' ->
                    List.iter
                      (fun b' ->
                        if T.eval k [| a'; b' |] <> out then
                          Alcotest.failf "%s not monotone" (Gate.to_string k))
                      (refine b))
                  (refine a)
              end)
            values)
        values)
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

(* --- PODEM ---------------------------------------------------------------------- *)

let podem_soundness_on name gen =
  let c = gen () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  Array.iter
    (fun f ->
      match Podem.generate ~backtrack_limit:2_000 c f with
      | Podem.Test p, _ ->
        if not (Rt_sim.Fault_sim.detects c f p) then
          Alcotest.failf "%s: test does not detect %s" name (Rt_fault.Fault.to_string c f)
      | Podem.Redundant, _ | Podem.Aborted, _ -> ())
    faults

let test_podem_sound_s1 () = podem_soundness_on "s1" Generators.s1_comparator
let test_podem_sound_c432 () = podem_soundness_on "c432ish" Generators.c432ish
let test_podem_sound_c1908 () = podem_soundness_on "c1908ish" Generators.c1908ish

let podem_vs_bdd_qcheck =
  QCheck.Test.make ~name:"podem verdicts agree with exact BDD analysis" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:9 ~gates:50 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let ok = ref true in
      Array.iter
        (fun f ->
          match Podem.generate ~backtrack_limit:50_000 c f with
          | Podem.Aborted, _ -> ()
          | verdict, _ ->
            let inj = Rt_testability.Detect.injection f in
            (match Rt_bdd.Bdd_circuit.detection_function c inj with
             | None -> ()
             | Some (_, det, _) ->
               let bdd_red = Rt_bdd.Bdd.is_zero det in
               (match verdict with
                | Podem.Redundant -> if not bdd_red then ok := false
                | Podem.Test _ -> if bdd_red then ok := false
                | Podem.Aborted -> ())))
        faults;
      !ok)

let test_podem_redundant_example () =
  (* or(and(x, not x), x): the AND output is constant 0, its s-a-0 is
     redundant; the s-a-1 is testable. *)
  let b = Rt_circuit.Builder.create ~fold:false ~prune:false () in
  let x = Rt_circuit.Builder.input b "x" in
  let nx = Rt_circuit.Builder.not_ b x in
  let zero = Rt_circuit.Builder.and2 b x nx in
  Rt_circuit.Builder.output b ~name:"y" (Rt_circuit.Builder.or2 b zero x);
  let c = Rt_circuit.Builder.finalize b in
  let node = Option.get (Netlist.find c (Netlist.name c zero)) in
  let verdict0, _ = Podem.generate c { Rt_fault.Fault.site = Rt_fault.Fault.Stem node; stuck = false } in
  check Alcotest.bool "s-a-0 redundant" true (verdict0 = Podem.Redundant);
  let verdict1, _ = Podem.generate c { Rt_fault.Fault.site = Rt_fault.Fault.Stem node; stuck = true } in
  (match verdict1 with
   | Podem.Test _ -> ()
   | Podem.Redundant | Podem.Aborted -> Alcotest.fail "s-a-1 should be testable")

let test_podem_cube () =
  let c = Generators.wide_and 6 in
  (* Output s-a-0 requires the all-ones cube (taken from the uncollapsed
     universe — collapsing folds it into the x0 s-a-0 class). *)
  let f =
    Array.to_list (Rt_fault.Fault.universe c)
    |> List.find (fun f ->
           match f.Rt_fault.Fault.site with
           | Rt_fault.Fault.Stem n -> (not f.Rt_fault.Fault.stuck) && Netlist.is_output c n
           | Rt_fault.Fault.Branch _ -> false)
  in
  match Podem.test_cube c f with
  | None -> Alcotest.fail "testable fault"
  | Some cube ->
    Array.iter
      (fun v -> if v <> T.T then Alcotest.fail "cube must be all ones")
      (Array.sub cube 0 6)

let test_podem_aborts_on_limit () =
  let c = Generators.s2_divider ~width:8 () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  (* With a ridiculous limit of 0 backtracks some fault must abort. *)
  let aborted =
    Array.exists
      (fun f -> match Podem.generate ~backtrack_limit:0 c f with
        | Podem.Aborted, _ -> true
        | (Podem.Test _ | Podem.Redundant), _ -> false)
      faults
  in
  check Alcotest.bool "aborts happen at limit 0" true aborted

(* --- D-algorithm ---------------------------------------------------------------------- *)

let dalg_soundness_on name gen =
  let c = gen () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  Array.iter
    (fun f ->
      match Rt_atpg.Dalg.generate ~backtrack_limit:3_000 c f with
      | Rt_atpg.Dalg.Test p, _ ->
        if not (Rt_sim.Fault_sim.detects c f p) then
          Alcotest.failf "%s: dalg test does not detect %s" name (Rt_fault.Fault.to_string c f)
      | Rt_atpg.Dalg.Redundant, _ | Rt_atpg.Dalg.Aborted, _ -> ())
    faults

let test_dalg_sound_c432 () = dalg_soundness_on "c432ish" Generators.c432ish
let test_dalg_sound_c1908 () = dalg_soundness_on "c1908ish" Generators.c1908ish

let dalg_vs_bdd_qcheck =
  QCheck.Test.make ~name:"d-algorithm verdicts agree with exact BDD analysis" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:8 ~gates:35 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let ok = ref true in
      Array.iter
        (fun f ->
          match Rt_atpg.Dalg.generate ~backtrack_limit:100_000 c f with
          | Rt_atpg.Dalg.Aborted, _ -> ()
          | verdict, _ ->
            let inj = Rt_testability.Detect.injection f in
            (match Rt_bdd.Bdd_circuit.detection_function c inj with
             | None -> ()
             | Some (_, det, _) ->
               let bdd_red = Rt_bdd.Bdd.is_zero det in
               (match verdict with
                | Rt_atpg.Dalg.Redundant -> if not bdd_red then ok := false
                | Rt_atpg.Dalg.Test _ -> if bdd_red then ok := false
                | Rt_atpg.Dalg.Aborted -> ())))
        faults;
      !ok)

let dalg_vs_podem_qcheck =
  (* The two complete algorithms must agree wherever neither aborts. *)
  QCheck.Test.make ~name:"d-algorithm agrees with podem" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = Generators.random_circuit ~inputs:7 ~gates:30 ~seed in
      let faults = Rt_fault.Collapse.collapsed_universe c in
      let ok = ref true in
      Array.iter
        (fun f ->
          match
            ( Rt_atpg.Dalg.generate ~backtrack_limit:50_000 c f,
              Podem.generate ~backtrack_limit:50_000 c f )
          with
          | (Rt_atpg.Dalg.Redundant, _), (Podem.Test _, _) -> ok := false
          | (Rt_atpg.Dalg.Test _, _), (Podem.Redundant, _) -> ok := false
          | _ -> ())
        faults;
      !ok)

let test_dalg_redundant_example () =
  let b = Rt_circuit.Builder.create ~fold:false ~prune:false () in
  let x = Rt_circuit.Builder.input b "x" in
  let nx = Rt_circuit.Builder.not_ b x in
  let zero = Rt_circuit.Builder.and2 b x nx in
  Rt_circuit.Builder.output b ~name:"y" (Rt_circuit.Builder.or2 b zero x);
  let c = Rt_circuit.Builder.finalize b in
  let node = Option.get (Netlist.find c (Netlist.name c zero)) in
  let verdict, _ =
    Rt_atpg.Dalg.generate c { Rt_fault.Fault.site = Rt_fault.Fault.Stem node; stuck = false }
  in
  check Alcotest.bool "s-a-0 on constant proven redundant" true (verdict = Rt_atpg.Dalg.Redundant)

(* --- TPG flow ------------------------------------------------------------------------ *)

let test_tpg_covers_s1 () =
  let c = Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let r = Tpg.generate c faults in
  check Alcotest.int "all covered" (Array.length faults) r.Tpg.detected;
  check Alcotest.int "no redundant in s1" 0 (Array.length r.Tpg.redundant);
  (* The test set must actually achieve full coverage under simulation. *)
  let batches = ref (Rt_sim.Pattern.of_vectors r.Tpg.tests) in
  let source () =
    match !batches with
    | [] -> Alcotest.fail "exhausted"
    | b :: rest ->
      batches := rest;
      b
  in
  let stats =
    Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns:(Array.length r.Tpg.tests)
  in
  check (Alcotest.float 1e-9) "simulated coverage 100%" 1.0 (Rt_sim.Fault_sim.coverage stats)

let test_tpg_compaction_no_loss () =
  let c = Generators.c432ish () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let full = Tpg.generate ~compact:false c faults in
  let compact = Tpg.generate ~compact:true c faults in
  check Alcotest.int "same detection" full.Tpg.detected compact.Tpg.detected;
  check Alcotest.bool "compaction does not grow the set" true
    (Array.length compact.Tpg.tests <= Array.length full.Tpg.tests)

let test_prune_redundant () =
  let c = Generators.s2_divider ~width:6 () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let kept, redundant = Tpg.prune_redundant ~backtrack_limit:5_000 c faults in
  check Alcotest.int "partition of the universe" (Array.length faults)
    (Array.length kept + Array.length redundant);
  check Alcotest.bool "divider has redundancy" true (Array.length redundant > 0);
  (* Spot check: each proven-redundant fault is indeed undetectable per BDD. *)
  Array.iteri
    (fun i f ->
      if i mod 5 = 0 then begin
        let inj = Rt_testability.Detect.injection f in
        match Rt_bdd.Bdd_circuit.detection_function c inj with
        | None -> ()
        | Some (_, det, _) ->
          if not (Rt_bdd.Bdd.is_zero det) then
            Alcotest.failf "%s wrongly proven redundant" (Rt_fault.Fault.to_string c f)
      end)
    redundant

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "rt_atpg"
    [ ( "tristate",
        [ Alcotest.test_case "refines bool" `Quick test_tristate_refines_bool;
          Alcotest.test_case "controlling through X" `Quick test_tristate_controlling_through_x;
          Alcotest.test_case "monotone" `Quick test_tristate_monotone ] );
      ( "podem",
        [ Alcotest.test_case "sound on s1" `Quick test_podem_sound_s1;
          Alcotest.test_case "sound on c432ish" `Quick test_podem_sound_c432;
          Alcotest.test_case "sound on c1908ish" `Quick test_podem_sound_c1908;
          q podem_vs_bdd_qcheck;
          Alcotest.test_case "redundancy example" `Quick test_podem_redundant_example;
          Alcotest.test_case "test cube" `Quick test_podem_cube;
          Alcotest.test_case "abort at limit" `Quick test_podem_aborts_on_limit ] );
      ( "d-algorithm",
        [ Alcotest.test_case "sound on c432ish" `Quick test_dalg_sound_c432;
          Alcotest.test_case "sound on c1908ish" `Quick test_dalg_sound_c1908;
          q dalg_vs_bdd_qcheck;
          q dalg_vs_podem_qcheck;
          Alcotest.test_case "redundancy example" `Quick test_dalg_redundant_example ] );
      ( "tpg",
        [ Alcotest.test_case "covers s1" `Quick test_tpg_covers_s1;
          Alcotest.test_case "compaction lossless" `Quick test_tpg_compaction_no_loss;
          Alcotest.test_case "prune redundant" `Quick test_prune_redundant ] ) ]
