(* Self test of the paper's S1 comparator: the full on-chip dataflow.

   The optimizer's weights are quantised onto the 1/16 hardware grid, a
   weighting network biases the LFSR stream, and a MISR compacts the
   responses.  Coverage is compared against an unweighted session of the
   same length — the motivating scenario of the paper (a self test that
   "needs less than 1 sec test time" instead of hours).

   Run with: dune exec examples/comparator_selftest.exe *)

let () =
  let c = Rt_circuit.Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  Format.printf "S1: %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);

  (* Optimize for the LFSR-realisable dyadic grid straight away. *)
  let oracle =
    Rt_testability.Detect.make
      (Rt_testability.Detect.Bdd_exact { node_limit = 2_000_000 })
      c faults
  in
  let options =
    { Rt_optprob.Optimize.default_options with
      Rt_optprob.Optimize.quantize = Rt_optprob.Optimize.Dyadic 4 }
  in
  let report = Rt_optprob.Optimize.run ~options oracle in
  Format.printf "optimized N: %.2e (from %.2e)@." report.Rt_optprob.Optimize.n_final
    report.Rt_optprob.Optimize.n_initial;

  let n_patterns = 8192 in
  let session weights =
    let cfg =
      { (Rt_bist.Selftest.default_config c ~weights) with Rt_bist.Selftest.n_patterns }
    in
    Rt_bist.Selftest.run c faults cfg
  in
  let uniform = Array.make 48 0.5 in
  let conv = session uniform in
  let opt = session report.Rt_optprob.Optimize.weights in
  Format.printf "@.%d-pattern BIST session (32-bit LFSR, 4-bit weighting, MISR):@." n_patterns;
  Format.printf "  conventional: signature %016Lx coverage %.1f%% (aliased %d)@."
    conv.Rt_bist.Selftest.golden
    (100.0 *. conv.Rt_bist.Selftest.coverage)
    conv.Rt_bist.Selftest.aliased;
  Format.printf "  weighted:     signature %016Lx coverage %.1f%% (aliased %d)@."
    opt.Rt_bist.Selftest.golden
    (100.0 *. opt.Rt_bist.Selftest.coverage)
    opt.Rt_bist.Selftest.aliased;

  (* The weighting network that would sit between LFSR and inputs. *)
  let net = Rt_bist.Weighting.design ~bits:4 report.Rt_optprob.Optimize.weights in
  Format.printf "@.weighting network: grid 1/16, max quantisation error %.3f@."
    (Rt_bist.Weighting.quantisation_error net);
  Format.printf "LFSR bits consumed per pattern: %d@."
    (Array.fold_left ( + ) 0 net.Rt_bist.Weighting.levels)
