examples/comparator_selftest.ml: Array Format Rt_bist Rt_circuit Rt_fault Rt_optprob Rt_testability
