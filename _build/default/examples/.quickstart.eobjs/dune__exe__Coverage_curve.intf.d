examples/coverage_curve.mli:
