examples/comparator_selftest.mli:
