examples/divider_weights.mli:
