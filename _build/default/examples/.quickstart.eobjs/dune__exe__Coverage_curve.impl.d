examples/coverage_curve.ml: Array Float Format List Rt_circuit Rt_fault Rt_optprob Rt_sim Rt_testability Rt_util String
