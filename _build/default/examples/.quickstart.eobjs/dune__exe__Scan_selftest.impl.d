examples/scan_selftest.ml: Array Float Format Int64 Rt_circuit Rt_fault Rt_optprob Rt_scan Rt_testability
