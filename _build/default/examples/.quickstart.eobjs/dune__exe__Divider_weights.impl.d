examples/divider_weights.ml: Array Format Rt_atpg Rt_circuit Rt_fault Rt_optprob Rt_repro Rt_sim Rt_testability Rt_util
