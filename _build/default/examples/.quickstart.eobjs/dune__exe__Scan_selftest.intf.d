examples/scan_selftest.mli:
