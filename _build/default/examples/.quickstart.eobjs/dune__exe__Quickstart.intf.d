examples/quickstart.mli:
