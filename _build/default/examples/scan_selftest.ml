(* The paper's deployment context, end to end: a sequential circuit under
   full scan.  "The most widely used self test techniques configure the
   circuit registers to linear feedback shift registers" — so the
   multiply-accumulate unit's flops join a scan chain and the optimizer
   works on the combinational core, where the scan bits are inputs too and
   get their own weights.

   This circuit also demonstrates the paper's §5.3 limit case in the wild:
   its accumulator-zero (wide NOR) and accumulator-max (wide AND) status
   flags want opposite extremes of the same scan weights, so a single
   distribution stalls — and the fault-set partitioning the paper proposes
   fixes it with two shorter sessions.

   Run with: dune exec examples/scan_selftest.exe *)

module Seq = Rt_scan.Seq_netlist
module Scan = Rt_scan.Scan_chain

let () =
  let m = Rt_scan.Seq_generators.mac ~width:6 () in
  let chain = Scan.insert m in
  let core = Seq.core m in
  Format.printf "MAC: %d primary inputs, %d flops in the scan chain@." (Seq.n_inputs m)
    (Seq.n_flops m);
  Format.printf "combinational core: %t@." (fun ppf -> Rt_circuit.Netlist.stats core ppf);

  let faults = Rt_fault.Collapse.collapsed_universe core in
  let oracle =
    Rt_testability.Detect.make
      (Rt_testability.Detect.Bdd_exact { node_limit = 1_000_000 })
      core faults
  in
  let options =
    { Rt_optprob.Optimize.default_options with
      Rt_optprob.Optimize.quantize = Rt_optprob.Optimize.Dyadic 4 }
  in
  let single = Rt_optprob.Optimize.run ~options oracle in
  Format.printf
    "@.single distribution: N %.2e -> %.2e — the acc_zero/acc_max conflict blocks it@."
    single.Rt_optprob.Optimize.n_initial single.Rt_optprob.Optimize.n_final;

  (* §5.3: partition the fault set and optimize each part separately. *)
  let sp = Rt_optprob.Partition.split ~options oracle in
  Format.printf "partitioned (%d parts): per-part N =" (Array.length sp.Rt_optprob.Partition.groups);
  Array.iter (fun n -> Format.printf " %.2e" n) sp.Rt_optprob.Partition.n_parts;
  Format.printf ", total %.2e (single needed %.2e)@." sp.Rt_optprob.Partition.n_total
    sp.Rt_optprob.Partition.n_single;

  (* Run the BIST sessions: one unweighted; one weighted-single; the
     partitioned pair with the same total test budget. *)
  let n_tests = 2048 in
  let session ?(tests = n_tests) ?(seed = 0xACE1L) weights =
    let cfg =
      { (Scan.default_config chain ~weights) with Scan.n_tests = tests; Scan.lfsr_seed = seed }
    in
    Scan.run chain faults cfg
  in
  let n_core = Array.length (Rt_circuit.Netlist.inputs core) in
  let conv = session (Array.make n_core 0.5) in
  let opt1 = session single.Rt_optprob.Optimize.weights in
  let parts =
    Array.mapi
      (fun i w ->
        session ~tests:(n_tests / Array.length sp.Rt_optprob.Partition.weights)
          ~seed:(Int64.of_int (0xACE1 + i))
          w)
      sp.Rt_optprob.Partition.weights
  in
  let combined = Array.make (Array.length faults) false in
  Array.iter
    (fun (oc : Scan.outcome) ->
      Array.iteri (fun i d -> if d then combined.(i) <- true) oc.Scan.detected)
    parts;
  let combined_cov =
    Float.of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 combined)
    /. Float.of_int (Array.length faults)
  in
  Format.printf "@.test-per-scan BIST, %d tests total:@." n_tests;
  Format.printf "  unweighted:            %.1f%%@." (100.0 *. conv.Scan.coverage);
  Format.printf "  one distribution:      %.1f%%@." (100.0 *. opt1.Scan.coverage);
  Format.printf "  two sessions (sec 5.3): %.1f%%@." (100.0 *. combined_cov)
