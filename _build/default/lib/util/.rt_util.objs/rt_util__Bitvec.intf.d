lib/util/bitvec.mli: Rng
