lib/util/rng.mli:
