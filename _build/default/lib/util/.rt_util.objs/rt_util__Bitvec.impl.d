lib/util/bitvec.ml: Array Int64 Rng String
