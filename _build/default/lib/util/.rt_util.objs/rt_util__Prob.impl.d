lib/util/prob.ml: Array Float Format
