lib/util/prob.mli: Format
