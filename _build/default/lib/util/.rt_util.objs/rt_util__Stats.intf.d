lib/util/stats.mli:
