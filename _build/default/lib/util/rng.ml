type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into state words, the
   recommended seeding procedure for xoshiro. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x5851F42D)

let float t =
  (* 53 high bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n land (n - 1) = 0 then Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (n - 1)))
  else begin
    (* Rejection sampling on 62 bits to avoid modulo bias. *)
    let mask = 0x3FFFFFFFFFFFFFFF in
    let bound = mask - (mask mod n) in
    let rec draw () =
      let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      if x >= bound then draw () else x mod n
    in
    draw ()
  end

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t < p

(* Bit-sliced biased word: write p in binary as 0.b1 b2 ... b30; starting
   from the least significant considered bit, fold fair words w with
   acc <- (acc AND w) when b=0 and acc <- (acc OR w) ... actually the
   standard recurrence processes bits from LSB to MSB of the expansion:
   acc := if b then acc OR w else acc AND w, starting with acc = 0, yields
   each bit of acc being 1 with probability exactly 0.b1...bk. *)
let biased_word t p =
  if p <= 0.0 then 0L
  else if p >= 1.0 then -1L
  else if p = 0.5 then bits64 t
  else begin
    let bits = 30 in
    let scaled = Float.to_int (Float.round (p *. Float.of_int (1 lsl bits))) in
    let scaled = if scaled <= 0 then 1 else if scaled >= 1 lsl bits then (1 lsl bits) - 1 else scaled in
    let acc = ref 0L in
    for i = 0 to bits - 1 do
      let b = (scaled lsr i) land 1 = 1 in
      let w = bits64 t in
      if b then acc := Int64.logor !acc w else acc := Int64.logand !acc w
    done;
    !acc
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
