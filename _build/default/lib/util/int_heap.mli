(** Binary min-heap of non-negative ints.

    Drives event-driven fault propagation: nodes are popped in ascending
    topological id, so every fanin is final when a gate is re-evaluated. *)

type t

val create : unit -> t
val is_empty : t -> bool
val push : t -> int -> unit
val pop : t -> int
(** Raises [Not_found] when empty. *)

val clear : t -> unit
