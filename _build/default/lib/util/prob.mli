(** Probability arithmetic helpers.

    Signal and detection probabilities live in [0,1] but the optimizer needs
    them clamped away from the boundary (paper Lemma 2: a weight of exactly 0
    or 1 makes an input stuck-at fault undetectable), quantised onto hardware
    grids, and combined in the log domain to avoid underflow when test
    lengths reach 10^11. *)

val clamp : ?lo:float -> ?hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [lo,hi]; defaults [lo=0.] [hi=1.]. *)

val interior : float -> float -> float
(** [interior eps x] clamps [x] to [eps, 1-eps]. *)

val quantize : grid:float -> float -> float
(** [quantize ~grid x] rounds to the nearest multiple of [grid] inside
    [grid, 1-grid]; the paper's appendix uses [grid=0.05]. *)

val quantize_dyadic : bits:int -> float -> float
(** [quantize_dyadic ~bits x] rounds to the nearest [k/2^bits] inside the
    open interval, the grid realisable by an LFSR weighting network of depth
    [bits]. *)

val complement_product : float array -> float
(** [complement_product ps] is [1 - prod (1 - p_i)], computed stably — the
    probability that at least one independent event occurs. *)

val log1mexp : float -> float
(** [log1mexp x] is [log (1 - exp x)] for [x < 0], computed stably. *)

val detection_confidence : n:float -> float array -> float
(** [detection_confidence ~n pfs] is paper eq. (1):
    [prod_f (1 - (1-p_f)^n)], the probability that [n] random patterns
    detect every fault; evaluated in the log domain. *)

val escape_exponent : n:float -> float -> float
(** [escape_exponent ~n p] is [n * log (1-p)], i.e. [log ((1-p)^n)], the log
    of one fault's escape probability; [-infinity] when [p = 1]. *)

val pp : Format.formatter -> float -> unit
(** Prints a probability with adaptive precision (scientific when tiny). *)
