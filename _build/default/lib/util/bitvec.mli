(** Packed bit vectors over 64-bit words.

    The fault simulator and pattern generators manipulate one bit per test
    pattern; packing 64 patterns per word is what makes parallel-pattern
    fault simulation fast.  Width is fixed at creation; the trailing partial
    word is kept masked so [popcount]/[equal] are exact. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val words : t -> int64 array
(** Underlying storage, exposed for word-at-a-time kernels.  The last word's
    unused high bits are guaranteed zero as long as mutation goes through
    this module; callers writing words directly must call {!mask_tail}. *)

val word_count : t -> int

val mask_tail : t -> unit
(** Zero the unused high bits of the final word after raw word writes. *)

val popcount : t -> int
val equal : t -> t -> bool
val copy : t -> t
val fill_random : Rng.t -> float -> t -> unit
(** [fill_random rng p v] sets every bit of [v] independently to 1 with
    probability [p]. *)

val to_string : t -> string
(** Bit [0] first, e.g. ["1010"]. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on non-['0'/'1']. *)

val iter_ones : t -> (int -> unit) -> unit
(** [iter_ones v f] calls [f i] for each set bit index, ascending. *)
