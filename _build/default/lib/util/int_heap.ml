type t = { mutable a : int array; mutable n : int }

let create () = { a = Array.make 64 0; n = 0 }

let is_empty h = h.n = 0

let push h x =
  if h.n >= Array.length h.a then begin
    let a' = Array.make (2 * Array.length h.a) 0 in
    Array.blit h.a 0 a' 0 h.n;
    h.a <- a'
  end;
  let i = ref h.n in
  h.n <- h.n + 1;
  h.a.(!i) <- x;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.a.(parent) > h.a.(!i) then begin
      let tmp = h.a.(parent) in
      h.a.(parent) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.n = 0 then raise Not_found;
  let top = h.a.(0) in
  h.n <- h.n - 1;
  if h.n > 0 then begin
    h.a.(0) <- h.a.(h.n);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && h.a.(l) < h.a.(!smallest) then smallest := l;
      if r < h.n && h.a.(r) < h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let clear h = h.n <- 0
