(** Small descriptive-statistics helpers used by benches and reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val quantile : float -> float array -> float
(** [quantile q a] with [q] in [0,1]; linear interpolation on the sorted
    copy of [a].  Raises [Invalid_argument] on an empty array. *)

val geometric_steps : lo:int -> hi:int -> per_decade:int -> int list
(** [geometric_steps ~lo ~hi ~per_decade] is an increasing list of integers
    from [lo] to [hi] roughly geometrically spaced, deduplicated, always
    containing both endpoints — the sample points of coverage curves. *)

type timer
(** Wall-clock stopwatch. *)

val timer_start : unit -> timer
val timer_elapsed : timer -> float
(** Elapsed seconds since [timer_start]. *)
