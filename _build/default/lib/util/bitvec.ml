type t = { n : int; w : int64 array }

let create n =
  if n < 0 then invalid_arg "Bitvec.create";
  { n; w = Array.make ((n + 63) / 64) 0L }

let length t = t.n
let word_count t = Array.length t.w
let words t = t.w

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec.get";
  Int64.logand (Int64.shift_right_logical t.w.(i lsr 6) (i land 63)) 1L <> 0L

let set t i b =
  if i < 0 || i >= t.n then invalid_arg "Bitvec.set";
  let w = i lsr 6 and m = Int64.shift_left 1L (i land 63) in
  if b then t.w.(w) <- Int64.logor t.w.(w) m
  else t.w.(w) <- Int64.logand t.w.(w) (Int64.lognot m)

let mask_tail t =
  let rem = t.n land 63 in
  if rem <> 0 && Array.length t.w > 0 then begin
    let last = Array.length t.w - 1 in
    let mask = Int64.sub (Int64.shift_left 1L rem) 1L in
    t.w.(last) <- Int64.logand t.w.(last) mask
  end

(* SWAR popcount. *)
let popcount_64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let popcount t =
  let c = ref 0 in
  for i = 0 to Array.length t.w - 1 do
    c := !c + popcount_64 t.w.(i)
  done;
  !c

let equal a b =
  a.n = b.n && Array.for_all2 (fun x y -> Int64.equal x y) a.w b.w

let copy t = { n = t.n; w = Array.copy t.w }

let fill_random rng p t =
  for i = 0 to Array.length t.w - 1 do
    t.w.(i) <- Rng.biased_word rng p
  done;
  mask_tail t

let to_string t = String.init t.n (fun i -> if get t i then '1' else '0')

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set t i true
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string")
    s;
  t

let iter_ones t f =
  for wi = 0 to Array.length t.w - 1 do
    let w = ref t.w.(wi) in
    while !w <> 0L do
      let lsb = Int64.logand !w (Int64.neg !w) in
      let bit = ref 0 and x = ref lsb in
      while Int64.compare !x 1L <> 0 do
        x := Int64.shift_right_logical !x 1;
        incr bit
      done;
      f ((wi lsl 6) + !bit);
      w := Int64.logxor !w lsb
    done
  done
