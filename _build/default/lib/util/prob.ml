let clamp ?(lo = 0.0) ?(hi = 1.0) x = if x < lo then lo else if x > hi then hi else x

let interior eps x = clamp ~lo:eps ~hi:(1.0 -. eps) x

let quantize ~grid x =
  if grid <= 0.0 || grid >= 0.5 then invalid_arg "Prob.quantize: grid must be in ]0,0.5[";
  let q = Float.round (x /. grid) *. grid in
  clamp ~lo:grid ~hi:(1.0 -. grid) q

let quantize_dyadic ~bits x =
  if bits < 1 || bits > 30 then invalid_arg "Prob.quantize_dyadic";
  let denom = Float.of_int (1 lsl bits) in
  let k = Float.round (x *. denom) in
  let k = clamp ~lo:1.0 ~hi:(denom -. 1.0) k in
  k /. denom

let complement_product ps =
  (* 1 - prod(1-p) = -expm1(sum log1p(-p)) *)
  let s = Array.fold_left (fun acc p -> acc +. Float.log1p (-.clamp p)) 0.0 ps in
  -.Float.expm1 s

let log1mexp x =
  (* Stable log(1 - e^x) for x < 0 (Maechler 2012). *)
  if x >= 0.0 then invalid_arg "Prob.log1mexp: argument must be negative";
  if x > -.Float.log 2.0 then Float.log (-.Float.expm1 x) else Float.log1p (-.Float.exp x)

let escape_exponent ~n p =
  let p = clamp p in
  if p >= 1.0 then Float.neg_infinity else n *. Float.log1p (-.p)

let detection_confidence ~n pfs =
  let log_conf = ref 0.0 in
  Array.iter
    (fun p ->
      let esc = escape_exponent ~n p in
      (* log (1 - (1-p)^n) = log1mexp esc, with esc <= 0. *)
      if esc >= 0.0 then log_conf := Float.neg_infinity
      else log_conf := !log_conf +. log1mexp esc)
    pfs;
  Float.exp !log_conf

let pp ppf x =
  if x = 0.0 || (x >= 0.001 && x <= 0.999) || x = 1.0 then Format.fprintf ppf "%.4f" x
  else Format.fprintf ppf "%.3e" x
