let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. Float.of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    s /. Float.of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let quantile q a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  let s = Array.copy a in
  Array.sort Float.compare s;
  let pos = q *. Float.of_int (n - 1) in
  let i = Float.to_int pos in
  let i = if i < 0 then 0 else if i >= n - 1 then n - 1 else i in
  let frac = pos -. Float.of_int i in
  if i = n - 1 then s.(n - 1) else s.(i) +. (frac *. (s.(i + 1) -. s.(i)))

let geometric_steps ~lo ~hi ~per_decade =
  if lo < 1 || hi < lo || per_decade < 1 then invalid_arg "Stats.geometric_steps";
  let ratio = 10.0 ** (1.0 /. Float.of_int per_decade) in
  let rec collect acc x =
    let xi = Float.to_int (Float.round x) in
    if xi >= hi then List.rev (hi :: acc)
    else begin
      let acc = match acc with h :: _ when h = xi -> acc | _ -> xi :: acc in
      collect acc (x *. ratio)
    end
  in
  collect [] (Float.of_int lo)

type timer = float

let timer_start () = Unix.gettimeofday ()
let timer_elapsed t = Unix.gettimeofday () -. t
