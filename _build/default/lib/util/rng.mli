(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the library flows through this module so that
    every experiment is reproducible bit-for-bit from a seed.  The generator
    is xoshiro256** seeded through splitmix64, which has full 2^256-1 period
    and passes BigCrush; quality matters here because weighted random testing
    draws billions of biased bits. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed] by running
    splitmix64 to fill the four 64-bit state words. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]; used to give parallel components their own streams. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output word. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1].  [n] must be positive; draws are
    rejection-sampled so the result is exactly uniform. *)

val float : t -> float
(** [float t] is uniform in [0,1) with 53-bit resolution. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val biased_word : t -> float -> int64
(** [biased_word t p] is a 64-bit word whose bits are independent Bernoulli(p)
    draws.  Implemented by comparing 64 uniform draws against [p] would cost
    64 floats; instead we use the bit-slicing trick: the binary expansion of
    [p] selects a tree of AND/OR combinations of fair random words, giving
    exact probability [p] when [p] is a dyadic rational with <= 30 bits and
    an approximation within 2^-30 otherwise. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place uniformly (Fisher-Yates). *)
