module Netlist = Rt_circuit.Netlist

type config = {
  weights : float array;
  weight_bits : int;
  lfsr_width : int;
  lfsr_seed : int64;
  misr_seed : int64;
  n_patterns : int;
}

let default_config c ~weights =
  ignore c;
  { weights;
    weight_bits = 4;
    lfsr_width = 32;
    lfsr_seed = 0xACE1L;
    misr_seed = 0L;
    n_patterns = 4096 }

type outcome = {
  golden : int64;
  detected : bool array;
  coverage : float;
  aliased : int;
}

(* At least 16 stages even for few-output circuits: a w-bit MISR aliases
   with probability ~2^-w, and 2^-3 would be unusable. *)
let misr_width c = min 64 (max 16 (Array.length (Netlist.outputs c)))

let output_word c vals =
  let outs = Netlist.outputs c in
  let n = min 64 (Array.length outs) in
  let w = ref 0L in
  for k = 0 to n - 1 do
    if vals.(outs.(k)) then w := Int64.logor !w (Int64.shift_left 1L k)
  done;
  !w

let session_source cfg =
  let lfsr = Lfsr.create ~width:cfg.lfsr_width cfg.lfsr_seed in
  let net = Weighting.design ~bits:cfg.weight_bits cfg.weights in
  (net, Weighting.source net lfsr)

let golden_signature c cfg =
  let lfsr = Lfsr.create ~width:cfg.lfsr_width cfg.lfsr_seed in
  let net = Weighting.design ~bits:cfg.weight_bits cfg.weights in
  let misr = Misr.create ~width:(misr_width c) cfg.misr_seed in
  for _ = 1 to cfg.n_patterns do
    let p = Weighting.generate_pattern net lfsr in
    let vals = Netlist.eval c p in
    Misr.absorb misr (output_word c vals)
  done;
  Misr.signature misr

(* Signature analysis is linear over GF(2): with the same seed and pattern
   stream, sig_faulty = sig_golden XOR M(d) where d is the stream of
   response differences and M the zero-seeded MISR transform.  So a fault
   escapes iff its difference stream is nonzero yet M(d) = 0 — a pure
   aliasing event.  This lets the PPSFP engine supply the differences and
   avoids n_faults full sequential simulations. *)
let run c faults cfg =
  let _, source = session_source cfg in
  let stats, responses =
    Rt_sim.Fault_sim.simulate_with_responses c faults ~source ~n_patterns:cfg.n_patterns
  in
  let width = misr_width c in
  let golden = golden_signature c cfg in
  let nf = Array.length faults in
  let detected = Array.make nf false in
  let aliased = ref 0 in
  for fi = 0 to nf - 1 do
    match responses.(fi) with
    | [] -> ()
    | diffs ->
      let misr = Misr.create ~width 0L in
      let t = ref 0 in
      List.iter
        (fun (idx, d) ->
          while !t < idx do
            Misr.absorb misr 0L;
            incr t
          done;
          Misr.absorb misr d;
          incr t)
        diffs;
      while !t < cfg.n_patterns do
        Misr.absorb misr 0L;
        incr t
      done;
      if Int64.equal (Misr.signature misr) 0L then incr aliased else detected.(fi) <- true
  done;
  ignore stats;
  let cov =
    if nf = 0 then 1.0
    else
      Float.of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 detected)
      /. Float.of_int nf
  in
  { golden; detected; coverage = cov; aliased = !aliased }
