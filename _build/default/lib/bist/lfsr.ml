type t = {
  w : int;
  taps : int list;  (* 1-based exponents *)
  mutable s : int64;
}

(* Primitive polynomial exponents (x^w + ... + 1); classic tables
   (Xilinx XAPP052 / Golomb). *)
let table =
  [ (2, [ 2; 1 ]);
    (3, [ 3; 2 ]);
    (4, [ 4; 3 ]);
    (5, [ 5; 3 ]);
    (6, [ 6; 5 ]);
    (7, [ 7; 6 ]);
    (8, [ 8; 6; 5; 4 ]);
    (9, [ 9; 5 ]);
    (10, [ 10; 7 ]);
    (11, [ 11; 9 ]);
    (12, [ 12; 6; 4; 1 ]);
    (13, [ 13; 4; 3; 1 ]);
    (14, [ 14; 5; 3; 1 ]);
    (15, [ 15; 14 ]);
    (16, [ 16; 15; 13; 4 ]);
    (17, [ 17; 14 ]);
    (18, [ 18; 11 ]);
    (19, [ 19; 6; 2; 1 ]);
    (20, [ 20; 17 ]);
    (21, [ 21; 19 ]);
    (22, [ 22; 21 ]);
    (23, [ 23; 18 ]);
    (24, [ 24; 23; 22; 17 ]);
    (25, [ 25; 22 ]);
    (26, [ 26; 6; 2; 1 ]);
    (27, [ 27; 5; 2; 1 ]);
    (28, [ 28; 25 ]);
    (29, [ 29; 27 ]);
    (30, [ 30; 6; 4; 1 ]);
    (31, [ 31; 28 ]);
    (32, [ 32; 22; 2; 1 ]);
    (64, [ 64; 63; 61; 60 ]) ]

let primitive_taps w = List.assoc_opt w table

let create ?taps ~width seed =
  if width < 2 || width > 64 then invalid_arg "Lfsr.create: width must be in 2..64";
  let taps =
    match taps with
    | Some t ->
      if List.exists (fun e -> e < 1 || e > width) t then invalid_arg "Lfsr.create: bad tap";
      t
    | None ->
      (match primitive_taps width with
       | Some t -> t
       | None -> invalid_arg "Lfsr.create: no primitive polynomial known for this width")
  in
  let mask = if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L in
  let s = Int64.logand seed mask in
  let s = if Int64.equal s 0L then 1L else s in
  { w = width; taps; s }

let width t = t.w
let state t = t.s

let step t =
  (* With register bit i holding sequence element s_{n+i}, the polynomial
     x^w + sum x^e + 1 gives the recurrence
     s_{n+w} = s_n XOR sum_e s_{n+e}: feedback = b_0 (the constant term)
     XOR the middle-exponent stages; it enters at the top as bit 0 shifts
     out. *)
  let out = Int64.logand t.s 1L <> 0L in
  let fb =
    List.fold_left
      (fun acc e ->
        if e = t.w then acc
        else acc <> (Int64.logand (Int64.shift_right_logical t.s e) 1L <> 0L))
      out t.taps
  in
  let s' = Int64.shift_right_logical t.s 1 in
  t.s <- (if fb then Int64.logor s' (Int64.shift_left 1L (t.w - 1)) else s');
  out

let step_word t k =
  if k < 0 || k > 64 then invalid_arg "Lfsr.step_word";
  let acc = ref 0L in
  for i = 0 to k - 1 do
    if step t then acc := Int64.logor !acc (Int64.shift_left 1L i)
  done;
  !acc

let period ?(max_steps = 1 lsl 22) t =
  let probe = { t with s = t.s } in
  let start = probe.s in
  let rec go n =
    if n > max_steps then None
    else begin
      ignore (step probe);
      if Int64.equal probe.s start then Some n else go (n + 1)
    end
  in
  go 1
