(** Weighting networks: realising biased input probabilities from the fair
    bit stream of an LFSR.

    Hardware weights are dyadic: ANDing [k] fair bits gives probability
    [2^-k], OR/AND trees reach any [m/2^bits].  [design] quantises the
    optimizer's weights onto that grid (the realisability loss shows up as
    a slightly longer test, which the benches measure); [source] turns a
    network plus an LFSR into a pattern stream. *)

type network = {
  bits : int;  (** tree depth: grid is [1/2^bits] *)
  requested : float array;  (** the weights asked for *)
  realised : float array;  (** the dyadic weights actually produced *)
  levels : int array;
      (** per input: number of fresh LFSR bits consumed per pattern *)
}

val design : ?bits:int -> float array -> network
(** Default [bits = 4] (grid 1/16, typical of weighted-pattern BIST). *)

val quantisation_error : network -> float
(** Largest [|requested - realised|]. *)

val generate_pattern : network -> Lfsr.t -> bool array
(** One pattern, consuming LFSR bits (bit-serial, as the hardware would). *)

val source : network -> Lfsr.t -> Rt_sim.Pattern.source
(** Batched stream for the simulators. *)
