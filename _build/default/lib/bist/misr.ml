type t = {
  w : int;
  poly : int64;  (* Galois feedback mask *)
  mask : int64;
  mutable s : int64;
}

let poly_of_taps w taps =
  (* Exponents -> bit mask over stages 0..w-1 (exponent w is the implicit
     monic term). *)
  List.fold_left
    (fun acc e -> if e = w then acc else Int64.logor acc (Int64.shift_left 1L e))
    1L taps

let create ?taps ~width seed =
  if width < 2 || width > 64 then invalid_arg "Misr.create: width must be in 2..64";
  let taps =
    match taps with
    | Some t -> t
    | None ->
      (match Lfsr.primitive_taps width with
       | Some t -> t
       | None -> invalid_arg "Misr.create: no primitive polynomial known for this width")
  in
  let mask = if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L in
  { w = width; poly = Int64.logand (poly_of_taps width taps) mask; mask; s = Int64.logand seed mask }

let absorb t word =
  let msb = Int64.logand (Int64.shift_right_logical t.s (t.w - 1)) 1L in
  let shifted = Int64.logand (Int64.shift_left t.s 1) t.mask in
  let fb = if Int64.equal msb 1L then t.poly else 0L in
  t.s <- Int64.logand (Int64.logxor (Int64.logxor shifted fb) (Int64.logand word t.mask)) t.mask

let signature t = t.s

let reset t ~seed = t.s <- Int64.logand seed t.mask

let aliasing_probability ~width = 2.0 ** Float.of_int (-width)
