(** Linear feedback shift registers — the on-chip pattern source.

    The paper's motivation is self test: "the application of those patterns
    needs no expensive test equipment, since it can be done by linear
    feedback shift registers during self test".  Fibonacci-configuration
    LFSRs with primitive feedback polynomials give maximal period
    [2^width - 1]. *)

type t

val primitive_taps : int -> int list option
(** Known primitive-polynomial tap positions (1-based, the polynomial
    exponents) for widths 2..32 and 64. *)

val create : ?taps:int list -> width:int -> int64 -> t
(** [create ~width seed] uses {!primitive_taps}; raises
    [Invalid_argument] for widths without a table entry unless [taps] is
    given.  A zero seed is silently replaced by 1 (the all-zero state is a
    fixed point). *)

val width : t -> int
val state : t -> int64

val step : t -> bool
(** Advance one cycle; returns the output bit (the stage shifted out). *)

val step_word : t -> int -> int64
(** [step_word t k] packs the next [k] output bits (bit 0 = first). *)

val period : ?max_steps:int -> t -> int option
(** Cycle length from the current state, or [None] if beyond [max_steps]
    (default 1 lsl 22).  For primitive taps this is [2^width - 1]. *)
