type network = {
  bits : int;
  requested : float array;
  realised : float array;
  levels : int array;
}

let design ?(bits = 4) requested =
  if bits < 1 || bits > 16 then invalid_arg "Weighting.design: bits must be in 1..16";
  let denom = 1 lsl bits in
  let quantise w =
    let k = Float.to_int (Float.round (w *. Float.of_int denom)) in
    let k = if k < 1 then 1 else if k >= denom then denom - 1 else k in
    k
  in
  let ks = Array.map quantise requested in
  let realised = Array.map (fun k -> Float.of_int k /. Float.of_int denom) ks in
  (* The OR/AND chain consumes one fair bit per binary digit of the weight;
     trailing zeros of k (a coarser dyadic) shorten the chain. *)
  let trailing_zeros k =
    let rec go k acc = if k land 1 = 1 then acc else go (k lsr 1) (acc + 1) in
    go k 0
  in
  let levels = Array.map (fun k -> bits - trailing_zeros k) ks in
  { bits; requested = Array.copy requested; realised; levels }

let quantisation_error n =
  let worst = ref 0.0 in
  Array.iteri
    (fun i r -> worst := Float.max !worst (Float.abs (r -. n.requested.(i))))
    n.realised;
  !worst

(* The chain acc := b_j ? acc OR r : acc AND r over the binary digits of
   the realised weight, LSB-significant first — same recurrence as
   Rng.biased_word, but fed from the LFSR like the real network. *)
let weighted_bit net lfsr i =
  let denom = 1 lsl net.bits in
  let k = Float.to_int (Float.round (net.realised.(i) *. Float.of_int denom)) in
  let rec strip k m = if k land 1 = 0 then strip (k lsr 1) (m - 1) else (k, m) in
  let k, nbits = strip k net.bits in
  let acc = ref false in
  for j = 0 to nbits - 1 do
    let b = (k lsr j) land 1 = 1 in
    let r = Lfsr.step lfsr in
    acc := if b then !acc || r else !acc && r
  done;
  !acc

let generate_pattern net lfsr = Array.init (Array.length net.realised) (weighted_bit net lfsr)

let source net lfsr () =
  let n_inputs = Array.length net.realised in
  let bits = Array.make n_inputs 0L in
  for lane = 0 to 63 do
    for i = 0 to n_inputs - 1 do
      if weighted_bit net lfsr i then bits.(i) <- Int64.logor bits.(i) (Int64.shift_left 1L lane)
    done
  done;
  { Rt_sim.Pattern.n_inputs; n_patterns = 64; bits }
