(** A complete BILBO-style self-test session.

    Mirrors the module of [Wu86]/[Wu87] referenced in §5.2: a weighted
    LFSR pattern source drives the circuit under test, a MISR compacts the
    responses, and the final signature is compared against the fault-free
    golden value.  Everything is combinational-circuit simulation here, but
    the dataflow is exactly the on-chip one, including the dyadic weight
    quantisation. *)

type config = {
  weights : float array;  (** per-input probabilities (pre-quantisation) *)
  weight_bits : int;  (** weighting-network depth *)
  lfsr_width : int;
  lfsr_seed : int64;
  misr_seed : int64;
  n_patterns : int;
}

val default_config : Rt_circuit.Netlist.t -> weights:float array -> config
(** 32-bit LFSR, 4-bit weighting, MISR width = min(#outputs, 32),
    4096 patterns. *)

type outcome = {
  golden : int64;  (** fault-free signature *)
  detected : bool array;  (** per fault: signature mismatch observed *)
  coverage : float;
  aliased : int;
      (** faults whose responses differed somewhere but whose signature
          still matched — MISR aliasing events *)
}

val golden_signature : Rt_circuit.Netlist.t -> config -> int64

val run : Rt_circuit.Netlist.t -> Rt_fault.Fault.t array -> config -> outcome
(** Runs the full session once per fault (bit-serial, faithful to the
    hardware; cost is [n_faults * n_patterns] circuit evaluations — size
    the experiment accordingly). *)
