(** Multiple-input signature register: response compaction for self test.

    Each cycle the circuit's output vector is XORed into a Galois-mode
    LFSR; after the test the final state (signature) is compared against
    the fault-free golden value.  A faulty response escapes only on
    aliasing, probability about [2^-width]. *)

type t

val create : ?taps:int list -> width:int -> int64 -> t
(** Width 2..64; taps as in {!Lfsr.create}. *)

val absorb : t -> int64 -> unit
(** Feed one cycle's output vector (low [width] bits used). *)

val signature : t -> int64
val reset : t -> seed:int64 -> unit

val aliasing_probability : width:int -> float
(** The asymptotic escape probability [2^-width]. *)
