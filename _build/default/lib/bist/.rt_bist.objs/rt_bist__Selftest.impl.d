lib/bist/selftest.ml: Array Float Int64 Lfsr List Misr Rt_circuit Rt_sim Weighting
