lib/bist/lfsr.mli:
