lib/bist/misr.mli:
