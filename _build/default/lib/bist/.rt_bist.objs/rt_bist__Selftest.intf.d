lib/bist/selftest.mli: Rt_circuit Rt_fault
