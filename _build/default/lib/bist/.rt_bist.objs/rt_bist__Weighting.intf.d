lib/bist/weighting.mli: Lfsr Rt_sim
