lib/bist/misr.ml: Float Int64 Lfsr List
