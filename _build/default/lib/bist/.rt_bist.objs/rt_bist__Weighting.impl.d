lib/bist/weighting.ml: Array Float Int64 Lfsr Rt_sim
