lib/bist/lfsr.ml: Int64 List
