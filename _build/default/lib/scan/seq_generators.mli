(** Sequential demonstration circuits for the scan flow. *)

val mac : ?width:int -> unit -> Seq_netlist.t
(** Multiply-accumulate unit: [acc' = acc + a * b] with a [2*width]-bit
    accumulator register, [width]-bit operand inputs (default 6), the
    accumulator visible on the primary outputs plus an overflow sticky
    flag.  Multiplier plus adder datapath: plenty of reconvergence, deep
    carry chains, and — through the accumulator feedback — faults that are
    hard to reach without scan. *)

val decade_counter : unit -> Seq_netlist.t
(** A BCD decade counter with enable and synchronous clear, carry-out at
    9: a small control-dominated FSM. *)
