module Netlist = Rt_circuit.Netlist
module Builder = Rt_circuit.Builder
module Gate = Rt_circuit.Gate

type t = {
  core : Netlist.t;
  n_inputs : int;
  n_outputs : int;
  n_flops : int;
  flop_names : string array;
}

let core t = t.core
let n_inputs t = t.n_inputs
let n_outputs t = t.n_outputs
let n_flops t = t.n_flops
let flop_name t i = t.flop_names.(i)

type builder = {
  b : Builder.t;
  mutable real_input_names : string list;  (* reversed *)
  mutable flop_list : (string * Netlist.node * Netlist.node option ref) list;  (* reversed *)
  mutable n_outs : int;
}

let builder () = { b = Builder.create (); real_input_names = []; flop_list = []; n_outs = 0 }

let input sb name =
  let n = Builder.input sb.b name in
  sb.real_input_names <- name :: sb.real_input_names;
  n

let inputs sb prefix n = Array.init n (fun i -> input sb (Printf.sprintf "%s%d" prefix i))

let flop sb name =
  let q = Builder.input sb.b name in
  sb.flop_list <- (name, q, ref None) :: sb.flop_list;
  q

let flops sb prefix n = Array.init n (fun i -> flop sb (Printf.sprintf "%s%d" prefix i))

let connect sb q ~d =
  let rec find = function
    | [] -> invalid_arg "Seq_netlist.connect: not a flop Q"
    | (_, q', slot) :: rest -> if q' = q then slot := Some d else find rest
  in
  find sb.flop_list

let gate sb ?name kind fanin = Builder.gate sb.b ?name kind fanin
let comb sb = sb.b

let output sb ?name node =
  Builder.output sb.b ?name node;
  sb.n_outs <- sb.n_outs + 1

(* Rebuild a netlist with its input nodes moved to the front in the given
   order (inputs have no fanins, so any such permutation stays
   topological). *)
let reorder_inputs c desired_inputs =
  let n = Netlist.size c in
  let is_desired = Array.make n false in
  Array.iter (fun i -> is_desired.(i) <- true) desired_inputs;
  let order = Array.make n (-1) in
  let pos = ref 0 in
  Array.iter
    (fun i ->
      order.(!pos) <- i;
      incr pos)
    desired_inputs;
  for i = 0 to n - 1 do
    if not is_desired.(i) then begin
      order.(!pos) <- i;
      incr pos
    end
  done;
  let new_of_old = Array.make n (-1) in
  Array.iteri (fun new_id old_id -> new_of_old.(old_id) <- new_id) order;
  let kinds = Array.map (fun old_id -> Netlist.kind c old_id) order in
  let fanins =
    Array.map (fun old_id -> Array.map (fun f -> new_of_old.(f)) (Netlist.fanin c old_id)) order
  in
  let names = Array.map (fun old_id -> Netlist.name c old_id) order in
  let output_list = Array.to_list (Array.map (fun o -> new_of_old.(o)) (Netlist.outputs c)) in
  Netlist.make ~kinds ~fanins ~names ~output_list

let finalize sb =
  let flop_list = List.rev sb.flop_list in
  (* Pseudo-outputs: the D nets, appended after the real outputs. *)
  List.iter
    (fun (name, _, slot) ->
      match !slot with
      | None -> invalid_arg (Printf.sprintf "Seq_netlist.finalize: flop %s has no D" name)
      | Some d -> Builder.output sb.b ~name:(name ^ "_D") d)
    flop_list;
  let raw = Builder.finalize sb.b in
  (* Pruning may have shifted node ids; resolve the inputs by name and put
     real inputs first, flop Qs after. *)
  let find_input name =
    match Netlist.find raw name with
    | Some n -> n
    | None -> invalid_arg ("Seq_netlist.finalize: lost input " ^ name)
  in
  let real_names = List.rev sb.real_input_names in
  let flop_names = List.map (fun (name, _, _) -> name) flop_list in
  let desired =
    Array.of_list (List.map find_input (real_names @ flop_names))
  in
  let core = reorder_inputs raw desired in
  { core;
    n_inputs = List.length real_names;
    n_outputs = sb.n_outs;
    n_flops = List.length flop_names;
    flop_names = Array.of_list flop_names }

type state = bool array

let initial_state t = Array.make t.n_flops false

let step t s pis =
  if Array.length pis <> t.n_inputs then invalid_arg "Seq_netlist.step: input width";
  if Array.length s <> t.n_flops then invalid_arg "Seq_netlist.step: state width";
  let all_out = Netlist.eval_outputs t.core (Array.append pis s) in
  (Array.sub all_out 0 t.n_outputs, Array.sub all_out t.n_outputs t.n_flops)

let run t s seq =
  let state = ref s in
  let outs =
    List.map
      (fun pis ->
        let o, s' = step t !state pis in
        state := s';
        o)
      seq
  in
  (outs, !state)
