(** Full-scan test access and test-per-scan BIST sessions.

    Under full scan every flop joins a serial shift chain; a test applies
    primary-input values and a shifted-in state, captures one clock, and
    shifts the captured state out through a signature register while the
    next state shifts in.  With a fault-free chain this is {e exactly}
    combinational testing of the core with pseudo-inputs/outputs — the
    assumption the paper makes in its first paragraph — so weighted-pattern
    optimization applies to the core's full input vector, scan bits
    included. *)

type t

val insert : ?order:int array -> Seq_netlist.t -> t
(** Stitch the flops into a chain ([order] permutes them; default
    declaration order). *)

val seq : t -> Seq_netlist.t
val chain_length : t -> int

val scan_mode : t -> Seq_netlist.t
(** The physical scan view: a new sequential netlist with three extra
    ports — [scan_en], [scan_in] (new primary inputs, ordered after the
    original ones) and [scan_out] (a new primary output, ordered last).
    Every flop's D input becomes a mux: functional data when [scan_en] is
    low, the previous chain stage (or [scan_in]) when high.  The test
    suite proves the abstraction: shifting a state in serially and
    capturing one functional clock equals {!Seq_netlist.step} on the
    original. *)

val core_weights : t -> pi:float array -> scan:float array -> float array
(** Assemble the combinational-core weight vector from primary-input
    weights and per-chain-position scan weights. *)

type config = {
  weights : float array;  (** over the full core input vector *)
  weight_bits : int;
  lfsr_width : int;
  lfsr_seed : int64;
  misr_seed : int64;
  n_tests : int;
}

val default_config : t -> weights:float array -> config

type outcome = {
  golden : int64;
  detected : bool array;
  coverage : float;
  aliased : int;
}

val golden_signature : t -> config -> int64

val run : t -> Rt_fault.Fault.t array -> config -> outcome
(** Test-per-scan session over the core's stuck-at faults (the chain
    itself is assumed fault-free, as is standard).  The MISR observes the
    primary outputs and the captured state (which the chain shifts out),
    i.e. the full core response. *)
