module Gate = Rt_circuit.Gate
module Generators = Rt_circuit.Generators

let mac ?(width = 6) () =
  if width < 2 then invalid_arg "Seq_generators.mac";
  let sb = Seq_netlist.builder () in
  let b = Seq_netlist.comb sb in
  let a = Seq_netlist.inputs sb "a" width in
  let bb = Seq_netlist.inputs sb "b" width in
  let acc = Seq_netlist.flops sb "acc" (2 * width) in
  let ovf = Seq_netlist.flop sb "ovf" in
  (* a * b as an array multiplier (same cells as c6288ish). *)
  let zero = Rt_circuit.Builder.const b false in
  let pp i j = Rt_circuit.Builder.and2 b a.(i) bb.(j) in
  let h = ref (Array.append (Array.init width (fun i -> pp i 0)) [| zero |]) in
  let low = ref [] in
  for j = 1 to width - 1 do
    let row_sh = Array.append [| zero |] (Array.init width (fun i -> pp i j)) in
    let s, cout = Generators.ripple_adder b !h row_sh zero in
    low := s.(0) :: !low;
    h := Array.append (Array.sub s 1 width) [| cout |]
  done;
  let product =
    Array.of_list (List.rev !low @ Array.to_list !h)
  in
  (* product has 2*width bits (plus the top carry word bit). *)
  let product = Array.sub product 0 (2 * width) in
  let sums, carry = Generators.ripple_adder b acc product zero in
  Array.iteri (fun i q -> Seq_netlist.connect sb q ~d:sums.(i)) acc;
  (* Sticky overflow. *)
  Seq_netlist.connect sb ovf ~d:(Rt_circuit.Builder.or2 b ovf carry);
  Array.iteri
    (fun i q -> Seq_netlist.output sb ~name:(Printf.sprintf "o%d" i) q)
    acc;
  Seq_netlist.output sb ~name:"overflow" ovf;
  (* Status flags over the wide accumulator: the random-resistant cones
     that make scan weighting worthwhile (2^-2w events unweighted, but the
     scan chain makes every accumulator bit a weighted pseudo-input). *)
  Seq_netlist.output sb ~name:"acc_zero"
    (Rt_circuit.Builder.gate b Gate.Nor (Array.to_list acc));
  Seq_netlist.output sb ~name:"acc_max" (Rt_circuit.Builder.andn b (Array.to_list acc));
  Seq_netlist.finalize sb

let decade_counter () =
  let sb = Seq_netlist.builder () in
  let b = Seq_netlist.comb sb in
  let enable = Seq_netlist.input sb "enable" in
  let clear = Seq_netlist.input sb "clear" in
  let q = Seq_netlist.flops sb "q" 4 in
  (* at9 = q = 1001 *)
  let open Rt_circuit.Builder in
  let at9 = andn b [ q.(0); not_ b q.(1); not_ b q.(2); q.(3) ] in
  let one = const b true in
  let inc, _ = Generators.ripple_adder b q [| one; const b false; const b false; const b false |]
      (const b false)
  in
  let next_counting = Array.init 4 (fun i -> mux b ~sel:at9 inc.(i) (const b false)) in
  let next_en = Array.init 4 (fun i -> mux b ~sel:enable q.(i) next_counting.(i)) in
  let next = Array.init 4 (fun i -> and2 b (not_ b clear) next_en.(i)) in
  Array.iteri (fun i qq -> Seq_netlist.connect sb qq ~d:next.(i)) q;
  Array.iteri (fun i qq -> Seq_netlist.output sb ~name:(Printf.sprintf "count%d" i) qq) q;
  Seq_netlist.output sb ~name:"carry" (and2 b enable at9);
  Seq_netlist.finalize sb
