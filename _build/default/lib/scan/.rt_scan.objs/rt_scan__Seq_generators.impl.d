lib/scan/seq_generators.ml: Array List Printf Rt_circuit Seq_netlist
