lib/scan/seq_netlist.ml: Array List Printf Rt_circuit
