lib/scan/scan_chain.mli: Rt_fault Seq_netlist
