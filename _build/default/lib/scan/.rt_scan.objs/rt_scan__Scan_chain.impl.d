lib/scan/scan_chain.ml: Array Fun Rt_bist Rt_circuit Seq_netlist
