lib/scan/seq_netlist.mli: Rt_circuit
