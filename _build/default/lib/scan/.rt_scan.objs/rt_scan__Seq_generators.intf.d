lib/scan/seq_generators.mli: Seq_netlist
