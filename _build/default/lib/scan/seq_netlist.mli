(** Sequential circuits as a combinational core plus D flip-flops.

    The paper's opening assumption — "the most widely used self test
    techniques configure the circuit registers to linear feedback shift
    registers ... therefore we can restrict our examinations to
    combinational networks" — is the full-scan discipline.  This module
    provides the sequential side of that story: flops are modelled as
    pseudo-inputs (their Q outputs) and pseudo-outputs (their D inputs) of
    a combinational core, which is exactly the netlist every other library
    in this project analyses. *)

type t

val core : t -> Rt_circuit.Netlist.t
(** The combinational core.  Its input array is the real primary inputs
    followed by the flop Q pseudo-inputs; its output array is the real
    primary outputs followed by the flop D pseudo-outputs. *)

val n_inputs : t -> int  (** real primary inputs *)

val n_outputs : t -> int  (** real primary outputs *)

val n_flops : t -> int

val flop_name : t -> int -> string

(** {1 Construction} *)

type builder

val builder : unit -> builder

val input : builder -> string -> Rt_circuit.Netlist.node
val inputs : builder -> string -> int -> Rt_circuit.Netlist.node array

val flop : builder -> string -> Rt_circuit.Netlist.node
(** Declare a flip-flop; returns its Q value (usable immediately, like any
    other signal).  Its D input must be wired with {!connect} before
    {!finalize}. *)

val flops : builder -> string -> int -> Rt_circuit.Netlist.node array

val connect : builder -> Rt_circuit.Netlist.node -> d:Rt_circuit.Netlist.node -> unit
(** [connect b q ~d] wires the D input of the flop whose Q is [q]. *)

val gate :
  builder -> ?name:string -> Rt_circuit.Gate.kind -> Rt_circuit.Netlist.node list ->
  Rt_circuit.Netlist.node

val comb : builder -> Rt_circuit.Builder.t
(** The underlying combinational builder, for use with
    {!Rt_circuit.Generators} building blocks. *)

val output : builder -> ?name:string -> Rt_circuit.Netlist.node -> unit

val finalize : builder -> t
(** Raises [Invalid_argument] if some flop's D input was never connected. *)

(** {1 Cycle-accurate simulation} *)

type state = bool array
(** One bool per flop, in declaration order. *)

val initial_state : t -> state
(** All flops zero. *)

val step : t -> state -> bool array -> bool array * state
(** [step t s primary_inputs] is [(primary_outputs, next_state)]. *)

val run : t -> state -> bool array list -> bool array list * state
(** Fold {!step} over an input sequence. *)
