type t = {
  s : Seq_netlist.t;
  order : int array;
}

let insert ?order s =
  let n = Seq_netlist.n_flops s in
  let order =
    match order with
    | None -> Array.init n Fun.id
    | Some o ->
      if Array.length o <> n then invalid_arg "Scan_chain.insert: order length";
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then invalid_arg "Scan_chain.insert: bad permutation";
          seen.(i) <- true)
        o;
      o
  in
  { s; order }

let seq t = t.s
let chain_length t = Array.length t.order

let scan_mode t =
  let s = t.s in
  let core = Seq_netlist.core s in
  let module Netlist = Rt_circuit.Netlist in
  let module Gate = Rt_circuit.Gate in
  let sb = Seq_netlist.builder () in
  let b = Seq_netlist.comb sb in
  let n_pi = Seq_netlist.n_inputs s in
  let n_flops = Seq_netlist.n_flops s in
  (* Recreate ports: original primary inputs, then the scan controls. *)
  let core_inputs = Netlist.inputs core in
  let pi_map =
    Array.init n_pi (fun k -> Seq_netlist.input sb (Netlist.name core core_inputs.(k)))
  in
  let scan_en = Seq_netlist.input sb "scan_en" in
  let scan_in = Seq_netlist.input sb "scan_in" in
  let flops = Array.init n_flops (fun k -> Seq_netlist.flop sb (Seq_netlist.flop_name s k)) in
  (* Replay the combinational core. *)
  let map = Array.make (Netlist.size core) (-1) in
  Array.iteri (fun k i -> map.(i) <- pi_map.(k)) (Array.sub core_inputs 0 n_pi);
  Array.iteri (fun k i -> map.(i) <- flops.(k)) (Array.sub core_inputs n_pi n_flops);
  Netlist.iter_gates core (fun g ->
      let fanin = Array.to_list (Array.map (fun j -> map.(j)) (Netlist.fanin core g)) in
      map.(g) <- Rt_circuit.Builder.gate b (Netlist.kind core g) fanin);
  (* Original primary outputs. *)
  let core_outputs = Netlist.outputs core in
  for k = 0 to Seq_netlist.n_outputs s - 1 do
    Seq_netlist.output sb ~name:(Netlist.name core core_outputs.(k)) map.(core_outputs.(k))
  done;
  (* Scan muxes: functional D when scan_en = 0, chain data when 1. *)
  Array.iteri
    (fun pos flop_idx ->
      let functional = map.(core_outputs.(Seq_netlist.n_outputs s + flop_idx)) in
      let chain_prev = if pos = 0 then scan_in else flops.(t.order.(pos - 1)) in
      let d = Rt_circuit.Builder.mux b ~sel:scan_en functional chain_prev in
      Seq_netlist.connect sb flops.(flop_idx) ~d)
    t.order;
  Seq_netlist.output sb ~name:"scan_out" flops.(t.order.(n_flops - 1));
  Seq_netlist.finalize sb

let core_weights t ~pi ~scan =
  let s = t.s in
  if Array.length pi <> Seq_netlist.n_inputs s then invalid_arg "Scan_chain.core_weights: pi";
  if Array.length scan <> Seq_netlist.n_flops s then invalid_arg "Scan_chain.core_weights: scan";
  (* Chain position k loads flop order.(k); the core input vector wants
     per-flop weights in declaration order. *)
  let per_flop = Array.make (Seq_netlist.n_flops s) 0.5 in
  Array.iteri (fun k flop -> per_flop.(flop) <- scan.(k)) t.order;
  Array.append pi per_flop

type config = {
  weights : float array;
  weight_bits : int;
  lfsr_width : int;
  lfsr_seed : int64;
  misr_seed : int64;
  n_tests : int;
}

let default_config t ~weights =
  if Array.length weights <> Array.length (Rt_circuit.Netlist.inputs (Seq_netlist.core t.s))
  then invalid_arg "Scan_chain.default_config: weights width";
  { weights;
    weight_bits = 4;
    lfsr_width = 32;
    lfsr_seed = 0xACE1L;
    misr_seed = 0L;
    n_tests = 4096 }

type outcome = {
  golden : int64;
  detected : bool array;
  coverage : float;
  aliased : int;
}

(* A test-per-scan session observes the full core response (primary
   outputs directly, captured state through the shift-out), so it is
   exactly a combinational BIST session on the core.  Delegate to the
   combinational self-test engine, which already models the weighted LFSR
   source and MISR linearity. *)
let to_selftest_config t cfg =
  ignore t;
  { Rt_bist.Selftest.weights = cfg.weights;
    weight_bits = cfg.weight_bits;
    lfsr_width = cfg.lfsr_width;
    lfsr_seed = cfg.lfsr_seed;
    misr_seed = cfg.misr_seed;
    n_patterns = cfg.n_tests }

let golden_signature t cfg =
  Rt_bist.Selftest.golden_signature (Seq_netlist.core t.s) (to_selftest_config t cfg)

let run t faults cfg =
  let oc = Rt_bist.Selftest.run (Seq_netlist.core t.s) faults (to_selftest_config t cfg) in
  { golden = oc.Rt_bist.Selftest.golden;
    detected = oc.Rt_bist.Selftest.detected;
    coverage = oc.Rt_bist.Selftest.coverage;
    aliased = oc.Rt_bist.Selftest.aliased }
