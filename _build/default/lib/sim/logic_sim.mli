(** 64-way parallel-pattern good-circuit simulation.

    One forward sweep per batch evaluates all 64 lanes at once with plain
    word operations — the workhorse under fault simulation, STAFAN counting
    and Monte-Carlo detection-probability estimation. *)

type t
(** A reusable workspace bound to one netlist. *)

val create : Rt_circuit.Netlist.t -> t
val circuit : t -> Rt_circuit.Netlist.t

val run : t -> Pattern.batch -> unit
(** Evaluate every node for the batch (lanes beyond [n_patterns] hold
    garbage; mask with {!Pattern.lane_mask}). *)

val value : t -> Rt_circuit.Netlist.node -> int64
(** Node value words after {!run}. *)

val values : t -> int64 array
(** The full per-node value array (shared; valid until the next [run]). *)

val output_word : t -> int -> int64
(** Value of the [k]-th primary output. *)
