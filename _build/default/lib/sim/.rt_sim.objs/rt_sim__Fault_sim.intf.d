lib/sim/fault_sim.mli: Pattern Rt_circuit Rt_fault
