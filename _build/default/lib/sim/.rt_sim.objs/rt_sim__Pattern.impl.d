lib/sim/pattern.ml: Array Int64 List Rt_util
