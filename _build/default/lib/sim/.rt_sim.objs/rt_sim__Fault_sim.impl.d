lib/sim/fault_sim.ml: Array Float Fun Int64 List Logic_sim Pattern Rt_circuit Rt_fault Rt_util
