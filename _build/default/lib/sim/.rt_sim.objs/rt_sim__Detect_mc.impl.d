lib/sim/detect_mc.ml: Array Fault_sim Float Pattern Rt_util
