lib/sim/detect_mc.mli: Rt_circuit Rt_fault
