lib/sim/logic_sim.ml: Array Int64 Pattern Rt_circuit
