lib/sim/logic_sim.mli: Pattern Rt_circuit
