lib/sim/pattern.mli: Rt_util
