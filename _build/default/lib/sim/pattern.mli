(** Test pattern batches and sources.

    A batch packs up to 64 patterns: one 64-bit word per primary input,
    bit [l] of word [i] being input [i]'s value in pattern (lane) [l].
    Unused lanes of a short batch are zero and excluded by [lane_mask]. *)

type batch = {
  n_inputs : int;
  n_patterns : int;  (** 1..64 *)
  bits : int64 array;  (** one word per input *)
}

val lane_mask : batch -> int64
(** Ones in the valid lanes. *)

val pattern : batch -> int -> bool array
(** Extract lane [l] as a plain input vector. *)

val of_vectors : bool array array -> batch list
(** Pack explicit vectors (all of equal width) into batches. *)

type source = unit -> batch
(** Infinite stream of batches (callers bound the number of patterns). *)

val equiprobable : Rt_util.Rng.t -> n_inputs:int -> source
(** Conventional random test: every input independently 0.5. *)

val weighted : Rt_util.Rng.t -> float array -> source
(** The paper's optimized random test: input [i] is 1 with probability
    [w.(i)]. *)

val constant_weight : Rt_util.Rng.t -> n_inputs:int -> float -> source
(** All inputs share one probability (Lieberherr's parameterised tests). *)

val take : source -> int -> batch list
(** [take src n] is batches holding exactly [n] patterns in total. *)
