type batch = {
  n_inputs : int;
  n_patterns : int;
  bits : int64 array;
}

type source = unit -> batch

let lane_mask b =
  if b.n_patterns >= 64 then -1L else Int64.sub (Int64.shift_left 1L b.n_patterns) 1L

let pattern b l =
  if l < 0 || l >= b.n_patterns then invalid_arg "Pattern.pattern: lane out of range";
  Array.init b.n_inputs (fun i ->
      Int64.logand (Int64.shift_right_logical b.bits.(i) l) 1L <> 0L)

let of_vectors vectors =
  match Array.length vectors with
  | 0 -> []
  | total ->
    let n_inputs = Array.length vectors.(0) in
    Array.iter
      (fun v -> if Array.length v <> n_inputs then invalid_arg "Pattern.of_vectors: ragged input")
      vectors;
    let rec build start acc =
      if start >= total then List.rev acc
      else begin
        let n = min 64 (total - start) in
        let bits = Array.make n_inputs 0L in
        for l = 0 to n - 1 do
          let v = vectors.(start + l) in
          for i = 0 to n_inputs - 1 do
            if v.(i) then bits.(i) <- Int64.logor bits.(i) (Int64.shift_left 1L l)
          done
        done;
        build (start + n) ({ n_inputs; n_patterns = n; bits } :: acc)
      end
    in
    build 0 []

let weighted rng weights () =
  let n_inputs = Array.length weights in
  let bits = Array.map (fun w -> Rt_util.Rng.biased_word rng w) weights in
  { n_inputs; n_patterns = 64; bits }

let equiprobable rng ~n_inputs =
  let w = Array.make n_inputs 0.5 in
  weighted rng w

let constant_weight rng ~n_inputs p =
  let w = Array.make n_inputs p in
  weighted rng w

let take src n =
  let rec go remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let b = src () in
      let b =
        if b.n_patterns <= remaining then b
        else begin
          let keep = remaining in
          let mask = Int64.sub (Int64.shift_left 1L keep) 1L in
          { b with n_patterns = keep; bits = Array.map (fun w -> Int64.logand w mask) b.bits }
        end
      in
      go (remaining - b.n_patterns) (b :: acc)
    end
  in
  go n []
