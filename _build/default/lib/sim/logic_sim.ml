module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

type t = {
  c : Netlist.t;
  vals : int64 array;
}

let create c = { c; vals = Array.make (Netlist.size c) 0L }

let circuit t = t.c

let run t batch =
  let c = t.c in
  if batch.Pattern.n_inputs <> Array.length (Netlist.inputs c) then
    invalid_arg "Logic_sim.run: batch width mismatch";
  let vals = t.vals in
  let n = Netlist.size c in
  for i = 0 to n - 1 do
    match Netlist.kind c i with
    | Gate.Input -> vals.(i) <- batch.Pattern.bits.(Netlist.input_index c i)
    | Gate.Const0 -> vals.(i) <- 0L
    | Gate.Const1 -> vals.(i) <- -1L
    | Gate.Buf -> vals.(i) <- vals.((Netlist.fanin c i).(0))
    | Gate.Not -> vals.(i) <- Int64.lognot vals.((Netlist.fanin c i).(0))
    | Gate.And ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logand !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Nand ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logand !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
    | Gate.Or ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logor !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Nor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logor !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
    | Gate.Xor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logxor !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Xnor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logxor !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
  done

let value t n = t.vals.(n)
let values t = t.vals
let output_word t k = t.vals.((Netlist.outputs t.c).(k))
