(** Baseline input-probability strategies the paper compares against or
    cites as prior work (§2.2). *)

val equiprobable : Rt_testability.Detect.oracle -> confidence:float -> float
(** Required test length of the conventional random test (all 0.5) — the
    paper's Table 1 column. *)

val lieberherr :
  ?grid:float list ->
  Rt_testability.Detect.oracle ->
  confidence:float ->
  float * float
(** Parameterised random testing [Lieb84]: one shared probability [p] for
    every input; returns [(best_p, required_n)] after scanning [grid]
    (default 0.05 .. 0.95 step 0.05).  Captures "set k of n inputs to 1"
    in expectation. *)

val max_output_entropy :
  ?iterations:int -> ?grid:float list -> Rt_circuit.Netlist.t -> float array
(** Information-theoretic weights in the spirit of [Agra81]/[AgSe82]:
    coordinate ascent maximising the sum of output-signal entropies under
    the independence estimate.  The paper criticises this family because
    "the real fault model and fault coverage are not directly involved" —
    the benches quantify that criticism. *)

val required_for :
  Rt_testability.Detect.oracle -> confidence:float -> float array -> float
(** Required test length of an arbitrary weight vector under the oracle. *)
