lib/optprob/partition.ml: Array Float Fun Hashtbl List Normalize Optimize Rt_atpg Rt_circuit Rt_testability
