lib/optprob/objective.mli:
