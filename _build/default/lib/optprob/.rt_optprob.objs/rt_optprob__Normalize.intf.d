lib/optprob/normalize.mli:
