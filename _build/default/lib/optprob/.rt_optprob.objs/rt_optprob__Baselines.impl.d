lib/optprob/baselines.ml: Array Float List Normalize Rt_circuit Rt_testability
