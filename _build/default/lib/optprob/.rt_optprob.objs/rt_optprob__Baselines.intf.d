lib/optprob/baselines.mli: Rt_circuit Rt_testability
