lib/optprob/normalize.ml: Array Float Fun List
