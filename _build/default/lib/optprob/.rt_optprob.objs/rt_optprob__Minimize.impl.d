lib/optprob/minimize.ml: Float Objective Rt_util
