lib/optprob/partition.mli: Optimize Rt_circuit Rt_fault Rt_testability
