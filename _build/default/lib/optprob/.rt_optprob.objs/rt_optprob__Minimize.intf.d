lib/optprob/minimize.mli:
