lib/optprob/optimize.ml: Array Float List Minimize Normalize Rt_circuit Rt_testability Rt_util
