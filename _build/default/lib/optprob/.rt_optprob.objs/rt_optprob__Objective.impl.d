lib/optprob/objective.ml: Array Float
