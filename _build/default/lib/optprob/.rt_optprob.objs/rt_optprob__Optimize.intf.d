lib/optprob/optimize.mli: Rt_testability
