(** The paper's objective function (eq. 9/10):

    [J_N(X) = sum_f exp (-N * p_f(X))]

    which approximates [-ln delta_N(X)], the negated log-confidence of an
    [N]-pattern random test.  Minimising [J_N] maximises the chance that
    every fault is caught.

    Along one coordinate the detection probabilities are affine
    (Lemma 1): [p_f(X, y|i) = p_f(X,0|i) + y * (p_f(X,1|i) - p_f(X,0|i))],
    so [J_N] restricted to [y] is a sum of exponentials of affine
    functions — strictly convex (Lemma 3) with analytic derivatives, which
    {!Minimize} exploits. *)

val value : n:float -> float array -> float
(** [value ~n pfs] is [J_N] from the fault detection probabilities. *)

val value_along : n:float -> p0:float array -> p1:float array -> float -> float
(** [value_along ~n ~p0 ~p1 y]: [J_N(X, y|i)] where [p0]/[p1] are the
    cofactor detection probabilities of the faults under scrutiny. *)

val derivatives_along :
  n:float -> p0:float array -> p1:float array -> float -> float * float
(** First and second derivative of {!value_along} in [y] (paper eq. 13/14):
    [J' = sum -N b_f exp(-N p_f(y))], [J'' = sum (N b_f)^2 exp(-N p_f(y))]
    with [b_f = p1_f - p0_f].  [J'' >= 0] always. *)

val confidence : n:float -> float array -> float
(** [exp (-J_N)] — the approximation of eq. (1) used throughout §2.3. *)
