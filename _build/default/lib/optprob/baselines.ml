module Detect = Rt_testability.Detect

let required_for oracle ~confidence x =
  let pf = Detect.probs oracle x in
  let norm = Normalize.run ~confidence pf in
  norm.Normalize.n

let equiprobable oracle ~confidence =
  let n = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  required_for oracle ~confidence (Array.make n 0.5)

let default_grid = List.init 19 (fun i -> 0.05 *. Float.of_int (i + 1))

let lieberherr ?(grid = default_grid) oracle ~confidence =
  let n = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  List.fold_left
    (fun (best_p, best_n) p ->
      let req = required_for oracle ~confidence (Array.make n p) in
      if req < best_n then (p, req) else (best_p, best_n))
    (0.5, Float.infinity) grid

let entropy p =
  if p <= 0.0 || p >= 1.0 then 0.0
  else -.((p *. Float.log p) +. ((1.0 -. p) *. Float.log (1.0 -. p)))

let output_entropy c x =
  let sp = Rt_testability.Signal_prob.independence c x in
  Array.fold_left (fun acc o -> acc +. entropy sp.(o)) 0.0 (Rt_circuit.Netlist.outputs c)

let max_output_entropy ?(iterations = 3) ?(grid = default_grid) c =
  let n = Array.length (Rt_circuit.Netlist.inputs c) in
  let x = Array.make n 0.5 in
  for _ = 1 to iterations do
    for i = 0 to n - 1 do
      let best_v = ref x.(i) and best_h = ref Float.neg_infinity in
      List.iter
        (fun v ->
          x.(i) <- v;
          let h = output_entropy c x in
          if h > !best_h then begin
            best_h := h;
            best_v := v
          end)
        grid;
      x.(i) <- !best_v
    done
  done;
  x
