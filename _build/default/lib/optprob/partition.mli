(** Fault-set partitioning — the extension sketched in the paper's §5.3.

    Optimization fails when two hard faults need antagonistic input
    distributions (each has a low detection probability and their test sets
    are far apart in Hamming distance).  The paper proposes partitioning
    the fault set and computing separate optimal distributions per part but
    notes the procedure "wasn't implemented yet"; this module implements
    it.

    Conflict is measured on {e preference vectors}: for a hard fault [f],
    component [i] is [p_f(X,1|i) - p_f(X,0|i)] — how much raising input [i]
    helps detecting [f].  Antagonistic faults have strongly anti-correlated
    preference vectors; groups are seeded with the most antagonistic pair
    and grown by similarity. *)

type split = {
  groups : int array array;  (** hard-fault indices per group *)
  weights : float array array;  (** optimised distribution per group *)
  n_single : float;  (** required length with the single-distribution optimum *)
  n_parts : float array;  (** per-part required length (its own faults + all easy faults) *)
  n_total : float;  (** sum of [n_parts]: total session length *)
}

val preference_vectors :
  Rt_testability.Detect.oracle -> hard:int array -> float array -> float array array
(** One vector per hard fault, evaluated at the given weights. *)

val antagonism : float array -> float array -> float
(** Negative cosine similarity in [[-1, 1]]: 1 = perfectly antagonistic. *)

val cube_distance :
  ?backtrack_limit:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t ->
  Rt_fault.Fault.t ->
  int option
(** The paper's own §5.3 conflict criterion: "the Hamming distance between
    the test sets of these both faults is very large".  Computes one PODEM
    test cube per fault and counts the input positions where both cubes are
    specified and disagree — a lower bound on the Hamming distance between
    any pair of tests refining the cubes.  [None] if either fault has no
    test (redundant or aborted search). *)

val most_antagonistic_pair :
  ?backtrack_limit:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  (int * int * int) option
(** Among the given (hard) faults, the pair with the largest
    {!cube_distance}: [(index_a, index_b, distance)]. *)

val split :
  ?options:Optimize.options ->
  ?k:int ->
  ?hard_threshold:float ->
  ?sub_engine:Rt_testability.Detect.engine ->
  Rt_testability.Detect.oracle ->
  split
(** [split oracle] with [k] parts (default 2).  Hard faults are those with
    detection probability below [hard_threshold] (default: the NORMALIZE
    prefix) at the single-distribution optimum.  Each part is re-analysed
    with a fresh oracle built from [sub_engine] (default
    [Bdd_exact {node_limit = 500_000}]) over its own fault subset. *)
