(** The paper's SORT and NORMALIZE procedures (§4).

    Given the fault detection probabilities, NORMALIZE finds the minimum
    test length [N] whose objective value meets the confidence target, and
    the number [nf] of {e relevant} (hardest) faults: the paper's
    observation (1) shows faults much easier than the hardest contribute
    nothing numerically to [J_N], so one optimisation step only needs the
    [nf]-prefix of the sorted fault list.

    Bounds on [J_M] from a sorted ascending prefix of [z] faults:
    [l(z,M) = sum_{i<=z} exp(-p_i M)]         (lower bound)
    [u(z,M) = l(z,M) + (n-z) exp(-p_{z+1} M)] (upper bound)
    Interval section on [M] with adaptive [z] yields [N] and [nf]. *)

type t = {
  sorted_idx : int array;
      (** Fault indices sorted by ascending detection probability, zero
          (undetectable-as-analysed) probabilities excluded. *)
  undetectable : int array;
      (** Fault indices with [p_f = 0] under the analysis — excluded from
          [n] (for an exact engine these are proven redundant). *)
  n : float;  (** Minimal test length; [infinity] when nothing detectable. *)
  nf : int;  (** Number of relevant (hardest) faults at [N]. *)
}

val run : ?confidence:float -> ?nf_min:int -> float array -> t
(** [run pfs] with default confidence 0.95 and at least [nf_min] (default 8)
    relevant faults retained. *)

val hard_indices : t -> int array
(** The [nf] relevant fault indices (prefix of [sorted_idx]). *)
