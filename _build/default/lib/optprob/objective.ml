let value ~n pfs = Array.fold_left (fun acc p -> acc +. Float.exp (-.n *. p)) 0.0 pfs

let value_along ~n ~p0 ~p1 y =
  let acc = ref 0.0 in
  for f = 0 to Array.length p0 - 1 do
    let p = p0.(f) +. (y *. (p1.(f) -. p0.(f))) in
    acc := !acc +. Float.exp (-.n *. p)
  done;
  !acc

let derivatives_along ~n ~p0 ~p1 y =
  let d1 = ref 0.0 and d2 = ref 0.0 in
  for f = 0 to Array.length p0 - 1 do
    let b = p1.(f) -. p0.(f) in
    let p = p0.(f) +. (y *. b) in
    let e = Float.exp (-.n *. p) in
    d1 := !d1 -. (n *. b *. e);
    d2 := !d2 +. (n *. b *. n *. b *. e)
  done;
  (!d1, !d2)

let confidence ~n pfs = Float.exp (-.value ~n pfs)
