lib/atpg/dalg.mli: Rt_circuit Rt_fault
