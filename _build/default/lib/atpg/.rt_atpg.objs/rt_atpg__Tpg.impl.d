lib/atpg/tpg.ml: Array Dalg Hashtbl List Podem Rt_circuit Rt_fault Rt_sim Rt_util
