lib/atpg/tristate.mli: Rt_circuit
