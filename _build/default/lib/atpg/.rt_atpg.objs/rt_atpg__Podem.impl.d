lib/atpg/podem.ml: Array List Rt_circuit Rt_fault Stack Tristate
