lib/atpg/tpg.mli: Rt_circuit Rt_fault
