lib/atpg/tristate.ml: Array Rt_circuit
