lib/atpg/dalg.ml: Array Fun List Rt_circuit Rt_fault Tristate
