lib/atpg/podem.mli: Rt_circuit Rt_fault Tristate
