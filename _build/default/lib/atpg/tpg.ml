module Netlist = Rt_circuit.Netlist
module Fault = Rt_fault.Fault

type result = {
  tests : bool array array;
  detected : int;
  redundant : Fault.t array;
  aborted : Fault.t array;
  podem_calls : int;
  seconds : float;
}

let generate ?(engine = `Podem) ?(backtrack_limit = 10_000) ?(random_patterns = 128)
    ?(seed = 1) ?(compact = true) c faults =
  let deterministic c f =
    match engine with
    | `Podem ->
      (match Podem.generate ~backtrack_limit c f with
       | Podem.Test p, _ -> `Test p
       | Podem.Redundant, _ -> `Redundant
       | Podem.Aborted, _ -> `Aborted)
    | `Dalg ->
      (match Dalg.generate ~backtrack_limit c f with
       | Dalg.Test p, _ -> `Test p
       | Dalg.Redundant, _ -> `Redundant
       | Dalg.Aborted, _ -> `Aborted)
  in
  let t0 = Rt_util.Stats.timer_start () in
  let n_inputs = Array.length (Netlist.inputs c) in
  let nf = Array.length faults in
  let covered = Array.make nf false in
  let tests = ref [] in
  (* Phase 1: random patterns with fault dropping. *)
  let rng = Rt_util.Rng.create seed in
  if random_patterns > 0 then begin
    let source = Rt_sim.Pattern.equiprobable rng ~n_inputs in
    let stats = Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns:random_patterns in
    (* Keep only the patterns that detected something new (approximated by
       keeping the first-detecting pattern of each fault). *)
    let keep = Hashtbl.create 64 in
    Array.iteri
      (fun fi fd ->
        if fd >= 0 then begin
          covered.(fi) <- true;
          Hashtbl.replace keep fd ()
        end)
      stats.Rt_sim.Fault_sim.first_detect;
    (* Regenerate the same stream to materialise kept patterns. *)
    let rng2 = Rt_util.Rng.create seed in
    let source2 = Rt_sim.Pattern.equiprobable rng2 ~n_inputs in
    let batches = Rt_sim.Pattern.take source2 random_patterns in
    List.iteri
      (fun bi batch ->
        for lane = 0 to batch.Rt_sim.Pattern.n_patterns - 1 do
          let idx = (bi * 64) + lane in
          if Hashtbl.mem keep idx then tests := Rt_sim.Pattern.pattern batch lane :: !tests
        done)
      batches
  end;
  (* Phase 2: PODEM on survivors, fault-simulating each new test. *)
  let redundant = ref [] and aborted = ref [] in
  let podem_calls = ref 0 in
  for fi = 0 to nf - 1 do
    if not covered.(fi) then begin
      incr podem_calls;
      match deterministic c faults.(fi) with
      | `Test pattern ->
        tests := pattern :: !tests;
        covered.(fi) <- true;
        (* Drop everything else this pattern catches. *)
        for fj = fi + 1 to nf - 1 do
          if (not covered.(fj)) && Rt_sim.Fault_sim.detects c faults.(fj) pattern then
            covered.(fj) <- true
        done
      | `Redundant -> redundant := faults.(fi) :: !redundant
      | `Aborted -> aborted := faults.(fi) :: !aborted
    end
  done;
  (* Phase 3: reverse-order compaction — drop tests that detect nothing the
     later tests miss. *)
  let tests_arr = Array.of_list (List.rev !tests) in
  let final_tests =
    if not compact then tests_arr
    else begin
      let detectable =
        faults |> Array.to_list
        |> List.filteri (fun fi _ -> covered.(fi))
        |> Array.of_list
      in
      let still_needed = Array.make (Array.length detectable) true in
      let kept = ref [] in
      for ti = Array.length tests_arr - 1 downto 0 do
        let contributes = ref false in
        Array.iteri
          (fun fj f ->
            if still_needed.(fj) && Rt_sim.Fault_sim.detects c f tests_arr.(ti) then begin
              still_needed.(fj) <- false;
              contributes := true
            end)
          detectable;
        if !contributes then kept := tests_arr.(ti) :: !kept
      done;
      Array.of_list !kept
    end
  in
  { tests = final_tests;
    detected = Array.fold_left (fun a b -> if b then a + 1 else a) 0 covered;
    redundant = Array.of_list (List.rev !redundant);
    aborted = Array.of_list (List.rev !aborted);
    podem_calls = !podem_calls;
    seconds = Rt_util.Stats.timer_elapsed t0 }

let prune_redundant ?backtrack_limit ?(sim_patterns = 4096) c faults =
  (* Fault simulation under several distributions proves most faults
     detectable cheaply; only the survivors need a PODEM verdict. *)
  let detected = Array.make (Array.length faults) false in
  if sim_patterns > 0 then begin
    let n_inputs = Array.length (Netlist.inputs c) in
    List.iter
      (fun (seed, w) ->
        let rng = Rt_util.Rng.create seed in
        let source = Rt_sim.Pattern.weighted rng (Array.make n_inputs w) in
        let sim = Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns:sim_patterns in
        Array.iteri
          (fun i fd -> if fd >= 0 then detected.(i) <- true)
          sim.Rt_sim.Fault_sim.first_detect)
      [ (11, 0.5); (13, 0.9); (17, 0.1); (19, 0.7); (23, 0.3) ]
  end;
  let keep = ref [] and redundant = ref [] in
  Array.iteri
    (fun i f ->
      if detected.(i) then keep := f :: !keep
      else begin
        match Podem.generate ?backtrack_limit c f with
        | Podem.Redundant, _ -> redundant := f :: !redundant
        | (Podem.Test _ | Podem.Aborted), _ -> keep := f :: !keep
      end)
    faults;
  (Array.of_list (List.rev !keep), Array.of_list (List.rev !redundant))
