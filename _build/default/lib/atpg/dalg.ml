module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module T = Tristate

type verdict =
  | Test of bool array
  | Redundant
  | Aborted

type stats = {
  backtracks : int;
  decisions : int;
  implications : int;
}

exception Conflict
exception Found
exception Abort_limit

(* plane: false = good, true = faulty. *)
type space = {
  c : Netlist.t;
  fault : Fault.t;
  g : T.t array;
  f : T.t array;
  in_cone : bool array;  (* transitive fanout of the fault origin *)
  origin : Netlist.node;
  site_stem : Netlist.node option;  (* forced-f node for stem faults *)
  mutable trail : (bool * int * T.t) list;  (* (plane, node, previous) *)
  mutable worklist : int list;
  mutable backtracks : int;
  mutable decisions : int;
  mutable implications : int;
  backtrack_limit : int;
}

let plane s p = if p then s.f else s.g

let make_space ?(backtrack_limit = 20_000) c fault =
  let n = Netlist.size c in
  let origin = match fault.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
  { c;
    fault;
    g = Array.make n T.X;
    f = Array.make n T.X;
    in_cone = Rt_circuit.Cone.transitive_fanout c origin;
    origin;
    site_stem = (match fault.Fault.site with Fault.Stem s -> Some s | Fault.Branch _ -> None);
    trail = [];
    worklist = [];
    backtracks = 0;
    decisions = 0;
    implications = 0;
    backtrack_limit }

(* Assign one plane of a line; out-of-cone lines keep both planes tied. *)
let rec set s p node v =
  let a = plane s p in
  match a.(node) with
  | old when T.equal old v -> ()
  | T.X ->
    s.trail <- (p, node, T.X) :: s.trail;
    a.(node) <- v;
    s.worklist <- node :: s.worklist;
    if not s.in_cone.(node) then set s (not p) node v
  | T.F | T.T -> raise Conflict

let mark s = s.trail

let undo_to s mark =
  let rec go trail =
    if trail != mark then begin
      match trail with
      | [] -> ()
      | (p, node, old) :: rest ->
        (plane s p).(node) <- old;
        go rest
    end
  in
  go s.trail;
  s.trail <- mark;
  s.worklist <- []

(* The faulty-plane view of a gate's fanin values, with the branch-fault
   pin override. *)
let fanin_value s p gate k =
  let fi = Netlist.fanin s.c gate in
  match s.fault.Fault.site with
  | Fault.Branch (bg, bk) when p && bg = gate && bk = k -> T.of_bool s.fault.Fault.stuck
  | Fault.Branch _ | Fault.Stem _ -> (plane s p).(fi.(k))

(* Whether derivations about gate [gate]'s output in plane [p] are valid
   (the stem site's faulty output is pinned, not computed). *)
let output_free s p gate =
  not (p && s.site_stem = Some gate)

let gate_eval s p gate =
  let fi = Netlist.fanin s.c gate in
  let args = Array.init (Array.length fi) (fun k -> fanin_value s p gate k) in
  T.eval (Netlist.kind s.c gate) args

(* Backward propagation: the output of [gate] in plane [p] is known; derive
   forced inputs.  [set] raises Conflict on contradiction. *)
let backward s p gate =
  let kind = Netlist.kind s.c gate in
  let fi = Netlist.fanin s.c gate in
  let out = (plane s p).(gate) in
  if not (T.is_known out) then ()
  else begin
    let arity = Array.length fi in
    let derivable k =
      (* pin k's source can be set unless the branch override covers it *)
      match s.fault.Fault.site with
      | Fault.Branch (bg, bk) when p && bg = gate && bk = k -> false
      | Fault.Branch _ | Fault.Stem _ -> true
    in
    let inner inv = if inv then (match out with T.T -> T.F | T.F -> T.T | T.X -> T.X) else out in
    let and_or_like ~inv ~controlling =
      (* AND family: controlling = F; OR family: controlling = T. *)
      let target = inner inv in
      let non_controlling = (match controlling with T.F -> T.T | T.T -> T.F | T.X -> T.X) in
      if T.equal target non_controlling then
        (* every input must be non-controlling *)
        Array.iteri
          (fun k src ->
            if derivable k then set s p src non_controlling
            else if not (T.equal (fanin_value s p gate k) non_controlling) then raise Conflict)
          fi
      else begin
        (* output at controlled value: at least one controlling input; if
           all but one are known non-controlling, the last is forced. *)
        let x_pin = ref (-1) and x_count = ref 0 and satisfied = ref false in
        for k = 0 to arity - 1 do
          let v = fanin_value s p gate k in
          if T.equal v controlling then satisfied := true
          else if not (T.is_known v) then begin
            incr x_count;
            x_pin := k
          end
        done;
        if not !satisfied then begin
          if !x_count = 0 then raise Conflict
          else if !x_count = 1 && derivable !x_pin then set s p fi.(!x_pin) controlling
        end
      end
    in
    match kind with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | Gate.Buf -> if derivable 0 then set s p fi.(0) out
    | Gate.Not ->
      if derivable 0 then set s p fi.(0) (match out with T.T -> T.F | T.F -> T.T | T.X -> T.X)
    | Gate.And -> and_or_like ~inv:false ~controlling:T.F
    | Gate.Nand -> and_or_like ~inv:true ~controlling:T.F
    | Gate.Or -> and_or_like ~inv:false ~controlling:T.T
    | Gate.Nor -> and_or_like ~inv:true ~controlling:T.T
    | Gate.Xor | Gate.Xnor ->
      (* all-but-one known: the last input is the needed parity *)
      let x_pin = ref (-1) and x_count = ref 0 and acc = ref false in
      for k = 0 to arity - 1 do
        match fanin_value s p gate k with
        | T.T -> acc := not !acc
        | T.F -> ()
        | T.X ->
          incr x_count;
          x_pin := k
      done;
      let want = (match out with T.T -> true | T.F -> false | T.X -> assert false) in
      let want = if kind = Gate.Xnor then not want else want in
      if !x_count = 0 then begin
        if !acc <> want then raise Conflict
      end
      else if !x_count = 1 && derivable !x_pin then
        set s p fi.(!x_pin) (T.of_bool (want <> !acc))
  end

(* Process one node's neighbourhood in both planes. *)
let examine s node =
  let planes = [ false; true ] in
  List.iter
    (fun p ->
      (* forward: this node as a gate *)
      (match Netlist.kind s.c node with
       | Gate.Input -> ()
       | Gate.Const0 -> if output_free s p node then set s p node T.F
       | Gate.Const1 -> if output_free s p node then set s p node T.T
       | _ ->
         if output_free s p node then begin
           let v = gate_eval s p node in
           if T.is_known v then set s p node v
           else backward s p node
         end);
      (* forward/backward through each reader *)
      Array.iter
        (fun reader ->
          if output_free s p reader then begin
            let v = gate_eval s p reader in
            if T.is_known v then set s p reader v;
            backward s p reader
          end)
        (Netlist.fanout s.c node))
    planes

let imply_fixpoint s =
  let budget = ref 0 in
  while s.worklist <> [] do
    incr budget;
    s.implications <- s.implications + 1;
    if !budget > 200_000 then raise Conflict;
    match s.worklist with
    | [] -> ()
    | node :: rest ->
      s.worklist <- rest;
      examine s node
  done

let detected s =
  Array.exists
    (fun o -> T.is_known s.g.(o) && T.is_known s.f.(o) && not (T.equal s.g.(o) s.f.(o)))
    (Netlist.outputs s.c)

let diff_known s n = T.is_known s.g.(n) && T.is_known s.f.(n) && not (T.equal s.g.(n) s.f.(n))
let settled_equal s n = T.is_known s.g.(n) && T.is_known s.f.(n) && T.equal s.g.(n) s.f.(n)

let x_path_exists s =
  let n = Netlist.size s.c in
  let carries = Array.make n false in
  for i = 0 to n - 1 do
    if not (settled_equal s i) then
      if i = s.origin then carries.(i) <- true
      else if Array.exists (fun j -> carries.(j)) (Netlist.fanin s.c i) then carries.(i) <- true
  done;
  Array.exists (fun o -> carries.(o)) (Netlist.outputs s.c)

let activation_failed s =
  let src = Fault.source s.fault s.c in
  T.is_known s.g.(src) && T.equal s.g.(src) (T.of_bool s.fault.Fault.stuck)

(* D-frontier: gates with an undetermined output reading a difference (or
   the branch-faulted gate once activated). *)
let d_frontier s =
  let c = s.c in
  let acc = ref [] in
  for i = Netlist.size c - 1 downto 0 do
    (match Netlist.kind c i with
     | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
     | _ ->
       if not (T.is_known s.g.(i) && T.is_known s.f.(i)) then begin
         let virtual_frontier =
           match s.fault.Fault.site with
           | Fault.Branch (bg, _) -> bg = i && not (activation_failed s)
           | Fault.Stem _ -> false
         in
         if virtual_frontier || Array.exists (fun j -> diff_known s j) (Netlist.fanin c i) then
           acc := i :: !acc
       end)
  done;
  !acc

(* J-frontier: (gate, plane) with a known output that the inputs do not yet
   force. *)
let j_frontier s =
  let c = s.c in
  let acc = ref [] in
  for i = Netlist.size c - 1 downto 0 do
    match Netlist.kind c i with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | _ ->
      List.iter
        (fun p ->
          if output_free s p i && T.is_known (plane s p).(i) then begin
            let v = gate_eval s p i in
            if not (T.is_known v) then acc := (i, p) :: !acc
          end)
        [ false; true ]
  done;
  !acc

let register_backtrack s =
  s.backtracks <- s.backtracks + 1;
  if s.backtracks > s.backtrack_limit then raise Abort_limit

(* Alternatives at a choice point: apply one assignment set, recurse. *)
let rec search s =
  imply_fixpoint s;
  if detected s then begin
    if j_frontier s = [] then raise Found
    else justify_then_continue s
  end
  else if activation_failed s || not (x_path_exists s) then raise Conflict
  else begin
    let src = Fault.source s.fault s.c in
    if not (T.is_known s.g.(src)) then begin
      (* Activate the fault first (both planes for out-of-cone lines; the
         good plane for cone lines — the faulty plane follows by
         implication). *)
      try_alternatives s [ [ (false, src, T.of_bool (not s.fault.Fault.stuck)) ] ]
    end
    else begin
      match d_frontier s with
      | [] -> pi_branch s
      | frontier ->
        (* Drive the difference through some frontier gate: side inputs to
           the non-controlling value (good plane; ties and implication do
           the rest). *)
        let drive gate =
          let kind = Netlist.kind s.c gate in
          let free =
            Netlist.fanin s.c gate |> Array.to_list
            |> List.filter (fun j -> not (T.is_known s.g.(j) || diff_known s j))
          in
          match Gate.controlling_value kind with
          | Some cv ->
            (* AND/OR family: propagation forces every side input to the
               non-controlling value — one alternative. *)
            let nc = T.of_bool (not cv) in
            (match free with [] -> [] | _ -> [ List.map (fun j -> (false, j, nc)) free ])
          | None ->
            (* XOR family: side inputs only need to be KNOWN; branch the
               first free one over both values. *)
            (match free with [] -> [] | j :: _ -> [ [ (false, j, T.F) ]; [ (false, j, T.T) ] ])
        in
        let alts = List.concat_map drive frontier in
        (* Completeness: sensitizing a frontier gate is a heuristic
           accelerator, not a partition of the search space — reconvergent
           fault effects may need one path *de*-sensitized (the classic
           multiple-path cancellation).  Appending the two branches of a
           free primary input makes the choice point exhaustive: those two
           alternatives alone already cover the whole space. *)
        try_alternatives s (alts @ pi_alternatives s)
    end
  end

and pi_alternatives s =
  let inputs = Netlist.inputs s.c in
  let rec find k =
    if k >= Array.length inputs then None
    else if not (T.is_known s.g.(inputs.(k))) then Some inputs.(k)
    else find (k + 1)
  in
  match find 0 with
  | None -> []
  | Some i -> [ [ (false, i, T.T) ]; [ (false, i, T.F) ] ]

and pi_branch s =
  match pi_alternatives s with
  | [] -> raise Conflict
  | alts -> try_alternatives s alts

and justify_then_continue s =
  match j_frontier s with
  | [] -> raise Found
  | (gate, p) :: _ ->
    let kind = Netlist.kind s.c gate in
    let fi = Netlist.fanin s.c gate in
    let out = (plane s p).(gate) in
    let x_inputs =
      List.init (Array.length fi) Fun.id
      |> List.filter (fun k ->
             (not (T.is_known (fanin_value s p gate k)))
             &&
             match s.fault.Fault.site with
             | Fault.Branch (bg, bk) when p && bg = gate && bk = k -> false
             | Fault.Branch _ | Fault.Stem _ -> true)
    in
    let alts =
      match (Gate.controlling_value kind, Gate.controlled_output kind) with
      | Some cv, Some co ->
        let want_controlled =
          T.equal out (T.of_bool co)
        in
        if want_controlled then
          (* one controlling input suffices: each X input is an alternative *)
          List.map (fun k -> [ (p, fi.(k), T.of_bool cv) ]) x_inputs
        else
          (* all inputs non-controlling: handled by backward implication;
             reaching here means nothing was derivable — force them all. *)
          [ List.map (fun k -> (p, fi.(k), T.of_bool (not cv))) x_inputs ]
      | _ ->
        (* XOR family / buffers: binary-branch the first X input. *)
        (match x_inputs with
         | [] -> raise Conflict
         | k :: _ -> [ [ (p, fi.(k), T.T) ]; [ (p, fi.(k), T.F) ] ])
    in
    if alts = [] then raise Conflict else try_alternatives s alts

and try_alternatives s alts =
  let m = mark s in
  let rec go = function
    | [] -> raise Conflict
    | assignments :: rest ->
      s.decisions <- s.decisions + 1;
      (match
         List.iter (fun (p, node, v) -> set s p node v) assignments;
         search s
       with
       | () -> raise Conflict (* search never returns normally *)
       | exception Conflict ->
         undo_to s m;
         register_backtrack s;
         go rest)
  in
  go alts

let generate ?backtrack_limit c fault =
  let s = make_space ?backtrack_limit c fault in
  (* Seed: constants and the stem fault's forced faulty value. *)
  let seed () =
    Netlist.iter_gates c (fun i ->
        match Netlist.kind c i with
        | Gate.Const0 ->
          set s false i T.F
        | Gate.Const1 -> set s false i T.T
        | _ -> ());
    (match s.site_stem with Some node -> set s true node (T.of_bool fault.Fault.stuck) | None -> ());
    imply_fixpoint s
  in
  let finish verdict =
    (verdict, { backtracks = s.backtracks; decisions = s.decisions; implications = s.implications })
  in
  match
    seed ();
    search s
  with
  | () -> finish Redundant
  | exception Conflict -> finish Redundant
  | exception Abort_limit -> finish Aborted
  | exception Found ->
    let pattern =
      Array.map
        (fun i -> match s.g.(i) with T.T -> true | T.F | T.X -> false)
        (Netlist.inputs c)
    in
    finish (Test pattern)
