(** The D-algorithm (Roth 1966) — the deterministic test generator the
    paper's §5.2 actually names.

    Unlike PODEM, which decides only primary-input values, the D-algorithm
    assigns internal lines: it drives the fault effect towards an output
    through the D-frontier while justifying every assigned line backwards
    through the J-frontier, with full five-valued implication (a
    good/faulty pair of {!Tristate.t} per line) and chronological
    backtracking over both kinds of choices.  Complete: an exhausted
    search proves redundancy.

    Every verdict is cross-validated in the test suite against PODEM and
    the exact BDD boolean difference. *)

type verdict =
  | Test of bool array
  | Redundant
  | Aborted

type stats = {
  backtracks : int;
  decisions : int;
  implications : int;
}

val generate :
  ?backtrack_limit:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t ->
  verdict * stats
(** Default backtrack limit 20_000.  A returned [Test] pattern has all
    don't-care inputs set to [false]. *)
