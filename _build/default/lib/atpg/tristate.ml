type t =
  | F
  | T
  | X

let of_bool b = if b then T else F
let equal (a : t) (b : t) = a = b
let is_known = function F | T -> true | X -> false
let to_char = function F -> '0' | T -> '1' | X -> 'x'

let and3 a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | X, (T | X) | T, X -> X

let or3 a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | X, (F | X) | F, X -> X

let xor3 a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | T, F | F, T -> T

let not3 = function F -> T | T -> F | X -> X

let eval k (vs : t array) =
  let open Rt_circuit.Gate in
  let fold f init = Array.fold_left f init vs in
  match k with
  | Input -> invalid_arg "Tristate.eval: Input"
  | Const0 -> F
  | Const1 -> T
  | Buf -> vs.(0)
  | Not -> not3 vs.(0)
  | And -> fold and3 T
  | Nand -> not3 (fold and3 T)
  | Or -> fold or3 F
  | Nor -> not3 (fold or3 F)
  | Xor -> fold xor3 F
  | Xnor -> not3 (fold xor3 F)
