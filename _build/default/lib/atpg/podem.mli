(** PODEM — path-oriented decision making (Goel 1981): complete
    deterministic test generation for single stuck-at faults.

    The paper's §5.2 compares the cost of optimization-plus-fault-simulation
    against deterministic test pattern generation (it cites the
    D-algorithm); PODEM is the standard such baseline.  The search decides
    only primary-input values, implies all internal signals in five-valued
    logic (a good/faulty {!Tristate.t} pair), and backtracks on conflicts
    or vanished X-paths.  With an exhausted search space the fault is
    {e proven} redundant. *)

type verdict =
  | Test of bool array
      (** A detecting input vector (don't-cares filled with [false]). *)
  | Redundant  (** Search space exhausted: no test exists. *)
  | Aborted  (** Backtrack limit hit: undecided. *)

type stats = {
  backtracks : int;
  decisions : int;
}

val generate :
  ?backtrack_limit:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t ->
  verdict * stats
(** [generate c f] with a default backtrack limit of 10_000. *)

val test_cube :
  ?backtrack_limit:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t ->
  Tristate.t array option
(** The partial assignment (with don't-cares) of a successful search;
    [None] when redundant or aborted. *)
