(** Three-valued logic {0, 1, X} — the scalar base of PODEM's five-valued
    D-calculus (a five-valued signal is a good/faulty pair of these). *)

type t =
  | F
  | T
  | X

val of_bool : bool -> t
val equal : t -> t -> bool
val is_known : t -> bool
val to_char : t -> char

val eval : Rt_circuit.Gate.kind -> t array -> t
(** Gate evaluation with unknowns: a controlling value decides the output
    regardless of [X]s; otherwise any [X] input makes the output [X]. *)
