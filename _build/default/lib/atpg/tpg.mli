(** The full deterministic test-generation flow: the §5.2 comparison
    baseline.

    Random phase (fault simulation with dropping) followed by PODEM on the
    survivors, with each new deterministic test fault-simulated against the
    remaining faults, and an optional reverse-order compaction pass. *)

type result = {
  tests : bool array array;  (** the final test set *)
  detected : int;  (** faults covered by [tests] *)
  redundant : Rt_fault.Fault.t array;  (** proven untestable *)
  aborted : Rt_fault.Fault.t array;  (** backtrack limit reached *)
  podem_calls : int;
  seconds : float;
}

val generate :
  ?engine:[ `Podem | `Dalg ] ->
  ?backtrack_limit:int ->
  ?random_patterns:int ->
  ?seed:int ->
  ?compact:bool ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  result
(** Defaults: PODEM engine (pass [`Dalg] for the classical D-algorithm),
    backtrack limit 10_000, 128 random patterns, compaction on. *)

val prune_redundant :
  ?backtrack_limit:int ->
  ?sim_patterns:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  Rt_fault.Fault.t array * Rt_fault.Fault.t array
(** [(detectable_or_aborted, proven_redundant)] — the paper reports fault
    coverage "only with respect to those faults which are not proven to be
    undetectable due to redundancy".  A multi-distribution fault simulation
    of [sim_patterns] patterns (default 4096, 0 disables) pre-filters so
    PODEM only runs on simulation-resistant faults. *)
