module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module T = Tristate

type verdict =
  | Test of bool array
  | Redundant
  | Aborted

type stats = {
  backtracks : int;
  decisions : int;
}

type space = {
  c : Netlist.t;
  fault : Fault.t;
  pi : T.t array;  (* decision values per input position *)
  g : T.t array;  (* good value per node *)
  f : T.t array;  (* faulty value per node *)
  origin : Netlist.node;  (* where the difference originates *)
}

let make_space c fault =
  let n = Netlist.size c in
  { c;
    fault;
    pi = Array.make (Array.length (Netlist.inputs c)) T.X;
    g = Array.make n T.X;
    f = Array.make n T.X;
    origin = (match fault.Fault.site with Fault.Stem s -> s | Fault.Branch (gt, _) -> gt) }

(* Full five-valued implication: one forward sweep. *)
let imply s =
  let c = s.c in
  for i = 0 to Netlist.size c - 1 do
    (match Netlist.kind c i with
     | Gate.Input ->
       let v = s.pi.(Netlist.input_index c i) in
       s.g.(i) <- v;
       s.f.(i) <- v
     | k ->
       let fanin = Netlist.fanin c i in
       let gargs = Array.map (fun j -> s.g.(j)) fanin in
       s.g.(i) <- T.eval k gargs;
       let fargs = Array.map (fun j -> s.f.(j)) fanin in
       (match s.fault.Fault.site with
        | Fault.Branch (gt, k') when gt = i -> fargs.(k') <- T.of_bool s.fault.Fault.stuck
        | Fault.Branch _ | Fault.Stem _ -> ());
       s.f.(i) <- T.eval k fargs);
    (match s.fault.Fault.site with
     | Fault.Stem st when st = i -> s.f.(i) <- T.of_bool s.fault.Fault.stuck
     | Fault.Stem _ | Fault.Branch _ -> ())
  done

let diff_known s n = T.is_known s.g.(n) && T.is_known s.f.(n) && not (T.equal s.g.(n) s.f.(n))
let settled_equal s n = T.is_known s.g.(n) && T.is_known s.f.(n) && T.equal s.g.(n) s.f.(n)

let detected s = Array.exists (fun o -> diff_known s o) (Netlist.outputs s.c)

(* The line whose good value must be the complement of the stuck value. *)
let activation_node s = Fault.source s.fault s.c

let activation_failed s =
  let src = activation_node s in
  T.is_known s.g.(src) && T.equal s.g.(src) (T.of_bool s.fault.Fault.stuck)

(* Can a difference still reach an output?  Forward sweep: a node carries a
   possible difference if it is the origin, or reads one, and is not
   already settled equal. *)
let x_path_exists s =
  let c = s.c in
  let n = Netlist.size c in
  let carries = Array.make n false in
  for i = 0 to n - 1 do
    if not (settled_equal s i) then
      if i = s.origin then carries.(i) <- true
      else if Array.exists (fun j -> carries.(j)) (Netlist.fanin c i) then carries.(i) <- true
  done;
  Array.exists (fun o -> carries.(o)) (Netlist.outputs c)

(* Objective: first activate the fault, then extend the D-frontier. *)
let objective s =
  let src = activation_node s in
  if not (T.is_known s.g.(src)) then Some (src, not s.fault.Fault.stuck)
  else begin
    (* D-frontier: a gate with undetermined output reading a difference.
       For a branch fault the faulted gate itself carries a virtual
       difference on the overridden pin (its fanin values never differ), so
       it joins the frontier as soon as the fault is activated — which it
       is here, because the activation check above passed with the source
       value known. *)
    let c = s.c in
    let virtual_frontier i =
      match s.fault.Fault.site with Fault.Branch (gt, _) -> gt = i | Fault.Stem _ -> false
    in
    let side_input gate =
      Array.to_list (Netlist.fanin c gate)
      |> List.find_opt (fun j -> not (T.is_known s.g.(j)))
    in
    let rec find i =
      if i >= Netlist.size c then None
      else if
        (not (T.is_known s.g.(i) && T.is_known s.f.(i)))
        && (virtual_frontier i || Array.exists (fun j -> diff_known s j) (Netlist.fanin c i))
      then begin
        (* Drive an undetermined side input to the non-controlling value;
           a frontier gate with no such input cannot be extended here —
           look further. *)
        match side_input i with
        | Some j ->
          let want =
            match Gate.controlling_value (Netlist.kind c i) with
            | Some cv -> not cv
            | None -> true
          in
          Some (j, want)
        | None -> find (i + 1)
      end
      else find (i + 1)
    in
    find 0
  end

(* Map an objective to a primary-input assignment through X-valued lines. *)
let backtrace s (node, want) =
  let c = s.c in
  let rec walk node want =
    match Netlist.kind c node with
    | Gate.Input -> Some (Netlist.input_index c node, want)
    | k ->
      let want = if Gate.inverting k then not want else want in
      (match
         Array.to_list (Netlist.fanin c node)
         |> List.find_opt (fun j -> not (T.is_known s.g.(j)))
       with
       | None -> None
       | Some j -> walk j want)
  in
  walk node want

let search ?(backtrack_limit = 10_000) c fault =
  let s = make_space c fault in
  let stack : (int * bool * bool) Stack.t = Stack.create () in
  let backtracks = ref 0 and decisions = ref 0 in
  let result = ref None in
  let backtrack () =
    (* Flip the deepest unflipped decision; exhausting the stack proves
       redundancy. *)
    let rec unwind () =
      if Stack.is_empty stack then result := Some `Redundant
      else begin
        let pi, v, flipped = Stack.pop stack in
        if flipped then begin
          s.pi.(pi) <- T.X;
          unwind ()
        end
        else begin
          incr backtracks;
          if !backtracks > backtrack_limit then result := Some `Aborted
          else begin
            s.pi.(pi) <- T.of_bool (not v);
            Stack.push (pi, not v, true) stack
          end
        end
      end
    in
    unwind ()
  in
  while !result = None do
    imply s;
    if detected s then result := Some `Test
    else if activation_failed s || not (x_path_exists s) then backtrack ()
    else begin
      match objective s with
      | None -> backtrack ()
      | Some obj ->
        (match backtrace s obj with
         | None -> backtrack ()
         | Some (pi, v) ->
           incr decisions;
           s.pi.(pi) <- T.of_bool v;
           Stack.push (pi, v, false) stack)
    end
  done;
  let stats = { backtracks = !backtracks; decisions = !decisions } in
  match !result with
  | Some `Test -> (`Test (Array.copy s.pi), stats)
  | Some `Redundant -> (`Redundant, stats)
  | Some `Aborted -> (`Aborted, stats)
  | None -> assert false

let generate ?backtrack_limit c fault =
  match search ?backtrack_limit c fault with
  | `Test cube, stats ->
    (Test (Array.map (fun v -> match v with T.T -> true | T.F | T.X -> false) cube), stats)
  | `Redundant, stats -> (Redundant, stats)
  | `Aborted, stats -> (Aborted, stats)

let test_cube ?backtrack_limit c fault =
  match search ?backtrack_limit c fault with
  | `Test cube, _ -> Some cube
  | (`Redundant | `Aborted), _ -> None
