lib/repro/experiments.mli: Format
