lib/repro/weights_io.mli: Format Rt_circuit
