lib/repro/experiments.ml: Array Digest Float Format Hashtbl List Printf Rt_atpg Rt_circuit Rt_fault Rt_optprob Rt_sim Rt_testability Rt_util String Weights_io
