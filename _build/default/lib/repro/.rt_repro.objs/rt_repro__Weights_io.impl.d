lib/repro/weights_io.ml: Array Float Format List Printf Rt_circuit String
