lib/fault/fault.mli: Format Rt_circuit
