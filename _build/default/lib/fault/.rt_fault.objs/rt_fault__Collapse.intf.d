lib/fault/collapse.mli: Fault Rt_circuit
