lib/fault/fault.ml: Array Format List Rt_circuit Stdlib
