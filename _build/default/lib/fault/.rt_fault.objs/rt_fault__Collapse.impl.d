lib/fault/collapse.ml: Array Fault Float Fun Hashtbl List Option Rt_circuit
