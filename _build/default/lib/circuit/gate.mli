(** The gate alphabet of combinational networks.

    Three semantics are provided for every gate kind: boolean evaluation,
    64-way word-parallel evaluation, and the arithmetical embedding of paper
    §2.1 (evaluation over independent signal probabilities).  Keeping all
    three next to the type definition guarantees they never drift apart. *)

type kind =
  | Input        (** primary input; no fanin *)
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

val equal_kind : kind -> kind -> bool
val to_string : kind -> string

val of_string : string -> kind option
(** Case-insensitive; accepts the ISCAS-85 spellings ([AND], [NAND], [DFF]
    is {e not} accepted — the library is purely combinational). *)

val arity_ok : kind -> int -> bool
(** [arity_ok k n] checks that a gate of kind [k] may have [n] fanins:
    inputs and constants take 0, [Buf]/[Not] take 1, the rest take >= 1
    ([Xor]/[Xnor] are parity/odd-parity over all fanins, as in ISCAS-85). *)

val eval : kind -> bool array -> bool
(** Boolean semantics over the fanin values. *)

val eval_words : kind -> int64 array -> int64
(** Bitwise-parallel semantics: applies [eval] laneswise on 64 lanes. *)

val prob : kind -> float array -> float
(** Arithmetical embedding under the independence assumption: the exact
    probability of the gate output being true when the fanin signals are
    {e independent} with the given probabilities ([Xor] folds pairwise). *)

val inverting : kind -> bool
(** Whether the gate complements the natural monotone body ([Nand], [Nor],
    [Not], [Xnor]). *)

val controlling_value : kind -> bool option
(** The fanin value that forces the output regardless of other fanins:
    [Some false] for AND/NAND, [Some true] for OR/NOR, [None] for the
    rest. *)

val controlled_output : kind -> bool option
(** Output produced when some fanin is at the controlling value. *)
