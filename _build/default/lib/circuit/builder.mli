(** Imperative construction DSL for netlists.

    A builder accumulates nodes; every combinator returns the new node id, so
    circuits compose as ordinary OCaml expressions.  [finalize] freezes the
    accumulated graph into a validated {!Netlist.t}. *)

type t

val create : ?fold:bool -> ?prune:bool -> unit -> t
(** [fold] (default true) enables constant folding as gates are added:
    a gate with constant fanins collapses to the implied constant, wire or
    inverter — the paper's "some redundancies are removed".  [prune]
    (default true) drops gates not feeding any primary output at
    {!finalize}; primary inputs are always kept because the fault model
    must contain their stuck-at faults. *)

val input : t -> string -> Netlist.node
(** Declare a named primary input. *)

val inputs : t -> string -> int -> Netlist.node array
(** [inputs b prefix n] declares [prefix ^ string_of_int i] for
    [i = 0 .. n-1]. *)

val const : t -> bool -> Netlist.node
(** Constant node (deduplicated per builder). *)

val gate : t -> ?name:string -> Gate.kind -> Netlist.node list -> Netlist.node
(** General gate; auto-named [nK] when [name] is omitted.  With folding
    enabled the returned node may be an existing one (constant or wire). *)

(** {1 Shorthands} *)

val not_ : t -> Netlist.node -> Netlist.node
val buf : t -> Netlist.node -> Netlist.node
val and2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val or2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val xor2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val nand2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val nor2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val xnor2 : t -> Netlist.node -> Netlist.node -> Netlist.node
val andn : t -> Netlist.node list -> Netlist.node
val orn : t -> Netlist.node list -> Netlist.node
val xorn : t -> Netlist.node list -> Netlist.node
val mux : t -> sel:Netlist.node -> Netlist.node -> Netlist.node -> Netlist.node
(** [mux b ~sel a0 a1] is [a0] when [sel = 0], [a1] when [sel = 1]. *)

val output : t -> ?name:string -> Netlist.node -> unit
(** Mark an existing node as a primary output; [name] adds an alias [Buf]
    node when the node should be exposed under a different name. *)

val finalize : t -> Netlist.t
(** Freeze.  The builder must not be reused afterwards. *)
