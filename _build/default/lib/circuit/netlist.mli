(** Immutable levelised combinational netlists.

    Nodes are dense integer ids in topological order (every fanin id is
    smaller than the gate id), which lets simulators and analysers run as
    single forward or backward array sweeps.  Construct through
    {!Builder} or {!Bench_format}. *)

type node = int
(** Node id, [0 <= id < size]. *)

type t

(** {1 Accessors} *)

val size : t -> int
val kind : t -> node -> Gate.kind
val fanin : t -> node -> node array
(** Shared array — do not mutate. *)

val fanout : t -> node -> node array
(** Gates reading this node, ascending.  Shared array — do not mutate. *)

val name : t -> node -> string
val find : t -> string -> node option
(** Lookup by name. *)

val inputs : t -> node array
(** Primary inputs, in declaration order.  Shared array — do not mutate. *)

val outputs : t -> node array
(** Primary outputs.  Shared array — do not mutate. *)

val input_index : t -> node -> int
(** For an input node, its position inside [inputs]; -1 otherwise. *)

val is_output : t -> node -> bool
val level : t -> node -> int
(** 0 for inputs/constants, [1 + max fanin level] for gates. *)

val max_level : t -> int

val iter_gates : t -> (node -> unit) -> unit
(** Visits every non-input node in topological (ascending id) order. *)

val gate_count : t -> int
(** Number of non-input, non-constant nodes. *)

(** {1 Construction (used by Builder)} *)

val make :
  kinds:Gate.kind array ->
  fanins:node array array ->
  names:string array ->
  output_list:node list ->
  t
(** Validates: topological fanin order, arities, name uniqueness, outputs
    exist.  Raises [Invalid_argument] with a diagnostic on violation. *)

(** {1 Whole-circuit evaluation (reference semantics)} *)

val eval : t -> bool array -> bool array
(** [eval c input_values] returns the value of {e every} node; slow
    reference used by tests and ATPG, not the simulator. *)

val eval_outputs : t -> bool array -> bool array
(** Just the primary output values, in [outputs] order. *)

val stats : t -> Format.formatter -> unit
(** One-line summary: inputs/outputs/gates/levels and gate histogram. *)
