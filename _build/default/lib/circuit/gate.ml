type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

let equal_kind (a : kind) (b : kind) = a = b

let to_string = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let arity_ok k n =
  match k with
  | Input | Const0 | Const1 -> n = 0
  | Buf | Not -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 1

let eval k (vs : bool array) =
  match k with
  | Input -> invalid_arg "Gate.eval: Input has no gate function"
  | Const0 -> false
  | Const1 -> true
  | Buf -> vs.(0)
  | Not -> not vs.(0)
  | And -> Array.for_all Fun.id vs
  | Nand -> not (Array.for_all Fun.id vs)
  | Or -> Array.exists Fun.id vs
  | Nor -> not (Array.exists Fun.id vs)
  | Xor -> Array.fold_left (fun acc v -> acc <> v) false vs
  | Xnor -> not (Array.fold_left (fun acc v -> acc <> v) false vs)

let eval_words k (ws : int64 array) =
  let open Int64 in
  let fold f init = Array.fold_left f init ws in
  match k with
  | Input -> invalid_arg "Gate.eval_words: Input has no gate function"
  | Const0 -> 0L
  | Const1 -> -1L
  | Buf -> ws.(0)
  | Not -> lognot ws.(0)
  | And -> fold logand (-1L)
  | Nand -> lognot (fold logand (-1L))
  | Or -> fold logor 0L
  | Nor -> lognot (fold logor 0L)
  | Xor -> fold logxor 0L
  | Xnor -> lognot (fold logxor 0L)

let prob k (ps : float array) =
  let prod () = Array.fold_left ( *. ) 1.0 ps in
  let prod_compl () = Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 ps in
  let xor () =
    (* P(xor) folds pairwise: p <- a(1-b) + b(1-a), exact for independent
       fanins. *)
    Array.fold_left (fun a b -> (a *. (1.0 -. b)) +. (b *. (1.0 -. a))) 0.0 ps
  in
  match k with
  | Input -> invalid_arg "Gate.prob: Input has no gate function"
  | Const0 -> 0.0
  | Const1 -> 1.0
  | Buf -> ps.(0)
  | Not -> 1.0 -. ps.(0)
  | And -> prod ()
  | Nand -> 1.0 -. prod ()
  | Or -> 1.0 -. prod_compl ()
  | Nor -> prod_compl ()
  | Xor -> xor ()
  | Xnor -> 1.0 -. xor ()

let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | Input | Const0 | Const1 | Buf | And | Or | Xor -> false

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor -> None

let controlled_output k =
  match k with
  | And -> Some false
  | Nand -> Some true
  | Or -> Some true
  | Nor -> Some false
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor -> None
