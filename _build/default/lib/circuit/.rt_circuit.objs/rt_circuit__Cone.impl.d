lib/circuit/cone.ml: Array Gate List Netlist
