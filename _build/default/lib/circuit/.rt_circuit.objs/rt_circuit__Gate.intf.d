lib/circuit/gate.mli:
