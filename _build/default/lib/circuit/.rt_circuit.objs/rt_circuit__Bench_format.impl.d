lib/circuit/bench_format.ml: Array Format Gate Hashtbl List Netlist String
