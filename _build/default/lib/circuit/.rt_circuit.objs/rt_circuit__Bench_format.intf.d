lib/circuit/bench_format.mli: Format Netlist
