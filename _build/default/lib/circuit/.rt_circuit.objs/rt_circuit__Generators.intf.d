lib/circuit/generators.mli: Builder Netlist
