lib/circuit/cone.mli: Netlist
