lib/circuit/gate.ml: Array Fun Int64 String
