lib/circuit/generators.ml: Array Builder Fun Gate Hashtbl List Printf Rt_util String
