(** ISCAS-85 [.bench] netlist reader and writer.

    The textual format used by the 1985 benchmark distribution:
    [# comment], [INPUT(g)], [OUTPUT(g)], [g = NAND(a, b, ...)].
    Declarations may appear in any order; the parser topologically sorts
    them.  Only combinational gate types are accepted (no [DFF]). *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Netlist.t
(** Parse from the full file contents. *)

val load : string -> Netlist.t
(** [load path] reads and parses a file. *)

val print : Format.formatter -> Netlist.t -> unit
(** Emit [.bench] text; [Buf] alias nodes are emitted as [BUFF], constants
    as 0-input gates spelled [CONST0]/[CONST1] (a common extension). *)

val to_string : Netlist.t -> string

val save : string -> Netlist.t -> unit
