type node = int

type t = {
  kinds : Gate.kind array;
  fanins : node array array;
  fanouts : node array array;
  names : string array;
  by_name : (string, node) Hashtbl.t;
  inputs : node array;
  outputs : node array;
  output_set : bool array;
  input_index : int array;
  levels : int array;
  max_level : int;
}

let size t = Array.length t.kinds
let kind t n = t.kinds.(n)
let fanin t n = t.fanins.(n)
let fanout t n = t.fanouts.(n)
let name t n = t.names.(n)
let find t s = Hashtbl.find_opt t.by_name s
let inputs t = t.inputs
let outputs t = t.outputs
let input_index t n = t.input_index.(n)
let is_output t n = t.output_set.(n)
let level t n = t.levels.(n)
let max_level t = t.max_level

let iter_gates t f =
  for n = 0 to size t - 1 do
    match t.kinds.(n) with Gate.Input -> () | _ -> f n
  done

let gate_count t =
  let c = ref 0 in
  for n = 0 to size t - 1 do
    match t.kinds.(n) with Gate.Input | Gate.Const0 | Gate.Const1 -> () | _ -> incr c
  done;
  !c

let make ~kinds ~fanins ~names ~output_list =
  let n = Array.length kinds in
  if Array.length fanins <> n || Array.length names <> n then
    invalid_arg "Netlist.make: array length mismatch";
  (* Topological order + arity validation. *)
  for i = 0 to n - 1 do
    let fi = fanins.(i) in
    if not (Gate.arity_ok kinds.(i) (Array.length fi)) then
      invalid_arg
        (Printf.sprintf "Netlist.make: node %d (%s) has invalid arity %d" i
           (Gate.to_string kinds.(i)) (Array.length fi));
    Array.iter
      (fun j ->
        if j < 0 || j >= i then
          invalid_arg (Printf.sprintf "Netlist.make: node %d has non-topological fanin %d" i j))
      fi
  done;
  let by_name = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem by_name s then invalid_arg ("Netlist.make: duplicate name " ^ s);
      Hashtbl.add by_name s i)
    names;
  let outputs = Array.of_list output_list in
  Array.iter
    (fun o -> if o < 0 || o >= n then invalid_arg "Netlist.make: output id out of range")
    outputs;
  let output_set = Array.make n false in
  Array.iter (fun o -> output_set.(o) <- true) outputs;
  (* Fanout lists. *)
  let deg = Array.make n 0 in
  Array.iter (Array.iter (fun j -> deg.(j) <- deg.(j) + 1)) fanins;
  let fanouts = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun j ->
        fanouts.(j).(fill.(j)) <- i;
        fill.(j) <- fill.(j) + 1)
      fanins.(i)
  done;
  (* Inputs, input_index. *)
  let input_list = ref [] in
  for i = n - 1 downto 0 do
    if kinds.(i) = Gate.Input then input_list := i :: !input_list
  done;
  let inputs = Array.of_list !input_list in
  let input_index = Array.make n (-1) in
  Array.iteri (fun pos id -> input_index.(id) <- pos) inputs;
  (* Levels. *)
  let levels = Array.make n 0 in
  let max_level = ref 0 in
  for i = 0 to n - 1 do
    let l =
      Array.fold_left (fun acc j -> if levels.(j) >= acc then levels.(j) + 1 else acc) 0 fanins.(i)
    in
    levels.(i) <- l;
    if l > !max_level then max_level := l
  done;
  { kinds; fanins; fanouts; names; by_name; inputs; outputs; output_set; input_index; levels;
    max_level = !max_level }

let eval t input_values =
  if Array.length input_values <> Array.length t.inputs then
    invalid_arg "Netlist.eval: wrong input vector width";
  let vals = Array.make (size t) false in
  for i = 0 to size t - 1 do
    match t.kinds.(i) with
    | Gate.Input -> vals.(i) <- input_values.(t.input_index.(i))
    | k ->
      let fi = t.fanins.(i) in
      let args = Array.map (fun j -> vals.(j)) fi in
      vals.(i) <- Gate.eval k args
  done;
  vals

let eval_outputs t input_values =
  let vals = eval t input_values in
  Array.map (fun o -> vals.(o)) t.outputs

let stats t ppf =
  let hist = Hashtbl.create 11 in
  Array.iter
    (fun k ->
      let key = Gate.to_string k in
      Hashtbl.replace hist key (1 + Option.value ~default:0 (Hashtbl.find_opt hist key)))
    t.kinds;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.fprintf ppf "nodes=%d inputs=%d outputs=%d gates=%d levels=%d [%s]" (size t)
    (Array.length t.inputs) (Array.length t.outputs) (gate_count t) t.max_level
    (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) entries))
