type const_val = V0 | V1

type t = {
  mutable kinds : Gate.kind array;
  mutable fanins : int array array;
  mutable names : string array;
  mutable n : int;
  mutable outputs : int list;
  used_names : (string, unit) Hashtbl.t;
  const_of : (int, const_val) Hashtbl.t;
  mutable const0 : int;
  mutable const1 : int;
  fold : bool;
  prune : bool;
  mutable frozen : bool;
}

let create ?(fold = true) ?(prune = true) () =
  { kinds = Array.make 64 Gate.Input;
    fanins = Array.make 64 [||];
    names = Array.make 64 "";
    n = 0;
    outputs = [];
    used_names = Hashtbl.create 64;
    const_of = Hashtbl.create 4;
    const0 = -1;
    const1 = -1;
    fold;
    prune;
    frozen = false }

let ensure_capacity b =
  if b.n >= Array.length b.kinds then begin
    let cap = 2 * Array.length b.kinds in
    let grow a fillv =
      let a' = Array.make cap fillv in
      Array.blit a 0 a' 0 b.n;
      a'
    in
    b.kinds <- grow b.kinds Gate.Input;
    b.fanins <- grow b.fanins [||];
    b.names <- grow b.names ""
  end

let fresh_name b base =
  if not (Hashtbl.mem b.used_names base) then base
  else begin
    let rec try_suffix k =
      let candidate = Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem b.used_names candidate then try_suffix (k + 1) else candidate
    in
    try_suffix 1
  end

let add b kind name fanin =
  if b.frozen then invalid_arg "Builder: already finalized";
  ensure_capacity b;
  let id = b.n in
  let name = fresh_name b (match name with Some s -> s | None -> Printf.sprintf "n%d" id) in
  Hashtbl.add b.used_names name ();
  b.kinds.(id) <- kind;
  b.fanins.(id) <- fanin;
  b.names.(id) <- name;
  b.n <- id + 1;
  id

let input b name = add b Gate.Input (Some name) [||]

let inputs b prefix n = Array.init n (fun i -> input b (Printf.sprintf "%s%d" prefix i))

let const b v =
  if v then begin
    if b.const1 < 0 then begin
      b.const1 <- add b Gate.Const1 (Some "const1") [||];
      Hashtbl.add b.const_of b.const1 V1
    end;
    b.const1
  end
  else begin
    if b.const0 < 0 then begin
      b.const0 <- add b Gate.Const0 (Some "const0") [||];
      Hashtbl.add b.const_of b.const0 V0
    end;
    b.const0
  end

let const_value b id = Hashtbl.find_opt b.const_of id

(* Constant folding: with the constant fanins stripped, a gate may collapse
   to a constant, a buffer or an inverter.  This implements the paper's
   remark that S1 was built "where some redundancies are removed". *)
let fold_gate b kind fanin =
  let consts, vars = List.partition (fun j -> const_value b j <> None) fanin in
  let cvals = List.map (fun j -> const_value b j = Some V1) consts in
  let mk_const v = `Const v in
  match kind with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> `Keep
  | Gate.Buf ->
    (match cvals with [ v ] -> mk_const v | _ -> `Keep)
  | Gate.Not ->
    (match cvals with [ v ] -> mk_const (not v) | _ -> `Keep)
  | Gate.And | Gate.Nand ->
    let inv = kind = Gate.Nand in
    if List.exists (fun v -> not v) cvals then mk_const inv
    else begin
      match vars with
      | [] -> mk_const (not inv)
      | [ x ] -> if inv then `Inv x else `Wire x
      | _ :: _ :: _ -> if consts = [] then `Keep else `Rebuild (kind, vars)
    end
  | Gate.Or | Gate.Nor ->
    let inv = kind = Gate.Nor in
    if List.exists (fun v -> v) cvals then mk_const (not inv)
    else begin
      match vars with
      | [] -> mk_const inv
      | [ x ] -> if inv then `Inv x else `Wire x
      | _ :: _ :: _ -> if consts = [] then `Keep else `Rebuild (kind, vars)
    end
  | Gate.Xor | Gate.Xnor ->
    let flip0 = kind = Gate.Xnor in
    let flip = List.fold_left (fun acc v -> acc <> v) flip0 cvals in
    (match vars with
     | [] -> mk_const flip
     | [ x ] -> if flip then `Inv x else `Wire x
     | _ :: _ :: _ ->
       if consts = [] then `Keep
       else `Rebuild ((if flip then Gate.Xnor else Gate.Xor), vars))

let rec gate b ?name kind fanin =
  List.iter (fun j -> if j < 0 || j >= b.n then invalid_arg "Builder.gate: unknown fanin") fanin;
  if not (Gate.arity_ok kind (List.length fanin)) then
    invalid_arg (Printf.sprintf "Builder.gate: bad arity for %s" (Gate.to_string kind));
  if not b.fold then add b kind name (Array.of_list fanin)
  else begin
    match fold_gate b kind fanin with
    | `Keep -> add b kind name (Array.of_list fanin)
    | `Const v -> const b v
    | `Wire x -> x
    | `Inv x -> gate b ?name Gate.Not [ x ]
    | `Rebuild (kind', vars) -> gate b ?name kind' vars
  end

let not_ b a = gate b Gate.Not [ a ]
let buf b a = gate b Gate.Buf [ a ]
let and2 b x y = gate b Gate.And [ x; y ]
let or2 b x y = gate b Gate.Or [ x; y ]
let xor2 b x y = gate b Gate.Xor [ x; y ]
let nand2 b x y = gate b Gate.Nand [ x; y ]
let nor2 b x y = gate b Gate.Nor [ x; y ]
let xnor2 b x y = gate b Gate.Xnor [ x; y ]
let andn b xs = gate b Gate.And xs
let orn b xs = gate b Gate.Or xs
let xorn b xs = gate b Gate.Xor xs

let mux b ~sel a0 a1 =
  match const_value b sel with
  | Some V0 -> a0
  | Some V1 -> a1
  | None ->
    if a0 = a1 then a0
    else begin
      let ns = not_ b sel in
      let t0 = and2 b ns a0 in
      let t1 = and2 b sel a1 in
      or2 b t0 t1
    end

let output b ?name node =
  if node < 0 || node >= b.n then invalid_arg "Builder.output: unknown node";
  match name with
  | None -> b.outputs <- node :: b.outputs
  | Some s ->
    let alias = add b Gate.Buf (Some s) [| node |] in
    b.outputs <- alias :: b.outputs

let finalize b =
  if b.frozen then invalid_arg "Builder: already finalized";
  b.frozen <- true;
  let outputs = List.rev b.outputs in
  let keep = Array.make b.n false in
  if b.prune then begin
    (* Keep primary inputs (the fault model requires their stuck-at faults)
       and everything feeding an output. *)
    for i = 0 to b.n - 1 do
      if b.kinds.(i) = Gate.Input then keep.(i) <- true
    done;
    let rec visit n =
      if not keep.(n) then begin
        keep.(n) <- true;
        Array.iter visit b.fanins.(n)
      end
    in
    List.iter visit outputs
  end
  else Array.fill keep 0 b.n true;
  let remap = Array.make b.n (-1) in
  let count = ref 0 in
  for i = 0 to b.n - 1 do
    if keep.(i) then begin
      remap.(i) <- !count;
      incr count
    end
  done;
  let m = !count in
  let kinds = Array.make m Gate.Input in
  let fanins = Array.make m [||] in
  let names = Array.make m "" in
  for i = 0 to b.n - 1 do
    if keep.(i) then begin
      let j = remap.(i) in
      kinds.(j) <- b.kinds.(i);
      fanins.(j) <- Array.map (fun f -> remap.(f)) b.fanins.(i);
      names.(j) <- b.names.(i)
    end
  done;
  Netlist.make ~kinds ~fanins ~names ~output_list:(List.map (fun o -> remap.(o)) outputs)
