exception Parse_error of int * string

type raw_decl =
  | Rinput
  | Rgate of Gate.kind * string list

let fail line msg = raise (Parse_error (line, msg))

let strip s = String.trim s

(* "g = NAND(a, b)" -> (g, NAND, [a;b]); "INPUT(g)" -> input decl. *)
let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else begin
    let paren_args inner =
      String.split_on_char ',' inner |> List.map strip |> List.filter (fun s -> s <> "")
    in
    let parse_call s =
      match String.index_opt s '(' with
      | None -> fail lineno ("expected '(' in: " ^ s)
      | Some i ->
        if s.[String.length s - 1] <> ')' then fail lineno ("expected ')' in: " ^ s);
        let head = strip (String.sub s 0 i) in
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        (head, paren_args inner)
    in
    match String.index_opt line '=' with
    | Some eq ->
      let lhs = strip (String.sub line 0 eq) in
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      let head, args = parse_call rhs in
      let kind =
        match Gate.of_string head with
        | Some k -> k
        | None -> fail lineno ("unknown gate type: " ^ head)
      in
      if kind = Gate.Input then fail lineno "INPUT cannot appear on the right-hand side";
      Some (`Decl (lhs, Rgate (kind, args)))
    | None ->
      let head, args = parse_call line in
      let arg =
        match args with [ a ] -> a | _ -> fail lineno "INPUT/OUTPUT take exactly one name"
      in
      (match String.uppercase_ascii head with
       | "INPUT" -> Some (`Decl (arg, Rinput))
       | "OUTPUT" -> Some (`Output arg)
       | _ -> fail lineno ("unknown directive: " ^ head))
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let decls : (string, raw_decl * int) Hashtbl.t = Hashtbl.create 256 in
  let order : string list ref = ref [] in
  let outputs : string list ref = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match parse_line lineno line with
      | None -> ()
      | Some (`Output name) -> outputs := name :: !outputs
      | Some (`Decl (name, d)) ->
        if Hashtbl.mem decls name then fail lineno ("duplicate declaration of " ^ name);
        Hashtbl.add decls name (d, lineno);
        order := name :: !order)
    lines;
  let order = List.rev !order in
  let outputs = List.rev !outputs in
  (* Topological sort by DFS over fanin references. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let kinds = ref [] and fanins = ref [] and names = ref [] in
  let next_id = ref 0 in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      if Hashtbl.mem visiting name then fail 0 ("combinational cycle through " ^ name);
      Hashtbl.add visiting name ();
      let decl =
        match Hashtbl.find_opt decls name with
        | Some (d, _) -> d
        | None -> fail 0 ("undeclared signal: " ^ name)
      in
      let fanin_ids =
        match decl with
        | Rinput -> [||]
        | Rgate (_, args) -> Array.of_list (List.map visit args)
      in
      Hashtbl.remove visiting name;
      let id = !next_id in
      incr next_id;
      Hashtbl.add ids name id;
      let kind = match decl with Rinput -> Gate.Input | Rgate (k, _) -> k in
      kinds := kind :: !kinds;
      fanins := fanin_ids :: !fanins;
      names := name :: !names;
      id
  in
  List.iter (fun name -> ignore (visit name)) order;
  let output_list =
    List.map
      (fun name ->
        match Hashtbl.find_opt ids name with
        | Some id -> id
        | None -> fail 0 ("OUTPUT references undeclared signal: " ^ name))
      outputs
  in
  Netlist.make
    ~kinds:(Array.of_list (List.rev !kinds))
    ~fanins:(Array.of_list (List.rev !fanins))
    ~names:(Array.of_list (List.rev !names))
    ~output_list

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print ppf c =
  Format.fprintf ppf "# %d inputs, %d outputs, %d gates@." (Array.length (Netlist.inputs c))
    (Array.length (Netlist.outputs c)) (Netlist.gate_count c);
  Array.iter (fun i -> Format.fprintf ppf "INPUT(%s)@." (Netlist.name c i)) (Netlist.inputs c);
  Array.iter (fun o -> Format.fprintf ppf "OUTPUT(%s)@." (Netlist.name c o)) (Netlist.outputs c);
  Netlist.iter_gates c (fun n ->
      let k = Netlist.kind c n in
      let spelled = match k with Gate.Buf -> "BUFF" | _ -> Gate.to_string k in
      let args =
        Netlist.fanin c n |> Array.to_list |> List.map (Netlist.name c) |> String.concat ", "
      in
      Format.fprintf ppf "%s = %s(%s)@." (Netlist.name c n) spelled args)

let to_string c = Format.asprintf "%a" print c

let save path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
