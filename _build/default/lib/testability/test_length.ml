let confidence ~n pfs = Rt_util.Prob.detection_confidence ~n pfs

let required ?(confidence = 0.95) pfs =
  if confidence <= 0.0 || confidence >= 1.0 then invalid_arg "Test_length.required";
  if Array.length pfs = 0 then 1.0
  else if Array.exists (fun p -> p <= 0.0) pfs then Float.infinity
  else begin
    let target = confidence in
    let conf n = Rt_util.Prob.detection_confidence ~n pfs in
    (* Exponential search then bisection on the monotone confidence. *)
    let rec grow hi = if conf hi >= target || hi > 1e15 then hi else grow (hi *. 2.0) in
    let hi = grow 1.0 in
    if conf hi < target then Float.infinity
    else begin
      let rec bisect lo hi =
        if hi -. lo <= Float.max 0.5 (1e-9 *. hi) then hi
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if conf mid >= target then bisect lo mid else bisect mid hi
        end
      in
      Float.round (bisect 0.0 hi +. 0.49)
    end
  end

let savir_bardell_bound ?(confidence = 0.95) pfs =
  if Array.length pfs = 0 then 1.0
  else begin
    let pmin = Array.fold_left Float.min 1.0 pfs in
    if pmin <= 0.0 then Float.infinity
    else begin
      let n_eff = Float.of_int (Array.length pfs) in
      Float.log (n_eff /. (1.0 -. confidence)) /. -.Float.log1p (-.pmin)
    end
  end

let hardest pfs ~k =
  let idx = Array.init (Array.length pfs) Fun.id in
  Array.sort (fun a b -> Float.compare pfs.(a) pfs.(b)) idx;
  Array.sub idx 0 (min k (Array.length idx))
