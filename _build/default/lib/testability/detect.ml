module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault
module Bdd = Rt_bdd.Bdd
module Bdd_circuit = Rt_bdd.Bdd_circuit

type engine =
  | Cop
  | Conditioned of { max_vars : int }
  | Bdd_exact of { node_limit : int }
  | Stafan of { n_patterns : int; seed : int }
  | Monte_carlo of { n_patterns : int; seed : int }

type oracle = {
  c : Netlist.t;
  fault_list : Fault.t array;
  run : float array -> float array;
  label : string;
  exact : bool array;
  redundant : bool array;
}

let injection f =
  match f.Fault.site with
  | Fault.Stem n -> Bdd_circuit.Stem (n, f.Fault.stuck)
  | Fault.Branch (g, k) -> Bdd_circuit.Pin (g, k, f.Fault.stuck)

let cop_probs c faults x =
  let sp = Signal_prob.independence c x in
  let obs = Observability.cop c ~node_probs:sp in
  Array.map
    (fun f ->
      let src = Fault.source f c in
      let act = if f.Fault.stuck then 1.0 -. sp.(src) else sp.(src) in
      match f.Fault.site with
      | Fault.Stem n -> act *. obs.(n)
      | Fault.Branch (g, k) ->
        act *. Observability.pin_observability c ~node_probs:sp ~obs g k)
    faults

(* PREDICT-style (ABS86): Shannon-expand the COP estimate over the
   highest-fanout inputs — activation and observability are conditionally
   estimated per assignment, which removes the input-level correlations
   plain COP ignores. *)
let conditioned_probs ~max_vars c faults x =
  let set = Signal_prob.conditioning_set ~max_vars c in
  if Array.length set = 0 then cop_probs c faults x
  else begin
    let k = Array.length set in
    let positions = Array.map (fun i -> Netlist.input_index c i) set in
    let acc = Array.make (Array.length faults) 0.0 in
    let x' = Array.copy x in
    for a = 0 to (1 lsl k) - 1 do
      let weight = ref 1.0 in
      Array.iteri
        (fun j pos ->
          if (a lsr j) land 1 = 1 then begin
            x'.(pos) <- 1.0;
            weight := !weight *. x.(pos)
          end
          else begin
            x'.(pos) <- 0.0;
            weight := !weight *. (1.0 -. x.(pos))
          end)
        positions;
      if !weight > 0.0 then begin
        let pf = cop_probs c faults x' in
        Array.iteri (fun n v -> acc.(n) <- acc.(n) +. (!weight *. v)) pf
      end
    done;
    acc
  end

let make_conditioned ~max_vars c faults =
  { c;
    fault_list = faults;
    run = (fun x -> conditioned_probs ~max_vars c faults x);
    label = Printf.sprintf "conditioned(cop, %d vars)" (Array.length (Signal_prob.conditioning_set ~max_vars c));
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let make_cop c faults =
  { c;
    fault_list = faults;
    run = (fun x -> cop_probs c faults x);
    label = "cop";
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

(* Exact engine.  Good-circuit BDDs are built once per "generation"; per
   fault only its transitive-fanout cone is rebuilt with the fault
   injected, and the boolean difference at the outputs becomes the fault's
   detection BDD.  The shared unique table fills up with per-fault
   intermediates, so when it overflows a fresh generation (new manager,
   same variable order, rebuilt good circuit) continues with the remaining
   faults — only a fault too large for an empty manager falls back to the
   COP estimate. *)
let make_bdd ~node_limit ?(max_generations = 6) c faults =
  let nf = Array.length faults in
  let fallback_probs = cop_probs c faults in
  let exact = Array.make nf false in
  let redundant = Array.make nf false in
  let order = Bdd_circuit.dfs_order c in
  let n = Netlist.size c in
  let outputs = Netlist.outputs c in
  let new_generation () =
    let m = Bdd.manager ~node_limit ~nvars:(Array.length (Netlist.inputs c)) () in
    let good = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      good.(i) <-
        (match Netlist.kind c i with
         | Gate.Input -> Bdd.var m order.(Netlist.input_index c i)
         | k -> Bdd.apply_kind m k (Array.map (fun j -> good.(j)) (Netlist.fanin c i)))
    done;
    (m, good)
  in
  let build_fault m good f =
    let site_node = match f.Fault.site with Fault.Stem s -> s | Fault.Branch (g, _) -> g in
    let mask = Rt_circuit.Cone.transitive_fanout c site_node in
    let bad = Array.make n (Bdd.zero m) in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let value =
          match f.Fault.site with
          | Fault.Stem s when s = i -> if f.Fault.stuck then Bdd.one m else Bdd.zero m
          | Fault.Stem _ | Fault.Branch _ ->
            let fanin = Netlist.fanin c i in
            let args = Array.map (fun j -> if mask.(j) then bad.(j) else good.(j)) fanin in
            let args =
              match f.Fault.site with
              | Fault.Branch (g, k) when g = i ->
                let args = Array.copy args in
                args.(k) <- (if f.Fault.stuck then Bdd.one m else Bdd.zero m);
                args
              | Fault.Branch _ | Fault.Stem _ -> args
            in
            Bdd.apply_kind m (Netlist.kind c i) args
        in
        bad.(i) <- value
      end
    done;
    Array.fold_left
      (fun acc o -> if mask.(o) then Bdd.or_ m acc (Bdd.xor_ m good.(o) bad.(o)) else acc)
      (Bdd.zero m) outputs
  in
  (* detect_roots.(fi) = Some (generation, root). *)
  let detect_roots = Array.make nf None in
  let generations = ref [] in
  let total_nodes = ref 0 in
  (match new_generation () with
   | exception Bdd.Limit_exceeded -> ()
   | first_gen ->
     let current = ref first_gen in
     let gen_idx = ref 0 in
     let fresh = ref true in
     let gen_yield = ref 0 in
     (* A generation that places almost no faults before overflowing means
        the per-fault BDDs are intrinsically large for this circuit;
        further generations would burn time for nothing. *)
     let min_yield = max 8 (nf / 20) in
     generations := [ first_gen ];
     let fi = ref 0 in
     while !fi < nf do
       let f = faults.(!fi) in
       let m, good = !current in
       (match build_fault m good f with
        | detect ->
          detect_roots.(!fi) <- Some (!gen_idx, detect);
          exact.(!fi) <- true;
          if Bdd.is_zero detect then redundant.(!fi) <- true;
          fresh := false;
          incr gen_yield;
          incr fi
        | exception Bdd.Limit_exceeded ->
          if !fresh then begin
            (* Too big even for an empty manager: estimate this fault. *)
            incr fi
          end
          else if List.length !generations >= max_generations || !gen_yield < min_yield then
            fi := nf
          else begin
            match new_generation () with
            | exception Bdd.Limit_exceeded -> fi := nf
            | gen ->
              total_nodes := !total_nodes + Bdd.node_count m;
              current := gen;
              incr gen_idx;
              fresh := true;
              gen_yield := 0;
              generations := !generations @ [ gen ]
          end)
     done;
     let m, _ = !current in
     total_nodes := !total_nodes + Bdd.node_count m);
  let generations = Array.of_list !generations in
  let run x =
    let x_of_var = Array.make (max 1 (Array.length order)) 0.5 in
    Array.iteri (fun i v -> x_of_var.(v) <- x.(i)) order;
    let out = Array.make nf 0.0 in
    let need_fallback = ref false in
    (* Batch the prob evaluation per generation to share memo tables. *)
    Array.iteri
      (fun gi (m, _) ->
        let idxs = ref [] and roots = ref [] in
        Array.iteri
          (fun fi r ->
            match r with
            | Some (g, root) when g = gi ->
              idxs := fi :: !idxs;
              roots := root :: !roots
            | Some _ | None -> ())
          detect_roots;
        let vals = Bdd.prob_many m (Array.of_list !roots) (fun v -> x_of_var.(v)) in
        List.iteri (fun j fi -> out.(fi) <- vals.(j)) !idxs)
      generations;
    Array.iteri (fun fi r -> if r = None then need_fallback := true else ignore fi) detect_roots;
    if !need_fallback then begin
      let fb = fallback_probs x in
      Array.iteri (fun fi r -> if r = None then out.(fi) <- fb.(fi)) detect_roots
    end;
    out
  in
  let n_exact = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 exact in
  { c;
    fault_list = faults;
    run;
    label =
      Printf.sprintf "bdd-exact(%d/%d exact, %d generations, %d nodes)" n_exact nf
        (Array.length generations) !total_nodes;
    exact;
    redundant }

let make_stafan ~n_patterns ~seed c faults =
  let run x =
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.weighted rng x in
    let counts = Stafan.count c ~source ~n_patterns in
    Stafan.detection_probs c counts faults
  in
  { c;
    fault_list = faults;
    run;
    label = Printf.sprintf "stafan(%d patterns)" n_patterns;
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let make_mc ~n_patterns ~seed c faults =
  let run x = Rt_sim.Detect_mc.detection_probs c faults ~weights:x ~n_patterns ~seed in
  { c;
    fault_list = faults;
    run;
    label = Printf.sprintf "monte-carlo(%d patterns)" n_patterns;
    exact = Array.make (Array.length faults) false;
    redundant = Array.make (Array.length faults) false }

let make engine c faults =
  match engine with
  | Cop -> make_cop c faults
  | Conditioned { max_vars } -> make_conditioned ~max_vars c faults
  | Bdd_exact { node_limit } -> make_bdd ~node_limit c faults
  | Stafan { n_patterns; seed } -> make_stafan ~n_patterns ~seed c faults
  | Monte_carlo { n_patterns; seed } -> make_mc ~n_patterns ~seed c faults

let probs o x =
  if Array.length x <> Array.length (Netlist.inputs o.c) then
    invalid_arg "Detect.probs: weight vector width mismatch";
  o.run x

let faults o = o.fault_list
let circuit o = o.c
let describe o = o.label
let exact_mask o = Array.copy o.exact
let proven_redundant o = Array.copy o.redundant
