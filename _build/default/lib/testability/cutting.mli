(** Guaranteed signal-probability bounds — the role of Savir's cutting
    algorithm (cited by the paper as [BDS84]).

    Where the original algorithm cuts reconvergent fanout branches and
    assigns them the unknowable interval [0,1], this implementation tracks
    each node's input support and switches the combination rule at every
    gate: exact interval corners where the operand supports are disjoint
    (true independence), Frechet bounds — valid under {e any} joint
    distribution — where they overlap, i.e. exactly at the reconvergent
    meets the original would cut.  Unlike naive corner propagation this is
    sound for XOR as well.  The resulting [lo, hi] provably brackets the
    true signal probability; the test suite checks the exact value and the
    independence estimate both fall inside. *)

val bounds : Rt_circuit.Netlist.t -> float array -> (float * float) array
(** Per-node [(lo, hi)] given input probabilities. *)

val contains : (float * float) array -> float array -> bool
(** [contains bounds probs]: every probability inside its interval (with a
    1e-9 slack for rounding). *)
