module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

(* Guaranteed signal-probability bounds in the spirit of Savir's cutting
   algorithm.  Where the original cuts reconvergent branches and assigns
   them [0,1], we track each node's input support and switch combination
   rule by dependence:

   - disjoint supports: the lines are genuinely independent, so the exact
     interval-corner arithmetic of the gate function applies;
   - overlapping supports (a reconvergent meet — exactly where the original
     algorithm would cut): Frechet bounds, which are valid under ANY joint
     distribution of the two lines.

   This is sound for all gate types including XOR, where naive corner
   arithmetic fails (XOR of two copies of the same 0.5-probability signal
   is identically 0, not 0.5). *)

let i_not (a, b) = (1.0 -. b, 1.0 -. a)

(* Independent combination (corners). *)
let ind_and (a, b) (c, d) = (a *. c, b *. d)
let ind_or (a, b) (c, d) = (1.0 -. ((1.0 -. a) *. (1.0 -. c)), 1.0 -. ((1.0 -. b) *. (1.0 -. d)))

let ind_xor (a, b) (c, d) =
  let f x y = (x *. (1.0 -. y)) +. (y *. (1.0 -. x)) in
  let corners = [ f a c; f a d; f b c; f b d ] in
  (List.fold_left Float.min 1.0 corners, List.fold_left Float.max 0.0 corners)

(* Frechet combination: valid for arbitrarily correlated lines with
   marginals inside the given intervals. *)
let fre_and (a, b) (c, d) = (Float.max 0.0 (a +. c -. 1.0), Float.min b d)
let fre_or (a, b) (c, d) = (Float.max a c, Float.min 1.0 (b +. d))

let fre_xor (a, b) (c, d) =
  (* P(x <> y) for marginals (p, q): ranges over [|p-q|, min(p+q, 2-p-q)]. *)
  let lo =
    (* minimum over the box of |p - q|: 0 if the intervals intersect. *)
    if b < c then c -. b else if d < a then a -. d else 0.0
  in
  let hi =
    (* maximize min(p+q, 2-p-q): the max is at p+q as close to 1 as the box
       allows. *)
    let s_min = a +. c and s_max = b +. d in
    if s_min <= 1.0 && 1.0 <= s_max then 1.0 else if s_max < 1.0 then s_max else 2.0 -. s_min
  in
  (lo, hi)

let clamp01 (lo, hi) = (Float.max 0.0 lo, Float.min 1.0 hi)

let bounds c x =
  if Array.length x <> Array.length (Netlist.inputs c) then
    invalid_arg "Cutting.bounds: weight vector width mismatch";
  let n = Netlist.size c in
  let n_inputs = Array.length (Netlist.inputs c) in
  let words = (n_inputs + 62) / 63 in
  let support : int array array = Array.make n [||] in
  let overlaps a b =
    let rec go i = i < words && (a.(i) land b.(i) <> 0 || go (i + 1)) in
    Array.length a > 0 && Array.length b > 0 && go 0
  in
  let union a b =
    if Array.length a = 0 then b
    else if Array.length b = 0 then a
    else Array.init words (fun i -> a.(i) lor b.(i))
  in
  let iv = Array.make n (0.0, 1.0) in
  for g = 0 to n - 1 do
    match Netlist.kind c g with
    | Gate.Input ->
      let pos = Netlist.input_index c g in
      let s = Array.make words 0 in
      s.(pos / 63) <- 1 lsl (pos mod 63);
      support.(g) <- s;
      iv.(g) <- (x.(pos), x.(pos))
    | Gate.Const0 ->
      support.(g) <- [||];
      iv.(g) <- (0.0, 0.0)
    | Gate.Const1 ->
      support.(g) <- [||];
      iv.(g) <- (1.0, 1.0)
    | k ->
      let fi = Netlist.fanin c g in
      let combine ind fre =
        (* Fold fanins left to right, switching rule by support overlap of
           the accumulated prefix against the next operand. *)
        let acc_iv = ref iv.(fi.(0)) in
        let acc_sup = ref support.(fi.(0)) in
        for p = 1 to Array.length fi - 1 do
          let rule = if overlaps !acc_sup support.(fi.(p)) then fre else ind in
          acc_iv := clamp01 (rule !acc_iv iv.(fi.(p)));
          acc_sup := union !acc_sup support.(fi.(p))
        done;
        !acc_iv
      in
      support.(g) <- Array.fold_left (fun acc j -> union acc support.(j)) [||] fi;
      iv.(g) <-
        (match k with
         | Gate.Input | Gate.Const0 | Gate.Const1 -> assert false
         | Gate.Buf -> iv.(fi.(0))
         | Gate.Not -> i_not iv.(fi.(0))
         | Gate.And -> combine ind_and fre_and
         | Gate.Nand -> i_not (combine ind_and fre_and)
         | Gate.Or -> combine ind_or fre_or
         | Gate.Nor -> i_not (combine ind_or fre_or)
         | Gate.Xor -> combine ind_xor fre_xor
         | Gate.Xnor -> i_not (combine ind_xor fre_xor))
  done;
  iv

let contains iv probs =
  let ok = ref true in
  Array.iteri
    (fun i p ->
      let lo, hi = iv.(i) in
      if p < lo -. 1e-9 || p > hi +. 1e-9 then ok := false)
    probs;
  !ok
