lib/testability/detect.ml: Array List Observability Printf Rt_bdd Rt_circuit Rt_fault Rt_sim Rt_util Signal_prob Stafan
