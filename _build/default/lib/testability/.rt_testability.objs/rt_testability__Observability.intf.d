lib/testability/observability.mli: Rt_circuit
