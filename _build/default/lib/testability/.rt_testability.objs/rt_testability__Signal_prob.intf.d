lib/testability/signal_prob.mli: Rt_circuit
