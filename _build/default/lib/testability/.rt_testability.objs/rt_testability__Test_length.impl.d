lib/testability/test_length.ml: Array Float Fun Rt_util
