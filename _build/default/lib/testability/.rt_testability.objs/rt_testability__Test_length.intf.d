lib/testability/test_length.mli:
