lib/testability/stafan.mli: Observability Rt_circuit Rt_fault Rt_sim
