lib/testability/observability.ml: Array Float List Rt_circuit
