lib/testability/detect.mli: Rt_bdd Rt_circuit Rt_fault
