lib/testability/cutting.ml: Array Float List Rt_circuit
