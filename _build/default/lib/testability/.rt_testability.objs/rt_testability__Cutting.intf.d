lib/testability/cutting.mli: Rt_circuit
