lib/testability/signal_prob.ml: Array Float List Rt_bdd Rt_circuit
