lib/testability/stafan.ml: Array Float Int64 List Observability Rt_circuit Rt_fault Rt_sim
