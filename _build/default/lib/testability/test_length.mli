(** Random test length computation — paper equation (1).

    The confidence of an [N]-pattern random test is
    [prod_f (1 - (1 - p_f)^N)]; the required test length is the least [N]
    reaching a target confidence.  All arithmetic is log-domain so test
    lengths up to 10^12+ (paper Table 1) evaluate without underflow. *)

val confidence : n:float -> float array -> float
(** Equation (1) at test length [n]. *)

val required : ?confidence:float -> float array -> float
(** Least [N] (real-valued, rounded up) with confidence at least the target
    (default 0.95); [infinity] if some fault has [p_f = 0]. *)

val savir_bardell_bound : ?confidence:float -> float array -> float
(** The closed-form upper bound driven by the hardest faults
    ([BaSi84], cited in the paper's §4 observation (1)):
    [N <= ln (n_eff / (1 - c)) / -ln (1 - p_min)]. *)

val hardest : float array -> k:int -> int array
(** Indices of the [k] smallest detection probabilities, ascending — the
    paper's SORT output prefix. *)
