lib/bdd/bdd_circuit.mli: Bdd Rt_circuit
