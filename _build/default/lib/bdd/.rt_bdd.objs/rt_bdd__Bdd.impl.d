lib/bdd/bdd.ml: Array Hashtbl List Rt_circuit
