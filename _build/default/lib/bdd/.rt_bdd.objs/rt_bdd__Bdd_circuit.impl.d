lib/bdd/bdd_circuit.ml: Array Bdd Rt_circuit
