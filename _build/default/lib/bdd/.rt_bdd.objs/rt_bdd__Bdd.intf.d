lib/bdd/bdd.mli: Rt_circuit
