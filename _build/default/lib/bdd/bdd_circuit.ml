module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

type injection =
  | Stem of Netlist.node * bool
  | Pin of Netlist.node * int * bool

(* Depth-first traversal from the outputs; inputs get variable levels in
   first-visit order.  Unreached inputs (possible in pathological netlists)
   are appended at the end. *)
let dfs_order c =
  let n_inputs = Array.length (Netlist.inputs c) in
  let order = Array.make n_inputs (-1) in
  let next = ref 0 in
  let seen = Array.make (Netlist.size c) false in
  let rec visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      (match Netlist.kind c n with
       | Gate.Input ->
         order.(Netlist.input_index c n) <- !next;
         incr next
       | _ -> Array.iter visit (Netlist.fanin c n))
    end
  in
  Array.iter visit (Netlist.outputs c);
  Array.iteri
    (fun i v ->
      if v < 0 then begin
        order.(i) <- !next;
        incr next
      end)
    order;
  order

let prob_of_inputs ~order x v =
  (* order maps input position -> variable; invert lazily (arrays are small). *)
  let n = Array.length order in
  let rec find i = if i >= n then invalid_arg "Bdd_circuit.prob_of_inputs" else if order.(i) = v then x.(i) else find (i + 1) in
  find 0

let build_into m ~order ?inject c =
  let n = Netlist.size c in
  let bdds = Array.make n (Bdd.zero m) in
  for i = 0 to n - 1 do
    let node_bdd =
      match Netlist.kind c i with
      | Gate.Input -> Bdd.var m order.(Netlist.input_index c i)
      | k ->
        let fanin = Netlist.fanin c i in
        let args = Array.map (fun j -> bdds.(j)) fanin in
        let args =
          match inject with
          | Some (Pin (g, pin, v)) when g = i ->
            let args = Array.copy args in
            args.(pin) <- (if v then Bdd.one m else Bdd.zero m);
            args
          | Some (Pin _ | Stem _) | None -> args
        in
        Bdd.apply_kind m k args
    in
    let node_bdd =
      match inject with
      | Some (Stem (g, v)) when g = i -> if v then Bdd.one m else Bdd.zero m
      | Some (Stem _ | Pin _) | None -> node_bdd
    in
    bdds.(i) <- node_bdd
  done;
  bdds

let build ?(node_limit = 500_000) ?order ?inject c =
  let order = match order with Some o -> o | None -> dfs_order c in
  let m = Bdd.manager ~node_limit ~nvars:(Array.length (Netlist.inputs c)) () in
  match build_into m ~order ?inject c with
  | bdds -> Some (m, bdds, order)
  | exception Bdd.Limit_exceeded -> None

let signal_probs ?node_limit c x =
  match build ?node_limit c with
  | None -> None
  | Some (m, bdds, order) ->
    let x_of_var = Array.make (Array.length order) 0.5 in
    Array.iteri (fun i v -> x_of_var.(v) <- x.(i)) order;
    Some (Bdd.prob_many m bdds (fun v -> x_of_var.(v)))

let detection_function ?(node_limit = 500_000) c inject =
  let order = dfs_order c in
  let m = Bdd.manager ~node_limit ~nvars:(Array.length (Netlist.inputs c)) () in
  match
    let good = build_into m ~order c in
    let bad = build_into m ~order ~inject c in
    let outs = Netlist.outputs c in
    Array.fold_left
      (fun acc o -> Bdd.or_ m acc (Bdd.xor_ m good.(o) bad.(o)))
      (Bdd.zero m) outs
  with
  | detect -> Some (m, detect, order)
  | exception Bdd.Limit_exceeded -> None

let detection_prob ?node_limit c inject x =
  match detection_function ?node_limit c inject with
  | None -> None
  | Some (m, detect, order) ->
    let x_of_var = Array.make (Array.length order) 0.5 in
    Array.iteri (fun i v -> x_of_var.(v) <- x.(i)) order;
    Some (Bdd.prob m detect (fun v -> x_of_var.(v)))
