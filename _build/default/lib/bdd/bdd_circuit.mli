(** Building BDDs for netlist nodes, with optional fault injection.

    Variables are the primary inputs in [Netlist.inputs] order (variable [i]
    is input position [i]).  Construction is bottom-up in topological order;
    a {!Bdd.Limit_exceeded} anywhere aborts with [None] results, signalling
    the caller to fall back to an estimator. *)

val dfs_order : Rt_circuit.Netlist.t -> int array
(** A variable order (input position -> BDD variable level) from a
    depth-first traversal of the output cones.  Structurally related inputs
    (e.g. the two operands of a comparator) end up interleaved, which keeps
    BDDs of comparators, adders and parity cones polynomial where the
    declaration order is exponential.  All functions below use it by
    default; pass [~order] to override. *)

type injection =
  | Stem of Rt_circuit.Netlist.node * bool
      (** Force a node's function to a constant — a stuck-at on the stem. *)
  | Pin of Rt_circuit.Netlist.node * int * bool
      (** [Pin (g, k, v)]: gate [g] sees its [k]-th fanin as constant [v] —
          a stuck-at on one fanout branch. *)

val build :
  ?node_limit:int ->
  ?order:int array ->
  ?inject:injection ->
  Rt_circuit.Netlist.t ->
  (Bdd.manager * Bdd.t array * int array) option
(** BDD for every node of the circuit plus the variable order used (input
    position -> variable); [None] if the node limit (default 500_000) was
    hit.  BDD variables are order-ranks: to evaluate probabilities, map
    variable [v] back through the returned order. *)

val prob_of_inputs : order:int array -> float array -> int -> float
(** [prob_of_inputs ~order x v] is the probability of BDD variable [v]
    given per-input probabilities [x] — the argument to {!Bdd.prob} and
    {!Bdd.prob_many}. *)

val signal_probs : ?node_limit:int -> Rt_circuit.Netlist.t -> float array -> float array option
(** Exact signal probability of every node when input [i] is true with
    probability [x_i] — the Parker-McCluskey computation. *)

val detection_function :
  ?node_limit:int ->
  Rt_circuit.Netlist.t ->
  injection ->
  (Bdd.manager * Bdd.t * int array) option
(** The boolean difference: BDD of "some primary output differs between the
    good circuit and the injected-fault circuit" (with the order used).
    Its {!Bdd.prob} under the input distribution is the {e exact} fault
    detection probability [p_f(X)]. *)

val detection_prob :
  ?node_limit:int -> Rt_circuit.Netlist.t -> injection -> float array -> float option
(** [detection_prob c inj x] composes {!detection_function} and {!Bdd.prob}. *)
