(* Benchmark harness: reproduces every table and figure of the paper
   (Tables 1-5, Fig. 1-2, the appendix weight listings, and the §3/§5.3
   extension experiments), then measures the library's computational
   kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 quick reproduction + kernels
     dune exec bench/main.exe -- --full       paper-scale reproduction
     dune exec bench/main.exe -- --only t3,f2 selected experiments
     dune exec bench/main.exe -- --no-perf    skip the Bechamel section *)

let parse_args () =
  let full = ref (Sys.getenv_opt "OPTPROB_BENCH_FULL" = Some "1") in
  let only = ref None in
  let perf = ref true in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      go rest
    | "--no-perf" :: rest ->
      perf := false;
      go rest
    | "--only" :: ids :: rest ->
      only := Some (String.split_on_char ',' ids);
      go rest
    | _ :: rest -> go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (!full, !only, !perf)

let run_experiments ~full ~only =
  let tables =
    match only with
    | None -> Rt_repro.Experiments.all ~full ()
    | Some ids ->
      List.filter_map
        (fun id ->
          match Rt_repro.Experiments.by_id id with
          | Some f -> Some (f ~full ())
          | None ->
            Format.eprintf "unknown experiment id: %s@." id;
            None)
        ids
  in
  List.iter (Rt_repro.Experiments.print_table Format.std_formatter) tables

(* --- Bechamel kernels ----------------------------------------------------- *)

open Bechamel
open Toolkit

let kernel_tests () =
  let c = Rt_circuit.Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs c) in
  let x = Array.make n_inputs 0.5 in
  let cop = Rt_testability.Detect.make Rt_testability.Detect.Cop c faults in
  let bdd =
    Rt_testability.Detect.make (Rt_testability.Detect.Bdd_exact { node_limit = 500_000 }) c faults
  in
  let sim = Rt_sim.Logic_sim.create c in
  let rng = Rt_util.Rng.create 1 in
  let source = Rt_sim.Pattern.equiprobable rng ~n_inputs in
  let lfsr = Rt_bist.Lfsr.create ~width:32 1L in
  let mult = Rt_circuit.Generators.c6288ish ~width:8 () in
  let mult_faults = Rt_fault.Collapse.collapsed_universe mult in
  let mult_rng = Rt_util.Rng.create 2 in
  let mult_source =
    Rt_sim.Pattern.equiprobable mult_rng ~n_inputs:(Array.length (Rt_circuit.Netlist.inputs mult))
  in
  [ Test.make ~name:"cop analysis (s1, 534 faults)"
      (Staged.stage (fun () -> ignore (Rt_testability.Detect.probs cop x)));
    Test.make ~name:"exact bdd analysis (s1, 534 faults)"
      (Staged.stage (fun () -> ignore (Rt_testability.Detect.probs bdd x)));
    Test.make ~name:"logic sim 64 patterns (s1)"
      (Staged.stage (fun () -> Rt_sim.Logic_sim.run sim (source ())));
    Test.make ~name:"ppsfp 256 patterns (8x8 multiplier)"
      (Staged.stage (fun () ->
           ignore
             (Rt_sim.Fault_sim.simulate ~drop:true mult mult_faults ~source:mult_source
                ~n_patterns:256)));
    Test.make ~name:"lfsr 64-bit word"
      (Staged.stage (fun () -> ignore (Rt_bist.Lfsr.step_word lfsr 64))) ]

let run_perf () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (kernel_tests ()) in
  let raw_results = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Format.printf "@.== PERF: kernel timings (Bechamel, ns/run) ==@.";
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) tbl [] in
      List.iter
        (fun (test_name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "%-55s %12.0f ns/run@." test_name est
          | Some _ | None -> Format.printf "%-55s (no estimate)@." test_name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    results

let () =
  let full, only, perf = parse_args () in
  Format.printf "optprob reproduction harness (%s mode)@."
    (if full then "full paper-scale" else "quick");
  let t0 = Rt_util.Stats.timer_start () in
  run_experiments ~full ~only;
  Format.printf "@.experiments completed in %.1fs@." (Rt_util.Stats.timer_elapsed t0);
  if perf then run_perf ()
