(* optprob — command-line front end.

   Subcommands: list, generate, simplify, analyze, optimize, simulate,
   run, atpg, selftest, tables, obs-diff, and the `obs` family
   (list/show/ingest/trend/baseline/diff/gc) over the persistent run
   registry.  Every compute subcommand is a thin layer
   over the Rt_pipeline stage graph: it builds one validated
   Rt_pipeline.Config via the shared Cli terms, creates a pipeline
   context, and asks for the stages it needs.  With --work-dir the stage
   artifacts are content-addressed on disk, so re-runs (`optprob run`)
   resume past everything unchanged. *)

open Cmdliner
module Pipeline = Rt_pipeline
module Config = Rt_pipeline.Config
module Cli = Rt_pipeline.Cli
module Registry = Rt_obs_registry

(* --- observability flags ---------------------------------------------------
   Shared by the compute-heavy subcommands.  The unified form is
   --obs-dir DIR: one self-describing artifact directory per run
   (manifest.json, events.jsonl, metrics.json, metrics.prom, trace.json
   and, for optimize/run, convergence.json), diffable with `optprob
   obs-diff`.  The legacy --trace/--metrics (and optimize's --convergence)
   flags keep working as standalone aliases for the corresponding
   artifact.  Any of them enables Rt_obs recording; the disabled default
   costs one branch per probe.  While an --obs-dir run is in flight,
   SIGUSR1 dumps a live metrics snapshot into the directory. *)

type obs = {
  obs_dir : string option;
  trace : string option;
  metrics : string option;
  verbose : bool;
  sample_ms : int option;
  listen : int option;
  registry : string option;  (* "" = the default registry directory *)
  mutable t_start : float;
  mutable sampler : Rt_obs.Timeline.sampler option;
  mutable server : Rt_obs_http.t option;
}

let resolve_registry obs =
  match obs.registry with
  | Some "" -> Some (Registry.default_dir ())
  | other -> other

let obs_dir_arg =
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
         ~doc:"Write the full run artifact (manifest.json, events.jsonl, metrics.json, \
               metrics.prom, trace.json, timeline.json, convergence.json) to $(docv); \
               compare two run directories with $(b,optprob obs-diff).  SIGUSR1 dumps a \
               live metrics snapshot mid-run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the span timeline as Chrome trace_event JSON to $(docv) \
               (open in chrome://tracing or https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the counter/gauge/histogram snapshot as JSON to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Print the aggregated phase timings, counters and latency histograms to stderr.")

let sample_ms_arg =
  Arg.(value & opt (some int) None & info [ "obs-sample-ms" ] ~docv:"MS"
         ~doc:"Start a background sampler domain snapshotting all counters and gauges \
               (pool utilization, queue depths, GC, live faults) every $(docv) \
               milliseconds into a bounded ring buffer, flushed to timeline.json in the \
               --obs-dir artifact.")

let listen_arg =
  Arg.(value & opt (some int) None & info [ "obs-listen" ] ~docv:"PORT"
         ~doc:"Serve live observability over HTTP on 127.0.0.1:$(docv) while the run is \
               in flight: /metrics (OpenMetrics), /healthz, /snapshot (metrics JSON).  \
               Port 0 picks an ephemeral port (printed on startup).")

let registry_flag_arg =
  Arg.(value & opt ~vopt:(Some "") (some string) None
       & info [ "obs-registry" ] ~docv:"DIR"
         ~env:(Cmd.Env.info "OPTPROB_OBS_REGISTRY")
         ~doc:"Ingest this run's observability artifact into the persistent run registry \
               at $(docv) when it completes (bare flag: $(b,_obs/registry), or \
               $(b,OPTPROB_OBS_REGISTRY)).  Query the history with $(b,optprob obs) \
               list/show/trend/diff.")

let obs_arg =
  Term.(const (fun obs_dir trace metrics verbose sample_ms listen registry ->
            { obs_dir; trace; metrics; verbose; sample_ms; listen; registry;
              t_start = 0.0; sampler = None; server = None })
        $ obs_dir_arg $ trace_arg $ metrics_arg $ verbose_arg $ sample_ms_arg $ listen_arg
        $ registry_flag_arg)

let obs_begin obs =
  obs.t_start <- Unix.gettimeofday ();
  if obs.obs_dir <> None || obs.trace <> None || obs.metrics <> None || obs.verbose
     || obs.sample_ms <> None || obs.listen <> None || obs.registry <> None
  then Rt_obs.set_enabled true;
  (match obs.obs_dir with
   | Some dir ->
     (try
        Sys.set_signal Sys.sigusr1
          (Sys.Signal_handle (fun _ -> Rt_obs.Artifact.write_live ~dir))
      with Invalid_argument _ | Sys_error _ -> ())
   | None -> ());
  (match obs.sample_ms with
   | Some period_ms when period_ms >= 1 ->
     obs.sampler <- Some (Rt_obs.Timeline.start ~period_ms ())
   | Some bad -> failwith (Printf.sprintf "--obs-sample-ms %d: period must be >= 1" bad)
   | None -> ());
  match obs.listen with
  | Some port when port >= 0 && port < 65536 ->
    (try
       let registry = resolve_registry obs in
       let srv = Rt_obs_http.start ?registry ~port () in
       obs.server <- Some srv;
       Format.eprintf "obs: serving /metrics /healthz /snapshot%s on http://127.0.0.1:%d@."
         (if registry <> None then " /runs /trend" else "")
         (Rt_obs_http.port srv)
     with Unix.Unix_error (err, _, _) ->
       failwith
         (Printf.sprintf "--obs-listen %d: cannot bind (%s)" port (Unix.error_message err)))
  | Some bad -> failwith (Printf.sprintf "--obs-listen %d: not a valid port" bad)
  | None -> ()

(* Keep the HTTP endpoint answering briefly after the artifacts are written
   — scripted clients (make obs-live-demo, CI) race the run's natural end. *)
let obs_linger () =
  match Sys.getenv_opt "OPTPROB_OBS_LINGER_MS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some ms when ms > 0 -> Unix.sleepf (Float.of_int ms /. 1000.0)
     | _ -> ())
  | None -> ()

(* The manifest carries the full config slice (engine, seed, jobs, circuit,
   patterns, block_words, opt_passes, opt_rounds, objective) so registry
   queries and
   trend filters never have to re-parse argv. *)
let manifest_of_cfg ?(cfg : Config.t option) obs =
  let f g = Option.map g cfg in
  Rt_obs.Artifact.make_manifest
    ?engine:(f (fun c -> c.Config.engine))
    ?seed:(f (fun c -> c.Config.seed))
    ?jobs:(Option.bind cfg (fun c -> c.Config.jobs))
    ?circuit:(f (fun c -> Config.circuit_name c.Config.circuit))
    ?patterns:(f (fun c -> c.Config.patterns))
    ?block_words:(Option.bind cfg (fun c -> c.Config.block_words))
    ?opt_passes:(f (fun c -> c.Config.opt_passes))
    ?opt_rounds:(f (fun c -> c.Config.opt_rounds))
    ?objective:(f (fun c -> Config.objective_key c))
    ~argv:Sys.argv
    ~wall_s:(Unix.gettimeofday () -. obs.t_start) ()

let obs_end ?(cfg : Config.t option) ?convergence obs =
  (* stop the sampler first so its final sample lands in the timeline and
     in the artifact snapshot below *)
  let timeline =
    match obs.sampler with
    | Some s ->
      obs.sampler <- None;
      let samples, dropped = Rt_obs.Timeline.stop s in
      Some (samples, dropped)
    | None -> None
  in
  (match obs.trace with
   | Some path ->
     Rt_obs.write_trace path;
     Format.eprintf "wrote trace %s@." path
   | None -> ());
  (match obs.metrics with
   | Some path ->
     Rt_obs.write_metrics path;
     Format.eprintf "wrote metrics %s@." path
   | None -> ());
  let write_artifact dir =
    Rt_obs.Artifact.write ~dir ~manifest:(manifest_of_cfg ?cfg obs) ?convergence ();
    match (timeline, obs.sample_ms) with
    | Some (samples, dropped), Some period_ms ->
      Rt_obs.Timeline.write (Filename.concat dir "timeline.json") ~period_ms ~dropped samples
    | _ -> ()
  in
  (match obs.obs_dir with
   | Some dir ->
     write_artifact dir;
     Format.eprintf "wrote run artifact %s@." dir
   | None -> ());
  (* flag-gated auto-ingest: every completed run lands in the registry *)
  (match resolve_registry obs with
   | None -> ()
   | Some reg ->
     let ingest dir =
       match Registry.ingest ~registry:reg ~obs_dir:dir () with
       | Ok id -> Format.eprintf "registry: ingested %s into %s@." id reg
       | Error msg -> Format.eprintf "registry: ingest failed: %s@." msg
     in
     (match obs.obs_dir with
      | Some dir -> ingest dir
      | None ->
        (* no --obs-dir: write a transient artifact just long enough to
           ingest it *)
        let tmp = Filename.concat reg (Printf.sprintf "tmp-ingest.%d" (Unix.getpid ())) in
        write_artifact tmp;
        ingest tmp;
        Array.iter
          (fun f -> try Sys.remove (Filename.concat tmp f) with Sys_error _ -> ())
          (try Sys.readdir tmp with Sys_error _ -> [||]);
        (try Unix.rmdir tmp with Unix.Unix_error _ -> ())));
  (match obs.server with
   | Some srv ->
     obs.server <- None;
     obs_linger ();
     Rt_obs_http.stop srv
   | None -> ());
  if obs.verbose then begin
    Rt_obs.sample_gc ();
    Rt_obs.pp_summary Format.err_formatter
  end

let exits = Cmd.Exit.defaults

let wrap f = try `Ok (f ()) with Failure msg -> `Error (false, msg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Format.printf "built-in circuits:@.";
    List.iter
      (fun (name, gen) ->
        let c = gen () in
        Format.printf "  %-10s %t@." name (fun ppf -> Rt_circuit.Netlist.stats c ppf))
      Rt_circuit.Generators.paper_suite;
    Format.printf "  %-10s pathological pair for --partition (section 5.3)@." "antagonist";
    Format.printf "parameterised: wide_and-N, s2:W, c6288ish:W@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in circuit generators." ~exits)
    Term.(ret (const (fun () -> wrap run) $ const ()))

(* --- generate -------------------------------------------------------------- *)

let generate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the netlist to FILE instead of stdout.")
  in
  let run circuit out () =
    let ctx = Pipeline.create (Config.exn (Config.of_source circuit)) in
    (* the raw netlist: `generate` prints the circuit as defined, not its
       optimized form (that's `simplify -o`) *)
    let c = Pipeline.raw_circuit ctx in
    match out with
    | Some path ->
      Rt_circuit.Bench_format.save path c;
      Format.printf "wrote %s (%t)@." path (fun ppf -> Rt_circuit.Netlist.stats c ppf)
    | None -> print_string (Rt_circuit.Bench_format.to_string c)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a circuit as ISCAS-85 .bench text." ~exits)
    Term.(ret (const (fun c o () -> wrap (run c o)) $ Cli.circuit_arg $ out $ const ()))

(* --- simplify --------------------------------------------------------------- *)

let simplify_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized netlist as .bench text to FILE.")
  in
  let run circuit no_opt opt_passes opt_rounds out () =
    let opt_passes = if no_opt then Some [] else opt_passes in
    let cfg = Config.exn (Config.of_source ?opt_passes ~opt_rounds circuit) in
    let ctx = Pipeline.create cfg in
    let raw = Pipeline.raw_circuit ctx in
    let c = Pipeline.circuit ctx in
    let stats = Pipeline.opt_stats ctx in
    Format.printf "before: %t@." (fun ppf -> Rt_circuit.Netlist.stats raw ppf);
    Format.printf "after:  %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
    Format.printf "rounds: %d  nodes removed: %d@." stats.Rt_circuit.Passes.rounds
      (Rt_circuit.Netlist.size raw - Rt_circuit.Netlist.size c);
    Format.printf "%a" Rt_circuit.Passes.pp_stats stats;
    match out with
    | Some path ->
      Rt_circuit.Bench_format.save path c;
      Format.printf "wrote %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Run the netlist optimization passes to fixpoint and report per-pass stats." ~exits)
    Term.(
      ret
        (const (fun c n p r o () -> wrap (run c n p r o))
        $ Cli.circuit_arg $ Cli.no_opt_arg $ Cli.opt_passes_arg $ Cli.opt_rounds_arg $ out
        $ const ()))

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run cfg obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let a = (Pipeline.analysis ctx).Pipeline.value in
    let n = (Pipeline.normalized ctx).Pipeline.value in
    Format.printf "circuit:    %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
    (if cfg.Config.opt_passes <> [] then
       let removed =
         Rt_circuit.Netlist.size (Pipeline.raw_circuit ctx) - Rt_circuit.Netlist.size c
       in
       if removed > 0 then Format.printf "opt:        %d nodes removed (%s)@." removed
           (Config.opt_key cfg));
    Format.printf "faults:     %d collapsed (universe %d), %d proven redundant@."
      (Array.length faults)
      (Array.length (Rt_fault.Fault.universe c))
      (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a.Pipeline.proven_redundant);
    Format.printf "engine:     %s@." a.Pipeline.engine_desc;
    Format.printf "required N: %s (confidence %.2f)@."
      (if Float.is_finite n.Pipeline.n_required then
         Printf.sprintf "%.3e" n.Pipeline.n_required
       else "infinite")
      cfg.Config.confidence;
    Format.printf "hardest faults:@.";
    let shown = min 10 (Array.length n.Pipeline.hard) in
    for k = 0 to shown - 1 do
      let fi = n.Pipeline.hard.(k) in
      Format.printf "  %-30s p = %a@."
        (Rt_fault.Fault.to_string c faults.(fi))
        Rt_util.Prob.pp a.Pipeline.pf.(fi)
    done;
    obs_end ~cfg obs
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Testability analysis: detection probabilities and test length."
       ~exits)
    Term.(ret (const (fun cfg obs () -> wrap (run cfg obs)) $ Cli.config () $ obs_arg $ const ()))

(* --- optimize -------------------------------------------------------------- *)

let optimize_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized weights to FILE.")
  in
  let partition =
    Arg.(value & flag & info [ "partition" ]
           ~doc:"Also try the section-5.3 fault-set partitioning (2 distributions).")
  in
  let convergence =
    Arg.(value & opt (some string) None & info [ "convergence" ] ~docv:"FILE"
           ~doc:"Record per-sweep J_N, required length N and input probabilities to $(docv) \
                 (.json suffix: JSON, otherwise CSV).")
  in
  let run cfg out partition conv obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    (* A recorder exists whenever anything will consume it: the legacy
       --convergence file and/or the --obs-dir convergence.json artifact.
       It only fills when the stage actually runs (not on a cache hit). *)
    let recorder =
      if conv <> None || obs.obs_dir <> None then Some (Rt_obs.Convergence.create ())
      else None
    in
    let staged =
      Pipeline.optimized
        ~progress:(fun ~sweep ~n -> Format.printf "sweep %d: N = %.3e@." sweep n)
        ?recorder ctx
    in
    let opt = staged.Pipeline.value in
    let report = opt.Pipeline.opt_report in
    if staged.Pipeline.from_cache then
      Format.printf "optimized stage served from the work-dir artifact (cache hit)@.";
    (match (conv, recorder) with
     | Some path, Some rec_ ->
       Rt_obs.Convergence.write rec_ path;
       Format.printf "wrote convergence %s@." path
     | _ -> ());
    Format.printf "@.engine:        %s@."
      (Pipeline.analysis ctx).Pipeline.value.Pipeline.engine_desc;
    if cfg.Config.objective <> "single" then
      Format.printf "objective:      %s@." cfg.Config.objective;
    Format.printf "N conventional: %.3e@." report.Rt_optprob.Optimize.n_initial;
    Format.printf "N optimized:    %.3e  (gain x%.0f)@." report.Rt_optprob.Optimize.n_final
      (Rt_optprob.Optimize.improvement report);
    (match opt.Pipeline.opt_two_stage with
     | Some ts ->
       Format.printf "two-stage:      N1=%d (%d survivors) + N2=%s = %s vs single %.3e@."
         ts.Rt_optprob.Optimize.ts_n1 ts.Rt_optprob.Optimize.ts_survivors
         (if Float.is_finite ts.Rt_optprob.Optimize.ts_n2 then
            Printf.sprintf "%.3e" ts.Rt_optprob.Optimize.ts_n2
          else "inf")
         (if Float.is_finite ts.Rt_optprob.Optimize.ts_total then
            Printf.sprintf "%.3e" ts.Rt_optprob.Optimize.ts_total
          else "inf")
         ts.Rt_optprob.Optimize.ts_single_n
     | None -> ());
    let c = Pipeline.circuit ctx in
    let weights = Pipeline.opt_weights opt in
    Format.printf "weights:@.%a" (Rt_optprob.Weights_io.pp c) weights;
    (match out with
     | Some path ->
       Rt_optprob.Weights_io.save path c weights;
       Format.printf "wrote %s@." path
     | None -> ());
    if partition then begin
      let options = Config.optimize_options cfg in
      let sp = Rt_optprob.Partition.split ~options (Pipeline.oracle ctx) in
      Format.printf "@.partitioned test (%d parts):@."
        (Array.length sp.Rt_optprob.Partition.groups);
      Array.iteri
        (fun i n -> Format.printf "  part %d: N = %.3e@." i n)
        sp.Rt_optprob.Partition.n_parts;
      Format.printf "  total %.3e vs single %.3e@." sp.Rt_optprob.Partition.n_total
        sp.Rt_optprob.Partition.n_single
    end;
    obs_end ~cfg ?convergence:recorder obs
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Compute optimized input probabilities (the paper's procedure)."
       ~exits)
    Term.(
      ret
        (const (fun cfg o p cv obs () -> wrap (run cfg o p cv obs))
        $ Cli.config () $ out $ partition $ convergence $ obs_arg $ const ()))

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let curve =
    Arg.(value & flag & info [ "curve" ] ~doc:"Print the coverage-vs-pattern-count curve.")
  in
  let run cfg curve obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let faults = Pipeline.fault_list ctx in
    let v = (Pipeline.simulated ctx).Pipeline.value in
    Format.printf "patterns: %d  faults: %d  coverage: %.2f%%@." v.Pipeline.patterns_run
      (Array.length faults)
      (100.0 *. v.Pipeline.coverage);
    let stats = Pipeline.sim_stats ctx v in
    if curve then begin
      let points =
        Rt_util.Stats.geometric_steps ~lo:16 ~hi:v.Pipeline.patterns_run ~per_decade:4
      in
      List.iter
        (fun (k, cov) -> Format.printf "  %6d  %.2f%%@." k (100.0 *. cov))
        (Rt_sim.Fault_sim.coverage_curve stats ~points)
    end;
    let undet = Rt_sim.Fault_sim.undetected stats in
    let c = Pipeline.circuit ctx in
    if Array.length undet > 0 && Array.length undet <= 20 then begin
      Format.printf "undetected:@.";
      Array.iter (fun f -> Format.printf "  %s@." (Rt_fault.Fault.to_string c f)) undet
    end
    else if Array.length undet > 20 then
      Format.printf "undetected: %d faults@." (Array.length undet);
    obs_end ~cfg obs
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Fault-simulate random patterns and report coverage." ~exits)
    Term.(
      ret
        (const (fun cfg cv obs () -> wrap (run cfg cv obs))
        $ Cli.config () $ curve $ obs_arg $ const ()))

(* --- run (whole graph) ------------------------------------------------------ *)

let run_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized weights to FILE.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-sweep progress lines.")
  in
  let run cfg out quiet obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let recorder =
      if obs.obs_dir <> None then Some (Rt_obs.Convergence.create ()) else None
    in
    let progress ~sweep ~n =
      if not quiet then Format.printf "sweep %d: N = %.3e@." sweep n
    in
    let outcome = Pipeline.run ~progress ?recorder ctx in
    Format.printf "@.stages:@.%a" Pipeline.pp_stages outcome;
    let report = outcome.Pipeline.o_report.Pipeline.value in
    Format.printf "@.%a" Pipeline.pp_report report;
    (match out with
     | Some path ->
       Rt_optprob.Weights_io.save path (Pipeline.circuit ctx)
         report.Pipeline.r_opt.Rt_optprob.Optimize.weights;
       Format.printf "wrote %s@." path
     | None -> ());
    obs_end ~cfg ?convergence:recorder obs
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the whole pipeline (load, collapse, analyze, normalize, optimize, validate) \
             with resumable stage artifacts under --work-dir."
       ~exits)
    Term.(
      ret
        (const (fun cfg o q obs () -> wrap (run cfg o q obs))
        $ Cli.config () $ out $ quiet $ obs_arg $ const ()))

(* --- atpg ------------------------------------------------------------------ *)

let atpg_cmd =
  let engine =
    Arg.(value & opt string "podem" & info [ "engine"; "e" ] ~docv:"ENGINE"
           ~doc:"Deterministic engine: podem or dalg (the classical D-algorithm).")
  in
  let run circuit engine () =
    let ctx = Pipeline.create (Config.exn (Config.of_source circuit)) in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let engine =
      match engine with
      | "podem" -> `Podem
      | "dalg" -> `Dalg
      | other -> failwith (Printf.sprintf "unknown engine %S (podem | dalg)" other)
    in
    let r = Rt_atpg.Tpg.generate ~engine c faults in
    Format.printf "tests:     %d@." (Array.length r.Rt_atpg.Tpg.tests);
    Format.printf "detected:  %d / %d@." r.Rt_atpg.Tpg.detected (Array.length faults);
    Format.printf "redundant: %d@." (Array.length r.Rt_atpg.Tpg.redundant);
    Format.printf "aborted:   %d@." (Array.length r.Rt_atpg.Tpg.aborted);
    Format.printf "atpg:      %d calls@." r.Rt_atpg.Tpg.podem_calls;
    Format.printf "time:      %.2fs@." r.Rt_atpg.Tpg.seconds
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Deterministic test generation (PODEM or D-algorithm) — the section-5.2 baseline."
       ~exits)
    Term.(ret (const (fun c e () -> wrap (run c e)) $ Cli.circuit_arg $ engine $ const ()))

(* --- selftest --------------------------------------------------------------- *)

let selftest_cmd =
  let patterns =
    Arg.(value & opt int 4096 & info [ "patterns"; "n" ] ~docv:"N" ~doc:"Session length.")
  in
  let run circuit weights patterns () =
    let weights_src =
      match weights with None -> Config.Uniform | Some path -> Config.Weights_file path
    in
    let ctx = Pipeline.create (Config.exn (Config.of_source ~weights:weights_src circuit)) in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let x = Config.resolve_weights (Pipeline.config ctx) c in
    let cfg =
      { (Rt_bist.Selftest.default_config c ~weights:x) with Rt_bist.Selftest.n_patterns = patterns }
    in
    let oc = Rt_bist.Selftest.run c faults cfg in
    Format.printf "golden signature: %016Lx@." oc.Rt_bist.Selftest.golden;
    Format.printf "coverage:         %.2f%%@." (100.0 *. oc.Rt_bist.Selftest.coverage);
    Format.printf "aliased:          %d@." oc.Rt_bist.Selftest.aliased
  in
  Cmd.v
    (Cmd.info "selftest" ~doc:"BILBO-style self-test session with weighted LFSR and MISR."
       ~exits)
    Term.(
      ret
        (const (fun c w n () -> wrap (run c w n))
        $ Cli.circuit_arg $ Cli.weights_arg $ patterns $ const ()))

(* --- obs-diff ---------------------------------------------------------------- *)

(* Threshold flags shared by `obs-diff` and `obs diff`. *)
let diff_thresholds_term =
  let d = Rt_obs.Diff.default in
  let span_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.span_ratio & info [ "max-span-ratio" ] ~docv:"R"
           ~doc:"Flag a span whose total wall-clock grew by more than $(docv)x.")
  in
  let quantile_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.quantile_ratio
         & info [ "max-quantile-ratio" ] ~docv:"R"
           ~doc:"Flag a histogram whose p50 or p99 shifted by more than $(docv)x \
                 (also gates the convergence final N).")
  in
  let counter_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.counter_ratio & info [ "max-counter-ratio" ] ~docv:"R"
           ~doc:"Flag a counter that changed by more than $(docv)x.")
  in
  let min_span_us =
    Arg.(value & opt float d.Rt_obs.Diff.min_span_us & info [ "min-span-us" ] ~docv:"US"
           ~doc:"Noise floor: ignore span totals below $(docv) microseconds in both runs.")
  in
  Term.(
    const (fun span_ratio quantile_ratio counter_ratio min_span_us ->
        { Rt_obs.Diff.default with
          Rt_obs.Diff.span_ratio;
          quantile_ratio;
          counter_ratio;
          min_span_us })
    $ span_ratio $ quantile_ratio $ counter_ratio $ min_span_us)

let diff_quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit status; print nothing.")

let run_diff ~thresholds ~quiet a b =
  let findings = Rt_obs.Diff.compare_dirs ~thresholds a b in
  if not quiet then Rt_obs.Diff.pp_report Format.std_formatter findings;
  if Rt_obs.Diff.regressions findings <> [] then exit 3

let obs_diff_cmd =
  let dir_a =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"A"
           ~doc:"Baseline run artifact directory (from --obs-dir).")
  in
  let dir_b =
    Arg.(required & pos 1 (some dir) None & info [] ~docv:"B"
           ~doc:"Candidate run artifact directory (from --obs-dir).")
  in
  let run a b thresholds quiet () = run_diff ~thresholds ~quiet a b in
  let exits = Cmd.Exit.info 3 ~doc:"on regressions past the configured thresholds." :: exits in
  Cmd.v
    (Cmd.info "obs-diff"
       ~doc:"Compare two --obs-dir run artifacts: counter deltas, span-tree wall-clock, \
             histogram quantile shifts, convergence divergence."
       ~exits)
    Term.(
      ret
        (const (fun a b th q () -> wrap (run a b th q))
        $ dir_a $ dir_b $ diff_thresholds_term $ diff_quiet_arg
        $ const ()))

(* --- obs: the run-registry subcommand family --------------------------------- *)

let registry_dir_arg =
  Arg.(value & opt string (Registry.default_dir ())
       & info [ "obs-registry" ] ~docv:"DIR"
         ~doc:"Registry root directory (default: $(b,OPTPROB_OBS_REGISTRY) when set, \
               else $(b,_obs/registry)).")

let filter_args =
  let engine =
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Only runs whose manifest engine equals $(docv).")
  in
  let circuit =
    Arg.(value & opt (some string) None & info [ "circuit" ] ~docv:"NAME"
           ~doc:"Only runs whose manifest circuit equals $(docv).")
  in
  let git_rev =
    Arg.(value & opt (some string) None & info [ "git-rev" ] ~docv:"REV"
           ~doc:"Only runs whose git revision starts with $(docv).")
  in
  let config =
    Arg.(value & opt_all string [] & info [ "config" ] ~docv:"K=V"
           ~doc:"Only runs whose manifest config slice contains $(docv) \
                 (repeatable; e.g. $(b,--config jobs=4 --config block_words=8)).")
  in
  Term.(const (fun e c g kvs -> (e, c, g, kvs)) $ engine $ circuit $ git_rev $ config)

(* parse --config K=V pairs inside [wrap] so a bad pair is a clean error *)
let make_filter (f_engine, f_circuit, f_git_rev, kvs) =
  let pair kv =
    match String.index_opt kv '=' with
    | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
    | None -> failwith (Printf.sprintf "--config %s: expected K=V" kv)
  in
  { Registry.f_engine; f_circuit; f_git_rev; f_config = List.map pair kvs }

let short_rev rev = if String.length rev > 8 then String.sub rev 0 8 else rev

let obs_list_cmd =
  let ids_only =
    Arg.(value & flag & info [ "ids" ] ~doc:"Print record ids only (for scripting).")
  in
  let run reg fargs ids_only () =
    let sums = Registry.list ~filter:(make_filter fargs) ~registry:reg () in
    if ids_only then List.iter (fun (s : Registry.summary) -> print_endline s.Registry.id) sums
    else begin
      Format.printf "%-24s %-20s %-12s %-10s %-9s %s@." "ID" "WHEN(UTC)" "CIRCUIT" "ENGINE"
        "GIT" "WALL_S";
      List.iter
        (fun (s : Registry.summary) ->
          let tm = Unix.gmtime s.Registry.ts in
          Format.printf "%-24s %04d-%02d-%02d %02d:%02d:%02d   %-12s %-10s %-9s %.2f@."
            s.Registry.id (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
            (Option.value ~default:"-" s.Registry.circuit)
            (Option.value ~default:"-" s.Registry.engine)
            (short_rev s.Registry.git_rev) s.Registry.wall_s)
        sums;
      Format.printf "%d record(s) in %s%s@." (List.length sums) reg
        (match Registry.promoted ~registry:reg with
         | Some id -> Printf.sprintf " (baseline %s)" id
         | None -> "")
    end
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List registry records, oldest first, with optional filters." ~exits)
    Term.(
      ret
        (const (fun r f i () -> wrap (run r f i))
        $ registry_dir_arg $ filter_args $ ids_only $ const ()))

let obs_show_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Record id.")
  in
  let run reg id () =
    match Registry.load ~registry:reg id with
    | Error msg -> failwith msg
    | Ok r ->
      let s = r.Registry.r_summary in
      let tm = Unix.gmtime s.Registry.ts in
      Format.printf "id:       %s@." s.Registry.id;
      Format.printf "ingested: %04d-%02d-%02d %02d:%02d:%02d UTC@." (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
      Format.printf "git_rev:  %s@." s.Registry.git_rev;
      Format.printf "wall_s:   %.3f@." s.Registry.wall_s;
      if s.Registry.config <> [] then begin
        Format.printf "config:@.";
        List.iter (fun (k, v) -> Format.printf "  %-14s %s@." k v) s.Registry.config
      end;
      Format.printf "metrics (%d):@." (List.length r.Registry.r_metrics);
      List.iter (fun (k, v) -> Format.printf "  %-44s %.6g@." k v) r.Registry.r_metrics
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Show one record: identity, config slice and all derived metrics."
       ~exits)
    Term.(ret (const (fun r i () -> wrap (run r i)) $ registry_dir_arg $ id_arg $ const ()))

let obs_ingest_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"A run artifact directory (from --obs-dir).")
  in
  let id_arg =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID"
           ~doc:"Pin the record id instead of generating one.")
  in
  let run reg dir id () =
    match Registry.ingest ?id ~registry:reg ~obs_dir:dir () with
    | Ok id -> Format.printf "ingested %s as %s@." dir id
    | Error msg -> failwith msg
  in
  Cmd.v
    (Cmd.info "ingest" ~doc:"Ingest an --obs-dir artifact directory into the registry." ~exits)
    Term.(
      ret
        (const (fun r d i () -> wrap (run r d i))
        $ registry_dir_arg $ dir_arg $ id_arg $ const ()))

let obs_trend_cmd =
  let metric_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METRIC"
           ~doc:"Derived metric name, e.g. $(b,pipeline.total_us), $(b,wall_s), \
                 $(b,oracle.query.us.p90), $(b,span.optimize.us) — see \
                 $(b,optprob obs show ID) for everything a record carries.")
  in
  let last_arg =
    Arg.(value & opt int 30 & info [ "last" ] ~docv:"N" ~doc:"Use the last $(docv) runs.")
  in
  let window_arg =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"W"
           ~doc:"Trailing window width for the step-change detector.")
  in
  let step_k_arg =
    Arg.(value & opt float 4.0 & info [ "step-k" ] ~docv:"K"
           ~doc:"Flag a point deviating more than $(docv) robust sigmas (1.4826*MAD) \
                 from the trailing-window median.")
  in
  let step_rel_arg =
    Arg.(value & opt float 0.25 & info [ "step-rel" ] ~docv:"F"
           ~doc:"Relative noise floor: never flag a deviation below $(docv)*|median|.")
  in
  let invert_arg =
    Arg.(value & flag & info [ "invert" ]
           ~doc:"Treat the metric as higher-is-better (downward steps gate).")
  in
  let gate_arg =
    Arg.(value & flag & info [ "gate" ]
           ~doc:"Exit 3 when the newest point is a flagged regression step.")
  in
  let run reg fargs metric last window k rel invert gate () =
    let filter = make_filter fargs in
    let series = Registry.series ~filter ~last ~registry:reg metric in
    let pts = series.Registry.s_points in
    if pts = [] then Format.printf "trend %s: no data points in %s@." metric reg
    else begin
      Format.printf "trend %s (%d point(s), registry %s):@." metric (List.length pts) reg;
      List.iter
        (fun (p : Registry.point) ->
          Format.printf "  %-24s %.6g@." p.Registry.p_id p.Registry.p_value)
        pts;
      let values =
        Array.of_list (List.map (fun (p : Registry.point) -> p.Registry.p_value) pts)
      in
      Format.printf "  spark: %s@." (Registry.sparkline values);
      Format.printf "  mean %.4g  p50 %.4g  p90 %.4g@." series.Registry.s_mean
        series.Registry.s_p50 series.Registry.s_p90;
      let steps = Registry.step_changes ~window ~k ~rel values in
      if steps = [] then Format.printf "  step changes: none@."
      else
        List.iter
          (fun (st : Registry.step) ->
            let p = List.nth pts st.Registry.st_index in
            Format.printf "  step at %s: %.4g vs trailing median %.4g (%s, x%.2g over threshold)@."
              p.Registry.p_id st.Registry.st_value st.Registry.st_median
              (if st.Registry.st_up then "up" else "down")
              st.Registry.st_ratio)
          steps;
      if gate then begin
        let newest = Array.length values - 1 in
        let bad =
          List.exists
            (fun (st : Registry.step) ->
              st.Registry.st_index = newest
              && (if invert then not st.Registry.st_up else st.Registry.st_up))
            steps
        in
        if bad then begin
          Format.printf "trend gate: REGRESSION on the newest run@.";
          exit 3
        end
        else Format.printf "trend gate: ok@."
      end
    end
  in
  let exits = Cmd.Exit.info 3 ~doc:"with --gate, when the newest run regressed." :: exits in
  Cmd.v
    (Cmd.info "trend"
       ~doc:"Time series of one metric over the registry: values, sparkline, mean/p50/p90 \
             and robust step-change detection."
       ~exits)
    Term.(
      ret
        (const (fun r f m l w k rl i g () -> wrap (run r f m l w k rl i g))
        $ registry_dir_arg $ filter_args $ metric_arg $ last_arg $ window_arg $ step_k_arg
        $ step_rel_arg $ invert_arg $ gate_arg $ const ()))

let obs_baseline_cmd =
  let show_term =
    Term.(
      ret
        (const (fun reg () ->
             wrap (fun () ->
                 match Registry.promoted ~registry:reg with
                 | Some id -> Format.printf "%s@." id
                 | None -> Format.printf "no baseline promoted@."))
        $ registry_dir_arg $ const ()))
  in
  let promote_cmd =
    let id_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Record id.")
    in
    let run reg id () =
      match Registry.promote ~registry:reg id with
      | Ok () -> Format.printf "baseline: %s@." id
      | Error msg -> failwith msg
    in
    Cmd.v (Cmd.info "promote" ~doc:"Promote a record as the baseline." ~exits)
      Term.(ret (const (fun r i () -> wrap (run r i)) $ registry_dir_arg $ id_arg $ const ()))
  in
  let clear_cmd =
    let run reg () =
      Registry.clear_baseline ~registry:reg;
      Format.printf "baseline cleared@."
    in
    Cmd.v (Cmd.info "clear" ~doc:"Drop the promoted baseline." ~exits)
      Term.(ret (const (fun r () -> wrap (run r)) $ registry_dir_arg $ const ()))
  in
  let show_cmd =
    Cmd.v (Cmd.info "show" ~doc:"Print the promoted baseline id." ~exits) show_term
  in
  Cmd.group ~default:show_term
    (Cmd.info "baseline" ~doc:"Manage the promoted baseline record." ~exits)
    [ promote_cmd; show_cmd; clear_cmd ]

let obs_reg_diff_cmd =
  let side_a =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"A"
           ~doc:"Baseline side: a record id or an artifact directory.  With --baseline \
                 this is the candidate (defaults to the newest record).")
  in
  let side_b =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"B"
           ~doc:"Candidate side: a record id or an artifact directory.")
  in
  let baseline_flag =
    Arg.(value & flag & info [ "baseline" ]
           ~doc:"Diff against the promoted baseline instead of an explicit pair.")
  in
  let run reg use_baseline a b thresholds quiet () =
    let cleanups = ref [] in
    let tmp_n = ref 0 in
    (* a side is an existing directory, else a registry record id expanded
       into a temporary artifact directory *)
    let resolve name =
      if Sys.file_exists name && Sys.is_directory name then name
      else begin
        let dir =
          Filename.concat reg
            (Printf.sprintf "tmp-diff.%d.%d" (Unix.getpid ()) (Stdlib.incr tmp_n; !tmp_n))
        in
        match Registry.materialize ~registry:reg ~dir name with
        | Ok () ->
          cleanups := dir :: !cleanups;
          dir
        | Error msg -> failwith msg
      end
    in
    let cleanup () =
      List.iter
        (fun dir ->
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            (try Sys.readdir dir with Sys_error _ -> [||]);
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
        !cleanups
    in
    let name_a, name_b =
      if use_baseline then begin
        let bid =
          match Registry.promoted ~registry:reg with
          | Some id -> id
          | None ->
            failwith "no baseline promoted (run `optprob obs baseline promote ID` first)"
        in
        let candidate =
          match (a, b) with
          | _, Some x | Some x, None -> x
          | None, None -> (
            match List.rev (Registry.list ~registry:reg ()) with
            | s :: _ -> s.Registry.id
            | [] -> failwith ("registry is empty: " ^ reg))
        in
        (bid, candidate)
      end
      else
        match (a, b) with
        | Some a, Some b -> (a, b)
        | _ -> failwith "give two sides (A B) or --baseline"
    in
    Fun.protect ~finally:cleanup (fun () ->
        run_diff ~thresholds ~quiet (resolve name_a) (resolve name_b))
  in
  let exits = Cmd.Exit.info 3 ~doc:"on regressions past the configured thresholds." :: exits in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two registry records (or artifact directories), or the newest run against \
             the promoted baseline, with the obs-diff engine and thresholds."
       ~exits)
    Term.(
      ret
        (const (fun r bl a b th q () -> wrap (run r bl a b th q))
        $ registry_dir_arg $ baseline_flag $ side_a $ side_b $ diff_thresholds_term
        $ diff_quiet_arg $ const ()))

let obs_gc_cmd =
  let keep_arg =
    Arg.(value & opt (some int) None & info [ "keep" ] ~docv:"N"
           ~doc:"Keep only the newest $(docv) records.")
  in
  let max_age_arg =
    Arg.(value & opt (some float) None & info [ "max-age-days" ] ~docv:"D"
           ~doc:"Drop records older than $(docv) days.")
  in
  let run reg keep max_age_days () =
    if keep = None && max_age_days = None then
      failwith "nothing to do: give --keep and/or --max-age-days";
    let removed =
      Registry.gc ?keep ?max_age_s:(Option.map (fun d -> d *. 86400.0) max_age_days)
        ~registry:reg ()
    in
    Format.printf "obs gc: removed %d record(s), %d left@." removed
      (List.length (Registry.list ~registry:reg ()))
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Apply retention to the registry (the promoted baseline always survives)." ~exits)
    Term.(
      ret
        (const (fun r k a () -> wrap (run r k a))
        $ registry_dir_arg $ keep_arg $ max_age_arg $ const ()))

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"The persistent run registry: history, trends, baselines and regression gates."
       ~exits)
    [ obs_list_cmd; obs_show_cmd; obs_ingest_cmd; obs_trend_cmd; obs_baseline_cmd;
      obs_reg_diff_cmd; obs_gc_cmd ]

(* --- tables ------------------------------------------------------------------ *)

let tables_cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale mode.") in
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"IDS"
           ~doc:"Comma-separated experiment ids (t1..t5, f1, f2, a1, x2, x3).")
  in
  let run full only () =
    let tables =
      match only with
      | None -> Rt_repro.Experiments.all ~full ()
      | Some ids ->
        List.filter_map
          (fun id ->
            match Rt_repro.Experiments.by_id id with
            | Some f -> Some (f ~full ())
            | None -> failwith ("unknown experiment id " ^ id))
          (String.split_on_char ',' ids)
    in
    List.iter (Rt_repro.Experiments.print_table Format.std_formatter) tables
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's tables and figures." ~exits)
    Term.(ret (const (fun f o () -> wrap (run f o)) $ full $ only $ const ()))

let () =
  let doc = "optimized input probabilities for random tests (Wunderlich, DAC 1987)" in
  let info = Cmd.info "optprob" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ list_cmd; generate_cmd; simplify_cmd; analyze_cmd; optimize_cmd; simulate_cmd;
        run_cmd; atpg_cmd; selftest_cmd; tables_cmd; obs_diff_cmd; obs_cmd ]
  in
  exit (Cmd.eval group)
