(* optprob — command-line front end.

   Subcommands: list, generate, simplify, analyze, optimize, simulate,
   run, atpg, selftest, tables, obs-diff.  Every compute subcommand is a
   thin layer
   over the Rt_pipeline stage graph: it builds one validated
   Rt_pipeline.Config via the shared Cli terms, creates a pipeline
   context, and asks for the stages it needs.  With --work-dir the stage
   artifacts are content-addressed on disk, so re-runs (`optprob run`)
   resume past everything unchanged. *)

open Cmdliner
module Pipeline = Rt_pipeline
module Config = Rt_pipeline.Config
module Cli = Rt_pipeline.Cli

(* --- observability flags ---------------------------------------------------
   Shared by the compute-heavy subcommands.  The unified form is
   --obs-dir DIR: one self-describing artifact directory per run
   (manifest.json, events.jsonl, metrics.json, metrics.prom, trace.json
   and, for optimize/run, convergence.json), diffable with `optprob
   obs-diff`.  The legacy --trace/--metrics (and optimize's --convergence)
   flags keep working as standalone aliases for the corresponding
   artifact.  Any of them enables Rt_obs recording; the disabled default
   costs one branch per probe.  While an --obs-dir run is in flight,
   SIGUSR1 dumps a live metrics snapshot into the directory. *)

type obs = {
  obs_dir : string option;
  trace : string option;
  metrics : string option;
  verbose : bool;
  sample_ms : int option;
  listen : int option;
  mutable t_start : float;
  mutable sampler : Rt_obs.Timeline.sampler option;
  mutable server : Rt_obs_http.t option;
}

let obs_dir_arg =
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
         ~doc:"Write the full run artifact (manifest.json, events.jsonl, metrics.json, \
               metrics.prom, trace.json, timeline.json, convergence.json) to $(docv); \
               compare two run directories with $(b,optprob obs-diff).  SIGUSR1 dumps a \
               live metrics snapshot mid-run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the span timeline as Chrome trace_event JSON to $(docv) \
               (open in chrome://tracing or https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the counter/gauge/histogram snapshot as JSON to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Print the aggregated phase timings, counters and latency histograms to stderr.")

let sample_ms_arg =
  Arg.(value & opt (some int) None & info [ "obs-sample-ms" ] ~docv:"MS"
         ~doc:"Start a background sampler domain snapshotting all counters and gauges \
               (pool utilization, queue depths, GC, live faults) every $(docv) \
               milliseconds into a bounded ring buffer, flushed to timeline.json in the \
               --obs-dir artifact.")

let listen_arg =
  Arg.(value & opt (some int) None & info [ "obs-listen" ] ~docv:"PORT"
         ~doc:"Serve live observability over HTTP on 127.0.0.1:$(docv) while the run is \
               in flight: /metrics (OpenMetrics), /healthz, /snapshot (metrics JSON).  \
               Port 0 picks an ephemeral port (printed on startup).")

let obs_arg =
  Term.(const (fun obs_dir trace metrics verbose sample_ms listen ->
            { obs_dir; trace; metrics; verbose; sample_ms; listen;
              t_start = 0.0; sampler = None; server = None })
        $ obs_dir_arg $ trace_arg $ metrics_arg $ verbose_arg $ sample_ms_arg $ listen_arg)

let obs_begin obs =
  obs.t_start <- Unix.gettimeofday ();
  if obs.obs_dir <> None || obs.trace <> None || obs.metrics <> None || obs.verbose
     || obs.sample_ms <> None || obs.listen <> None
  then Rt_obs.set_enabled true;
  (match obs.obs_dir with
   | Some dir ->
     (try
        Sys.set_signal Sys.sigusr1
          (Sys.Signal_handle (fun _ -> Rt_obs.Artifact.write_live ~dir))
      with Invalid_argument _ | Sys_error _ -> ())
   | None -> ());
  (match obs.sample_ms with
   | Some period_ms when period_ms >= 1 ->
     obs.sampler <- Some (Rt_obs.Timeline.start ~period_ms ())
   | Some bad -> failwith (Printf.sprintf "--obs-sample-ms %d: period must be >= 1" bad)
   | None -> ());
  match obs.listen with
  | Some port when port >= 0 && port < 65536 ->
    (try
       let srv = Rt_obs_http.start ~port () in
       obs.server <- Some srv;
       Format.eprintf "obs: serving /metrics /healthz /snapshot on http://127.0.0.1:%d@."
         (Rt_obs_http.port srv)
     with Unix.Unix_error (err, _, _) ->
       failwith
         (Printf.sprintf "--obs-listen %d: cannot bind (%s)" port (Unix.error_message err)))
  | Some bad -> failwith (Printf.sprintf "--obs-listen %d: not a valid port" bad)
  | None -> ()

(* Keep the HTTP endpoint answering briefly after the artifacts are written
   — scripted clients (make obs-live-demo, CI) race the run's natural end. *)
let obs_linger () =
  match Sys.getenv_opt "OPTPROB_OBS_LINGER_MS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some ms when ms > 0 -> Unix.sleepf (Float.of_int ms /. 1000.0)
     | _ -> ())
  | None -> ()

let obs_end ?(cfg : Config.t option) ?convergence obs =
  (* stop the sampler first so its final sample lands in the timeline and
     in the artifact snapshot below *)
  let timeline =
    match obs.sampler with
    | Some s ->
      obs.sampler <- None;
      let samples, dropped = Rt_obs.Timeline.stop s in
      Some (samples, dropped)
    | None -> None
  in
  (match obs.trace with
   | Some path ->
     Rt_obs.write_trace path;
     Format.eprintf "wrote trace %s@." path
   | None -> ());
  (match obs.metrics with
   | Some path ->
     Rt_obs.write_metrics path;
     Format.eprintf "wrote metrics %s@." path
   | None -> ());
  (match obs.obs_dir with
   | Some dir ->
     let manifest =
       { Rt_obs.Artifact.argv = Sys.argv;
         engine = Option.map (fun (c : Config.t) -> c.Config.engine) cfg;
         seed = Option.map (fun (c : Config.t) -> c.Config.seed) cfg;
         jobs = Option.bind cfg (fun (c : Config.t) -> c.Config.jobs);
         wall_s = Unix.gettimeofday () -. obs.t_start }
     in
     Rt_obs.Artifact.write ~dir ~manifest ?convergence ();
     (match (timeline, obs.sample_ms) with
      | Some (samples, dropped), Some period_ms ->
        Rt_obs.Timeline.write (Filename.concat dir "timeline.json") ~period_ms ~dropped samples
      | _ -> ());
     Format.eprintf "wrote run artifact %s@." dir
   | None -> ());
  (match obs.server with
   | Some srv ->
     obs.server <- None;
     obs_linger ();
     Rt_obs_http.stop srv
   | None -> ());
  if obs.verbose then begin
    Rt_obs.sample_gc ();
    Rt_obs.pp_summary Format.err_formatter
  end

let exits = Cmd.Exit.defaults

let wrap f = try `Ok (f ()) with Failure msg -> `Error (false, msg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Format.printf "built-in circuits:@.";
    List.iter
      (fun (name, gen) ->
        let c = gen () in
        Format.printf "  %-10s %t@." name (fun ppf -> Rt_circuit.Netlist.stats c ppf))
      Rt_circuit.Generators.paper_suite;
    Format.printf "  %-10s pathological pair for --partition (section 5.3)@." "antagonist";
    Format.printf "parameterised: wide_and-N, s2:W, c6288ish:W@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in circuit generators." ~exits)
    Term.(ret (const (fun () -> wrap run) $ const ()))

(* --- generate -------------------------------------------------------------- *)

let generate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the netlist to FILE instead of stdout.")
  in
  let run circuit out () =
    let ctx = Pipeline.create (Config.exn (Config.of_source circuit)) in
    (* the raw netlist: `generate` prints the circuit as defined, not its
       optimized form (that's `simplify -o`) *)
    let c = Pipeline.raw_circuit ctx in
    match out with
    | Some path ->
      Rt_circuit.Bench_format.save path c;
      Format.printf "wrote %s (%t)@." path (fun ppf -> Rt_circuit.Netlist.stats c ppf)
    | None -> print_string (Rt_circuit.Bench_format.to_string c)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a circuit as ISCAS-85 .bench text." ~exits)
    Term.(ret (const (fun c o () -> wrap (run c o)) $ Cli.circuit_arg $ out $ const ()))

(* --- simplify --------------------------------------------------------------- *)

let simplify_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized netlist as .bench text to FILE.")
  in
  let run circuit no_opt opt_passes opt_rounds out () =
    let opt_passes = if no_opt then Some [] else opt_passes in
    let cfg = Config.exn (Config.of_source ?opt_passes ~opt_rounds circuit) in
    let ctx = Pipeline.create cfg in
    let raw = Pipeline.raw_circuit ctx in
    let c = Pipeline.circuit ctx in
    let stats = Pipeline.opt_stats ctx in
    Format.printf "before: %t@." (fun ppf -> Rt_circuit.Netlist.stats raw ppf);
    Format.printf "after:  %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
    Format.printf "rounds: %d  nodes removed: %d@." stats.Rt_circuit.Passes.rounds
      (Rt_circuit.Netlist.size raw - Rt_circuit.Netlist.size c);
    Format.printf "%a" Rt_circuit.Passes.pp_stats stats;
    match out with
    | Some path ->
      Rt_circuit.Bench_format.save path c;
      Format.printf "wrote %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Run the netlist optimization passes to fixpoint and report per-pass stats." ~exits)
    Term.(
      ret
        (const (fun c n p r o () -> wrap (run c n p r o))
        $ Cli.circuit_arg $ Cli.no_opt_arg $ Cli.opt_passes_arg $ Cli.opt_rounds_arg $ out
        $ const ()))

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run cfg obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let a = (Pipeline.analysis ctx).Pipeline.value in
    let n = (Pipeline.normalized ctx).Pipeline.value in
    Format.printf "circuit:    %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
    (if cfg.Config.opt_passes <> [] then
       let removed =
         Rt_circuit.Netlist.size (Pipeline.raw_circuit ctx) - Rt_circuit.Netlist.size c
       in
       if removed > 0 then Format.printf "opt:        %d nodes removed (%s)@." removed
           (Config.opt_key cfg));
    Format.printf "faults:     %d collapsed (universe %d), %d proven redundant@."
      (Array.length faults)
      (Array.length (Rt_fault.Fault.universe c))
      (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a.Pipeline.proven_redundant);
    Format.printf "engine:     %s@." a.Pipeline.engine_desc;
    Format.printf "required N: %s (confidence %.2f)@."
      (if Float.is_finite n.Pipeline.n_required then
         Printf.sprintf "%.3e" n.Pipeline.n_required
       else "infinite")
      cfg.Config.confidence;
    Format.printf "hardest faults:@.";
    let shown = min 10 (Array.length n.Pipeline.hard) in
    for k = 0 to shown - 1 do
      let fi = n.Pipeline.hard.(k) in
      Format.printf "  %-30s p = %a@."
        (Rt_fault.Fault.to_string c faults.(fi))
        Rt_util.Prob.pp a.Pipeline.pf.(fi)
    done;
    obs_end ~cfg obs
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Testability analysis: detection probabilities and test length."
       ~exits)
    Term.(ret (const (fun cfg obs () -> wrap (run cfg obs)) $ Cli.config () $ obs_arg $ const ()))

(* --- optimize -------------------------------------------------------------- *)

let optimize_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized weights to FILE.")
  in
  let partition =
    Arg.(value & flag & info [ "partition" ]
           ~doc:"Also try the section-5.3 fault-set partitioning (2 distributions).")
  in
  let convergence =
    Arg.(value & opt (some string) None & info [ "convergence" ] ~docv:"FILE"
           ~doc:"Record per-sweep J_N, required length N and input probabilities to $(docv) \
                 (.json suffix: JSON, otherwise CSV).")
  in
  let run cfg out partition conv obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    (* A recorder exists whenever anything will consume it: the legacy
       --convergence file and/or the --obs-dir convergence.json artifact.
       It only fills when the stage actually runs (not on a cache hit). *)
    let recorder =
      if conv <> None || obs.obs_dir <> None then Some (Rt_obs.Convergence.create ())
      else None
    in
    let staged =
      Pipeline.optimized
        ~progress:(fun ~sweep ~n -> Format.printf "sweep %d: N = %.3e@." sweep n)
        ?recorder ctx
    in
    let report = staged.Pipeline.value in
    if staged.Pipeline.from_cache then
      Format.printf "optimized stage served from the work-dir artifact (cache hit)@.";
    (match (conv, recorder) with
     | Some path, Some rec_ ->
       Rt_obs.Convergence.write rec_ path;
       Format.printf "wrote convergence %s@." path
     | _ -> ());
    Format.printf "@.engine:        %s@."
      (Pipeline.analysis ctx).Pipeline.value.Pipeline.engine_desc;
    Format.printf "N conventional: %.3e@." report.Rt_optprob.Optimize.n_initial;
    Format.printf "N optimized:    %.3e  (gain x%.0f)@." report.Rt_optprob.Optimize.n_final
      (Rt_optprob.Optimize.improvement report);
    let c = Pipeline.circuit ctx in
    Format.printf "weights:@.%a" (Rt_optprob.Weights_io.pp c) report.Rt_optprob.Optimize.weights;
    (match out with
     | Some path ->
       Rt_optprob.Weights_io.save path c report.Rt_optprob.Optimize.weights;
       Format.printf "wrote %s@." path
     | None -> ());
    if partition then begin
      let options = Config.optimize_options cfg in
      let sp = Rt_optprob.Partition.split ~options (Pipeline.oracle ctx) in
      Format.printf "@.partitioned test (%d parts):@."
        (Array.length sp.Rt_optprob.Partition.groups);
      Array.iteri
        (fun i n -> Format.printf "  part %d: N = %.3e@." i n)
        sp.Rt_optprob.Partition.n_parts;
      Format.printf "  total %.3e vs single %.3e@." sp.Rt_optprob.Partition.n_total
        sp.Rt_optprob.Partition.n_single
    end;
    obs_end ~cfg ?convergence:recorder obs
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Compute optimized input probabilities (the paper's procedure)."
       ~exits)
    Term.(
      ret
        (const (fun cfg o p cv obs () -> wrap (run cfg o p cv obs))
        $ Cli.config () $ out $ partition $ convergence $ obs_arg $ const ()))

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let curve =
    Arg.(value & flag & info [ "curve" ] ~doc:"Print the coverage-vs-pattern-count curve.")
  in
  let run cfg curve obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let faults = Pipeline.fault_list ctx in
    let v = (Pipeline.simulated ctx).Pipeline.value in
    Format.printf "patterns: %d  faults: %d  coverage: %.2f%%@." v.Pipeline.patterns_run
      (Array.length faults)
      (100.0 *. v.Pipeline.coverage);
    let stats = Pipeline.sim_stats ctx v in
    if curve then begin
      let points =
        Rt_util.Stats.geometric_steps ~lo:16 ~hi:v.Pipeline.patterns_run ~per_decade:4
      in
      List.iter
        (fun (k, cov) -> Format.printf "  %6d  %.2f%%@." k (100.0 *. cov))
        (Rt_sim.Fault_sim.coverage_curve stats ~points)
    end;
    let undet = Rt_sim.Fault_sim.undetected stats in
    let c = Pipeline.circuit ctx in
    if Array.length undet > 0 && Array.length undet <= 20 then begin
      Format.printf "undetected:@.";
      Array.iter (fun f -> Format.printf "  %s@." (Rt_fault.Fault.to_string c f)) undet
    end
    else if Array.length undet > 20 then
      Format.printf "undetected: %d faults@." (Array.length undet);
    obs_end ~cfg obs
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Fault-simulate random patterns and report coverage." ~exits)
    Term.(
      ret
        (const (fun cfg cv obs () -> wrap (run cfg cv obs))
        $ Cli.config () $ curve $ obs_arg $ const ()))

(* --- run (whole graph) ------------------------------------------------------ *)

let run_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized weights to FILE.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-sweep progress lines.")
  in
  let run cfg out quiet obs () =
    obs_begin obs;
    let ctx = Pipeline.create cfg in
    let recorder =
      if obs.obs_dir <> None then Some (Rt_obs.Convergence.create ()) else None
    in
    let progress ~sweep ~n =
      if not quiet then Format.printf "sweep %d: N = %.3e@." sweep n
    in
    let outcome = Pipeline.run ~progress ?recorder ctx in
    Format.printf "@.stages:@.%a" Pipeline.pp_stages outcome;
    let report = outcome.Pipeline.o_report.Pipeline.value in
    Format.printf "@.%a" Pipeline.pp_report report;
    (match out with
     | Some path ->
       Rt_optprob.Weights_io.save path (Pipeline.circuit ctx)
         report.Pipeline.r_opt.Rt_optprob.Optimize.weights;
       Format.printf "wrote %s@." path
     | None -> ());
    obs_end ~cfg ?convergence:recorder obs
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the whole pipeline (load, collapse, analyze, normalize, optimize, validate) \
             with resumable stage artifacts under --work-dir."
       ~exits)
    Term.(
      ret
        (const (fun cfg o q obs () -> wrap (run cfg o q obs))
        $ Cli.config () $ out $ quiet $ obs_arg $ const ()))

(* --- atpg ------------------------------------------------------------------ *)

let atpg_cmd =
  let engine =
    Arg.(value & opt string "podem" & info [ "engine"; "e" ] ~docv:"ENGINE"
           ~doc:"Deterministic engine: podem or dalg (the classical D-algorithm).")
  in
  let run circuit engine () =
    let ctx = Pipeline.create (Config.exn (Config.of_source circuit)) in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let engine =
      match engine with
      | "podem" -> `Podem
      | "dalg" -> `Dalg
      | other -> failwith (Printf.sprintf "unknown engine %S (podem | dalg)" other)
    in
    let r = Rt_atpg.Tpg.generate ~engine c faults in
    Format.printf "tests:     %d@." (Array.length r.Rt_atpg.Tpg.tests);
    Format.printf "detected:  %d / %d@." r.Rt_atpg.Tpg.detected (Array.length faults);
    Format.printf "redundant: %d@." (Array.length r.Rt_atpg.Tpg.redundant);
    Format.printf "aborted:   %d@." (Array.length r.Rt_atpg.Tpg.aborted);
    Format.printf "atpg:      %d calls@." r.Rt_atpg.Tpg.podem_calls;
    Format.printf "time:      %.2fs@." r.Rt_atpg.Tpg.seconds
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Deterministic test generation (PODEM or D-algorithm) — the section-5.2 baseline."
       ~exits)
    Term.(ret (const (fun c e () -> wrap (run c e)) $ Cli.circuit_arg $ engine $ const ()))

(* --- selftest --------------------------------------------------------------- *)

let selftest_cmd =
  let patterns =
    Arg.(value & opt int 4096 & info [ "patterns"; "n" ] ~docv:"N" ~doc:"Session length.")
  in
  let run circuit weights patterns () =
    let weights_src =
      match weights with None -> Config.Uniform | Some path -> Config.Weights_file path
    in
    let ctx = Pipeline.create (Config.exn (Config.of_source ~weights:weights_src circuit)) in
    let c = Pipeline.circuit ctx in
    let faults = Pipeline.fault_list ctx in
    let x = Config.resolve_weights (Pipeline.config ctx) c in
    let cfg =
      { (Rt_bist.Selftest.default_config c ~weights:x) with Rt_bist.Selftest.n_patterns = patterns }
    in
    let oc = Rt_bist.Selftest.run c faults cfg in
    Format.printf "golden signature: %016Lx@." oc.Rt_bist.Selftest.golden;
    Format.printf "coverage:         %.2f%%@." (100.0 *. oc.Rt_bist.Selftest.coverage);
    Format.printf "aliased:          %d@." oc.Rt_bist.Selftest.aliased
  in
  Cmd.v
    (Cmd.info "selftest" ~doc:"BILBO-style self-test session with weighted LFSR and MISR."
       ~exits)
    Term.(
      ret
        (const (fun c w n () -> wrap (run c w n))
        $ Cli.circuit_arg $ Cli.weights_arg $ patterns $ const ()))

(* --- obs-diff ---------------------------------------------------------------- *)

let obs_diff_cmd =
  let dir_a =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"A"
           ~doc:"Baseline run artifact directory (from --obs-dir).")
  in
  let dir_b =
    Arg.(required & pos 1 (some dir) None & info [] ~docv:"B"
           ~doc:"Candidate run artifact directory (from --obs-dir).")
  in
  let d = Rt_obs.Diff.default in
  let span_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.span_ratio & info [ "max-span-ratio" ] ~docv:"R"
           ~doc:"Flag a span whose total wall-clock grew by more than $(docv)x.")
  in
  let quantile_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.quantile_ratio
         & info [ "max-quantile-ratio" ] ~docv:"R"
           ~doc:"Flag a histogram whose p50 or p99 shifted by more than $(docv)x \
                 (also gates the convergence final N).")
  in
  let counter_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.counter_ratio & info [ "max-counter-ratio" ] ~docv:"R"
           ~doc:"Flag a counter that changed by more than $(docv)x.")
  in
  let min_span_us =
    Arg.(value & opt float d.Rt_obs.Diff.min_span_us & info [ "min-span-us" ] ~docv:"US"
           ~doc:"Noise floor: ignore span totals below $(docv) microseconds in both runs.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit status; print nothing.")
  in
  let run a b span_ratio quantile_ratio counter_ratio min_span_us quiet () =
    let thresholds =
      { Rt_obs.Diff.default with
        Rt_obs.Diff.span_ratio;
        quantile_ratio;
        counter_ratio;
        min_span_us }
    in
    let findings = Rt_obs.Diff.compare_dirs ~thresholds a b in
    if not quiet then Rt_obs.Diff.pp_report Format.std_formatter findings;
    if Rt_obs.Diff.regressions findings <> [] then exit 3
  in
  let exits = Cmd.Exit.info 3 ~doc:"on regressions past the configured thresholds." :: exits in
  Cmd.v
    (Cmd.info "obs-diff"
       ~doc:"Compare two --obs-dir run artifacts: counter deltas, span-tree wall-clock, \
             histogram quantile shifts, convergence divergence."
       ~exits)
    Term.(
      ret
        (const (fun a b sr qr cr ms q () -> wrap (run a b sr qr cr ms q))
        $ dir_a $ dir_b $ span_ratio $ quantile_ratio $ counter_ratio $ min_span_us $ quiet
        $ const ()))

(* --- tables ------------------------------------------------------------------ *)

let tables_cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale mode.") in
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"IDS"
           ~doc:"Comma-separated experiment ids (t1..t5, f1, f2, a1, x2, x3).")
  in
  let run full only () =
    let tables =
      match only with
      | None -> Rt_repro.Experiments.all ~full ()
      | Some ids ->
        List.filter_map
          (fun id ->
            match Rt_repro.Experiments.by_id id with
            | Some f -> Some (f ~full ())
            | None -> failwith ("unknown experiment id " ^ id))
          (String.split_on_char ',' ids)
    in
    List.iter (Rt_repro.Experiments.print_table Format.std_formatter) tables
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's tables and figures." ~exits)
    Term.(ret (const (fun f o () -> wrap (run f o)) $ full $ only $ const ()))

let () =
  let doc = "optimized input probabilities for random tests (Wunderlich, DAC 1987)" in
  let info = Cmd.info "optprob" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ list_cmd; generate_cmd; simplify_cmd; analyze_cmd; optimize_cmd; simulate_cmd;
        run_cmd; atpg_cmd; selftest_cmd; tables_cmd; obs_diff_cmd ]
  in
  exit (Cmd.eval group)
