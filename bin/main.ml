(* optprob — command-line front end.

   Subcommands: list, generate, analyze, optimize, simulate, atpg,
   selftest, tables, obs-diff.  A CIRCUIT argument is either a built-in
   generator name (see `optprob list`) or a path to an ISCAS-85 .bench
   file. *)

open Cmdliner

let load_circuit spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then Rt_circuit.Bench_format.load spec
  else begin
    match Rt_circuit.Generators.by_name spec with
    | Some gen -> gen ()
    | None -> failwith (Printf.sprintf "unknown circuit %S (try `optprob list`)" spec)
  end

let parse_engine s =
  let int_after prefix =
    int_of_string (String.sub s (String.length prefix) (String.length s - String.length prefix))
  in
  if s = "cop" then Rt_testability.Detect.Cop
  else if s = "bdd" then Rt_testability.Detect.Bdd_exact { node_limit = 1_000_000 }
  else if String.length s > 4 && String.sub s 0 4 = "bdd:" then
    Rt_testability.Detect.Bdd_exact { node_limit = int_after "bdd:" }
  else if String.length s > 7 && String.sub s 0 7 = "stafan:" then
    Rt_testability.Detect.Stafan { n_patterns = int_after "stafan:"; seed = 7 }
  else if String.length s > 3 && String.sub s 0 3 = "mc:" then
    Rt_testability.Detect.Monte_carlo { n_patterns = int_after "mc:"; seed = 7 }
  else if String.length s > 5 && String.sub s 0 5 = "cond:" then
    Rt_testability.Detect.Conditioned { max_vars = int_after "cond:" }
  else
    failwith
      (Printf.sprintf "unknown engine %S (cop | cond:K | bdd[:nodes] | stafan:N | mc:N)" s)

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
         ~doc:"Built-in circuit name or path to a .bench file.")

let engine_arg =
  Arg.(value & opt string "bdd" & info [ "engine"; "e" ] ~docv:"ENGINE"
         ~doc:"ANALYSIS engine: cop, cond:K, bdd[:nodes], stafan:N, mc:N.")

let confidence_arg =
  Arg.(value & opt float 0.95 & info [ "confidence" ] ~docv:"C"
         ~doc:"Target confidence of the random test.")

let weights_arg =
  Arg.(value & opt (some string) None & info [ "weights"; "w" ] ~docv:"FILE"
         ~doc:"Weight file (from `optprob optimize -o`); default: all 0.5.")

let seed_arg = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"J"
         ~doc:"Worker domains for the parallel kernels (default: $(b,OPTPROB_JOBS) or 1). \
               Results are independent of J.")

(* --- observability flags ---------------------------------------------------
   Shared by the compute-heavy subcommands.  The unified form is
   --obs-dir DIR: one self-describing artifact directory per run
   (manifest.json, events.jsonl, metrics.json, metrics.prom, trace.json
   and, for optimize, convergence.json), diffable with `optprob obs-diff`.
   The legacy --trace/--metrics (and optimize's --convergence) flags keep
   working as standalone aliases for the corresponding artifact.  Any of
   them enables Rt_obs recording; the disabled default costs one branch
   per probe.  While an --obs-dir run is in flight, SIGUSR1 dumps a live
   metrics snapshot into the directory. *)

type obs = {
  obs_dir : string option;
  trace : string option;
  metrics : string option;
  verbose : bool;
  mutable t_start : float;
}

let obs_dir_arg =
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
         ~doc:"Write the full run artifact (manifest.json, events.jsonl, metrics.json, \
               metrics.prom, trace.json, convergence.json) to $(docv); compare two run \
               directories with $(b,optprob obs-diff).  SIGUSR1 dumps a live metrics \
               snapshot mid-run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the span timeline as Chrome trace_event JSON to $(docv) \
               (open in chrome://tracing or https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the counter/gauge/histogram snapshot as JSON to $(docv).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Print the aggregated phase timings, counters and latency histograms to stderr.")

let obs_arg =
  Term.(const (fun obs_dir trace metrics verbose ->
            { obs_dir; trace; metrics; verbose; t_start = 0.0 })
        $ obs_dir_arg $ trace_arg $ metrics_arg $ verbose_arg)

let obs_begin obs =
  obs.t_start <- Unix.gettimeofday ();
  if obs.obs_dir <> None || obs.trace <> None || obs.metrics <> None || obs.verbose then
    Rt_obs.set_enabled true;
  match obs.obs_dir with
  | Some dir ->
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> Rt_obs.Artifact.write_live ~dir))
     with Invalid_argument _ | Sys_error _ -> ())
  | None -> ()

let obs_end ?engine ?seed ?jobs ?convergence obs =
  (match obs.trace with
   | Some path ->
     Rt_obs.write_trace path;
     Format.eprintf "wrote trace %s@." path
   | None -> ());
  (match obs.metrics with
   | Some path ->
     Rt_obs.write_metrics path;
     Format.eprintf "wrote metrics %s@." path
   | None -> ());
  (match obs.obs_dir with
   | Some dir ->
     let manifest =
       { Rt_obs.Artifact.argv = Sys.argv;
         engine;
         seed;
         jobs;
         wall_s = Unix.gettimeofday () -. obs.t_start }
     in
     Rt_obs.Artifact.write ~dir ~manifest ?convergence ();
     Format.eprintf "wrote run artifact %s@." dir
   | None -> ());
  if obs.verbose then begin
    Rt_obs.sample_gc ();
    Rt_obs.pp_summary Format.err_formatter
  end

let exits = Cmd.Exit.defaults

let wrap f = try `Ok (f ()) with Failure msg -> `Error (false, msg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Format.printf "built-in circuits:@.";
    List.iter
      (fun (name, gen) ->
        let c = gen () in
        Format.printf "  %-10s %t@." name (fun ppf -> Rt_circuit.Netlist.stats c ppf))
      Rt_circuit.Generators.paper_suite;
    Format.printf "  %-10s pathological pair for --partition (section 5.3)@." "antagonist"
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in circuit generators." ~exits)
    Term.(ret (const (fun () -> wrap run) $ const ()))

(* --- generate -------------------------------------------------------------- *)

let generate_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the netlist to FILE instead of stdout.")
  in
  let run circuit out () =
    let c = load_circuit circuit in
    match out with
    | Some path ->
      Rt_circuit.Bench_format.save path c;
      Format.printf "wrote %s (%t)@." path (fun ppf -> Rt_circuit.Netlist.stats c ppf)
    | None -> print_string (Rt_circuit.Bench_format.to_string c)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a circuit as ISCAS-85 .bench text." ~exits)
    Term.(ret (const (fun c o () -> wrap (run c o)) $ circuit_arg $ out $ const ()))

(* --- analyze --------------------------------------------------------------- *)

let analyze_cmd =
  let run circuit engine confidence weights jobs obs () =
    obs_begin obs;
    let c = load_circuit circuit in
    let faults = Rt_fault.Collapse.collapsed_universe c in
    let oracle = Rt_testability.Detect.make ?jobs (parse_engine engine) c faults in
    let x =
      match weights with
      | Some path -> Rt_repro.Weights_io.load path c
      | None -> Array.make (Array.length (Rt_circuit.Netlist.inputs c)) 0.5
    in
    let pf = Rt_testability.Detect.probs oracle x in
    let red = Rt_testability.Detect.proven_redundant oracle in
    let detectable =
      pf |> Array.to_list |> List.filteri (fun i _ -> not red.(i)) |> Array.of_list
    in
    let norm = Rt_optprob.Normalize.run ~confidence detectable in
    Format.printf "circuit:    %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
    Format.printf "faults:     %d collapsed (universe %d), %d proven redundant@."
      (Array.length faults)
      (Array.length (Rt_fault.Fault.universe c))
      (Array.fold_left (fun a b -> if b then a + 1 else a) 0 red);
    Format.printf "engine:     %s@." (Rt_testability.Detect.describe oracle);
    Format.printf "required N: %s (confidence %.2f)@."
      (if Float.is_finite norm.Rt_optprob.Normalize.n then
         Printf.sprintf "%.3e" norm.Rt_optprob.Normalize.n
       else "infinite")
      confidence;
    Format.printf "hardest faults:@.";
    let hard = Rt_optprob.Normalize.hard_indices norm in
    let shown = min 10 (Array.length hard) in
    (* hard indexes into the detectable-filtered array; remap for names. *)
    let det_idx =
      pf |> Array.to_list |> List.mapi (fun i _ -> i)
      |> List.filteri (fun i _ -> not red.(i))
      |> Array.of_list
    in
    for k = 0 to shown - 1 do
      let fi = det_idx.(hard.(k)) in
      Format.printf "  %-30s p = %a@."
        (Rt_fault.Fault.to_string c faults.(fi))
        Rt_util.Prob.pp pf.(fi)
    done;
    obs_end ~engine ?jobs obs
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Testability analysis: detection probabilities and test length."
       ~exits)
    Term.(
      ret
        (const (fun c e conf w j obs () -> wrap (run c e conf w j obs))
        $ circuit_arg $ engine_arg $ confidence_arg $ weights_arg $ jobs_arg $ obs_arg
        $ const ()))

(* --- optimize -------------------------------------------------------------- *)

let optimize_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the optimized weights to FILE.")
  in
  let grid =
    Arg.(value & opt (some float) (Some 0.05) & info [ "grid" ] ~docv:"G"
           ~doc:"Quantisation grid (paper appendix: 0.05); 0 disables.")
  in
  let dyadic =
    Arg.(value & opt (some int) None & info [ "dyadic" ] ~docv:"BITS"
           ~doc:"Quantise to k/2^BITS instead (LFSR weighting hardware grid).")
  in
  let sweeps =
    Arg.(value & opt int 10 & info [ "sweeps" ] ~docv:"K" ~doc:"Maximum optimisation sweeps.")
  in
  let partition =
    Arg.(value & flag & info [ "partition" ]
           ~doc:"Also try the section-5.3 fault-set partitioning (2 distributions).")
  in
  let convergence =
    Arg.(value & opt (some string) None & info [ "convergence" ] ~docv:"FILE"
           ~doc:"Record per-sweep J_N, required length N and input probabilities to $(docv) \
                 (.json suffix: JSON, otherwise CSV).")
  in
  let run circuit engine confidence grid dyadic sweeps out partition jobs conv obs () =
    obs_begin obs;
    let c = load_circuit circuit in
    let faults = Rt_fault.Collapse.collapsed_universe c in
    let oracle = Rt_testability.Detect.make ?jobs (parse_engine engine) c faults in
    let quantize =
      match (dyadic, grid) with
      | Some bits, _ -> Rt_optprob.Optimize.Dyadic bits
      | None, Some g when g > 0.0 -> Rt_optprob.Optimize.Grid g
      | None, (Some _ | None) -> Rt_optprob.Optimize.No_quantization
    in
    let options =
      { Rt_optprob.Optimize.default_options with
        Rt_optprob.Optimize.confidence;
        max_sweeps = sweeps;
        quantize }
    in
    (* A recorder exists whenever anything will consume it: the legacy
       --convergence file and/or the --obs-dir convergence.json artifact. *)
    let recorder =
      if conv <> None || obs.obs_dir <> None then Some (Rt_obs.Convergence.create ())
      else None
    in
    let report =
      Rt_optprob.Optimize.run ~options
        ~progress:(fun ~sweep ~n -> Format.printf "sweep %d: N = %.3e@." sweep n)
        ?recorder oracle
    in
    (match (conv, recorder) with
     | Some path, Some rec_ ->
       Rt_obs.Convergence.write rec_ path;
       Format.printf "wrote convergence %s@." path
     | _ -> ());
    Format.printf "@.engine:        %s@." (Rt_testability.Detect.describe oracle);
    Format.printf "N conventional: %.3e@." report.Rt_optprob.Optimize.n_initial;
    Format.printf "N optimized:    %.3e  (gain x%.0f)@." report.Rt_optprob.Optimize.n_final
      (Rt_optprob.Optimize.improvement report);
    Format.printf "weights:@.%a" (Rt_repro.Weights_io.pp c) report.Rt_optprob.Optimize.weights;
    (match out with
     | Some path ->
       Rt_repro.Weights_io.save path c report.Rt_optprob.Optimize.weights;
       Format.printf "wrote %s@." path
     | None -> ());
    if partition then begin
      let sp = Rt_optprob.Partition.split ~options oracle in
      Format.printf "@.partitioned test (%d parts):@."
        (Array.length sp.Rt_optprob.Partition.groups);
      Array.iteri
        (fun i n -> Format.printf "  part %d: N = %.3e@." i n)
        sp.Rt_optprob.Partition.n_parts;
      Format.printf "  total %.3e vs single %.3e@." sp.Rt_optprob.Partition.n_total
        sp.Rt_optprob.Partition.n_single
    end;
    obs_end ~engine ?jobs ?convergence:recorder obs
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Compute optimized input probabilities (the paper's procedure)."
       ~exits)
    Term.(
      ret
        (const (fun c e conf g d s o p j cv obs () -> wrap (run c e conf g d s o p j cv obs))
        $ circuit_arg $ engine_arg $ confidence_arg $ grid $ dyadic $ sweeps $ out $ partition
        $ jobs_arg $ convergence $ obs_arg $ const ()))

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let patterns =
    Arg.(value & opt int 10_000 & info [ "patterns"; "n" ] ~docv:"N"
           ~doc:"Number of random patterns.")
  in
  let curve =
    Arg.(value & flag & info [ "curve" ] ~doc:"Print the coverage-vs-pattern-count curve.")
  in
  let run circuit weights patterns seed curve jobs obs () =
    obs_begin obs;
    let c = load_circuit circuit in
    let faults = Rt_fault.Collapse.collapsed_universe c in
    let x =
      match weights with
      | Some path -> Rt_repro.Weights_io.load path c
      | None -> Array.make (Array.length (Rt_circuit.Netlist.inputs c)) 0.5
    in
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.weighted rng x in
    let stats = Rt_sim.Fault_sim.simulate ?jobs ~drop:true c faults ~source ~n_patterns:patterns in
    Format.printf "patterns: %d  faults: %d  coverage: %.2f%%@." patterns (Array.length faults)
      (100.0 *. Rt_sim.Fault_sim.coverage stats);
    if curve then begin
      let points = Rt_util.Stats.geometric_steps ~lo:16 ~hi:patterns ~per_decade:4 in
      List.iter
        (fun (k, cov) -> Format.printf "  %6d  %.2f%%@." k (100.0 *. cov))
        (Rt_sim.Fault_sim.coverage_curve stats ~points)
    end;
    let undet = Rt_sim.Fault_sim.undetected stats in
    if Array.length undet > 0 && Array.length undet <= 20 then begin
      Format.printf "undetected:@.";
      Array.iter (fun f -> Format.printf "  %s@." (Rt_fault.Fault.to_string c f)) undet
    end
    else if Array.length undet > 20 then
      Format.printf "undetected: %d faults@." (Array.length undet);
    obs_end ~seed ?jobs obs
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Fault-simulate random patterns and report coverage." ~exits)
    Term.(
      ret
        (const (fun c w n s cv j obs () -> wrap (run c w n s cv j obs))
        $ circuit_arg $ weights_arg $ patterns $ seed_arg $ curve $ jobs_arg $ obs_arg
        $ const ()))

(* --- atpg ------------------------------------------------------------------ *)

let atpg_cmd =
  let engine =
    Arg.(value & opt string "podem" & info [ "engine"; "e" ] ~docv:"ENGINE"
           ~doc:"Deterministic engine: podem or dalg (the classical D-algorithm).")
  in
  let run circuit engine () =
    let c = load_circuit circuit in
    let faults = Rt_fault.Collapse.collapsed_universe c in
    let engine =
      match engine with
      | "podem" -> `Podem
      | "dalg" -> `Dalg
      | other -> failwith (Printf.sprintf "unknown engine %S (podem | dalg)" other)
    in
    let r = Rt_atpg.Tpg.generate ~engine c faults in
    Format.printf "tests:     %d@." (Array.length r.Rt_atpg.Tpg.tests);
    Format.printf "detected:  %d / %d@." r.Rt_atpg.Tpg.detected (Array.length faults);
    Format.printf "redundant: %d@." (Array.length r.Rt_atpg.Tpg.redundant);
    Format.printf "aborted:   %d@." (Array.length r.Rt_atpg.Tpg.aborted);
    Format.printf "atpg:      %d calls@." r.Rt_atpg.Tpg.podem_calls;
    Format.printf "time:      %.2fs@." r.Rt_atpg.Tpg.seconds
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Deterministic test generation (PODEM or D-algorithm) — the section-5.2 baseline."
       ~exits)
    Term.(ret (const (fun c e () -> wrap (run c e)) $ circuit_arg $ engine $ const ()))

(* --- selftest --------------------------------------------------------------- *)

let selftest_cmd =
  let patterns =
    Arg.(value & opt int 4096 & info [ "patterns"; "n" ] ~docv:"N" ~doc:"Session length.")
  in
  let run circuit weights patterns () =
    let c = load_circuit circuit in
    let faults = Rt_fault.Collapse.collapsed_universe c in
    let x =
      match weights with
      | Some path -> Rt_repro.Weights_io.load path c
      | None -> Array.make (Array.length (Rt_circuit.Netlist.inputs c)) 0.5
    in
    let cfg =
      { (Rt_bist.Selftest.default_config c ~weights:x) with Rt_bist.Selftest.n_patterns = patterns }
    in
    let oc = Rt_bist.Selftest.run c faults cfg in
    Format.printf "golden signature: %016Lx@." oc.Rt_bist.Selftest.golden;
    Format.printf "coverage:         %.2f%%@." (100.0 *. oc.Rt_bist.Selftest.coverage);
    Format.printf "aliased:          %d@." oc.Rt_bist.Selftest.aliased
  in
  Cmd.v
    (Cmd.info "selftest" ~doc:"BILBO-style self-test session with weighted LFSR and MISR."
       ~exits)
    Term.(
      ret
        (const (fun c w n () -> wrap (run c w n))
        $ circuit_arg $ weights_arg $ patterns $ const ()))

(* --- obs-diff ---------------------------------------------------------------- *)

let obs_diff_cmd =
  let dir_a =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"A"
           ~doc:"Baseline run artifact directory (from --obs-dir).")
  in
  let dir_b =
    Arg.(required & pos 1 (some dir) None & info [] ~docv:"B"
           ~doc:"Candidate run artifact directory (from --obs-dir).")
  in
  let d = Rt_obs.Diff.default in
  let span_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.span_ratio & info [ "max-span-ratio" ] ~docv:"R"
           ~doc:"Flag a span whose total wall-clock grew by more than $(docv)x.")
  in
  let quantile_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.quantile_ratio
         & info [ "max-quantile-ratio" ] ~docv:"R"
           ~doc:"Flag a histogram whose p50 or p99 shifted by more than $(docv)x \
                 (also gates the convergence final N).")
  in
  let counter_ratio =
    Arg.(value & opt float d.Rt_obs.Diff.counter_ratio & info [ "max-counter-ratio" ] ~docv:"R"
           ~doc:"Flag a counter that changed by more than $(docv)x.")
  in
  let min_span_us =
    Arg.(value & opt float d.Rt_obs.Diff.min_span_us & info [ "min-span-us" ] ~docv:"US"
           ~doc:"Noise floor: ignore span totals below $(docv) microseconds in both runs.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit status; print nothing.")
  in
  let run a b span_ratio quantile_ratio counter_ratio min_span_us quiet () =
    let thresholds =
      { Rt_obs.Diff.default with
        Rt_obs.Diff.span_ratio;
        quantile_ratio;
        counter_ratio;
        min_span_us }
    in
    let findings = Rt_obs.Diff.compare_dirs ~thresholds a b in
    if not quiet then Rt_obs.Diff.pp_report Format.std_formatter findings;
    if Rt_obs.Diff.regressions findings <> [] then exit 3
  in
  let exits = Cmd.Exit.info 3 ~doc:"on regressions past the configured thresholds." :: exits in
  Cmd.v
    (Cmd.info "obs-diff"
       ~doc:"Compare two --obs-dir run artifacts: counter deltas, span-tree wall-clock, \
             histogram quantile shifts, convergence divergence."
       ~exits)
    Term.(
      ret
        (const (fun a b sr qr cr ms q () -> wrap (run a b sr qr cr ms q))
        $ dir_a $ dir_b $ span_ratio $ quantile_ratio $ counter_ratio $ min_span_us $ quiet
        $ const ()))

(* --- tables ------------------------------------------------------------------ *)

let tables_cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale mode.") in
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"IDS"
           ~doc:"Comma-separated experiment ids (t1..t5, f1, f2, a1, x2, x3).")
  in
  let run full only () =
    let tables =
      match only with
      | None -> Rt_repro.Experiments.all ~full ()
      | Some ids ->
        List.filter_map
          (fun id ->
            match Rt_repro.Experiments.by_id id with
            | Some f -> Some (f ~full ())
            | None -> failwith ("unknown experiment id " ^ id))
          (String.split_on_char ',' ids)
    in
    List.iter (Rt_repro.Experiments.print_table Format.std_formatter) tables
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's tables and figures." ~exits)
    Term.(ret (const (fun f o () -> wrap (run f o)) $ full $ only $ const ()))

let () =
  let doc = "optimized input probabilities for random tests (Wunderlich, DAC 1987)" in
  let info = Cmd.info "optprob" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ list_cmd; generate_cmd; analyze_cmd; optimize_cmd; simulate_cmd; atpg_cmd; selftest_cmd;
        tables_cmd; obs_diff_cmd ]
  in
  exit (Cmd.eval group)
