(* Quickstart: build a circuit, see why equiprobable random testing fails
   on it, optimize the input probabilities, and verify by fault simulation.

   Run with: dune exec examples/quickstart.exe *)

module B = Rt_circuit.Builder
module Netlist = Rt_circuit.Netlist

let () =
  (* A 12-bit equality detector guarded by a 3-deep enable chain: the
     classic random-pattern-resistant shape. *)
  let b = B.create () in
  let xs = B.inputs b "x" 12 in
  let ys = B.inputs b "y" 12 in
  let en = B.inputs b "en" 3 in
  let eq = Rt_circuit.Generators.equality_comparator b xs ys in
  let armed = B.andn b (Array.to_list en) in
  B.output b ~name:"match" (B.and2 b eq armed);
  B.output b ~name:"parity" (Rt_circuit.Generators.parity b xs);
  let c = B.finalize b in
  Format.printf "circuit: %t@." (fun ppf -> Netlist.stats c ppf);

  (* The stuck-at fault universe, equivalence-collapsed. *)
  let faults = Rt_fault.Collapse.collapsed_universe c in
  Format.printf "faults:  %d (collapsed from %d)@." (Array.length faults)
    (Array.length (Rt_fault.Fault.universe c));

  (* ANALYSIS oracle: exact detection probabilities via BDDs. *)
  let oracle =
    Rt_testability.Detect.make
      (Rt_testability.Detect.Bdd_exact { node_limit = 500_000 })
      c faults
  in
  let uniform = Array.make 27 0.5 in
  let pf = Rt_testability.Detect.probs oracle uniform in
  let pmin = Array.fold_left Float.min 1.0 pf in
  Format.printf "hardest fault at X = 0.5: p = %a@." Rt_util.Prob.pp pmin;
  let n0 = Rt_testability.Test_length.required ~confidence:0.95 pf in
  Format.printf "required equiprobable test length: %.3e@." n0;

  (* Optimize the input probabilities (the paper's procedure). *)
  let report = Rt_optprob.Optimize.run oracle in
  Format.printf "optimized test length:             %.3e  (gain x%.0f)@."
    report.Rt_optprob.Optimize.n_final
    (Rt_optprob.Optimize.improvement report);
  Format.printf "weights:@.%a" (Rt_optprob.Weights_io.pp c) report.Rt_optprob.Optimize.weights;

  (* Verify by fault simulation: 4000 patterns under both distributions. *)
  let coverage weights seed =
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.weighted rng weights in
    let stats = Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns:4000 in
    Rt_sim.Fault_sim.coverage stats
  in
  Format.printf "coverage after 4000 patterns: conventional %.1f%%, optimized %.1f%%@."
    (100.0 *. coverage uniform 42)
    (100.0 *. coverage report.Rt_optprob.Optimize.weights 42)
