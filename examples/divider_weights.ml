(* The paper's S2 (combinational divider): optimized weights vs the
   baselines of §2.2 — conventional random testing, Lieberherr's single
   shared probability, and information-theoretic max-entropy weights.

   Run with: dune exec examples/divider_weights.exe *)

let () =
  let c = Rt_circuit.Generators.s2_divider ~width:10 () in
  let all_faults = Rt_fault.Collapse.collapsed_universe c in
  Format.printf "S2 (10-bit divider): %t@." (fun ppf -> Rt_circuit.Netlist.stats c ppf);
  (* Divider arrays have unreachable internal states, hence provably
     untestable faults; the paper reports coverage over detectable faults
     only, and so do we. *)
  let faults, redundant = Rt_atpg.Tpg.prune_redundant ~backtrack_limit:5_000 c all_faults in
  Format.printf "faults: %d detectable (%d proven redundant and excluded)@."
    (Array.length faults) (Array.length redundant);

  let oracle = Rt_testability.Detect.make Rt_testability.Detect.Cop c faults in
  let confidence = 0.95 in

  let n_conventional = Rt_optprob.Baselines.equiprobable oracle ~confidence in
  let best_p, n_lieberherr = Rt_optprob.Baselines.lieberherr oracle ~confidence in
  let w_entropy = Rt_optprob.Baselines.max_output_entropy c in
  let n_entropy = Rt_optprob.Baselines.required_for oracle ~confidence w_entropy in
  let report = Rt_optprob.Optimize.run oracle in

  Format.printf "@.required test lengths (confidence %.2f):@." confidence;
  Format.printf "  conventional (0.5 everywhere):   %.3e@." n_conventional;
  Format.printf "  lieberherr (best shared p=%.2f): %.3e@." best_p n_lieberherr;
  Format.printf "  max output entropy [Agra81]:     %.3e@." n_entropy;
  Format.printf "  optimized (this paper):          %.3e@." report.Rt_optprob.Optimize.n_final;

  (* Verify the ordering with honest fault simulation. *)
  let coverage weights =
    let rng = Rt_util.Rng.create 7 in
    let source = Rt_sim.Pattern.weighted rng weights in
    let stats = Rt_sim.Fault_sim.simulate ~drop:true c faults ~source ~n_patterns:2_500 in
    100.0 *. Rt_sim.Fault_sim.coverage stats
  in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs c) in
  Format.printf "@.fault coverage after 2500 patterns:@.";
  Format.printf "  conventional: %.1f%%@." (coverage (Array.make n_inputs 0.5));
  Format.printf "  lieberherr:   %.1f%%@." (coverage (Array.make n_inputs best_p));
  Format.printf "  optimized:    %.1f%%@." (coverage report.Rt_optprob.Optimize.weights);

  Rt_optprob.Weights_io.save "s2_weights.txt" c report.Rt_optprob.Optimize.weights;
  Format.printf "@.weights written to s2_weights.txt (try: optprob simulate s2 -w s2_weights.txt)@."
