(* Fig. 2 of the paper as an ASCII chart: fault coverage vs pattern count
   on S1, conventional vs optimized random patterns.

   Run with: dune exec examples/coverage_curve.exe
   (set OPTPROB_JOBS to shard the fault simulation across domains —
   the curves are identical for every job count) *)

let bar width frac =
  let n = Float.to_int (Float.round (frac *. Float.of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let () =
  let c = Rt_circuit.Generators.s1_comparator () in
  let faults = Rt_fault.Collapse.collapsed_universe c in
  let oracle =
    Rt_testability.Detect.make
      (Rt_testability.Detect.Bdd_exact { node_limit = 2_000_000 })
      c faults
  in
  let report = Rt_optprob.Optimize.run oracle in
  let n_patterns = 12_000 in
  let jobs = Rt_util.Parallel.default_jobs () in
  let run weights =
    let rng = Rt_util.Rng.create 2024 in
    let source = Rt_sim.Pattern.weighted rng weights in
    Rt_sim.Fault_sim.simulate ~jobs ~drop:true c faults ~source ~n_patterns
  in
  let conv = run (Array.make 48 0.5) in
  let opt = run report.Rt_optprob.Optimize.weights in
  let points = Rt_util.Stats.geometric_steps ~lo:16 ~hi:n_patterns ~per_decade:3 in
  Format.printf "fault coverage vs pattern count (S1); o = optimized, c = conventional@.@.";
  List.iter
    (fun k ->
      let cc = Rt_sim.Fault_sim.coverage_at conv k in
      let co = Rt_sim.Fault_sim.coverage_at opt k in
      Format.printf "%6d  o %s %5.1f%%@." k (bar 50 co) (100.0 *. co);
      Format.printf "        c %s %5.1f%%@." (bar 50 cc) (100.0 *. cc))
    points;
  Format.printf "@.final: conventional %.1f%%, optimized %.1f%% — the paper's Fig. 2 shape.@."
    (100.0 *. Rt_sim.Fault_sim.coverage conv)
    (100.0 *. Rt_sim.Fault_sim.coverage opt)
