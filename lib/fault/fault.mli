(** The single stuck-at fault model.

    The paper fixes "an arbitrary but fixed combinational fault model F ...
    it must contain all stuck-at-0 and stuck-at-1 faults at the primary
    inputs"; we use the standard complete single stuck-at universe: both
    polarities on every stem (node output) and on every fanout branch
    (gate input pin whose driver has fanout > 1 — branches of fanout-free
    drivers are equivalent to the stem and omitted). *)

type site =
  | Stem of Rt_circuit.Netlist.node
      (** The node's output line. *)
  | Branch of Rt_circuit.Netlist.node * int
      (** [Branch (g, k)]: the connection into pin [k] of gate [g]. *)

type t = { site : site; stuck : bool }

val compare : t -> t -> int
val equal : t -> t -> bool

val source : t -> Rt_circuit.Netlist.t -> Rt_circuit.Netlist.node
(** The driving node of the faulted line (the node itself for a stem; the
    [k]-th fanin for a branch). *)

val observation_gate : t -> Rt_circuit.Netlist.node option
(** For a branch fault, the gate whose pin is faulted. *)

val universe : Rt_circuit.Netlist.t -> t array
(** Full uncollapsed universe, deterministically ordered. *)

val input_faults : Rt_circuit.Netlist.t -> t array
(** Just the primary-input stem faults (the subset the paper's Lemma 2
    relies on). *)

val map_back :
  remap:Rt_circuit.Passes.Remap.t ->
  original:Rt_circuit.Netlist.t ->
  optimized:Rt_circuit.Netlist.t ->
  t ->
  t option
(** Image of a fault on the optimized netlist in the original netlist's
    universe.  Stems map through [Remap.back].  A branch fault maps to
    the original gate pin whose (alias-resolved) driver carries the same
    signal — matched by occurrence so duplicated fanins stay distinct —
    and demotes to the stem of that pin's driver when the driver is
    fanout-free in the original (the standard branch/stem equivalence).
    [None] only if no original pin carries the signal, which no
    {!Rt_circuit.Passes} rewrite produces. *)

val pp : Rt_circuit.Netlist.t -> Format.formatter -> t -> unit
val to_string : Rt_circuit.Netlist.t -> t -> string
(** e.g. ["n42 s-a-1"] or ["n42->n57[0] s-a-0"]. *)
