(** Structural equivalence fault collapsing.

    Two faults are equivalent when every test for one detects the other;
    structurally, a stuck-at-controlling-value on a gate input is equivalent
    to the implied stuck-at on its output ([AND]: in s-a-0 = out s-a-0;
    [NAND]: in s-a-0 = out s-a-1; [BUF]/[NOT] propagate both polarities).
    Collapsing shrinks the universe by 40-60 % on typical netlists, which
    directly shrinks every ANALYSIS and fault-simulation pass. *)

val classes : Rt_circuit.Netlist.t -> Fault.t array -> Fault.t array array
(** Partition into equivalence classes (each class sorted, classes ordered
    by their representative). *)

val representatives : Rt_circuit.Netlist.t -> Fault.t array -> Fault.t array
(** One fault per class: the class's {!Fault.compare}-least member. *)

val collapsed_universe : Rt_circuit.Netlist.t -> Fault.t array
(** [representatives c (Fault.universe c)]. *)

val collapsed_universe_back :
  remap:Rt_circuit.Passes.Remap.t ->
  original:Rt_circuit.Netlist.t ->
  optimized:Rt_circuit.Netlist.t ->
  (Fault.t * Fault.t option) array
(** The collapsed universe of the optimized netlist, each representative
    paired with its original-netlist image via {!Fault.map_back} —
    generated on the small netlist, reportable in original terms. *)

val ratio : Rt_circuit.Netlist.t -> float
(** [|collapsed| / |universe|], a quick quality metric. *)
