module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

type site =
  | Stem of Netlist.node
  | Branch of Netlist.node * int

type t = { site : site; stuck : bool }

let compare a b =
  let key f =
    match f.site with
    | Stem n -> (n, -1, if f.stuck then 1 else 0)
    | Branch (g, k) -> (g, k, if f.stuck then 1 else 0)
  in
  Stdlib.compare (key a) (key b)

let equal a b = compare a b = 0

let source f c =
  match f.site with
  | Stem n -> n
  | Branch (g, k) -> (Netlist.fanin c g).(k)

let observation_gate f = match f.site with Stem _ -> None | Branch (g, _) -> Some g

let universe c =
  let acc = ref [] in
  for n = Netlist.size c - 1 downto 0 do
    (match Netlist.kind c n with
     | Gate.Const0 | Gate.Const1 -> ()
     | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
     | Gate.Xor | Gate.Xnor ->
       acc := { site = Stem n; stuck = true } :: { site = Stem n; stuck = false } :: !acc)
  done;
  (* Branch faults where the driver has fanout > 1. *)
  let branches = ref [] in
  Netlist.iter_gates c (fun g ->
      Array.iteri
        (fun k src ->
          if Array.length (Netlist.fanout c src) > 1 then
            branches :=
              { site = Branch (g, k); stuck = true }
              :: { site = Branch (g, k); stuck = false }
              :: !branches)
        (Netlist.fanin c g));
  Array.of_list (!acc @ List.rev !branches)

let input_faults c =
  Netlist.inputs c |> Array.to_list
  |> List.concat_map (fun i -> [ { site = Stem i; stuck = false }; { site = Stem i; stuck = true } ])
  |> Array.of_list

let map_back ~remap ~original ~optimized f =
  let module Remap = Rt_circuit.Passes.Remap in
  match f.site with
  | Stem n -> Some { f with site = Stem (Remap.back remap n) }
  | Branch (g, k) ->
    let og = Remap.back remap g in
    let opt_fi = Netlist.fanin optimized g in
    let src = opt_fi.(k) in
    (* Occurrence rank of this pin among the gate's pins reading [src],
       so duplicated fanins pair up positionally. *)
    let occ = ref 0 in
    for j = 0 to k - 1 do
      if opt_fi.(j) = src then incr occ
    done;
    let found = ref None in
    let seen = ref 0 in
    Array.iteri
      (fun k' oj ->
        if !found = None && Remap.forward remap oj = Some src then
          if !seen = !occ then found := Some (k', oj) else incr seen)
      (Netlist.fanin original og);
    (match !found with
     | None -> None
     | Some (k', oj) ->
       if Array.length (Netlist.fanout original oj) > 1 then
         Some { f with site = Branch (og, k') }
       else Some { f with site = Stem oj })

let pp c ppf f =
  let sa = if f.stuck then 1 else 0 in
  match f.site with
  | Stem n -> Format.fprintf ppf "%s s-a-%d" (Netlist.name c n) sa
  | Branch (g, k) ->
    Format.fprintf ppf "%s->%s[%d] s-a-%d"
      (Netlist.name c (Netlist.fanin c g).(k))
      (Netlist.name c g) k sa

let to_string c f = Format.asprintf "%a" (pp c) f
