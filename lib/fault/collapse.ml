module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

(* Union-find with path compression. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let classes c faults =
  let n = Array.length faults in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) faults;
  let lookup f = Hashtbl.find_opt index f in
  let parent = Array.init n Fun.id in
  (* The fault sitting on the connection into pin k of gate g. *)
  let connection_fault g k stuck =
    let src = (Netlist.fanin c g).(k) in
    if Array.length (Netlist.fanout c src) > 1 then
      { Fault.site = Fault.Branch (g, k); stuck }
    else { Fault.site = Fault.Stem src; stuck }
  in
  let link g k in_val out_val =
    match (lookup (connection_fault g k in_val), lookup { site = Stem g; stuck = out_val }) with
    | Some a, Some b -> union parent a b
    | None, _ | Some _, None -> ()
  in
  Netlist.iter_gates c (fun g ->
      let arity = Array.length (Netlist.fanin c g) in
      match Netlist.kind c g with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | Gate.And -> for k = 0 to arity - 1 do link g k false false done
      | Gate.Nand -> for k = 0 to arity - 1 do link g k false true done
      | Gate.Or -> for k = 0 to arity - 1 do link g k true true done
      | Gate.Nor -> for k = 0 to arity - 1 do link g k true false done
      | Gate.Buf ->
        link g 0 false false;
        link g 0 true true
      | Gate.Not ->
        link g 0 false true;
        link g 0 true false
      | Gate.Xor | Gate.Xnor -> ());
  let buckets = Hashtbl.create n in
  Array.iteri
    (fun i _ ->
      let r = find parent i in
      Hashtbl.replace buckets r (i :: Option.value ~default:[] (Hashtbl.find_opt buckets r)))
    faults;
  let cls =
    Hashtbl.fold
      (fun _ members acc ->
        let fs = List.rev_map (fun i -> faults.(i)) members in
        Array.of_list (List.sort Fault.compare fs) :: acc)
      buckets []
  in
  let cls = List.sort (fun a b -> Fault.compare a.(0) b.(0)) cls in
  Array.of_list cls

let representatives c faults = Array.map (fun cl -> cl.(0)) (classes c faults)

let collapsed_universe c = representatives c (Fault.universe c)

let collapsed_universe_back ~remap ~original ~optimized =
  Array.map
    (fun f -> (f, Fault.map_back ~remap ~original ~optimized f))
    (collapsed_universe optimized)

let ratio c =
  let u = Fault.universe c in
  if Array.length u = 0 then 1.0
  else Float.of_int (Array.length (representatives c u)) /. Float.of_int (Array.length u)
