(** Reproduction of every table and figure in the paper's evaluation.

    Each function regenerates one artefact and returns it as a printable
    table; [all] runs the complete set in paper order.  The [full] flag
    switches between a quick run (same experiments, slightly reduced
    optimizer budgets; minutes) and the full-scale run.  Everything is
    deterministic.

    Paper reference values are embedded in the tables (column "paper") so
    the output is self-contained evidence of which shapes hold. *)

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val print_table : Format.formatter -> table -> unit

val t1_required_length_conventional : ?full:bool -> unit -> table
(** Table 1: necessary test lengths for a conventional random test. *)

val t2_coverage_conventional : ?full:bool -> unit -> table
(** Table 2: fault coverage by simulation of conventional random patterns
    (12 000 / 12 000 / 4 000 / 4 096 patterns on the hard suite). *)

val t3_required_length_optimized : ?full:bool -> unit -> table
(** Table 3: necessary test lengths for optimized random tests. *)

val t4_coverage_optimized : ?full:bool -> unit -> table
(** Table 4: fault coverage by simulation of optimized random patterns. *)

val t5_cpu_time : ?full:bool -> unit -> table
(** Table 5: CPU time of the optimizing procedure, plus the §5.2 comparison
    against deterministic test generation (PODEM). *)

val f1_s1_structure : unit -> table
(** Fig. 1: the S1 comparator's structure (stats + netlist digest). *)

val f2_coverage_curve : ?full:bool -> unit -> table
(** Fig. 2: fault coverage vs pattern count on S1, conventional vs
    optimized series. *)

val a1_weight_listing : ?full:bool -> unit -> table
(** Appendix: optimized input probabilities for S1 and c7552ish. *)

val x2_partitioning : unit -> table
(** §5.3: the pathological antagonist circuit — single distribution vs the
    partitioned multi-distribution test this library implements. *)

val x3_convexity_scan : unit -> table
(** §3: numeric scan of [J_N(X, y|i)] confirming per-coordinate strict
    convexity (and multi-extremality across coordinates). *)

val x4_engine_ablation : ?full:bool -> unit -> table
(** §2.3/§5 claim — ANALYSIS providers are interchangeable ("PREDICT or
    STAFAN will presumably work as well"): optimize S1 with each oracle,
    score every weight vector with the exact engine. *)

val x5_quantization_ablation : ?full:bool -> unit -> table
(** Appendix grid — cost of weight realisability: unquantised vs the 0.05
    paper grid vs dyadic LFSR-network grids. *)

val x6_jitter_ablation : ?full:bool -> unit -> table
(** §3.1 multi-extremality in practice: starting the sweep exactly at the
    all-0.5 saddle stalls on equality-comparator circuits; the jittered
    start escapes it. *)

val all : ?full:bool -> unit -> table list

val ids : string list
(** Canonical experiment ids in paper order — what {!all} runs; each
    resolves through {!by_id} (the bench harness uses this to time
    experiments individually). *)

val by_id : string -> (?full:bool -> unit -> table) option
(** Lookup by experiment id ("t1".."t5", "f1", "f2", "a1", "x2".."x6"). *)
