module Netlist = Rt_circuit.Netlist
module Generators = Rt_circuit.Generators
module Fault = Rt_fault.Fault
module Detect = Rt_testability.Detect
module Optimize = Rt_optprob.Optimize
module Pipeline = Rt_pipeline
module Pconfig = Rt_pipeline.Config

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let print_table ppf t =
  Format.fprintf ppf "@.== %s: %s ==@." t.id t.title;
  let widths = Array.make (List.length t.header) 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure t.header;
  List.iter measure t.rows;
  let print_row row =
    List.iteri
      (fun i cell -> Format.fprintf ppf "%s%s  " cell (String.make (widths.(i) - String.length cell) ' '))
      row;
    Format.fprintf ppf "@."
  in
  print_row t.header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') t.header);
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

let fmt_n n =
  if Float.is_finite n then Printf.sprintf "%.1e" n else "inf"

let fmt_pct p = Printf.sprintf "%.1f%%" (100.0 *. p)

(* --- Shared pipeline contexts -------------------------------------------- *)

let confidence = 0.95

(* Paper Table 1 reference values. *)
let paper_t1 =
  [ ("s1", 5.6e8); ("s2", 2.0e11); ("c432ish", 2.5e3); ("c499ish", 1.9e3); ("c880ish", 3.7e4);
    ("c1355ish", 2.2e6); ("c1908ish", 6.2e4); ("c2670ish", 1.1e7); ("c3540ish", 2.3e6);
    ("c5315ish", 5.3e4); ("c6288ish", 1.9e3); ("c7552ish", 4.9e11) ]

(* Hard suite with the paper's simulation pattern counts. *)
let hard_specs =
  [ ("s1", 12_000); ("s2", 12_000); ("c2670ish", 4_000); ("c7552ish", 4_096) ]

let paper_t2 = [ ("s1", 80.7); ("s2", 77.2); ("c2670ish", 88.0); ("c7552ish", 93.9) ]
let paper_t3 = [ ("s1", 3.5e4); ("s2", 4.0e4); ("c2670ish", 6.9e4); ("c7552ish", 1.2e5) ]
let paper_t4 = [ ("s1", 99.7); ("s2", 99.7); ("c2670ish", 99.7); ("c7552ish", 98.9) ]
let paper_t5 = [ ("s1", 300.0); ("s2", 600.0); ("c2670ish", 1200.0); ("c7552ish", 2000.0) ]

(* Every experiment pulls its circuit, fault list, exact oracle and
   optimization out of one Rt_pipeline context per circuit; the context
   memoises the stages, so the Hashtbl below only caches the contexts
   themselves.  Full mode scales S2 back up to the paper's divider width
   and raises the sweep budget — a different config, hence the reset. *)
let full_mode = ref false
let ctx_cache : (string, Pipeline.t) Hashtbl.t = Hashtbl.create 16
let detectable_cache : (string, bool array) Hashtbl.t = Hashtbl.create 16
let opt_cache : (string * bool, Optimize.report * float) Hashtbl.t = Hashtbl.create 16

let set_full full =
  if full <> !full_mode then begin
    full_mode := full;
    Hashtbl.reset ctx_cache;
    Hashtbl.reset detectable_cache
  end

(* The table-driven base config: exact BDD analysis plus the optimizer
   budget shared by T3/T4/T5/F2/A1.  Netlist optimization is pinned off
   in every experiment config: the paper's numbers were computed on the
   circuits as defined, and the tables must not shift with OPTPROB_OPT.
   The objective is pinned to [single] for the same reason: the paper's
   tables are single-detect, whatever OPTPROB_OBJECTIVE says. *)
let base_config name =
  let circuit = if name = "s2" && !full_mode then "s2:20" else name in
  Pconfig.exn
    (Pconfig.make ~engine:"bdd:2000000" ~confidence ~alpha:0.005 ~nf_min:256 ~objective:"single"
       ~sweeps:(if !full_mode then 16 else 12)
       ~quantize:(Optimize.Grid 0.05) ~opt_passes:[] ~circuit ())

let ctx name =
  match Hashtbl.find_opt ctx_cache name with
  | Some t -> t
  | None ->
    let t = Pipeline.create (base_config name) in
    Hashtbl.add ctx_cache name t;
    t

let circuit name = Pipeline.circuit (ctx name)
let faults name = Pipeline.fault_list (ctx name)
let oracle name = Pipeline.oracle (ctx name)

(* Detectable-fault mask: faults proven redundant by the exact engine are
   excluded (the paper reports coverage only over detectable faults);
   non-exact leftovers get a PODEM attempt. *)
let detectable_mask name =
  match Hashtbl.find_opt detectable_cache name with
  | Some m -> m
  | None ->
    let o = oracle name in
    let red = Detect.proven_redundant o in
    let exact = Detect.exact_mask o in
    let fs = faults name in
    let c = circuit name in
    (* Cheap pre-filter: fault simulation under several distributions
       (uniform plus both extremes, which catch equality-chain faults)
       proves most faults detectable; only the simulation-resistant,
       non-exact tail needs a PODEM verdict.  An aborted PODEM counts as
       detectable — only proofs exclude a fault, as in the paper. *)
    let n_inputs = Array.length (Netlist.inputs c) in
    let sim_detected = Array.make (Array.length fs) false in
    List.iter
      (fun (seed, w) ->
        let rng = Rt_util.Rng.create seed in
        let source = Rt_sim.Pattern.weighted rng (Array.make n_inputs w) in
        let sim = Rt_sim.Fault_sim.simulate ~drop:true c fs ~source ~n_patterns:2_048 in
        Array.iteri
          (fun i fd -> if fd >= 0 then sim_detected.(i) <- true)
          sim.Rt_sim.Fault_sim.first_detect)
      [ (99, 0.5); (101, 0.9); (103, 0.1) ];
    let mask =
      Array.mapi
        (fun i f ->
          if red.(i) then false
          else if exact.(i) then true
          else if sim_detected.(i) then true
          else begin
            match Rt_atpg.Podem.generate ~backtrack_limit:300 c f with
            | Rt_atpg.Podem.Redundant, _ -> false
            | (Rt_atpg.Podem.Test _ | Rt_atpg.Podem.Aborted), _ -> true
          end)
        fs
    in
    Hashtbl.add detectable_cache name mask;
    mask

let optimized name ~full =
  match Hashtbl.find_opt opt_cache (name, full) with
  | Some r -> r
  | None ->
    let t = ctx name in
    (* Force the upstream stages first so the timer brackets exactly the
       OPTIMIZE step, as T5 reports it. *)
    ignore (Pipeline.normalized t);
    let t0 = Rt_util.Stats.timer_start () in
    let report = (Pipeline.optimized t).Pipeline.value.Pipeline.opt_report in
    let seconds = Rt_util.Stats.timer_elapsed t0 in
    Hashtbl.add opt_cache (name, full) (report, seconds);
    (report, seconds)

let required_at name weights =
  let pf = Detect.probs (oracle name) weights in
  let det = detectable_mask name in
  let pf_det = pf |> Array.to_list |> List.filteri (fun i _ -> det.(i)) |> Array.of_list in
  (Rt_optprob.Normalize.run ~confidence pf_det).Rt_optprob.Normalize.n

let coverage_at name weights ~n_patterns ~seed =
  let c = circuit name in
  let fs = faults name in
  let det = detectable_mask name in
  let rng = Rt_util.Rng.create seed in
  let source = Rt_sim.Pattern.weighted rng weights in
  let stats = Rt_sim.Fault_sim.simulate ~drop:true c fs ~source ~n_patterns in
  let total = ref 0 and hit = ref 0 in
  Array.iteri
    (fun i fd ->
      if det.(i) then begin
        incr total;
        if fd >= 0 then incr hit
      end)
    stats.Rt_sim.Fault_sim.first_detect;
  if !total = 0 then 1.0 else Float.of_int !hit /. Float.of_int !total

let uniform name = Array.make (Array.length (Netlist.inputs (circuit name))) 0.5

(* --- Tables -------------------------------------------------------------- *)

let t1_required_length_conventional ?(full = false) () =
  set_full full;
  let rows =
    List.map
      (fun (name, _) ->
        let c = circuit name in
        let star = if List.mem_assoc name paper_t3 then "*" else " " in
        let n = required_at name (uniform name) in
        let paper = List.assoc name paper_t1 in
        [ star ^ name;
          string_of_int (Array.length (Netlist.inputs c));
          string_of_int (Netlist.gate_count c);
          string_of_int (Array.length (faults name));
          fmt_n n;
          fmt_n paper ])
      Generators.paper_suite
  in
  { id = "T1";
    title = "necessary test lengths, conventional random test (X = 0.5)";
    header = [ "circuit"; "inputs"; "gates"; "faults"; "N required"; "paper N" ];
    rows;
    notes =
      [ "confidence target 0.95; detection probabilities from the exact BDD engine \
         (COP fallback where BDDs exceed the node limit)";
        "* = random-pattern-resistant circuits (the paper's starred rows)";
        "s2 runs as a 16-bit divider (hardest flag fault 4^-16 => N ~ 1e10); full \
         mode widens it to 20 bits, matching the paper's 2e11 magnitude" ] }

let t2_coverage_conventional ?(full = false) () =
  set_full full;
  let rows =
    List.map
      (fun (name, n_patterns) ->
        let cov = coverage_at name (uniform name) ~n_patterns ~seed:2024 in
        [ name; string_of_int n_patterns; fmt_pct cov;
          Printf.sprintf "%.1f%%" (List.assoc name paper_t2) ])
      hard_specs
  in
  { id = "T2";
    title = "fault coverage, conventional random patterns";
    header = [ "circuit"; "patterns"; "coverage"; "paper" ];
    rows;
    notes = [ "coverage over detectable faults only (redundancies proven and excluded)" ] }

let t3_required_length_optimized ?(full = false) () =
  set_full full;
  let rows =
    List.map
      (fun (name, _) ->
        let report, _ = optimized name ~full in
        [ name;
          fmt_n report.Optimize.n_initial;
          fmt_n report.Optimize.n_final;
          Printf.sprintf "x%.0f" (Optimize.improvement report);
          fmt_n (List.assoc name paper_t3) ])
      hard_specs
  in
  { id = "T3";
    title = "necessary test lengths, optimized random test";
    header = [ "circuit"; "N conventional"; "N optimized"; "gain"; "paper N opt" ];
    rows;
    notes = [ "weights quantized to the paper's 0.05 grid before evaluation" ] }

let t4_coverage_optimized ?(full = false) () =
  set_full full;
  let rows =
    List.map
      (fun (name, n_patterns) ->
        let report, _ = optimized name ~full in
        let cov = coverage_at name report.Optimize.weights ~n_patterns ~seed:2024 in
        [ name; string_of_int n_patterns; fmt_pct cov;
          Printf.sprintf "%.1f%%" (List.assoc name paper_t4) ])
      hard_specs
  in
  { id = "T4";
    title = "fault coverage, optimized random patterns";
    header = [ "circuit"; "patterns"; "coverage"; "paper" ];
    rows;
    notes = [] }

let t5_cpu_time ?(full = false) () =
  set_full full;
  let rows =
    List.map
      (fun (name, _) ->
        let _, seconds = optimized name ~full in
        [ name; Printf.sprintf "%.1fs" seconds;
          Printf.sprintf "%.0fs" (List.assoc name paper_t5) ])
      hard_specs
  in
  (* §5.2: optimization + fault simulation vs deterministic TPG on S1. *)
  let name = "s1" in
  let report, opt_s = optimized name ~full in
  let t0 = Rt_util.Stats.timer_start () in
  let _ =
    coverage_at name report.Optimize.weights ~n_patterns:12_000 ~seed:7
  in
  let fsim_s = Rt_util.Stats.timer_elapsed t0 in
  let tpg = Rt_atpg.Tpg.generate (circuit name) (faults name) in
  let extra =
    [ [ "s1 optimize+fsim"; Printf.sprintf "%.1fs" (opt_s +. fsim_s); "-" ];
      [ "s1 podem tpg"; Printf.sprintf "%.1fs" tpg.Rt_atpg.Tpg.seconds; "-" ] ]
  in
  { id = "T5";
    title = "CPU time of the optimizing procedure";
    header = [ "circuit"; "seconds (this host)"; "paper (2.5 MIPS)" ];
    rows = rows @ extra;
    notes =
      [ "paper numbers are from a SIEMENS 7561 (~2.5 MIPS); compare ratios, not absolutes";
        "the last two rows reproduce the §5.2 claim that optimize+simulate is \
         competitive with deterministic TPG" ] }

let f1_s1_structure () =
  let c = circuit "s1" in
  let stats = Format.asprintf "%t" (fun ppf -> Netlist.stats c ppf) in
  let bench = Rt_circuit.Bench_format.to_string c in
  let digest = Digest.to_hex (Digest.string bench) in
  { id = "F1";
    title = "circuit S1: 24-bit comparator from six SN7485-style slices (paper Fig. 1)";
    header = [ "property"; "value" ];
    rows =
      [ [ "structure"; stats ];
        [ "bench lines"; string_of_int (List.length (String.split_on_char '\n' bench)) ];
        [ "bench md5"; digest ];
        [ "outputs"; "a_lt_b a_eq_b a_gt_b" ] ];
    notes = [ "dump the netlist with: optprob generate s1 -o s1.bench" ] }

let f2_coverage_curve ?(full = false) () =
  set_full full;
  let name = "s1" in
  let c = circuit name in
  let fs = faults name in
  let det = detectable_mask name in
  let report, _ = optimized name ~full in
  let n_patterns = 12_000 in
  let run weights seed =
    let rng = Rt_util.Rng.create seed in
    let source = Rt_sim.Pattern.weighted rng weights in
    Rt_sim.Fault_sim.simulate ~drop:true c fs ~source ~n_patterns
  in
  let s_conv = run (uniform name) 2024 in
  let s_opt = run report.Optimize.weights 2024 in
  let points = Rt_util.Stats.geometric_steps ~lo:16 ~hi:n_patterns ~per_decade:4 in
  let cov stats k =
    let total = ref 0 and hit = ref 0 in
    Array.iteri
      (fun i fd ->
        if det.(i) then begin
          incr total;
          if fd >= 0 && fd < k then incr hit
        end)
      stats.Rt_sim.Fault_sim.first_detect;
    Float.of_int !hit /. Float.of_int (max 1 !total)
  in
  let rows =
    List.map
      (fun k -> [ string_of_int k; fmt_pct (cov s_conv k); fmt_pct (cov s_opt k) ])
      points
  in
  { id = "F2";
    title = "fault coverage vs pattern count on S1 (paper Fig. 2)";
    header = [ "patterns"; "conventional"; "optimized" ];
    rows;
    notes = [ "the paper's figure shows the same crossover: optimized patterns reach \
               ~100% within 10^4 patterns while conventional saturates far below" ] }

let a1_weight_listing ?(full = false) () =
  set_full full;
  let listing name =
    let report, _ = optimized name ~full in
    let c = circuit name in
    let txt = Format.asprintf "%a" (Rt_optprob.Weights_io.pp c) report.Optimize.weights in
    String.split_on_char '\n' txt
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun line -> [ name; line ])
  in
  { id = "A1";
    title = "optimized input probabilities (paper appendix, 0.05 grid)";
    header = [ "circuit"; "input(s)  probability" ];
    rows = listing "s1" @ listing "c7552ish";
    notes = [ "machine-readable files: optprob optimize <circuit> -o weights.txt" ] }

let x2_partitioning () =
  let t =
    Pipeline.create
      (Pconfig.exn
         (Pconfig.make ~engine:"bdd:500000" ~confidence ~objective:"single" ~opt_passes:[]
            ~circuit:"antagonist" ()))
  in
  let sp = Rt_optprob.Partition.split (Pipeline.oracle t) in
  let open Rt_optprob.Partition in
  let rows =
    [ [ "single distribution"; fmt_n sp.n_single ];
      [ "partitions"; string_of_int (Array.length sp.groups) ] ]
    @ (Array.to_list
         (Array.mapi
            (fun i n ->
              [ Printf.sprintf "part %d (w0=%.2f)" i sp.weights.(i).(0); fmt_n n ])
            sp.n_parts))
    @ [ [ "partitioned total"; fmt_n sp.n_total ];
        [ "gain"; Printf.sprintf "x%.0f" (sp.n_single /. sp.n_total) ] ]
  in
  { id = "X2";
    title = "fault-set partitioning on the pathological antagonist circuit (§5.3)";
    header = [ "quantity"; "test length" ];
    rows;
    notes =
      [ "wide AND and wide NOR over the same inputs: no single distribution serves \
         both; the partitioned test the paper proposes (but did not implement) does" ] }

let x3_convexity_scan () =
  let name = "s1" in
  let o = oracle name in
  let x = uniform name in
  let norm = Rt_optprob.Normalize.run ~confidence (Detect.probs o x) in
  let n = norm.Rt_optprob.Normalize.n in
  let hard = Rt_optprob.Normalize.hard_indices norm in
  let gather pf = Array.map (fun i -> pf.(i)) hard in
  let x' = Array.copy x in
  x'.(0) <- 0.0;
  let p0 = gather (Detect.probs o x') in
  x'.(0) <- 1.0;
  let p1 = gather (Detect.probs o x') in
  let ys = List.init 11 (fun i -> 0.05 +. (0.09 *. Float.of_int i)) in
  let js = List.map (fun y -> Rt_optprob.Objective.value_along ~n ~p0 ~p1 y) ys in
  (* Convexity check: second differences non-negative. *)
  let rec second_diffs = function
    | a :: (b :: c :: _ as rest) -> (a +. c -. (2.0 *. b)) :: second_diffs rest
    | _ -> []
  in
  let convex = List.for_all (fun d -> d >= -1e-9) (second_diffs js) in
  let rows =
    List.map2 (fun y j -> [ Printf.sprintf "%.2f" y; Printf.sprintf "%.4f" j ]) ys js
    @ [ [ "convex?"; string_of_bool convex ] ]
  in
  { id = "X3";
    title = "objective along one coordinate (J_N(X, y|a0) on S1): strictly convex";
    header = [ "y"; "J_N" ];
    rows;
    notes = [ "Lemma 3 of the paper; the global problem is still multi-extremal (§3.1)" ] }

let x4_engine_ablation ?(full = false) () =
  set_full full;
  let exact_oracle = oracle "s1" in
  let rows =
    List.map
      (fun (label, engine) ->
        (* One fresh pipeline per engine, same budget; the timer brackets
           the OPTIMIZE stage only. *)
        let t =
          Pipeline.create
            (Pconfig.exn
               (Pconfig.make ~engine ~confidence ~sweeps:8 ~nf_min:256 ~objective:"single"
                  ~opt_passes:[] ~circuit:"s1" ()))
        in
        ignore (Pipeline.normalized t);
        let t0 = Rt_util.Stats.timer_start () in
        let r = (Pipeline.optimized t).Pipeline.value.Pipeline.opt_report in
        let seconds = Rt_util.Stats.timer_elapsed t0 in
        (* Score the weights with the exact engine regardless of which
           engine produced them. *)
        let pf = Detect.probs exact_oracle r.Optimize.weights in
        let n_true = (Rt_optprob.Normalize.run ~confidence pf).Rt_optprob.Normalize.n in
        [ label; fmt_n n_true; Printf.sprintf "%.1fs" seconds ])
      [ ("cop (PROTEST-style estimate)", "cop");
        ("conditioned (PREDICT-style)", "cond:6");
        ("bdd (exact)", "bdd:2000000");
        ("stafan (counting)", "stafan:8192");
        ("monte-carlo", "mc:8192") ]
  in
  { id = "X4";
    title = "ANALYSIS engines are interchangeable (optimized S1 scored by the exact engine)";
    header = [ "engine"; "true N at its weights"; "optimize time" ];
    rows;
    notes =
      [ "the paper: 'with slight modifications PREDICT or STAFAN will presumably work \
         as well' - analytic estimators land within the same order as exact analysis";
        "monte-carlo fails by design: sampling cannot resolve probabilities below \
         ~1/patterns, so the hardest faults are reported as 0 and drop out of the \
         objective - an ANALYSIS engine must resolve p_f well below 1/N" ] }

let x5_quantization_ablation ?(full = false) () =
  set_full full;
  let exact_oracle = oracle "s1" in
  let score w =
    let pf = Detect.probs exact_oracle w in
    (Rt_optprob.Normalize.run ~confidence pf).Rt_optprob.Normalize.n
  in
  let t =
    Pipeline.create
      (Pconfig.exn
         (Pconfig.make ~engine:"bdd:2000000" ~confidence ~sweeps:12
            ~quantize:Optimize.No_quantization ~objective:"single" ~opt_passes:[]
            ~circuit:"s1" ()))
  in
  let raw = (Pipeline.optimized t).Pipeline.value.Pipeline.opt_report in
  let quantised q = Optimize.apply_quantization q raw.Optimize.weights in
  let rows =
    [ [ "unquantised"; fmt_n (score raw.Optimize.weights) ];
      [ "grid 0.05 (paper appendix)"; fmt_n (score (quantised (Optimize.Grid 0.05))) ];
      [ "dyadic k/16 (4-bit network)"; fmt_n (score (quantised (Optimize.Dyadic 4))) ];
      [ "dyadic k/8 (3-bit network)"; fmt_n (score (quantised (Optimize.Dyadic 3))) ];
      [ "dyadic k/4 (2-bit network)"; fmt_n (score (quantised (Optimize.Dyadic 2))) ] ]
  in
  { id = "X5";
    title = "cost of weight realisability on S1 (same optimum, coarser grids)";
    header = [ "grid"; "required N" ];
    rows;
    notes = [ "the LFSR weighting network of Rt_bist realises the dyadic rows in hardware" ] }

let x6_jitter_ablation ?(full = false) () =
  set_full full;
  (* A pure guarded equality detector: every hard fault needs operand
     pairs to agree, and with X exactly 0.5 every coordinate derivative of
     those faults vanishes (the saddle of §3.1). *)
  let c =
    let b = Rt_circuit.Builder.create () in
    let xs = Rt_circuit.Builder.inputs b "x" 12 in
    let ys = Rt_circuit.Builder.inputs b "y" 12 in
    let en = Rt_circuit.Builder.inputs b "en" 2 in
    let eq = Generators.equality_comparator b xs ys in
    let armed = Rt_circuit.Builder.and2 b en.(0) en.(1) in
    Rt_circuit.Builder.output b ~name:"match" (Rt_circuit.Builder.and2 b eq armed);
    Rt_circuit.Builder.output b ~name:"parity" (Generators.parity b xs);
    Rt_circuit.Builder.finalize b
  in
  let run jitter =
    let t =
      Pipeline.create
        (Pconfig.exn
           (Pconfig.of_netlist ~engine:"bdd:500000" ~confidence ~sweeps:10
              ~start_jitter:jitter ~objective:"single" ~opt_passes:[]
              ~name:"guarded-eq" c))
    in
    (Pipeline.optimized t).Pipeline.value.Pipeline.opt_report
  in
  let rows =
    List.map
      (fun jitter ->
        let r = run jitter in
        [ Printf.sprintf "%.2f" jitter;
          fmt_n r.Optimize.n_final;
          string_of_int r.Optimize.sweeps_run ])
      [ 0.0; 0.02; 0.06; 0.12 ]
  in
  { id = "X6";
    title = "start-jitter ablation on a guarded equality detector (the all-0.5 saddle)";
    header = [ "jitter"; "N optimized"; "sweeps" ];
    rows;
    notes =
      [ "equality comparators make X = 0.5 a stationary point of every coordinate: \
         with jitter 0.00 the sweep cannot separate the operand pair weights" ] }

let all ?(full = false) () =
  [ t1_required_length_conventional ~full ();
    t2_coverage_conventional ~full ();
    t3_required_length_optimized ~full ();
    t4_coverage_optimized ~full ();
    t5_cpu_time ~full ();
    f1_s1_structure ();
    f2_coverage_curve ~full ();
    a1_weight_listing ~full ();
    x2_partitioning ();
    x3_convexity_scan ();
    x4_engine_ablation ~full ();
    x5_quantization_ablation ~full ();
    x6_jitter_ablation ~full () ]

let ids = [ "t1"; "t2"; "t3"; "t4"; "t5"; "f1"; "f2"; "a1"; "x2"; "x3"; "x4"; "x5"; "x6" ]

let by_id id =
  match String.lowercase_ascii id with
  | "t1" -> Some t1_required_length_conventional
  | "t2" -> Some t2_coverage_conventional
  | "t3" -> Some t3_required_length_optimized
  | "t4" -> Some t4_coverage_optimized
  | "t5" -> Some t5_cpu_time
  | "f1" -> Some (fun ?full () -> ignore full; f1_s1_structure ())
  | "f2" -> Some f2_coverage_curve
  | "a1" -> Some a1_weight_listing
  | "x2" -> Some (fun ?full () -> ignore full; x2_partitioning ())
  | "x3" -> Some (fun ?full () -> ignore full; x3_convexity_scan ())
  | "x4" -> Some x4_engine_ablation
  | "x5" -> Some x5_quantization_ablation
  | "x6" -> Some x6_jitter_ablation
  | _ -> None
