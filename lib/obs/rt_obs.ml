(* Global observability sink.  The enabled flag is the only thing the
   disabled path ever touches: one atomic load, one branch, no allocation —
   the overhead budget that lets the library's hot loops stay instrumented
   permanently.  Recording itself takes a mutex (spans are emitted at
   region/phase granularity, so contention is negligible next to the work
   being timed) and counters are plain atomics. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let now_us () = Unix.gettimeofday () *. 1e6

(* --- spans ---------------------------------------------------------------- *)

type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
}

let lock = Mutex.create ()
let events_rev : event list ref = ref []

let record ev =
  Mutex.lock lock;
  events_rev := ev :: !events_rev;
  Mutex.unlock lock

let span_begin () = if Atomic.get on then now_us () else Float.neg_infinity

let span_end ?(cat = "span") name t0 =
  if t0 > Float.neg_infinity then begin
    let dur = Float.max 0.0 (now_us () -. t0) in
    record { name; cat; ts_us = t0; dur_us = dur; tid = (Domain.self () :> int) }
  end

let with_span ?cat name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      span_end ?cat name t0;
      v
    | exception e ->
      span_end ?cat name t0;
      raise e
  end

let events () =
  Mutex.lock lock;
  let evs = !events_rev in
  Mutex.unlock lock;
  List.rev evs

(* --- counters / gauges ----------------------------------------------------- *)

type counter = int Atomic.t
type gauge = float Atomic.t

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let registered tbl make name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock lock;
  v

let counter name = registered counters (fun () -> Atomic.make 0) name
let gauge name = registered gauges (fun () -> Atomic.make 0.0) name
let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)
let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c k)
let value c = Atomic.get c
let gauge_set g v = if Atomic.get on then Atomic.set g v
let gauge_value g = Atomic.get g

let snapshot tbl get =
  Mutex.lock lock;
  let xs = Hashtbl.fold (fun name v acc -> (name, get v) :: acc) tbl [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let counters_snapshot () = snapshot counters Atomic.get
let gauges_snapshot () = snapshot gauges Atomic.get

let clear () =
  Mutex.lock lock;
  events_rev := [];
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.0) gauges;
  Mutex.unlock lock

(* --- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let trace_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
           (json_escape ev.name) (json_escape ev.cat) ev.ts_us ev.dur_us ev.tid))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let metrics_json () =
  let buf = Buffer.create 1024 in
  let obj add xs =
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (Printf.sprintf "    \"%s\": " (json_escape name));
        add v)
      xs
  in
  Buffer.add_string buf "{\n  \"schema\": \"optprob-metrics/1\",\n  \"counters\": {\n";
  obj (fun v -> Buffer.add_string buf (string_of_int v)) (counters_snapshot ());
  Buffer.add_string buf "\n  },\n  \"gauges\": {\n";
  obj (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g" v)) (gauges_snapshot ());
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write_trace path = write_file path (trace_json ())
let write_metrics path = write_file path (metrics_json ())

(* --- human-readable summary ------------------------------------------------ *)

(* Rebuild span nesting per domain from the complete events: sort by start
   (ties: longer first, i.e. parent before child) and keep a stack of open
   ancestors; an event whose start falls inside the stack top is its child.
   A 1 µs slack absorbs clock granularity at shared boundaries. *)
type node = { ev : event; mutable children : node list }

let forest evs =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find by_tid e.tid with Not_found -> [] in
      Hashtbl.replace by_tid e.tid (e :: cur))
    evs;
  let contains outer e =
    e.ts_us >= outer.ts_us -. 1.0 && e.ts_us +. e.dur_us <= outer.ts_us +. outer.dur_us +. 1.0
  in
  let tids = List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid []) in
  List.concat_map
    (fun tid ->
      let es =
        List.sort
          (fun a b ->
            match Float.compare a.ts_us b.ts_us with
            | 0 -> Float.compare b.dur_us a.dur_us
            | c -> c)
          (Hashtbl.find by_tid tid)
      in
      let roots = ref [] in
      let stack = ref [] in
      List.iter
        (fun e ->
          let n = { ev = e; children = [] } in
          while (match !stack with top :: _ -> not (contains top.ev e) | [] -> false) do
            stack := List.tl !stack
          done;
          (match !stack with
           | top :: _ -> top.children <- n :: top.children
           | [] -> roots := n :: !roots);
          stack := n :: !stack)
        es;
      List.rev !roots)
    tids

let pp_summary ppf =
  let rec print indent nodes =
    (* Aggregate siblings by (name, cat), preserving first-seen order. *)
    let order = ref [] in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun n ->
        let key = (n.ev.name, n.ev.cat) in
        (match Hashtbl.find_opt groups key with
         | Some (cnt, tot, kids) -> Hashtbl.replace groups key (cnt + 1, tot +. n.ev.dur_us, n.children @ kids)
         | None ->
           order := key :: !order;
           Hashtbl.replace groups key (1, n.ev.dur_us, n.children));
        ())
      nodes;
    List.iter
      (fun key ->
        let name, _ = key in
        let cnt, tot, kids = Hashtbl.find groups key in
        let label = indent ^ name in
        Format.fprintf ppf "  %-42s %8d x %12.2f ms@." label cnt (tot /. 1000.0);
        print (indent ^ "  ") (List.rev kids))
      (List.rev !order)
  in
  let evs = events () in
  if evs <> [] then begin
    Format.fprintf ppf "spans (aggregated by nesting):@.";
    print "" (forest evs)
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters_snapshot ()) in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-44s %12d@." name v) cs
  end;
  let gs = gauges_snapshot () in
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-44s %12.1f@." name v) gs
  end

(* --- convergence recorder --------------------------------------------------- *)

module Convergence = struct
  type row = {
    stage : string;
    sweep : int;
    j : float;
    n : float;
    y : float array;
  }

  type t = { mutable rows_rev : row list }

  let create () = { rows_rev = [] }

  let record t ~stage ~sweep ~j ~n ~y =
    t.rows_rev <- { stage; sweep; j; n; y = Array.copy y } :: t.rows_rev

  let rows t = List.rev t.rows_rev

  let to_csv t =
    let rows = rows t in
    let width = match rows with [] -> 0 | r :: _ -> Array.length r.y in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "stage,sweep,j_n,n";
    for i = 0 to width - 1 do
      Buffer.add_string buf (Printf.sprintf ",y%d" i)
    done;
    Buffer.add_char buf '\n';
    List.iter
      (fun r ->
        Buffer.add_string buf (Printf.sprintf "%s,%d,%.17g,%.17g" r.stage r.sweep r.j r.n);
        Array.iter (fun y -> Buffer.add_string buf (Printf.sprintf ",%.17g" y)) r.y;
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf

  let to_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"optprob-convergence/1\",\n  \"rows\": [\n";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf "    {\"stage\": \"%s\", \"sweep\": %d, \"j_n\": %.17g, \"n\": %.17g, \"y\": [%s]}"
             (json_escape r.stage) r.sweep r.j r.n
             (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.17g") r.y))))
      )
      (rows t);
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf

  let write t path =
    let is_json = Filename.check_suffix path ".json" in
    write_file path (if is_json then to_json t else to_csv t)
end
