(* Global observability sink.  The enabled flag is the only thing the
   disabled path ever touches: one atomic load, one branch, no allocation —
   the overhead budget that lets the library's hot loops stay instrumented
   permanently.  Recording itself takes a mutex (spans are emitted at
   region/phase granularity, so contention is negligible next to the work
   being timed); counters are plain atomics and histogram observation is
   lock-free (atomic bucket increments plus CAS loops for sum/min/max). *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let now_us () = Unix.gettimeofday () *. 1e6

(* --- spans ---------------------------------------------------------------- *)

type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

type mark = {
  m_name : string;
  m_ts_us : float;
  m_tid : int;
  m_fields : (string * string) list;
}

let lock = Mutex.create ()
let events_rev : event list ref = ref []
let marks_rev : mark list ref = ref []

let record ev =
  Mutex.lock lock;
  events_rev := ev :: !events_rev;
  Mutex.unlock lock

let span_begin () = if Atomic.get on then now_us () else Float.neg_infinity

let span_end ?(cat = "span") ?(args = []) name t0 =
  if t0 > Float.neg_infinity then begin
    let dur = Float.max 0.0 (now_us () -. t0) in
    record { name; cat; ts_us = t0; dur_us = dur; tid = (Domain.self () :> int); args }
  end

let with_span ?cat name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      span_end ?cat name t0;
      v
    | exception e ->
      span_end ?cat name t0;
      raise e
  end

let events () =
  Mutex.lock lock;
  let evs = !events_rev in
  Mutex.unlock lock;
  List.rev evs

let mark ?(fields = []) name =
  if Atomic.get on then begin
    let m =
      { m_name = name; m_ts_us = now_us (); m_tid = (Domain.self () :> int); m_fields = fields }
    in
    Mutex.lock lock;
    marks_rev := m :: !marks_rev;
    Mutex.unlock lock
  end

let marks () =
  Mutex.lock lock;
  let ms = !marks_rev in
  Mutex.unlock lock;
  List.rev ms

(* --- track names ------------------------------------------------------------

   Per-domain display names for the trace viewer.  Registration-like (not
   gated on the enabled flag, survives [clear]): a worker domain names its
   track once at spawn and every later trace export shows it. *)

let track_names : (int, string) Hashtbl.t = Hashtbl.create 8

let set_track_name name =
  let tid = (Domain.self () :> int) in
  Mutex.lock lock;
  Hashtbl.replace track_names tid name;
  Mutex.unlock lock

let track_names_snapshot () =
  Mutex.lock lock;
  let xs = Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) track_names [] in
  Mutex.unlock lock;
  List.sort compare xs

(* --- sample hooks -----------------------------------------------------------

   Callbacks that refresh derived gauges from live state (pool utilization,
   queue depths) right before a snapshot is taken.  Lets lower layers like
   [Rt_util.Pool] — which depend on this module — feed the sampler, the
   artifact writer and the HTTP responder without a reverse dependency. *)

let sample_hooks : (unit -> unit) list ref = ref []

let add_sample_hook f =
  Mutex.lock lock;
  sample_hooks := f :: !sample_hooks;
  Mutex.unlock lock

let run_sample_hooks () =
  if Atomic.get on then begin
    Mutex.lock lock;
    let hs = !sample_hooks in
    Mutex.unlock lock;
    (* oldest first, so a later registration's writes win on shared gauges *)
    List.iter (fun f -> try f () with _ -> ()) (List.rev hs)
  end

(* --- counters / gauges ----------------------------------------------------- *)

type counter = int Atomic.t
type gauge = float Atomic.t

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let registered tbl make name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock lock;
  v

let counter name = registered counters (fun () -> Atomic.make 0) name
let gauge name = registered gauges (fun () -> Atomic.make 0.0) name
let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)
let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c k)
let value c = Atomic.get c
let gauge_set g v = if Atomic.get on then Atomic.set g v
let gauge_value g = Atomic.get g

let snapshot tbl get =
  Mutex.lock lock;
  let xs = Hashtbl.fold (fun name v acc -> (name, get v) :: acc) tbl [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let counters_snapshot () = snapshot counters Atomic.get
let gauges_snapshot () = snapshot gauges Atomic.get

(* --- histograms ------------------------------------------------------------

   Fixed log-bucketed layout shared by every histogram: [buckets_per_decade]
   buckets per decade over [10^lo_exp, 10^hi_exp], plus an underflow bucket
   (index 0, everything <= 10^lo_exp) and an overflow bucket (last index,
   upper bound +inf).  A shared layout makes merging lossless and trivially
   associative/commutative: add the bucket arrays element-wise.  The bucket
   index is found by binary search over the precomputed upper bounds — no
   [log10] at observe time, and a value is *always* counted in a bucket
   whose upper bound is >= the value, so reported quantiles are upper
   bounds of the true sample quantiles (within one bucket ratio). *)

let buckets_per_decade = 4
let lo_exp = -9
let hi_exp = 9
let bucket_ratio = Float.pow 10.0 (1.0 /. Float.of_int buckets_per_decade)
let n_core = (hi_exp - lo_exp) * buckets_per_decade

(* upper bounds for buckets 0 .. n_core; bucket n_core + 1 is +inf *)
let bounds =
  Array.init (n_core + 1) (fun i ->
      Float.pow 10.0 (Float.of_int lo_exp +. (Float.of_int i /. Float.of_int buckets_per_decade)))

let n_buckets = n_core + 2
let bucket_upper i = if i >= n_buckets - 1 then Float.infinity else bounds.(i)

let bucket_index v =
  if Float.is_nan v || v <= bounds.(0) then 0
  else if v > bounds.(n_core) then n_buckets - 1
  else begin
    (* smallest i with bounds.(i) >= v; invariant: bounds.(hi) >= v *)
    let lo = ref 0 and hi = ref n_core in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !hi
  end

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array;
}

type hsnap = {
  count : int;
  sum : float;
  min : float;  (* +inf when empty *)
  max : float;  (* -inf when empty *)
  buckets : int array;  (* length [n_buckets] *)
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  registered histograms
    (fun () ->
      { h_name = name;
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0.0;
        h_min = Atomic.make Float.infinity;
        h_max = Atomic.make Float.neg_infinity;
        h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0) })
    name

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let rec atomic_fold_float a better x =
  let cur = Atomic.get a in
  if better x cur && not (Atomic.compare_and_set a cur x) then atomic_fold_float a better x

let observe_always h v =
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1);
  atomic_add_float h.h_sum v;
  atomic_fold_float h.h_min (fun x cur -> x < cur) v;
  atomic_fold_float h.h_max (fun x cur -> x > cur) v

let observe h v = if Atomic.get on then observe_always h v

let span_end_h ?(cat = "span") ?(args = []) name h t0 =
  if t0 > Float.neg_infinity then begin
    (* One clock read feeds both the event and the histogram, so the two
       views of the span duration are identical. *)
    let dur = Float.max 0.0 (now_us () -. t0) in
    record { name; cat; ts_us = t0; dur_us = dur; tid = (Domain.self () :> int); args };
    observe_always h dur
  end

let with_span_h ?cat name h f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | v ->
      span_end_h ?cat name h t0;
      v
    | exception e ->
      span_end_h ?cat name h t0;
      raise e
  end

let histogram_snapshot h =
  { count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    min = Atomic.get h.h_min;
    max = Atomic.get h.h_max;
    buckets = Array.map Atomic.get h.h_buckets }

let histograms_snapshot () =
  snapshot histograms histogram_snapshot
  |> List.filter (fun (_, s) -> s.count > 0)

let hsnap_empty =
  { count = 0;
    sum = 0.0;
    min = Float.infinity;
    max = Float.neg_infinity;
    buckets = Array.make n_buckets 0 }

let hsnap_of_samples xs =
  let buckets = Array.make n_buckets 0 in
  let sum = ref 0.0 and mn = ref Float.infinity and mx = ref Float.neg_infinity in
  Array.iter
    (fun v ->
      buckets.(bucket_index v) <- buckets.(bucket_index v) + 1;
      sum := !sum +. v;
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    xs;
  { count = Array.length xs; sum = !sum; min = !mn; max = !mx; buckets }

let hsnap_merge a b =
  { count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i)) }

(* Upper bound of the true sample quantile: the rank-th smallest sample lies
   in the bucket where the cumulative count reaches the rank, and every
   sample in a bucket is <= its upper bound (and <= the exact max). *)
let hsnap_quantile s q =
  if s.count = 0 then Float.nan
  else if q <= 0.0 then s.min
  else begin
    let rank = Stdlib.min s.count (int_of_float (Float.ceil (q *. Float.of_int s.count))) in
    let rank = Stdlib.max 1 rank in
    let acc = ref 0 and i = ref 0 in
    while !acc < rank && !i < n_buckets do
      acc := !acc + s.buckets.(!i);
      if !acc < rank then Stdlib.incr i
    done;
    Float.min (bucket_upper !i) s.max
  end

(* --- GC gauges --------------------------------------------------------------

   Cheap heap gauges from [Gc.quick_stat], refreshed at phase boundaries
   (sweep ends, artifact writes, SIGUSR1 dumps).  Gated like everything
   else: free when recording is off. *)

let g_minor_words = gauge "gc.minor_words"
let g_major_words = gauge "gc.major_words"
let g_promoted_words = gauge "gc.promoted_words"
let g_heap_words = gauge "gc.heap_words"
let g_minor_collections = gauge "gc.minor_collections"
let g_major_collections = gauge "gc.major_collections"
let g_compactions = gauge "gc.compactions"

let sample_gc () =
  if Atomic.get on then begin
    let s = Gc.quick_stat () in
    gauge_set g_minor_words s.Gc.minor_words;
    gauge_set g_major_words s.Gc.major_words;
    gauge_set g_promoted_words s.Gc.promoted_words;
    gauge_set g_heap_words (Float.of_int s.Gc.heap_words);
    gauge_set g_minor_collections (Float.of_int s.Gc.minor_collections);
    gauge_set g_major_collections (Float.of_int s.Gc.major_collections);
    gauge_set g_compactions (Float.of_int s.Gc.compactions)
  end

let clear () =
  Mutex.lock lock;
  events_rev := [];
  marks_rev := [];
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0.0;
      Atomic.set h.h_min Float.infinity;
      Atomic.set h.h_max Float.neg_infinity;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms;
  Mutex.unlock lock

(* --- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A float that is always valid JSON (JSON has no inf/nan literals). *)
let json_float v =
  if Float.is_nan v then "null"
  else if v = Float.infinity then "1e999"
  else if v = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" v

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse (s : string) : t =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos < len then s.[!pos] else '\x00' in
    let advance () = Stdlib.incr pos in
    let fail msg = failwith (Printf.sprintf "JSON parse error at %d: %s" !pos msg) in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect ch =
      if peek () <> ch then fail (Printf.sprintf "expected %c, got %c" ch (peek ()));
      advance ()
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_body () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\x0c'
           | 'u' ->
             if !pos + 4 >= len then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             let code = int_of_string ("0x" ^ hex) in
             (* our emitters only escape control characters this way *)
             Buffer.add_char buf (Char.chr (code land 0xff));
             pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | '\x00' -> fail "unterminated string"
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while is_num_char (peek ()) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((key, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((key, v) :: acc))
            | c -> fail (Printf.sprintf "expected , or } in object, got %c" c)
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | c -> fail (Printf.sprintf "expected , or ] in array, got %c" c)
          in
          elements []
        end
      | '"' -> Str (string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v

  let member name = function
    | Obj fields -> List.assoc_opt name fields
    | _ -> None

  let to_float = function
    | Num f -> Some f
    | _ -> None

  let to_string = function
    | Str s -> Some s
    | _ -> None

  let print (j : t) : string =
    let buf = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> Buffer.add_string buf (json_float f)
      | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape s);
        Buffer.add_char buf '"'
      | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (json_escape k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
    in
    go j;
    Buffer.contents buf
end

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let trace_json () =
  let evs = events () in
  let ms = marks () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  List.iter
    (fun (tid, name) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (json_escape name)))
    (track_names_snapshot ());
  List.iter
    (fun ev ->
      let args = if ev.args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_json ev.args) in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
           (json_escape ev.name) (json_escape ev.cat) ev.ts_us ev.dur_us ev.tid args))
    evs;
  List.iter
    (fun m ->
      let args =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
             m.m_fields)
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (json_escape m.m_name) m.m_ts_us m.m_tid args))
    ms;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* One self-describing JSON object per line, spans and marks interleaved in
   start-timestamp order — greppable, tail-able, trivially parseable. *)
let events_jsonl () =
  let lines =
    List.map
      (fun ev ->
        let args =
          if ev.args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_json ev.args)
        in
        ( ev.ts_us,
          Printf.sprintf
            "{\"type\":\"span\",\"name\":\"%s\",\"cat\":\"%s\",\"ts_us\":%.3f,\"dur_us\":%.3f,\"tid\":%d%s}"
            (json_escape ev.name) (json_escape ev.cat) ev.ts_us ev.dur_us ev.tid args ))
      (events ())
    @ List.map
        (fun m ->
          let fields =
            String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                 m.m_fields)
          in
          ( m.m_ts_us,
            Printf.sprintf
              "{\"type\":\"mark\",\"name\":\"%s\",\"ts_us\":%.3f,\"tid\":%d,\"fields\":{%s}}"
              (json_escape m.m_name) m.m_ts_us m.m_tid fields ))
        (marks ())
  in
  let lines = List.sort (fun (a, _) (b, _) -> Float.compare a b) lines in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (_, l) ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

let hsnap_json s =
  let qs =
    [ ("p50", hsnap_quantile s 0.5); ("p90", hsnap_quantile s 0.9); ("p99", hsnap_quantile s 0.99) ]
  in
  let buckets =
    Array.to_list s.buckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) -> Printf.sprintf "[%s, %d]" (json_float (bucket_upper i)) c)
    |> String.concat ", "
  in
  Printf.sprintf "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, %s, \"buckets\": [%s]}"
    s.count (json_float s.sum) (json_float s.min) (json_float s.max)
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (json_float v)) qs))
    buckets

let metrics_json () =
  let buf = Buffer.create 1024 in
  let obj add xs =
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (Printf.sprintf "    \"%s\": " (json_escape name));
        add v)
      xs
  in
  Buffer.add_string buf "{\n  \"schema\": \"optprob-metrics/2\",\n  \"counters\": {\n";
  obj (fun v -> Buffer.add_string buf (string_of_int v)) (counters_snapshot ());
  Buffer.add_string buf "\n  },\n  \"gauges\": {\n";
  obj (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g" v)) (gauges_snapshot ());
  Buffer.add_string buf "\n  },\n  \"histograms\": {\n";
  obj (fun s -> Buffer.add_string buf (hsnap_json s)) (histograms_snapshot ());
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

(* --- OpenMetrics exposition -------------------------------------------------

   Text exposition for scrape-based collection: counters (`_total`), gauges,
   and histograms with cumulative `_bucket{le="..."}` series.  Metric names
   are sanitised to [a-zA-Z0-9_:] and prefixed with `optprob_`. *)

let prom_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "optprob_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let metrics_prom () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s_total %d\n" n n v))
    (counters_snapshot ());
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (prom_float v)))
    (gauges_snapshot ());
  List.iter
    (fun (name, s) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let acc = ref 0 in
      Array.iteri
        (fun i c ->
          acc := !acc + c;
          (* keep the exposition compact: only emit boundaries that close a
             nonempty prefix, plus the mandatory +Inf bucket *)
          if c > 0 && i < n_buckets - 1 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float (bucket_upper i)) !acc))
        s.buckets;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n s.count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prom_float s.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.count))
    (histograms_snapshot ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* Strict structural lint of an OpenMetrics text exposition: family blocks
   declared by `# TYPE`, counter samples suffixed `_total`, histogram series
   cumulative with a `+Inf` bucket equal to `_count`, names restricted to
   [a-zA-Z0-9_:], label values quote-escaped, one trailing `# EOF`.  Used by
   the parse-back test and available to external checks. *)
let prom_lint s =
  let errs = ref [] in
  let add m = errs := m :: !errs in
  let errf lineno fmt =
    Printf.ksprintf (fun m -> add (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let name_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false in
  let name_ok n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all name_char n
  in
  let value_of v =
    match v with
    | "+Inf" -> Some Float.infinity
    | "-Inf" -> Some Float.neg_infinity
    | "NaN" -> Some Float.nan
    | _ -> float_of_string_opt v
  in
  (* sample line: name[{k="v",...}] value — quote-aware label scanner *)
  let parse_sample line =
    let len = String.length line in
    let i = ref 0 in
    while !i < len && name_char line.[!i] do Stdlib.incr i done;
    let name = String.sub line 0 !i in
    let labels = ref [] in
    let ok = ref (name <> "") in
    if !ok && !i < len && line.[!i] = '{' then begin
      Stdlib.incr i;
      let rec pairs () =
        if !i < len && line.[!i] = '}' then Stdlib.incr i
        else begin
          let ks = !i in
          while
            !i < len
            && (match line.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
          do
            Stdlib.incr i
          done;
          let k = String.sub line ks (!i - ks) in
          if k = "" || !i + 1 >= len || line.[!i] <> '=' || line.[!i + 1] <> '"' then ok := false
          else begin
            i := !i + 2;
            let buf = Buffer.create 8 in
            let closed = ref false in
            while not !closed && !ok && !i < len do
              (match line.[!i] with
               | '"' -> closed := true
               | '\\' ->
                 Stdlib.incr i;
                 if !i >= len then ok := false
                 else (
                   match line.[!i] with
                   | '\\' -> Buffer.add_char buf '\\'
                   | '"' -> Buffer.add_char buf '"'
                   | 'n' -> Buffer.add_char buf '\n'
                   | _ -> ok := false)
               | c -> Buffer.add_char buf c);
              Stdlib.incr i
            done;
            if not !closed then ok := false
            else begin
              labels := (k, Buffer.contents buf) :: !labels;
              if !i < len && line.[!i] = ',' then begin
                Stdlib.incr i;
                pairs ()
              end
              else if !i < len && line.[!i] = '}' then Stdlib.incr i
              else ok := false
            end
          end
        end
      in
      pairs ()
    end;
    if (not !ok) || !i >= len || line.[!i] <> ' ' then None
    else Some (name, List.rev !labels, String.sub line (!i + 1) (len - !i - 1))
  in
  (* family block state *)
  let fam = ref None in
  let seen = Hashtbl.create 16 in
  let hist_prev = ref 0.0
  and hist_inf = ref None
  and hist_count = ref None
  and fam_line = ref 0 in
  let finish_family () =
    match !fam with
    | Some (n, "histogram") -> (
      match (!hist_inf, !hist_count) with
      | None, _ -> errf !fam_line "histogram %s: missing le=\"+Inf\" bucket" n
      | Some _, None -> errf !fam_line "histogram %s: missing %s_count" n n
      | Some inf, Some c ->
        if inf <> c then errf !fam_line "histogram %s: +Inf bucket %g <> count %g" n inf c)
    | _ -> ()
  in
  if s = "" || s.[String.length s - 1] <> '\n' then add "exposition does not end with a newline";
  let lines = String.split_on_char '\n' s in
  let n_lines = List.length lines in
  let eof = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then begin
        if i <> n_lines - 1 then errf lineno "unexpected blank line"
      end
      else if !eof then errf lineno "content after # EOF"
      else if line = "# EOF" then begin
        finish_family ();
        eof := true
      end
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; mname; mtype ] ->
          finish_family ();
          if not (name_ok mname) then errf lineno "bad metric family name %S" mname;
          if not (List.mem mtype [ "counter"; "gauge"; "histogram"; "summary"; "info"; "unknown" ])
          then errf lineno "bad metric type %S" mtype;
          if Hashtbl.mem seen mname then errf lineno "duplicate family %s" mname;
          Hashtbl.replace seen mname ();
          fam := Some (mname, mtype);
          hist_prev := 0.0;
          hist_inf := None;
          hist_count := None;
          fam_line := lineno
        | "#" :: ("HELP" | "UNIT") :: _ -> ()
        | _ -> errf lineno "unrecognized comment line %S" line
      end
      else begin
        match parse_sample line with
        | None -> errf lineno "malformed sample line %S" line
        | Some (sname, labels, vstr) ->
          if not (name_ok sname) then errf lineno "bad sample name %S" sname;
          (match value_of vstr with
           | None -> errf lineno "unparseable value %S" vstr
           | Some v -> (
             match !fam with
             | None -> errf lineno "sample %s before any # TYPE" sname
             | Some (fname, "counter") ->
               if sname <> fname ^ "_total" && sname <> fname ^ "_created" then
                 errf lineno "counter sample %s must be %s_total" sname fname
               else if not (v >= 0.0) then errf lineno "counter %s has non-finite or negative value" sname
             | Some (fname, "gauge") ->
               if sname <> fname then errf lineno "gauge sample %s outside family %s" sname fname
             | Some (fname, "histogram") ->
               if sname = fname ^ "_bucket" then begin
                 (match List.assoc_opt "le" labels with
                  | None -> errf lineno "histogram bucket without le label"
                  | Some le ->
                    if value_of le = None then errf lineno "unparseable le=%S" le;
                    if le = "+Inf" then hist_inf := Some v);
                 if v < !hist_prev then
                   errf lineno "histogram %s buckets not cumulative (%g after %g)" fname v !hist_prev;
                 hist_prev := v
               end
               else if sname = fname ^ "_sum" then ()
               else if sname = fname ^ "_count" then begin
                 if not (v >= 0.0) then errf lineno "negative histogram count";
                 hist_count := Some v
               end
               else errf lineno "unexpected sample %s in histogram family %s" sname fname
             | Some _ -> ()))
      end)
    lines;
  if not !eof then add "missing '# EOF' terminator";
  List.rev !errs

(* Atomic artifact write: a reader polling the directory mid-run (SIGUSR1
   snapshots, the HTTP responder's fallback, `tail -f` on metrics.prom)
   must never see a torn file, so write a sibling temp file and rename it
   into place — [Sys.rename] replaces atomically on POSIX. *)
let write_file path s =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try output_string oc s
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_trace path = write_file path (trace_json ())
let write_metrics path = write_file path (metrics_json ())

(* --- timeline sampler --------------------------------------------------------

   A background domain that periodically snapshots every counter and gauge
   (after refreshing the derived ones via the sample hooks and the GC
   gauges) into a bounded ring buffer, flushed on stop to a
   `optprob-timeline/1` JSON document.  The ring keeps the newest
   [capacity] samples and counts what it overwrote, so a runaway run has
   bounded memory and an honest [dropped] figure. *)

module Timeline = struct
  type sample = {
    s_ts_us : float;
    s_counters : (string * int) list;
    s_gauges : (string * float) list;
  }

  type ring = {
    r_cap : int;
    r_data : sample option array;
    mutable r_pushed : int;
    r_lock : Mutex.t;
  }

  let ring_create cap =
    if cap < 1 then invalid_arg "Rt_obs.Timeline.ring_create: capacity must be >= 1";
    { r_cap = cap; r_data = Array.make cap None; r_pushed = 0; r_lock = Mutex.create () }

  let ring_push r s =
    Mutex.lock r.r_lock;
    (* clamp to keep the series strictly monotone even if the wall clock
       steps backwards between samples *)
    let s =
      if r.r_pushed = 0 then s
      else
        match r.r_data.((r.r_pushed - 1) mod r.r_cap) with
        | Some prev when s.s_ts_us <= prev.s_ts_us -> { s with s_ts_us = prev.s_ts_us +. 1e-3 }
        | _ -> s
    in
    r.r_data.(r.r_pushed mod r.r_cap) <- Some s;
    r.r_pushed <- r.r_pushed + 1;
    Mutex.unlock r.r_lock

  let ring_flush r =
    Mutex.lock r.r_lock;
    let n = Stdlib.min r.r_pushed r.r_cap in
    let start = r.r_pushed - n in
    let out = List.init n (fun i -> Option.get r.r_data.((start + i) mod r.r_cap)) in
    let dropped = r.r_pushed - n in
    Mutex.unlock r.r_lock;
    (out, dropped)

  let take_sample () =
    run_sample_hooks ();
    sample_gc ();
    { s_ts_us = now_us (); s_counters = counters_snapshot (); s_gauges = gauges_snapshot () }

  type sampler = {
    ring : ring;
    period_ms : int;
    stop_flag : bool Atomic.t;
    mutable domain : unit Domain.t option;
  }

  let start ?(capacity = 4096) ~period_ms () =
    if period_ms < 1 then invalid_arg "Rt_obs.Timeline.start: period_ms must be >= 1";
    let t =
      { ring = ring_create capacity; period_ms; stop_flag = Atomic.make false; domain = None }
    in
    let d =
      Domain.spawn (fun () ->
          set_track_name "obs-sampler";
          while not (Atomic.get t.stop_flag) do
            ring_push t.ring (take_sample ());
            (* sleep in <= 50 ms steps so stop stays prompt at long periods *)
            let remaining = ref (Float.of_int t.period_ms /. 1000.0) in
            while !remaining > 0.0 && not (Atomic.get t.stop_flag) do
              let dt = Float.min 0.05 !remaining in
              Unix.sleepf dt;
              remaining := !remaining -. dt
            done
          done)
    in
    t.domain <- Some d;
    t

  let stop t =
    Atomic.set t.stop_flag true;
    (match t.domain with
     | Some d ->
       Domain.join d;
       t.domain <- None
     | None -> ());
    (* one final sample so even a run shorter than a period flushes a
       non-empty timeline with end-of-run values *)
    ring_push t.ring (take_sample ());
    ring_flush t.ring

  let to_json ~period_ms ~dropped samples =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"optprob-timeline/1\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"period_ms\": %d,\n" period_ms);
    Buffer.add_string buf (Printf.sprintf "  \"dropped\": %d,\n" dropped);
    Buffer.add_string buf "  \"samples\": [\n";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ",\n";
        let kv_int (k, v) = Printf.sprintf "\"%s\": %d" (json_escape k) v in
        let kv_flt (k, v) = Printf.sprintf "\"%s\": %s" (json_escape k) (json_float v) in
        Buffer.add_string buf
          (Printf.sprintf "    {\"ts_us\": %.3f, \"counters\": {%s}, \"gauges\": {%s}}" s.s_ts_us
             (String.concat ", " (List.map kv_int s.s_counters))
             (String.concat ", " (List.map kv_flt s.s_gauges))))
      samples;
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf

  let write path ~period_ms ~dropped samples =
    write_file path (to_json ~period_ms ~dropped samples)
end

(* --- human-readable summary ------------------------------------------------ *)

(* Rebuild span nesting per domain from the complete events: sort by start
   (ties: longer first, i.e. parent before child) and keep a stack of open
   ancestors; an event whose start falls inside the stack top is its child.
   A 1 µs slack absorbs clock granularity at shared boundaries. *)
type node = { ev : event; mutable children : node list }

let forest evs =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find by_tid e.tid with Not_found -> [] in
      Hashtbl.replace by_tid e.tid (e :: cur))
    evs;
  let contains outer e =
    e.ts_us >= outer.ts_us -. 1.0 && e.ts_us +. e.dur_us <= outer.ts_us +. outer.dur_us +. 1.0
  in
  let tids = List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid []) in
  List.concat_map
    (fun tid ->
      let es =
        List.sort
          (fun a b ->
            match Float.compare a.ts_us b.ts_us with
            | 0 -> Float.compare b.dur_us a.dur_us
            | c -> c)
          (Hashtbl.find by_tid tid)
      in
      let roots = ref [] in
      let stack = ref [] in
      List.iter
        (fun e ->
          let n = { ev = e; children = [] } in
          while (match !stack with top :: _ -> not (contains top.ev e) | [] -> false) do
            stack := List.tl !stack
          done;
          (match !stack with
           | top :: _ -> top.children <- n :: top.children
           | [] -> roots := n :: !roots);
          stack := n :: !stack)
        es;
      List.rev !roots)
    tids

let pp_summary ppf =
  let rec print indent nodes =
    (* Aggregate siblings by (name, cat), preserving first-seen order. *)
    let order = ref [] in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun n ->
        let key = (n.ev.name, n.ev.cat) in
        (match Hashtbl.find_opt groups key with
         | Some (cnt, tot, kids) -> Hashtbl.replace groups key (cnt + 1, tot +. n.ev.dur_us, n.children @ kids)
         | None ->
           order := key :: !order;
           Hashtbl.replace groups key (1, n.ev.dur_us, n.children));
        ())
      nodes;
    List.iter
      (fun key ->
        let name, _ = key in
        let cnt, tot, kids = Hashtbl.find groups key in
        let label = indent ^ name in
        Format.fprintf ppf "  %-42s %8d x %12.2f ms@." label cnt (tot /. 1000.0);
        print (indent ^ "  ") (List.rev kids))
      (List.rev !order)
  in
  let evs = events () in
  if evs <> [] then begin
    Format.fprintf ppf "spans (aggregated by nesting):@.";
    print "" (forest evs)
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters_snapshot ()) in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-44s %12d@." name v) cs
  end;
  let gs = gauges_snapshot () in
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-44s %12.1f@." name v) gs
  end;
  let hs = histograms_snapshot () in
  if hs <> [] then begin
    Format.fprintf ppf "histograms (quantiles are bucket upper bounds):@.";
    Format.fprintf ppf "  %-44s %8s %10s %10s %10s %10s@." "" "count" "p50" "p90" "p99" "max";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf "  %-44s %8d %10.4g %10.4g %10.4g %10.4g@." name s.count
          (hsnap_quantile s 0.5) (hsnap_quantile s 0.9) (hsnap_quantile s 0.99) s.max)
      hs
  end

(* --- convergence recorder --------------------------------------------------- *)

module Convergence = struct
  type row = {
    stage : string;
    sweep : int;
    j : float;
    n : float;
    y : float array;
    pf : hsnap option;
    objective : string;
  }

  type t = { mutable rows_rev : row list }

  let create () = { rows_rev = [] }

  let record t ?pf ?(objective = "single") ~stage ~sweep ~j ~n ~y () =
    t.rows_rev <- { stage; sweep; j; n; y = Array.copy y; pf; objective } :: t.rows_rev

  let rows t = List.rev t.rows_rev

  let pf_quantiles = [ ("p1", 0.01); ("p10", 0.1); ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

  let to_csv t =
    let rows = rows t in
    let width = match rows with [] -> 0 | r :: _ -> Array.length r.y in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "stage,objective,sweep,j_n,n";
    for i = 0 to width - 1 do
      Buffer.add_string buf (Printf.sprintf ",y%d" i)
    done;
    Buffer.add_string buf ",pf_count,pf_min";
    List.iter (fun (k, _) -> Buffer.add_string buf (",pf_" ^ k)) pf_quantiles;
    Buffer.add_string buf ",pf_max";
    Buffer.add_char buf '\n';
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%d,%.17g,%.17g" r.stage r.objective r.sweep r.j r.n);
        Array.iter (fun y -> Buffer.add_string buf (Printf.sprintf ",%.17g" y)) r.y;
        (match r.pf with
         | Some s ->
           Buffer.add_string buf (Printf.sprintf ",%d,%.17g" s.count s.min);
           List.iter
             (fun (_, q) -> Buffer.add_string buf (Printf.sprintf ",%.17g" (hsnap_quantile s q)))
             pf_quantiles;
           Buffer.add_string buf (Printf.sprintf ",%.17g" s.max)
         | None ->
           Buffer.add_string buf (String.make (3 + List.length pf_quantiles) ','));
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf

  let to_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"optprob-convergence/2\",\n  \"rows\": [\n";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"stage\": \"%s\", \"objective\": \"%s\", \"sweep\": %d, \"j_n\": %.17g, \"n\": %s, \"y\": [%s]"
             (json_escape r.stage) (json_escape r.objective) r.sweep r.j (json_float r.n)
             (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.17g") r.y))));
        (match r.pf with
         | Some s ->
           Buffer.add_string buf
             (Printf.sprintf ", \"pf\": {\"count\": %d, \"min\": %s, %s, \"max\": %s}" s.count
                (json_float s.min)
                (String.concat ", "
                   (List.map
                      (fun (k, q) ->
                        Printf.sprintf "\"%s\": %s" k (json_float (hsnap_quantile s q)))
                      pf_quantiles))
                (json_float s.max))
         | None -> ());
        Buffer.add_string buf "}")
      (rows t);
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf

  let write t path =
    let is_json = Filename.check_suffix path ".json" in
    write_file path (if is_json then to_json t else to_csv t)
end

(* --- run artifacts ----------------------------------------------------------

   One `--obs-dir DIR` run writes a self-describing artifact directory:
   manifest.json (provenance), events.jsonl (structured log), metrics.json
   (counters + gauges + histograms), trace.json (Perfetto), metrics.prom
   (OpenMetrics) and, when a convergence recorder exists, convergence.json.
   `obs-diff` consumes two such directories. *)

module Artifact = struct
  type manifest = {
    argv : string array;
    engine : string option;
    seed : int option;
    jobs : int option;
    circuit : string option;
    patterns : int option;
    block_words : int option;
    opt_passes : string list option;
    opt_rounds : int option;
    objective : string option;
    wall_s : float;
  }

  let make_manifest ?engine ?seed ?jobs ?circuit ?patterns ?block_words ?opt_passes
      ?opt_rounds ?objective ~argv ~wall_s () =
    { argv; engine; seed; jobs; circuit; patterns; block_words; opt_passes; opt_rounds;
      objective; wall_s }

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  (* Best effort, no subprocess: $OPTPROB_GIT_REV wins, else follow
     .git/HEAD upward from the cwd. *)
  let git_rev () =
    match Sys.getenv_opt "OPTPROB_GIT_REV" with
    | Some rev when rev <> "" -> rev
    | _ -> (
      let rec find dir depth =
        if depth > 6 then None
        else begin
          let head = Filename.concat dir (Filename.concat ".git" "HEAD") in
          if Sys.file_exists head then Some (dir, head)
          else begin
            let parent = Filename.dirname dir in
            if parent = dir then None else find parent (depth + 1)
          end
        end
      in
      try
        match find (Sys.getcwd ()) 0 with
        | None -> "unknown"
        | Some (dir, head) ->
          let content = String.trim (read_file head) in
          if String.length content > 5 && String.sub content 0 5 = "ref: " then begin
            let ref_path = String.sub content 5 (String.length content - 5) in
            let full = Filename.concat dir (Filename.concat ".git" ref_path) in
            if Sys.file_exists full then String.trim (read_file full) else content
          end
          else content
      with _ -> "unknown")

  let manifest_json m =
    let opt_str = function Some s -> Printf.sprintf "\"%s\"" (json_escape s) | None -> "null" in
    let opt_int = function Some i -> string_of_int i | None -> "null" in
    let argv =
      String.concat ", "
        (Array.to_list (Array.map (fun a -> Printf.sprintf "\"%s\"" (json_escape a)) m.argv))
    in
    let opt_list = function
      | Some l ->
        Printf.sprintf "[%s]"
          (String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l))
      | None -> "null"
    in
    String.concat ""
      [ "{\n  \"schema\": \"optprob-manifest/2\",\n";
        Printf.sprintf "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
        Printf.sprintf "  \"argv\": [%s],\n" argv;
        Printf.sprintf "  \"engine\": %s,\n" (opt_str m.engine);
        Printf.sprintf "  \"seed\": %s,\n" (opt_int m.seed);
        Printf.sprintf "  \"jobs\": %s,\n" (opt_int m.jobs);
        Printf.sprintf "  \"circuit\": %s,\n" (opt_str m.circuit);
        Printf.sprintf "  \"patterns\": %s,\n" (opt_int m.patterns);
        Printf.sprintf "  \"block_words\": %s,\n" (opt_int m.block_words);
        Printf.sprintf "  \"opt_passes\": %s,\n" (opt_list m.opt_passes);
        Printf.sprintf "  \"opt_rounds\": %s,\n" (opt_int m.opt_rounds);
        Printf.sprintf "  \"objective\": %s,\n" (opt_str m.objective);
        Printf.sprintf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
        Printf.sprintf "  \"hostname\": \"%s\",\n"
          (json_escape (try Unix.gethostname () with _ -> "unknown"));
        Printf.sprintf "  \"ocaml\": \"%s\",\n" (json_escape Sys.ocaml_version);
        Printf.sprintf "  \"written_at\": %.3f,\n" (Unix.gettimeofday ());
        Printf.sprintf "  \"wall_s\": %s\n" (json_float m.wall_s);
        "}\n" ]

  (* The live snapshot (also the SIGUSR1 handler's body): metrics only —
     cheap, and the files a scraper would poll. *)
  let write_live ~dir =
    mkdir_p dir;
    run_sample_hooks ();
    sample_gc ();
    write_file (Filename.concat dir "metrics.json") (metrics_json ());
    write_file (Filename.concat dir "metrics.prom") (metrics_prom ())

  let write ~dir ~manifest ?convergence () =
    mkdir_p dir;
    run_sample_hooks ();
    sample_gc ();
    write_file (Filename.concat dir "manifest.json") (manifest_json manifest);
    write_file (Filename.concat dir "events.jsonl") (events_jsonl ());
    write_file (Filename.concat dir "metrics.json") (metrics_json ());
    write_file (Filename.concat dir "metrics.prom") (metrics_prom ());
    write_file (Filename.concat dir "trace.json") (trace_json ());
    match convergence with
    | Some t -> Convergence.write t (Filename.concat dir "convergence.json")
    | None -> ()
end

(* --- obs-diff: artifact regression analysis -------------------------------- *)

module Diff = struct
  type thresholds = {
    span_ratio : float;
    quantile_ratio : float;
    counter_ratio : float;
    min_span_us : float;
    min_hist_count : int;
  }

  let default =
    { span_ratio = 1.5;
      quantile_ratio = 1.5;
      counter_ratio = 1.5;
      min_span_us = 1000.0;
      min_hist_count = 1 }

  type severity = Regression | Improvement | Info

  type finding = {
    severity : severity;
    kind : string;  (* "counter" | "span" | "histogram" | "convergence" | "manifest" *)
    name : string;
    a : float;
    b : float;
    detail : string;
  }

  let ratio a b =
    if a = b then 1.0
    else if a <= 0.0 then Float.infinity
    else b /. a

  (* Severity from a B/A ratio against a symmetric threshold band. *)
  let classify thr a b =
    let r = ratio a b in
    if r > thr then Regression else if r < 1.0 /. thr then Improvement else Info

  let load_json dir file =
    let path = Filename.concat dir file in
    if Sys.file_exists path then Some (Json.parse (read_file path)) else None

  let num_members = function
    | Some (Json.Obj fields) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) fields
    | _ -> []

  let obj_members = function
    | Some (Json.Obj fields) -> fields
    | _ -> []

  (* Total span wall-clock per name from a trace.json. *)
  let span_totals = function
    | None -> []
    | Some j ->
      let tbl = Hashtbl.create 32 in
      (match Json.member "traceEvents" j with
       | Some (Json.Arr evs) ->
         List.iter
           (fun e ->
             match (Json.member "name" e, Json.member "dur" e) with
             | Some (Json.Str name), Some (Json.Num dur) ->
               Hashtbl.replace tbl name ((try Hashtbl.find tbl name with Not_found -> 0.0) +. dur)
             | _ -> ())
           evs
       | _ -> ());
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Compare two keyed float lists; [gate] decides whether a pair is
     eligible for regression/improvement classification at all. *)
  let compare_keyed ?(invert = false) ~kind ~thr ~gate ~unit_ a_list b_list =
    let names =
      List.sort_uniq String.compare (List.map fst a_list @ List.map fst b_list)
    in
    List.filter_map
      (fun name ->
        match (List.assoc_opt name a_list, List.assoc_opt name b_list) with
        | Some a, Some b ->
          if a = b then None
          else begin
            (* [invert] flips the regression direction for
               higher-is-better series (e.g. pool utilization). *)
            let sev =
              if gate a b then (if invert then classify thr b a else classify thr a b)
              else Info
            in
            Some
              { severity = sev;
                kind;
                name;
                a;
                b;
                detail = Printf.sprintf "%.4g -> %.4g %s (x%.3g)" a b unit_ (ratio a b) }
          end
        | Some a, None ->
          Some { severity = Info; kind; name; a; b = Float.nan; detail = "only in A" }
        | None, Some b ->
          Some { severity = Info; kind; name; a = Float.nan; b; detail = "only in B" }
        | None, None -> None)
      names

  (* Per-gauge series statistics (mean/peak/p90) from a timeline.json. *)
  let timeline_series j =
    match Json.member "samples" j with
    | Some (Json.Arr samples) ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun s ->
          match Json.member "gauges" s with
          | Some (Json.Obj gs) ->
            List.iter
              (fun (k, v) ->
                match Json.to_float v with
                | Some f ->
                  let vs = try Hashtbl.find tbl k with Not_found -> [] in
                  Hashtbl.replace tbl k (f :: vs)
                | None -> ())
              gs
          | _ -> ())
        samples;
      Hashtbl.fold
        (fun k vs acc ->
          let n = List.length vs in
          if n = 0 then acc
          else begin
            let sorted = List.sort Float.compare vs in
            let peak = List.nth sorted (n - 1) in
            let p90 = List.nth sorted (Stdlib.min (n - 1) ((n * 9 + 9) / 10 - 1)) in
            let mean = List.fold_left ( +. ) 0.0 vs /. Float.of_int n in
            (k ^ ".mean", mean) :: (k ^ ".peak", peak) :: (k ^ ".p90", p90) :: acc
          end)
        tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    | _ -> []

  let hist_quantiles fields =
    List.filter_map
      (fun (name, h) ->
        match h with
        | Json.Obj _ ->
          let f k = Option.bind (Json.member k h) Json.to_float in
          (match (f "count", f "p50", f "p99", f "max") with
           | Some c, Some p50, Some p99, Some mx -> Some (name, (c, p50, p99, mx))
           | _ -> None)
        | _ -> None)
      fields

  let compare_dirs ?(thresholds = default) dir_a dir_b =
    let ma = load_json dir_a "metrics.json" and mb = load_json dir_b "metrics.json" in
    if ma = None then failwith (dir_a ^ ": missing or unreadable metrics.json");
    if mb = None then failwith (dir_b ^ ": missing or unreadable metrics.json");
    let t = thresholds in
    let member name j = Option.bind j (Json.member name) in
    let counters =
      compare_keyed ~kind:"counter" ~thr:t.counter_ratio
        ~gate:(fun a b -> Float.max a b >= 10.0)
        ~unit_:""
        (num_members (member "counters" ma))
        (num_members (member "counters" mb))
    in
    let gauges =
      (* gauges (heap sizes, GC totals) are environment-dependent: report,
         never gate *)
      compare_keyed ~kind:"gauge" ~thr:Float.infinity ~gate:(fun _ _ -> false) ~unit_:""
        (num_members (member "gauges" ma))
        (num_members (member "gauges" mb))
      |> List.filter (fun f -> Float.abs (ratio f.a f.b -. 1.0) > 0.25)
    in
    let spans =
      compare_keyed ~kind:"span" ~thr:t.span_ratio
        ~gate:(fun a b -> Float.max a b >= t.min_span_us)
        ~unit_:"us"
        (span_totals (load_json dir_a "trace.json"))
        (span_totals (load_json dir_b "trace.json"))
    in
    let ha = hist_quantiles (obj_members (member "histograms" ma)) in
    let hb = hist_quantiles (obj_members (member "histograms" mb)) in
    let hists =
      let names = List.sort_uniq String.compare (List.map fst ha @ List.map fst hb) in
      List.filter_map
        (fun name ->
          match (List.assoc_opt name ha, List.assoc_opt name hb) with
          | Some (ca, p50a, p99a, _), Some (cb, p50b, p99b, _) ->
            let eligible =
              ca >= Float.of_int t.min_hist_count && cb >= Float.of_int t.min_hist_count
            in
            let sev_of qa qb =
              if eligible && qa <> qb then classify t.quantile_ratio qa qb else Info
            in
            let sev =
              match (sev_of p50a p50b, sev_of p99a p99b) with
              | Regression, _ | _, Regression -> Regression
              | Improvement, _ | _, Improvement -> Improvement
              | _ -> Info
            in
            if p50a = p50b && p99a = p99b && ca = cb then None
            else
              Some
                { severity = sev;
                  kind = "histogram";
                  name;
                  a = p99a;
                  b = p99b;
                  detail =
                    Printf.sprintf "p50 %.4g -> %.4g (x%.3g), p99 %.4g -> %.4g (x%.3g), n %g -> %g"
                      p50a p50b (ratio p50a p50b) p99a p99b (ratio p99a p99b) ca cb }
          | Some (_, _, p99a, _), None ->
            Some { severity = Info; kind = "histogram"; name; a = p99a; b = Float.nan;
                   detail = "only in A" }
          | None, Some (_, _, p99b, _) ->
            Some { severity = Info; kind = "histogram"; name; a = Float.nan; b = p99b;
                   detail = "only in B" }
          | None, None -> None)
        names
    in
    let timelines =
      (* timeline gauge series: scheduler-derived series (pool/ppsfp
         prefixes) gate at the quantile threshold; GC/heap series are
         environment-dependent and report-only, like plain gauges *)
      match (load_json dir_a "timeline.json", load_json dir_b "timeline.json") with
      | Some ja, Some jb ->
        let sa = timeline_series ja and sb = timeline_series jb in
        let prefixed p (k, _) =
          String.length k >= String.length p && String.sub k 0 (String.length p) = p
        in
        let is_sched x = prefixed "pool." x || prefixed "ppsfp." x in
        (* utilization is higher-is-better: a drop between runs is the
           regression direction, unlike queue depths and latencies *)
        let is_util = prefixed "pool.utilization" in
        let sched l = List.filter (fun x -> is_sched x && not (is_util x)) l
        and util l = List.filter is_util l
        and rest l = List.filter (fun x -> not (is_sched x)) l in
        let gate a b = Float.max (Float.abs a) (Float.abs b) >= 0.01 in
        compare_keyed ~kind:"timeline" ~thr:t.quantile_ratio ~gate ~unit_:""
          (sched sa) (sched sb)
        @ compare_keyed ~invert:true ~kind:"timeline" ~thr:t.quantile_ratio ~gate ~unit_:""
            (util sa) (util sb)
        @ (compare_keyed ~kind:"timeline" ~thr:Float.infinity ~gate:(fun _ _ -> false) ~unit_:""
             (rest sa) (rest sb)
          |> List.filter (fun f -> Float.abs (ratio f.a f.b -. 1.0) > 0.25))
      | _ -> []
    in
    let convergence =
      let final j =
        match member "rows" j with
        | Some (Json.Arr rows) ->
          List.fold_left
            (fun acc r ->
              match (Json.member "stage" r, Json.member "n" r) with
              | Some (Json.Str "final"), Some (Json.Num n) -> Some n
              | _ -> acc)
            None rows
        | _ -> None
      in
      let ca = load_json dir_a "convergence.json" and cb = load_json dir_b "convergence.json" in
      match (final ca, final cb) with
      | Some na, Some nb when na <> nb ->
        [ { severity = classify t.quantile_ratio na nb;
            kind = "convergence";
            name = "final_n";
            a = na;
            b = nb;
            detail = Printf.sprintf "final N %.6g -> %.6g (x%.3g)" na nb (ratio na nb) } ]
      | _ -> []
    in
    let manifest =
      let field name j = Option.bind (member name j) Json.to_string in
      let a = load_json dir_a "manifest.json" and b = load_json dir_b "manifest.json" in
      List.filter_map
        (fun key ->
          match (field key a, field key b) with
          | Some va, Some vb when va <> vb ->
            Some
              { severity = Info; kind = "manifest"; name = key; a = Float.nan; b = Float.nan;
                detail = Printf.sprintf "%S vs %S" va vb }
          | _ -> None)
        [ "git_rev"; "engine"; "hostname" ]
    in
    let rank f =
      (match f.severity with Regression -> 0 | Improvement -> 1 | Info -> 2), -.ratio f.a f.b
    in
    List.sort
      (fun x y -> compare (rank x) (rank y))
      (counters @ gauges @ spans @ hists @ timelines @ convergence @ manifest)

  let regressions fs = List.filter (fun f -> f.severity = Regression) fs

  let pp_report ppf fs =
    if fs = [] then Format.fprintf ppf "obs-diff: no differences@."
    else begin
      let tag f =
        match f.severity with
        | Regression -> "REGRESSION"
        | Improvement -> "improved"
        | Info -> "info"
      in
      List.iter
        (fun f ->
          Format.fprintf ppf "  %-10s %-11s %-44s %s@." (tag f) f.kind f.name f.detail)
        fs;
      let n_reg = List.length (regressions fs) in
      Format.fprintf ppf "obs-diff: %d difference(s), %d regression(s)@." (List.length fs) n_reg
    end
end
