(** Persistent run registry: longitudinal history over {!Rt_obs.Artifact}
    directories.

    A registry is a plain directory (default [_obs/registry], overridable via
    [$OPTPROB_OBS_REGISTRY]) holding one compact JSON record per ingested run
    under [records/], a rebuildable [index.json] cache of per-run summaries,
    and an optional [baseline.json] naming the promoted baseline record.

    Durability model: every write is atomic (sibling temp file + rename), a
    record is one immutable file so concurrent writers never contend, and the
    index is only a cache — readers verify it covers exactly the record files
    on disk and rebuild it from the records otherwise, skipping corrupt or
    truncated files.  Losing [index.json] loses nothing. *)

val schema_record : string
(** ["optprob-registry/1"], the per-record document schema. *)

val default_dir : unit -> string
(** [$OPTPROB_OBS_REGISTRY] when set and non-empty, else [_obs/registry]. *)

(** One row of the index: everything [obs list] prints, without loading the
    full record. *)
type summary = {
  id : string;
  ts : float;  (** ingestion time, seconds since the epoch *)
  git_rev : string;
  circuit : string option;
  engine : string option;
  config : (string * string) list;  (** config slice from the manifest, sorted *)
  wall_s : float;
}

(** A fully loaded record: its summary, the flat derived metric map (counters,
    gauges, histogram quantiles, span totals, [pipeline.total_us], timeline
    series statistics, convergence summary) and the raw document. *)
type record = {
  r_summary : summary;
  r_metrics : (string * float) list;  (** sorted by name *)
  r_doc : Rt_obs.Json.t;
}

type filter = {
  f_engine : string option;  (** exact match *)
  f_circuit : string option;  (** exact match *)
  f_git_rev : string option;  (** prefix match, so short revs work *)
  f_config : (string * string) list;  (** all [K=V] pairs must match *)
}

val no_filter : filter

val ingest : ?id:string -> registry:string -> obs_dir:string -> unit -> (string, string) result
(** Ingest one artifact directory (requires a readable [metrics.json]; all
    other files are optional) into a new record and refresh the index.
    Returns the record id — [YYYYMMDDTHHMMSS-xxxxxx] unless [?id] pins it.
    [Error] when the artifact is unreadable or the id already exists. *)

val list : ?filter:filter -> registry:string -> unit -> summary list
(** All records oldest-first, via the index when it is consistent with the
    record files on disk, rebuilding it otherwise.  Unreadable records are
    skipped.  An absent registry directory is an empty registry. *)

val load : registry:string -> string -> (record, string) result

val metric : record -> string -> float option
(** Look up one derived metric by name (e.g. ["pipeline.total_us"],
    ["oracle.query.us.p90"], ["span.optimize.us"], ["wall_s"]). *)

val metric_names : record -> string list

(** {1 Baseline} *)

val promote : registry:string -> string -> (unit, string) result
(** Mark a record id as the promoted baseline ([Error] if it doesn't exist). *)

val promoted : registry:string -> string option
val clear_baseline : registry:string -> unit

val materialize : registry:string -> dir:string -> string -> (unit, string) result
(** Expand a record back into an {!Rt_obs.Artifact}-shaped directory
    ([metrics.json], [manifest.json], [convergence.json] when recorded, and a
    synthetic [trace.json] carrying one aggregate event per span name) so
    {!Rt_obs.Diff.compare_dirs} can diff live runs against history. *)

(** {1 Retention} *)

val gc : ?keep:int -> ?max_age_s:float -> registry:string -> unit -> int
(** Delete records beyond the newest [keep] and/or older than [max_age_s]
    seconds (the promoted baseline always survives); rebuild the index and
    return the number of records removed. *)

(** {1 Trends} *)

type point = { p_id : string; p_ts : float; p_value : float }

type series = {
  s_metric : string;
  s_points : point list;  (** oldest first; runs lacking the metric are skipped *)
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
}

val series : ?filter:filter -> ?last:int -> registry:string -> string -> series
(** Time series of one metric over the last [last] (default 30) matching
    runs.  Statistics are [nan] when the series is empty. *)

(** A flagged step change: point [st_index] of the series jumped by
    [st_ratio] (deviation over threshold, >= 1) relative to the median of its
    trailing window. *)
type step = {
  st_index : int;
  st_value : float;
  st_median : float;
  st_ratio : float;
  st_up : bool;
}

val step_changes : ?window:int -> ?k:float -> ?rel:float -> float array -> step list
(** Robust step-change detection: each point with at least 3 predecessors is
    compared to the median of the [window] (default 8) preceding values; it
    is flagged when its absolute deviation exceeds
    [max (k * 1.4826 * MAD, rel * |median|)] (defaults [k = 4.0],
    [rel = 0.25]).  Median/MAD make the detector robust to single-run noise
    spikes inside the window. *)

val sparkline : float array -> string
(** Min-max scaled Unicode block sparkline, e.g. ["▁▃▆█"]; empty input gives
    the empty string. *)
