(** Observability for the optimize pipeline: spans, counters/gauges, and a
    convergence recorder.

    Everything here is a global, process-wide sink.  Recording is gated on a
    single enabled flag: when disabled (the default) every entry point costs
    one atomic load and a branch and allocates nothing, so instrumented hot
    paths stay as fast as uninstrumented ones.  All recording entry points
    are safe to call concurrently from multiple domains.

    Spans export as Chrome [trace_event] JSON (loadable in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}) and as a human-readable
    aggregated tree.  Counters and gauges snapshot to JSON.  The convergence
    recorder is an explicit per-run object (see {!Convergence}) that works
    independently of the global flag. *)

val set_enabled : bool -> unit
(** Turn recording on or off globally.  Off by default. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded spans and reset every registered counter and gauge to
    zero (registrations themselves survive — instrumented modules keep their
    handles). *)

(** {1 Spans}

    Nestable timed regions.  A span is recorded when it {e ends}; nesting is
    reconstructed from the timestamps (per recording domain), which is also
    how the Chrome trace viewer draws them. *)

type event = {
  name : string;
  cat : string;  (** free-form category, e.g. ["phase"] or an engine name *)
  ts_us : float;  (** start, microseconds since the epoch *)
  dur_us : float;
  tid : int;  (** id of the recording domain *)
}

val span_begin : unit -> float
(** Timestamp for an explicit span; returns [neg_infinity] when disabled so
    the matching {!span_end} is a no-op.  This is the allocation-free form
    for hot paths (per-chunk timing). *)

val span_end : ?cat:string -> string -> float -> unit
(** [span_end ~cat name t0] records the span opened by [span_begin]. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span.  When disabled this is just [f ()].  The span
    is recorded even if [f] raises (the exception is re-raised). *)

val events : unit -> event list
(** Snapshot of all recorded spans, oldest first. *)

val trace_json : unit -> string
(** Chrome [trace_event] JSON: an object with a ["traceEvents"] array of
    complete ("ph":"X") events, timestamps in microseconds. *)

val write_trace : string -> unit
(** Write {!trace_json} to a file. *)

val pp_summary : Format.formatter -> unit
(** Human-readable aggregated span tree (count and total wall-clock per
    name, nested by containment) followed by the nonzero counters and all
    gauges. *)

(** {1 Counters and gauges}

    Registered by name; the same name always returns the same handle, so
    instrumented modules can register at init time and increment with one
    atomic op.  Increments from concurrent domains are never lost.
    Increments are dropped while disabled. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float

val counters_snapshot : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val gauges_snapshot : unit -> (string * float) list

val metrics_json : unit -> string
(** [{"schema":"optprob-metrics/1","counters":{...},"gauges":{...}}]. *)

val write_metrics : string -> unit

(** {1 Convergence recorder}

    Captures the trajectory of one [Optimize.run]: per sweep the objective
    value [J_N], the required test length [N], and the chosen per-input [y]
    values.  Explicit opt-in (pass one to [Optimize.run ?recorder]); records
    regardless of the global enabled flag.  Not domain-safe — one recorder
    per run. *)

module Convergence : sig
  type row = {
    stage : string;  (** ["initial"], ["sweep"] or ["final"] *)
    sweep : int;  (** 0 for the initial row *)
    j : float;  (** [J_N] at this point (detectable faults) *)
    n : float;  (** required test length *)
    y : float array;  (** the weight vector *)
  }

  type t

  val create : unit -> t
  val record : t -> stage:string -> sweep:int -> j:float -> n:float -> y:float array -> unit
  val rows : t -> row list
  (** Oldest first. *)

  val to_csv : t -> string
  (** Header [stage,sweep,j_n,n,y0,...]; floats printed with full
      precision so the final [n] round-trips exactly. *)

  val to_json : t -> string

  val write : t -> string -> unit
  (** Write {!to_json} if the path ends in [.json], else {!to_csv}. *)
end
