(** Observability for the optimize pipeline: spans, marks, counters/gauges,
    log-bucketed histograms, a convergence recorder, unified run artifacts
    and an artifact-diff analyzer.

    Everything here is a global, process-wide sink.  Recording is gated on a
    single enabled flag: when disabled (the default) every entry point costs
    one atomic load and a branch and allocates nothing, so instrumented hot
    paths stay as fast as uninstrumented ones.  All recording entry points
    are safe to call concurrently from multiple domains.

    Spans export as Chrome [trace_event] JSON (loadable in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}) and as a human-readable
    aggregated tree.  Counters, gauges and histograms snapshot to JSON and
    to an OpenMetrics text exposition.  {!Artifact} bundles everything a run
    recorded into one self-describing directory; {!Diff} compares two such
    directories.  The convergence recorder is an explicit per-run object
    (see {!Convergence}) that works independently of the global flag. *)

val set_enabled : bool -> unit
(** Turn recording on or off globally.  Off by default. *)

val enabled : unit -> bool

val now_us : unit -> float
(** Wall clock in microseconds since the epoch (the span/mark timebase). *)

val clear : unit -> unit
(** Drop all recorded spans and marks, and reset every registered counter,
    gauge and histogram to zero (registrations themselves survive —
    instrumented modules keep their handles). *)

(** {1 Spans}

    Nestable timed regions.  A span is recorded when it {e ends}; nesting is
    reconstructed from the timestamps (per recording domain), which is also
    how the Chrome trace viewer draws them. *)

type event = {
  name : string;
  cat : string;  (** free-form category, e.g. ["phase"] or an engine name *)
  ts_us : float;  (** start, microseconds since the epoch *)
  dur_us : float;
  tid : int;  (** id of the recording domain *)
  args : (string * string) list;  (** free-form key/value pairs, shown in the trace viewer *)
}

val span_begin : unit -> float
(** Timestamp for an explicit span; returns [neg_infinity] when disabled so
    the matching {!span_end} is a no-op.  This is the allocation-free form
    for hot paths (per-chunk timing). *)

val span_end : ?cat:string -> ?args:(string * string) list -> string -> float -> unit
(** [span_end ~cat name t0] records the span opened by [span_begin].
    [args] attach as the trace event's ["args"] object (steal origins,
    queue ids, ...). *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span.  When disabled this is just [f ()].  The span
    is recorded even if [f] raises (the exception is re-raised). *)

val events : unit -> event list
(** Snapshot of all recorded spans, oldest first. *)

(** {1 Marks}

    Instant structured-log events: a name, a timestamp and free-form string
    fields.  They appear as instant events in the trace and as lines in the
    [events.jsonl] artifact. *)

type mark = {
  m_name : string;
  m_ts_us : float;
  m_tid : int;
  m_fields : (string * string) list;
}

val mark : ?fields:(string * string) list -> string -> unit
val marks : unit -> mark list

(** {1 Track names and sample hooks} *)

val set_track_name : string -> unit
(** Name the calling domain's track in the trace viewer (a Perfetto
    [thread_name] metadata event).  Registration-like: not gated on the
    enabled flag and survives {!clear}; call once at domain start. *)

val track_names_snapshot : unit -> (int * string) list
(** All named tracks as [(tid, name)], sorted. *)

val add_sample_hook : (unit -> unit) -> unit
(** Register a callback that refreshes derived gauges from live state
    (e.g. pool utilization and queue depths).  Hooks run — oldest first,
    exceptions swallowed — right before any snapshot is taken: by the
    {!Timeline} sampler, by {!Artifact.write}/{!Artifact.write_live} and by
    the HTTP exposition.  Lets low layers feed snapshots without a reverse
    dependency on their callers. *)

val run_sample_hooks : unit -> unit
(** Run all registered hooks now (no-op while disabled). *)

val trace_json : unit -> string
(** Chrome [trace_event] JSON: an object with a ["traceEvents"] array of
    complete ("ph":"X") span events plus instant ("ph":"i") marks,
    timestamps in microseconds. *)

val write_trace : string -> unit
(** Write {!trace_json} to a file. *)

val events_jsonl : unit -> string
(** Structured log: one self-describing JSON object per line (spans and
    marks interleaved in start-timestamp order). *)

val pp_summary : Format.formatter -> unit
(** Human-readable aggregated span tree (count and total wall-clock per
    name, nested by containment) followed by the nonzero counters, all
    gauges, and per-histogram count/p50/p90/p99/max. *)

(** {1 Counters and gauges}

    Registered by name; the same name always returns the same handle, so
    instrumented modules can register at init time and increment with one
    atomic op.  Increments from concurrent domains are never lost.
    Increments are dropped while disabled. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float

val counters_snapshot : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val gauges_snapshot : unit -> (string * float) list

val sample_gc : unit -> unit
(** Refresh the [gc.*] gauges (minor/major/promoted words, heap words,
    collection and compaction counts) from [Gc.quick_stat].  Intended for
    phase boundaries; free when recording is disabled. *)

(** {1 Histograms}

    Domain-safe log-bucketed value distributions: observation is lock-free
    (atomic bucket increment plus CAS loops for sum/min/max), and every
    histogram shares one fixed bucket layout ({!buckets_per_decade} buckets
    per decade between [10^-9] and [10^9], plus underflow and overflow
    buckets), which makes {!hsnap_merge} lossless, associative and
    commutative.  Reported quantiles are upper bounds of the true sample
    quantiles: a value is always counted in a bucket whose upper bound is
    at least the value, and bucket bounds are one {!bucket_ratio} apart. *)

type histogram

val histogram : string -> histogram
(** Registered by name, like {!counter}. *)

val observe : histogram -> float -> unit
(** Record one sample.  Dropped while disabled; lock-free while enabled. *)

val span_end_h : ?cat:string -> ?args:(string * string) list -> string -> histogram -> float -> unit
(** {!span_end} that also observes the span's duration (µs) into a
    histogram — one clock read serves both. *)

val with_span_h : ?cat:string -> string -> histogram -> (unit -> 'a) -> 'a
(** {!with_span} that also observes the duration (µs) into a histogram. *)

(** A point-in-time copy of a histogram (or a pure sample summary). *)
type hsnap = {
  count : int;
  sum : float;
  min : float;  (** [+inf] when empty *)
  max : float;  (** [-inf] when empty *)
  buckets : int array;  (** length {!n_buckets}; shared fixed layout *)
}

val buckets_per_decade : int
val n_buckets : int

val bucket_ratio : float
(** Ratio between consecutive bucket upper bounds ([10^(1/buckets_per_decade)]). *)

val bucket_upper : int -> float
(** Upper bound of bucket [i]; [+inf] for the overflow bucket. *)

val hsnap_empty : hsnap
val histogram_snapshot : histogram -> hsnap

val histograms_snapshot : unit -> (string * hsnap) list
(** All registered histograms with at least one observation, sorted by name. *)

val hsnap_of_samples : float array -> hsnap
(** Pure summary of a sample array (independent of the global sink and the
    enabled flag) — used e.g. for the per-sweep [p_f] distribution. *)

val hsnap_merge : hsnap -> hsnap -> hsnap
(** Lossless element-wise merge; associative and commutative (the float
    [sum] is subject to rounding, everything else is exact). *)

val hsnap_quantile : hsnap -> float -> float
(** [hsnap_quantile s q] for [q] in [(0, 1]]: an upper bound of the true
    sample quantile, within one {!bucket_ratio} (and never above the exact
    recorded [max]).  [q <= 0] returns the exact [min]; empty snapshots
    return [nan]. *)

val metrics_json : unit -> string
(** [{"schema":"optprob-metrics/2","counters":{...},"gauges":{...},
    "histograms":{...}}]; each histogram carries count/sum/min/max,
    p50/p90/p99 and its nonzero buckets as [[upper_bound, count]] pairs. *)

val write_metrics : string -> unit

val metrics_prom : unit -> string
(** OpenMetrics text exposition of counters ([_total]), gauges and
    histograms (cumulative [_bucket{le="..."}] series), terminated by
    [# EOF]. *)

val prom_lint : string -> string list
(** Strict structural check of an OpenMetrics text exposition: returns one
    message per violation (empty list = clean).  Checks family declaration
    order, counter [_total] suffixes, cumulative histogram buckets with a
    [+Inf] bucket equal to [_count], metric-name characters, label-value
    escaping and the single trailing [# EOF]. *)

(** {1 Timeline sampler}

    A background domain snapshotting every counter and gauge into a bounded
    ring buffer at a fixed period — the time axis the flat metrics snapshot
    lacks.  Each sample is taken after {!run_sample_hooks} and {!sample_gc},
    so derived scheduler gauges are fresh.  Flushes to a
    [optprob-timeline/1] JSON document ([timeline.json] in an artifact
    directory); {!Diff.compare_dirs} compares gauge series between two
    timelines. *)

module Timeline : sig
  type sample = {
    s_ts_us : float;  (** strictly monotone within a ring *)
    s_counters : (string * int) list;
    s_gauges : (string * float) list;
  }

  (** Bounded ring of samples: keeps the newest [capacity], counts what it
      overwrote.  Safe for one writer and concurrent flushers. *)
  type ring

  val ring_create : int -> ring
  (** [ring_create capacity]; raises [Invalid_argument] when [capacity < 1]. *)

  val ring_push : ring -> sample -> unit
  (** Append a sample; its timestamp is clamped to stay strictly above the
      previous sample's. *)

  val ring_flush : ring -> sample list * int
  (** Oldest-first retained samples and the count of overwritten ones. *)

  val take_sample : unit -> sample
  (** One snapshot now: runs the sample hooks, refreshes GC gauges, and
      captures all counters and gauges. *)

  type sampler

  val start : ?capacity:int -> period_ms:int -> unit -> sampler
  (** Spawn the sampler domain ([capacity] defaults to 4096 samples).
      Raises [Invalid_argument] when [period_ms < 1]. *)

  val stop : sampler -> sample list * int
  (** Stop and join the sampler domain, push one final sample, and flush:
      returns (samples oldest-first, dropped count). *)

  val to_json : period_ms:int -> dropped:int -> sample list -> string
  (** The [optprob-timeline/1] document. *)

  val write : string -> period_ms:int -> dropped:int -> sample list -> unit
  (** Atomically write {!to_json} to a file. *)
end

(** {1 JSON reader}

    A minimal JSON parser (no external dependency) for reading artifacts
    back — used by {!Diff} and available to tests. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** Raises [Failure] on malformed input. *)

  val member : string -> t -> t option
  val to_float : t -> float option
  val to_string : t -> string option

  val print : t -> string
  (** Serialize back to JSON text (compact, [parse]-roundtrippable; non-finite
      numbers print as [null]/[1e999] like the rest of the emitters). *)
end

(** {1 Convergence recorder}

    Captures the trajectory of one [Optimize.run]: per sweep the objective
    value [J_N], the required test length [N], the chosen per-input [y]
    values, and a summary of the fault detection-probability distribution
    (the shrinking hard-fault tail).  Explicit opt-in (pass one to
    [Optimize.run ?recorder]); records regardless of the global enabled
    flag.  Not domain-safe — one recorder per run. *)

module Convergence : sig
  type row = {
    stage : string;  (** ["initial"], ["sweep"] or ["final"] *)
    sweep : int;  (** 0 for the initial row *)
    j : float;  (** [J_N] at this point (detectable faults) *)
    n : float;  (** required test length *)
    y : float array;  (** the weight vector *)
    pf : hsnap option;  (** distribution of [p_f(X)] over detectable faults *)
    objective : string;  (** objective key the row's [j]/[n] were computed under *)
  }

  type t

  val create : unit -> t

  val record :
    t -> ?pf:hsnap -> ?objective:string -> stage:string -> sweep:int -> j:float ->
    n:float -> y:float array -> unit -> unit
  (** [objective] defaults to ["single"]. *)

  val rows : t -> row list
  (** Oldest first. *)

  val to_csv : t -> string
  (** Header [stage,objective,sweep,j_n,n,y0,...,pf_count,pf_min,pf_p1,...,pf_max];
      floats printed with full precision so the final [n] round-trips
      exactly. *)

  val to_json : t -> string

  val write : t -> string -> unit
  (** Write {!to_json} if the path ends in [.json], else {!to_csv}. *)
end

(** {1 Run artifacts} *)

module Artifact : sig
  type manifest = {
    argv : string array;
    engine : string option;
    seed : int option;
    jobs : int option;
    circuit : string option;
    patterns : int option;
    block_words : int option;
    opt_passes : string list option;
    opt_rounds : int option;
    objective : string option;  (** optimization objective spec, e.g. ["ndetect:2"] *)
    wall_s : float;
  }

  val make_manifest :
    ?engine:string -> ?seed:int -> ?jobs:int -> ?circuit:string -> ?patterns:int ->
    ?block_words:int -> ?opt_passes:string list -> ?opt_rounds:int ->
    ?objective:string ->
    argv:string array -> wall_s:float -> unit -> manifest
  (** Construction helper: every config-slice field defaults to absent. *)

  val git_rev : unit -> string
  (** [$OPTPROB_GIT_REV] if set, else the commit hash from [.git/HEAD]
      (following one level of symbolic ref), else ["unknown"]. *)

  val write : dir:string -> manifest:manifest -> ?convergence:Convergence.t -> unit -> unit
  (** Create [dir] (and parents) and write [manifest.json], [events.jsonl],
      [metrics.json], [metrics.prom], [trace.json] and — when a recorder is
      given — [convergence.json].  Samples the GC gauges first. *)

  val write_live : dir:string -> unit
  (** The mid-run snapshot (SIGUSR1 handler body): refresh the GC gauges and
      rewrite [metrics.json] + [metrics.prom] only. *)
end

(** {1 Artifact diffing} *)

module Diff : sig
  type thresholds = {
    span_ratio : float;  (** gate on per-name total span wall-clock (B/A) *)
    quantile_ratio : float;  (** gate on histogram p50/p99 and convergence final N *)
    counter_ratio : float;  (** gate on counter values (when >= 10 in one run) *)
    min_span_us : float;  (** ignore span totals below this in both runs *)
    min_hist_count : int;  (** ignore histograms with fewer observations *)
  }

  val default : thresholds
  (** 1.5x on everything, 1 ms span noise floor. *)

  type severity = Regression | Improvement | Info

  type finding = {
    severity : severity;
    kind : string;  (** ["counter"], ["gauge"], ["span"], ["histogram"],
                        ["timeline"], ["convergence"] or ["manifest"] *)
    name : string;
    a : float;
    b : float;
    detail : string;
  }

  val compare_dirs : ?thresholds:thresholds -> string -> string -> finding list
  (** [compare_dirs a b] reads two {!Artifact} directories (A = baseline,
      B = candidate) and returns findings ranked most severe first.
      When both directories carry a [timeline.json], per-gauge series
      statistics ([<gauge>.mean]/[.peak]/[.p90]) are compared too:
      scheduler series ([pool.*], [ppsfp.*]) gate at [quantile_ratio],
      everything else is report-only.  Raises [Failure] when either
      directory lacks a readable [metrics.json]. *)

  val regressions : finding list -> finding list

  val pp_report : Format.formatter -> finding list -> unit
end
