(** Live HTTP exposition of the global {!Rt_obs} sink.

    A minimal single-threaded responder on plain [Unix] sockets — no new
    dependencies — meant to be scraped while a long optimize/ppsfp run is
    in flight:

    - [GET /metrics]: the OpenMetrics text exposition
      ({!Rt_obs.metrics_prom}), refreshed through the sample hooks and GC
      gauges first, so pool utilization and queue depths are current.
    - [GET /healthz]: ["ok"], 200 — liveness only.
    - [GET /snapshot]: the metrics JSON document ({!Rt_obs.metrics_json}),
      i.e. the same body the SIGUSR1 handler writes to the artifact dir.
    - [GET /runs]: run summaries from the configured {!Rt_obs_registry}
      (JSON [optprob-runs/1]; [?format=prom] switches to an OpenMetrics
      exposition, terminated by [# EOF] like [/metrics]).  404 when the
      server was started without a registry.
    - [GET /trend?metric=NAME]: the registry time series of one derived
      metric over the last [last] runs (default 30; [?last=N] overrides),
      as JSON [optprob-trend/1] or, with [?format=prom], an
      [optprob_trend{metric=...,run=...}] gauge family.  400 without a
      [metric] parameter; 404 without a registry.

    Anything else is 404; non-GET methods are 405.  Requests are served one
    at a time on a dedicated background domain; every response closes the
    connection. *)

type t

val start : ?addr:string -> ?registry:string -> port:int -> unit -> t
(** Bind [addr] (default ["127.0.0.1"]) at [port] ([0] picks an ephemeral
    port — read it back with {!port}), spawn the serving domain, and
    return immediately.  [registry] enables the [/runs] and [/trend]
    endpoints over that {!Rt_obs_registry} directory.  Raises
    [Unix.Unix_error] when the bind fails.  Installs a [SIGPIPE] ignore
    handler so disappearing clients cannot kill the process. *)

val port : t -> int
(** The actually-bound port. *)

val stop : t -> unit
(** Signal the serving domain, join it (within ~250 ms), and close the
    listening socket.  Idempotent. *)
