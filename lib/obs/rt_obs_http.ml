(* Minimal live exposition server over the global Rt_obs sink.

   One background domain, one listening socket, plain [Unix] — no
   dependencies beyond what the library already links.  Requests are served
   strictly one at a time (accept, answer, close): the payloads are small
   snapshots and the expected client is a scraper polling every few
   seconds, so concurrency would buy nothing and cost locking subtlety.
   The accept loop wakes every 250 ms to check the stop flag, so [stop]
   returns promptly and joins the domain. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  registry : string option;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let c_requests = Rt_obs.counter "obs.http.requests"

let port t = t.port

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  let s = head ^ body in
  let len = String.length s in
  let rec write_all off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      if n > 0 then write_all (off + n)
    end
  in
  try write_all 0 with Unix.Unix_error _ -> ()

(* Read the request head (up to the blank line, 8 KiB cap, 2 s timeout) and
   return the request line. *)
let read_request_line fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then ()
    else begin
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with Unix.Unix_error _ -> 0 in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* stop at end-of-head; a lone newline also ends a curl-less client *)
        let rec contains i =
          i + 3 < String.length s
          && (String.sub s i 4 = "\r\n\r\n" || contains (i + 1))
        in
        if not (contains 0) then go ()
      end
    end
  in
  go ();
  match String.index_opt (Buffer.contents buf) '\r' with
  | Some i -> String.sub (Buffer.contents buf) 0 i
  | None -> (
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> String.sub (Buffer.contents buf) 0 i
    | None -> Buffer.contents buf)

let refresh () =
  Rt_obs.run_sample_hooks ();
  Rt_obs.sample_gc ()

(* "/trend?metric=a.b&last=5" -> ("/trend", [("metric","a.b");("last","5")]).
   No %-decoding: metric and id names are plain [a-zA-Z0-9._-]. *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let query = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      List.filter_map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some j ->
            Some (String.sub kv 0 j, String.sub kv (j + 1) (String.length kv - j - 1))
          | None -> if kv = "" then None else Some (kv, ""))
        (String.split_on_char '&' query)
    in
    (path, params)

let prom_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let openmetrics_ct = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let runs_body ~registry ~prom =
  let module R = Rt_obs_registry in
  let module J = Rt_obs.Json in
  let sums = R.list ~registry () in
  if prom then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "# TYPE optprob_run_info gauge\n";
    List.iter
      (fun (s : R.summary) ->
        Buffer.add_string buf
          (Printf.sprintf
             "optprob_run_info{run=\"%s\",git_rev=\"%s\",circuit=\"%s\",engine=\"%s\"} 1\n"
             (prom_label_escape s.R.id)
             (prom_label_escape s.R.git_rev)
             (prom_label_escape (Option.value ~default:"" s.R.circuit))
             (prom_label_escape (Option.value ~default:"" s.R.engine))))
      sums;
    Buffer.add_string buf "# TYPE optprob_run_wall_seconds gauge\n";
    List.iter
      (fun (s : R.summary) ->
        Buffer.add_string buf
          (Printf.sprintf "optprob_run_wall_seconds{run=\"%s\"} %.17g\n"
             (prom_label_escape s.R.id) s.R.wall_s))
      sums;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf
  end
  else begin
    let opt = function Some v -> J.Str v | None -> J.Null in
    J.print
      (J.Obj
         [ ("schema", J.Str "optprob-runs/1");
           ( "runs",
             J.Arr
               (List.map
                  (fun (s : R.summary) ->
                    J.Obj
                      [ ("id", J.Str s.R.id);
                        ("ts", J.Num s.R.ts);
                        ("git_rev", J.Str s.R.git_rev);
                        ("circuit", opt s.R.circuit);
                        ("engine", opt s.R.engine);
                        ("wall_s", J.Num s.R.wall_s) ])
                  sums) ) ])
    ^ "\n"
  end

let trend_body ~registry ~metric ~last ~prom =
  let module R = Rt_obs_registry in
  let module J = Rt_obs.Json in
  let series = R.series ~last ~registry metric in
  if prom then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "# TYPE optprob_trend gauge\n";
    List.iter
      (fun (p : R.point) ->
        Buffer.add_string buf
          (Printf.sprintf "optprob_trend{metric=\"%s\",run=\"%s\"} %.17g\n"
             (prom_label_escape metric) (prom_label_escape p.R.p_id) p.R.p_value))
      series.R.s_points;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf
  end
  else
    J.print
      (J.Obj
         [ ("schema", J.Str "optprob-trend/1");
           ("metric", J.Str metric);
           ( "points",
             J.Arr
               (List.map
                  (fun (p : R.point) ->
                    J.Obj
                      [ ("id", J.Str p.R.p_id); ("ts", J.Num p.R.p_ts);
                        ("value", J.Num p.R.p_value) ])
                  series.R.s_points) );
           ("mean", J.Num series.R.s_mean);
           ("p50", J.Num series.R.s_p50);
           ("p90", J.Num series.R.s_p90) ])
    ^ "\n"

let handle t fd =
  Rt_obs.incr c_requests;
  let line = read_request_line fd in
  match String.split_on_char ' ' line with
  | meth :: target :: _ ->
    let path, params = split_target target in
    let prom = List.assoc_opt "format" params = Some "prom" in
    if meth <> "GET" then
      respond fd ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is supported\n"
    else begin
      match path with
      | "/metrics" ->
        refresh ();
        respond fd ~status:"200 OK" ~content_type:openmetrics_ct (Rt_obs.metrics_prom ())
      | "/healthz" -> respond fd ~status:"200 OK" ~content_type:"text/plain" "ok\n"
      | "/snapshot" ->
        refresh ();
        respond fd ~status:"200 OK" ~content_type:"application/json" (Rt_obs.metrics_json ())
      | "/runs" -> (
        match t.registry with
        | None ->
          respond fd ~status:"404 Not Found" ~content_type:"text/plain"
            "no registry configured\n"
        | Some registry ->
          let body = try runs_body ~registry ~prom with _ -> "" in
          if body = "" then
            respond fd ~status:"500 Internal Server Error" ~content_type:"text/plain"
              "registry read failed\n"
          else
            respond fd ~status:"200 OK"
              ~content_type:(if prom then openmetrics_ct else "application/json")
              body)
      | "/trend" -> (
        match t.registry with
        | None ->
          respond fd ~status:"404 Not Found" ~content_type:"text/plain"
            "no registry configured\n"
        | Some registry -> (
          match List.assoc_opt "metric" params with
          | None | Some "" ->
            respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
              "missing ?metric=NAME\n"
          | Some metric ->
            let last =
              match Option.bind (List.assoc_opt "last" params) int_of_string_opt with
              | Some n when n > 0 -> n
              | _ -> 30
            in
            let body = try trend_body ~registry ~metric ~last ~prom with _ -> "" in
            if body = "" then
              respond fd ~status:"500 Internal Server Error" ~content_type:"text/plain"
                "registry read failed\n"
            else
              respond fd ~status:"200 OK"
                ~content_type:(if prom then openmetrics_ct else "application/json")
                body))
      | _ ->
        respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
    end
  | _ -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"

let rec serve t =
  if not (Atomic.get t.stop_flag) then begin
    (match Unix.select [ t.fd ] [] [] 0.25 with
     | [], _, _ -> ()
     | _ -> (
       match Unix.accept t.fd with
       | client, _ ->
         (try handle t client with _ -> ());
         (try Unix.close client with Unix.Unix_error _ -> ())
       | exception Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ());
    serve t
  end

let start ?(addr = "127.0.0.1") ?registry ~port () =
  (* a client closing mid-response must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port in
  let t = { fd; port = bound; registry; stop_flag = Atomic.make false; domain = None } in
  let d =
    Domain.spawn (fun () ->
        Rt_obs.set_track_name "obs-http";
        serve t)
  in
  t.domain <- Some d;
  t

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (match t.domain with
     | Some d ->
       Domain.join d;
       t.domain <- None
     | None -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
