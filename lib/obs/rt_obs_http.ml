(* Minimal live exposition server over the global Rt_obs sink.

   One background domain, one listening socket, plain [Unix] — no
   dependencies beyond what the library already links.  Requests are served
   strictly one at a time (accept, answer, close): the payloads are small
   snapshots and the expected client is a scraper polling every few
   seconds, so concurrency would buy nothing and cost locking subtlety.
   The accept loop wakes every 250 ms to check the stop flag, so [stop]
   returns promptly and joins the domain. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let c_requests = Rt_obs.counter "obs.http.requests"

let port t = t.port

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  let s = head ^ body in
  let len = String.length s in
  let rec write_all off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      if n > 0 then write_all (off + n)
    end
  in
  try write_all 0 with Unix.Unix_error _ -> ()

(* Read the request head (up to the blank line, 8 KiB cap, 2 s timeout) and
   return the request line. *)
let read_request_line fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then ()
    else begin
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with Unix.Unix_error _ -> 0 in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* stop at end-of-head; a lone newline also ends a curl-less client *)
        let rec contains i =
          i + 3 < String.length s
          && (String.sub s i 4 = "\r\n\r\n" || contains (i + 1))
        in
        if not (contains 0) then go ()
      end
    end
  in
  go ();
  match String.index_opt (Buffer.contents buf) '\r' with
  | Some i -> String.sub (Buffer.contents buf) 0 i
  | None -> (
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> String.sub (Buffer.contents buf) 0 i
    | None -> Buffer.contents buf)

let refresh () =
  Rt_obs.run_sample_hooks ();
  Rt_obs.sample_gc ()

let handle fd =
  Rt_obs.incr c_requests;
  let line = read_request_line fd in
  match String.split_on_char ' ' line with
  | meth :: target :: _ ->
    let path = match String.index_opt target '?' with
      | Some i -> String.sub target 0 i
      | None -> target
    in
    if meth <> "GET" then
      respond fd ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is supported\n"
    else begin
      match path with
      | "/metrics" ->
        refresh ();
        respond fd ~status:"200 OK"
          ~content_type:"application/openmetrics-text; version=1.0.0; charset=utf-8"
          (Rt_obs.metrics_prom ())
      | "/healthz" -> respond fd ~status:"200 OK" ~content_type:"text/plain" "ok\n"
      | "/snapshot" ->
        refresh ();
        respond fd ~status:"200 OK" ~content_type:"application/json" (Rt_obs.metrics_json ())
      | _ ->
        respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
    end
  | _ -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"

let rec serve t =
  if not (Atomic.get t.stop_flag) then begin
    (match Unix.select [ t.fd ] [] [] 0.25 with
     | [], _, _ -> ()
     | _ -> (
       match Unix.accept t.fd with
       | client, _ ->
         (try handle client with _ -> ());
         (try Unix.close client with Unix.Unix_error _ -> ())
       | exception Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ());
    serve t
  end

let start ?(addr = "127.0.0.1") ~port () =
  (* a client closing mid-response must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port in
  let t = { fd; port = bound; stop_flag = Atomic.make false; domain = None } in
  let d =
    Domain.spawn (fun () ->
        Rt_obs.set_track_name "obs-http";
        serve t)
  in
  t.domain <- Some d;
  t

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (match t.domain with
     | Some d ->
       Domain.join d;
       t.domain <- None
     | None -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
