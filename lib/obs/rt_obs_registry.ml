(* Persistent run registry over Rt_obs artifacts.

   Layout (all paths relative to the registry root):

     records/<id>.json   one immutable record per ingested run
     index.json          cache of per-record summaries (rebuildable)
     baseline.json       the promoted baseline id, when any

   Records are append-only: an ingest writes exactly one new file, via the
   same temp-file + atomic-rename discipline as Rt_obs.Artifact, so two
   processes (or two domains) ingesting concurrently can never corrupt each
   other.  The index is strictly a cache — every reader checks that it
   covers exactly the record files on disk and rebuilds it from the records
   when it doesn't, skipping anything unparseable.  A crash between the
   record write and the index write therefore costs nothing. *)

module Json = Rt_obs.Json

let schema_record = "optprob-registry/1"
let schema_index = "optprob-registry-index/1"
let schema_baseline = "optprob-registry-baseline/1"

let default_dir () =
  match Sys.getenv_opt "OPTPROB_OBS_REGISTRY" with
  | Some d when String.trim d <> "" -> d
  | _ -> Filename.concat "_obs" "registry"

let records_dir registry = Filename.concat registry "records"
let record_path registry id = Filename.concat (records_dir registry) (id ^ ".json")
let index_path registry = Filename.concat registry "index.json"
let baseline_path registry = Filename.concat registry "baseline.json"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Atomic write; the temp name carries pid *and* domain id so concurrent
   writers within one process can't collide on the sibling either. *)
let write_file path s =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) ((Domain.self () :> int))
  in
  let oc = open_out tmp in
  (try output_string oc s
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let parse_file path =
  if Sys.file_exists path then (try Some (Json.parse (read_file path)) with _ -> None)
  else None

(* --- summaries -------------------------------------------------------------- *)

type summary = {
  id : string;
  ts : float;
  git_rev : string;
  circuit : string option;
  engine : string option;
  config : (string * string) list;
  wall_s : float;
}

type record = {
  r_summary : summary;
  r_metrics : (string * float) list;
  r_doc : Json.t;
}

type filter = {
  f_engine : string option;
  f_circuit : string option;
  f_git_rev : string option;
  f_config : (string * string) list;
}

let no_filter = { f_engine = None; f_circuit = None; f_git_rev = None; f_config = [] }

let mstr key j = Option.bind (Json.member key j) Json.to_string
let mnum key j = Option.bind (Json.member key j) Json.to_float

(* The config slice a manifest carries, flattened to display strings.  Int
   fields print without a fractional part so `--config jobs=4` matches. *)
let config_slice manifest =
  match manifest with
  | None | Some Json.Null -> []
  | Some m ->
    let str k = Option.map (fun v -> (k, v)) (mstr k m) in
    let int k =
      Option.map (fun v -> (k, Printf.sprintf "%.0f" v)) (mnum k m)
    in
    let passes =
      match Json.member "opt_passes" m with
      | Some (Json.Arr l) ->
        Some ("opt_passes", String.concat "," (List.filter_map Json.to_string l))
      | _ -> None
    in
    List.filter_map
      (fun x -> x)
      [ str "engine"; str "circuit"; int "seed"; int "jobs"; int "patterns";
        int "block_words"; passes; int "opt_rounds"; str "objective" ]
    |> List.sort compare

let summary_of_doc ~id doc =
  let manifest = Json.member "manifest" doc in
  { id;
    ts = Option.value ~default:0.0 (mnum "ingested_at" doc);
    git_rev =
      Option.value ~default:"unknown" (Option.bind manifest (mstr "git_rev"));
    circuit = Option.bind manifest (mstr "circuit");
    engine = Option.bind manifest (mstr "engine");
    config = config_slice manifest;
    wall_s = Option.value ~default:0.0 (Option.bind manifest (mnum "wall_s")) }

let summary_json s =
  let opt = function Some v -> Json.Str v | None -> Json.Null in
  Json.Obj
    [ ("id", Json.Str s.id);
      ("ts", Json.Num s.ts);
      ("git_rev", Json.Str s.git_rev);
      ("circuit", opt s.circuit);
      ("engine", opt s.engine);
      ("wall_s", Json.Num s.wall_s);
      ("config", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.config)) ]

let summary_of_json j =
  match mstr "id" j with
  | None -> None
  | Some id ->
    Some
      { id;
        ts = Option.value ~default:0.0 (mnum "ts" j);
        git_rev = Option.value ~default:"unknown" (mstr "git_rev" j);
        circuit = mstr "circuit" j;
        engine = mstr "engine" j;
        wall_s = Option.value ~default:0.0 (mnum "wall_s" j);
        config =
          (match Json.member "config" j with
           | Some (Json.Obj fields) ->
             List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string v)) fields
           | _ -> []) }

let by_age a b = compare (a.ts, a.id) (b.ts, b.id)

(* --- index ------------------------------------------------------------------ *)

let scan_ids registry =
  let dir = records_dir registry in
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list names
  |> List.filter_map (fun n ->
         if Filename.check_suffix n ".json" then Some (Filename.chop_suffix n ".json")
         else None)
  |> List.sort String.compare

let index_entries registry =
  match parse_file (index_path registry) with
  | Some j when mstr "schema" j = Some schema_index -> (
    match Json.member "entries" j with
    | Some (Json.Arr l) -> List.filter_map summary_of_json l
    | _ -> [])
  | _ -> []

let load_summary registry id =
  match parse_file (record_path registry id) with
  | Some (Json.Obj _ as doc) when mstr "schema" doc = Some schema_record ->
    Some (summary_of_doc ~id doc)
  | _ -> None

let write_index registry entries =
  let doc =
    Json.Obj
      [ ("schema", Json.Str schema_index);
        ("entries", Json.Arr (List.map summary_json (List.sort by_age entries))) ]
  in
  try write_file (index_path registry) (Json.print doc) with Sys_error _ -> ()

(* Bring the index in line with the record files: keep cached summaries whose
   record still exists, load summaries for records the cache misses, drop the
   rest.  Corrupt records are skipped, never fatal. *)
let sync_index registry =
  let ids = scan_ids registry in
  let cached = index_entries registry in
  let entries =
    List.filter_map
      (fun id ->
        match List.find_opt (fun s -> s.id = id) cached with
        | Some s -> Some s
        | None -> load_summary registry id)
      ids
  in
  let entries = List.sort by_age entries in
  write_index registry entries;
  entries

let matches f s =
  let opt_eq fo v = match fo with None -> true | Some x -> v = Some x in
  opt_eq f.f_engine s.engine
  && opt_eq f.f_circuit s.circuit
  && (match f.f_git_rev with
     | None -> true
     | Some p ->
       String.length s.git_rev >= String.length p
       && String.sub s.git_rev 0 (String.length p) = p)
  && List.for_all (fun (k, v) -> List.assoc_opt k s.config = Some v) f.f_config

let list ?(filter = no_filter) ~registry () =
  let ids = scan_ids registry in
  let cached = index_entries registry in
  let covered =
    List.length cached = List.length ids
    && List.for_all (fun s -> List.mem s.id ids) cached
  in
  let entries = if covered then List.sort by_age cached else sync_index registry in
  List.filter (matches filter) entries

(* --- derived metric map ----------------------------------------------------- *)

let num_members = function
  | Some (Json.Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) fields
  | _ -> []

let span_totals trace =
  match Option.bind trace (Json.member "traceEvents") with
  | Some (Json.Arr evs) ->
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun e ->
        match (Json.member "name" e, Json.member "dur" e) with
        | Some (Json.Str name), Some (Json.Num dur) ->
          Hashtbl.replace tbl name ((try Hashtbl.find tbl name with Not_found -> 0.0) +. dur)
        | _ -> ())
      evs;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | _ -> []

let timeline_stats timeline =
  match Option.bind timeline (Json.member "samples") with
  | Some (Json.Arr samples) ->
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun s ->
        match Json.member "gauges" s with
        | Some (Json.Obj gs) ->
          List.iter
            (fun (k, v) ->
              match Json.to_float v with
              | Some f ->
                let vs = try Hashtbl.find tbl k with Not_found -> [] in
                Hashtbl.replace tbl k (f :: vs)
              | None -> ())
            gs
        | _ -> ())
      samples;
    Hashtbl.fold
      (fun k vs acc ->
        let n = List.length vs in
        if n = 0 then acc
        else begin
          let sorted = List.sort Float.compare vs in
          let peak = List.nth sorted (n - 1) in
          let p90 = List.nth sorted (Stdlib.min (n - 1) ((n * 9 + 9) / 10 - 1)) in
          let mean = List.fold_left ( +. ) 0.0 vs /. Float.of_int n in
          ("timeline." ^ k ^ ".mean", mean)
          :: ("timeline." ^ k ^ ".peak", peak)
          :: ("timeline." ^ k ^ ".p90", p90)
          :: acc
        end)
      tbl []
  | _ -> []

let convergence_stats convergence =
  match Option.bind convergence (Json.member "rows") with
  | Some (Json.Arr rows) ->
    let sweeps = ref 0 and final_n = ref None and final_j = ref None in
    List.iter
      (fun r ->
        match Json.member "stage" r with
        | Some (Json.Str "sweep") -> incr sweeps
        | Some (Json.Str "final") ->
          final_n := mnum "n" r;
          final_j := mnum "j" r
        | _ -> ())
      rows;
    (("convergence.sweeps", Float.of_int !sweeps)
     :: (match !final_n with Some n -> [ ("convergence.final_n", n) ] | None -> []))
    @ (match !final_j with Some j -> [ ("convergence.final_j", j) ] | None -> [])
  | _ -> []

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let derived_metrics ~manifest ~metrics ~convergence ~spans ~timeline_kvs =
  let tbl = Hashtbl.create 128 in
  let put k v = Hashtbl.replace tbl k v in
  List.iter (fun (k, v) -> put k v) (num_members (Option.bind metrics (Json.member "counters")));
  List.iter (fun (k, v) -> put k v) (num_members (Option.bind metrics (Json.member "gauges")));
  (match Option.bind metrics (Json.member "histograms") with
   | Some (Json.Obj hists) ->
     List.iter
       (fun (name, h) ->
         List.iter
           (fun (k, v) -> if k <> "buckets" then put (name ^ "." ^ k) v)
           (num_members (Some h)))
       hists
   | _ -> ());
  List.iter (fun (name, us) -> put ("span." ^ name ^ ".us") us) spans;
  let pipeline_total =
    List.fold_left (fun acc (name, us) -> if has_prefix "pipeline." name then acc +. us else acc)
      0.0 spans
  in
  if pipeline_total > 0.0 then put "pipeline.total_us" pipeline_total;
  (match Option.bind manifest (mnum "wall_s") with Some w -> put "wall_s" w | None -> ());
  List.iter (fun (k, v) -> put k v) (convergence_stats convergence);
  List.iter (fun (k, v) -> put k v) timeline_kvs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- ingest ----------------------------------------------------------------- *)

let gen_id ~registry ~obs_dir =
  let rec attempt n =
    let t = Unix.gettimeofday () in
    let tm = Unix.gmtime t in
    let stamp =
      Printf.sprintf "%04d%02d%02dT%02d%02d%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    in
    let digest =
      Digest.to_hex
        (Digest.string
           (Printf.sprintf "%s|%d|%d|%.9f|%d" obs_dir (Unix.getpid ())
              ((Domain.self () :> int)) t n))
    in
    let id = stamp ^ "-" ^ String.sub digest 0 6 in
    if Sys.file_exists (record_path registry id) && n < 1000 then attempt (n + 1) else id
  in
  attempt 0

let ingest ?id ~registry ~obs_dir () =
  let art file = parse_file (Filename.concat obs_dir file) in
  match art "metrics.json" with
  | None -> Error (obs_dir ^ ": missing or unreadable metrics.json")
  | Some metrics_doc ->
    let manifest = art "manifest.json" in
    let convergence = art "convergence.json" in
    let spans = span_totals (art "trace.json") in
    let timeline_kvs = timeline_stats (art "timeline.json") in
    let derived =
      derived_metrics ~manifest ~metrics:(Some metrics_doc) ~convergence ~spans ~timeline_kvs
    in
    let id = match id with Some i -> i | None -> gen_id ~registry ~obs_dir in
    if Sys.file_exists (record_path registry id) then
      Error (Printf.sprintf "record %s already exists in %s" id registry)
    else begin
      let opt_doc = function Some d -> d | None -> Json.Null in
      let doc =
        Json.Obj
          [ ("schema", Json.Str schema_record);
            ("id", Json.Str id);
            ("ingested_at", Json.Num (Unix.gettimeofday ()));
            ("source", Json.Str obs_dir);
            ("manifest", opt_doc manifest);
            ("metrics", metrics_doc);
            ("convergence", opt_doc convergence);
            ("span_totals", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) spans));
            ("derived", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) derived)) ]
      in
      try
        mkdir_p (records_dir registry);
        write_file (record_path registry id) (Json.print doc);
        ignore (sync_index registry);
        Ok id
      with Sys_error m | Unix.Unix_error (_, m, _) -> Error ("registry write failed: " ^ m)
    end

let load ~registry id =
  match parse_file (record_path registry id) with
  | Some (Json.Obj _ as doc) when mstr "schema" doc = Some schema_record ->
    Ok
      { r_summary = summary_of_doc ~id doc;
        r_metrics = num_members (Json.member "derived" doc);
        r_doc = doc }
  | Some _ -> Error (Printf.sprintf "record %s: wrong shape or schema" id)
  | None -> Error (Printf.sprintf "record %s: missing or unreadable in %s" id registry)

let metric r name = List.assoc_opt name r.r_metrics
let metric_names r = List.map fst r.r_metrics

(* --- baseline --------------------------------------------------------------- *)

let promoted ~registry =
  match parse_file (baseline_path registry) with
  | Some j when mstr "schema" j = Some schema_baseline -> mstr "id" j
  | _ -> None

let promote ~registry id =
  if not (Sys.file_exists (record_path registry id)) then
    Error (Printf.sprintf "record %s not found in %s" id registry)
  else begin
    let doc =
      Json.Obj
        [ ("schema", Json.Str schema_baseline);
          ("id", Json.Str id);
          ("promoted_at", Json.Num (Unix.gettimeofday ())) ]
    in
    try
      mkdir_p registry;
      write_file (baseline_path registry) (Json.print doc);
      Ok ()
    with Sys_error m | Unix.Unix_error (_, m, _) -> Error ("baseline write failed: " ^ m)
  end

let clear_baseline ~registry =
  try Sys.remove (baseline_path registry) with Sys_error _ -> ()

(* --- materialize ------------------------------------------------------------ *)

let materialize ~registry ~dir id =
  match load ~registry id with
  | Error _ as e -> Result.map (fun _ -> ()) e
  | Ok r ->
    let doc = r.r_doc in
    let write_member file = function
      | Some Json.Null | None -> ()
      | Some j -> write_file (Filename.concat dir file) (Json.print j)
    in
    (try
       mkdir_p dir;
       write_member "metrics.json" (Json.member "metrics" doc);
       write_member "manifest.json" (Json.member "manifest" doc);
       write_member "convergence.json" (Json.member "convergence" doc);
       (* one aggregate complete event per span name: Diff's per-name span
          totals round-trip exactly through this synthetic trace *)
       let spans = num_members (Json.member "span_totals" doc) in
       let events =
         List.map
           (fun (name, us) ->
             Json.Obj
               [ ("name", Json.Str name); ("cat", Json.Str "span"); ("ph", Json.Str "X");
                 ("ts", Json.Num 0.0); ("dur", Json.Num us); ("pid", Json.Num 1.0);
                 ("tid", Json.Num 0.0) ])
           spans
       in
       write_file
         (Filename.concat dir "trace.json")
         (Json.print
            (Json.Obj [ ("displayTimeUnit", Json.Str "ms"); ("traceEvents", Json.Arr events) ]));
       Ok ()
     with Sys_error m | Unix.Unix_error (_, m, _) -> Error ("materialize failed: " ^ m))

(* --- retention -------------------------------------------------------------- *)

let gc ?keep ?max_age_s ~registry () =
  let entries = list ~registry () in
  let n = List.length entries in
  let base = promoted ~registry in
  let now = Unix.gettimeofday () in
  let doomed =
    List.filteri
      (fun i s ->
        let beyond_keep = match keep with Some k -> i < n - Stdlib.max 0 k | None -> false in
        let too_old = match max_age_s with Some a -> now -. s.ts > a | None -> false in
        (beyond_keep || too_old) && base <> Some s.id)
      entries
  in
  List.iter (fun s -> try Sys.remove (record_path registry s.id) with Sys_error _ -> ()) doomed;
  ignore (sync_index registry);
  List.length doomed

(* --- trends ----------------------------------------------------------------- *)

type point = { p_id : string; p_ts : float; p_value : float }

type series = {
  s_metric : string;
  s_points : point list;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
}

(* nearest-rank percentile on a sorted copy *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (q *. Float.of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
  end

let series ?(filter = no_filter) ?(last = 30) ~registry metric_name =
  let sums = list ~filter ~registry () in
  let points =
    List.filter_map
      (fun s ->
        match load ~registry s.id with
        | Ok r ->
          Option.map (fun v -> { p_id = s.id; p_ts = s.ts; p_value = v }) (metric r metric_name)
        | Error _ -> None)
      sums
  in
  let n = List.length points in
  let points = if n > last then List.filteri (fun i _ -> i >= n - last) points else points in
  let values = Array.of_list (List.map (fun p -> p.p_value) points) in
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let mean =
    if Array.length values = 0 then Float.nan
    else Array.fold_left ( +. ) 0.0 values /. Float.of_int (Array.length values)
  in
  { s_metric = metric_name;
    s_points = points;
    s_mean = mean;
    s_p50 = percentile sorted 0.5;
    s_p90 = percentile sorted 0.9 }

type step = {
  st_index : int;
  st_value : float;
  st_median : float;
  st_ratio : float;
  st_up : bool;
}

let median a =
  let s = Array.copy a in
  Array.sort Float.compare s;
  let n = Array.length s in
  if n = 0 then Float.nan
  else if n mod 2 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let step_changes ?(window = 8) ?(k = 4.0) ?(rel = 0.25) xs =
  let n = Array.length xs in
  let out = ref [] in
  for i = 3 to n - 1 do
    let lo = Stdlib.max 0 (i - window) in
    let w = Array.sub xs lo (i - lo) in
    let med = median w in
    let mad = median (Array.map (fun x -> Float.abs (x -. med)) w) in
    let sigma = 1.4826 *. mad in
    let thr = Float.max (Float.max (k *. sigma) (rel *. Float.abs med)) 1e-12 in
    let d = xs.(i) -. med in
    if Float.abs d > thr then
      out :=
        { st_index = i;
          st_value = xs.(i);
          st_median = med;
          st_ratio = Float.abs d /. thr;
          st_up = d > 0.0 }
        :: !out
  done;
  List.rev !out

let sparkline xs =
  let n = Array.length xs in
  if n = 0 then ""
  else begin
    let blocks = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
    let mn = Array.fold_left Float.min Float.infinity xs in
    let mx = Array.fold_left Float.max Float.neg_infinity xs in
    let buf = Buffer.create (n * 3) in
    Array.iter
      (fun x ->
        let i =
          if mx <= mn then 3
          else int_of_float (Float.round ((x -. mn) /. (mx -. mn) *. 7.0))
        in
        Buffer.add_string buf blocks.(Stdlib.max 0 (Stdlib.min 7 i)))
      xs;
    Buffer.contents buf
  end
