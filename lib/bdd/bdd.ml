(* Node store: node 0 = terminal FALSE, node 1 = terminal TRUE.  Internal
   node i >= 2 has (var, low, high) with low <> high and both children over
   strictly larger variables. *)

type t = int

exception Limit_exceeded

type manager = {
  nvars : int;
  node_limit : int;
  mutable vars : int array;
  mutable lows : int array;
  mutable highs : int array;
  mutable n : int;
  unique : (int * int * int, int) Hashtbl.t;
  apply_cache : (int * int * int, int) Hashtbl.t;
  (* op codes for the cache: 0=and 1=or 2=xor 3=not (b ignored) 4=ite-part *)
}

let terminal_var = max_int

let manager ?(node_limit = 2_000_000) ~nvars () =
  let cap = 1024 in
  let m =
    { nvars;
      node_limit;
      vars = Array.make cap terminal_var;
      lows = Array.make cap 0;
      highs = Array.make cap 0;
      n = 2;
      unique = Hashtbl.create 4096;
      apply_cache = Hashtbl.create 4096 }
  in
  m.vars.(0) <- terminal_var;
  m.vars.(1) <- terminal_var;
  m

let node_count m = m.n - 2

let zero (_ : manager) : t = 0
let one (_ : manager) : t = 1
let is_zero (x : t) = x = 0
let is_one (x : t) = x = 1
let equal (a : t) (b : t) = a = b

let var_of m x = m.vars.(x)

let mk m v low high =
  if low = high then low
  else begin
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some id -> id
    | None ->
      if m.n >= m.node_limit then raise Limit_exceeded;
      if m.n >= Array.length m.vars then begin
        let cap = 2 * Array.length m.vars in
        let grow a = let a' = Array.make cap 0 in Array.blit a 0 a' 0 m.n; a' in
        m.vars <- (let a' = Array.make cap terminal_var in Array.blit m.vars 0 a' 0 m.n; a');
        m.lows <- grow m.lows;
        m.highs <- grow m.highs
      end;
      let id = m.n in
      m.n <- id + 1;
      m.vars.(id) <- v;
      m.lows.(id) <- low;
      m.highs.(id) <- high;
      Hashtbl.add m.unique (v, low, high) id;
      id
  end

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var";
  mk m i 0 1

let rec not_ m x =
  if x = 0 then 1
  else if x = 1 then 0
  else begin
    let key = (3, x, 0) in
    match Hashtbl.find_opt m.apply_cache key with
    | Some r -> r
    | None ->
      let r = mk m m.vars.(x) (not_ m m.lows.(x)) (not_ m m.highs.(x)) in
      Hashtbl.add m.apply_cache key r;
      r
  end

let rec apply m op f g =
  (* Terminal rules per op. *)
  let terminal () =
    match op with
    | 0 (* and *) ->
      if f = 0 || g = 0 then Some 0
      else if f = 1 then Some g
      else if g = 1 then Some f
      else if f = g then Some f
      else None
    | 1 (* or *) ->
      if f = 1 || g = 1 then Some 1
      else if f = 0 then Some g
      else if g = 0 then Some f
      else if f = g then Some f
      else None
    | 2 (* xor *) ->
      if f = g then Some 0
      else if f = 0 then Some g
      else if g = 0 then Some f
      else if f = 1 then Some (not_ m g)
      else if g = 1 then Some (not_ m f)
      else None
    | _ -> invalid_arg "Bdd.apply: bad op"
  in
  match terminal () with
  | Some r -> r
  | None ->
    (* Commutative ops: normalise operand order for cache hits. *)
    let f, g = if f <= g then (f, g) else (g, f) in
    let key = (op, f, g) in
    (match Hashtbl.find_opt m.apply_cache key with
     | Some r -> r
     | None ->
       let vf = var_of m f and vg = var_of m g in
       let v = min vf vg in
       let f0, f1 = if vf = v then (m.lows.(f), m.highs.(f)) else (f, f) in
       let g0, g1 = if vg = v then (m.lows.(g), m.highs.(g)) else (g, g) in
       let r = mk m v (apply m op f0 g0) (apply m op f1 g1) in
       Hashtbl.add m.apply_cache key r;
       r)

let and_ m f g = apply m 0 f g
let or_ m f g = apply m 1 f g
let xor_ m f g = apply m 2 f g
let xnor_ m f g = not_ m (xor_ m f g)

let ite m c t e = or_ m (and_ m c t) (and_ m (not_ m c) e)

let apply_kind m kind args =
  let open Rt_circuit.Gate in
  let fold op init = Array.fold_left (fun acc x -> apply m op acc x) init args in
  match kind with
  | Input -> invalid_arg "Bdd.apply_kind: Input"
  | Const0 -> 0
  | Const1 -> 1
  | Buf -> args.(0)
  | Not -> not_ m args.(0)
  | And -> fold 0 1
  | Nand -> not_ m (fold 0 1)
  | Or -> fold 1 0
  | Nor -> not_ m (fold 1 0)
  | Xor -> fold 2 0
  | Xnor -> not_ m (fold 2 0)

let rec restrict m x i v =
  if x < 2 then x
  else begin
    let vx = m.vars.(x) in
    if vx > i then x
    else if vx = i then restrict m (if v then m.highs.(x) else m.lows.(x)) i v
    else begin
      let key = ((if v then 5 else 4) + (i lsl 3), x, i) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some r -> r
      | None ->
        let r = mk m vx (restrict m m.lows.(x) i v) (restrict m m.highs.(x) i v) in
        Hashtbl.add m.apply_cache key r;
        r
    end
  end

let size m x =
  let seen = Hashtbl.create 64 in
  let rec visit x =
    if x >= 2 && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      visit m.lows.(x);
      visit m.highs.(x)
    end
  in
  visit x;
  Hashtbl.length seen

let eval m x assign =
  let rec go x = if x < 2 then x = 1 else go (if assign m.vars.(x) then m.highs.(x) else m.lows.(x)) in
  go x

let prob m x p =
  let memo = Hashtbl.create 256 in
  let rec go x =
    if x = 0 then 0.0
    else if x = 1 then 1.0
    else begin
      match Hashtbl.find_opt memo x with
      | Some r -> r
      | None ->
        let pv = p m.vars.(x) in
        let r = ((1.0 -. pv) *. go m.lows.(x)) +. (pv *. go m.highs.(x)) in
        Hashtbl.add memo x r;
        r
    end
  in
  go x

let prob_many m roots p =
  let memo = Hashtbl.create 1024 in
  let rec go x =
    if x = 0 then 0.0
    else if x = 1 then 1.0
    else begin
      match Hashtbl.find_opt memo x with
      | Some r -> r
      | None ->
        let pv = p m.vars.(x) in
        let r = ((1.0 -. pv) *. go m.lows.(x)) +. (pv *. go m.highs.(x)) in
        Hashtbl.add memo x r;
        r
    end
  in
  Array.map go roots

(* Both single-variable cofactor probabilities of every root in one
   traversal.  A node ordered strictly below [var] cannot depend on it and
   is evaluated once (scalar memo, shared by both components); a node on
   [var] splits into its children's scalars; ancestors combine the pairs
   componentwise.  Each component is bit-identical to [prob_many] with
   [p var] forced to 0.0 / 1.0: at a [var] node the full evaluation
   computes [1.0 *. go low +. 0.0 *. go high] (resp. the mirror), which is
   exactly [go low] in IEEE arithmetic because every partial probability
   here is finite and non-negative (so the dropped product is +0.0 and
   the kept one is preserved by the multiplication by 1.0). *)
let prob_pair_many m roots ~var p =
  let scalar_memo = Hashtbl.create 1024 in
  let rec scalar x =
    if x = 0 then 0.0
    else if x = 1 then 1.0
    else begin
      match Hashtbl.find_opt scalar_memo x with
      | Some r -> r
      | None ->
        let pv = p m.vars.(x) in
        let r = ((1.0 -. pv) *. scalar m.lows.(x)) +. (pv *. scalar m.highs.(x)) in
        Hashtbl.add scalar_memo x r;
        r
    end
  in
  let pair_memo = Hashtbl.create 1024 in
  let rec pair x =
    if x = 0 then (0.0, 0.0)
    else if x = 1 then (1.0, 1.0)
    else begin
      let v = m.vars.(x) in
      if v > var then begin
        let r = scalar x in
        (r, r)
      end
      else begin
        match Hashtbl.find_opt pair_memo x with
        | Some r -> r
        | None ->
          let r =
            if v = var then (scalar m.lows.(x), scalar m.highs.(x))
            else begin
              let l0, l1 = pair m.lows.(x) in
              let h0, h1 = pair m.highs.(x) in
              let pv = p v in
              (((1.0 -. pv) *. l0) +. (pv *. h0), ((1.0 -. pv) *. l1) +. (pv *. h1))
            end
          in
          Hashtbl.add pair_memo x r;
          r
      end
    end
  in
  Array.map pair roots

let sat_fraction m x = prob m x (fun _ -> 0.5)

let any_sat m x =
  if x = 0 then None
  else begin
    let rec go x acc =
      if x = 1 then acc
      else if m.lows.(x) <> 0 then go m.lows.(x) ((m.vars.(x), false) :: acc)
      else go m.highs.(x) ((m.vars.(x), true) :: acc)
    in
    Some (List.rev (go x []))
  end
