(** Reduced ordered binary decision diagrams with hash-consing.

    The Parker-McCluskey exact computation of signal probabilities is
    #P-hard in general; on a BDD it is a single linear pass, because the
    two branches of a node are disjoint events.  This engine is the exact
    oracle against which the fast estimators are validated, and the exact
    ANALYSIS backend for small circuits.

    Nodes are indices into a manager-owned store; every function below is
    meaningful only for values created by the same manager. *)

type manager
type t
(** A BDD root (terminal or internal node) owned by some manager. *)

exception Limit_exceeded
(** Raised by node allocation when the manager's node limit is reached —
    callers fall back to estimation. *)

val manager : ?node_limit:int -> nvars:int -> unit -> manager
(** [manager ~nvars ()] supports variables [0 .. nvars-1] with the natural
    order.  [node_limit] (default 2_000_000) bounds the unique table. *)

val node_count : manager -> int
(** Nodes currently allocated (excludes terminals). *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor_ : manager -> t -> t -> t
val xnor_ : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val apply_kind : manager -> Rt_circuit.Gate.kind -> t array -> t
(** Fold a gate's boolean function over BDD operands (Input is invalid). *)

val equal : t -> t -> bool
(** Canonical: structural function equality. *)

val is_zero : t -> bool
val is_one : t -> bool

val restrict : manager -> t -> int -> bool -> t
(** Cofactor with respect to one variable. *)

val size : manager -> t -> int
(** Number of distinct internal nodes reachable from the root. *)

val eval : manager -> t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val prob : manager -> t -> (int -> float) -> float
(** [prob m f p] is the exact probability that [f] is true when variable
    [i] is independently true with probability [p i] — the arithmetical
    embedding of paper §2.1 evaluated exactly. *)

val prob_many : manager -> t array -> (int -> float) -> float array
(** As {!prob} for many roots, sharing one memo table — evaluating the
    per-fault detection BDDs of a whole fault list costs one pass over
    their shared subgraphs. *)

val prob_pair_many : manager -> t array -> var:int -> (int -> float) -> (float * float) array
(** [prob_pair_many m roots ~var p] is, per root, the pair of
    probabilities with variable [var] forced to 0 and to 1 — both
    single-variable cofactors from one traversal.  [p var] itself is never
    read.  Each component is bit-identical to {!prob_many} evaluated with
    [p] overridden to return 0.0 (resp. 1.0) at [var]; subgraphs ordered
    below [var] are evaluated once and shared by both components.  This is
    the exact engine's PREPARE kernel (paper §4, eq. 15). *)

val sat_fraction : manager -> t -> float
(** [sat_fraction m f] is the fraction of assignments satisfying [f]:
    {!prob} at the uniform distribution. *)

val any_sat : manager -> t -> (int * bool) list option
(** A satisfying partial assignment (variables not listed are free), or
    [None] for the zero BDD. *)
