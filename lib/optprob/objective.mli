(** The objective-function protocol: what the optimizer minimises.

    The paper's objective (eq. 9/10) is

    [J_N(X) = sum_f exp (-N * p_f(X))]

    which approximates [-ln delta_N(X)], the negated log-confidence of an
    [N]-pattern random test.  Minimising [J_N] maximises the chance that
    every fault is caught.

    Along one coordinate the detection probabilities are affine
    (Lemma 1): [p_f(X, y|i) = p_f(X,0|i) + y * (p_f(X,1|i) - p_f(X,0|i))],
    so any objective of the form [sum_f F(N * p_f)] restricted to [y] has
    analytic first and second derivatives from the same [(p0, p1)]
    cofactor pairs — {!Minimize}'s Newton machinery and the fused
    {!Rt_testability.Oracle.cofactor_pair} query work for every instance.

    {b Per-coordinate convexity contract.}  An instance should be convex
    along a coordinate wherever the sweep actually evaluates it.  For the
    paper objective [F = exp] this holds globally (Lemma 3: [J'' >= 0]
    everywhere).  For {!n_detect} the Poisson tail [F_k] satisfies
    [F_k'' (lambda) >= 0] iff [lambda >= k - 1]; NORMALIZE certifies
    [N * p_f] well above [k - 1] for every relevant fault (it drives the
    per-fault miss term below the confidence budget, and [F_k (k - 1)] is
    [>= 0.4] for all [k]), so the contract holds on the region the sweep
    visits.  Outside it, {!Minimize.newton}'s bisection safeguard still
    converges to a coordinate-local minimum. *)

type t = {
  key : string;
      (** Stable identity for content-addressed artifacts and registry
          config slices (e.g. ["single"], ["ndetect:2"]).  Two instances
          with the same key must compute the same function. *)
  label : string;  (** Human-readable description for reports and logs. *)
  term : n:float -> p:float -> float;
      (** Per-fault miss term [F(n * p)] — the summand of [value].  Must be
          decreasing in both [n] and [p]; {!Normalize} builds its
          prefix bounds on [J_M] from this monotonicity. *)
  value : n:float -> float array -> float;  (** [J_N] over a [p_f] vector. *)
  value_along : n:float -> p0:float array -> p1:float array -> float -> float;
      (** [J_N(X, y|i)] from the cofactor pair of the scrutinised faults. *)
  derivatives_along :
    n:float -> p0:float array -> p1:float array -> float -> float * float;
      (** First and second derivative of [value_along] in [y]. *)
  confidence : n:float -> float array -> float;
      (** [exp (-J_N)] — the eq. (1) approximation reported to the user. *)
}

val single : t
(** The paper's objective: [F = exp], key ["single"].  Its closures are
    the module-level functions below, so it is bit-identical to the
    pre-protocol implementation. *)

val n_detect : k:int -> t
(** [n_detect ~k] is [J_{N,n}(X) = sum_f P(fault f detected < k times)]
    via the Poisson tail [F_k(lambda) = exp(-lambda) sum_{j<k} lambda^j/j!]
    with [lambda = N * p_f] (Pomeranz & Reddy's n-detection criterion in
    the paper's random-test setting).  [k = 1] reduces analytically to
    {!single}.  Raises [Invalid_argument] when [k < 1].  Key
    ["ndetect:<k>"]. *)

val poisson_tail : k:int -> float -> float * float * float
(** [poisson_tail ~k lambda] is [(F_k, F_k', F_k'')] at [lambda] — exposed
    for property tests of the convexity contract. *)

(** {2 The paper objective as module-level functions}

    Kept for direct callers (tests, repro experiments); {!single} wraps
    exactly these. *)

val value : n:float -> float array -> float
(** [value ~n pfs] is [J_N] from the fault detection probabilities. *)

val value_along : n:float -> p0:float array -> p1:float array -> float -> float
(** [value_along ~n ~p0 ~p1 y]: [J_N(X, y|i)] where [p0]/[p1] are the
    cofactor detection probabilities of the faults under scrutiny. *)

val derivatives_along :
  n:float -> p0:float array -> p1:float array -> float -> float * float
(** First and second derivative of {!value_along} in [y] (paper eq. 13/14):
    [J' = sum -N b_f exp(-N p_f(y))], [J'' = sum (N b_f)^2 exp(-N p_f(y))]
    with [b_f = p1_f - p0_f].  [J'' >= 0] always. *)

val confidence : n:float -> float array -> float
(** [exp (-J_N)] — the approximation of eq. (1) used throughout §2.3. *)
