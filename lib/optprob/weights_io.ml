module Netlist = Rt_circuit.Netlist

let save path c w =
  let oc = open_out path in
  output_string oc "# optimized input probabilities\n";
  Array.iteri
    (fun pos input ->
      Printf.fprintf oc "%s %.6f\n" (Netlist.name c input) w.(pos))
    (Netlist.inputs c);
  close_out oc

let load path c =
  let w = Array.make (Array.length (Netlist.inputs c)) 0.5 in
  let ic = open_in path in
  (try
     let lineno = ref 0 in
     while true do
       incr lineno;
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
         | [ name; value ] ->
           (match Netlist.find c name with
            | Some node when Netlist.kind c node = Rt_circuit.Gate.Input ->
              w.(Netlist.input_index c node) <- float_of_string value
            | Some _ | None ->
              failwith (Printf.sprintf "weights file line %d: unknown input %s" !lineno name))
         | _ -> failwith (Printf.sprintf "weights file line %d: expected 'name value'" !lineno)
       end
     done
   with End_of_file -> close_in ic);
  w

let pp c ppf w =
  (* Group runs of equal weights like the paper's appendix. *)
  let inputs = Netlist.inputs c in
  let n = Array.length inputs in
  let rec emit i =
    if i < n then begin
      let j = ref i in
      while !j + 1 < n && Float.abs (w.(!j + 1) -. w.(i)) < 1e-9 do incr j done;
      if !j = i then Format.fprintf ppf "%-12s %.2f@." (Netlist.name c inputs.(i)) w.(i)
      else
        Format.fprintf ppf "%s..%s %.2f@."
          (Netlist.name c inputs.(i))
          (Netlist.name c inputs.(!j))
          w.(i);
      emit (!j + 1)
    end
  in
  emit 0
