module Detect = Rt_testability.Detect

type quantization =
  | No_quantization
  | Grid of float
  | Dyadic of int

type options = {
  confidence : float;
  alpha : float;
  max_sweeps : int;
  w_min : float;
  quantize : quantization;
  nf_min : int;
  start : float array option;
  start_jitter : float;
}

let default_options =
  { confidence = 0.95;
    alpha = 0.01;
    max_sweeps = 12;
    w_min = 0.02;
    quantize = Grid 0.05;
    (* Floor on the NORMALIZE prefix the sweep optimizes over.  The bound
       search itself often needs only a few dozen faults, but optimizing
       too small a prefix lets faults just outside it drift hard on larger
       universes (c2670ish/c7552ish lose orders of magnitude with a floor
       of 64), so keep a generous safety margin. *)
    nf_min = 256;
    start = None;
    start_jitter = 0.06 }

type report = {
  weights : float array;
  n_initial : float;
  n_final : float;
  sweeps_run : int;
  history : float list;
  undetectable : int array;
}

let apply_quantization q w =
  match q with
  | No_quantization -> w
  | Grid grid -> Array.map (fun v -> Rt_util.Prob.quantize ~grid v) w
  | Dyadic bits -> Array.map (fun v -> Rt_util.Prob.quantize_dyadic ~bits v) w

let run ?(options = default_options) ?progress oracle =
  let o = options in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  let x =
    match o.start with
    | Some s ->
      if Array.length s <> n_inputs then invalid_arg "Optimize.run: start vector width";
      Array.map (fun v -> Rt_util.Prob.interior o.w_min v) s
    | None ->
      (* The exact symmetric point X = 0.5 is a stationary saddle for
         equality-style cones (moving one operand bit alone changes
         nothing while its partner sits at 0.5), so coordinate descent
         would stall there.  A small deterministic jitter breaks the tie;
         the paper's multi-extremality discussion (§3.1) is precisely why
         a relative optimum from a perturbed start is the goal. *)
      Array.init n_inputs (fun i ->
          let phase = Float.of_int ((i * 37) mod 17) /. 16.0 in
          0.5 +. (o.start_jitter *. ((2.0 *. phase) -. 1.0)))
  in
  let analyse x = Normalize.run ~confidence:o.confidence ~nf_min:o.nf_min (Detect.probs oracle x) in
  (* The reported starting point is the conventional test (exactly 0.5
     everywhere), even though the search starts from the jittered vector. *)
  let n_initial = (analyse (Array.make n_inputs 0.5)).Normalize.n in
  let norm0 = analyse x in
  let best_x = ref (Array.copy x) in
  let best_n = ref n_initial in
  let history = ref [] in
  let sweeps = ref 0 in
  let norm = ref norm0 in
  let continue = ref (o.max_sweeps > 0) in
  while !continue do
    incr sweeps;
    let n_for_sweep =
      let n = !norm.Normalize.n in
      if Float.is_finite n then n else 1e7
    in
    (* PREPARE: the two cofactor queries only need the hardest faults, so
       ask the oracle for exactly those — one [hard] array per sweep keeps
       the oracle's per-subset cone plan cached across all 2n queries. *)
    let hard = Normalize.hard_indices !norm in
    for i = 0 to n_inputs - 1 do
      let saved = x.(i) in
      x.(i) <- 0.0;
      let pf0 = Detect.probs_subset oracle hard x in
      x.(i) <- 1.0;
      let pf1 = Detect.probs_subset oracle hard x in
      x.(i) <- saved;
      let r =
        Minimize.newton ~lo:o.w_min ~hi:(1.0 -. o.w_min) ~n:n_for_sweep ~p0:pf0 ~p1:pf1 saved
      in
      x.(i) <- r.Minimize.y
    done;
    let norm' = analyse x in
    let n_new = norm'.Normalize.n in
    history := n_new :: !history;
    (match progress with Some f -> f ~sweep:!sweeps ~n:n_new | None -> ());
    if n_new < !best_n then begin
      best_n := n_new;
      best_x := Array.copy x
    end;
    let n_old = !norm.Normalize.n in
    norm := norm';
    let improved =
      match (Float.is_finite n_old, Float.is_finite n_new) with
      | false, true -> true
      | false, false -> false
      | true, false -> false
      | true, true -> (n_old -. n_new) /. Float.max 1.0 n_old > o.alpha
    in
    if (not improved) || !sweeps >= o.max_sweeps then continue := false
  done;
  (* Quantise the best weights seen and re-evaluate honestly. *)
  let final_x = apply_quantization o.quantize !best_x in
  let final_norm = analyse final_x in
  (* If quantisation degraded below the unquantised best, report the
     quantised figures anyway — that is what the hardware will do. *)
  { weights = final_x;
    n_initial;
    n_final = final_norm.Normalize.n;
    sweeps_run = !sweeps;
    history = List.rev !history;
    undetectable = final_norm.Normalize.undetectable }

let improvement r = r.n_initial /. Float.max 1.0 r.n_final
