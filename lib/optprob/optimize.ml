module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle

type quantization =
  | No_quantization
  | Grid of float
  | Dyadic of int

type options = {
  confidence : float;
  alpha : float;
  max_sweeps : int;
  w_min : float;
  quantize : quantization;
  nf_min : int;
  start : float array option;
  start_jitter : float;
  objective : Objective.t;
}

let default_options =
  { confidence = 0.95;
    alpha = 0.01;
    max_sweeps = 12;
    w_min = 0.02;
    quantize = Grid 0.05;
    (* Floor on the NORMALIZE prefix the sweep optimizes over.  The bound
       search itself often needs only a few dozen faults, but optimizing
       too small a prefix lets faults just outside it drift hard on larger
       universes (c2670ish/c7552ish lose orders of magnitude with a floor
       of 64), so keep a generous safety margin. *)
    nf_min = 256;
    start = None;
    start_jitter = 0.06;
    objective = Objective.single }

type report = {
  weights : float array;
  n_initial : float;
  n_final : float;
  sweeps_run : int;
  history : float list;
  j_history : float list;
  undetectable : int array;
}

let apply_quantization q w =
  match q with
  | No_quantization -> w
  | Grid grid -> Array.map (fun v -> Rt_util.Prob.quantize ~grid v) w
  | Dyadic bits -> Array.map (fun v -> Rt_util.Prob.quantize_dyadic ~bits v) w

let c_newton_iters = Rt_obs.counter "minimize.newton_iterations"
let c_sweeps = Rt_obs.counter "optimize.sweeps"

(* Objective keys may contain ':' (e.g. "ndetect:2"); metric names stay in
   the [a-zA-Z0-9_.-] alphabet Prometheus-style consumers expect. *)
let metric_key key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> c
      | _ -> '_')
    key

(* J_N over the detectable faults (the population NORMALIZE computes N
   from; p_f = 0 faults would only add a constant).  Every evaluation goes
   through the objective protocol's term — no direct exp here. *)
let j_detectable ~(objective : Objective.t) ~n pfs =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc +. objective.Objective.term ~n ~p else acc)
    0.0 pfs

let run ?(options = default_options) ?progress ?recorder ?keep oracle =
  Rt_obs.with_span ~cat:"phase" "optimize" @@ fun () ->
  let o = options in
  let obj = o.objective in
  let okey = metric_key obj.Objective.key in
  Rt_obs.incr (Rt_obs.counter (Printf.sprintf "objective.%s.runs" okey));
  let h_sweep_us = Rt_obs.histogram (Printf.sprintf "optimize.sweep_us.%s" okey) in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  (match keep with
  | Some k when Array.length k <> Array.length (Detect.faults oracle) ->
    invalid_arg "Optimize.run: keep mask width"
  | _ -> ());
  let x =
    match o.start with
    | Some s ->
      if Array.length s <> n_inputs then invalid_arg "Optimize.run: start vector width";
      Array.map (fun v -> Rt_util.Prob.interior o.w_min v) s
    | None ->
      (* The exact symmetric point X = 0.5 is a stationary saddle for
         equality-style cones (moving one operand bit alone changes
         nothing while its partner sits at 0.5), so coordinate descent
         would stall there.  A small deterministic jitter breaks the tie;
         the paper's multi-extremality discussion (§3.1) is precisely why
         a relative optimum from a perturbed start is the goal. *)
      Array.init n_inputs (fun i ->
          let phase = Float.of_int ((i * 37) mod 17) /. 16.0 in
          0.5 +. (o.start_jitter *. ((2.0 *. phase) -. 1.0)))
  in
  (* Out-of-scope faults (two-stage stage 2 optimizes survivors only) are
     masked to p = 0, which NORMALIZE already treats as
     not-part-of-the-population. *)
  let masked pf =
    match keep with
    | None -> pf
    | Some k -> Array.mapi (fun f p -> if k.(f) then p else 0.0) pf
  in
  (* ANALYSIS + NORMALIZE; keeps the raw p_f vector so the convergence
     trace can report J_N alongside N. *)
  let analyse x =
    let pf = masked (Detect.probs oracle x) in
    (pf, Normalize.run ~objective:obj ~confidence:o.confidence ~nf_min:o.nf_min pf)
  in
  (* The pf summary only matters when someone records it — the histogram of
     detection probabilities over the detectable faults, whose low tail is
     the [nf] hardest faults PREPARE works on. *)
  let pf_summary pf =
    Rt_obs.hsnap_of_samples
      (Array.of_seq (Seq.filter (fun p -> p > 0.0) (Array.to_seq pf)))
  in
  let record ~stage ~sweep ~j ~n ~y ~pf =
    match recorder with
    | Some r ->
      Rt_obs.Convergence.record r ~pf:(pf_summary pf) ~objective:obj.Objective.key
        ~stage ~sweep ~j ~n ~y ()
    | None -> ()
  in
  (* The reported starting point is the conventional test (exactly 0.5
     everywhere), even though the search starts from the jittered vector. *)
  let n_initial = (snd (analyse (Array.make n_inputs 0.5))).Normalize.n in
  let pf0v, norm0 = analyse x in
  record ~stage:"initial" ~sweep:0
    ~j:(j_detectable ~objective:obj ~n:norm0.Normalize.n pf0v)
    ~n:norm0.Normalize.n ~y:x ~pf:pf0v;
  Rt_obs.sample_gc ();
  let best_x = ref (Array.copy x) in
  let best_n = ref n_initial in
  let history = ref [] in
  let j_history = ref [] in
  let sweeps = ref 0 in
  let norm = ref norm0 in
  let continue = ref (o.max_sweeps > 0) in
  while !continue do
    incr sweeps;
    Rt_obs.incr c_sweeps;
    let sweep_t0 = Rt_obs.now_us () in
    (Rt_obs.with_span ~cat:"phase" "sweep" @@ fun () ->
     let n_for_sweep =
       let n = !norm.Normalize.n in
       if Float.is_finite n then n else 1e7
     in
     (* PREPARE: the two cofactor queries only need the hardest faults, so
        ask the oracle for exactly those — one [hard] array (hence one
        cached cone plan) per sweep, and both cofactors from a single
        [cofactor_pair] dispatch.  Engines with a fused implementation
        answer from an incremental base point that follows the sweep's
        one-coordinate moves; [x] is never mutated, so an exception leaves
        no torn weight vector behind. *)
     let hard = Normalize.hard_indices !norm in
     let plan = Oracle.plan oracle hard in
     for i = 0 to n_inputs - 1 do
       let saved = x.(i) in
       let pf0, pf1 =
         Rt_obs.with_span ~cat:"phase" "prepare" @@ fun () ->
         Oracle.cofactor_pair oracle plan ~input:i ~x
       in
       let r =
         Rt_obs.with_span ~cat:"phase" "minimize" @@ fun () ->
         Minimize.newton ~objective:obj ~lo:o.w_min ~hi:(1.0 -. o.w_min) ~n:n_for_sweep
           ~p0:pf0 ~p1:pf1 saved
       in
       Rt_obs.add c_newton_iters r.Minimize.iterations;
       x.(i) <- r.Minimize.y
     done;
     let pf', norm' = analyse x in
     let n_new = norm'.Normalize.n in
     history := n_new :: !history;
     (* The objective the sweep just minimised, evaluated where it ended:
        J at the sweep's working length over the post-sweep probabilities. *)
     let j_new = j_detectable ~objective:obj ~n:n_for_sweep pf' in
     j_history := j_new :: !j_history;
     record ~stage:"sweep" ~sweep:!sweeps ~j:j_new ~n:n_new ~y:x ~pf:pf';
     Rt_obs.sample_gc ();
     Rt_obs.mark "sweep.done"
       ~fields:
         [ ("sweep", string_of_int !sweeps);
           ("objective", obj.Objective.key);
           ("n", Printf.sprintf "%.6g" n_new);
           ("j", Printf.sprintf "%.6g" j_new) ];
     (match progress with Some f -> f ~sweep:!sweeps ~n:n_new | None -> ());
     if n_new < !best_n then begin
       best_n := n_new;
       best_x := Array.copy x
     end;
     let n_old = !norm.Normalize.n in
     norm := norm';
     let improved =
       match (Float.is_finite n_old, Float.is_finite n_new) with
       | false, true -> true
       | false, false -> false
       | true, false -> false
       | true, true -> (n_old -. n_new) /. Float.max 1.0 n_old > o.alpha
     in
     if (not improved) || !sweeps >= o.max_sweeps then continue := false);
    Rt_obs.observe h_sweep_us (Rt_obs.now_us () -. sweep_t0)
  done;
  (* Quantise the best weights seen and re-evaluate honestly. *)
  let final_x = apply_quantization o.quantize !best_x in
  let pf_final, final_norm = analyse final_x in
  record ~stage:"final" ~sweep:!sweeps
    ~j:(j_detectable ~objective:obj ~n:final_norm.Normalize.n pf_final)
    ~n:final_norm.Normalize.n ~y:final_x ~pf:pf_final;
  Rt_obs.sample_gc ();
  (* If quantisation degraded below the unquantised best, report the
     quantised figures anyway — that is what the hardware will do. *)
  { weights = final_x;
    n_initial;
    n_final = final_norm.Normalize.n;
    sweeps_run = !sweeps;
    history = List.rev !history;
    j_history = List.rev !j_history;
    undetectable = final_norm.Normalize.undetectable }

let improvement r = r.n_initial /. Float.max 1.0 r.n_final

(* ---------------------------------------------------------------------- *)
(* Two-stage adaptive design. *)

type candidate = {
  cand_n1 : int;
  cand_survivors : int;
  cand_n2 : float;
  cand_total : float;
}

type two_stage_report = {
  ts_stage1 : report;
  ts_n1 : int;
  ts_survivors : int;
  ts_stage2 : report option;
  ts_n2 : float;
  ts_total : float;
  ts_single_n : float;
  ts_weights : float array;
  ts_candidates : candidate list;
}

let default_n1_grid = [ 0.0; 0.1; 0.25; 0.5; 0.75 ]

let two_stage ?(options = default_options) ?(n1_grid = default_n1_grid) ?n1
    ?(seed = 0x2757) ?(sim_cap = 65536) ?jobs ?block_words ?progress ?recorder oracle =
  Rt_obs.with_span ~cat:"phase" "two-stage" @@ fun () ->
  let o = options in
  let circuit = Detect.circuit oracle in
  let faults = Detect.faults oracle in
  let n_faults = Array.length faults in
  (* Stage 1: the ordinary single-stage design over the whole universe. *)
  let stage1 = run ~options ?progress ?recorder oracle in
  let n_single = stage1.n_final in
  let pf1 = Detect.probs oracle stage1.weights in
  let detectable = Array.map (fun p -> p > 0.0) pf1 in
  let n_detectable = Array.fold_left (fun a d -> if d then a + 1 else a) 0 detectable in
  let candidates =
    match n1 with
    | Some v -> [ max 0 v ]
    | None ->
      let base = if Float.is_finite n_single then n_single else 0.0 in
      List.map (fun f -> Float.to_int (Float.ceil (f *. base))) n1_grid
      |> List.filter (fun v -> v >= 0 && v <= sim_cap)
      |> List.cons 0 |> List.sort_uniq compare
  in
  let evaluate cand_n1 =
    if cand_n1 = 0 then
      (* Degenerate split: no stage-1 patterns means every detectable
         fault survives into stage 2, whose optimization problem is then
         the stage-1 problem itself — the design collapses to the
         single-stage one.  Keeping this candidate in the grid makes
         "adaptive <= single-stage" hold by construction. *)
      ({ cand_n1 = 0; cand_survivors = n_detectable; cand_n2 = n_single;
         cand_total = n_single },
       None)
    else begin
      (* Deterministic ppsfp pass: which faults survive N1 patterns drawn
         with the stage-1 weights? *)
      let rng = Rt_util.Rng.create (seed + cand_n1) in
      let stats =
        Rt_sim.Fault_sim.simulate ?jobs ?block_words ~drop:true circuit faults
          ~source:(Rt_sim.Pattern.weighted rng stage1.weights) ~n_patterns:cand_n1
      in
      let keep =
        Array.init n_faults (fun f ->
            detectable.(f) && stats.Rt_sim.Fault_sim.first_detect.(f) < 0)
      in
      let survivors = Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep in
      if survivors = 0 then
        ({ cand_n1; cand_survivors = 0; cand_n2 = 0.0; cand_total = Float.of_int cand_n1 },
         None)
      else begin
        (* Stage 2: re-run MINIMIZE/OPTIMIZE on the survivors only, warm
           started from the stage-1 weights. *)
        let r2 = run ~options:{ o with start = Some stage1.weights } ~keep oracle in
        let n2 = r2.n_final in
        let total =
          if Float.is_finite n2 then Float.of_int cand_n1 +. n2 else Float.infinity
        in
        ({ cand_n1; cand_survivors = survivors; cand_n2 = n2; cand_total = total },
         Some r2)
      end
    end
  in
  let evaluated = List.map evaluate candidates in
  let best =
    List.fold_left
      (fun acc (c, r2) ->
        match acc with
        | None -> Some (c, r2)
        | Some (b, _) when c.cand_total < b.cand_total -> Some (c, r2)
        | Some _ -> acc)
      None evaluated
  in
  let best_c, best_r2 =
    match best with Some b -> b | None -> assert false (* candidates never empty *)
  in
  Rt_obs.mark "two_stage.chosen"
    ~fields:
      [ ("n1", string_of_int best_c.cand_n1);
        ("survivors", string_of_int best_c.cand_survivors);
        ("total", Printf.sprintf "%.6g" best_c.cand_total);
        ("single", Printf.sprintf "%.6g" n_single) ];
  { ts_stage1 = stage1;
    ts_n1 = best_c.cand_n1;
    ts_survivors = best_c.cand_survivors;
    ts_stage2 = best_r2;
    ts_n2 = best_c.cand_n2;
    ts_total = best_c.cand_total;
    ts_single_n = n_single;
    ts_weights =
      (match best_r2 with Some r -> r.weights | None -> stage1.weights);
    ts_candidates = List.map fst evaluated }
