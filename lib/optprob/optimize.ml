module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle

type quantization =
  | No_quantization
  | Grid of float
  | Dyadic of int

type options = {
  confidence : float;
  alpha : float;
  max_sweeps : int;
  w_min : float;
  quantize : quantization;
  nf_min : int;
  start : float array option;
  start_jitter : float;
}

let default_options =
  { confidence = 0.95;
    alpha = 0.01;
    max_sweeps = 12;
    w_min = 0.02;
    quantize = Grid 0.05;
    (* Floor on the NORMALIZE prefix the sweep optimizes over.  The bound
       search itself often needs only a few dozen faults, but optimizing
       too small a prefix lets faults just outside it drift hard on larger
       universes (c2670ish/c7552ish lose orders of magnitude with a floor
       of 64), so keep a generous safety margin. *)
    nf_min = 256;
    start = None;
    start_jitter = 0.06 }

type report = {
  weights : float array;
  n_initial : float;
  n_final : float;
  sweeps_run : int;
  history : float list;
  j_history : float list;
  undetectable : int array;
}

let apply_quantization q w =
  match q with
  | No_quantization -> w
  | Grid grid -> Array.map (fun v -> Rt_util.Prob.quantize ~grid v) w
  | Dyadic bits -> Array.map (fun v -> Rt_util.Prob.quantize_dyadic ~bits v) w

let c_newton_iters = Rt_obs.counter "minimize.newton_iterations"
let c_sweeps = Rt_obs.counter "optimize.sweeps"

(* J_N over the detectable faults (the population NORMALIZE computes N
   from; p_f = 0 faults would only add a constant). *)
let j_detectable ~n pfs =
  Array.fold_left (fun acc p -> if p > 0.0 then acc +. Float.exp (-.n *. p) else acc) 0.0 pfs

let run ?(options = default_options) ?progress ?recorder oracle =
  Rt_obs.with_span ~cat:"phase" "optimize" @@ fun () ->
  let o = options in
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  let x =
    match o.start with
    | Some s ->
      if Array.length s <> n_inputs then invalid_arg "Optimize.run: start vector width";
      Array.map (fun v -> Rt_util.Prob.interior o.w_min v) s
    | None ->
      (* The exact symmetric point X = 0.5 is a stationary saddle for
         equality-style cones (moving one operand bit alone changes
         nothing while its partner sits at 0.5), so coordinate descent
         would stall there.  A small deterministic jitter breaks the tie;
         the paper's multi-extremality discussion (§3.1) is precisely why
         a relative optimum from a perturbed start is the goal. *)
      Array.init n_inputs (fun i ->
          let phase = Float.of_int ((i * 37) mod 17) /. 16.0 in
          0.5 +. (o.start_jitter *. ((2.0 *. phase) -. 1.0)))
  in
  (* ANALYSIS + NORMALIZE; keeps the raw p_f vector so the convergence
     trace can report J_N alongside N. *)
  let analyse x =
    let pf = Detect.probs oracle x in
    (pf, Normalize.run ~confidence:o.confidence ~nf_min:o.nf_min pf)
  in
  (* The pf summary only matters when someone records it — the histogram of
     detection probabilities over the detectable faults, whose low tail is
     the [nf] hardest faults PREPARE works on. *)
  let pf_summary pf =
    Rt_obs.hsnap_of_samples
      (Array.of_seq (Seq.filter (fun p -> p > 0.0) (Array.to_seq pf)))
  in
  let record ~stage ~sweep ~j ~n ~y ~pf =
    match recorder with
    | Some r ->
      Rt_obs.Convergence.record r ~pf:(pf_summary pf) ~stage ~sweep ~j ~n ~y ()
    | None -> ()
  in
  (* The reported starting point is the conventional test (exactly 0.5
     everywhere), even though the search starts from the jittered vector. *)
  let n_initial = (snd (analyse (Array.make n_inputs 0.5))).Normalize.n in
  let pf0v, norm0 = analyse x in
  record ~stage:"initial" ~sweep:0 ~j:(j_detectable ~n:norm0.Normalize.n pf0v)
    ~n:norm0.Normalize.n ~y:x ~pf:pf0v;
  Rt_obs.sample_gc ();
  let best_x = ref (Array.copy x) in
  let best_n = ref n_initial in
  let history = ref [] in
  let j_history = ref [] in
  let sweeps = ref 0 in
  let norm = ref norm0 in
  let continue = ref (o.max_sweeps > 0) in
  while !continue do
    incr sweeps;
    Rt_obs.incr c_sweeps;
    Rt_obs.with_span ~cat:"phase" "sweep" @@ fun () ->
    let n_for_sweep =
      let n = !norm.Normalize.n in
      if Float.is_finite n then n else 1e7
    in
    (* PREPARE: the two cofactor queries only need the hardest faults, so
       ask the oracle for exactly those — one [hard] array (hence one
       cached cone plan) per sweep, and both cofactors from a single
       [cofactor_pair] dispatch.  Engines with a fused implementation
       answer from an incremental base point that follows the sweep's
       one-coordinate moves; [x] is never mutated, so an exception leaves
       no torn weight vector behind. *)
    let hard = Normalize.hard_indices !norm in
    let plan = Oracle.plan oracle hard in
    for i = 0 to n_inputs - 1 do
      let saved = x.(i) in
      let pf0, pf1 =
        Rt_obs.with_span ~cat:"phase" "prepare" @@ fun () ->
        Oracle.cofactor_pair oracle plan ~input:i ~x
      in
      let r =
        Rt_obs.with_span ~cat:"phase" "minimize" @@ fun () ->
        Minimize.newton ~lo:o.w_min ~hi:(1.0 -. o.w_min) ~n:n_for_sweep ~p0:pf0 ~p1:pf1 saved
      in
      Rt_obs.add c_newton_iters r.Minimize.iterations;
      x.(i) <- r.Minimize.y
    done;
    let pf', norm' = analyse x in
    let n_new = norm'.Normalize.n in
    history := n_new :: !history;
    (* The objective the sweep just minimised, evaluated where it ended:
       J at the sweep's working length over the post-sweep probabilities. *)
    let j_new = j_detectable ~n:n_for_sweep pf' in
    j_history := j_new :: !j_history;
    record ~stage:"sweep" ~sweep:!sweeps ~j:j_new ~n:n_new ~y:x ~pf:pf';
    Rt_obs.sample_gc ();
    Rt_obs.mark "sweep.done"
      ~fields:
        [ ("sweep", string_of_int !sweeps);
          ("n", Printf.sprintf "%.6g" n_new);
          ("j", Printf.sprintf "%.6g" j_new) ];
    (match progress with Some f -> f ~sweep:!sweeps ~n:n_new | None -> ());
    if n_new < !best_n then begin
      best_n := n_new;
      best_x := Array.copy x
    end;
    let n_old = !norm.Normalize.n in
    norm := norm';
    let improved =
      match (Float.is_finite n_old, Float.is_finite n_new) with
      | false, true -> true
      | false, false -> false
      | true, false -> false
      | true, true -> (n_old -. n_new) /. Float.max 1.0 n_old > o.alpha
    in
    if (not improved) || !sweeps >= o.max_sweeps then continue := false
  done;
  (* Quantise the best weights seen and re-evaluate honestly. *)
  let final_x = apply_quantization o.quantize !best_x in
  let pf_final, final_norm = analyse final_x in
  record ~stage:"final" ~sweep:!sweeps
    ~j:(j_detectable ~n:final_norm.Normalize.n pf_final)
    ~n:final_norm.Normalize.n ~y:final_x ~pf:pf_final;
  Rt_obs.sample_gc ();
  (* If quantisation degraded below the unquantised best, report the
     quantised figures anyway — that is what the hardware will do. *)
  { weights = final_x;
    n_initial;
    n_final = final_norm.Normalize.n;
    sweeps_run = !sweeps;
    history = List.rev !history;
    j_history = List.rev !j_history;
    undetectable = final_norm.Normalize.undetectable }

let improvement r = r.n_initial /. Float.max 1.0 r.n_final
