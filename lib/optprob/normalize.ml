type t = {
  sorted_idx : int array;
  undetectable : int array;
  n : float;
  nf : int;
}

let run ?(objective = Objective.single) ?(confidence = 0.95) ?(nf_min = 8) pfs =
  if confidence <= 0.0 || confidence >= 1.0 then invalid_arg "Normalize.run: confidence";
  Rt_obs.with_span ~cat:"phase" "normalize" @@ fun () ->
  let all = Array.init (Array.length pfs) Fun.id in
  let undetectable = Array.of_list (List.filter (fun i -> pfs.(i) <= 0.0) (Array.to_list all)) in
  (* The paper's SORT step: faults ascending by detection probability. *)
  let sorted_idx =
    Rt_obs.with_span ~cat:"phase" "sort" @@ fun () ->
    Array.to_list all
    |> List.filter (fun i -> pfs.(i) > 0.0)
    |> List.sort (fun a b -> Float.compare pfs.(a) pfs.(b))
    |> Array.of_list
  in
  let n_det = Array.length sorted_idx in
  if n_det = 0 then { sorted_idx; undetectable; n = Float.infinity; nf = 0 }
  else begin
    let q = -.Float.log confidence in
    let p i = pfs.(sorted_idx.(i)) in
    let term = objective.Objective.term in
    (* J_M bounds from a z-prefix; z is 1-based count.  Validity rests on
       the protocol's monotonicity contract: the per-fault miss term is
       decreasing in p, so the faults beyond the sorted prefix each
       contribute at most the term of fault z. *)
    let l z m =
      let acc = ref 0.0 in
      for i = 0 to z - 1 do acc := !acc +. term ~n:m ~p:(p i) done;
      !acc
    in
    let u z m =
      if z >= n_det then l z m
      else l z m +. (Float.of_int (n_det - z) *. term ~n:m ~p:(p z))
    in
    (* Decide J_M <= q using as small a prefix as possible; returns
       (meets, z_used). *)
    let decide m =
      let rec go z =
        if l z m > q then (false, z)
        else if u z m <= q then (true, z)
        else if z >= n_det then (true, z)
        else go (min n_det (2 * z))
      in
      go (min n_det (max 1 nf_min))
    in
    let rec grow m = if fst (decide m) || m > 1e15 then m else grow (m *. 2.0) in
    let hi = grow 1.0 in
    if not (fst (decide hi)) then
      { sorted_idx; undetectable; n = Float.infinity; nf = min n_det nf_min }
    else begin
      let rec bisect lo hi =
        if hi -. lo <= Float.max 0.5 (1e-9 *. hi) then hi
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if fst (decide mid) then bisect lo mid else bisect mid hi
        end
      in
      let n = Float.round (bisect 0.0 hi +. 0.49) in
      let _, z = decide n in
      (* Relevant faults: everything whose contribution at N is within a
         factor exp(-10) of the hardest fault's would still be noise; the
         paper keeps the z the bound search needed.  Enforce the floor. *)
      let nf = max (min n_det nf_min) z in
      { sorted_idx; undetectable; n; nf }
    end
  end

let hard_indices t = Array.sub t.sorted_idx 0 t.nf
