(** One-dimensional minimisation of the objective along a coordinate —
    the paper's MINIMIZE procedure (eq. 15).

    For the paper objective, [J_N(X, y|i)] is strictly convex in [y]
    (Lemma 3) and, because the input stuck-at faults are in [F], diverges
    from the optimum towards the boundary (Lemma 2), so the minimum over
    [[lo, hi]] is unique: Newton iteration [y <- y - J'/J''] with a
    bisection safeguard always converges to it.  Other {!Objective}
    instances are convex on their contract region; the bisection safeguard
    keeps the search convergent to a coordinate-local minimum outside
    it. *)

type result = {
  y : float;  (** the minimising weight *)
  objective : float;  (** [J_N] restricted to the scrutinised faults at [y] *)
  iterations : int;
}

val newton :
  ?objective:Objective.t ->
  ?lo:float ->
  ?hi:float ->
  ?tol:float ->
  ?max_iter:int ->
  n:float ->
  p0:float array ->
  p1:float array ->
  float ->
  result
(** [newton ~n ~p0 ~p1 y_start] minimises over [[lo, hi]] (default
    [[0.01, 0.99]], [tol = 1e-6], [max_iter = 60]).  [p0]/[p1] are the
    cofactor detection probabilities of the relevant faults.  [objective]
    (default {!Objective.single}) supplies the restricted value and its
    derivatives. *)
