(** The paper's SORT and NORMALIZE procedures (§4).

    Given the fault detection probabilities, NORMALIZE finds the minimum
    test length [N] whose objective value meets the confidence target, and
    the number [nf] of {e relevant} (hardest) faults: the paper's
    observation (1) shows faults much easier than the hardest contribute
    nothing numerically to [J_N], so one optimisation step only needs the
    [nf]-prefix of the sorted fault list.

    Bounds on [J_M] from a sorted ascending prefix of [z] faults, with
    [F] the objective's per-fault miss term ([exp] for the paper
    objective; any {!Objective.t} whose term is decreasing in [p]
    and [M] works):
    [l(z,M) = sum_{i<=z} F(p_i M)]         (lower bound)
    [u(z,M) = l(z,M) + (n-z) F(p_{z+1} M)] (upper bound)
    Interval section on [M] with adaptive [z] yields [N] and [nf]. *)

type t = {
  sorted_idx : int array;
      (** Fault indices sorted by ascending detection probability, zero
          (undetectable-as-analysed) probabilities excluded. *)
  undetectable : int array;
      (** Fault indices with [p_f = 0] under the analysis — excluded from
          [n] (for an exact engine these are proven redundant). *)
  n : float;  (** Minimal test length; [infinity] when nothing detectable. *)
  nf : int;  (** Number of relevant (hardest) faults at [N]. *)
}

val run : ?objective:Objective.t -> ?confidence:float -> ?nf_min:int -> float array -> t
(** [run pfs] with default confidence 0.95 and at least [nf_min] (default 8)
    relevant faults retained.  [objective] (default {!Objective.single})
    supplies the per-fault miss term the bound search sums — an n-detection
    objective needs a longer test to drive the same faults below the
    confidence budget, so [n] depends on it. *)

val hard_indices : t -> int array
(** The [nf] relevant fault indices (prefix of [sorted_idx]). *)
