(* The paper's single-detection objective, kept as plain module-level
   functions: these exact float expressions are the reference semantics the
   [single] protocol instance must reproduce bit-for-bit. *)

let value ~n pfs = Array.fold_left (fun acc p -> acc +. Float.exp (-.n *. p)) 0.0 pfs

let value_along ~n ~p0 ~p1 y =
  let acc = ref 0.0 in
  for f = 0 to Array.length p0 - 1 do
    let p = p0.(f) +. (y *. (p1.(f) -. p0.(f))) in
    acc := !acc +. Float.exp (-.n *. p)
  done;
  !acc

let derivatives_along ~n ~p0 ~p1 y =
  let d1 = ref 0.0 and d2 = ref 0.0 in
  for f = 0 to Array.length p0 - 1 do
    let b = p1.(f) -. p0.(f) in
    let p = p0.(f) +. (y *. b) in
    let e = Float.exp (-.n *. p) in
    d1 := !d1 -. (n *. b *. e);
    d2 := !d2 +. (n *. b *. n *. b *. e)
  done;
  (!d1, !d2)

let confidence ~n pfs = Float.exp (-.value ~n pfs)

type t = {
  key : string;
  label : string;
  term : n:float -> p:float -> float;
  value : n:float -> float array -> float;
  value_along : n:float -> p0:float array -> p1:float array -> float -> float;
  derivatives_along :
    n:float -> p0:float array -> p1:float array -> float -> float * float;
  confidence : n:float -> float array -> float;
}

let single =
  { key = "single";
    label = "single detection, J = sum exp(-N p_f) (paper eq. 9/10)";
    term = (fun ~n ~p -> Float.exp (-.n *. p));
    value;
    value_along;
    derivatives_along;
    confidence }

(* n-detection: a fault's detections over N weighted-random patterns are
   binomial(N, p_f); in the regime NORMALIZE produces (N large, p_f small,
   N p_f moderate) the Poisson limit with mean lambda = N p_f is the
   standard and numerically stable approximation.  The per-fault term is
   the Poisson lower tail

     F_k(lambda) = P(detections < k) = exp(-lambda) sum_{j<k} lambda^j / j!

   with derivatives in lambda (the sums telescope):

     F_k'(lambda)  = -exp(-lambda) lambda^(k-1) / (k-1)!
     F_k''(lambda) =  exp(-lambda) lambda^(k-2) (lambda - (k-1)) / (k-1)!

   Chain rule along a coordinate (lambda = n p, p affine in y with slope
   b = p1 - p0, so dlambda/dy = n b):

     dJ/dy   = sum_f (n b_f)   F_k'(lambda_f)
     d2J/dy2 = sum_f (n b_f)^2 F_k''(lambda_f)

   For k = 1 this collapses to exp(-lambda) — the paper objective. *)

(* F_k(lambda) and its first two lambda-derivatives, from one shared
   [exp (-lambda)] and a running power/factorial term. *)
let poisson_tail ~k lambda =
  let e = Float.exp (-.lambda) in
  if k = 1 then (e, -.e, e)
  else begin
    (* t_j = lambda^j / j!, accumulated up to j = k-1. *)
    let t = ref 1.0 in
    let sum = ref 1.0 in
    for j = 1 to k - 1 do
      t := !t *. lambda /. Float.of_int j;
      sum := !sum +. !t
    done;
    (* After the loop, !t = lambda^(k-1)/(k-1)!. *)
    let tail = e *. !sum in
    let d1 = -.(e *. !t) in
    let d2 =
      if lambda > 0.0 then e *. !t /. lambda *. (lambda -. Float.of_int (k - 1))
      else if k = 2 then -.e (* lambda^0 (lambda - 1) -> -1 at lambda = 0 *)
      else 0.0
    in
    (tail, d1, d2)
  end

let n_detect ~k =
  if k < 1 then invalid_arg "Objective.n_detect: k must be >= 1";
  let term ~n ~p =
    let tail, _, _ = poisson_tail ~k (n *. p) in
    tail
  in
  let value ~n pfs = Array.fold_left (fun acc p -> acc +. term ~n ~p) 0.0 pfs in
  let value_along ~n ~p0 ~p1 y =
    let acc = ref 0.0 in
    for f = 0 to Array.length p0 - 1 do
      let p = p0.(f) +. (y *. (p1.(f) -. p0.(f))) in
      acc := !acc +. term ~n ~p
    done;
    !acc
  in
  let derivatives_along ~n ~p0 ~p1 y =
    let d1 = ref 0.0 and d2 = ref 0.0 in
    for f = 0 to Array.length p0 - 1 do
      let b = p1.(f) -. p0.(f) in
      let p = p0.(f) +. (y *. b) in
      let nb = n *. b in
      let _, f1, f2 = poisson_tail ~k (n *. p) in
      d1 := !d1 +. (nb *. f1);
      d2 := !d2 +. (nb *. nb *. f2)
    done;
    (!d1, !d2)
  in
  let confidence ~n pfs = Float.exp (-.value ~n pfs) in
  { key = Printf.sprintf "ndetect:%d" k;
    label = Printf.sprintf "%d-detection, J = sum P(detections < %d) (Poisson tail)" k k;
    term;
    value;
    value_along;
    derivatives_along;
    confidence }
