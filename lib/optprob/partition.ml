module Detect = Rt_testability.Detect
module Oracle = Rt_testability.Oracle

type split = {
  groups : int array array;
  weights : float array array;
  n_single : float;
  n_parts : float array;
  n_total : float;
}

let preference_vectors oracle ~hard x =
  let n_inputs = Array.length (Rt_circuit.Netlist.inputs (Detect.circuit oracle)) in
  let vectors = Array.map (fun _ -> Array.make n_inputs 0.0) hard in
  (* Only the hard faults' cofactors are read, so query through a subset
     plan and the fused cofactor path instead of 2n full-universe runs;
     results index by position in [hard]. *)
  let plan = Oracle.plan oracle hard in
  for i = 0 to n_inputs - 1 do
    let pf0, pf1 = Oracle.cofactor_pair oracle plan ~input:i ~x in
    Array.iteri (fun h _ -> vectors.(h).(i) <- pf1.(h) -. pf0.(h)) hard
  done;
  vectors

let cube_distance ?backtrack_limit c fa fb =
  match
    ( Rt_atpg.Podem.test_cube ?backtrack_limit c fa,
      Rt_atpg.Podem.test_cube ?backtrack_limit c fb )
  with
  | Some ca, Some cb ->
    let d = ref 0 in
    Array.iteri
      (fun i va ->
        match (va, cb.(i)) with
        | Rt_atpg.Tristate.T, Rt_atpg.Tristate.F | Rt_atpg.Tristate.F, Rt_atpg.Tristate.T ->
          incr d
        | (Rt_atpg.Tristate.T | Rt_atpg.Tristate.F | Rt_atpg.Tristate.X), _ -> ())
      ca;
    Some !d
  | None, _ | _, None -> None

let most_antagonistic_pair ?backtrack_limit c faults =
  let n = Array.length faults in
  let cubes = Array.map (fun f -> Rt_atpg.Podem.test_cube ?backtrack_limit c f) faults in
  let best = ref None in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      match (cubes.(a), cubes.(b)) with
      | Some ca, Some cb ->
        let d = ref 0 in
        Array.iteri
          (fun i va ->
            match (va, cb.(i)) with
            | Rt_atpg.Tristate.T, Rt_atpg.Tristate.F
            | Rt_atpg.Tristate.F, Rt_atpg.Tristate.T -> incr d
            | (Rt_atpg.Tristate.T | Rt_atpg.Tristate.F | Rt_atpg.Tristate.X), _ -> ())
          ca;
        (match !best with
         | Some (_, _, bd) when bd >= !d -> ()
         | Some _ | None -> best := Some (a, b, !d))
      | None, _ | _, None -> ()
    done
  done;
  !best

let antagonism a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i ai ->
      dot := !dot +. (ai *. b.(i));
      na := !na +. (ai *. ai);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  if !na = 0.0 || !nb = 0.0 then 0.0 else -. !dot /. sqrt (!na *. !nb)

let split ?(options = Optimize.default_options) ?(k = 2) ?hard_threshold
    ?(sub_engine = Detect.Bdd_exact { node_limit = 500_000 }) oracle =
  if k < 2 then invalid_arg "Partition.split: k must be >= 2";
  let single = Optimize.run ~options oracle in
  let pf = Detect.probs oracle single.Optimize.weights in
  let norm = Normalize.run ~confidence:options.Optimize.confidence pf in
  let hard =
    match hard_threshold with
    | Some t ->
      Array.of_list
        (List.filter (fun i -> pf.(i) > 0.0 && pf.(i) < t)
           (List.init (Array.length pf) Fun.id))
    | None -> Normalize.hard_indices norm
  in
  if Array.length hard < k then
    (* Nothing to split: degenerate result with one group. *)
    { groups = [| hard |];
      weights = [| single.Optimize.weights |];
      n_single = single.Optimize.n_final;
      n_parts = [| single.Optimize.n_final |];
      n_total = single.Optimize.n_final }
  else begin
    let vectors = preference_vectors oracle ~hard single.Optimize.weights in
    let nh = Array.length hard in
    (* Farthest-point seeding on antagonism, then assignment by similarity
       (i.e. least antagonism) to the seeds. *)
    let seed0 = ref 0 and seed1 = ref 1 and worst = ref Float.neg_infinity in
    for a = 0 to nh - 1 do
      for b = a + 1 to nh - 1 do
        let ant = antagonism vectors.(a) vectors.(b) in
        if ant > !worst then begin
          worst := ant;
          seed0 := a;
          seed1 := b
        end
      done
    done;
    let seeds = ref [ !seed1; !seed0 ] in
    while List.length !seeds < k do
      (* Next seed: maximises the minimal antagonism... we want maximal
         antagonism to all current seeds (farthest point). *)
      let best = ref (-1) and best_score = ref Float.neg_infinity in
      for cand = 0 to nh - 1 do
        if not (List.mem cand !seeds) then begin
          let score =
            List.fold_left
              (fun acc s -> Float.min acc (antagonism vectors.(cand) vectors.(s)))
              Float.infinity !seeds
          in
          if score > !best_score then begin
            best_score := score;
            best := cand
          end
        end
      done;
      seeds := !best :: !seeds
    done;
    let seeds = Array.of_list (List.rev !seeds) in
    let assignment = Array.make nh 0 in
    for h = 0 to nh - 1 do
      let best = ref 0 and best_ant = ref Float.infinity in
      Array.iteri
        (fun gi s ->
          let ant = antagonism vectors.(h) vectors.(s) in
          if ant < !best_ant then begin
            best_ant := ant;
            best := gi
          end)
        seeds;
      assignment.(h) <- !best
    done;
    let groups =
      Array.init k (fun gi ->
          hard |> Array.to_list
          |> List.filteri (fun h _ -> assignment.(h) = gi)
          |> Array.of_list)
    in
    let groups = Array.of_list (List.filter (fun g -> Array.length g > 0) (Array.to_list groups)) in
    (* Per group: optimise for the group's hard faults plus every easy
       fault (easy faults are cheap under any distribution; including them
       keeps each part an honest standalone test). *)
    let c = Detect.circuit oracle in
    let all_faults = Detect.faults oracle in
    let hard_set = Hashtbl.create 64 in
    Array.iter (fun f -> Hashtbl.replace hard_set f ()) hard;
    let easy_idx =
      List.filter (fun i -> not (Hashtbl.mem hard_set i)) (List.init (Array.length all_faults) Fun.id)
    in
    let engine_of_group group =
      let idxs = Array.append group (Array.of_list easy_idx) in
      let faults = Array.map (fun i -> all_faults.(i)) idxs in
      Detect.make sub_engine c faults
    in
    let reports =
      Array.map
        (fun group ->
          let sub_oracle = engine_of_group group in
          Optimize.run ~options sub_oracle)
        groups
    in
    let weights = Array.map (fun r -> r.Optimize.weights) reports in
    let n_parts = Array.map (fun r -> r.Optimize.n_final) reports in
    { groups;
      weights;
      n_single = single.Optimize.n_final;
      n_parts;
      n_total = Array.fold_left ( +. ) 0.0 n_parts }
  end
