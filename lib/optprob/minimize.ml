type result = {
  y : float;
  objective : float;
  iterations : int;
}

let h_iters = Rt_obs.histogram "minimize.newton_iterations"

let newton ?(objective = Objective.single) ?(lo = 0.01) ?(hi = 0.99) ?(tol = 1e-6)
    ?(max_iter = 60) ~n ~p0 ~p1 y_start =
  if lo >= hi then invalid_arg "Minimize.newton: empty interval";
  let observed r =
    Rt_obs.observe h_iters (Float.of_int r.iterations);
    r
  in
  observed
  @@
  let deriv y = objective.Objective.derivatives_along ~n ~p0 ~p1 y in
  let value y = objective.Objective.value_along ~n ~p0 ~p1 y in
  (* Convexity: J' is non-decreasing on the contract region (globally for
     the paper objective).  Track a bracket [a, b] with J'(a) <= 0 <= J'(b)
     when one exists; fall back to the boundary when J' keeps one sign over
     the whole interval. *)
  let d_lo, _ = deriv lo in
  let d_hi, _ = deriv hi in
  if d_lo >= 0.0 then { y = lo; objective = value lo; iterations = 0 }
  else if d_hi <= 0.0 then { y = hi; objective = value hi; iterations = 0 }
  else begin
    let a = ref lo and b = ref hi in
    let y = ref (Rt_util.Prob.clamp ~lo ~hi y_start) in
    let iters = ref 0 in
    let finished = ref false in
    while (not !finished) && !iters < max_iter do
      incr iters;
      let d1, d2 = deriv !y in
      if d1 <= 0.0 then a := Float.max !a !y else b := Float.min !b !y;
      let step_ok = d2 > 0.0 in
      let candidate = if step_ok then !y -. (d1 /. d2) else Float.nan in
      let next =
        if step_ok && candidate > !a && candidate < !b then candidate
        else 0.5 *. (!a +. !b)
      in
      if Float.abs (next -. !y) < tol || !b -. !a < tol then finished := true;
      y := next
    done;
    { y = !y; objective = value !y; iterations = !iters }
  end
