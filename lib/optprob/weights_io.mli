(** Reading and writing weight vectors (optimized input probabilities).

    Format: one [input_name value] pair per line, [#] comments allowed —
    the machine-readable version of the paper's appendix listings. *)

val save : string -> Rt_circuit.Netlist.t -> float array -> unit

val load : string -> Rt_circuit.Netlist.t -> float array
(** Missing inputs default to 0.5; unknown names raise [Failure]. *)

val pp : Rt_circuit.Netlist.t -> Format.formatter -> float array -> unit
(** Compact appendix-style listing, grouping equal consecutive weights. *)
