(** The paper's OPTIMIZE procedure (§4): cyclic per-input minimisation.

    Each sweep fixes the current test length [N] (from NORMALIZE), then for
    every primary input runs PREPARE — two ANALYSIS calls giving the
    cofactor detection probabilities [p_f(X,0|i)] and [p_f(X,1|i)] of the
    [nf] hardest faults — and MINIMIZE, replacing [x_i] by the unique
    coordinate optimum.  Sweeps repeat while the required test length keeps
    improving by more than the user-defined threshold (the paper's "a"). *)

type quantization =
  | No_quantization
  | Grid of float  (** round to multiples, e.g. 0.05 as the paper's appendix *)
  | Dyadic of int  (** round to k/2^bits, realisable by LFSR weighting logic *)

type options = {
  confidence : float;  (** target confidence of the random test (0.95) *)
  alpha : float;  (** stop when relative improvement of N falls below (0.01) *)
  max_sweeps : int;  (** hard sweep cap (12) *)
  w_min : float;  (** weights stay in [w_min, 1-w_min] (0.02, Lemma 2) *)
  quantize : quantization;  (** applied after convergence (Grid 0.05) *)
  nf_min : int;
      (** lower bound on the relevant-fault prefix (256).  NORMALIZE's own
          prefix can be very small; minimising against only a handful of
          hardest faults lets the sweep wreck the detection probabilities
          of the next tier and stall.  A few hundred faults in scope keeps
          the coordinate optimum balanced at negligible extra cost (the
          expensive part, the two ANALYSIS calls per input, is unchanged). *)
  start : float array option;  (** initial weights (default: jittered 0.5) *)
  start_jitter : float;
      (** amplitude of the deterministic perturbation around 0.5 used when
          [start] is [None] (0.06).  The exact symmetric point is a saddle
          for equality-comparator cones — coordinate descent needs the tie
          broken. *)
}

val default_options : options

val apply_quantization : quantization -> float array -> float array
(** Project a weight vector onto a grid (used internally after the sweep;
    exposed for ablation studies). *)

type report = {
  weights : float array;  (** optimised (and quantised) input probabilities *)
  n_initial : float;  (** required length at the starting weights *)
  n_final : float;  (** required length at [weights] *)
  sweeps_run : int;
  history : float list;  (** required length after each sweep, oldest first *)
  j_history : float list;
      (** objective value after each sweep, oldest first, aligned with
          [history]: [J_N] over the detectable faults at the sweep's
          working test length (the [N] the sweep's MINIMIZE steps used) —
          the quantity the sweep actually descended. *)
  undetectable : int array;  (** faults with [p_f = 0] at the final weights *)
}

val run :
  ?options:options ->
  ?progress:(sweep:int -> n:float -> unit) ->
  ?recorder:Rt_obs.Convergence.t ->
  Rt_testability.Detect.oracle ->
  report
(** Optimise the input probabilities for the oracle's circuit and fault
    list.  Deterministic for deterministic oracles; telemetry ([Rt_obs]
    spans/counters and the optional [recorder]) never affects the result.
    The [recorder], when given, receives one row for the starting point
    (stage ["initial"], the jittered start), one per sweep (in the same
    order as [history]), and one for the quantised final weights (stage
    ["final"], whose [n] equals [n_final]). *)

val improvement : report -> float
(** [n_initial / n_final] — the paper reports orders of magnitude here. *)
