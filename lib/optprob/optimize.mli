(** The paper's OPTIMIZE procedure (§4): cyclic per-input minimisation.

    Each sweep fixes the current test length [N] (from NORMALIZE), then for
    every primary input runs PREPARE — two ANALYSIS calls giving the
    cofactor detection probabilities [p_f(X,0|i)] and [p_f(X,1|i)] of the
    [nf] hardest faults — and MINIMIZE, replacing [x_i] by the unique
    coordinate optimum.  Sweeps repeat while the required test length keeps
    improving by more than the user-defined threshold (the paper's "a"). *)

type quantization =
  | No_quantization
  | Grid of float  (** round to multiples, e.g. 0.05 as the paper's appendix *)
  | Dyadic of int  (** round to k/2^bits, realisable by LFSR weighting logic *)

type options = {
  confidence : float;  (** target confidence of the random test (0.95) *)
  alpha : float;  (** stop when relative improvement of N falls below (0.01) *)
  max_sweeps : int;  (** hard sweep cap (12) *)
  w_min : float;  (** weights stay in [w_min, 1-w_min] (0.02, Lemma 2) *)
  quantize : quantization;  (** applied after convergence (Grid 0.05) *)
  nf_min : int;
      (** lower bound on the relevant-fault prefix (256).  NORMALIZE's own
          prefix can be very small; minimising against only a handful of
          hardest faults lets the sweep wreck the detection probabilities
          of the next tier and stall.  A few hundred faults in scope keeps
          the coordinate optimum balanced at negligible extra cost (the
          expensive part, the two ANALYSIS calls per input, is unchanged). *)
  start : float array option;  (** initial weights (default: jittered 0.5) *)
  start_jitter : float;
      (** amplitude of the deterministic perturbation around 0.5 used when
          [start] is [None] (0.06).  The exact symmetric point is a saddle
          for equality-comparator cones — coordinate descent needs the tie
          broken. *)
  objective : Objective.t;
      (** what the sweep minimises ({!Objective.single}).  Flows into
          NORMALIZE (the required [N] depends on the per-fault miss term)
          and every MINIMIZE step; telemetry is recorded per objective key
          ([objective.<key>.runs], [optimize.sweep_us.<key>], with [':']
          mapped to ['_'] in metric names). *)
}

val default_options : options

val apply_quantization : quantization -> float array -> float array
(** Project a weight vector onto a grid (used internally after the sweep;
    exposed for ablation studies). *)

type report = {
  weights : float array;  (** optimised (and quantised) input probabilities *)
  n_initial : float;  (** required length at the starting weights *)
  n_final : float;  (** required length at [weights] *)
  sweeps_run : int;
  history : float list;  (** required length after each sweep, oldest first *)
  j_history : float list;
      (** objective value after each sweep, oldest first, aligned with
          [history]: [J_N] over the detectable faults at the sweep's
          working test length (the [N] the sweep's MINIMIZE steps used) —
          the quantity the sweep actually descended. *)
  undetectable : int array;  (** faults with [p_f = 0] at the final weights *)
}

val run :
  ?options:options ->
  ?progress:(sweep:int -> n:float -> unit) ->
  ?recorder:Rt_obs.Convergence.t ->
  ?keep:bool array ->
  Rt_testability.Detect.oracle ->
  report
(** Optimise the input probabilities for the oracle's circuit and fault
    list.  Deterministic for deterministic oracles; telemetry ([Rt_obs]
    spans/counters and the optional [recorder]) never affects the result.
    The [recorder], when given, receives one row for the starting point
    (stage ["initial"], the jittered start), one per sweep (in the same
    order as [history]), and one for the quantised final weights (stage
    ["final"], whose [n] equals [n_final]); each row carries the
    objective's key.  [keep], when given, restricts the optimization to
    the marked faults (one flag per fault, in fault-array order): the rest
    are masked to [p_f = 0], exactly how NORMALIZE treats faults outside
    the population — this is the two-stage driver's survivors hook. *)

val improvement : report -> float
(** [n_initial / n_final] — the paper reports orders of magnitude here. *)

(** {2 Two-stage adaptive design}

    In the spirit of adaptive two-stage clinical trial designs
    (BinaryTwoStageDesigns): commit only [N1] patterns to the stage-1
    weights, observe (by ppsfp fault simulation) which hard faults
    actually survived, and re-optimise stage 2 for the survivors only —
    the stage-2 weight vector concentrates on the faults that chance left
    over, so the expected total [N1 + N2] can undercut any fixed
    single-stage budget.  The grid of candidate splits always contains
    [N1 = 0], whose design degenerates to the single-stage one, so the
    chosen design is never worse than single-stage by construction. *)

type candidate = {
  cand_n1 : int;  (** stage-1 pattern budget *)
  cand_survivors : int;  (** detectable faults not detected within [cand_n1] *)
  cand_n2 : float;  (** required stage-2 length for the survivors *)
  cand_total : float;  (** [cand_n1 + cand_n2] — the design's expected total *)
}

type two_stage_report = {
  ts_stage1 : report;  (** the single-stage design (also the [N1 = 0] candidate) *)
  ts_n1 : int;
  ts_survivors : int;
  ts_stage2 : report option;
      (** [None] when the chosen split is degenerate ([N1 = 0], single-stage)
          or stage 1 already detected everything. *)
  ts_n2 : float;
  ts_total : float;  (** expected total patterns of the chosen design *)
  ts_single_n : float;  (** the single-stage [n_final], for comparison *)
  ts_weights : float array;  (** stage-2 weights (stage-1's when degenerate) *)
  ts_candidates : candidate list;  (** every split evaluated, ascending [cand_n1] *)
}

val default_n1_grid : float list
(** Stage-1 budget candidates as fractions of the single-stage [N]
    ([0.0; 0.1; 0.25; 0.5; 0.75]). *)

val two_stage :
  ?options:options ->
  ?n1_grid:float list ->
  ?n1:int ->
  ?seed:int ->
  ?sim_cap:int ->
  ?jobs:int ->
  ?block_words:int ->
  ?progress:(sweep:int -> n:float -> unit) ->
  ?recorder:Rt_obs.Convergence.t ->
  Rt_testability.Detect.oracle ->
  two_stage_report
(** [two_stage oracle] runs the single-stage design, then searches the
    stage split.  [n1] pins the stage-1 budget instead of searching
    [n1_grid]; [seed] makes the stage-1 simulated patterns deterministic;
    [sim_cap] (65536) bounds the per-candidate simulation cost — grid
    candidates above it are skipped.  [jobs]/[block_words] are passed to
    the ppsfp fault simulator.  [options.objective] applies to both
    stages. *)
