(** Test pattern batches and sources.

    A batch packs up to 64 patterns: one 64-bit word per primary input,
    bit [l] of word [i] being input [i]'s value in pattern (lane) [l].
    Unused lanes of a short batch are zero and excluded by [lane_mask]. *)

type batch = {
  n_inputs : int;
  n_patterns : int;  (** 1..64 *)
  bits : int64 array;  (** one word per input *)
}

val lane_mask : batch -> int64
(** Ones in the valid lanes. *)

val pattern : batch -> int -> bool array
(** Extract lane [l] as a plain input vector. *)

val of_vectors : bool array array -> batch list
(** Pack explicit vectors (all of equal width) into batches. *)

type source = unit -> batch
(** Infinite stream of batches (callers bound the number of patterns). *)

val equiprobable : Rt_util.Rng.t -> n_inputs:int -> source
(** Conventional random test: every input independently 0.5. *)

val weighted : Rt_util.Rng.t -> float array -> source
(** The paper's optimized random test: input [i] is 1 with probability
    [w.(i)]. *)

val constant_weight : Rt_util.Rng.t -> n_inputs:int -> float -> source
(** All inputs share one probability (Lieberherr's parameterised tests). *)

val take : source -> int -> batch list
(** [take src n] is batches holding exactly [n] patterns in total. *)

(** {1 Wide blocks}

    A block is [words] consecutive batches from a narrow {!source} packed
    into one flat unboxed buffer — up to [64 * words] patterns simulated
    per good-machine pass.  Filling pulls the source in stream order, so
    the pattern sequence (and every downstream statistic) is identical to
    consuming the same source one batch at a time. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat lane-word buffers, input- or node-major: row [i]'s words live at
    [i * words + w]. *)

type block = {
  width : int;  (** primary inputs *)
  words : int;  (** W: capacity in 64-pattern words *)
  counts : int array;  (** valid lanes per word; [0] past [filled] *)
  mutable filled : int;  (** words holding patterns (0..words) *)
  mutable total : int;  (** sum of [counts] *)
  data : words;  (** input-major, [width * words] *)
}

val max_block_words : int

val default_block_words : unit -> int
(** The [OPTPROB_BLOCK_WORDS] environment variable clamped to
    [1 .. max_block_words]; 4 when unset or unparsable. *)

val resolve_block_words : int option -> int
(** Clamp an explicit width, or {!default_block_words} when [None] — the
    policy behind every [?block_words] argument. *)

val word_mask : int -> int64
(** Ones in the [n] lowest lanes ([-1L] for [n >= 64]). *)

val make_block : n_inputs:int -> words:int -> block
(** A zeroed block; reuse it across {!fill_block} calls. *)

val fill_block : source -> block -> needed:int -> unit
(** Pull up to [block.words] batches (stopping once [needed] patterns are
    packed) into the block, overwriting its previous contents.  Each
    pulled batch becomes one word, truncated — like the narrow consumers —
    to the patterns still needed; lanes past a word's count are unmasked
    garbage, so consumers must apply {!word_mask}.  At most [needed]
    patterns and at least one word result ([needed > 0] required). *)

val block_word : block -> int -> int -> int64
(** [block_word blk i w] is input [i]'s word [w]. *)
