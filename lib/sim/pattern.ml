type batch = {
  n_inputs : int;
  n_patterns : int;
  bits : int64 array;
}

type source = unit -> batch

let lane_mask b =
  if b.n_patterns >= 64 then -1L else Int64.sub (Int64.shift_left 1L b.n_patterns) 1L

let pattern b l =
  if l < 0 || l >= b.n_patterns then invalid_arg "Pattern.pattern: lane out of range";
  Array.init b.n_inputs (fun i ->
      Int64.logand (Int64.shift_right_logical b.bits.(i) l) 1L <> 0L)

let of_vectors vectors =
  match Array.length vectors with
  | 0 -> []
  | total ->
    let n_inputs = Array.length vectors.(0) in
    Array.iter
      (fun v -> if Array.length v <> n_inputs then invalid_arg "Pattern.of_vectors: ragged input")
      vectors;
    let rec build start acc =
      if start >= total then List.rev acc
      else begin
        let n = min 64 (total - start) in
        let bits = Array.make n_inputs 0L in
        for l = 0 to n - 1 do
          let v = vectors.(start + l) in
          for i = 0 to n_inputs - 1 do
            if v.(i) then bits.(i) <- Int64.logor bits.(i) (Int64.shift_left 1L l)
          done
        done;
        build (start + n) ({ n_inputs; n_patterns = n; bits } :: acc)
      end
    in
    build 0 []

let weighted rng weights () =
  let n_inputs = Array.length weights in
  let bits = Array.map (fun w -> Rt_util.Rng.biased_word rng w) weights in
  { n_inputs; n_patterns = 64; bits }

let equiprobable rng ~n_inputs =
  let w = Array.make n_inputs 0.5 in
  weighted rng w

let constant_weight rng ~n_inputs p =
  let w = Array.make n_inputs p in
  weighted rng w

(* Wide blocks: W words of up to 64 patterns each, Bigarray-backed so the
   whole block is one flat unboxed buffer (input-major — input [i]'s W
   words are contiguous, matching the per-input fill and the wide sim's
   inner word loop).  A block is *filled from* the narrow source, one
   batch per word in stream order, so the pattern sequence — and hence
   every downstream statistic — is identical to pulling the same source
   through the one-word path. *)

type words = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type block = {
  width : int;
  words : int;
  counts : int array;
  mutable filled : int;
  mutable total : int;
  data : words;
}

let max_block_words = 16

let default_block_words () =
  match Sys.getenv_opt "OPTPROB_BLOCK_WORDS" with
  | None -> 4
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some w when w >= 1 -> min w max_block_words
     | Some _ | None -> 4)

let resolve_block_words = function
  | Some w when w >= 1 -> min w max_block_words
  | Some _ -> 1
  | None -> default_block_words ()

let word_mask n =
  if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

let make_block ~n_inputs ~words =
  if words < 1 || words > max_block_words then
    invalid_arg "Pattern.make_block: words out of range";
  if n_inputs < 0 then invalid_arg "Pattern.make_block: negative n_inputs";
  let data =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (max 1 (n_inputs * words))
  in
  Bigarray.Array1.fill data 0L;
  { width = n_inputs; words; counts = Array.make words 0; filled = 0; total = 0; data }

let fill_block src blk ~needed =
  if needed <= 0 then invalid_arg "Pattern.fill_block: needed <= 0";
  Array.fill blk.counts 0 blk.words 0;
  blk.filled <- 0;
  blk.total <- 0;
  let remaining = ref needed in
  let w = ref 0 in
  while !w < blk.words && !remaining > 0 do
    let b = src () in
    if b.n_inputs <> blk.width then invalid_arg "Pattern.fill_block: input width mismatch";
    (* Same per-batch truncation rule as the narrow consumers: the source
       batch is taken whole unless fewer patterns are still needed.  Lanes
       past [counts.(w)] carry whatever the source produced; consumers
       mask with [word_mask]. *)
    let count = min b.n_patterns !remaining in
    blk.counts.(!w) <- count;
    for i = 0 to blk.width - 1 do
      Bigarray.Array1.set blk.data ((i * blk.words) + !w) b.bits.(i)
    done;
    blk.total <- blk.total + count;
    remaining := !remaining - count;
    incr w
  done;
  blk.filled <- !w

let block_word blk i w = Bigarray.Array1.get blk.data ((i * blk.words) + w)

let take src n =
  let rec go remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let b = src () in
      let b =
        if b.n_patterns <= remaining then b
        else begin
          let keep = remaining in
          let mask = Int64.sub (Int64.shift_left 1L keep) 1L in
          { b with n_patterns = keep; bits = Array.map (fun w -> Int64.logand w mask) b.bits }
        end
      in
      go (remaining - b.n_patterns) (b :: acc)
    end
  in
  go n []
