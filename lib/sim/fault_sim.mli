(** Parallel-pattern single-fault propagation (PPSFP) fault simulation.

    For each block of up to [W * 64] patterns ([W] words of 64 lanes,
    see {!Pattern.block}) the good circuit is simulated once; each live
    fault is then injected and its effect propagated event-driven
    through its fanout cone only, all lanes at once.  Live faults are
    scheduled in output-cone order and sharded across the persistent
    domain pool with work stealing; detection bookkeeping replays
    serially word by word, so results never depend on [jobs] or
    [block_words].  With fault dropping this is the engine behind the
    paper's Tables 2 and 4 and Fig. 2. *)

type stats = {
  faults : Rt_fault.Fault.t array;
  first_detect : int array;
      (** Per fault: index of the first detecting pattern, or -1. *)
  detect_count : int array;
      (** Per fault: number of detecting patterns seen (1 with dropping). *)
  patterns_run : int;
}

val simulate :
  ?jobs:int ->
  ?block_words:int ->
  ?drop:bool ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  source:Pattern.source ->
  n_patterns:int ->
  stats
(** [drop] (default true) stops simulating a fault once detected.

    [jobs] (default: the [OPTPROB_JOBS] environment variable, else 1)
    shards the per-fault injection/propagation of each block across that
    many pool domains, each with its own workspace; detection
    bookkeeping is replayed deterministically on the caller, so the
    returned [stats] are bit-identical for every [jobs] value (the
    good-circuit simulation and the pattern source always run on the
    calling domain, preserving the RNG stream).

    [block_words] (default: the [OPTPROB_BLOCK_WORDS] environment
    variable, else 4) is the batch width [W] in 64-pattern words.
    Stats are bit-identical for every width; the only observable
    difference is source consumption — the block is filled before
    simulating, so when dropping empties the live set mid-block up to
    [W - 1] already-pulled source batches go unused. *)

val simulate_with_responses :
  ?jobs:int ->
  ?block_words:int ->
  ?drop:bool ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  source:Pattern.source ->
  n_patterns:int ->
  stats * (int * int64) list array
(** Like [simulate ~drop:false] but additionally returns, per fault, the
    sparse response-difference stream: [(pattern_index, diff_word)] pairs
    (ascending) where bit [k] of [diff_word] says primary output [k]
    (among the first 64) differed.  Signature analysis is linear, so this
    stream is exactly what a MISR needs to decide aliasing.

    [drop] (default false, preserving the full response stream) enables
    the same live-set handling as {!simulate}: a detected fault is no
    longer simulated, so its response stream ends at its first detecting
    word and the run stops early once every fault is detected.  With
    [~drop:true] the returned [stats] equal [simulate ~drop:true]'s
    bit-for-bit; [jobs]/[block_words] behave as in {!simulate}. *)

val detects :
  Rt_circuit.Netlist.t -> Rt_fault.Fault.t -> bool array -> bool
(** [detects c f pattern]: single-pattern check (reference semantics used by
    tests and ATPG verification). *)

val coverage : stats -> float
(** Detected / total. *)

val coverage_at : stats -> int -> float
(** Coverage counting only the first [k] patterns. *)

val coverage_curve : stats -> points:int list -> (int * float) list
(** Sampled coverage-vs-pattern-count curve (paper Fig. 2). *)

val undetected : stats -> Rt_fault.Fault.t array
