let detection_probs_source ?jobs c faults ~source ~n_patterns =
  let stats = Fault_sim.simulate ?jobs ~drop:false c faults ~source ~n_patterns in
  Array.map
    (fun count -> Float.of_int count /. Float.of_int stats.Fault_sim.patterns_run)
    stats.Fault_sim.detect_count

let detection_probs ?jobs c faults ~weights ~n_patterns ~seed =
  let rng = Rt_util.Rng.create seed in
  detection_probs_source ?jobs c faults ~source:(Pattern.weighted rng weights) ~n_patterns

let confidence_halfwidth ~p ~n =
  if n <= 0 then invalid_arg "Detect_mc.confidence_halfwidth";
  1.96 *. sqrt (p *. (1.0 -. p) /. Float.of_int n)
