module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Cone = Rt_circuit.Cone
module Fault = Rt_fault.Fault
module Bits = Rt_util.Bits
module BA1 = Bigarray.Array1

type stats = {
  faults : Fault.t array;
  first_detect : int array;
  detect_count : int array;
  patterns_run : int;
}

(* The datapath is W x 64-bit wide: each good-machine pass simulates a
   [Pattern.block] of up to [W] 64-pattern words, and each fault is
   injected once per block, propagating all W words together through its
   fanout cone.  Detection bookkeeping (first_detect / detect_count /
   drop order) replays serially from the per-fault detection rows *word
   by word* — a fault detected in word [w] leaves the live set before
   word [w+1] is accounted, and a block's trailing words are not
   accounted once the live set empties — so the returned stats are
   bit-identical to the one-word path for every (jobs, block_words)
   combination.  The only W-dependence is source consumption: a block is
   filled before simulating, so when dropping empties the live set
   mid-block up to [W - 1] already-pulled batches go unused.  [jobs > 1]
   shards the per-fault work across pool domains (each with its own
   workspace) via grain-level work stealing; per-fault detection rows
   land in a shared table at fault-indexed rows, so scheduling never
   touches the replay. *)

(* Workspace reused across faults within a block; one per worker slot
   when the per-fault work is sharded with [jobs > 1]. *)
type ws = {
  c : Netlist.t;
  w : int;  (* lane words per block *)
  fval : Pattern.words;  (* node-major faulty values, size * w *)
  dirty : bool array;
  queued : bool array;
  heap : Rt_util.Int_heap.t;
  mutable touched : int list;
  args : int64 array array;  (* scratch per arity, indexed by arity *)
  out : int64 array;  (* scratch gate evaluation, length w *)
  det : int64 array;  (* scratch detection row, length w *)
}

let make_ws ~words c =
  let n = Netlist.size c in
  let max_arity =
    let m = ref 1 in
    Netlist.iter_gates c (fun g -> m := max !m (Array.length (Netlist.fanin c g)));
    !m
  in
  let fval = BA1.create Bigarray.int64 Bigarray.c_layout (max 1 (n * words)) in
  BA1.fill fval 0L;
  { c;
    w = words;
    fval;
    dirty = Array.make n false;
    queued = Array.make n false;
    heap = Rt_util.Int_heap.create ();
    touched = [];
    args = Array.init (max_arity + 1) (fun a -> Array.make (max 1 a) 0L);
    out = Array.make words 0L;
    det = Array.make words 0L }

let reset ws =
  List.iter
    (fun n ->
      ws.dirty.(n) <- false;
      ws.queued.(n) <- false)
    ws.touched;
  ws.touched <- [];
  Rt_util.Int_heap.clear ws.heap

(* Evaluate gate [g] into [ws.out], reading faulty values for dirty
   fanins and good values otherwise, word by word. *)
let eval_gate ws good g ~pin_override =
  let fi = Netlist.fanin ws.c g in
  let arity = Array.length fi in
  let args = ws.args.(arity) in
  let kind = Netlist.kind ws.c g in
  for k = 0 to ws.w - 1 do
    for j = 0 to arity - 1 do
      let s = fi.(j) in
      args.(j) <-
        (if ws.dirty.(s) then BA1.unsafe_get ws.fval ((s * ws.w) + k)
         else BA1.unsafe_get good ((s * ws.w) + k))
    done;
    (match pin_override with
     | Some (j, v) -> args.(j) <- (if v then -1L else 0L)
     | None -> ());
    ws.out.(k) <- Gate.eval_words kind args
  done

(* Whether [ws.out] differs from the good value of [n] in any valid lane. *)
let out_differs ws good ~lanes n =
  let differs = ref false in
  for k = 0 to ws.w - 1 do
    if
      (not !differs)
      && Int64.logand (Int64.logxor ws.out.(k) (BA1.unsafe_get good ((n * ws.w) + k))) lanes.(k) <> 0L
    then differs := true
  done;
  !differs

let push_fanouts ws n =
  Array.iter
    (fun r ->
      if not ws.queued.(r) then begin
        ws.queued.(r) <- true;
        ws.touched <- r :: ws.touched;
        Rt_util.Int_heap.push ws.heap r
      end)
    (Netlist.fanout ws.c n)

let mark_dirty_out ws n =
  for k = 0 to ws.w - 1 do
    BA1.unsafe_set ws.fval ((n * ws.w) + k) ws.out.(k)
  done;
  if not ws.dirty.(n) then begin
    ws.dirty.(n) <- true;
    if not ws.queued.(n) then ws.touched <- n :: ws.touched
  end

(* Computes the per-word detection row for one fault on the current
   block into [ws.det].  [good] is the fault-free wide simulation,
   shared read-only across domains; [lanes.(k)] masks word [k]'s valid
   lanes.  The wide event frontier is the union of the per-word narrow
   frontiers (a node is re-evaluated if *any* word differs, and its
   stored faulty row is exact for every word), so each word's masked
   output differences — hence the stats replayed from them — equal the
   one-word computation exactly. *)
let inject_and_propagate ws ~good ~lanes fault =
  let c = ws.c in
  reset ws;
  Array.fill ws.det 0 ws.w 0L;
  let seeded =
    match fault.Fault.site with
    | Fault.Stem n ->
      let v = if fault.Fault.stuck then -1L else 0L in
      Array.fill ws.out 0 ws.w v;
      if not (out_differs ws good ~lanes n) then false
      else begin
        mark_dirty_out ws n;
        push_fanouts ws n;
        true
      end
    | Fault.Branch (g, k) ->
      eval_gate ws good g ~pin_override:(Some (k, fault.Fault.stuck));
      if not (out_differs ws good ~lanes g) then false
      else begin
        mark_dirty_out ws g;
        push_fanouts ws g;
        true
      end
  in
  if seeded then begin
    (* Every push targets a strictly larger id, so each node is popped at
       most once, with all its fanins final — no iteration needed.  The
       fault site itself is the seed and is never re-queued. *)
    while not (Rt_util.Int_heap.is_empty ws.heap) do
      let n = Rt_util.Int_heap.pop ws.heap in
      if ws.queued.(n) then begin
        ws.queued.(n) <- false;
        eval_gate ws good n ~pin_override:None;
        if out_differs ws good ~lanes n then begin
          mark_dirty_out ws n;
          push_fanouts ws n
        end
      end
    done;
    Array.iter
      (fun o ->
        if ws.dirty.(o) then
          for k = 0 to ws.w - 1 do
            ws.det.(k) <-
              Int64.logor ws.det.(k)
                (Int64.logand
                   (Int64.logxor (BA1.unsafe_get ws.fval ((o * ws.w) + k)) (BA1.unsafe_get good ((o * ws.w) + k)))
                   lanes.(k))
          done)
      (Netlist.outputs c)
  end

let c_batches = Rt_obs.counter "ppsfp.batches"
let c_patterns = Rt_obs.counter "ppsfp.patterns"
let c_dropped = Rt_obs.counter "ppsfp.faults_dropped"
let h_batch = Rt_obs.histogram "ppsfp.batch_us"

(* Undetected-fault population after the latest batch: the shrinking
   workload the timeline sampler plots against pool utilization. *)
let g_live = Rt_obs.gauge "ppsfp.live_faults"

(* Sub-millisecond blocks are not worth parallel dispatch
   (Parallel.sweep also clamps to the core count); at ~2-10 us per fault
   propagation this threshold puts the crossover near half a millisecond
   of work. *)
let ppsfp_seq_below = 256

(* Schedule faults so consecutive ones feed the same primary-output
   cone: stable order by (nearest reachable output, site id).  A worker
   draining a contiguous slice then repeatedly propagates through
   overlapping gate ranges, keeping its workspace rows cache-warm.
   Stats are accumulated per fault index, so the schedule never affects
   results. *)
let cone_order c faults =
  let nearest = Cone.nearest_output c in
  let site f =
    match f.Fault.site with Fault.Stem n -> n | Fault.Branch (g, _) -> g
  in
  let nf = Array.length faults in
  let key = Array.map (fun f -> (nearest.(site f), site f)) faults in
  let order = Array.init nf Fun.id in
  Array.sort
    (fun a b ->
      let d = compare key.(a) key.(b) in
      if d <> 0 then d else compare a b)
    order;
  order

let lanes_of_block blk =
  Array.init blk.Pattern.words (fun k ->
      if k < blk.Pattern.filled then Pattern.word_mask blk.Pattern.counts.(k) else 0L)

(* Run one block's per-fault propagation for the first [todo] entries of
   [live], writing each fault's detection row into [table] at its
   fault-indexed row (disjoint rows, so sharding is race-free). *)
let propagate_block ~label ~jobs ~wss ~good ~lanes ~table ~live ~todo faults =
  let words = wss.(0).w in
  Rt_util.Parallel.sweep ~label ~seq_below:ppsfp_seq_below ~jobs ~n:todo
    (fun ~worker ~lo ~hi ->
      let ws = wss.(worker) in
      for p = lo to hi - 1 do
        let fi = live.(p) in
        inject_and_propagate ws ~good ~lanes faults.(fi);
        for k = 0 to words - 1 do
          BA1.unsafe_set table ((fi * words) + k) ws.det.(k)
        done
      done)

let simulate ?jobs ?block_words ?(drop = true) c faults ~source ~n_patterns =
  let jobs = Rt_util.Parallel.resolve_jobs jobs in
  let words = Pattern.resolve_block_words block_words in
  let nf = Array.length faults in
  let first_detect = Array.make nf (-1) in
  let detect_count = Array.make nf 0 in
  let sim = Logic_sim.create_wide ~words c in
  let wss = Array.init jobs (fun _ -> make_ws ~words c) in
  let blk = Pattern.make_block ~n_inputs:(Array.length (Netlist.inputs c)) ~words in
  let table = BA1.create Bigarray.int64 Bigarray.c_layout (max 1 (nf * words)) in
  let live = cone_order c faults in
  let n_live = ref nf in
  let base = ref 0 in
  Rt_obs.with_span ~cat:"sim" "fault_sim" @@ fun () ->
  while !base < n_patterns && (!n_live > 0 || not drop) do
    let t_batch = Rt_obs.span_begin () in
    Pattern.fill_block source blk ~needed:(n_patterns - !base);
    let lanes = lanes_of_block blk in
    Logic_sim.run_wide sim blk;
    let good = Logic_sim.wide_values sim in
    propagate_block ~label:"ppsfp" ~jobs ~wss ~good ~lanes ~table ~live ~todo:!n_live faults;
    (* Serial word-by-word replay: within a word, detections are lane-
       parallel; between words, drops take effect, exactly as if each
       word had been its own batch. *)
    let n0 = !n_live in
    let alive = ref n0 in
    let processed = ref 0 in
    let w = ref 0 in
    while !w < blk.Pattern.filled && (!alive > 0 || not drop) do
      for p = 0 to n0 - 1 do
        let fi = live.(p) in
        if not (drop && first_detect.(fi) >= 0) then begin
          let d = BA1.unsafe_get table ((fi * words) + !w) in
          if not (Int64.equal d 0L) then begin
            if first_detect.(fi) < 0 then
              first_detect.(fi) <- !base + !processed + Bits.ctz d;
            detect_count.(fi) <- detect_count.(fi) + Bits.popcount d;
            if drop then decr alive
          end
        end
      done;
      processed := !processed + blk.Pattern.counts.(!w);
      incr w
    done;
    if drop then begin
      (* Compact the live set in place, preserving cone order. *)
      let k = ref 0 in
      for p = 0 to n0 - 1 do
        let fi = live.(p) in
        if first_detect.(fi) < 0 then begin
          live.(!k) <- fi;
          incr k
        end
      done;
      n_live := !k
    end;
    Rt_obs.incr c_batches;
    Rt_obs.add c_patterns !processed;
    Rt_obs.add c_dropped (n0 - !n_live);
    Rt_obs.gauge_set g_live (Float.of_int !n_live);
    Rt_obs.span_end_h ~cat:"sim" "ppsfp.batch" h_batch t_batch;
    base := !base + !processed
  done;
  { faults; first_detect; detect_count; patterns_run = !base }

let simulate_with_responses ?jobs ?block_words ?(drop = false) c faults ~source ~n_patterns =
  let jobs = Rt_util.Parallel.resolve_jobs jobs in
  let words = Pattern.resolve_block_words block_words in
  let nf = Array.length faults in
  let first_detect = Array.make nf (-1) in
  let detect_count = Array.make nf 0 in
  let responses = Array.make nf [] in
  let sim = Logic_sim.create_wide ~words c in
  let wss = Array.init jobs (fun _ -> make_ws ~words c) in
  let blk = Pattern.make_block ~n_inputs:(Array.length (Netlist.inputs c)) ~words in
  let table = BA1.create Bigarray.int64 Bigarray.c_layout (max 1 (nf * words)) in
  (* Per detecting fault the output-difference words must be captured
     before the workspace is reused for the next fault; rows are
     allocated only on detection, so the table stays sparse. *)
  let diffs = Array.make nf [||] in
  let outputs = Netlist.outputs c in
  let n_out = min 64 (Array.length outputs) in
  let live = cone_order c faults in
  let n_live = ref nf in
  let base = ref 0 in
  Rt_obs.with_span ~cat:"sim" "fault_sim.responses" @@ fun () ->
  while !base < n_patterns && (!n_live > 0 || not drop) do
    Pattern.fill_block source blk ~needed:(n_patterns - !base);
    let lanes = lanes_of_block blk in
    Logic_sim.run_wide sim blk;
    let good = Logic_sim.wide_values sim in
    Rt_util.Parallel.sweep ~label:"ppsfp.responses" ~seq_below:ppsfp_seq_below ~jobs ~n:!n_live
      (fun ~worker ~lo ~hi ->
        let ws = wss.(worker) in
        for p = lo to hi - 1 do
          let fi = live.(p) in
          inject_and_propagate ws ~good ~lanes faults.(fi);
          let any = ref false in
          for k = 0 to words - 1 do
            BA1.unsafe_set table ((fi * words) + k) ws.det.(k);
            if not (Int64.equal ws.det.(k) 0L) then any := true
          done;
          diffs.(fi) <-
            (if not !any then [||]
             else
               Array.init (n_out * words) (fun i ->
                   let o = outputs.(i / words) and k = i mod words in
                   if ws.dirty.(o) then
                     Int64.logand
                       (Int64.logxor (BA1.unsafe_get ws.fval ((o * ws.w) + k)) (BA1.unsafe_get good ((o * ws.w) + k)))
                       lanes.(k)
                   else 0L))
        done);
    let n0 = !n_live in
    let alive = ref n0 in
    let processed = ref 0 in
    let w = ref 0 in
    while !w < blk.Pattern.filled && (!alive > 0 || not drop) do
      let cnt = blk.Pattern.counts.(!w) in
      for p = 0 to n0 - 1 do
        let fi = live.(p) in
        if not (drop && first_detect.(fi) >= 0) then begin
          let d = BA1.unsafe_get table ((fi * words) + !w) in
          if not (Int64.equal d 0L) then begin
            if first_detect.(fi) < 0 then
              first_detect.(fi) <- !base + !processed + Bits.ctz d;
            detect_count.(fi) <- detect_count.(fi) + Bits.popcount d;
            let row = diffs.(fi) in
            for lane = 0 to cnt - 1 do
              if Int64.logand (Int64.shift_right_logical d lane) 1L <> 0L then begin
                let dw = ref 0L in
                for k = 0 to n_out - 1 do
                  if
                    Int64.logand (Int64.shift_right_logical row.((k * words) + !w) lane) 1L <> 0L
                  then dw := Int64.logor !dw (Int64.shift_left 1L k)
                done;
                responses.(fi) <- (!base + !processed + lane, !dw) :: responses.(fi)
              end
            done;
            if drop then decr alive
          end
        end
      done;
      processed := !processed + cnt;
      incr w
    done;
    if drop then begin
      let k = ref 0 in
      for p = 0 to n0 - 1 do
        let fi = live.(p) in
        if first_detect.(fi) < 0 then begin
          live.(!k) <- fi;
          incr k
        end
      done;
      n_live := !k
    end;
    Rt_obs.gauge_set g_live (Float.of_int !n_live);
    base := !base + !processed
  done;
  let responses = Array.map List.rev responses in
  ({ faults; first_detect; detect_count; patterns_run = !base }, responses)

let detects c f pattern =
  let good = Netlist.eval c pattern in
  let n = Netlist.size c in
  let bad = Array.make n false in
  for i = 0 to n - 1 do
    let v =
      match Netlist.kind c i with
      | Gate.Input -> pattern.(Netlist.input_index c i)
      | k ->
        let fi = Netlist.fanin c i in
        let args = Array.map (fun j -> bad.(j)) fi in
        let args =
          match f.Fault.site with
          | Fault.Branch (g, pin) when g = i ->
            let args = Array.copy args in
            args.(pin) <- f.Fault.stuck;
            args
          | Fault.Branch _ | Fault.Stem _ -> args
        in
        Gate.eval k args
    in
    bad.(i) <- (match f.Fault.site with Fault.Stem s when s = i -> f.Fault.stuck | _ -> v)
  done;
  Array.exists (fun o -> good.(o) <> bad.(o)) (Netlist.outputs c)

let coverage s =
  let nf = Array.length s.faults in
  if nf = 0 then 1.0
  else begin
    let d = Array.fold_left (fun acc fd -> if fd >= 0 then acc + 1 else acc) 0 s.first_detect in
    Float.of_int d /. Float.of_int nf
  end

let coverage_at s k =
  let nf = Array.length s.faults in
  if nf = 0 then 1.0
  else begin
    let d =
      Array.fold_left (fun acc fd -> if fd >= 0 && fd < k then acc + 1 else acc) 0 s.first_detect
    in
    Float.of_int d /. Float.of_int nf
  end

let coverage_curve s ~points = List.map (fun k -> (k, coverage_at s k)) points

let undetected s =
  s.faults |> Array.to_list
  |> List.filteri (fun i _ -> s.first_detect.(i) < 0)
  |> Array.of_list
