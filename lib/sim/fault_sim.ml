module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate
module Fault = Rt_fault.Fault

type stats = {
  faults : Fault.t array;
  first_detect : int array;
  detect_count : int array;
  patterns_run : int;
}

(* Workspace reused across faults within a batch; one per domain when the
   per-fault work is sharded with [jobs > 1]. *)
type ws = {
  c : Netlist.t;
  fval : int64 array;
  dirty : bool array;
  queued : bool array;
  heap : Rt_util.Int_heap.t;
  mutable touched : int list;
  args : int64 array array;  (* scratch per arity, indexed by arity *)
}

let make_ws c =
  let n = Netlist.size c in
  let max_arity =
    let m = ref 1 in
    Netlist.iter_gates c (fun g -> m := max !m (Array.length (Netlist.fanin c g)));
    !m
  in
  { c;
    fval = Array.make n 0L;
    dirty = Array.make n false;
    queued = Array.make n false;
    heap = Rt_util.Int_heap.create ();
    touched = [];
    args = Array.init (max_arity + 1) (fun a -> Array.make (max 1 a) 0L) }

let reset ws =
  List.iter
    (fun n ->
      ws.dirty.(n) <- false;
      ws.queued.(n) <- false)
    ws.touched;
  ws.touched <- [];
  Rt_util.Int_heap.clear ws.heap

let faulty_in ws good n = if ws.dirty.(n) then ws.fval.(n) else good.(n)

let eval_gate ws good g ~pin_override =
  let fi = Netlist.fanin ws.c g in
  let arity = Array.length fi in
  let args = ws.args.(arity) in
  for k = 0 to arity - 1 do
    args.(k) <- faulty_in ws good fi.(k)
  done;
  (match pin_override with
   | Some (k, v) -> args.(k) <- (if v then -1L else 0L)
   | None -> ());
  Gate.eval_words (Netlist.kind ws.c g) args

let push_fanouts ws n =
  Array.iter
    (fun r ->
      if not ws.queued.(r) then begin
        ws.queued.(r) <- true;
        ws.touched <- r :: ws.touched;
        Rt_util.Int_heap.push ws.heap r
      end)
    (Netlist.fanout ws.c n)

let mark_dirty ws n v =
  ws.fval.(n) <- v;
  if not ws.dirty.(n) then begin
    ws.dirty.(n) <- true;
    if not ws.queued.(n) then ws.touched <- n :: ws.touched
  end

(* Returns the 64-lane detection word for one fault on the current batch.
   [good] is the fault-free simulation of the batch, shared read-only
   across domains. *)
let inject_and_propagate ws ~good fault lanes =
  let c = ws.c in
  reset ws;
  let seeded =
    match fault.Fault.site with
    | Fault.Stem n ->
      let v = if fault.Fault.stuck then -1L else 0L in
      if Int64.logand (Int64.logxor v good.(n)) lanes = 0L then false
      else begin
        mark_dirty ws n v;
        push_fanouts ws n;
        true
      end
    | Fault.Branch (g, k) ->
      let v = eval_gate ws good g ~pin_override:(Some (k, fault.Fault.stuck)) in
      if Int64.logand (Int64.logxor v good.(g)) lanes = 0L then false
      else begin
        mark_dirty ws g v;
        push_fanouts ws g;
        true
      end
  in
  if not seeded then 0L
  else begin
    (* Every push targets a strictly larger id, so each node is popped at
       most once, with all its fanins final — no iteration needed.  The
       fault site itself is the seed and is never re-queued. *)
    while not (Rt_util.Int_heap.is_empty ws.heap) do
      let n = Rt_util.Int_heap.pop ws.heap in
      if ws.queued.(n) then begin
        ws.queued.(n) <- false;
        let v = eval_gate ws good n ~pin_override:None in
        if Int64.logand (Int64.logxor v good.(n)) lanes <> 0L then begin
          mark_dirty ws n v;
          push_fanouts ws n
        end
      end
    done;
    let detect = ref 0L in
    Array.iter
      (fun o ->
        if ws.dirty.(o) then
          detect := Int64.logor !detect (Int64.logand (Int64.logxor ws.fval.(o) good.(o)) lanes))
      (Netlist.outputs c);
    !detect
  end

let lowest_lane w =
  let rec go i = if Int64.logand (Int64.shift_right_logical w i) 1L <> 0L then i else go (i + 1) in
  go 0

let popcount_64 w =
  let open Int64 in
  let x = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let c_batches = Rt_obs.counter "ppsfp.batches"
let c_patterns = Rt_obs.counter "ppsfp.patterns"
let c_dropped = Rt_obs.counter "ppsfp.faults_dropped"
let h_batch = Rt_obs.histogram "ppsfp.batch_us"

(* Sub-millisecond batches are not worth domain spawns (Parallel.region
   also clamps to the core count); at ~2-10 us per fault propagation this
   threshold puts the crossover near half a millisecond of chunk work. *)
let ppsfp_seq_below = 256

(* Per-fault detection words depend only on the fault and the batch — never
   on other faults — so with [jobs > 1] the live set is sharded across
   domains (each with its own workspace) into a per-fault word table, and
   the bookkeeping (first_detect / detect_count / drop order) replays
   serially from that table.  The stats are therefore bit-identical to the
   serial path for every [jobs] value — including when [Parallel.region]
   falls back to sequential execution on small live sets or few cores. *)
let simulate ?jobs ?(drop = true) c faults ~source ~n_patterns =
  let jobs = Rt_util.Parallel.resolve_jobs jobs in
  let nf = Array.length faults in
  let first_detect = Array.make nf (-1) in
  let detect_count = Array.make nf 0 in
  let sim = Logic_sim.create c in
  let wss = Array.init jobs (fun _ -> make_ws c) in
  let word_of = if jobs > 1 then Array.make nf 0L else [||] in
  let live = Array.init nf Fun.id in
  let n_live = ref nf in
  let base = ref 0 in
  Rt_obs.with_span ~cat:"sim" "fault_sim" @@ fun () ->
  while !base < n_patterns && (!n_live > 0 || not drop) do
    let t_batch = Rt_obs.span_begin () in
    let batch = source () in
    let batch =
      if !base + batch.Pattern.n_patterns <= n_patterns then batch
      else begin
        let keep = n_patterns - !base in
        { batch with Pattern.n_patterns = keep }
      end
    in
    let lanes = Pattern.lane_mask batch in
    Logic_sim.run sim batch;
    let good = Logic_sim.values sim in
    if jobs > 1 then
      Rt_util.Parallel.region ~label:"ppsfp" ~min_per_chunk:32 ~seq_below:ppsfp_seq_below ~jobs
        ~n:!n_live (fun ~chunk ~lo ~hi ->
          let ws = wss.(chunk) in
          for p = lo to hi - 1 do
            let fi = live.(p) in
            word_of.(fi) <- inject_and_propagate ws ~good faults.(fi) lanes
          done);
    let dropped_before = !n_live in
    let i = ref 0 in
    while !i < !n_live do
      let fi = live.(!i) in
      let detect =
        if jobs > 1 then word_of.(fi) else inject_and_propagate wss.(0) ~good faults.(fi) lanes
      in
      if Int64.equal detect 0L then incr i
      else begin
        if first_detect.(fi) < 0 then first_detect.(fi) <- !base + lowest_lane detect;
        detect_count.(fi) <- detect_count.(fi) + popcount_64 detect;
        if drop then begin
          (* Swap-remove from the live set. *)
          n_live := !n_live - 1;
          live.(!i) <- live.(!n_live);
          live.(!n_live) <- fi
        end
        else incr i
      end
    done;
    Rt_obs.incr c_batches;
    Rt_obs.add c_patterns batch.Pattern.n_patterns;
    Rt_obs.add c_dropped (dropped_before - !n_live);
    Rt_obs.span_end_h ~cat:"sim" "ppsfp.batch" h_batch t_batch;
    base := !base + batch.Pattern.n_patterns
  done;
  { faults; first_detect; detect_count; patterns_run = !base }

let simulate_with_responses ?jobs c faults ~source ~n_patterns =
  let jobs = Rt_util.Parallel.resolve_jobs jobs in
  let nf = Array.length faults in
  let first_detect = Array.make nf (-1) in
  let detect_count = Array.make nf 0 in
  let responses = Array.make nf [] in
  let sim = Logic_sim.create c in
  let wss = Array.init jobs (fun _ -> make_ws c) in
  let words = if jobs > 1 then Array.make nf 0L else [||] in
  let diffs = if jobs > 1 then Array.make nf [||] else [||] in
  let outputs = Netlist.outputs c in
  let n_out = min 64 (Array.length outputs) in
  let base = ref 0 in
  while !base < n_patterns do
    let batch = source () in
    let batch =
      if !base + batch.Pattern.n_patterns <= n_patterns then batch
      else { batch with Pattern.n_patterns = n_patterns - !base }
    in
    let lanes = Pattern.lane_mask batch in
    Logic_sim.run sim batch;
    let good = Logic_sim.values sim in
    (* Per detecting lane the output-difference word must be captured
       before the workspace is reset for the next fault. *)
    let capture ws =
      Array.init n_out (fun k ->
          let o = outputs.(k) in
          if ws.dirty.(o) then Int64.logand (Int64.logxor ws.fval.(o) good.(o)) lanes else 0L)
    in
    let record fi detect out_diffs =
      if first_detect.(fi) < 0 then first_detect.(fi) <- !base + lowest_lane detect;
      detect_count.(fi) <- detect_count.(fi) + popcount_64 detect;
      for lane = 0 to batch.Pattern.n_patterns - 1 do
        if Int64.logand (Int64.shift_right_logical detect lane) 1L <> 0L then begin
          let d = ref 0L in
          for k = 0 to n_out - 1 do
            if Int64.logand (Int64.shift_right_logical out_diffs.(k) lane) 1L <> 0L then
              d := Int64.logor !d (Int64.shift_left 1L k)
          done;
          responses.(fi) <- (!base + lane, !d) :: responses.(fi)
        end
      done
    in
    if jobs > 1 then begin
      Rt_util.Parallel.region ~label:"ppsfp.responses" ~min_per_chunk:32
        ~seq_below:ppsfp_seq_below ~jobs ~n:nf (fun ~chunk ~lo ~hi ->
          let ws = wss.(chunk) in
          for fi = lo to hi - 1 do
            let detect = inject_and_propagate ws ~good faults.(fi) lanes in
            words.(fi) <- detect;
            diffs.(fi) <- (if Int64.equal detect 0L then [||] else capture ws)
          done);
      for fi = 0 to nf - 1 do
        if not (Int64.equal words.(fi) 0L) then record fi words.(fi) diffs.(fi)
      done
    end
    else
      for fi = 0 to nf - 1 do
        let ws = wss.(0) in
        let detect = inject_and_propagate ws ~good faults.(fi) lanes in
        if not (Int64.equal detect 0L) then record fi detect (capture ws)
      done;
    base := !base + batch.Pattern.n_patterns
  done;
  let responses = Array.map List.rev responses in
  ({ faults; first_detect; detect_count; patterns_run = !base }, responses)

let detects c f pattern =
  let good = Netlist.eval c pattern in
  let n = Netlist.size c in
  let bad = Array.make n false in
  for i = 0 to n - 1 do
    let v =
      match Netlist.kind c i with
      | Gate.Input -> pattern.(Netlist.input_index c i)
      | k ->
        let fi = Netlist.fanin c i in
        let args = Array.map (fun j -> bad.(j)) fi in
        let args =
          match f.Fault.site with
          | Fault.Branch (g, pin) when g = i ->
            let args = Array.copy args in
            args.(pin) <- f.Fault.stuck;
            args
          | Fault.Branch _ | Fault.Stem _ -> args
        in
        Gate.eval k args
    in
    bad.(i) <- (match f.Fault.site with Fault.Stem s when s = i -> f.Fault.stuck | _ -> v)
  done;
  Array.exists (fun o -> good.(o) <> bad.(o)) (Netlist.outputs c)

let coverage s =
  let nf = Array.length s.faults in
  if nf = 0 then 1.0
  else begin
    let d = Array.fold_left (fun acc fd -> if fd >= 0 then acc + 1 else acc) 0 s.first_detect in
    Float.of_int d /. Float.of_int nf
  end

let coverage_at s k =
  let nf = Array.length s.faults in
  if nf = 0 then 1.0
  else begin
    let d =
      Array.fold_left (fun acc fd -> if fd >= 0 && fd < k then acc + 1 else acc) 0 s.first_detect
    in
    Float.of_int d /. Float.of_int nf
  end

let coverage_curve s ~points = List.map (fun k -> (k, coverage_at s k)) points

let undetected s =
  s.faults |> Array.to_list
  |> List.filteri (fun i _ -> s.first_detect.(i) < 0)
  |> Array.of_list
