(** Monte-Carlo estimation of fault detection probabilities.

    [p_f(X)] is estimated as the fraction of [n] weighted random patterns
    that detect [f], simulating without fault dropping.  Slower than the
    analytic estimators but model-free; used to validate them and available
    as an ANALYSIS oracle for the optimizer. *)

val detection_probs :
  ?jobs:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  weights:float array ->
  n_patterns:int ->
  seed:int ->
  float array
(** Estimated [p_f] per fault, in fault-array order.  [jobs] shards the
    per-fault simulation across domains (see {!Fault_sim.simulate});
    results are bit-identical for every [jobs] value. *)

val detection_probs_source :
  ?jobs:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  source:Pattern.source ->
  n_patterns:int ->
  float array
(** As {!detection_probs} but drawing batches from an explicit pattern
    source instead of a fresh weighted generator.  The oracle layer's
    cofactor queries use this to replay a recorded pattern stream with one
    input column patched, so both cofactors share one generation of
    patterns.  The source is only ever pulled from the serial batch loop,
    never from worker domains, so a stateful (recording / replaying)
    source is safe at any [jobs]. *)

val confidence_halfwidth : p:float -> n:int -> float
(** 95 % normal-approximation half-width of the estimate — tests use it to
    set tolerances. *)
