(** Monte-Carlo estimation of fault detection probabilities.

    [p_f(X)] is estimated as the fraction of [n] weighted random patterns
    that detect [f], simulating without fault dropping.  Slower than the
    analytic estimators but model-free; used to validate them and available
    as an ANALYSIS oracle for the optimizer. *)

val detection_probs :
  ?jobs:int ->
  Rt_circuit.Netlist.t ->
  Rt_fault.Fault.t array ->
  weights:float array ->
  n_patterns:int ->
  seed:int ->
  float array
(** Estimated [p_f] per fault, in fault-array order.  [jobs] shards the
    per-fault simulation across domains (see {!Fault_sim.simulate});
    results are bit-identical for every [jobs] value. *)

val confidence_halfwidth : p:float -> n:int -> float
(** 95 % normal-approximation half-width of the estimate — tests use it to
    set tolerances. *)
