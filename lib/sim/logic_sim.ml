module Netlist = Rt_circuit.Netlist
module Gate = Rt_circuit.Gate

type t = {
  c : Netlist.t;
  vals : int64 array;
}

let create c = { c; vals = Array.make (Netlist.size c) 0L }

let circuit t = t.c

let run t batch =
  let c = t.c in
  if batch.Pattern.n_inputs <> Array.length (Netlist.inputs c) then
    invalid_arg "Logic_sim.run: batch width mismatch";
  let vals = t.vals in
  let n = Netlist.size c in
  for i = 0 to n - 1 do
    match Netlist.kind c i with
    | Gate.Input -> vals.(i) <- batch.Pattern.bits.(Netlist.input_index c i)
    | Gate.Const0 -> vals.(i) <- 0L
    | Gate.Const1 -> vals.(i) <- -1L
    | Gate.Buf -> vals.(i) <- vals.((Netlist.fanin c i).(0))
    | Gate.Not -> vals.(i) <- Int64.lognot vals.((Netlist.fanin c i).(0))
    | Gate.And ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logand !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Nand ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logand !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
    | Gate.Or ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logor !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Nor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logor !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
    | Gate.Xor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logxor !acc vals.(fi.(k)) done;
      vals.(i) <- !acc
    | Gate.Xnor ->
      let fi = Netlist.fanin c i in
      let acc = ref vals.(fi.(0)) in
      for k = 1 to Array.length fi - 1 do acc := Int64.logxor !acc vals.(fi.(k)) done;
      vals.(i) <- Int64.lognot !acc
  done

let value t n = t.vals.(n)
let values t = t.vals
let output_word t k = t.vals.((Netlist.outputs t.c).(k))

(* Wide (W x 64 lane) variant.  Node values live in one flat unboxed
   Bigarray, node-major — node [i]'s W words are contiguous, so the
   per-gate word loop below and the fault-propagation inner loops both
   walk sequential memory.  The per-word evaluation is the exact narrow
   evaluation replayed W times, so lane semantics are unchanged. *)

module BA1 = Bigarray.Array1

type wide = {
  wc : Netlist.t;
  ww : int;
  wvals : Pattern.words;
}

let create_wide ?words c =
  let ww = Pattern.resolve_block_words words in
  let wvals =
    BA1.create Bigarray.int64 Bigarray.c_layout (max 1 (Netlist.size c * ww))
  in
  BA1.fill wvals 0L;
  { wc = c; ww; wvals }

let wide_circuit t = t.wc
let wide_words t = t.ww

let run_wide t blk =
  let c = t.wc in
  if blk.Pattern.width <> Array.length (Netlist.inputs c) then
    invalid_arg "Logic_sim.run_wide: block width mismatch";
  if blk.Pattern.words <> t.ww then
    invalid_arg "Logic_sim.run_wide: block word count mismatch";
  let v = t.wvals in
  let w = t.ww in
  let n = Netlist.size c in
  for i = 0 to n - 1 do
    let row = i * w in
    match Netlist.kind c i with
    | Gate.Input ->
      let src = Netlist.input_index c i in
      for k = 0 to w - 1 do
        BA1.unsafe_set v (row + k) (Pattern.block_word blk src k)
      done
    | Gate.Const0 -> for k = 0 to w - 1 do BA1.unsafe_set v (row + k) 0L done
    | Gate.Const1 -> for k = 0 to w - 1 do BA1.unsafe_set v (row + k) (-1L) done
    | Gate.Buf ->
      let s = (Netlist.fanin c i).(0) * w in
      for k = 0 to w - 1 do BA1.unsafe_set v (row + k) (BA1.unsafe_get v (s + k)) done
    | Gate.Not ->
      let s = (Netlist.fanin c i).(0) * w in
      for k = 0 to w - 1 do BA1.unsafe_set v (row + k) (Int64.lognot (BA1.unsafe_get v (s + k))) done
    | Gate.And ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logand !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) !acc
      done
    | Gate.Nand ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logand !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) (Int64.lognot !acc)
      done
    | Gate.Or ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logor !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) !acc
      done
    | Gate.Nor ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logor !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) (Int64.lognot !acc)
      done
    | Gate.Xor ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logxor !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) !acc
      done
    | Gate.Xnor ->
      let fi = Netlist.fanin c i in
      for k = 0 to w - 1 do
        let acc = ref (BA1.unsafe_get v ((fi.(0) * w) + k)) in
        for j = 1 to Array.length fi - 1 do
          acc := Int64.logxor !acc (BA1.unsafe_get v ((fi.(j) * w) + k))
        done;
        BA1.unsafe_set v (row + k) (Int64.lognot !acc)
      done
  done

let wide_values t = t.wvals
let wide_value t n k = BA1.get t.wvals ((n * t.ww) + k)
let wide_output_word t o k = wide_value t (Netlist.outputs t.wc).(o) k
