(** 64-way parallel-pattern good-circuit simulation.

    One forward sweep per batch evaluates all 64 lanes at once with plain
    word operations — the workhorse under fault simulation, STAFAN counting
    and Monte-Carlo detection-probability estimation. *)

type t
(** A reusable workspace bound to one netlist. *)

val create : Rt_circuit.Netlist.t -> t
val circuit : t -> Rt_circuit.Netlist.t

val run : t -> Pattern.batch -> unit
(** Evaluate every node for the batch (lanes beyond [n_patterns] hold
    garbage; mask with {!Pattern.lane_mask}). *)

val value : t -> Rt_circuit.Netlist.node -> int64
(** Node value words after {!run}. *)

val values : t -> int64 array
(** The full per-node value array (shared; valid until the next [run]). *)

val output_word : t -> int -> int64
(** Value of the [k]-th primary output. *)

(** {1 Wide (W x 64 lane) simulation}

    Same lane semantics as {!run}, over a {!Pattern.block} — one forward
    sweep evaluates up to [W * 64] patterns, amortizing the per-gate
    dispatch and fanin walks over W words of sequential unboxed memory. *)

type wide
(** A reusable wide workspace bound to one netlist and word count. *)

val create_wide : ?words:int -> Rt_circuit.Netlist.t -> wide
(** [words] as per {!Pattern.resolve_block_words}. *)

val wide_circuit : wide -> Rt_circuit.Netlist.t
val wide_words : wide -> int

val run_wide : wide -> Pattern.block -> unit
(** Evaluate every node for the block (the block's word count must equal
    [wide_words]; lanes beyond each word's count hold garbage — mask with
    {!Pattern.word_mask}). *)

val wide_values : wide -> Pattern.words
(** Node-major value buffer — node [n]'s word [k] at [n * W + k]; shared,
    valid until the next {!run_wide}. *)

val wide_value : wide -> Rt_circuit.Netlist.node -> int -> int64
(** [wide_value t n k] is node [n]'s lane word [k]. *)

val wide_output_word : wide -> int -> int -> int64
(** [wide_output_word t o k] is primary output [o]'s lane word [k]. *)
