let transitive_fanin c root =
  let mask = Array.make (Netlist.size c) false in
  let rec visit n =
    if not mask.(n) then begin
      mask.(n) <- true;
      Array.iter visit (Netlist.fanin c n)
    end
  in
  visit root;
  mask

let support c root =
  let mask = transitive_fanin c root in
  Netlist.inputs c |> Array.to_list |> List.filter (fun i -> mask.(i)) |> Array.of_list

let support_size c root = Array.length (support c root)

let all_support_sizes c =
  let n = Netlist.size c in
  (* Sorted-int-array union per node; memoised bottom-up. *)
  let sets : int array array = Array.make n [||] in
  let sizes = Array.make n 0 in
  let union a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then begin out.(!k) <- x; incr i end
        else if y < x then begin out.(!k) <- y; incr j end
        else begin out.(!k) <- x; incr i; incr j end;
        incr k
      done;
      while !i < la do out.(!k) <- a.(!i); incr i; incr k done;
      while !j < lb do out.(!k) <- b.(!j); incr j; incr k done;
      Array.sub out 0 !k
    end
  in
  for i = 0 to n - 1 do
    (match Netlist.kind c i with
     | Gate.Input -> sets.(i) <- [| i |]
     | _ -> sets.(i) <- Array.fold_left (fun acc j -> union acc sets.(j)) [||] (Netlist.fanin c i));
    sizes.(i) <- Array.length sets.(i)
  done;
  sizes

let transitive_fanout c root =
  let n = Netlist.size c in
  let mask = Array.make n false in
  mask.(root) <- true;
  (* Ids are topological, so a single ascending sweep suffices. *)
  for i = root to n - 1 do
    if not mask.(i) then
      if Array.exists (fun j -> mask.(j)) (Netlist.fanin c i) then mask.(i) <- true
  done;
  mask

(* The damage cone of an incremental re-evaluation: the nodes inside
   [mask] whose value can change when [root] changes.  Because node ids
   are topological (every fanin id is smaller), one ascending sweep finds
   the cone and the returned members are already in evaluation (level)
   order.  For the result to be the full intersection fanout*(root) n mask,
   [mask] must be fanin-closed over the cone's paths — true for the
   fanin-closed signal-probability masks the testability layer builds. *)
let fanout_within c ~mask root =
  let n = Netlist.size c in
  if not mask.(root) then [||]
  else begin
    let seen = Array.make n false in
    seen.(root) <- true;
    let count = ref 1 in
    for i = root + 1 to n - 1 do
      if mask.(i) && Array.exists (fun j -> seen.(j)) (Netlist.fanin c i) then begin
        seen.(i) <- true;
        incr count
      end
    done;
    let out = Array.make !count 0 in
    let k = ref 0 in
    for i = root to n - 1 do
      if seen.(i) then begin
        out.(!k) <- i;
        incr k
      end
    done;
    out
  end

(* Ids are topological, so one descending sweep propagates the smallest
   reachable output ordinal from every fanout in a single pass. *)
let nearest_output c =
  let n = Netlist.size c in
  let unreachable = max_int in
  let key = Array.make n unreachable in
  Array.iteri (fun ord o -> if key.(o) > ord then key.(o) <- ord) (Netlist.outputs c);
  for i = n - 1 downto 0 do
    Array.iter (fun j -> if key.(j) < key.(i) then key.(i) <- key.(j)) (Netlist.fanout c i)
  done;
  key

let reaches_output c node =
  let mask = transitive_fanout c node in
  Array.exists (fun o -> mask.(o)) (Netlist.outputs c)

let extract c roots =
  let mask = Array.make (Netlist.size c) false in
  let rec visit n =
    if not mask.(n) then begin
      mask.(n) <- true;
      Array.iter visit (Netlist.fanin c n)
    end
  in
  List.iter visit roots;
  let old_ids = ref [] in
  for i = Netlist.size c - 1 downto 0 do
    if mask.(i) then old_ids := i :: !old_ids
  done;
  let old_ids = Array.of_list !old_ids in
  let new_of_old = Array.make (Netlist.size c) (-1) in
  Array.iteri (fun new_id old_id -> new_of_old.(old_id) <- new_id) old_ids;
  let kinds = Array.map (Netlist.kind c) old_ids in
  let fanins = Array.map (fun o -> Array.map (fun j -> new_of_old.(j)) (Netlist.fanin c o)) old_ids in
  let names = Array.map (Netlist.name c) old_ids in
  let output_list = List.map (fun r -> new_of_old.(r)) roots in
  (Netlist.make ~kinds ~fanins ~names ~output_list, old_ids)
