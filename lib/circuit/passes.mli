(** Netlist optimization passes run to fixpoint.

    A pass is a semantics-preserving rewrite [Netlist.t -> Netlist.t]
    together with a {!Remap.t} tracking where every old node went.  The
    contract every pass obeys (and the property tests enforce):

    - primary inputs are never removed, reordered or renamed — pattern
      sources and weight vectors index inputs positionally;
    - primary outputs keep their node (and hence name), order and
      boolean function — an output gate may change kind (e.g. a
      single-fanin NAND becomes a NOT) but never disappears;
    - every surviving node keeps its original name, so faults on the
      optimized netlist print in original-netlist names for free;
    - [Netlist.eval_outputs] is preserved exactly.

    The driver {!run} applies the pass list round-robin until a full
    round changes nothing (or the round budget is exhausted), composing
    the remaps, and emits [opt.pass.<name>.{runs,changed,nodes_removed}]
    counters plus an [opt.pass.<name>] span per application via [Rt_obs].

    Modeled on Blarney's [MNetlistPass] design: small passes with a
    changed flag, iterated to fixpoint (see DESIGN.md §14). *)

(** Old-id/new-id correspondence across one pass or a whole fixpoint. *)
module Remap : sig
  type t

  val identity : int -> t
  (** [identity n] maps every node of an [n]-node netlist to itself. *)

  val forward : t -> Netlist.node -> Netlist.node option
  (** [forward r old] is the node of the rewritten netlist carrying the
      old node's signal: the node itself when kept, its alias target when
      the node was bypassed (buffer chains, double negation), [None] when
      the signal no longer exists (dead logic, folded constants). *)

  val back : t -> Netlist.node -> Netlist.node
  (** [back r new_] is the old node a surviving node came from.  Total:
      every node of the rewritten netlist originates from exactly one
      old node. *)

  val compose : t -> t -> t
  (** [compose first second]: apply [first] then [second]. *)

  val size_before : t -> int
  val size_after : t -> int

  val is_identity : t -> bool
  (** True iff nothing was removed, aliased or reordered. *)
end

type pass

val pass_name : pass -> string

val apply : pass -> Netlist.t -> (Netlist.t * Remap.t) option
(** One application; [None] means the pass found nothing to change (the
    fixpoint condition). *)

(** {1 The passes} *)

val const_fold : pass
(** Propagates [Const0]/[Const1] through every gate kind: controlling
    constants collapse the gate to a constant, neutral constants are
    stripped from the fanin list, a gate left with one variable fanin
    degenerates to [Buf]/[Not].  Cascades within one application (the
    sweep is topological). *)

val collapse_identity : pass
(** Identity-gate collapsing: non-output [Buf]s are bypassed (chains
    resolve transitively in one application), [Not (Not x)] readers are
    rewired to [x], and single-fanin [And]/[Or]/[Xor] ([Nand]/[Nor]/
    [Xnor]) become wires (inverters). *)

val dead_cone : pass
(** Removes every non-input node from which no primary output is
    reachable.  Primary inputs always survive — the fault model requires
    their stuck-at faults and pattern vectors index them positionally. *)

val relevel : pass
(** Fanout-aware re-levelization: reorders node ids breadth-first by
    logic level, placing high-fanout nodes first within each level so
    widely-read signals sit early and fanout cones stay contiguous for
    the forward array sweeps.  Inputs keep their relative order.  Pure
    permutation — nothing is added or removed — and idempotent. *)

val all : pass list
(** Every pass, in the canonical order [const-fold; identity; dead-cone;
    relevel]. *)

val names : string list
(** CLI names of {!all}, same order. *)

val default_names : string list
(** The pass list the pipeline runs by default (currently = {!names}). *)

val by_name : string -> pass option

(** {1 Fixpoint driver} *)

type pass_stat = {
  runs : int;  (** applications across all rounds *)
  changed : int;  (** applications that rewrote something *)
  nodes_removed : int;  (** net node-count reduction attributed to the pass *)
}

type stats = {
  rounds : int;  (** full rounds executed (>= 1 unless the pass list is empty) *)
  per_pass : (string * pass_stat) list;  (** in pass-list order *)
}

val run : ?rounds:int -> ?passes:pass list -> Netlist.t -> Netlist.t * Remap.t * stats
(** Applies [passes] (default {!all}) in order, repeating until a full
    round reports no change or [rounds] (default 8) rounds have run.
    The returned remap composes every application.  [passes = []] is the
    identity with zero rounds.  Idempotent: running the driver on its own
    output changes nothing. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line per pass: [pass <name>: runs=R changed=C nodes_removed=N]. *)
