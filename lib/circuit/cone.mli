(** Structural cone analysis.

    Input supports and transitive fanin cones drive the supergate signal
    probability engine, PODEM's X-path checks, and the exact BDD engine's
    feasibility test (a node with 40 support variables will not get a BDD). *)

val support : Netlist.t -> Netlist.node -> Netlist.node array
(** Primary inputs in the transitive fanin of a node, ascending ids. *)

val support_size : Netlist.t -> Netlist.node -> int

val all_support_sizes : Netlist.t -> int array
(** Support cardinality for every node, computed in one forward sweep
    (exact, via per-node input sets represented as sorted arrays — cost is
    bounded by [size * inputs] worst case but typically far less). *)

val transitive_fanin : Netlist.t -> Netlist.node -> bool array
(** Membership mask over all nodes (includes the node itself). *)

val transitive_fanout : Netlist.t -> Netlist.node -> bool array
(** Nodes reachable from the given node (includes itself); the region a
    fault effect can reach. *)

val reaches_output : Netlist.t -> Netlist.node -> bool
(** Whether some primary output is in the transitive fanout. *)

val nearest_output : Netlist.t -> int array
(** For every node, the smallest primary-output ordinal (index into
    [Netlist.outputs]) reachable from it; [max_int] for nodes that reach
    no output.  One reverse topological sweep.  Faults sorted by this key
    cluster by output cone, so consecutive faults in a batch touch
    overlapping gate ranges — the scheduling key for cache-warm ppsfp
    workspaces. *)

val fanout_within : Netlist.t -> mask:bool array -> Netlist.node -> Netlist.node array
(** [fanout_within c ~mask root] is the transitive fanout of [root]
    restricted to [mask] — the damage cone of a one-node change inside a
    masked sub-evaluation — as an ascending (therefore topological /
    level-ordered) id array; [[||]] when [root] is not masked.  [mask]
    must be fanin-closed so that every path out of [root] toward a masked
    node stays masked (the masks built by subset plans are). *)

val extract : Netlist.t -> Netlist.node list -> Netlist.t * int array
(** [extract c roots] builds the subcircuit feeding [roots]: the cone's
    inputs are the original primary inputs it depends on; [roots] become the
    outputs.  Returns the new netlist and a map from new node ids to
    original ids. *)
