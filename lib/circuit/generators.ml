let full_adder b x y cin =
  let s1 = Builder.xor2 b x y in
  let sum = Builder.xor2 b s1 cin in
  let c1 = Builder.and2 b x y in
  let c2 = Builder.and2 b s1 cin in
  (sum, Builder.or2 b c1 c2)

let ripple_adder b xs ys cin =
  if Array.length xs <> Array.length ys then invalid_arg "Generators.ripple_adder: width mismatch";
  let w = Array.length xs in
  let sums = Array.make w cin in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder b xs.(i) ys.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let full_subtractor b x y bin =
  let d1 = Builder.xor2 b x y in
  let diff = Builder.xor2 b d1 bin in
  let b1 = Builder.and2 b (Builder.not_ b x) y in
  let b2 = Builder.and2 b (Builder.not_ b d1) bin in
  (diff, Builder.or2 b b1 b2)

let ripple_subtractor b xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Generators.ripple_subtractor: width mismatch";
  let w = Array.length xs in
  let diffs = Array.make w xs.(0) in
  let borrow = ref (Builder.const b false) in
  for i = 0 to w - 1 do
    let d, bo = full_subtractor b xs.(i) ys.(i) !borrow in
    diffs.(i) <- d;
    borrow := bo
  done;
  (diffs, !borrow)

let comparator_slice_7485 b ~a ~b:bb ~lt_in ~eq_in ~gt_in =
  if Array.length a <> 4 || Array.length bb <> 4 then
    invalid_arg "Generators.comparator_slice_7485: operands must be 4 bits";
  let e = Array.init 4 (fun i -> Builder.xnor2 b a.(i) bb.(i)) in
  (* The SN7485 AND-OR structure: a comparison decides at the most
     significant differing bit, guarded by the equality chain above it. *)
  let gt_terms =
    [ Builder.andn b [ a.(3); Builder.not_ b bb.(3) ];
      Builder.andn b [ e.(3); a.(2); Builder.not_ b bb.(2) ];
      Builder.andn b [ e.(3); e.(2); a.(1); Builder.not_ b bb.(1) ];
      Builder.andn b [ e.(3); e.(2); e.(1); a.(0); Builder.not_ b bb.(0) ] ]
  in
  let lt_terms =
    [ Builder.andn b [ Builder.not_ b a.(3); bb.(3) ];
      Builder.andn b [ e.(3); Builder.not_ b a.(2); bb.(2) ];
      Builder.andn b [ e.(3); e.(2); Builder.not_ b a.(1); bb.(1) ];
      Builder.andn b [ e.(3); e.(2); e.(1); Builder.not_ b a.(0); bb.(0) ] ]
  in
  let all_eq = Builder.andn b (Array.to_list e) in
  let cascade cin = match cin with None -> Builder.const b false | Some n -> n in
  let gt_local = Builder.orn b gt_terms in
  let lt_local = Builder.orn b lt_terms in
  let gt_out = Builder.or2 b gt_local (Builder.and2 b all_eq (cascade gt_in)) in
  let lt_out = Builder.or2 b lt_local (Builder.and2 b all_eq (cascade lt_in)) in
  let eq_out =
    match eq_in with None -> all_eq | Some e_in -> Builder.and2 b all_eq e_in
  in
  (lt_out, eq_out, gt_out)

let equality_comparator b xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Generators.equality_comparator: width mismatch";
  let eqs = Array.to_list (Array.map2 (fun x y -> Builder.xnor2 b x y) xs ys) in
  Builder.andn b eqs

let parity b xs =
  let rec reduce = function
    | [] -> Builder.const b false
    | [ x ] -> x
    | nodes ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ x ] -> List.rev (x :: acc)
        | x :: y :: rest -> pair (Builder.xor2 b x y :: acc) rest
      in
      reduce (pair [] nodes)
  in
  reduce (Array.to_list xs)

let decoder b sel =
  let n = Array.length sel in
  let nots = Array.map (Builder.not_ b) sel in
  Array.init (1 lsl n) (fun code ->
      let bits =
        List.init n (fun i -> if (code lsr i) land 1 = 1 then sel.(i) else nots.(i))
      in
      Builder.andn b bits)

let alu b ~op ~a ~b:bb ~cin =
  if Array.length op <> 3 then invalid_arg "Generators.alu: op must be 3 bits";
  if Array.length a <> Array.length bb then invalid_arg "Generators.alu: width mismatch";
  let w = Array.length a in
  let d = decoder b op in
  let add_r, add_c = ripple_adder b a bb cin in
  let sub_r, sub_b = ripple_subtractor b a bb in
  let and_r = Array.map2 (fun x y -> Builder.and2 b x y) a bb in
  let or_r = Array.map2 (fun x y -> Builder.or2 b x y) a bb in
  let xor_r = Array.map2 (fun x y -> Builder.xor2 b x y) a bb in
  let nota_r = Array.map (Builder.not_ b) a in
  let result =
    Array.init w (fun i ->
        Builder.orn b
          [ Builder.and2 b d.(0) add_r.(i);
            Builder.and2 b d.(1) sub_r.(i);
            Builder.and2 b d.(2) and_r.(i);
            Builder.and2 b d.(3) or_r.(i);
            Builder.and2 b d.(4) xor_r.(i);
            Builder.and2 b d.(5) nota_r.(i);
            Builder.and2 b d.(6) a.(i);
            Builder.and2 b d.(7) bb.(i) ])
  in
  let carry_out = Builder.or2 b (Builder.and2 b d.(0) add_c) (Builder.and2 b d.(1) sub_b) in
  let zero = Builder.gate b Gate.Nor (Array.to_list result) in
  (result, carry_out, zero)

(* --- Paper circuits ----------------------------------------------------- *)

let s1_comparator () =
  let b = Builder.create () in
  let a_bits = Builder.inputs b "a" 24 in
  let b_bits = Builder.inputs b "b" 24 in
  let slice j (lt, eq, gt) =
    let sub arr = Array.sub arr (4 * j) 4 in
    comparator_slice_7485 b ~a:(sub a_bits) ~b:(sub b_bits) ~lt_in:lt ~eq_in:eq ~gt_in:gt
  in
  let rec cascade j acc =
    if j = 6 then acc
    else begin
      let lt, eq, gt = acc in
      cascade (j + 1) (slice j (lt, eq, gt) |> fun (l, e, g) -> (Some l, Some e, Some g))
    end
  in
  (* Slice 0 covers the least significant nibble with the (0,1,0) constant
     cascade assignment; constants fold away. *)
  let lt, eq, gt = cascade 0 (None, None, None) in
  let get = function Some n -> n | None -> assert false in
  Builder.output b ~name:"a_lt_b" (get lt);
  Builder.output b ~name:"a_eq_b" (get eq);
  Builder.output b ~name:"a_gt_b" (get gt);
  Builder.finalize b

(* Non-restoring array divider built from controlled add/subtract (CAS)
   rows: every cell output feeds the next row, so — unlike a restoring
   array with its discarded difference bits — almost no fault is
   structurally untestable.  The partial remainder is kept in (width+2)-bit
   two's complement; row control T = 1 subtracts the divisor, T = 0 adds
   it, following the sign of the previous partial remainder. *)
let s2_divider ?(width = 16) () =
  if width < 2 then invalid_arg "Generators.s2_divider: width must be >= 2";
  let b = Builder.create () in
  let dividend = Builder.inputs b "d" width in
  let divisor = Builder.inputs b "v" width in
  let zero = Builder.const b false in
  let wp = width + 2 in
  let v_ext = Array.append divisor [| zero; zero |] in
  (* One CAS row: p + (v xor T) + T, i.e. p - v when T=1 and p + v when
     T=0 (two's complement). *)
  let cas_row p t =
    let bx = Array.map (fun vj -> Builder.xor2 b vj t) v_ext in
    let sums, _carry = ripple_adder b p bx t in
    sums
  in
  let p = ref (Array.make wp zero) in
  let quotient = Array.make width zero in
  let t = ref (Builder.const b true) in
  for i = width - 1 downto 0 do
    (* Shift the partial remainder left, inserting the next dividend bit;
       |P| < V keeps the doubled value inside wp-bit two's complement. *)
    let shifted = Array.init wp (fun j -> if j = 0 then dividend.(i) else !p.(j - 1)) in
    let sums = cas_row shifted !t in
    p := sums;
    let sign = sums.(wp - 1) in
    quotient.(i) <- Builder.not_ b sign;
    t := Builder.not_ b sign
  done;
  (* Final correction: a negative partial remainder gets the divisor added
     back (the addend is V masked by the sign). *)
  let sign = !p.(wp - 1) in
  let vmask = Array.map (fun vj -> Builder.and2 b sign vj) v_ext in
  let remainder, _ = ripple_adder b !p vmask zero in
  Array.iteri (fun i q -> Builder.output b ~name:(Printf.sprintf "q%d" i) q) quotient;
  Array.iteri
    (fun j r -> if j < width then Builder.output b ~name:(Printf.sprintf "r%d" j) r)
    remainder;
  (* Status flags of the real datapath: divide-by-zero, the q = 1 fast path
     (dividend equal to divisor) and quotient overflow-to-maximum (all
     quotient bits set, i.e. v = 1 and d = 2^w - 1, a 4^-w event).  These
     flags are what makes the divider random-pattern resistant like the
     paper's S2: its Table 1 entry needs ~10^11 equiprobable patterns. *)
  Builder.output b ~name:"div0" (Builder.gate b Gate.Nor (Array.to_list divisor));
  Builder.output b ~name:"q_one" (equality_comparator b dividend divisor);
  Builder.output b ~name:"q_max" (Builder.andn b (Array.to_list quotient));
  Builder.finalize b

(* --- ISCAS-85-like circuits --------------------------------------------- *)

let c432ish () =
  let b = Builder.create () in
  let channels = Array.init 4 (fun j -> Builder.inputs b (Printf.sprintf "ch%d_r" j) 8) in
  let enables = Builder.inputs b "en" 4 in
  (* The enable gating keeps every channel's activity probability near 0.5,
     which is what makes the real C432 an easy random-test target. *)
  let active =
    Array.mapi (fun j ch -> Builder.and2 b enables.(j) (Builder.orn b (Array.to_list ch))) channels
  in
  let grant =
    Array.init 4 (fun j ->
        if j = 0 then active.(0)
        else begin
          let higher = Array.to_list (Array.sub active 0 j) in
          Builder.and2 b active.(j) (Builder.gate b Gate.Nor higher)
        end)
  in
  for i = 0 to 7 do
    let terms = List.init 4 (fun j -> Builder.and2 b grant.(j) channels.(j).(i)) in
    Builder.output b ~name:(Printf.sprintf "line%d" i) (Builder.orn b terms)
  done;
  Builder.output b ~name:"code1" (Builder.or2 b grant.(2) grant.(3));
  Builder.output b ~name:"code0" (Builder.or2 b grant.(1) grant.(3));
  Builder.output b ~name:"any" (Builder.orn b (Array.to_list active));
  Builder.finalize b

(* Single-error-correcting core shared by c499ish / c1355ish / c1908ish.
   Data bit i carries the injective nonzero signature (i * 7 mod 255) + 1 in
   [r] syndrome bits; the decode lines are r-input ANDs. *)
let sec_core ~xor2 ~data_bits ~check_bits ~ded b =
  let data = Builder.inputs b "d" data_bits in
  let check = Builder.inputs b "c" check_bits in
  let sig_of i = ((i * 7) mod 255) + 1 in
  let xor_list nodes =
    match nodes with
    | [] -> Builder.const b false
    | first :: rest -> List.fold_left (fun acc n -> xor2 b acc n) first rest
  in
  let syndrome =
    Array.init check_bits (fun k ->
        let members =
          List.filter (fun i -> (sig_of i lsr k) land 1 = 1) (List.init data_bits Fun.id)
        in
        xor_list (check.(k) :: List.map (fun i -> data.(i)) members))
  in
  let syn_not = Array.map (Builder.not_ b) syndrome in
  let corrected =
    Array.init data_bits (fun i ->
        let s = sig_of i in
        let match_bits =
          List.init check_bits (fun k ->
              if (s lsr k) land 1 = 1 then syndrome.(k) else syn_not.(k))
        in
        let decode = Builder.andn b match_bits in
        xor2 b data.(i) decode)
  in
  Array.iteri (fun i n -> Builder.output b ~name:(Printf.sprintf "o%d" i) n) corrected;
  if ded then begin
    (* Double-error detect: nonzero syndrome with even overall parity. *)
    let p = Builder.input b "p" in
    let overall = xor_list (p :: Array.to_list data @ Array.to_list check) in
    let nonzero = Builder.orn b (Array.to_list syndrome) in
    Builder.output b ~name:"ded" (Builder.and2 b nonzero (Builder.not_ b overall));
    (* Special-value detector (all-ones word), a moderately random-resistant
       cone like the real C1908's. *)
    Builder.output b ~name:"allones" (Builder.andn b (Array.to_list data))
  end

let c499ish () =
  let b = Builder.create () in
  sec_core ~xor2:Builder.xor2 ~data_bits:32 ~check_bits:8 ~ded:false b;
  Builder.finalize b

let c1355ish () =
  let b = Builder.create () in
  (* XOR expanded into four NAND2s, as C1355 expands C499. *)
  let nand_xor b x y =
    let t1 = Builder.nand2 b x y in
    let t2 = Builder.nand2 b x t1 in
    let t3 = Builder.nand2 b y t1 in
    Builder.nand2 b t2 t3
  in
  sec_core ~xor2:nand_xor ~data_bits:32 ~check_bits:8 ~ded:false b;
  Builder.finalize b

let c1908ish () =
  let b = Builder.create () in
  sec_core ~xor2:Builder.xor2 ~data_bits:16 ~check_bits:5 ~ded:true b;
  Builder.finalize b

let c880ish () =
  let b = Builder.create () in
  let a = Builder.inputs b "a" 8 in
  let bb = Builder.inputs b "b" 8 in
  let op = Builder.inputs b "op" 3 in
  let cin = Builder.input b "cin" in
  let en = Builder.inputs b "en" 2 in
  let result, cout, zero = alu b ~op ~a ~b:bb ~cin in
  let en_ok = Builder.and2 b en.(0) en.(1) in
  Array.iteri
    (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" i) (Builder.and2 b en_ok r))
    result;
  Builder.output b ~name:"cout" cout;
  Builder.output b ~name:"zero" zero;
  Builder.output b ~name:"par" (parity b a);
  Builder.output b ~name:"a_eq_b" (equality_comparator b a bb);
  Builder.finalize b

let c2670ish () =
  let b = Builder.create () in
  let a = Builder.inputs b "a" 12 in
  let bb = Builder.inputs b "b" 12 in
  let op = Builder.inputs b "op" 3 in
  let cin = Builder.input b "cin" in
  let en = Builder.inputs b "en" 4 in
  let ea = Builder.inputs b "ea" 16 in
  let eb = Builder.inputs b "eb" 16 in
  let result, cout, zero = alu b ~op ~a ~b:bb ~cin in
  Array.iteri (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" i) r) result;
  Builder.output b ~name:"cout" cout;
  Builder.output b ~name:"zero" zero;
  (* The random-resistant part: a 16-bit equality behind a 4-deep enable
     chain; detection of its stuck-at-0 needs a 2^-20 event under
     equiprobable patterns. *)
  let eq = equality_comparator b ea eb in
  let en_ok = Builder.andn b (Array.to_list en) in
  Builder.output b ~name:"eq_en" (Builder.and2 b eq en_ok);
  Builder.output b ~name:"par_a" (parity b ea);
  Builder.finalize b

let c3540ish () =
  let b = Builder.create () in
  let a = Builder.inputs b "a" 8 in
  let bb = Builder.inputs b "b" 8 in
  let op = Builder.inputs b "op" 3 in
  let cin = Builder.input b "cin" in
  let mode = Builder.inputs b "mode" 2 in
  let result, cout, zero = alu b ~op ~a ~b:bb ~cin in
  (* BCD adjust of the low nibble when mode = 01: add 6 if nibble > 9. *)
  let lo = Array.sub result 0 4 in
  let gt9 = Builder.and2 b lo.(3) (Builder.or2 b lo.(2) lo.(1)) in
  let six = [| Builder.const b false; Builder.const b true; Builder.const b true;
               Builder.const b false |] in
  let adj, _ = ripple_adder b lo six (Builder.const b false) in
  let do_adj = Builder.andn b [ gt9; mode.(0); Builder.not_ b mode.(1) ] in
  let adjusted = Array.init 4 (fun i -> Builder.mux b ~sel:do_adj lo.(i) adj.(i)) in
  Array.iteri (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" i) r) adjusted;
  Array.iteri (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" (i + 4)) r)
    (Array.sub result 4 4);
  Builder.output b ~name:"cout" cout;
  Builder.output b ~name:"zero" zero;
  Builder.output b ~name:"ovf" (Builder.xor2 b cout result.(7));
  Builder.output b ~name:"a_eq_b" (equality_comparator b a bb);
  Builder.finalize b

let c5315ish () =
  let b = Builder.create () in
  let a = Builder.inputs b "a" 9 in
  let bb = Builder.inputs b "b" 9 in
  let op = Builder.inputs b "op" 3 in
  let cin = Builder.input b "cin" in
  let result, cout, zero = alu b ~op ~a ~b:bb ~cin in
  Array.iteri (fun i r -> Builder.output b ~name:(Printf.sprintf "f%d" i) r) result;
  Builder.output b ~name:"cout" cout;
  Builder.output b ~name:"zero" zero;
  let _, borrow = ripple_subtractor b a bb in
  let eq = equality_comparator b a bb in
  Builder.output b ~name:"a_lt_b" borrow;
  Builder.output b ~name:"a_eq_b" eq;
  Builder.output b ~name:"a_gt_b" (Builder.nor2 b borrow eq);
  Builder.output b ~name:"par" (parity b (Array.append a bb));
  Builder.finalize b

let c6288ish ?(width = 16) () =
  if width < 2 then invalid_arg "Generators.c6288ish: width must be >= 2";
  let b = Builder.create () in
  let a = Builder.inputs b "a" width in
  let bb = Builder.inputs b "b" width in
  (* School-book array multiplier.  Invariant before processing row j: the
     product of rows 0..j-1 equals the fixed output bits p_0..p_{j-2} plus
     H * 2^(j-1), with H of width+1 bits.  Each step computes
     S = H + (row_j << 1) and peels off S_0 as the next output bit. *)
  let zero = Builder.const b false in
  let pp i j = Builder.and2 b a.(i) bb.(j) in
  let h = ref (Array.append (Array.init width (fun i -> pp i 0)) [| zero |]) in
  let low_bits = ref [] in
  for j = 1 to width - 1 do
    let row_sh = Array.append [| zero |] (Array.init width (fun i -> pp i j)) in
    let s, cout = ripple_adder b !h row_sh zero in
    low_bits := s.(0) :: !low_bits;
    h := Array.append (Array.sub s 1 width) [| cout |]
  done;
  List.iteri
    (fun k n -> Builder.output b ~name:(Printf.sprintf "p%d" (width - 2 - k)) n)
    !low_bits;
  Array.iteri
    (fun i n -> Builder.output b ~name:(Printf.sprintf "p%d" (width - 1 + i)) n)
    !h;
  Builder.finalize b

let c7552ish () =
  let b = Builder.create () in
  let a = Builder.inputs b "a" 32 in
  let bb = Builder.inputs b "b" 32 in
  let cin = Builder.input b "cin" in
  let sums, cout = ripple_adder b a bb cin in
  Array.iteri (fun i s -> Builder.output b ~name:(Printf.sprintf "s%d" i) s) sums;
  Builder.output b ~name:"cout" cout;
  (* 32-bit magnitude comparator from eight cascaded SN7485-style slices:
     the equality chain makes this random-resistant like the real C7552. *)
  let rec cascade j acc =
    if j = 8 then acc
    else begin
      let lt, eq, gt = acc in
      let sub arr = Array.sub arr (4 * j) 4 in
      let l, e, g =
        comparator_slice_7485 b ~a:(sub a) ~b:(sub bb) ~lt_in:lt ~eq_in:eq ~gt_in:gt
      in
      cascade (j + 1) (Some l, Some e, Some g)
    end
  in
  let lt, eq, gt = cascade 0 (None, None, None) in
  let get = function Some n -> n | None -> assert false in
  Builder.output b ~name:"a_lt_b" (get lt);
  Builder.output b ~name:"a_eq_b" (get eq);
  Builder.output b ~name:"a_gt_b" (get gt);
  Builder.output b ~name:"par_a" (parity b a);
  Builder.output b ~name:"par_b" (parity b bb);
  Builder.finalize b

(* --- Pathological and synthetic ------------------------------------------ *)

let antagonist ?(k = 12) () =
  let b = Builder.create () in
  let xs = Builder.inputs b "x" k in
  Builder.output b ~name:"all_ones" (Builder.andn b (Array.to_list xs));
  Builder.output b ~name:"all_zeros" (Builder.gate b Gate.Nor (Array.to_list xs));
  Builder.finalize b

let wide_and n =
  let b = Builder.create () in
  let xs = Builder.inputs b "x" n in
  Builder.output b ~name:"y" (Builder.andn b (Array.to_list xs));
  Builder.finalize b

let random_circuit ~inputs ~gates ~seed =
  if inputs < 2 || gates < 1 then invalid_arg "Generators.random_circuit";
  let rng = Rt_util.Rng.create seed in
  let b = Builder.create ~fold:false ~prune:false () in
  let ins = Builder.inputs b "x" inputs in
  let nodes = ref (Array.to_list ins) in
  let count = ref inputs in
  let kinds = [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Not |] in
  let pick_distinct n =
    (* Sample n distinct existing nodes, biased towards recent ones for
       depth. *)
    let pool = Array.of_list !nodes in
    let len = Array.length pool in
    let chosen = Hashtbl.create 8 in
    let rec draw acc need =
      if need = 0 then acc
      else begin
        let idx =
          if Rt_util.Rng.bool rng then len - 1 - Rt_util.Rng.int rng (min len (1 + (len / 4)))
          else Rt_util.Rng.int rng len
        in
        if Hashtbl.mem chosen idx then draw acc need
        else begin
          Hashtbl.add chosen idx ();
          draw (pool.(idx) :: acc) (need - 1)
        end
      end
    in
    draw [] (min n len)
  in
  let read = Hashtbl.create (inputs + gates) in
  for _ = 1 to gates do
    let k = kinds.(Rt_util.Rng.int rng (Array.length kinds)) in
    let arity = if k = Gate.Not then 1 else 2 + Rt_util.Rng.int rng 3 in
    let fanin = pick_distinct arity in
    List.iter (fun f -> Hashtbl.replace read f ()) fanin;
    let g = Builder.gate b k fanin in
    nodes := g :: !nodes;
    incr count
  done;
  (* Unread nodes (gates and inputs alike) become primary outputs so that
     every gate is observable and every input fault detectable. *)
  List.iter (fun n -> if not (Hashtbl.mem read n) then Builder.output b n) (List.rev !nodes);
  Builder.finalize b

let paper_suite =
  [ ("s1", s1_comparator);
    ("s2", fun () -> s2_divider ());
    ("c432ish", c432ish);
    ("c499ish", c499ish);
    ("c880ish", c880ish);
    ("c1355ish", c1355ish);
    ("c1908ish", c1908ish);
    ("c2670ish", c2670ish);
    ("c3540ish", c3540ish);
    ("c5315ish", c5315ish);
    ("c6288ish", fun () -> c6288ish ());
    ("c7552ish", c7552ish) ]

let hard_suite =
  [ ("s1", s1_comparator);
    ("s2", fun () -> s2_divider ());
    ("c2670ish", c2670ish);
    ("c7552ish", c7552ish) ]

let by_name name =
  match List.assoc_opt name paper_suite with
  | Some g -> Some g
  | None ->
    (match name with
     | "antagonist" -> Some (fun () -> antagonist ())
     | _ ->
       (* Parameterised forms: "s2:W" / "c6288ish:W" (operand width) and
          "wide_and-N". *)
       (match String.index_opt name ':' with
        | Some i ->
          let base = String.sub name 0 i in
          (match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
           | Some w when w > 0 ->
             (match base with
              | "s2" -> Some (fun () -> s2_divider ~width:w ())
              | "c6288ish" -> Some (fun () -> c6288ish ~width:w ())
              | _ -> None)
           | Some _ | None -> None)
        | None ->
          (match String.index_opt name '-' with
           | Some i when String.sub name 0 i = "wide_and" ->
             (try
                let n = int_of_string (String.sub name (i + 1) (String.length name - i - 1)) in
                Some (fun () -> wide_and n)
              with Failure _ -> None)
           | _ -> None)))
