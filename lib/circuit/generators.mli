(** Parameterised circuit generators.

    The paper evaluates on the ISCAS-85 benchmarks plus two custom circuits
    (S1: a 24-bit comparator built from six SN7485 slices; S2: the
    combinational part of a 32-bit divider).  The original netlists are not
    redistributable here, so this module generates functionally analogous
    circuits — see DESIGN.md §2 for the substitution argument.  All
    generators are deterministic. *)

(** {1 Arithmetic building blocks} *)

val full_adder :
  Builder.t -> Netlist.node -> Netlist.node -> Netlist.node -> Netlist.node * Netlist.node
(** [full_adder b x y cin] is [(sum, carry_out)]. *)

val ripple_adder :
  Builder.t ->
  Netlist.node array ->
  Netlist.node array ->
  Netlist.node ->
  Netlist.node array * Netlist.node
(** [(sums, carry_out)]; operands little-endian and of equal width. *)

val ripple_subtractor :
  Builder.t ->
  Netlist.node array ->
  Netlist.node array ->
  Netlist.node array * Netlist.node
(** [x - y] as [(difference, borrow_out)]; borrow-out true when [x < y]. *)

val comparator_slice_7485 :
  Builder.t ->
  a:Netlist.node array ->
  b:Netlist.node array ->
  lt_in:Netlist.node option ->
  eq_in:Netlist.node option ->
  gt_in:Netlist.node option ->
  Netlist.node * Netlist.node * Netlist.node
(** Gate-level 4-bit magnitude comparator in the style of the TI SN7485,
    cascadable; [None] cascade inputs mean the constant (0,1,0) assignment
    with the implied logic simplified away (the paper's "some redundancies
    are removed").  Result is [(a_lt_b, a_eq_b, a_gt_b)]. *)

val equality_comparator : Builder.t -> Netlist.node array -> Netlist.node array -> Netlist.node
(** Wide AND of XNORs — the canonical random-pattern-resistant structure. *)

val parity : Builder.t -> Netlist.node array -> Netlist.node
(** Balanced XOR tree. *)

val decoder : Builder.t -> Netlist.node array -> Netlist.node array
(** [decoder b sel] is the 2^n one-hot lines of an n-to-2^n decoder. *)

val alu :
  Builder.t ->
  op:Netlist.node array ->
  a:Netlist.node array ->
  b:Netlist.node array ->
  cin:Netlist.node ->
  Netlist.node array * Netlist.node * Netlist.node
(** Datapath ALU: 3-bit [op] selects ADD, SUB, AND, OR, XOR, NOT-A, PASS-A,
    PASS-B; returns [(result, carry_out, zero_flag)].  The zero flag is a
    wide NOR — a deliberate source of low-probability signals. *)

(** {1 Paper circuits} *)

val s1_comparator : unit -> Netlist.t
(** S1: 24-bit magnitude comparator from six cascaded SN7485-style slices
    (paper Fig. 1): 48 inputs, 3 outputs. *)

val s2_divider : ?width:int -> unit -> Netlist.t
(** S2: combinational restoring array divider; [width]-bit dividend and
    divisor (default 16; the paper's original is 32 — pass [~width:32] for
    full scale).  Outputs quotient and remainder. *)

(** {1 ISCAS-85-like synthetic equivalents}

    Named [cNNNish] after the benchmark whose role they play.  Gate counts
    are of the same order; more importantly each reproduces the hard-fault
    population that makes (or does not make) its namesake random-pattern
    resistant. *)

val c432ish : unit -> Netlist.t
(** Priority interrupt controller: 4 channels x 9 request lines. *)

val c499ish : unit -> Netlist.t
(** 32-bit single-error-correction circuit (syndrome + decode + correct),
    XOR-rich. *)

val c880ish : unit -> Netlist.t
(** 8-bit ALU with control decode. *)

val c1355ish : unit -> Netlist.t
(** Same function as {!c499ish} with XORs expanded into NAND4 blocks, as the
    real C1355 expands C499. *)

val c1908ish : unit -> Netlist.t
(** 16-bit SEC/DED checker (adds double-error detection). *)

val c2670ish : unit -> Netlist.t
(** 12-bit ALU plus wide equality comparators behind enable chains — the
    random-resistant circuit of the paper's Tables 1-4. *)

val c3540ish : unit -> Netlist.t
(** 8-bit ALU with mode decoding and saturation flags. *)

val c5315ish : unit -> Netlist.t
(** 9-bit ALU with dual datapaths and comparison outputs. *)

val c6288ish : ?width:int -> unit -> Netlist.t
(** Array multiplier, default 16x16 (~2400 gates like C6288). *)

val c7552ish : unit -> Netlist.t
(** 32-bit adder + 32-bit magnitude comparator + parity — random-resistant
    like C7552. *)

(** {1 Pathological and synthetic circuits} *)

val antagonist : ?k:int -> unit -> Netlist.t
(** §5.3 limit case: a wide AND and a wide NOR over the {e same} [k] inputs
    (default 12).  Their output stuck-at-0 faults need all-ones resp.
    all-zeros patterns: no single distribution serves both. *)

val wide_and : int -> Netlist.t
(** Single [n]-input AND; the textbook hard-to-test-randomly circuit. *)

val random_circuit : inputs:int -> gates:int -> seed:int -> Netlist.t
(** Random reconvergent DAG over [And;Or;Nand;Nor;Xor;Not] used by property
    tests; every gate reaches an output. *)

(** {1 Registry} *)

val paper_suite : (string * (unit -> Netlist.t)) list
(** The twelve circuits of the paper's Table 1, in table order: s1, s2,
    c432ish, c499ish, c880ish, c1355ish, c1908ish, c2670ish, c3540ish,
    c5315ish, c6288ish, c7552ish. *)

val hard_suite : (string * (unit -> Netlist.t)) list
(** The starred circuits (random-resistant): s1, s2, c2670ish, c7552ish. *)

val by_name : string -> (unit -> Netlist.t) option
(** Lookup across [paper_suite] plus [antagonist]/[wide_and-N] and the
    parameterised widths [s2:W] and [c6288ish:W]. *)
