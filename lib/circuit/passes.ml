(* Fixpoint netlist simplification (see passes.mli for the pass contract).

   Every pass is expressed as an action table over the old node ids —
   Keep / Replace (new kind+fanins) / Alias (bypass to an earlier node) /
   Drop — handed to one [rebuild] function that resolves alias chains,
   renumbers the survivors in old order, maps fanins and outputs, and
   returns the new netlist plus the Remap.  [Netlist.make] re-validates
   arities, topological order and name uniqueness on every rebuild, so a
   buggy pass fails loudly instead of corrupting downstream stages. *)

module Remap = struct
  type t = {
    fwd : int array;  (* old -> new (alias-resolved), -1 when the signal is gone *)
    bwd : int array;  (* new -> the old node it came from *)
  }

  let identity n = { fwd = Array.init n Fun.id; bwd = Array.init n Fun.id }

  let forward r o =
    let v = r.fwd.(o) in
    if v < 0 then None else Some v

  let back r n = r.bwd.(n)

  let compose first second =
    { fwd = Array.map (fun m -> if m < 0 then -1 else second.fwd.(m)) first.fwd;
      bwd = Array.map (fun m -> first.bwd.(m)) second.bwd }

  let size_before r = Array.length r.fwd
  let size_after r = Array.length r.bwd

  let is_identity r =
    size_before r = size_after r
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if v <> i then ok := false) r.fwd;
    !ok
end

type action =
  | Keep
  | Replace of Gate.kind * int array  (* fanins as old ids *)
  | Alias of int  (* bypass: readers use this (earlier) old node instead *)
  | Drop

(* Passes only produce non-Keep actions for genuine rewrites, so "any
   action <> Keep" is the changed flag. *)
let rebuild c actions =
  let n = Netlist.size c in
  let changed = ref false in
  (* Alias chains resolve downward: an alias target is always an earlier
     node, so its own resolution is already final. *)
  let resolve = Array.make n (-1) in
  for i = 0 to n - 1 do
    resolve.(i) <-
      (match actions.(i) with
       | Alias j ->
         changed := true;
         let r = resolve.(j) in
         if r < 0 then invalid_arg "Passes.rebuild: alias to a dropped node";
         r
       | Drop ->
         changed := true;
         -1
       | Keep -> i
       | Replace _ ->
         changed := true;
         i)
  done;
  if not !changed then None
  else begin
    let newid = Array.make n (-1) in
    let count = ref 0 in
    for i = 0 to n - 1 do
      match actions.(i) with
      | Keep | Replace _ ->
        newid.(i) <- !count;
        incr count
      | Alias _ | Drop -> ()
    done;
    let m = !count in
    let kinds = Array.make m Gate.Input in
    let fanins = Array.make m [||] in
    let names = Array.make m "" in
    let bwd = Array.make m 0 in
    let map_old j =
      let r = resolve.(j) in
      if r < 0 then invalid_arg "Passes.rebuild: live node reads a dropped signal";
      newid.(r)
    in
    for i = 0 to n - 1 do
      if newid.(i) >= 0 then begin
        let k, fi =
          match actions.(i) with
          | Keep -> (Netlist.kind c i, Netlist.fanin c i)
          | Replace (k, f) -> (k, f)
          | Alias _ | Drop -> assert false
        in
        let ni = newid.(i) in
        kinds.(ni) <- k;
        fanins.(ni) <- Array.map map_old fi;
        names.(ni) <- Netlist.name c i;
        bwd.(ni) <- i
      end
    done;
    let output_list = Array.to_list (Array.map map_old (Netlist.outputs c)) in
    let fwd = Array.init n (fun i -> if resolve.(i) < 0 then -1 else newid.(resolve.(i))) in
    Some (Netlist.make ~kinds ~fanins ~names ~output_list, { Remap.fwd; bwd })
  end

(* --- constant folding ------------------------------------------------------- *)

(* Gate simplification given the split of its fanins into constant values
   and variable (old-id) fanins; only called when [consts <> []].  Same
   algebra as Builder.fold_gate, restated over netlist ids. *)
let fold_kind k ~consts ~vars =
  match k with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> `Keep
  | Gate.Buf -> (match consts with [ v ] -> `Const v | _ -> `Keep)
  | Gate.Not -> (match consts with [ v ] -> `Const (not v) | _ -> `Keep)
  | Gate.And | Gate.Nand ->
    let inv = k = Gate.Nand in
    if List.mem false consts then `Const inv
    else begin
      match vars with
      | [] -> `Const (not inv)
      | [ x ] -> if inv then `Inv x else `Wire x
      | _ :: _ :: _ -> `Rebuild ((if inv then Gate.Nand else Gate.And), vars)
    end
  | Gate.Or | Gate.Nor ->
    let inv = k = Gate.Nor in
    if List.mem true consts then `Const (not inv)
    else begin
      match vars with
      | [] -> `Const inv
      | [ x ] -> if inv then `Inv x else `Wire x
      | _ :: _ :: _ -> `Rebuild ((if inv then Gate.Nor else Gate.Or), vars)
    end
  | Gate.Xor | Gate.Xnor ->
    let flip = List.fold_left (fun acc v -> acc <> v) (k = Gate.Xnor) consts in
    (match vars with
     | [] -> `Const flip
     | [ x ] -> if flip then `Inv x else `Wire x
     | _ :: _ :: _ -> `Rebuild ((if flip then Gate.Xnor else Gate.Xor), vars))

let const_fold_run c =
  let n = Netlist.size c in
  let actions = Array.make n Keep in
  (* Constant value of each node *after* this pass; the sweep is
     topological, so a fold cascades through its readers immediately. *)
  let cval = Array.make n None in
  for i = 0 to n - 1 do
    match Netlist.kind c i with
    | Gate.Input -> ()
    | Gate.Const0 -> cval.(i) <- Some false
    | Gate.Const1 -> cval.(i) <- Some true
    | k ->
      let consts = ref [] and vars = ref [] in
      Array.iter
        (fun j ->
          match cval.(j) with
          | Some v -> consts := v :: !consts
          | None -> vars := j :: !vars)
        (Netlist.fanin c i);
      if !consts <> [] then begin
        match fold_kind k ~consts:(List.rev !consts) ~vars:(List.rev !vars) with
        | `Keep -> ()
        | `Const v ->
          cval.(i) <- Some v;
          actions.(i) <- Replace ((if v then Gate.Const1 else Gate.Const0), [||])
        | `Wire x ->
          actions.(i) <-
            (if Netlist.is_output c i then Replace (Gate.Buf, [| x |]) else Alias x)
        | `Inv x -> actions.(i) <- Replace (Gate.Not, [| x |])
        | `Rebuild (k', vars) -> actions.(i) <- Replace (k', Array.of_list vars)
      end
  done;
  rebuild c actions

(* --- identity-gate collapsing ------------------------------------------------ *)

let collapse_identity_run c =
  let n = Netlist.size c in
  let actions = Array.make n Keep in
  for i = 0 to n - 1 do
    let out = Netlist.is_output c i in
    let wire x = if out then Replace (Gate.Buf, [| x |]) else Alias x in
    match Netlist.kind c i with
    | Gate.Buf -> if not out then actions.(i) <- Alias (Netlist.fanin c i).(0)
    | Gate.Not ->
      let j = (Netlist.fanin c i).(0) in
      if Netlist.kind c j = Gate.Not then actions.(i) <- wire (Netlist.fanin c j).(0)
    | Gate.And | Gate.Or | Gate.Xor ->
      let fi = Netlist.fanin c i in
      if Array.length fi = 1 then actions.(i) <- wire fi.(0)
    | Gate.Nand | Gate.Nor | Gate.Xnor ->
      let fi = Netlist.fanin c i in
      if Array.length fi = 1 then actions.(i) <- Replace (Gate.Not, [| fi.(0) |])
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
  done;
  rebuild c actions

(* --- dead-cone elimination --------------------------------------------------- *)

let dead_cone_run c =
  let n = Netlist.size c in
  let live = Array.make n false in
  let rec visit i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter visit (Netlist.fanin c i)
    end
  in
  Array.iter visit (Netlist.outputs c);
  let actions = Array.make n Keep in
  let any = ref false in
  for i = 0 to n - 1 do
    if (not live.(i)) && Netlist.kind c i <> Gate.Input then begin
      actions.(i) <- Drop;
      any := true
    end
  done;
  if !any then rebuild c actions else None

(* --- fanout-aware re-levelization -------------------------------------------- *)

(* Sort key (level, tie, old id) with inputs pinned first inside level 0
   (their relative order is load-bearing) and higher-fanout nodes earlier
   within a level.  Idempotent: after renumbering, new ids ascend in
   exactly this key order, so a second sort is the identity. *)
let relevel_run c =
  let n = Netlist.size c in
  let key i =
    let tie =
      match Netlist.kind c i with
      | Gate.Input -> min_int
      | _ -> -Array.length (Netlist.fanout c i)
    in
    (Netlist.level c i, tie, i)
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare (key a) (key b)) order;
  let ident = ref true in
  Array.iteri (fun ni oi -> if ni <> oi then ident := false) order;
  if !ident then None
  else begin
    let newid = Array.make n 0 in
    Array.iteri (fun ni oi -> newid.(oi) <- ni) order;
    let kinds = Array.make n Gate.Input in
    let fanins = Array.make n [||] in
    let names = Array.make n "" in
    for ni = 0 to n - 1 do
      let oi = order.(ni) in
      kinds.(ni) <- Netlist.kind c oi;
      fanins.(ni) <- Array.map (fun j -> newid.(j)) (Netlist.fanin c oi);
      names.(ni) <- Netlist.name c oi
    done;
    let output_list = Array.to_list (Array.map (fun o -> newid.(o)) (Netlist.outputs c)) in
    Some
      ( Netlist.make ~kinds ~fanins ~names ~output_list,
        { Remap.fwd = newid; bwd = order } )
  end

(* --- registry ---------------------------------------------------------------- *)

type pass = { p_name : string; p_run : Netlist.t -> (Netlist.t * Remap.t) option }

let pass_name p = p.p_name
let apply p c = p.p_run c

let const_fold = { p_name = "const-fold"; p_run = const_fold_run }
let collapse_identity = { p_name = "identity"; p_run = collapse_identity_run }
let dead_cone = { p_name = "dead-cone"; p_run = dead_cone_run }
let relevel = { p_name = "relevel"; p_run = relevel_run }

let all = [ const_fold; collapse_identity; dead_cone; relevel ]
let names = List.map pass_name all
let default_names = names
let by_name name = List.find_opt (fun p -> p.p_name = name) all

(* --- fixpoint driver ---------------------------------------------------------- *)

type pass_stat = { runs : int; changed : int; nodes_removed : int }
type stats = { rounds : int; per_pass : (string * pass_stat) list }

let run ?(rounds = 8) ?(passes = all) c =
  let acc =
    List.map (fun p -> (p, ref { runs = 0; changed = 0; nodes_removed = 0 })) passes
  in
  let cur = ref c in
  let remap = ref (Remap.identity (Netlist.size c)) in
  let round = ref 0 in
  let continue_ = ref (passes <> []) in
  while !continue_ && !round < rounds do
    incr round;
    let round_changed = ref false in
    List.iter
      (fun (p, stat) ->
        Rt_obs.incr (Rt_obs.counter ("opt.pass." ^ p.p_name ^ ".runs"));
        let result =
          Rt_obs.with_span ~cat:"opt" ("opt.pass." ^ p.p_name) (fun () -> p.p_run !cur)
        in
        let s = !stat in
        match result with
        | None -> stat := { s with runs = s.runs + 1 }
        | Some (c', r) ->
          let removed = Netlist.size !cur - Netlist.size c' in
          Rt_obs.incr (Rt_obs.counter ("opt.pass." ^ p.p_name ^ ".changed"));
          Rt_obs.add (Rt_obs.counter ("opt.pass." ^ p.p_name ^ ".nodes_removed")) removed;
          stat :=
            { runs = s.runs + 1;
              changed = s.changed + 1;
              nodes_removed = s.nodes_removed + removed };
          cur := c';
          remap := Remap.compose !remap r;
          round_changed := true)
      acc;
    if not !round_changed then continue_ := false
  done;
  Rt_obs.add (Rt_obs.counter "opt.rounds") !round;
  Rt_obs.add (Rt_obs.counter "opt.nodes_removed") (Netlist.size c - Netlist.size !cur);
  ( !cur,
    !remap,
    { rounds = !round; per_pass = List.map (fun (p, stat) -> (p.p_name, !stat)) acc } )

let pp_stats ppf stats =
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "pass %-10s runs=%d changed=%d nodes_removed=%d@." name s.runs
        s.changed s.nodes_removed)
    stats.per_pass
