(** Word-level bit tricks for the pattern-parallel kernels.

    All functions are total — in particular {!ctz}, unlike the looping
    lowest-lane helper it replaced, is defined on [0L]. *)

val popcount : int64 -> int
(** Number of set bits (0..64); branch-free SWAR. *)

val ctz : int64 -> int
(** Index of the least significant set bit; [64] when the word is zero. *)

val lowest_bit : int64 -> int64
(** The least significant set bit alone ([0L] for [0L]). *)
