(* Branch-free word bit tricks shared by the simulation kernels.  These
   were private helpers inside Fault_sim; the wide-word datapath calls
   them once per 64-lane word, so they live here with total semantics
   ([ctz 0L] = 64, where the old [lowest_lane 0L] looped forever). *)

let popcount w =
  let open Int64 in
  let x = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let ctz w =
  if Int64.equal w 0L then 64
  else
    (* Isolate the lowest set bit; its index is the popcount of the mask
       of all strictly lower bit positions. *)
    popcount (Int64.sub (Int64.logand w (Int64.neg w)) 1L)

let lowest_bit w = Int64.logand w (Int64.neg w)
