(** Persistent work-stealing domain pool.

    Domains are spawned once (lazily, on the first region that needs
    them) and parked between parallel regions, replacing the
    spawn-per-region scheme whose [Domain.spawn]/[Domain.join] cost
    dominated short regions such as per-batch ppsfp fault sweeps.

    A region over [0, n) items is split into one contiguous queue per
    participant; queues are consumed through atomic cursors in
    grain-sized slices, and participants that run dry steal slices from
    the other queues.

    {2 Lanes and telemetry}

    Every worker domain is pinned to one participant slot ("lane") for
    its whole life — the [i]-th domain spawned is lane [i + 1], the
    submitting domain is lane 0 — so per-domain telemetry has a stable
    identity.  Global counters: [parallel.spawns] counts domain spawns
    (constant per process), [pool.tasks] counts executed slices,
    [parallel.steals] the stolen ones.  Per lane [k]:
    [pool.d<k>.tasks], [pool.d<k>.steals] (slices lane [k] took from
    other queues), [pool.d<k>.stolen_from] (slices other lanes took
    from queue [k]) and [pool.d<k>.parked_us] (cumulative idle time
    between regions).  When recording is on, each slice is a trace span
    ["<label>.slice"] on the executing domain's named track
    ([pool.d<k>]) carrying its origin queue and steal flag, and park
    intervals appear as ["pool.parked"] spans with ["pool.unpark"]
    instants.  Derived gauges [pool.utilization] (active participants /
    usable lanes) and [pool.queue_depth.d<k>]/[pool.queue_depth.total]
    are refreshed via an [Rt_obs] sample hook registered for the
    {!default} pool — the timeline sampler, artifact writes and the
    HTTP exposition all trigger it. *)

type t

val create : unit -> t
(** A new pool with no domains; they are spawned on demand by {!run}. *)

val default : unit -> t
(** The process-wide pool used by [Parallel.region]; created on first
    use and shut down via [at_exit].  Registers the pool-gauge sample
    hook on creation. *)

val run :
  ?grain:int -> ?label:string -> t -> participants:int -> n:int ->
  (int -> int -> int -> unit) -> unit
(** [run t ~participants ~n body] executes [body worker lo hi] over
    disjoint slices covering [0, n), on the calling domain plus up to
    [participants - 1] pool domains, growing the pool if needed.

    [worker] is the executing participant's lane in
    [0, participants) — unique among concurrent calls, so it can index
    per-worker scratch state.  Slices are [grain] items (default 16);
    slice boundaries, and which worker runs which slice, depend on
    scheduling.  [label] (default ["pool"]) names the per-slice trace
    spans ["<label>.slice"].  Returns when every item has run.  If any
    [body] call raises, the remaining slices are skipped and the first
    exception is re-raised here.  Calls from inside a running [body]
    (nested regions) execute [body 0 0 n] inline. *)

val in_worker : unit -> bool
(** True while the calling domain is executing inside a {!run} body. *)

val size : t -> int
(** Number of domains currently parked in or working for the pool. *)

val shutdown : t -> unit
(** Wake and join every pool domain.  Subsequent parallel {!run} calls
    on the pool raise [Invalid_argument]. *)
