(** Chunked multicore helpers on top of [Domain] (OCaml 5, no extra deps).

    Work over an index range is split into [jobs] contiguous chunks; chunk 0
    runs on the calling domain and the rest on freshly spawned domains that
    are always joined before the call returns.  With [jobs = 1] the callback
    runs inline on the caller — bit-identical to a serial loop — so every
    [?jobs] parameter in the library defaults to the serial behaviour. *)

val max_jobs : int

val default_jobs : unit -> int
(** The [OPTPROB_JOBS] environment variable clamped to [1 .. max_jobs];
    1 when unset or unparsable. *)

val resolve_jobs : int option -> int
(** [resolve_jobs jobs] is [jobs] clamped to [1 .. max_jobs] when given,
    {!default_jobs} otherwise — the policy behind every [?jobs] argument. *)

val chunk_bounds : jobs:int -> n:int -> int -> int * int
(** [chunk_bounds ~jobs ~n k] is the half-open range [(lo, hi)] of chunk
    [k]: contiguous, ascending, sizes differing by at most one. *)

val run_chunks :
  ?min_per_chunk:int -> jobs:int -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** Run [f] over [0, n) split into chunks.  [min_per_chunk] (default 1)
    caps the effective job count so tiny ranges stay serial.  Exceptions
    from any chunk are re-raised after all domains have been joined. *)

val map_chunks :
  ?min_per_chunk:int -> jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** As {!run_chunks} but each chunk returns a value; results are listed in
    chunk order (deterministic merge order regardless of scheduling). *)
