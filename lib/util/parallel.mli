(** Chunked multicore helpers on top of [Domain] (OCaml 5, no extra deps).

    Work over an index range is split into [jobs] contiguous chunks.
    {!run_chunks}/{!map_chunks} spawn fresh domains per call and join them
    before returning; {!region}/{!map_region}/{!sweep} instead execute on
    the persistent work-stealing {!Pool}, so domains are spawned once per
    process and parked between regions.  With [jobs = 1] the callback runs
    inline on the caller — bit-identical to a serial loop — so every
    [?jobs] parameter in the library defaults to the serial behaviour. *)

val max_jobs : int

val default_jobs : unit -> int
(** The [OPTPROB_JOBS] environment variable clamped to [1 .. max_jobs];
    1 when unset or unparsable. *)

val resolve_jobs : int option -> int
(** [resolve_jobs jobs] is [jobs] clamped to [1 .. max_jobs] when given,
    {!default_jobs} otherwise — the policy behind every [?jobs] argument. *)

val hardware_jobs : unit -> int
(** [Domain.recommended_domain_count] clamped to [max_jobs] — the most
    domains that can actually run concurrently on this machine. *)

val chunk_bounds : jobs:int -> n:int -> int -> int * int
(** [chunk_bounds ~jobs ~n k] is the half-open range [(lo, hi)] of chunk
    [k]: contiguous, ascending, sizes differing by at most one. *)

val run_chunks :
  ?min_per_chunk:int ->
  ?label:string ->
  jobs:int -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** Run [f] over [0, n) split into chunks.  [min_per_chunk] (default 1)
    caps the effective job count so tiny ranges stay serial.  Exceptions
    from any chunk are re-raised after all domains have been joined.  Each
    chunk is timed as an [Rt_obs] span named ["<label>.chunk"] on its
    executing domain (default label ["parallel"]).  The requested job count
    is honoured exactly (modulo [min_per_chunk]) — use {!region} for the
    core-count-aware policy. *)

val map_chunks :
  ?min_per_chunk:int ->
  ?label:string -> jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** As {!run_chunks} but each chunk returns a value; results are listed in
    chunk order (deterministic merge order regardless of scheduling). *)

val region :
  ?min_per_chunk:int ->
  ?label:string ->
  ?seq_below:int ->
  jobs:int -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit
(** The policy'd parallel entry point used by the library's kernels: as
    {!run_chunks}, but executed on the persistent {!Pool} (domains are
    spawned at most once per process, not per region), with the effective
    job count additionally clamped to {!hardware_jobs} (spawning more
    domains than cores only adds overhead; set
    [OPTPROB_JOBS_OVERCOMMIT=1] to lift the clamp and oversubscribe,
    e.g. to exercise the scheduler telemetry on a single-core host),
    and when [n < seq_below]
    (default 0) the work runs sequentially on the caller — per-region
    dispatch costs dwarf small workloads.  Each chunk is still called
    exactly once with its own [~chunk] index (work stealing moves chunks
    between domains, never splits or repeats them).  The whole region is
    wrapped in an [Rt_obs] span named [label]; falls back to sequential
    while [jobs > 1] increment the ["parallel.seq_fallbacks"] counter.
    Regions nested inside a pool worker run inline and sequentially.
    Results never depend on the effective job count. *)

val map_region :
  ?min_per_chunk:int ->
  ?label:string ->
  ?seq_below:int -> jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** As {!region} but collecting chunk results in chunk order.  Note the
    chunking itself (hence the partial results) can differ from
    {!map_chunks} with the same [jobs] — callers must merge in a way that is
    chunking-independent (e.g. sum partial accumulators). *)

val sweep :
  ?grain:int ->
  ?label:string ->
  ?seq_below:int ->
  jobs:int -> n:int -> (worker:int -> lo:int -> hi:int -> unit) -> unit
(** Item-level work stealing over [0, n) on the persistent {!Pool}, for
    kernels whose per-item cost is highly variable (e.g. per-fault event
    propagation).  [f ~worker ~lo ~hi] is called once per claimed slice of
    at most [grain] items (default 16); [worker] is the executing
    participant's slot in [0, jobs_eff) and may index per-worker scratch
    state — unlike {!region}, the same [worker] value sees many slices and
    slice boundaries are scheduling-dependent, so per-item results must be
    written to item-indexed (not worker-indexed) locations.  Job-count
    policy ([seq_below], hardware clamp, seq fallback counting) matches
    {!region}. *)
