(* Persistent work-stealing domain pool.

   The spawn-per-region scheme this replaces paid one [Domain.spawn] +
   [Domain.join] per worker per parallel region — per ppsfp *batch*, which
   BENCH_optprob.json showed eating the entire multicore win on the
   hottest kernel.  Here domains are spawned once (lazily, growing to the
   largest participant count ever requested) and parked on a condition
   variable between regions, so a region submit costs one mutex round
   trip and a broadcast.

   Scheduling: a region over [0, n) is split into one contiguous sub-queue
   per participant.  Each sub-queue is consumed [grain] items at a time
   through an atomic cursor ([Atomic.fetch_and_add]); a participant that
   exhausts its own queue steals grain-sized slices from the other queues
   (fault-propagation cost is highly variable, so static chunking loses —
   and because queues are contiguous index ranges, stolen work stays
   range-local, which the cone-ordered fault schedule in Fault_sim turns
   into cache locality).  Completion is detected by counting finished
   items, so a region terminates correctly even if some pool domain never
   wakes in time to claim its slot (its queue is simply drained by the
   others).

   Lanes: each worker domain is pinned to one participant slot for its
   whole life — the domain spawned [i]-th always takes slot [i] (its
   "lane"), and the submitting domain is always lane 0.  A region with
   [participants = p] is joined by exactly the workers whose lane is
   below [p].  This keeps the old completion/abort semantics (a late
   worker's queue is drained by the others) while making the per-domain
   telemetry stable: [pool.d<k>.*] counters and the [pool.d<k>] trace
   track always describe the same domain.

   Determinism: which domain executes an item is scheduling-dependent, but
   the [worker] id passed to the body is the executing participant's slot
   — unique per concurrent participant — so per-worker scratch state is
   race-free, and callers that index results by item keep a merge order
   independent of stealing.

   Exceptions: the first failure is kept, the region is aborted (remaining
   slices are skipped, not run), and the exception is re-raised on the
   submitting domain after every participant has left the job.

   Nesting: a body that submits another region would deadlock on the
   submit lock, so submissions from inside a participant run the body
   inline and sequentially (the same rule the old spawn scheme applied via
   [jobs = 1]). *)

type job = {
  n : int;
  grain : int;
  participants : int;
  label : string;  (* names the per-slice trace spans: "<label>.slice" *)
  next : int Atomic.t array;  (* per-slot queue cursor *)
  hi : int array;  (* per-slot queue end *)
  body : int -> int -> int -> unit;  (* worker lo hi *)
  completed : int Atomic.t;  (* items finished or skipped *)
  active : int Atomic.t;  (* participants currently inside the job *)
  failure : exn option Atomic.t;
  abort : bool Atomic.t;
}

type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable current : job option;  (* pool mutex *)
  mutable epoch : int;  (* bumped per submit; wakes parked workers *)
  mutable domains : unit Domain.t list;
  mutable n_workers : int;
  mutable quit : bool;
  submit : Mutex.t;  (* one region at a time *)
}

let c_spawns = Rt_obs.counter "parallel.spawns"
let c_steals = Rt_obs.counter "parallel.steals"
let c_tasks = Rt_obs.counter "pool.tasks"

(* Per-lane scheduler counters, registered lazily the first time a lane is
   used.  Lanes are stable domain identities (see the header comment), so
   [pool.d<k>.tasks] really is "slices executed by domain k" across the
   whole run. *)
type lane_counters = {
  lc_tasks : Rt_obs.counter;
  lc_steals : Rt_obs.counter;  (* slices this lane took from other queues *)
  lc_stolen_from : Rt_obs.counter;  (* slices other lanes took from this queue *)
  lc_parked_us : Rt_obs.counter;  (* cumulative time parked between regions *)
}

let lane_lock = Mutex.create ()
let lane_tbl : (int, lane_counters) Hashtbl.t = Hashtbl.create 16
let depth_tbl : (int, Rt_obs.gauge) Hashtbl.t = Hashtbl.create 16

let lane_counters k =
  Mutex.lock lane_lock;
  let c =
    match Hashtbl.find_opt lane_tbl k with
    | Some c -> c
    | None ->
      let mk s = Rt_obs.counter (Printf.sprintf "pool.d%d.%s" k s) in
      let c =
        { lc_tasks = mk "tasks";
          lc_steals = mk "steals";
          lc_stolen_from = mk "stolen_from";
          lc_parked_us = mk "parked_us" }
      in
      Hashtbl.add lane_tbl k c;
      c
  in
  Mutex.unlock lane_lock;
  c

let depth_gauge k =
  Mutex.lock lane_lock;
  let g =
    match Hashtbl.find_opt depth_tbl k with
    | Some g -> g
    | None ->
      let g = Rt_obs.gauge (Printf.sprintf "pool.queue_depth.d%d" k) in
      Hashtbl.add depth_tbl k g;
      g
  in
  Mutex.unlock lane_lock;
  g

let g_utilization = Rt_obs.gauge "pool.utilization"
let g_queue_total = Rt_obs.gauge "pool.queue_depth.total"

(* Refresh the derived pool gauges from live scheduler state; registered as
   an [Rt_obs] sample hook for the default pool so the timeline sampler,
   artifact writes and the HTTP exposition all see current values.  Takes
   [t.m] only long enough to read the published job pointer — the cursors
   themselves are atomics. *)
let sample_pool t =
  Mutex.lock t.m;
  let job = if t.quit then None else t.current in
  let workers = t.n_workers in
  Mutex.unlock t.m;
  match job with
  | None ->
    Rt_obs.gauge_set g_utilization 0.0;
    Rt_obs.gauge_set g_queue_total 0.0;
    Mutex.lock lane_lock;
    let gs = Hashtbl.fold (fun _ g acc -> g :: acc) depth_tbl [] in
    Mutex.unlock lane_lock;
    List.iter (fun g -> Rt_obs.gauge_set g 0.0) gs
  | Some j ->
    let cap = Stdlib.min (workers + 1) j.participants in
    Rt_obs.gauge_set g_utilization
      (Float.of_int (Atomic.get j.active) /. Float.of_int (Stdlib.max 1 cap));
    let total = ref 0 in
    for k = 0 to j.participants - 1 do
      let d = Stdlib.max 0 (j.hi.(k) - Atomic.get j.next.(k)) in
      total := !total + d;
      Rt_obs.gauge_set (depth_gauge k) (Float.of_int d)
    done;
    Rt_obs.gauge_set g_queue_total (Float.of_int !total)

(* True on any domain currently executing inside a pool region (both pool
   workers and a submitting domain while it participates). *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let run_slice job ~worker ~lo ~hi =
  (if not (Atomic.get job.abort) then
     try job.body worker lo hi
     with e ->
       ignore (Atomic.compare_and_set job.failure None (Some e));
       Atomic.set job.abort true);
  ignore (Atomic.fetch_and_add job.completed (hi - lo))

(* Drain queue [q], [grain] items per atomic claim.  Cursors of exhausted
   queues keep advancing past [hi] on failed claims; that is harmless (the
   overshoot is bounded by one grain per scan) and keeps the fast path a
   single fetch_and_add.  [self_c] is the executing lane's counters; when
   recording is on, every slice becomes a trace span on the executing
   domain's track carrying its origin queue and whether it was stolen. *)
let drain job ~worker ~self_c q =
  let stolen = q <> worker in
  let victim_c = if stolen then lane_counters q else self_c in
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add job.next.(q) job.grain in
    if lo >= job.hi.(q) then continue := false
    else begin
      let hi = min (lo + job.grain) job.hi.(q) in
      Rt_obs.incr c_tasks;
      Rt_obs.incr self_c.lc_tasks;
      if stolen then begin
        Rt_obs.incr c_steals;
        Rt_obs.incr self_c.lc_steals;
        Rt_obs.incr victim_c.lc_stolen_from
      end;
      let t0 = Rt_obs.span_begin () in
      run_slice job ~worker ~lo ~hi;
      if t0 > Float.neg_infinity then
        Rt_obs.span_end ~cat:"pool"
          ~args:
            [ ("queue", "d" ^ string_of_int q);
              ("stolen", if stolen then "true" else "false") ]
          (job.label ^ ".slice") t0
    end
  done

let participate job ~slot =
  let prev = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  let self_c = lane_counters slot in
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_worker_key prev)
    (fun () ->
      drain job ~worker:slot ~self_c slot;
      for d = 1 to job.participants - 1 do
        drain job ~worker:slot ~self_c ((slot + d) mod job.participants)
      done)

let rec worker_loop t ~lane last_epoch =
  (* The park interval runs from here to the claim decision; it shows up
     as a [pool.parked] span on this lane's track and accumulates into
     [pool.d<lane>.parked_us]. *)
  let t_park = Rt_obs.span_begin () in
  Mutex.lock t.m;
  while (not t.quit) && t.epoch = last_epoch do
    Condition.wait t.cv t.m
  done;
  if t.quit then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let claimed =
      match t.current with
      | Some job when lane < job.participants ->
        Atomic.incr job.active;
        Some job
      | Some _ | None -> None
    in
    Mutex.unlock t.m;
    if t_park > Float.neg_infinity then begin
      let parked = Float.max 0.0 (Rt_obs.now_us () -. t_park) in
      Rt_obs.add (lane_counters lane).lc_parked_us (int_of_float parked);
      Rt_obs.span_end ~cat:"pool" ~args:[ ("lane", string_of_int lane) ] "pool.parked" t_park;
      Rt_obs.mark
        ~fields:[ ("lane", string_of_int lane); ("parked_us", Printf.sprintf "%.0f" parked) ]
        "pool.unpark"
    end;
    (match claimed with
     | Some job ->
       participate job ~slot:lane;
       Atomic.decr job.active
     | None -> ());
    worker_loop t ~lane epoch
  end

let create () =
  { m = Mutex.create ();
    cv = Condition.create ();
    current = None;
    epoch = 0;
    domains = [];
    n_workers = 0;
    quit = false;
    submit = Mutex.create () }

let size t = t.n_workers

(* Grow to [w] parked worker domains.  Called with [t.submit] held (or
   before the pool is shared), so growth is single-writer.  The [i]-th
   domain spawned is lane [i + 1] forever (lane 0 is the submitter). *)
let ensure_workers t w =
  if t.quit then invalid_arg "Pool: pool is shut down";
  while t.n_workers < w do
    let lane = t.n_workers + 1 in
    let d =
      Domain.spawn (fun () ->
          Rt_obs.set_track_name (Printf.sprintf "pool.d%d" lane);
          worker_loop t ~lane t.epoch)
    in
    (* Spawn-epoch race: the worker captures the epoch from the shared
       record under no lock, but [t.epoch] only changes under [t.submit],
       which the grower holds — the worker either sees the current epoch
       (parks) or an older one (checks for a job, finds none, parks). *)
    t.domains <- d :: t.domains;
    t.n_workers <- t.n_workers + 1;
    Rt_obs.incr c_spawns
  done

let default_grain = 16

let run ?(grain = default_grain) ?(label = "pool") t ~participants ~n body =
  if n < 0 then invalid_arg "Pool.run: negative n";
  if participants < 1 then invalid_arg "Pool.run: participants < 1";
  if grain < 1 then invalid_arg "Pool.run: grain < 1";
  if n = 0 then ()
  else if participants = 1 || in_worker () then body 0 0 n
  else begin
    Mutex.lock t.submit;
    match
      ensure_workers t (participants - 1);
      let next = Array.make participants (Atomic.make 0) in
      let hi = Array.make participants 0 in
      let base = n / participants and rem = n mod participants in
      for k = 0 to participants - 1 do
        let lo = (k * base) + min k rem in
        next.(k) <- Atomic.make lo;
        hi.(k) <- lo + base + (if k < rem then 1 else 0)
      done;
      let job =
        { n; grain; participants; label; next; hi; body;
          completed = Atomic.make 0;
          active = Atomic.make 1;  (* the submitter, lane 0 *)
          failure = Atomic.make None;
          abort = Atomic.make false }
      in
      Mutex.lock t.m;
      t.current <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.m;
      participate job ~slot:0;
      Atomic.decr job.active;
      (* All items either ran or were abort-skipped... *)
      while Atomic.get job.completed < n do
        Domain.cpu_relax ()
      done;
      (* ...then unpublish so no new worker joins, and wait for joined
         workers to leave before the next region can reuse the slots. *)
      Mutex.lock t.m;
      t.current <- None;
      Mutex.unlock t.m;
      while Atomic.get job.active > 0 do
        Domain.cpu_relax ()
      done;
      Atomic.get job.failure
    with
    | failure ->
      Mutex.unlock t.submit;
      (match failure with Some e -> raise e | None -> ())
    | exception e ->
      Mutex.unlock t.submit;
      raise e
  end

let shutdown t =
  Mutex.lock t.submit;
  Mutex.lock t.m;
  t.quit <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  t.n_workers <- 0;
  Mutex.unlock t.submit;
  List.iter Domain.join ds

(* The process-wide pool behind [Parallel.region]/[Parallel.sweep].
   Shut down via [at_exit] so the program never terminates with parked
   domains still alive.  Its scheduler state feeds the [pool.*] gauges
   through an [Rt_obs] sample hook, so the timeline sampler and the HTTP
   exposition see live utilization and queue depths. *)
let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      Rt_obs.add_sample_hook (fun () -> sample_pool p);
      at_exit (fun () ->
          Mutex.lock default_mutex;
          let q = !default_pool in
          default_pool := None;
          Mutex.unlock default_mutex;
          Option.iter shutdown q);
      p
  in
  Mutex.unlock default_mutex;
  p
