(* Persistent work-stealing domain pool.

   The spawn-per-region scheme this replaces paid one [Domain.spawn] +
   [Domain.join] per worker per parallel region — per ppsfp *batch*, which
   BENCH_optprob.json showed eating the entire multicore win on the
   hottest kernel.  Here domains are spawned once (lazily, growing to the
   largest participant count ever requested) and parked on a condition
   variable between regions, so a region submit costs one mutex round
   trip and a broadcast.

   Scheduling: a region over [0, n) is split into one contiguous sub-queue
   per participant.  Each sub-queue is consumed [grain] items at a time
   through an atomic cursor ([Atomic.fetch_and_add]); a participant that
   exhausts its own queue steals grain-sized slices from the other queues
   (fault-propagation cost is highly variable, so static chunking loses —
   and because queues are contiguous index ranges, stolen work stays
   range-local, which the cone-ordered fault schedule in Fault_sim turns
   into cache locality).  Completion is detected by counting finished
   items, so a region terminates correctly even if some pool domain never
   wakes in time to claim its slot (its queue is simply drained by the
   others).

   Determinism: which domain executes an item is scheduling-dependent, but
   the [worker] id passed to the body is the executing participant's slot
   — unique per concurrent participant — so per-worker scratch state is
   race-free, and callers that index results by item keep a merge order
   independent of stealing.

   Exceptions: the first failure is kept, the region is aborted (remaining
   slices are skipped, not run), and the exception is re-raised on the
   submitting domain after every participant has left the job.

   Nesting: a body that submits another region would deadlock on the
   submit lock, so submissions from inside a participant run the body
   inline and sequentially (the same rule the old spawn scheme applied via
   [jobs = 1]). *)

type job = {
  n : int;
  grain : int;
  participants : int;
  next : int Atomic.t array;  (* per-slot queue cursor *)
  hi : int array;  (* per-slot queue end *)
  body : int -> int -> int -> unit;  (* worker lo hi *)
  completed : int Atomic.t;  (* items finished or skipped *)
  active : int Atomic.t;  (* participants currently inside the job *)
  mutable next_slot : int;  (* next free participant slot; pool mutex *)
  failure : exn option Atomic.t;
  abort : bool Atomic.t;
}

type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable current : job option;  (* pool mutex *)
  mutable epoch : int;  (* bumped per submit; wakes parked workers *)
  mutable domains : unit Domain.t list;
  mutable n_workers : int;
  mutable quit : bool;
  submit : Mutex.t;  (* one region at a time *)
}

let c_spawns = Rt_obs.counter "parallel.spawns"
let c_steals = Rt_obs.counter "parallel.steals"
let c_tasks = Rt_obs.counter "pool.tasks"

(* True on any domain currently executing inside a pool region (both pool
   workers and a submitting domain while it participates). *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let run_slice job ~worker ~lo ~hi =
  (if not (Atomic.get job.abort) then
     try job.body worker lo hi
     with e ->
       ignore (Atomic.compare_and_set job.failure None (Some e));
       Atomic.set job.abort true);
  ignore (Atomic.fetch_and_add job.completed (hi - lo))

(* Drain queue [q], [grain] items per atomic claim.  Cursors of exhausted
   queues keep advancing past [hi] on failed claims; that is harmless (the
   overshoot is bounded by one grain per scan) and keeps the fast path a
   single fetch_and_add. *)
let drain job ~worker q =
  let stolen = q <> worker in
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add job.next.(q) job.grain in
    if lo >= job.hi.(q) then continue := false
    else begin
      let hi = min (lo + job.grain) job.hi.(q) in
      Rt_obs.incr c_tasks;
      if stolen then Rt_obs.incr c_steals;
      run_slice job ~worker ~lo ~hi
    end
  done

let participate job ~slot =
  let prev = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_worker_key prev)
    (fun () ->
      drain job ~worker:slot slot;
      for d = 1 to job.participants - 1 do
        drain job ~worker:slot ((slot + d) mod job.participants)
      done)

let rec worker_loop t last_epoch =
  Mutex.lock t.m;
  while (not t.quit) && t.epoch = last_epoch do
    Condition.wait t.cv t.m
  done;
  if t.quit then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let claimed =
      match t.current with
      | Some job when job.next_slot < job.participants ->
        let slot = job.next_slot in
        job.next_slot <- slot + 1;
        Atomic.incr job.active;
        Some (job, slot)
      | Some _ | None -> None
    in
    Mutex.unlock t.m;
    (match claimed with
     | Some (job, slot) ->
       participate job ~slot;
       Atomic.decr job.active
     | None -> ());
    worker_loop t epoch
  end

let create () =
  { m = Mutex.create ();
    cv = Condition.create ();
    current = None;
    epoch = 0;
    domains = [];
    n_workers = 0;
    quit = false;
    submit = Mutex.create () }

let size t = t.n_workers

(* Grow to [w] parked worker domains.  Called with [t.submit] held (or
   before the pool is shared), so growth is single-writer. *)
let ensure_workers t w =
  if t.quit then invalid_arg "Pool: pool is shut down";
  while t.n_workers < w do
    let d = Domain.spawn (fun () -> worker_loop t t.epoch) in
    (* Spawn-epoch race: the worker captures the epoch from the shared
       record under no lock, but [t.epoch] only changes under [t.submit],
       which the grower holds — the worker either sees the current epoch
       (parks) or an older one (checks for a job, finds none, parks). *)
    t.domains <- d :: t.domains;
    t.n_workers <- t.n_workers + 1;
    Rt_obs.incr c_spawns
  done

let default_grain = 16

let run ?(grain = default_grain) t ~participants ~n body =
  if n < 0 then invalid_arg "Pool.run: negative n";
  if participants < 1 then invalid_arg "Pool.run: participants < 1";
  if grain < 1 then invalid_arg "Pool.run: grain < 1";
  if n = 0 then ()
  else if participants = 1 || in_worker () then body 0 0 n
  else begin
    Mutex.lock t.submit;
    match
      ensure_workers t (participants - 1);
      let next = Array.make participants (Atomic.make 0) in
      let hi = Array.make participants 0 in
      let base = n / participants and rem = n mod participants in
      for k = 0 to participants - 1 do
        let lo = (k * base) + min k rem in
        next.(k) <- Atomic.make lo;
        hi.(k) <- lo + base + (if k < rem then 1 else 0)
      done;
      let job =
        { n; grain; participants; next; hi; body;
          completed = Atomic.make 0;
          active = Atomic.make 1;  (* the submitter, slot 0 *)
          next_slot = 1;
          failure = Atomic.make None;
          abort = Atomic.make false }
      in
      Mutex.lock t.m;
      t.current <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.m;
      participate job ~slot:0;
      Atomic.decr job.active;
      (* All items either ran or were abort-skipped... *)
      while Atomic.get job.completed < n do
        Domain.cpu_relax ()
      done;
      (* ...then unpublish so no new worker joins, and wait for joined
         workers to leave before the next region can reuse the slots. *)
      Mutex.lock t.m;
      t.current <- None;
      Mutex.unlock t.m;
      while Atomic.get job.active > 0 do
        Domain.cpu_relax ()
      done;
      Atomic.get job.failure
    with
    | failure ->
      Mutex.unlock t.submit;
      (match failure with Some e -> raise e | None -> ())
    | exception e ->
      Mutex.unlock t.submit;
      raise e
  end

let shutdown t =
  Mutex.lock t.submit;
  Mutex.lock t.m;
  t.quit <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  t.n_workers <- 0;
  Mutex.unlock t.submit;
  List.iter Domain.join ds

(* The process-wide pool behind [Parallel.region]/[Parallel.sweep].
   Shut down via [at_exit] so the program never terminates with parked
   domains still alive. *)
let default_pool = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create () in
      default_pool := Some p;
      at_exit (fun () ->
          Mutex.lock default_mutex;
          let q = !default_pool in
          default_pool := None;
          Mutex.unlock default_mutex;
          Option.iter shutdown q);
      p
  in
  Mutex.unlock default_mutex;
  p
