(* Chunked Domain-based parallelism.

   [run_chunks]/[map_chunks] spawn [jobs - 1] fresh domains per call and
   join them before returning (tests rely on real domains being spawned);
   [region]/[map_region]/[sweep] are the policy'd entry points the
   library's kernels use — they clamp to the machine's core count, fall
   back to sequential execution below a work-size threshold, and execute
   on the persistent [Pool] so the per-call [Domain.spawn]/[join] cost is
   paid once per process instead of once per region (per ppsfp *batch* on
   the hot path).  [jobs = 1] stays on the exact serial code path, and
   every chunk is timed as an [Rt_obs] span on its executing domain. *)

let max_jobs = 64

let default_jobs () =
  match Sys.getenv_opt "OPTPROB_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> min j max_jobs
     | Some _ | None -> 1)

let resolve_jobs jobs =
  match jobs with
  | Some j when j >= 1 -> min j max_jobs
  | Some _ -> 1
  | None -> default_jobs ()

let hardware_jobs () = min max_jobs (Domain.recommended_domain_count ())

(* [OPTPROB_JOBS_OVERCOMMIT=1] lifts the hardware-core clamp in
   {!region_jobs} so a [--jobs 4] run spawns real pool domains even on a
   single-core host — pure oversubscription, useful only to exercise the
   scheduler telemetry (per-domain tracks, steals, parks) where the
   machine could not otherwise show it. *)
let overcommit () =
  match Sys.getenv_opt "OPTPROB_JOBS_OVERCOMMIT" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* Contiguous chunk [lo, hi) of [0, n) for chunk index k of [jobs]. *)
let chunk_bounds ~jobs ~n k =
  let base = n / jobs and rem = n mod jobs in
  let lo = (k * base) + min k rem in
  let hi = lo + base + (if k < rem then 1 else 0) in
  (lo, hi)

let c_chunks = Rt_obs.counter "parallel.chunks"
let c_spawns = Rt_obs.counter "parallel.spawns"
let c_seq_fallbacks = Rt_obs.counter "parallel.seq_fallbacks"

(* Cap the job count so no chunk falls below [min_per_chunk] items. *)
let clamp_chunk_jobs ~min_per_chunk ~jobs ~n =
  max 1 (min jobs (max 1 (n / max 1 min_per_chunk)))

(* Registered once per region on the caller's domain (registration takes
   the sink mutex; the per-chunk observe itself is lock-free), so the
   chunk-time distribution — not just the total — survives into the
   metrics snapshot and imbalance shows up as a wide p50..p99 spread. *)
let timed_chunk ~label f =
  let hist =
    if Rt_obs.enabled () then Some (Rt_obs.histogram (label ^ ".chunk_us")) else None
  in
  fun ~chunk ~lo ~hi ->
    let t0 = Rt_obs.span_begin () in
    Rt_obs.incr c_chunks;
    f ~chunk ~lo ~hi;
    match hist with
    | Some h -> Rt_obs.span_end_h ~cat:"parallel" (label ^ ".chunk") h t0
    | None -> Rt_obs.span_end ~cat:"parallel" (label ^ ".chunk") t0

let run_chunks ?(min_per_chunk = 1) ?(label = "parallel") ~jobs ~n f =
  if n < 0 then invalid_arg "Parallel.run_chunks: negative n";
  let jobs = clamp_chunk_jobs ~min_per_chunk ~jobs ~n in
  let timed = timed_chunk ~label f in
  if jobs = 1 || n = 0 then (if n > 0 then timed ~chunk:0 ~lo:0 ~hi:n)
  else begin
    Rt_obs.add c_spawns (jobs - 1);
    let spawned =
      Array.init (jobs - 1) (fun i ->
          let k = i + 1 in
          let lo, hi = chunk_bounds ~jobs ~n k in
          Domain.spawn (fun () -> if hi > lo then timed ~chunk:k ~lo ~hi))
    in
    let _, hi0 = chunk_bounds ~jobs ~n 0 in
    let caller_exn = (try (if hi0 > 0 then timed ~chunk:0 ~lo:0 ~hi:hi0); None with e -> Some e) in
    (* Join everything before re-raising so no domain outlives the call. *)
    let worker_exn = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !worker_exn = None then worker_exn := Some e)
      spawned;
    match (caller_exn, !worker_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let map_chunks ?min_per_chunk ?label ~jobs ~n f =
  let out = Array.make (max 1 jobs) None in
  run_chunks ?min_per_chunk ?label ~jobs ~n (fun ~chunk ~lo ~hi -> out.(chunk) <- Some (f ~lo ~hi));
  Array.to_list out |> List.filter_map Fun.id

(* Effective job count for a policy'd region: never more domains than the
   hardware offers, and strictly sequential below the work-size threshold —
   per-call [Domain.spawn] costs far more than a small chunk's work (the
   measured ppsfp-on-one-core case was 4x slower at jobs=4 than serial). *)
let region_jobs ~seq_below ~jobs ~n =
  let requested = max 1 jobs in
  let cap = if overcommit () then max_jobs else hardware_jobs () in
  let eff = if n < seq_below then 1 else min requested cap in
  if requested > 1 && eff = 1 then Rt_obs.incr c_seq_fallbacks;
  eff

(* Run [jobs] chunks on the persistent pool.  One pool item per chunk,
   grain 1: participant [k]'s queue holds exactly chunk [k], so chunk 0
   normally lands on the caller and slow starters get their chunk stolen
   instead of stalling the region.  Each chunk still runs exactly once
   with its own [~chunk] index, so per-chunk workspaces and chunk-ordered
   merges behave exactly as under the old spawn-per-region scheme. *)
let pool_chunks ~label ~jobs ~n f =
  let timed = timed_chunk ~label f in
  if jobs = 1 || n = 0 then (if n > 0 then timed ~chunk:0 ~lo:0 ~hi:n)
  else
    Pool.run ~label (Pool.default ()) ~grain:1 ~participants:jobs ~n:jobs
      (fun _worker klo khi ->
        for k = klo to khi - 1 do
          let lo, hi = chunk_bounds ~jobs ~n k in
          if hi > lo then timed ~chunk:k ~lo ~hi
        done)

let region_chunk_jobs ?(min_per_chunk = 1) ~seq_below ~jobs ~n () =
  if n < 0 then invalid_arg "Parallel.region: negative n";
  let jobs = region_jobs ~seq_below ~jobs ~n in
  clamp_chunk_jobs ~min_per_chunk ~jobs ~n

let region ?min_per_chunk ?(label = "parallel") ?(seq_below = 0) ~jobs ~n f =
  let jobs = region_chunk_jobs ?min_per_chunk ~seq_below ~jobs ~n () in
  Rt_obs.with_span ~cat:"parallel" label (fun () -> pool_chunks ~label ~jobs ~n f)

let map_region ?min_per_chunk ?(label = "parallel") ?(seq_below = 0) ~jobs ~n f =
  let jobs = region_chunk_jobs ?min_per_chunk ~seq_below ~jobs ~n () in
  let out = Array.make jobs None in
  Rt_obs.with_span ~cat:"parallel" label (fun () ->
      pool_chunks ~label ~jobs ~n (fun ~chunk ~lo ~hi -> out.(chunk) <- Some (f ~lo ~hi)));
  Array.to_list out |> List.filter_map Fun.id

let sweep ?grain ?(label = "parallel.sweep") ?(seq_below = 0) ~jobs ~n f =
  if n < 0 then invalid_arg "Parallel.sweep: negative n";
  let jobs = region_jobs ~seq_below ~jobs ~n in
  Rt_obs.with_span ~cat:"parallel" label (fun () ->
      if jobs = 1 || n = 0 then (if n > 0 then f ~worker:0 ~lo:0 ~hi:n)
      else
        Pool.run ?grain ~label (Pool.default ()) ~participants:jobs ~n
          (fun worker lo hi -> f ~worker ~lo ~hi))
