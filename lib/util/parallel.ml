(* Chunked Domain-based parallelism.  No pool is kept alive: each parallel
   region spawns [jobs - 1] domains and joins them before returning, so a
   program can never hang on worker shutdown and [jobs = 1] stays on the
   exact serial code path. *)

let max_jobs = 64

let default_jobs () =
  match Sys.getenv_opt "OPTPROB_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> min j max_jobs
     | Some _ | None -> 1)

let resolve_jobs jobs =
  match jobs with
  | Some j when j >= 1 -> min j max_jobs
  | Some _ -> 1
  | None -> default_jobs ()

(* Contiguous chunk [lo, hi) of [0, n) for chunk index k of [jobs]. *)
let chunk_bounds ~jobs ~n k =
  let base = n / jobs and rem = n mod jobs in
  let lo = (k * base) + min k rem in
  let hi = lo + base + (if k < rem then 1 else 0) in
  (lo, hi)

let run_chunks ?(min_per_chunk = 1) ~jobs ~n f =
  if n < 0 then invalid_arg "Parallel.run_chunks: negative n";
  let jobs = max 1 (min jobs (max 1 (n / max 1 min_per_chunk))) in
  if jobs = 1 || n = 0 then (if n > 0 then f ~chunk:0 ~lo:0 ~hi:n)
  else begin
    let spawned =
      Array.init (jobs - 1) (fun i ->
          let k = i + 1 in
          let lo, hi = chunk_bounds ~jobs ~n k in
          Domain.spawn (fun () -> if hi > lo then f ~chunk:k ~lo ~hi))
    in
    let _, hi0 = chunk_bounds ~jobs ~n 0 in
    let caller_exn = (try (if hi0 > 0 then f ~chunk:0 ~lo:0 ~hi:hi0); None with e -> Some e) in
    (* Join everything before re-raising so no domain outlives the call. *)
    let worker_exn = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !worker_exn = None then worker_exn := Some e)
      spawned;
    match (caller_exn, !worker_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let map_chunks ?min_per_chunk ~jobs ~n f =
  let out = Array.make (max 1 jobs) None in
  run_chunks ?min_per_chunk ~jobs ~n (fun ~chunk ~lo ~hi -> out.(chunk) <- Some (f ~lo ~hi));
  Array.to_list out |> List.filter_map Fun.id
