(** The typed stage graph behind every entry point.

    Stages and their inputs (the paper's procedure, §4):

    {v
    Loaded ──> Opt_netlist ──> Faults ──> Analysis ──> Normalized ──> Optimized
      ──> Validated ──> Report
    v}

    - [Loaded]: the netlist (generator, .bench file or inline).
    - [Opt_netlist]: the {!Rt_circuit.Passes} fixpoint simplification of
      the loaded netlist (identity when [opt_passes = []]); every
      downstream stage consumes this netlist.  Keyed by the pass list and
      round budget ({!Config.opt_key}).
    - [Faults]: the collapsed single-stuck-at universe (of the optimized
      netlist; names survive optimization, so faults print in
      original-netlist terms).
    - [Analysis]: detection probabilities at the config's weights, plus
      the engine's redundancy/exactness masks (the ANALYSIS step).
    - [Normalized]: required test length [N] and the hardest-fault prefix
      (SORT + NORMALIZE).
    - [Optimized]: the full {!Rt_optprob.Optimize.report} (PREPARE /
      MINIMIZE / OPTIMIZE sweeps) under the config's objective, plus the
      {!Rt_optprob.Optimize.two_stage_report} when the objective is a
      two-stage design.
    - [Validated]: fault-simulation confirmation at the optimized weights.
    - [Report]: the assembled run summary.

    Every accessor memoises in the context; with a [work_dir] the stage
    artifact is content-addressed on disk (see {!Store}), so a second run
    with an unchanged config re-executes zero stages and a config change
    re-runs exactly the stages downstream of it.  Each stage execution
    (or hit) bumps [pipeline.stage.<name>.run] / [.cache_hit] and runs
    under a [pipeline.<name>] span. *)

type 'a staged = {
  value : 'a;
  digest : string;  (** content address; feeds downstream stage keys *)
  from_cache : bool;
}

type opt_netlist = {
  on_netlist : Rt_circuit.Netlist.t;  (** what every downstream stage runs on *)
  on_remap : Rt_circuit.Passes.Remap.t;  (** loaded-netlist ids -> optimized ids *)
  on_stats : Rt_circuit.Passes.stats;
}

type analysis = {
  pf : float array;  (** detection probability per fault, fault-array order *)
  a_weights : float array;  (** the input probabilities analysed *)
  proven_redundant : bool array;
  exact_mask : bool array;
  engine_desc : string;
}

type normalized = {
  n_required : float;  (** minimal test length at the analysis weights *)
  nf : int;  (** size of the relevant (hardest) prefix *)
  det_idx : int array;  (** detectable fault indices (fault-array order) *)
  hard : int array;  (** the [nf] hardest faults, as fault-array indices *)
  n_undetectable : int;
}

type optimized = {
  opt_report : Rt_optprob.Optimize.report;
      (** the single-stage design (stage 1 of a two-stage objective) *)
  opt_two_stage : Rt_optprob.Optimize.two_stage_report option;
      (** present iff the config objective is [twostage[:N1]] *)
}

val opt_weights : optimized -> float array
(** The deployed weight vector: stage-2 weights for a two-stage design,
    else the report's weights.  What [validated] simulates. *)

type validated = {
  v_weights : float array;
  first_detect : int array;
  detect_count : int array;
  patterns_run : int;
  v_seed : int;
  coverage : float;
}

type report = {
  r_circuit : string;
  r_stats : string;  (** of the (optimized) netlist the engines ran on *)
  r_raw_stats : string;  (** of the loaded netlist *)
  r_opt_key : string;  (** {!Config.opt_key} of the run *)
  r_nodes_removed : int;
  r_engine : string;
  r_inputs : int;
  r_faults : int;
  r_redundant : int;
  r_n_conventional : float;  (** required N at the analysis weights *)
  r_objective : string;  (** {!Config.objective_key} of the run *)
  r_opt : Rt_optprob.Optimize.report;
  r_two_stage : Rt_optprob.Optimize.two_stage_report option;
  r_coverage : float;
  r_patterns : int;
  r_seed : int;
}

type t
(** A pipeline context: one config, its store handle and stage memos. *)

val create : Config.t -> t
val config : t -> Config.t

(** {1 Stage accessors}

    Each returns the staged artifact, computing (and persisting) on demand. *)

val loaded : t -> Rt_circuit.Netlist.t staged
val opt_netlist : t -> opt_netlist staged
val faults : t -> Rt_fault.Fault.t array staged
val analysis : t -> analysis staged
val normalized : t -> normalized staged

val optimized :
  ?progress:(sweep:int -> n:float -> unit) ->
  ?recorder:Rt_obs.Convergence.t ->
  t ->
  optimized staged
(** [progress]/[recorder] apply only when the stage actually runs; a cache
    hit leaves the recorder empty. *)

val validated : t -> validated staged
(** Fault simulation at the {e optimized} weights. *)

val simulated : t -> validated staged
(** The same stage keyed at the {e analysis} weights (the [simulate]
    subcommand's workload). *)

val report : t -> report staged

(** {1 Convenience} *)

val circuit : t -> Rt_circuit.Netlist.t
(** The {e optimized} netlist — what faults, oracles and simulation use. *)

val raw_circuit : t -> Rt_circuit.Netlist.t
(** The loaded netlist, before optimization passes. *)

val remap : t -> Rt_circuit.Passes.Remap.t
val opt_stats : t -> Rt_circuit.Passes.stats
val fault_list : t -> Rt_fault.Fault.t array

val oracle : t -> Rt_testability.Detect.oracle
(** The constructed ANALYSIS engine (memoised per context, never
    serialised).  Cache hits on downstream stages avoid constructing it. *)

val sim_stats : t -> validated -> Rt_sim.Fault_sim.stats
(** Reassemble a {!Rt_sim.Fault_sim.stats} from a validation artifact (for
    coverage curves and undetected listings). *)

(** {1 Whole-graph run} *)

type outcome = {
  o_report : report staged;
  o_stages : (string * bool) list;  (** (stage, served from cache), graph order *)
}

val run :
  ?progress:(sweep:int -> n:float -> unit) ->
  ?recorder:Rt_obs.Convergence.t ->
  t ->
  outcome

val stage_names : string list
val all_cached : outcome -> bool
val pp_stages : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
